#ifndef AETS_CATALOG_SHARD_MAP_H_
#define AETS_CATALOG_SHARD_MAP_H_

#include <vector>

#include "aets/catalog/schema.h"
#include "aets/common/result.h"

namespace aets {

/// Partitions the table catalog across N in-process backup shards (ROADMAP
/// item 1, DESIGN.md §11). The map is immutable once built and shared
/// read-only by the shipper (sub-epoch routing), the ShardedBackup facade
/// (visibility routing), and the snapshot coordinator — table→shard is the
/// one fact all three layers must agree on, so it lives in the catalog layer
/// they already share.
///
/// Two construction policies mirror the grouping policies of AetsOptions:
/// `Hash` (round-robin over dense table ids — deterministic, balanced for
/// the dense catalogs this repo builds) and `Explicit` (caller-assigned, for
/// workloads whose hot tables must be spread deliberately).
class ShardMap {
 public:
  /// Round-robin assignment: table t lives on shard t % num_shards.
  static ShardMap Hash(size_t num_tables, int num_shards);

  /// Explicit assignment: `table_to_shard[t]` is table t's shard. Fails if
  /// any entry is outside [0, num_shards) or the vector is empty.
  static Result<ShardMap> Explicit(std::vector<int> table_to_shard,
                                   int num_shards);

  int shard_of(TableId table) const {
    return table < table_to_shard_.size()
               ? table_to_shard_[table]
               : static_cast<int>(table % static_cast<TableId>(num_shards_));
  }
  int num_shards() const { return num_shards_; }
  size_t num_tables() const { return table_to_shard_.size(); }

  /// Tables owned by `shard`, in table-id order.
  std::vector<TableId> TablesOnShard(int shard) const;

 private:
  ShardMap(std::vector<int> table_to_shard, int num_shards);

  std::vector<int> table_to_shard_;
  int num_shards_;
};

}  // namespace aets

#endif  // AETS_CATALOG_SHARD_MAP_H_
