#include "aets/catalog/schema.h"

namespace aets {

Schema Schema::Of(std::initializer_list<std::pair<std::string, ColumnType>> cols) {
  std::vector<ColumnDef> defs;
  defs.reserve(cols.size());
  ColumnId id = 0;
  for (const auto& [name, type] : cols) {
    defs.push_back(ColumnDef{id++, name, type});
  }
  return Schema(std::move(defs));
}

int Schema::FindColumn(const std::string& name) const {
  for (const auto& col : columns_) {
    if (col.name == name) return static_cast<int>(col.id);
  }
  return -1;
}

}  // namespace aets
