#ifndef AETS_CATALOG_SCHEMA_H_
#define AETS_CATALOG_SCHEMA_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

namespace aets {

using TableId = uint32_t;
using ColumnId = uint16_t;

constexpr TableId kInvalidTableId = static_cast<TableId>(-1);

enum class ColumnType : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
};

/// A column definition: stable id + name + type.
struct ColumnDef {
  ColumnId id;
  std::string name;
  ColumnType type;
};

/// Ordered list of columns forming a table schema. Column ids are the
/// positional index (dense), matching the log format's column-id/value pairs.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns) : columns_(std::move(columns)) {}

  /// Builds a schema from (name, type) pairs with ids assigned positionally.
  static Schema Of(std::initializer_list<std::pair<std::string, ColumnType>> cols);

  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(ColumnId id) const { return columns_[id]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Returns the id of the named column or -1.
  int FindColumn(const std::string& name) const;

 private:
  std::vector<ColumnDef> columns_;
};

}  // namespace aets

#endif  // AETS_CATALOG_SCHEMA_H_
