#include "aets/catalog/catalog.h"

namespace aets {

Result<TableId> Catalog::RegisterTable(const std::string& name, Schema schema) {
  std::lock_guard<std::mutex> lk(mu_);
  if (by_name_.count(name) != 0) {
    return Status::AlreadyExists("table already registered: " + name);
  }
  TableId id = static_cast<TableId>(tables_.size());
  tables_.push_back(TableInfo{id, name, std::move(schema)});
  by_name_.emplace(name, id);
  return id;
}

Result<TableId> Catalog::GetTableId(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return Status::NotFound("no such table: " + name);
  return it->second;
}

Result<const TableInfo*> Catalog::GetTable(TableId id) const {
  std::lock_guard<std::mutex> lk(mu_);
  if (id >= tables_.size()) {
    return Status::NotFound("no table with id " + std::to_string(id));
  }
  return &tables_[id];
}

Result<const TableInfo*> Catalog::GetTableByName(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return Status::NotFound("no such table: " + name);
  return &tables_[it->second];
}

size_t Catalog::num_tables() const {
  std::lock_guard<std::mutex> lk(mu_);
  return tables_.size();
}

std::vector<TableId> Catalog::TableIds() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<TableId> ids;
  ids.reserve(tables_.size());
  for (const auto& t : tables_) ids.push_back(t.id);
  return ids;
}

}  // namespace aets
