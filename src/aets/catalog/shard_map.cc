#include "aets/catalog/shard_map.h"

#include <utility>

#include "aets/common/macros.h"

namespace aets {

ShardMap::ShardMap(std::vector<int> table_to_shard, int num_shards)
    : table_to_shard_(std::move(table_to_shard)), num_shards_(num_shards) {}

ShardMap ShardMap::Hash(size_t num_tables, int num_shards) {
  AETS_CHECK(num_shards >= 1);
  std::vector<int> map(num_tables);
  for (size_t t = 0; t < num_tables; ++t) {
    map[t] = static_cast<int>(t % static_cast<size_t>(num_shards));
  }
  return ShardMap(std::move(map), num_shards);
}

Result<ShardMap> ShardMap::Explicit(std::vector<int> table_to_shard,
                                    int num_shards) {
  if (num_shards < 1) {
    return Status::InvalidArgument("shard map needs at least one shard");
  }
  if (table_to_shard.empty()) {
    return Status::InvalidArgument("explicit shard map has no tables");
  }
  for (size_t t = 0; t < table_to_shard.size(); ++t) {
    if (table_to_shard[t] < 0 || table_to_shard[t] >= num_shards) {
      return Status::InvalidArgument(
          "table " + std::to_string(t) + " assigned to shard " +
          std::to_string(table_to_shard[t]) + " outside [0, " +
          std::to_string(num_shards) + ")");
    }
  }
  return ShardMap(std::move(table_to_shard), num_shards);
}

std::vector<TableId> ShardMap::TablesOnShard(int shard) const {
  std::vector<TableId> tables;
  for (size_t t = 0; t < table_to_shard_.size(); ++t) {
    if (table_to_shard_[t] == shard) tables.push_back(static_cast<TableId>(t));
  }
  return tables;
}

}  // namespace aets
