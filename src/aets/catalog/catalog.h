#ifndef AETS_CATALOG_CATALOG_H_
#define AETS_CATALOG_CATALOG_H_

#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "aets/catalog/schema.h"
#include "aets/common/result.h"
#include "aets/common/status.h"

namespace aets {

/// Table metadata registered with the catalog.
struct TableInfo {
  TableId id;
  std::string name;
  Schema schema;
};

/// Maps table names to ids and schemas. Shared (read-mostly) between the
/// primary engine, the log dispatcher, and the replayers; registration
/// happens up front before any log flows.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers a table and returns its id. Fails on duplicate names.
  Result<TableId> RegisterTable(const std::string& name, Schema schema);

  Result<TableId> GetTableId(const std::string& name) const;
  Result<const TableInfo*> GetTable(TableId id) const;
  Result<const TableInfo*> GetTableByName(const std::string& name) const;

  size_t num_tables() const;

  /// All registered table ids, in registration order (dense: 0..n-1).
  std::vector<TableId> TableIds() const;

 private:
  mutable std::mutex mu_;
  std::vector<TableInfo> tables_;
  std::unordered_map<std::string, TableId> by_name_;
};

}  // namespace aets

#endif  // AETS_CATALOG_CATALOG_H_
