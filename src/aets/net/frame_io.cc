#include "aets/net/frame_io.h"

#include <string>
#include <utility>

namespace aets {
namespace net {

Status ReadFrame(TcpSocket* socket, FrameDecoder* decoder, int io_timeout_ms,
                 int idle_timeout_ms, const std::atomic<bool>& stop,
                 Frame* out) {
  int stalled_ms = 0;
  int idle_ms = 0;
  for (;;) {
    Result<std::optional<Frame>> next = decoder->Next();
    if (!next.ok()) return next.status();
    if (next->has_value()) {
      *out = std::move(**next);
      return Status::OK();
    }
    if (stop.load(std::memory_order_relaxed)) {
      return Status::TimedOut("stop requested");
    }
    char buf[64 << 10];
    Result<size_t> got = socket->ReadSome(buf, sizeof(buf), kIdleSliceMs);
    if (!got.ok()) {
      if (got.status().IsTimedOut()) {
        if (decoder->mid_frame()) {
          stalled_ms += kIdleSliceMs;
          if (stalled_ms >= io_timeout_ms) {
            return Status::TimedOut("mid-frame read stalled");
          }
        } else if (idle_timeout_ms >= 0) {
          idle_ms += kIdleSliceMs;
          if (idle_ms >= idle_timeout_ms) {
            return Status::TimedOut("idle past deadline");
          }
        }
        continue;
      }
      return got.status();
    }
    if (*got == 0) {
      if (decoder->mid_frame()) {
        return Status::Corruption("peer closed mid-frame");
      }
      return Status::Aborted("peer closed");
    }
    stalled_ms = 0;
    idle_ms = 0;
    decoder->Feed(buf, *got);
  }
}

Status WriteFrame(TcpSocket* socket, FrameType type, std::string_view body,
                  int io_timeout_ms) {
  std::string wire;
  wire.reserve(kFrameHeaderBytes + body.size() + kFrameTrailerBytes);
  EncodeFrame(type, body, &wire);
  return socket->WriteAll(wire.data(), wire.size(), io_timeout_ms);
}

}  // namespace net
}  // namespace aets
