#include "aets/net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cstring>

#include "aets/obs/metrics.h"

namespace aets {
namespace net {

namespace {

void SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void SetNoDelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Status ErrnoStatus(const char* op, int err) {
  if (err == EPIPE || err == ECONNRESET || err == ECONNABORTED ||
      err == ENOTCONN) {
    return Status::Aborted(std::string(op) + ": peer closed (" +
                           strerror(err) + ")");
  }
  return Status::Internal(std::string(op) + ": " + strerror(err));
}

/// Polls for `events` with a deadline; OK exactly when the socket is ready.
Status PollFor(int fd, short events, int timeout_ms, const char* what) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  for (;;) {
    int rc = poll(&pfd, 1, timeout_ms);
    if (rc > 0) return Status::OK();  // readable/writable OR error/hup —
                                      // let the following syscall report it
    if (rc == 0) {
      static obs::Counter* timeouts = obs::GetCounter("net.io_timeouts");
      timeouts->Add(1);
      return Status::TimedOut(std::string(what) + " timed out");
    }
    if (errno == EINTR) continue;
    return ErrnoStatus("poll", errno);
  }
}

}  // namespace

TcpSocket::TcpSocket(int fd) : fd_(fd) {
  if (fd_ >= 0) {
    SetNonBlocking(fd_);
    SetNoDelay(fd_);  // no-op (ENOTSUP/EOPNOTSUPP) on AF_UNIX pairs
  }
}

TcpSocket& TcpSocket::operator=(TcpSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Result<TcpSocket> TcpSocket::Connect(const std::string& host, uint16_t port,
                                     int timeout_ms) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string numeric = (host == "localhost") ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("unparseable IPv4 host: " + host);
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket", errno);
  TcpSocket sock(fd);
  int rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) {
    return ErrnoStatus("connect", errno);
  }
  if (rc < 0) {
    Status ready = PollFor(fd, POLLOUT, timeout_ms, "connect");
    if (!ready.ok()) return ready;
    int err = 0;
    socklen_t len = sizeof(err);
    if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      return Status::Aborted("connect to " + host + ":" +
                             std::to_string(port) + " failed: " +
                             strerror(err != 0 ? err : errno));
    }
  }
  return sock;
}

Result<std::pair<TcpSocket, TcpSocket>> TcpSocket::Pair() {
  int fds[2];
  if (socketpair(AF_UNIX, SOCK_STREAM, 0, fds) < 0) {
    return ErrnoStatus("socketpair", errno);
  }
  return std::make_pair(TcpSocket(fds[0]), TcpSocket(fds[1]));
}

Status TcpSocket::WriteAll(const void* data, size_t n, int timeout_ms) {
  static obs::Counter* bytes_sent = obs::GetCounter("net.bytes_sent");
  const char* p = static_cast<const char*>(data);
  size_t off = 0;
  while (off < n) {
    ssize_t wrote = ::send(fd_, p + off, n - off, MSG_NOSIGNAL);
    if (wrote > 0) {
      off += static_cast<size_t>(wrote);
      bytes_sent->Add(wrote);
      continue;
    }
    if (wrote < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      Status ready = PollFor(fd_, POLLOUT, timeout_ms, "write");
      if (!ready.ok()) return ready;
      continue;
    }
    if (wrote < 0 && errno == EINTR) continue;
    return ErrnoStatus("send", errno);
  }
  return Status::OK();
}

Result<size_t> TcpSocket::ReadSome(void* buf, size_t n, int timeout_ms) {
  static obs::Counter* bytes_recv = obs::GetCounter("net.bytes_recv");
  for (;;) {
    ssize_t got = ::recv(fd_, buf, n, 0);
    if (got > 0) {
      bytes_recv->Add(got);
      return static_cast<size_t>(got);
    }
    if (got == 0) return size_t{0};  // clean EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      Status ready = PollFor(fd_, POLLIN, timeout_ms, "read");
      if (!ready.ok()) return ready;
      continue;
    }
    if (errno == EINTR) continue;
    return ErrnoStatus("recv", errno);
  }
}

Status TcpSocket::ReadAll(void* buf, size_t n, int timeout_ms) {
  char* p = static_cast<char*>(buf);
  size_t off = 0;
  while (off < n) {
    Result<size_t> got = ReadSome(p + off, n - off, timeout_ms);
    if (!got.ok()) return got.status();
    if (*got == 0) {
      return Status::Aborted("peer closed mid-read (" + std::to_string(off) +
                             "/" + std::to_string(n) + " bytes)");
    }
    off += *got;
  }
  return Status::OK();
}

void TcpSocket::ShutdownSend() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void TcpSocket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void TcpSocket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

Result<TcpListener> TcpListener::Bind(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket", errno);
  TcpListener listener;
  listener.fd_ = fd;
  SetNonBlocking(fd);
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) < 0) {
    return ErrnoStatus("bind", errno);
  }
  if (listen(fd, SOMAXCONN) < 0) return ErrnoStatus("listen", errno);
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) < 0) {
    return ErrnoStatus("getsockname", errno);
  }
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

Result<TcpSocket> TcpListener::Accept(int timeout_ms) {
  for (;;) {
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return TcpSocket(fd);
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      Status ready = PollFor(fd_, POLLIN, timeout_ms, "accept");
      if (!ready.ok()) return ready;
      continue;
    }
    if (errno == EINTR) continue;
    return ErrnoStatus("accept", errno);
  }
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace net
}  // namespace aets
