#ifndef AETS_NET_TCP_SOURCE_H_
#define AETS_NET_TCP_SOURCE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

#include "aets/common/status.h"
#include "aets/net/frame.h"
#include "aets/net/socket.h"
#include "aets/replication/epoch_source.h"

namespace aets {
namespace net {

struct TcpEpochSourceOptions {
  int io_timeout_ms = 5'000;
  int connect_timeout_ms = 5'000;
  /// RPC attempts per call (each failed attempt reconnects first). A call
  /// that exhausts the budget reports "miss"/cached — the ReplayerBase
  /// retry protocol (ReplayRecoveryOptions::max_retries) decides when a
  /// persistent miss becomes a latched loss.
  int max_attempts = 3;
};

/// EpochSource over the EpochStreamServer's control connection: FetchEpoch
/// is a synchronous kFetch -> kFetchOk/kFetchMiss RPC, NextEpochId and
/// FloorEpochId a kMeta -> kMetaOk RPC. This is the NACK path of a backup
/// in another process — the replayer plugs it in via SetEpochSource and the
/// recovery protocol is unchanged from the in-process shipper source.
///
/// Failure semantics: a timed-out or reset RPC surfaces as a fetch miss
/// (nullopt) or as the cached ids — never a crash and never a fabricated
/// epoch. Cached next/floor only ratchet upward, so a dead link can stall
/// progress reporting but cannot un-ship history. kFetchMiss replies carry
/// the server's next/floor ids, keeping the cache fresh enough for the
/// replayer's below-floor (kBelowCheckpoint) classification to fire with
/// the in-process semantics.
class TcpEpochSource : public EpochSource {
 public:
  TcpEpochSource(std::string host, uint16_t port, uint32_t shard,
                 TcpEpochSourceOptions options = {});
  ~TcpEpochSource() override;

  TcpEpochSource(const TcpEpochSource&) = delete;
  TcpEpochSource& operator=(const TcpEpochSource&) = delete;

  /// Eagerly connects and primes the id cache with one kMeta RPC (fail-fast
  /// configuration check; FetchEpoch also connects lazily).
  Status Connect();

  std::optional<ShippedEpoch> FetchEpoch(EpochId id) override;
  EpochId NextEpochId() const override;
  EpochId FloorEpochId() const override;

  uint64_t rpc_failures() const {
    return rpc_failures_.load(std::memory_order_relaxed);
  }

 private:
  /// One request/reply exchange with reconnect-on-failure; `mu_` held.
  /// Const because the id accessors RPC too — all I/O state is mutable.
  Status RoundTripLocked(FrameType request_type, std::string_view body,
                         Frame* reply) const;
  Status EnsureConnectedLocked() const;
  void RefreshIdsLocked(const EpochIdsBody& ids) const;
  Status MetaLocked() const;

  const std::string host_;
  const uint16_t port_;
  const uint32_t shard_;
  const TcpEpochSourceOptions options_;

  mutable std::mutex mu_;  // serializes RPCs (const methods do RPC too)
  mutable TcpSocket socket_;
  mutable FrameDecoder decoder_;
  mutable EpochId cached_next_ = 0;
  mutable EpochId cached_floor_ = 0;
  mutable std::atomic<uint64_t> rpc_failures_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace net
}  // namespace aets

#endif  // AETS_NET_TCP_SOURCE_H_
