#include "aets/net/epoch_stream.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "aets/net/frame_io.h"
#include "aets/obs/metrics.h"

namespace aets {
namespace net {

EpochStreamServer::EpochStreamServer(LogShipper* shipper,
                                     EpochStreamServerOptions options)
    : shipper_(shipper), options_(options) {}

EpochStreamServer::~EpochStreamServer() { Stop(); }

void EpochStreamServer::SetChannelFactoryForTest(ChannelFactory factory) {
  channel_factory_ = std::move(factory);
}

Status EpochStreamServer::Start(uint16_t port) {
  if (accept_thread_.joinable()) {
    return Status::InvalidArgument("server already started");
  }
  Result<TcpListener> listener = TcpListener::Bind(port);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(*listener);
  stop_.store(false, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void EpochStreamServer::Stop() {
  stop_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  std::vector<std::unique_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    // Closing the staging channels unblocks subscriber writers parked in
    // Receive(); control sessions notice stop_ within an idle slice.
    for (auto& channel : channels_) channel->Close();
    sessions.swap(sessions_);
  }
  for (auto& session : sessions) {
    if (session->thread.joinable()) session->thread.join();
  }
  // Sessions are gone; detach whatever channels they left behind so the
  // shipper holds no pointer into this (about-to-shrink) server. Only after
  // the detach is destroying them safe — the shipper may be mid-fan-out.
  std::lock_guard<std::mutex> lk(sessions_mu_);
  for (auto& channel : channels_) shipper_->DetachChannel(channel.get());
  channels_.clear();
}

void EpochStreamServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    Result<TcpSocket> accepted = listener_.Accept(kIdleSliceMs);
    if (!accepted.ok()) {
      if (accepted.status().IsTimedOut()) {
        ReapFinishedSessions();
        continue;
      }
      return;  // listener closed or broken
    }
    auto session = std::make_unique<Session>();
    Session* raw = session.get();
    // The socket moves into the thread; shared_ptr keeps the lambda copyable
    // requirements away (std::thread moves it).
    auto socket = std::make_shared<TcpSocket>(std::move(*accepted));
    raw->thread = std::thread([this, raw, socket] {
      RunSession(std::move(*socket));
      raw->done.store(true, std::memory_order_release);
    });
    std::lock_guard<std::mutex> lk(sessions_mu_);
    sessions_.push_back(std::move(session));
  }
}

void EpochStreamServer::ReapFinishedSessions() {
  std::vector<std::unique_ptr<Session>> finished;
  {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    for (auto& session : sessions_) {
      if (session->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(session));
      }
    }
    sessions_.erase(std::remove(sessions_.begin(), sessions_.end(), nullptr),
                    sessions_.end());
  }
  for (auto& session : finished) {
    if (session->thread.joinable()) session->thread.join();
  }
}

void EpochStreamServer::RunSession(TcpSocket socket) {
  FrameDecoder decoder;
  Frame hello_frame;
  // A connection that never says hello is dropped after one I/O window —
  // an anonymous idle socket must not pin a session thread.
  Status s = ReadFrame(&socket, &decoder, options_.io_timeout_ms,
                       /*idle_timeout_ms=*/options_.io_timeout_ms, stop_,
                       &hello_frame);
  if (!s.ok() || hello_frame.type != FrameType::kHello) return;
  Result<HelloBody> hello = DecodeHelloBody(hello_frame.body);
  if (!hello.ok()) return;
  if (hello->shard >= static_cast<uint32_t>(shipper_->shard_count())) {
    WriteFrame(&socket, FrameType::kError, "no such shard",
               options_.io_timeout_ms);
    return;
  }
  if (hello->role == HelloRole::kSubscribe) {
    subscribers_accepted_.fetch_add(1, std::memory_order_relaxed);
    RunSubscriber(std::move(socket), hello->shard);
  } else {
    control_accepted_.fetch_add(1, std::memory_order_relaxed);
    // The decoder moves along with the socket: a pipelined first request may
    // already sit (whole or partial) in its buffer after the Hello read.
    RunControl(std::move(socket), std::move(decoder), hello->shard);
  }
}

void EpochStreamServer::RunSubscriber(TcpSocket socket, uint32_t shard) {
  static obs::Counter* streamed = obs::GetCounter("net.epochs_streamed");
  EpochChannel* channel = nullptr;
  {
    std::unique_ptr<EpochChannel> fresh =
        channel_factory_ ? channel_factory_(options_.subscriber_queue)
                         : std::make_unique<EpochChannel>(
                               options_.subscriber_queue);
    std::lock_guard<std::mutex> lk(sessions_mu_);
    if (stop_.load(std::memory_order_relaxed)) return;
    channels_.push_back(std::move(fresh));
    channel = channels_.back().get();
  }
  // From here every epoch the shipper delivers to this lane lands in
  // `channel`; epochs shipped before this attach are the subscriber's gap to
  // NACK (exactly the restart/reconnect semantics).
  shipper_->AttachShardChannel(static_cast<int>(shard), channel);
  if (shipper_->finished()) {
    // The stream ended before this subscriber attached (a reconnect landing
    // after Finish): Finish() cannot have closed a channel it never saw, so
    // close it here or the writer below would wait forever. finished_ flips
    // under the same lock attach takes, so this check cannot miss the cut.
    channel->Close();
  }
  std::string body;
  while (auto epoch = channel->Receive()) {
    if (stop_.load(std::memory_order_relaxed)) break;
    body.clear();
    EncodeEpochBody(*epoch, &body);
    Status s = WriteFrame(&socket, FrameType::kEpoch, body,
                          options_.io_timeout_ms);
    if (!s.ok()) {
      // Dead or wedged subscriber. Close the staging channel so the
      // shipper's Sends fail fast (counted as send_failures / dropped —
      // the epochs stay fetchable); the subscriber recovers by
      // reconnecting and NACKing.
      channel->Close();
      while (channel->TryReceive()) {
      }
      ReleaseSubscriberChannel(channel);
      return;
    }
    streamed->Add(1);
  }
  // Channel closed and drained. Only the shipper's own Finish() means the
  // stream is complete; a stopping server just drops the connection and the
  // subscriber recovers by reconnecting.
  if (shipper_->finished()) {
    WriteFrame(&socket, FrameType::kStreamEnd, "", options_.io_timeout_ms);
  }
  ReleaseSubscriberChannel(channel);
}

void EpochStreamServer::ReleaseSubscriberChannel(EpochChannel* channel) {
  // Detach first: once DetachChannel returns the shipper can no longer be
  // mid-Send on this channel, so dropping the owning pointer is safe.
  shipper_->DetachChannel(channel);
  std::lock_guard<std::mutex> lk(sessions_mu_);
  for (auto it = channels_.begin(); it != channels_.end(); ++it) {
    if (it->get() == channel) {
      channels_.erase(it);
      return;
    }
  }
}

void EpochStreamServer::RunControl(TcpSocket socket, FrameDecoder decoder,
                                   uint32_t shard) {
  static obs::Counter* fetches = obs::GetCounter("net.nack_fetches_served");
  EpochSource* source = shipper_->shard_source(static_cast<int>(shard));
  std::string body;
  while (!stop_.load(std::memory_order_relaxed)) {
    Frame request;
    // Idle control connections are normal (NACKs are rare) — wait forever.
    Status s = ReadFrame(&socket, &decoder, options_.io_timeout_ms,
                         /*idle_timeout_ms=*/-1, stop_, &request);
    if (!s.ok()) return;  // EOF, reset, stall, or corrupt framing
    body.clear();
    switch (request.type) {
      case FrameType::kFetch: {
        Result<FetchBody> fetch = DecodeFetchBody(request.body);
        if (!fetch.ok()) return;
        fetches->Add(1);
        if (auto epoch = source->FetchEpoch(fetch->epoch_id)) {
          EncodeEpochBody(*epoch, &body);
          s = WriteFrame(&socket, FrameType::kFetchOk, body,
                         options_.io_timeout_ms);
        } else {
          EpochIdsBody ids{source->NextEpochId(), source->FloorEpochId()};
          EncodeEpochIdsBody(ids, &body);
          s = WriteFrame(&socket, FrameType::kFetchMiss, body,
                         options_.io_timeout_ms);
        }
        break;
      }
      case FrameType::kMeta: {
        EpochIdsBody ids{source->NextEpochId(), source->FloorEpochId()};
        EncodeEpochIdsBody(ids, &body);
        s = WriteFrame(&socket, FrameType::kMetaOk, body,
                       options_.io_timeout_ms);
        break;
      }
      default:
        return;  // protocol violation; drop the connection
    }
    if (!s.ok()) return;
  }
}

EpochStreamClient::EpochStreamClient(std::string host, uint16_t port,
                                     uint32_t shard, EpochChannel* sink,
                                     EpochStreamClientOptions options)
    : host_(std::move(host)),
      port_(port),
      shard_(shard),
      sink_(sink),
      options_(options) {}

EpochStreamClient::~EpochStreamClient() { Stop(); }

Status EpochStreamClient::ConnectAndHello(TcpSocket* socket) {
  Result<TcpSocket> conn =
      TcpSocket::Connect(host_, port_, options_.connect_timeout_ms);
  if (!conn.ok()) return conn.status();
  HelloBody hello{HelloRole::kSubscribe, shard_};
  std::string body;
  EncodeHelloBody(hello, &body);
  Status s = WriteFrame(&*conn, FrameType::kHello, body,
                        options_.io_timeout_ms);
  if (!s.ok()) return s;
  *socket = std::move(*conn);
  return Status::OK();
}

Status EpochStreamClient::Start() {
  if (reader_thread_.joinable()) {
    return Status::InvalidArgument("client already started");
  }
  TcpSocket socket;
  Status s = ConnectAndHello(&socket);
  if (!s.ok()) return s;
  {
    std::lock_guard<std::mutex> lk(socket_mu_);
    socket_ = std::move(socket);
  }
  stop_.store(false, std::memory_order_release);
  reader_thread_ = std::thread([this] { ReadLoop(); });
  return Status::OK();
}

void EpochStreamClient::Stop() {
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(socket_mu_);
    socket_.ShutdownBoth();
  }
  // Closing the sink first unblocks a reader parked in a full sink's Send
  // (Send then fails and the loop exits) — join cannot hang on a stalled
  // consumer.
  if (!clean_end_.load(std::memory_order_acquire)) sink_->Close();
  if (reader_thread_.joinable()) reader_thread_.join();
}

void EpochStreamClient::ReadLoop() {
  static obs::Counter* received = obs::GetCounter("net.epochs_received");
  static obs::Counter* reconnect_count = obs::GetCounter("net.reconnects");
  FrameDecoder decoder;
  while (!stop_.load(std::memory_order_relaxed)) {
    Frame frame;
    Status s;
    {
      // Stop() shuts the fd down rather than racing this loop for the
      // socket; the read re-checks stop_ every idle slice, so the lock is
      // never held for long. An idle stream is normal (quiet primary still
      // heartbeats, but a paused one may not) — wait forever.
      std::lock_guard<std::mutex> lk(socket_mu_);
      s = ReadFrame(&socket_, &decoder, options_.io_timeout_ms,
                    /*idle_timeout_ms=*/-1, stop_, &frame);
    }
    if (s.ok()) {
      switch (frame.type) {
        case FrameType::kEpoch: {
          Result<ShippedEpoch> epoch = DecodeEpochBody(frame.body);
          if (!epoch.ok()) {
            s = epoch.status();  // falls through to reconnect below
            break;
          }
          epochs_received_.fetch_add(1, std::memory_order_relaxed);
          received->Add(1);
          // A full sink blocks here, which stops reading, which closes the
          // TCP window — backpressure without unbounded buffering. A closed
          // sink means the consumer is gone; just stop.
          if (!sink_->Send(std::move(*epoch))) return;
          break;
        }
        case FrameType::kStreamEnd:
          clean_end_.store(true, std::memory_order_release);
          sink_->Close();
          return;
        default:
          s = Status::Corruption("unexpected frame type on epoch stream");
          break;
      }
      if (s.ok()) continue;
    }
    if (stop_.load(std::memory_order_relaxed)) return;
    // Any failure — reset, mid-frame EOF, stall, corrupt framing — lands
    // here: drop the connection and the torn frame, reconnect with bounded
    // backoff, and let the replayer NACK whatever the wire swallowed.
    decoder.Reset();
    bool connected = false;
    for (int attempt = 1; attempt <= options_.max_reconnects; ++attempt) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          options_.reconnect_backoff_ms * attempt));
      if (stop_.load(std::memory_order_relaxed)) return;
      TcpSocket fresh;
      if (ConnectAndHello(&fresh).ok()) {
        std::lock_guard<std::mutex> lk(socket_mu_);
        socket_ = std::move(fresh);
        connected = true;
        reconnects_.fetch_add(1, std::memory_order_relaxed);
        reconnect_count->Add(1);
        break;
      }
    }
    if (!connected) {
      // Reconnect budget exhausted: declare the stream dead. Closing the
      // sink hands control to the replayer's final drain, whose NACK source
      // decides whether the history is recoverable.
      sink_->Close();
      return;
    }
  }
}

}  // namespace net
}  // namespace aets
