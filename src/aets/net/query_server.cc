#include "aets/net/query_server.h"

#include <algorithm>
#include <utility>

#include "aets/common/clock.h"
#include "aets/net/frame_io.h"
#include "aets/obs/metrics.h"
#include "aets/storage/column_store.h"
#include "aets/storage/memtable.h"
#include "aets/storage/table_store.h"

namespace aets {
namespace net {

namespace {
const std::atomic<bool> kNeverStop{false};
}  // namespace

QueryServer::QueryServer(Replayer* backup,
                         GlobalSnapshotCoordinator* coordinator,
                         QueryServerOptions options)
    : backup_(backup),
      coordinator_(coordinator),
      options_(options),
      admission_(options.admission_queue) {}

QueryServer::~QueryServer() { Stop(); }

Status QueryServer::Start(uint16_t port) {
  if (accept_thread_.joinable()) {
    return Status::InvalidArgument("server already started");
  }
  if (options_.max_sessions < 1) {
    return Status::InvalidArgument("max_sessions must be >= 1");
  }
  Result<TcpListener> listener = TcpListener::Bind(port);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(*listener);
  stop_.store(false, std::memory_order_release);
  session_threads_.reserve(static_cast<size_t>(options_.max_sessions));
  for (int i = 0; i < options_.max_sessions; ++i) {
    session_threads_.emplace_back([this] { SessionLoop(); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void QueryServer::Stop() {
  stop_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  admission_.Close();  // wakes session threads; queued sockets just close
  for (auto& thread : session_threads_) {
    if (thread.joinable()) thread.join();
  }
  session_threads_.clear();
}

void QueryServer::AcceptLoop() {
  static obs::Counter* rejects = obs::GetCounter("net.admission_rejects");
  while (!stop_.load(std::memory_order_relaxed)) {
    Result<TcpSocket> accepted = listener_.Accept(kIdleSliceMs);
    if (!accepted.ok()) {
      if (accepted.status().IsTimedOut()) continue;
      return;
    }
    TcpSocket socket = std::move(*accepted);
    // The size check keeps the socket intact on the reject path (TryPush
    // consumes its argument even on failure); this loop is the only
    // producer, so the queue cannot grow between check and push.
    bool admitted = admission_.Size() < options_.admission_queue &&
                    admission_.TryPush(std::move(socket));
    if (!admitted) {
      // Full house: shed the connection with an explicit busy signal (a
      // short best-effort write — the accept loop must not park behind a
      // dead client).
      admission_rejects_.fetch_add(1, std::memory_order_relaxed);
      rejects->Add(1);
      WriteFrame(&socket, FrameType::kBusy, "", /*io_timeout_ms=*/50);
    }
  }
}

void QueryServer::SessionLoop() {
  static obs::Gauge* active = obs::GetGauge("net.active_sessions");
  while (auto socket = admission_.Pop()) {
    if (stop_.load(std::memory_order_relaxed)) return;
    active->Add(1);
    ServeOne(std::move(*socket));
    active->Add(-1);
  }
}

void QueryServer::ServeOne(TcpSocket socket) {
  static obs::Counter* served = obs::GetCounter("net.queries_served");
  static Histogram* query_us = obs::GetHistogram("net.query_us");
  FrameDecoder decoder;
  std::string body;
  for (;;) {
    Frame request;
    // The idle bound doubles as the session lifetime limit: a connection
    // with no query for a full window yields its session slot.
    Status s = ReadFrame(&socket, &decoder, options_.io_timeout_ms,
                         /*idle_timeout_ms=*/options_.io_timeout_ms, stop_,
                         &request);
    if (!s.ok()) return;  // EOF, idle, reset, or corrupt framing
    if (request.type != FrameType::kQuery) return;
    Result<QueryBody> query = DecodeQueryBody(request.body);
    if (!query.ok()) return;
    int64_t start_us = MonotonicMicros();
    QueryReplyBody reply;
    s = ExecuteQuery(*query, &reply);
    body.clear();
    if (s.ok()) {
      EncodeQueryReplyBody(reply, &body);
      s = WriteFrame(&socket, FrameType::kQueryOk, body,
                     options_.io_timeout_ms);
    } else {
      body.assign(s.message());
      s = WriteFrame(&socket, FrameType::kError, body, options_.io_timeout_ms);
    }
    if (!s.ok()) return;  // slow or gone reader: drop the session
    queries_served_.fetch_add(1, std::memory_order_relaxed);
    served->Add(1);
    query_us->Record(MonotonicMicros() - start_us);
  }
}

Status QueryServer::ExecuteQuery(const QueryBody& query,
                                 QueryReplyBody* reply) {
  // Pin first, then read: the handle keeps every version the snapshot can
  // see out of the GC horizon while we read version chains.
  SnapshotHandle handle;
  Timestamp safe = kInvalidTimestamp;
  if (coordinator_ != nullptr) {
    handle = coordinator_->AcquireSnapshot();
    safe = handle.ts();
  } else {
    safe = backup_->GlobalVisibleTs();
  }
  if (safe == kInvalidTimestamp) {
    // Nothing replayed yet: an empty-but-exact snapshot at ts 0.
    reply->pinned_ts = 0;
    return Status::OK();
  }
  Timestamp pinned =
      query.snapshot_ts == 0 ? safe : std::min<Timestamp>(query.snapshot_ts, safe);
  reply->pinned_ts = pinned;
  TableStore* store = backup_->StoreForTable(query.table_id);
  // Bounds-checked by hand: GetTable treats an unknown id as programmer
  // error, but here the id came off the wire.
  if (store == nullptr || query.table_id >= store->num_tables()) {
    return Status::NotFound("no such table: " + std::to_string(query.table_id));
  }
  const storage::ColumnStore* columns =
      backup_->ColumnStoreForTable(query.table_id);
  if (columns != nullptr) {
    storage::ColumnSnapshot snap = columns->SnapshotAt(query.table_id, pinned);
    if (snap.valid()) {
      // Bounded pin: only the residual top-up reads version chains. Once it
      // is copied out, the snapshot is immutable chunk data plus owned rows,
      // so the GC pin can be dropped before the (client-paced) walk below.
      snap.LoadResidual();
      handle.Release();
      reply->digest = snap.Digest();
      if (query.want_rows) {
        snap.ScanRows([&](int64_t key, const Row& row) {
          reply->rows.emplace(key, row);
          return true;
        });
        reply->row_count = reply->rows.size();
      } else {
        reply->row_count = snap.RowCount();
      }
      return Status::OK();
    }
  }
  const Memtable* table = store->GetTable(query.table_id);
  reply->digest = table->DigestAt(pinned);
  if (query.want_rows) {
    table->ScanVisible(pinned, [&](int64_t key, const Row& row) {
      reply->rows.emplace(key, row);
      return true;
    });
    reply->row_count = reply->rows.size();
  } else {
    reply->row_count = table->VisibleRowCount(pinned);
  }
  return Status::OK();
}

Result<QueryClient> QueryClient::Connect(const std::string& host,
                                         uint16_t port, int io_timeout_ms) {
  Result<TcpSocket> conn = TcpSocket::Connect(host, port, io_timeout_ms);
  if (!conn.ok()) return conn.status();
  return QueryClient(std::move(*conn), io_timeout_ms);
}

Result<QueryClient::ScanResult> QueryClient::Scan(TableId table,
                                                  Timestamp snapshot_ts,
                                                  bool want_rows) {
  QueryBody query;
  query.snapshot_ts = snapshot_ts;
  query.table_id = table;
  query.want_rows = want_rows;
  std::string body;
  EncodeQueryBody(query, &body);
  Status s = WriteFrame(&socket_, FrameType::kQuery, body, io_timeout_ms_);
  if (!s.ok()) return s;
  Frame reply;
  s = ReadFrame(&socket_, &decoder_, io_timeout_ms_,
                /*idle_timeout_ms=*/io_timeout_ms_, kNeverStop, &reply);
  if (!s.ok()) return s;
  ScanResult result;
  switch (reply.type) {
    case FrameType::kBusy:
      result.busy = true;
      return result;
    case FrameType::kQueryOk: {
      Result<QueryReplyBody> decoded = DecodeQueryReplyBody(reply.body);
      if (!decoded.ok()) return decoded.status();
      result.pinned_ts = decoded->pinned_ts;
      result.digest = decoded->digest;
      result.row_count = decoded->row_count;
      result.rows = std::move(decoded->rows);
      return result;
    }
    case FrameType::kError:
      return Status::Aborted("server error: " + reply.body);
    default:
      return Status::Corruption("unexpected reply frame type");
  }
}

}  // namespace net
}  // namespace aets
