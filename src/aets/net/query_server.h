#ifndef AETS_NET_QUERY_SERVER_H_
#define AETS_NET_QUERY_SERVER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "aets/common/queue.h"
#include "aets/common/status.h"
#include "aets/net/frame.h"
#include "aets/net/socket.h"
#include "aets/replay/replayer.h"
#include "aets/replay/snapshot_coordinator.h"

namespace aets {
namespace net {

struct QueryServerOptions {
  /// Concurrent session threads — the serving parallelism.
  int max_sessions = 64;
  /// Accepted-but-unclaimed connections. When every session thread is busy
  /// AND this queue is full, new connections get kBusy and are closed
  /// (net.admission_rejects) — load sheds at the door instead of queueing
  /// unboundedly or stalling the accept loop.
  size_t admission_queue = 64;
  int io_timeout_ms = 5'000;
};

/// The analytic serving path (DESIGN.md §12): answers snapshot scans from
/// many concurrent client connections against a live backup while replay
/// advances underneath.
///
/// Session protocol: any number of kQuery frames per connection, one
/// kQueryOk each. Every query pins its own timestamp: with a
/// GlobalSnapshotCoordinator attached, a SnapshotHandle holds the pinned
/// timestamp out of the GC horizon (the cross-shard exactness guarantee of
/// §11); without one, the backup's GlobalVisibleTs() is used. A requested
/// timestamp above the safe frontier is clamped — the reply's pinned_ts
/// reports what was actually served.
///
/// Pin bounding: when the backup maintains a columnar projection for the
/// table (DESIGN.md §13), the pin is held only while the residual rows are
/// copied out of the version chains; the bulk of the scan then walks
/// immutable chunk data with the pin already released, so a slow reader
/// cannot wedge the GC horizon. The row-store fallback still holds the pin
/// for the whole walk (it reads version chains throughout), releasing it
/// before the reply is written to the socket.
///
/// Replay isolation: sessions only read MVCC snapshots and never touch the
/// replay threads; a slow client parks its own session thread in a bounded
/// write (then loses the connection), so epoch shipping and replay cannot
/// be stalled from the query side.
class QueryServer {
 public:
  /// `backup` and `coordinator` (nullable) must outlive the server.
  QueryServer(Replayer* backup, GlobalSnapshotCoordinator* coordinator,
              QueryServerOptions options = {});
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  Status Start(uint16_t port);
  uint16_t port() const { return listener_.port(); }
  void Stop();

  uint64_t queries_served() const {
    return queries_served_.load(std::memory_order_relaxed);
  }
  uint64_t admission_rejects() const {
    return admission_rejects_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void SessionLoop();
  void ServeOne(TcpSocket socket);
  Status ExecuteQuery(const QueryBody& query, QueryReplyBody* reply);

  Replayer* backup_;
  GlobalSnapshotCoordinator* coordinator_;
  QueryServerOptions options_;
  TcpListener listener_;
  std::thread accept_thread_;
  std::vector<std::thread> session_threads_;
  BlockingQueue<TcpSocket> admission_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> queries_served_{0};
  std::atomic<uint64_t> admission_rejects_{0};
};

/// Blocking client for the QueryServer protocol — the test rig, the bench
/// driver, and `net_replay --mode=client` all speak through this.
class QueryClient {
 public:
  struct ScanResult {
    /// True when the server shed the connection at admission (kBusy). The
    /// connection is gone; reconnect to retry.
    bool busy = false;
    Timestamp pinned_ts = kInvalidTimestamp;
    uint64_t digest = 0;
    uint64_t row_count = 0;
    std::map<int64_t, Row> rows;
  };

  static Result<QueryClient> Connect(const std::string& host, uint16_t port,
                                     int io_timeout_ms = 5'000);

  QueryClient(QueryClient&&) = default;
  QueryClient& operator=(QueryClient&&) = default;

  /// One snapshot scan. `snapshot_ts` 0 = latest safe snapshot.
  Result<ScanResult> Scan(TableId table, Timestamp snapshot_ts = 0,
                          bool want_rows = false);

  void Close() { socket_.Close(); }

 private:
  QueryClient(TcpSocket socket, int io_timeout_ms)
      : socket_(std::move(socket)), io_timeout_ms_(io_timeout_ms) {}

  TcpSocket socket_;
  FrameDecoder decoder_;
  int io_timeout_ms_;
};

}  // namespace net
}  // namespace aets

#endif  // AETS_NET_QUERY_SERVER_H_
