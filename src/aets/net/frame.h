#ifndef AETS_NET_FRAME_H_
#define AETS_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "aets/common/result.h"
#include "aets/common/status.h"
#include "aets/log/shipped_epoch.h"
#include "aets/storage/version_chain.h"

namespace aets {
namespace net {

/// Wire framing (DESIGN.md §12). Every message is one frame:
///
///   ┌─────────┬─────────┬───────┬──────────┬───────────┬───────────┐
///   │ magic   │ version │ type  │ body_len │ body      │ crc32c    │
///   │ u16     │ u8      │ u8    │ u32      │ body_len B│ u32       │
///   └─────────┴─────────┴───────┴──────────┴───────────┴───────────┘
///
/// All integers little-endian. The trailer CRC32C covers header + body, so
/// a flipped bit anywhere in the frame — including the length field — is
/// detected before anything is interpreted. A frame that fails magic,
/// version, length-bound, or CRC checks is Corruption; the decoder never
/// silently resynchronizes (a corrupt stream means the connection must be
/// torn down and recovered by reconnect + NACK).
enum class FrameType : uint8_t {
  kHello = 1,      // connection preamble: role + shard
  kEpoch = 2,      // one ShippedEpoch, subscribe-stream push
  kStreamEnd = 3,  // shipper finished; subscriber drains and stops
  kFetch = 4,      // NACK: re-request one epoch (control connection)
  kFetchOk = 5,    // the re-requested epoch
  kFetchMiss = 6,  // not available; carries next/floor epoch ids
  kMeta = 7,       // request next/floor epoch ids
  kMetaOk = 8,     // the ids
  kQuery = 9,      // snapshot scan request
  kQueryOk = 10,   // scan result (digest, count, optional rows)
  kBusy = 11,      // admission queue full — retry later, nothing served
  kError = 12,     // server-side failure executing a request
};

inline constexpr uint16_t kFrameMagic = 0xAE75;
inline constexpr uint8_t kFrameVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 8;
inline constexpr size_t kFrameTrailerBytes = 4;
/// Upper bound on one frame body; anything larger is Corruption (a garbled
/// length field must not make the receiver allocate gigabytes).
inline constexpr size_t kMaxFrameBody = 64u << 20;

struct Frame {
  FrameType type = FrameType::kError;
  std::string body;
};

/// Appends the framed encoding of (type, body) to *out.
void EncodeFrame(FrameType type, std::string_view body, std::string* out);

/// Incremental frame parser: Feed() raw bytes as they arrive, then call
/// Next() until it yields nullopt (need more bytes). Corruption is sticky —
/// after a bad frame every Next() fails until Reset(), because a framed
/// stream cannot be resynchronized past a damaged header. Reset() also
/// discards any half-received frame (the reconnect path: bytes of a torn
/// frame are useless once the peer is gone).
class FrameDecoder {
 public:
  void Feed(const void* data, size_t n);

  /// A complete frame, nullopt (need more bytes), or Corruption.
  Result<std::optional<Frame>> Next();

  /// True when buffered bytes form only part of a frame — an EOF here is a
  /// mid-frame disconnect, which receivers must surface as Corruption /
  /// Aborted, never a clean end of stream.
  bool mid_frame() const { return pos_ < buf_.size(); }

  void Reset();

 private:
  std::string buf_;
  size_t pos_ = 0;  // consumed prefix of buf_
  Status error_;
};

// --- frame bodies ----------------------------------------------------------

/// ShippedEpoch <-> kEpoch/kFetchOk body. Field-for-field the same layout as
/// the durable segment store's frame body (DESIGN.md §10), so the wire and
/// the disk speak one encoding:
///   u64 epoch_id | u64 heartbeat_ts | u64 max_commit_ts | u64 num_txns |
///   u64 num_records | u64 first_txn | u64 last_txn | u32 payload_crc |
///   u32 payload_len | payload
/// DecodeEpochBody verifies payload_len against the body size but NOT the
/// payload CRC — the receiver's normal ingest path does that (PayloadIntact),
/// keeping the corruption-handling single-pathed.
void EncodeEpochBody(const ShippedEpoch& epoch, std::string* out);
Result<ShippedEpoch> DecodeEpochBody(std::string_view body);

enum class HelloRole : uint32_t { kSubscribe = 0, kControl = 1 };
struct HelloBody {
  HelloRole role = HelloRole::kSubscribe;
  uint32_t shard = 0;
};
void EncodeHelloBody(const HelloBody& hello, std::string* out);
Result<HelloBody> DecodeHelloBody(std::string_view body);

struct FetchBody {
  uint64_t epoch_id = 0;
};
void EncodeFetchBody(const FetchBody& fetch, std::string* out);
Result<FetchBody> DecodeFetchBody(std::string_view body);

/// kFetchMiss and kMetaOk share this shape.
struct EpochIdsBody {
  uint64_t next_epoch = 0;
  uint64_t floor_epoch = 0;
};
void EncodeEpochIdsBody(const EpochIdsBody& ids, std::string* out);
Result<EpochIdsBody> DecodeEpochIdsBody(std::string_view body);

struct QueryBody {
  /// 0 = pin the latest safe snapshot; otherwise scan at min(requested,
  /// safe) — the reply reports the timestamp actually used.
  uint64_t snapshot_ts = 0;
  uint32_t table_id = 0;
  /// False = digest + row count only (the cheap verification shape).
  bool want_rows = false;
};
void EncodeQueryBody(const QueryBody& query, std::string* out);
Result<QueryBody> DecodeQueryBody(std::string_view body);

struct QueryReplyBody {
  uint64_t pinned_ts = 0;
  uint64_t digest = 0;
  /// Rows visible at pinned_ts (count always set; rows only on want_rows).
  uint64_t row_count = 0;
  std::map<int64_t, Row> rows;
};
void EncodeQueryReplyBody(const QueryReplyBody& reply, std::string* out);
Result<QueryReplyBody> DecodeQueryReplyBody(std::string_view body);

}  // namespace net
}  // namespace aets

#endif  // AETS_NET_FRAME_H_
