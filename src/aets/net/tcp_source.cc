#include "aets/net/tcp_source.h"

#include <algorithm>
#include <utility>

#include "aets/net/frame_io.h"
#include "aets/obs/metrics.h"

namespace aets {
namespace net {

TcpEpochSource::TcpEpochSource(std::string host, uint16_t port, uint32_t shard,
                               TcpEpochSourceOptions options)
    : host_(std::move(host)), port_(port), shard_(shard), options_(options) {}

TcpEpochSource::~TcpEpochSource() {
  stop_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lk(mu_);
  socket_.Close();
}

Status TcpEpochSource::EnsureConnectedLocked() const {
  if (socket_.valid()) return Status::OK();
  Result<TcpSocket> conn =
      TcpSocket::Connect(host_, port_, options_.connect_timeout_ms);
  if (!conn.ok()) return conn.status();
  socket_ = std::move(*conn);
  decoder_.Reset();
  HelloBody hello{HelloRole::kControl, shard_};
  std::string body;
  EncodeHelloBody(hello, &body);
  Status s = WriteFrame(&socket_, FrameType::kHello, body,
                        options_.io_timeout_ms);
  if (!s.ok()) socket_.Close();
  return s;
}

Status TcpEpochSource::RoundTripLocked(FrameType request_type,
                                       std::string_view body,
                                       Frame* reply) const {
  static obs::Counter* failures = obs::GetCounter("net.nack_rpc_failures");
  Status last = Status::Internal("no RPC attempt made");
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (stop_.load(std::memory_order_relaxed)) {
      return Status::Aborted("source shut down");
    }
    Status s = EnsureConnectedLocked();
    if (s.ok()) {
      s = WriteFrame(&socket_, request_type, body, options_.io_timeout_ms);
    }
    if (s.ok()) {
      // The control protocol is strict request/reply, so the reply deadline
      // doubles as the idle bound.
      s = ReadFrame(&socket_, &decoder_, options_.io_timeout_ms,
                    /*idle_timeout_ms=*/options_.io_timeout_ms, stop_, reply);
    }
    if (s.ok()) return Status::OK();
    // Failed exchange: the stream may hold half a reply — reconnect rather
    // than resynchronize.
    socket_.Close();
    decoder_.Reset();
    rpc_failures_.fetch_add(1, std::memory_order_relaxed);
    failures->Add(1);
    last = std::move(s);
  }
  return last;
}

void TcpEpochSource::RefreshIdsLocked(const EpochIdsBody& ids) const {
  // Monotone ratchet: a reply reordered behind a newer one must not move
  // the replayer's view of the stream backwards.
  cached_next_ = std::max(cached_next_, ids.next_epoch);
  cached_floor_ = std::max(cached_floor_, ids.floor_epoch);
}

Status TcpEpochSource::MetaLocked() const {
  Frame reply;
  Status s = RoundTripLocked(FrameType::kMeta, "", &reply);
  if (!s.ok()) return s;
  if (reply.type != FrameType::kMetaOk) {
    return Status::Corruption("unexpected reply to kMeta");
  }
  Result<EpochIdsBody> ids = DecodeEpochIdsBody(reply.body);
  if (!ids.ok()) return ids.status();
  RefreshIdsLocked(*ids);
  return Status::OK();
}

Status TcpEpochSource::Connect() {
  std::lock_guard<std::mutex> lk(mu_);
  Status s = EnsureConnectedLocked();
  if (!s.ok()) return s;
  return MetaLocked();
}

std::optional<ShippedEpoch> TcpEpochSource::FetchEpoch(EpochId id) {
  std::lock_guard<std::mutex> lk(mu_);
  std::string body;
  EncodeFetchBody(FetchBody{id}, &body);
  Frame reply;
  Status s = RoundTripLocked(FrameType::kFetch, body, &reply);
  if (!s.ok()) return std::nullopt;  // transient: the replayer retries
  switch (reply.type) {
    case FrameType::kFetchOk: {
      Result<ShippedEpoch> epoch = DecodeEpochBody(reply.body);
      if (!epoch.ok()) return std::nullopt;
      return std::move(*epoch);
    }
    case FrameType::kFetchMiss: {
      if (Result<EpochIdsBody> ids = DecodeEpochIdsBody(reply.body);
          ids.ok()) {
        RefreshIdsLocked(*ids);
      }
      return std::nullopt;
    }
    default:
      return std::nullopt;
  }
}

EpochId TcpEpochSource::NextEpochId() const {
  std::lock_guard<std::mutex> lk(mu_);
  // Best effort refresh; on failure the (monotone) cache answers. A stale
  // next id can only under-report the stream end, which ends the final
  // drain early at the already-applied prefix — safe, and the reconnecting
  // stream client extends it on the next pass.
  MetaLocked();
  return cached_next_;
}

EpochId TcpEpochSource::FloorEpochId() const {
  std::lock_guard<std::mutex> lk(mu_);
  MetaLocked();
  return cached_floor_;
}

}  // namespace net
}  // namespace aets
