#include "aets/net/frame.h"

#include <cstring>
#include <memory>
#include <utility>

#include "aets/log/codec.h"
#include "aets/obs/metrics.h"

namespace aets {
namespace net {

namespace {

void PutU8(uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}
void PutU16(uint16_t v, std::string* out) {
  for (int i = 0; i < 2; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}
void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}
void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

/// Bounds-checked little-endian reader over a frame body. Any read past the
/// end sets failed() — bodies are CRC-verified before decode, so a short
/// body is a protocol bug or a malicious peer, and the decoders turn
/// failed() into Corruption.
class BodyReader {
 public:
  explicit BodyReader(std::string_view body) : body_(body) {}

  uint8_t U8() { return static_cast<uint8_t>(Byte()); }
  uint16_t U16() { return static_cast<uint16_t>(Fixed(2)); }
  uint32_t U32() { return static_cast<uint32_t>(Fixed(4)); }
  uint64_t U64() { return Fixed(8); }

  std::string_view Bytes(size_t n) {
    if (body_.size() - pos_ < n) {
      failed_ = true;
      return {};
    }
    std::string_view out = body_.substr(pos_, n);
    pos_ += n;
    return out;
  }

  bool failed() const { return failed_; }
  bool exhausted() const { return pos_ == body_.size(); }

 private:
  char Byte() {
    if (pos_ >= body_.size()) {
      failed_ = true;
      return 0;
    }
    return body_[pos_++];
  }
  uint64_t Fixed(int n) {
    uint64_t v = 0;
    for (int i = 0; i < n; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(Byte())) << (8 * i);
    }
    return v;
  }

  std::string_view body_;
  size_t pos_ = 0;
  bool failed_ = false;
};

Status BodyCorruption(const char* what) {
  return Status::Corruption(std::string("malformed ") + what + " frame body");
}

constexpr uint8_t kValueNull = 0;
constexpr uint8_t kValueInt64 = 1;
constexpr uint8_t kValueDouble = 2;
constexpr uint8_t kValueString = 3;

void PutValue(const Value& value, std::string* out) {
  if (value.is_null()) {
    PutU8(kValueNull, out);
  } else if (value.is_int64()) {
    PutU8(kValueInt64, out);
    PutU64(static_cast<uint64_t>(value.as_int64()), out);
  } else if (value.is_double()) {
    PutU8(kValueDouble, out);
    uint64_t bits = 0;
    double d = value.as_double();
    std::memcpy(&bits, &d, sizeof(bits));
    PutU64(bits, out);
  } else {
    PutU8(kValueString, out);
    PutU32(static_cast<uint32_t>(value.as_string().size()), out);
    out->append(value.as_string());
  }
}

bool ReadValue(BodyReader* in, Value* out) {
  switch (in->U8()) {
    case kValueNull:
      *out = Value::Null();
      break;
    case kValueInt64:
      *out = Value(static_cast<int64_t>(in->U64()));
      break;
    case kValueDouble: {
      uint64_t bits = in->U64();
      double d = 0;
      std::memcpy(&d, &bits, sizeof(d));
      *out = Value(d);
      break;
    }
    case kValueString: {
      uint32_t len = in->U32();
      std::string_view bytes = in->Bytes(len);
      *out = Value(std::string(bytes));
      break;
    }
    default:
      return false;
  }
  return !in->failed();
}

}  // namespace

void EncodeFrame(FrameType type, std::string_view body, std::string* out) {
  size_t header_at = out->size();
  PutU16(kFrameMagic, out);
  PutU8(kFrameVersion, out);
  PutU8(static_cast<uint8_t>(type), out);
  PutU32(static_cast<uint32_t>(body.size()), out);
  out->append(body);
  uint32_t crc = Crc32c(out->data() + header_at, out->size() - header_at);
  PutU32(crc, out);
}

void FrameDecoder::Feed(const void* data, size_t n) {
  // Compact the consumed prefix before it grows unbounded on a long stream.
  if (pos_ > 0 && (pos_ == buf_.size() || pos_ > (64u << 10))) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(static_cast<const char*>(data), n);
}

Result<std::optional<Frame>> FrameDecoder::Next() {
  if (!error_.ok()) return error_;
  const size_t avail = buf_.size() - pos_;
  if (avail < kFrameHeaderBytes) return std::optional<Frame>();
  const uint8_t* h = reinterpret_cast<const uint8_t*>(buf_.data() + pos_);
  uint16_t magic = static_cast<uint16_t>(h[0] | (h[1] << 8));
  uint8_t version = h[2];
  uint8_t type = h[3];
  uint32_t body_len = static_cast<uint32_t>(h[4]) |
                      (static_cast<uint32_t>(h[5]) << 8) |
                      (static_cast<uint32_t>(h[6]) << 16) |
                      (static_cast<uint32_t>(h[7]) << 24);
  static obs::Counter* frame_errors = obs::GetCounter("net.frame_errors");
  if (magic != kFrameMagic) {
    frame_errors->Add(1);
    error_ = Status::Corruption("bad frame magic");
    return error_;
  }
  if (version != kFrameVersion) {
    frame_errors->Add(1);
    error_ = Status::Corruption("unsupported frame version " +
                                std::to_string(version));
    return error_;
  }
  if (body_len > kMaxFrameBody) {
    frame_errors->Add(1);
    error_ = Status::Corruption("oversized frame body: " +
                                std::to_string(body_len) + " bytes");
    return error_;
  }
  const size_t total = kFrameHeaderBytes + body_len + kFrameTrailerBytes;
  if (avail < total) return std::optional<Frame>();
  const uint8_t* t = h + kFrameHeaderBytes + body_len;
  uint32_t wire_crc = static_cast<uint32_t>(t[0]) |
                      (static_cast<uint32_t>(t[1]) << 8) |
                      (static_cast<uint32_t>(t[2]) << 16) |
                      (static_cast<uint32_t>(t[3]) << 24);
  uint32_t crc = Crc32c(h, kFrameHeaderBytes + body_len);
  if (crc != wire_crc) {
    frame_errors->Add(1);
    error_ = Status::Corruption("frame checksum mismatch");
    return error_;
  }
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.body.assign(buf_, pos_ + kFrameHeaderBytes, body_len);
  pos_ += total;
  return std::optional<Frame>(std::move(frame));
}

void FrameDecoder::Reset() {
  buf_.clear();
  pos_ = 0;
  error_ = Status::OK();
}

void EncodeEpochBody(const ShippedEpoch& epoch, std::string* out) {
  PutU64(epoch.epoch_id, out);
  PutU64(epoch.heartbeat_ts, out);
  PutU64(epoch.max_commit_ts, out);
  PutU64(epoch.num_txns, out);
  PutU64(epoch.num_records, out);
  PutU64(epoch.first_txn, out);
  PutU64(epoch.last_txn, out);
  PutU32(epoch.payload_crc, out);
  const size_t payload_len = epoch.payload ? epoch.payload->size() : 0;
  PutU32(static_cast<uint32_t>(payload_len), out);
  if (payload_len > 0) out->append(*epoch.payload);
}

Result<ShippedEpoch> DecodeEpochBody(std::string_view body) {
  BodyReader in(body);
  ShippedEpoch epoch;
  epoch.epoch_id = in.U64();
  epoch.heartbeat_ts = in.U64();
  epoch.max_commit_ts = in.U64();
  epoch.num_txns = in.U64();
  epoch.num_records = in.U64();
  epoch.first_txn = in.U64();
  epoch.last_txn = in.U64();
  epoch.payload_crc = in.U32();
  uint32_t payload_len = in.U32();
  std::string_view payload = in.Bytes(payload_len);
  if (in.failed() || !in.exhausted()) return BodyCorruption("epoch");
  epoch.payload = std::make_shared<const std::string>(payload);
  return epoch;
}

void EncodeHelloBody(const HelloBody& hello, std::string* out) {
  PutU32(static_cast<uint32_t>(hello.role), out);
  PutU32(hello.shard, out);
}

Result<HelloBody> DecodeHelloBody(std::string_view body) {
  BodyReader in(body);
  uint32_t role = in.U32();
  HelloBody hello;
  hello.shard = in.U32();
  if (in.failed() || !in.exhausted() ||
      role > static_cast<uint32_t>(HelloRole::kControl)) {
    return BodyCorruption("hello");
  }
  hello.role = static_cast<HelloRole>(role);
  return hello;
}

void EncodeFetchBody(const FetchBody& fetch, std::string* out) {
  PutU64(fetch.epoch_id, out);
}

Result<FetchBody> DecodeFetchBody(std::string_view body) {
  BodyReader in(body);
  FetchBody fetch;
  fetch.epoch_id = in.U64();
  if (in.failed() || !in.exhausted()) return BodyCorruption("fetch");
  return fetch;
}

void EncodeEpochIdsBody(const EpochIdsBody& ids, std::string* out) {
  PutU64(ids.next_epoch, out);
  PutU64(ids.floor_epoch, out);
}

Result<EpochIdsBody> DecodeEpochIdsBody(std::string_view body) {
  BodyReader in(body);
  EpochIdsBody ids;
  ids.next_epoch = in.U64();
  ids.floor_epoch = in.U64();
  if (in.failed() || !in.exhausted()) return BodyCorruption("epoch-ids");
  return ids;
}

void EncodeQueryBody(const QueryBody& query, std::string* out) {
  PutU64(query.snapshot_ts, out);
  PutU32(query.table_id, out);
  PutU8(query.want_rows ? 1 : 0, out);
}

Result<QueryBody> DecodeQueryBody(std::string_view body) {
  BodyReader in(body);
  QueryBody query;
  query.snapshot_ts = in.U64();
  query.table_id = in.U32();
  uint8_t want = in.U8();
  if (in.failed() || !in.exhausted() || want > 1) {
    return BodyCorruption("query");
  }
  query.want_rows = want == 1;
  return query;
}

void EncodeQueryReplyBody(const QueryReplyBody& reply, std::string* out) {
  PutU64(reply.pinned_ts, out);
  PutU64(reply.digest, out);
  PutU64(reply.row_count, out);
  PutU64(reply.rows.size(), out);
  for (const auto& [key, row] : reply.rows) {
    PutU64(static_cast<uint64_t>(key), out);
    PutU32(static_cast<uint32_t>(row.size()), out);
    for (const auto& [col, value] : row) {
      PutU32(col, out);
      PutValue(value, out);
    }
  }
}

Result<QueryReplyBody> DecodeQueryReplyBody(std::string_view body) {
  BodyReader in(body);
  QueryReplyBody reply;
  reply.pinned_ts = in.U64();
  reply.digest = in.U64();
  reply.row_count = in.U64();
  uint64_t num_rows = in.U64();
  for (uint64_t i = 0; i < num_rows && !in.failed(); ++i) {
    int64_t key = static_cast<int64_t>(in.U64());
    uint32_t num_cols = in.U32();
    Row row;
    row.reserve(num_cols);
    for (uint32_t c = 0; c < num_cols; ++c) {
      ColumnId col = static_cast<ColumnId>(in.U32());
      Value value;
      if (!ReadValue(&in, &value)) return BodyCorruption("query-reply");
      row.Set(col, std::move(value));
    }
    reply.rows.emplace(key, std::move(row));
  }
  if (in.failed() || !in.exhausted()) return BodyCorruption("query-reply");
  return reply;
}

}  // namespace net
}  // namespace aets
