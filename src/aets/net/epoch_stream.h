#ifndef AETS_NET_EPOCH_STREAM_H_
#define AETS_NET_EPOCH_STREAM_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "aets/common/status.h"
#include "aets/net/frame.h"
#include "aets/net/socket.h"
#include "aets/replication/channel.h"
#include "aets/replication/log_shipper.h"

namespace aets {
namespace net {

/// Knobs shared by the shipping-side endpoints. `io_timeout_ms` bounds every
/// single poll() wait; it is the unit the reconnect budget is priced in.
struct EpochStreamServerOptions {
  int io_timeout_ms = 5'000;
  /// Capacity of the per-subscriber staging channel between the shipper and
  /// the writer thread. When a subscriber's TCP window AND this queue are
  /// both full, the shipper's Send fails and the epoch is recovered later by
  /// NACK — a slow subscriber never backpressures commit.
  size_t subscriber_queue = 256;
};

/// The primary-side network endpoint: accepts connections, reads one Hello
/// frame, then serves either role:
///
///   kSubscribe — attaches a fresh bounded EpochChannel to the shipper's
///     lane for the requested shard and streams every delivered epoch as a
///     kEpoch frame. A write timeout or reset closes the channel (the
///     shipper counts the failures; the data stays NACK-able) and ends the
///     session — recovery is the subscriber's reconnect.
///   kControl — a synchronous RPC loop serving the NACK protocol over the
///     wire: kFetch -> kFetchOk/kFetchMiss, kMeta -> kMetaOk. This is the
///     transport behind TcpEpochSource.
///
/// Each subscriber's staging channel is owned by the server and detached
/// from the shipper (LogShipper::DetachChannel) before it is destroyed —
/// when the subscriber dies, when its stream completes, or at Stop() — so a
/// server may be torn down and replaced while the shipper keeps running.
class EpochStreamServer {
 public:
  explicit EpochStreamServer(LogShipper* shipper,
                             EpochStreamServerOptions options = {});
  ~EpochStreamServer();

  EpochStreamServer(const EpochStreamServer&) = delete;
  EpochStreamServer& operator=(const EpochStreamServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral, see port()) and starts the
  /// accept loop.
  Status Start(uint16_t port);
  uint16_t port() const { return listener_.port(); }

  /// Stops accepting, tears down every session, joins all threads. Epochs
  /// still queued for a subscriber are dropped (NACK-recoverable).
  void Stop();

  /// Test seam: wraps each subscriber's staging channel (e.g. in a
  /// FaultInjectingChannel) so link faults can be injected between the
  /// shipper and the wire. Call before Start().
  using ChannelFactory =
      std::function<std::unique_ptr<EpochChannel>(size_t capacity)>;
  void SetChannelFactoryForTest(ChannelFactory factory);

  uint64_t subscribers_accepted() const {
    return subscribers_accepted_.load(std::memory_order_relaxed);
  }
  uint64_t control_accepted() const {
    return control_accepted_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void RunSession(TcpSocket socket);
  void RunSubscriber(TcpSocket socket, uint32_t shard);
  /// `decoder` is the session decoder, carried over from the Hello read: a
  /// pipelined client may land its first request in the same TCP segment as
  /// the Hello, and those buffered bytes must not be dropped.
  void RunControl(TcpSocket socket, FrameDecoder decoder, uint32_t shard);
  void ReapFinishedSessions();
  /// Detaches `channel` from the shipper, then drops the owning entry.
  void ReleaseSubscriberChannel(EpochChannel* channel);

  LogShipper* shipper_;
  EpochStreamServerOptions options_;
  ChannelFactory channel_factory_;
  TcpListener listener_;
  std::thread accept_thread_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> subscribers_accepted_{0};
  std::atomic<uint64_t> control_accepted_{0};

  std::mutex sessions_mu_;
  struct Session {
    std::thread thread;
    std::atomic<bool> done{false};
  };
  std::vector<std::unique_ptr<Session>> sessions_;
  /// Live subscribers' staging channels — see class comment for lifetime.
  std::vector<std::unique_ptr<EpochChannel>> channels_;
};

struct EpochStreamClientOptions {
  int io_timeout_ms = 5'000;
  int connect_timeout_ms = 5'000;
  /// Consecutive failed reconnect attempts before the stream is declared
  /// dead and the sink channel is closed (the replayer then final-drains
  /// through its NACK source — which may itself still reconnect).
  int max_reconnects = 8;
  /// Base sleep between reconnect attempts; grows linearly per attempt.
  int reconnect_backoff_ms = 20;
};

/// The backup-side subscriber: connects, sends Hello(kSubscribe, shard), and
/// pumps every kEpoch frame into `sink` — the same EpochChannel the replayer
/// drains, so the socket is invisible to the replay path. Frame corruption,
/// resets, and mid-frame EOFs all funnel into one recovery: drop the
/// connection (and any torn frame), reconnect with bounded backoff, and let
/// the replayer NACK the gap. kStreamEnd closes the sink, which triggers the
/// replayer's final drain.
class EpochStreamClient {
 public:
  EpochStreamClient(std::string host, uint16_t port, uint32_t shard,
                    EpochChannel* sink, EpochStreamClientOptions options = {});
  ~EpochStreamClient();

  EpochStreamClient(const EpochStreamClient&) = delete;
  EpochStreamClient& operator=(const EpochStreamClient&) = delete;

  /// Connects (failing fast if the server is unreachable) and starts the
  /// reader thread.
  Status Start();

  /// Tears the connection down and joins. Closes the sink if the stream did
  /// not already end cleanly.
  void Stop();

  /// True once kStreamEnd was received (the shipper finished).
  bool clean_end() const { return clean_end_.load(std::memory_order_acquire); }
  uint64_t reconnects() const {
    return reconnects_.load(std::memory_order_relaxed);
  }
  uint64_t epochs_received() const {
    return epochs_received_.load(std::memory_order_relaxed);
  }

 private:
  Status ConnectAndHello(TcpSocket* socket);
  void ReadLoop();

  const std::string host_;
  const uint16_t port_;
  const uint32_t shard_;
  EpochChannel* sink_;
  EpochStreamClientOptions options_;

  std::mutex socket_mu_;  // guards socket_ between ReadLoop and Stop
  TcpSocket socket_;
  std::thread reader_thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> clean_end_{false};
  std::atomic<uint64_t> reconnects_{0};
  std::atomic<uint64_t> epochs_received_{0};
};

}  // namespace net
}  // namespace aets

#endif  // AETS_NET_EPOCH_STREAM_H_
