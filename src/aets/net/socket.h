#ifndef AETS_NET_SOCKET_H_
#define AETS_NET_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "aets/common/result.h"
#include "aets/common/status.h"

namespace aets {
namespace net {

/// RAII wrapper over a connected stream socket (TCP or a socketpair) with
/// poll()-based I/O deadlines. Every socket is non-blocking; reads and
/// writes park in poll() for at most `timeout_ms` per wait, so a wedged
/// peer surfaces as Status::TimedOut instead of a hung thread. Writes use
/// MSG_NOSIGNAL — a reset peer is Status::Aborted, never SIGPIPE.
///
/// Error taxonomy (shared by every caller in aets/net):
///   TimedOut — the deadline passed with no progress; the connection MAY
///              still be healthy (slow peer). Stream senders treat a write
///              timeout as a dead link anyway, because a partial frame
///              desyncs the byte stream.
///   Aborted  — the peer closed or reset the connection (EOF mid-read,
///              EPIPE/ECONNRESET). Recoverable only by reconnecting.
class TcpSocket {
 public:
  TcpSocket() = default;
  /// Adopts `fd` (sets non-blocking + TCP_NODELAY where applicable).
  explicit TcpSocket(int fd);
  ~TcpSocket() { Close(); }

  TcpSocket(TcpSocket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  TcpSocket& operator=(TcpSocket&& other) noexcept;
  TcpSocket(const TcpSocket&) = delete;
  TcpSocket& operator=(const TcpSocket&) = delete;

  /// Connects to `host:port` (numeric IPv4, or "localhost"). Non-blocking
  /// connect bounded by `timeout_ms`.
  static Result<TcpSocket> Connect(const std::string& host, uint16_t port,
                                   int timeout_ms);

  /// A connected AF_UNIX stream pair — the loopback harness for the wire
  /// tests (identical stream semantics, no port allocation).
  static Result<std::pair<TcpSocket, TcpSocket>> Pair();

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Writes all `n` bytes. Fails TimedOut only when a full `timeout_ms`
  /// window passes with zero progress — a slow-but-moving peer keeps the
  /// write alive. On failure the stream position is unspecified (a partial
  /// frame may be on the wire), so framed senders must treat any failure as
  /// a dead connection.
  Status WriteAll(const void* data, size_t n, int timeout_ms);

  /// Reads 1..n bytes. Returns 0 on clean EOF, TimedOut when `timeout_ms`
  /// passes with nothing readable, Aborted on reset.
  Result<size_t> ReadSome(void* buf, size_t n, int timeout_ms);

  /// Reads exactly `n` bytes; EOF mid-read is Aborted (a torn frame).
  Status ReadAll(void* buf, size_t n, int timeout_ms);

  /// Half-close: the peer's next read sees EOF. Mid-frame-disconnect tests
  /// use this to tear a frame deterministically.
  void ShutdownSend();
  /// Full shutdown: unblocks any thread parked in poll() on this socket.
  void ShutdownBoth();
  void Close();

 private:
  int fd_ = -1;
};

/// Listening TCP socket bound to 127.0.0.1. Port 0 asks the kernel for an
/// ephemeral port; port() reports the bound one (the test rigs and the
/// `net_replay` example print it so a driver script can connect).
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener() { Close(); }

  TcpListener(TcpListener&& other) noexcept
      : fd_(other.fd_), port_(other.port_) {
    other.fd_ = -1;
    other.port_ = 0;
  }
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  static Result<TcpListener> Bind(uint16_t port);

  /// Waits up to `timeout_ms` for one connection; TimedOut when none
  /// arrives (accept loops poll this so Stop() is prompt).
  Result<TcpSocket> Accept(int timeout_ms);

  bool valid() const { return fd_ >= 0; }
  uint16_t port() const { return port_; }
  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace net
}  // namespace aets

#endif  // AETS_NET_SOCKET_H_
