#ifndef AETS_NET_FRAME_IO_H_
#define AETS_NET_FRAME_IO_H_

#include <atomic>
#include <string_view>

#include "aets/common/status.h"
#include "aets/net/frame.h"
#include "aets/net/socket.h"

namespace aets {
namespace net {

/// Poll granularity for idle waits: blocking loops notice a stop request
/// within this window regardless of the configured I/O deadline.
inline constexpr int kIdleSliceMs = 100;

/// Reads one frame off `socket` through `decoder`. Waits between frames are
/// bounded by `idle_timeout_ms` (-1 = wait forever); a wait with bytes of a
/// frame already buffered is bounded by `io_timeout_ms` — a peer that stops
/// mid-frame is wedged, not idle. Returns:
///   OK         — *out holds a frame
///   Aborted    — clean EOF between frames (peer done) or connection reset
///   TimedOut   — idle/mid-frame deadline passed, or `stop` tripped
///   Corruption — framing failure (bad magic/version/CRC/oversize) or EOF
///                mid-frame (a torn frame is damage, not a clean end)
Status ReadFrame(TcpSocket* socket, FrameDecoder* decoder, int io_timeout_ms,
                 int idle_timeout_ms, const std::atomic<bool>& stop,
                 Frame* out);

/// Encodes and writes one frame; any failure means the stream position is
/// unspecified (possibly mid-frame) and the connection must be dropped.
Status WriteFrame(TcpSocket* socket, FrameType type, std::string_view body,
                  int io_timeout_ms);

}  // namespace net
}  // namespace aets

#endif  // AETS_NET_FRAME_IO_H_
