#include "aets/predictor/dtgm.h"

#include <algorithm>
#include <cmath>

#include "aets/common/macros.h"

namespace aets {

DtgmPredictor::DtgmPredictor(DtgmConfig config)
    : config_(config), init_rng_(config.seed) {}

void DtgmPredictor::BuildAdjacency(const RateMatrix& history) {
  int n = num_tables_;
  int slots = static_cast<int>(history.size());
  // Pearson correlation between table series; |corr| >= 0.4 forms an edge.
  std::vector<double> mean(static_cast<size_t>(n), 0.0);
  for (const auto& row : history) {
    for (int t = 0; t < n; ++t) mean[static_cast<size_t>(t)] += row[static_cast<size_t>(t)];
  }
  for (double& m : mean) m /= slots;
  std::vector<double> var(static_cast<size_t>(n), 0.0);
  for (const auto& row : history) {
    for (int t = 0; t < n; ++t) {
      double d = row[static_cast<size_t>(t)] - mean[static_cast<size_t>(t)];
      var[static_cast<size_t>(t)] += d * d;
    }
  }
  std::vector<double> adj(static_cast<size_t>(n * n), 0.0);
  for (int a = 0; a < n; ++a) {
    adj[static_cast<size_t>(a * n + a)] = 1.0;  // self loop
    for (int b = a + 1; b < n; ++b) {
      if (var[static_cast<size_t>(a)] < 1e-9 || var[static_cast<size_t>(b)] < 1e-9) continue;
      double cov = 0;
      for (const auto& row : history) {
        cov += (row[static_cast<size_t>(a)] - mean[static_cast<size_t>(a)]) *
               (row[static_cast<size_t>(b)] - mean[static_cast<size_t>(b)]);
      }
      double corr = cov / std::sqrt(var[static_cast<size_t>(a)] * var[static_cast<size_t>(b)]);
      if (std::abs(corr) >= 0.4) {
        adj[static_cast<size_t>(a * n + b)] = std::abs(corr);
        adj[static_cast<size_t>(b * n + a)] = std::abs(corr);
      }
    }
  }
  // Row-normalize.
  for (int a = 0; a < n; ++a) {
    double sum = 0;
    for (int b = 0; b < n; ++b) sum += adj[static_cast<size_t>(a * n + b)];
    if (sum > 0) {
      for (int b = 0; b < n; ++b) adj[static_cast<size_t>(a * n + b)] /= sum;
    }
  }
  // Powers C^1..C^K.
  adj_powers_.clear();
  std::vector<double> power = adj;
  for (int k = 0; k < config_.adj_powers; ++k) {
    adj_powers_.push_back(Tensor::FromData({n, n}, power));
    if (k + 1 < config_.adj_powers) {
      std::vector<double> next(static_cast<size_t>(n * n), 0.0);
      for (int a = 0; a < n; ++a) {
        for (int c = 0; c < n; ++c) {
          double v = power[static_cast<size_t>(a * n + c)];
          if (v == 0) continue;
          for (int b = 0; b < n; ++b) {
            next[static_cast<size_t>(a * n + b)] += v * adj[static_cast<size_t>(c * n + b)];
          }
        }
      }
      power = std::move(next);
    }
  }
}

std::vector<Tensor> DtgmPredictor::Parameters() const {
  std::vector<Tensor> params = {input_proj_, out_w1_, out_w2_};
  for (const auto& layer : layers_) {
    params.push_back(layer.conv_filter);
    params.push_back(layer.conv_gate);
    params.push_back(layer.skip_w);
    for (const auto& w : layer.gcn_w) params.push_back(w);
  }
  return params;
}

Tensor DtgmPredictor::Forward(const Tensor& input, bool training,
                              Rng* dropout_rng) {
  int f = config_.hidden;
  // Input projection 1 -> F features.
  Tensor h = Tensor::Linear(input, input_proj_);
  Tensor skip;
  for (int l = 0; l < static_cast<int>(layers_.size()); ++l) {
    const Layer& layer = layers_[static_cast<size_t>(l)];
    int dilation = 1 << l;
    // Gated TCN: tanh(theta1 * H) ⊙ sigmoid(theta2 * H).
    Tensor filt =
        Tensor::Tanh(Tensor::Conv1dTime(h, layer.conv_filter, dilation));
    Tensor gate =
        Tensor::Sigmoid(Tensor::Conv1dTime(h, layer.conv_gate, dilation));
    Tensor zt = Tensor::Mul(filt, gate);
    zt = Tensor::Dropout(zt, config_.dropout, dropout_rng, training);

    // Skip connection from the temporal features.
    Tensor s = Tensor::Linear(zt, layer.skip_w);
    skip = skip.defined() ? Tensor::Add(skip, s) : s;

    // GCN pooling: Z = sum_k C^k Zt W_k (k = 0 is the identity term,
    // realized by gcn_w[0] as a plain linear map).
    Tensor zg = Tensor::Linear(zt, layer.gcn_w[0]);
    if (config_.use_gcn) {
      for (int k = 0; k < config_.adj_powers; ++k) {
        zg = Tensor::Add(
            zg, Tensor::NodeMix(zt, adj_powers_[static_cast<size_t>(k)],
                                layer.gcn_w[static_cast<size_t>(k + 1)]));
      }
    }
    // Residual connection.
    h = Tensor::Add(zg, h);
  }
  // Readout: last time step of the skip accumulator -> horizon outputs.
  Tensor last = Tensor::SelectTime(Tensor::Relu(skip), skip.dim(0) - 1);
  Tensor hidden = Tensor::Relu(Tensor::Linear(last, out_w1_));
  (void)f;
  return Tensor::Linear(hidden, out_w2_);  // [N, horizon]
}

void DtgmPredictor::RefreshNormalization(const RateMatrix& history) {
  int slots = static_cast<int>(history.size());
  mean_.assign(static_cast<size_t>(num_tables_), 0.0);
  stdev_.assign(static_cast<size_t>(num_tables_), 1.0);
  for (const auto& row : history) {
    for (int t = 0; t < num_tables_; ++t) mean_[static_cast<size_t>(t)] += row[static_cast<size_t>(t)];
  }
  for (double& m : mean_) m /= slots;
  for (const auto& row : history) {
    for (int t = 0; t < num_tables_; ++t) {
      double d = row[static_cast<size_t>(t)] - mean_[static_cast<size_t>(t)];
      stdev_[static_cast<size_t>(t)] += d * d;
    }
  }
  for (double& s : stdev_) s = std::max(1e-6, std::sqrt(s / slots));
}

void DtgmPredictor::Fit(const RateMatrix& history) {
  AETS_CHECK(!history.empty());
  num_tables_ = static_cast<int>(history.front().size());
  int slots = static_cast<int>(history.size());
  int window = config_.input_window;
  AETS_CHECK_MSG(slots >= window + config_.horizon + 1,
                 "history too short for the configured window/horizon");

  BuildAdjacency(history);
  RefreshNormalization(history);

  // Parameters.
  int f = config_.hidden;
  input_proj_ = Tensor::Xavier({1, f}, &init_rng_);
  layers_.clear();
  for (int l = 0; l < config_.layers; ++l) {
    Layer layer;
    layer.conv_filter = Tensor::Xavier({config_.kernel, f, f}, &init_rng_);
    layer.conv_gate = Tensor::Xavier({config_.kernel, f, f}, &init_rng_);
    layer.skip_w = Tensor::Xavier({f, f}, &init_rng_);
    for (int k = 0; k <= config_.adj_powers; ++k) {
      layer.gcn_w.push_back(Tensor::Xavier({f, f}, &init_rng_));
    }
    layers_.push_back(std::move(layer));
  }
  out_w1_ = Tensor::Xavier({f, f}, &init_rng_);
  out_w2_ = Tensor::Xavier({f, config_.horizon}, &init_rng_);

  TrainSteps(history, config_.train_steps, config_.lr);
  fitted_ = true;
}

void DtgmPredictor::FineTune(const RateMatrix& history, int steps) {
  AETS_CHECK_MSG(fitted_, "FineTune requires a prior Fit");
  AETS_CHECK(static_cast<int>(history.front().size()) == num_tables_);
  AETS_CHECK(static_cast<int>(history.size()) >=
             config_.input_window + config_.horizon + 1);
  RefreshNormalization(history);
  // A tenth of the base learning rate: nudge the weights toward the shifted
  // distribution without forgetting the learned dynamics.
  TrainSteps(history, steps, config_.lr * 0.1);
}

void DtgmPredictor::TrainSteps(const RateMatrix& history, int steps,
                               double lr) {
  int slots = static_cast<int>(history.size());
  int window = config_.input_window;

  AdamOptimizer::Options opt_options;
  opt_options.lr = lr;
  opt_options.weight_decay = config_.weight_decay;
  opt_options.lr_decay = config_.lr_decay;
  opt_options.lr_decay_every = config_.lr_decay_every;
  AdamOptimizer optimizer(Parameters(), opt_options);

  auto normalized = [&](int slot, int table) {
    return (history[static_cast<size_t>(slot)][static_cast<size_t>(table)] -
            mean_[static_cast<size_t>(table)]) /
           stdev_[static_cast<size_t>(table)];
  };

  Rng sample_rng(config_.seed ^ 0xD76A);
  Rng dropout_rng(config_.seed ^ 0x9F2B);
  int max_start = slots - window - config_.horizon;
  for (int step = 0; step < steps; ++step) {
    Tensor total_loss;
    for (int b = 0; b < config_.batch; ++b) {
      int start = static_cast<int>(sample_rng.UniformInt(0, max_start));
      // Input window [T, N, 1].
      std::vector<double> in_data(
          static_cast<size_t>(window * num_tables_));
      for (int t = 0; t < window; ++t) {
        for (int node = 0; node < num_tables_; ++node) {
          in_data[static_cast<size_t>(t * num_tables_ + node)] =
              normalized(start + t, node);
        }
      }
      Tensor input = Tensor::FromData({window, num_tables_, 1},
                                      std::move(in_data));
      // Target [N, horizon].
      std::vector<double> target_data(
          static_cast<size_t>(num_tables_ * config_.horizon));
      for (int node = 0; node < num_tables_; ++node) {
        for (int h = 0; h < config_.horizon; ++h) {
          target_data[static_cast<size_t>(node * config_.horizon + h)] =
              normalized(start + window + h, node);
        }
      }
      Tensor target = Tensor::FromData({num_tables_, config_.horizon},
                                       std::move(target_data));
      Tensor pred = Forward(input, /*training=*/true, &dropout_rng);
      Tensor loss = Tensor::MaeLoss(pred, target);
      total_loss = total_loss.defined() ? Tensor::Add(total_loss, loss) : loss;
    }
    total_loss = Tensor::Scale(total_loss, 1.0 / config_.batch);
    total_loss.Backward();
    optimizer.Step();
    final_loss_ = total_loss.item();
  }
}

RateMatrix DtgmPredictor::Predict(const RateMatrix& recent, int horizon) {
  AETS_CHECK(fitted_);
  AETS_CHECK(horizon <= config_.horizon);
  AETS_CHECK(static_cast<int>(recent.size()) >= config_.input_window);
  int window = config_.input_window;
  size_t offset = recent.size() - static_cast<size_t>(window);
  std::vector<double> in_data(static_cast<size_t>(window * num_tables_));
  for (int t = 0; t < window; ++t) {
    for (int node = 0; node < num_tables_; ++node) {
      in_data[static_cast<size_t>(t * num_tables_ + node)] =
          (recent[offset + static_cast<size_t>(t)][static_cast<size_t>(node)] -
           mean_[static_cast<size_t>(node)]) /
          stdev_[static_cast<size_t>(node)];
    }
  }
  Tensor input = Tensor::FromData({window, num_tables_, 1}, std::move(in_data));
  Rng dummy(0);
  Tensor pred = Forward(input, /*training=*/false, &dummy);
  RateMatrix out(static_cast<size_t>(horizon),
                 std::vector<double>(static_cast<size_t>(num_tables_), 0.0));
  for (int node = 0; node < num_tables_; ++node) {
    for (int h = 0; h < horizon; ++h) {
      double z = pred.data()[static_cast<size_t>(node * config_.horizon + h)];
      out[static_cast<size_t>(h)][static_cast<size_t>(node)] = std::max(
          0.0, z * stdev_[static_cast<size_t>(node)] + mean_[static_cast<size_t>(node)]);
    }
  }
  return out;
}

}  // namespace aets
