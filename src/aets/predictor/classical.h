#ifndef AETS_PREDICTOR_CLASSICAL_H_
#define AETS_PREDICTOR_CLASSICAL_H_

#include <string>
#include <vector>

#include "aets/predictor/predictor.h"

namespace aets {

/// Historical average: forecasts every horizon step as the mean of the last
/// `window` observed slots (paper Table III: HA uses the last 60 minutes,
/// giving the same MAPE at every horizon).
class HaPredictor : public RatePredictor {
 public:
  explicit HaPredictor(int window = 60) : window_(window) {}

  std::string name() const override { return "HA"; }
  void Fit(const RateMatrix& history) override;
  RateMatrix Predict(const RateMatrix& recent, int horizon) override;

 private:
  int window_;
};

/// ARIMA(p, d, q) per table, estimated by the Hannan–Rissanen two-stage
/// procedure: a long autoregression supplies innovation estimates, then the
/// ARMA coefficients are fit jointly by least squares on the d-differenced
/// series. Forecasts iterate the recursion and integrate back.
class ArimaPredictor : public RatePredictor {
 public:
  ArimaPredictor(int p = 4, int d = 1, int q = 2) : p_(p), d_(d), q_(q) {}

  std::string name() const override { return "ARIMA"; }
  void Fit(const RateMatrix& history) override;
  RateMatrix Predict(const RateMatrix& recent, int horizon) override;

 private:
  struct TableModel {
    std::vector<double> ar;  // phi_1..phi_p
    std::vector<double> ma;  // theta_1..theta_q
    double intercept = 0;
    bool valid = false;
  };

  /// Differences `series` d times.
  static std::vector<double> Difference(const std::vector<double>& series,
                                        int d);

  int p_, d_, q_;
  std::vector<TableModel> models_;
};

}  // namespace aets

#endif  // AETS_PREDICTOR_CLASSICAL_H_
