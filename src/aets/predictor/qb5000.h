#ifndef AETS_PREDICTOR_QB5000_H_
#define AETS_PREDICTOR_QB5000_H_

#include <memory>
#include <string>
#include <vector>

#include "aets/predictor/lstm.h"
#include "aets/predictor/predictor.h"

namespace aets {

struct Qb5000Config {
  int lag_window = 16;        // lags fed to LR and KR
  int horizon = 60;
  double kr_bandwidth = 2.0;  // kernel bandwidth in normalized units
  int kr_max_samples = 800;   // training windows retained for KR
  LstmConfig lstm;
  uint64_t seed = 99;
};

/// QB5000 (Ma et al., SIGMOD'18) workload forecaster: the equally weighted
/// ensemble of linear regression, an LSTM, and kernel (Nadaraya–Watson)
/// regression over lag windows. Reimplemented here as the paper's Table III
/// comparison point.
class Qb5000Predictor : public RatePredictor {
 public:
  explicit Qb5000Predictor(Qb5000Config config = Qb5000Config());

  std::string name() const override { return "QB5000"; }
  void Fit(const RateMatrix& history) override;
  RateMatrix Predict(const RateMatrix& recent, int horizon) override;

 private:
  /// Per-horizon-step linear model over the pooled (all tables) lag windows.
  struct LinearModel {
    std::vector<std::vector<double>> theta;  // [horizon][lag+1]
  };
  /// KR sample: a normalized lag window plus its future values.
  struct KrSample {
    std::vector<double> lags;                 // [lag]
    std::vector<double> futures;              // [horizon]
  };

  std::vector<double> NormalizeLags(const std::vector<double>& raw,
                                    double* scale) const;

  Qb5000Config config_;
  LinearModel lr_;
  std::vector<KrSample> kr_samples_;
  std::unique_ptr<LstmPredictor> lstm_;
  bool fitted_ = false;
};

}  // namespace aets

#endif  // AETS_PREDICTOR_QB5000_H_
