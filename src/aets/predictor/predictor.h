#ifndef AETS_PREDICTOR_PREDICTOR_H_
#define AETS_PREDICTOR_PREDICTOR_H_

#include <string>
#include <vector>

namespace aets {

/// Time-series matrix: series[slot][table] = access count in that slot.
using RateMatrix = std::vector<std::vector<double>>;

/// A table-access-rate forecaster (paper Section IV-A). Implementations:
/// HA, ARIMA, QB5000 (LR+LSTM+KR ensemble), and DTGM.
class RatePredictor {
 public:
  virtual ~RatePredictor() = default;

  virtual std::string name() const = 0;

  /// Trains on the history matrix.
  virtual void Fit(const RateMatrix& history) = 0;

  /// Given the most recent window of observations, forecasts the next
  /// `horizon` slots: result[h][table].
  virtual RateMatrix Predict(const RateMatrix& recent, int horizon) = 0;
};

/// Mean absolute percentage error between matching entries; entries whose
/// actual value is ~0 are skipped (the paper's MAPE definition divides by
/// the actual rate).
double Mape(const std::vector<double>& actual, const std::vector<double>& pred);

/// Walk-forward evaluation: for each test position, feed the predictor the
/// preceding `window` slots and score its forecast at exactly `horizon`
/// steps ahead. Returns MAPE over all test positions and tables.
double EvaluateHorizonMape(RatePredictor* predictor, const RateMatrix& series,
                           int train_slots, int window, int horizon,
                           int stride = 1);

}  // namespace aets

#endif  // AETS_PREDICTOR_PREDICTOR_H_
