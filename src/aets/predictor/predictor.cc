#include "aets/predictor/predictor.h"

#include <cmath>

#include "aets/common/macros.h"

namespace aets {

double Mape(const std::vector<double>& actual, const std::vector<double>& pred) {
  AETS_CHECK(actual.size() == pred.size());
  double sum = 0;
  size_t n = 0;
  for (size_t i = 0; i < actual.size(); ++i) {
    if (std::abs(actual[i]) < 1e-9) continue;  // undefined for zero actuals
    sum += std::abs((actual[i] - pred[i]) / actual[i]);
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double EvaluateHorizonMape(RatePredictor* predictor, const RateMatrix& series,
                           int train_slots, int window, int horizon,
                           int stride) {
  AETS_CHECK(train_slots + horizon <= static_cast<int>(series.size()));
  AETS_CHECK(window <= train_slots && stride >= 1);
  RateMatrix train(series.begin(), series.begin() + train_slots);
  predictor->Fit(train);

  std::vector<double> actual_all, pred_all;
  // Test positions: forecast origin t in [train_slots, size - horizon].
  for (int t = train_slots; t + horizon <= static_cast<int>(series.size());
       t += stride) {
    RateMatrix recent(series.begin() + (t - window), series.begin() + t);
    RateMatrix forecast = predictor->Predict(recent, horizon);
    AETS_CHECK(static_cast<int>(forecast.size()) == horizon);
    const std::vector<double>& actual =
        series[static_cast<size_t>(t + horizon - 1)];
    const std::vector<double>& pred = forecast.back();
    actual_all.insert(actual_all.end(), actual.begin(), actual.end());
    pred_all.insert(pred_all.end(), pred.begin(), pred.end());
  }
  return Mape(actual_all, pred_all);
}

}  // namespace aets
