#include "aets/predictor/dbscan.h"

#include <cmath>
#include <deque>

#include "aets/common/macros.h"

namespace aets {

namespace {

double Dist2(const std::vector<double>& a, const std::vector<double>& b) {
  double d2 = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    d2 += d * d;
  }
  return d2;
}

std::vector<int> Neighbors(const std::vector<std::vector<double>>& points,
                           size_t p, double eps2) {
  std::vector<int> out;
  for (size_t q = 0; q < points.size(); ++q) {
    if (Dist2(points[p], points[q]) <= eps2) out.push_back(static_cast<int>(q));
  }
  return out;
}

}  // namespace

std::vector<int> Dbscan(const std::vector<std::vector<double>>& points,
                        double eps, int min_pts) {
  AETS_CHECK(eps >= 0 && min_pts >= 1);
  const size_t n = points.size();
  constexpr int kUnvisited = -2;
  constexpr int kNoise = -1;
  std::vector<int> labels(n, kUnvisited);
  double eps2 = eps * eps;
  int cluster = 0;
  for (size_t p = 0; p < n; ++p) {
    if (labels[p] != kUnvisited) continue;
    auto neigh = Neighbors(points, p, eps2);
    if (static_cast<int>(neigh.size()) < min_pts) {
      labels[p] = kNoise;
      continue;
    }
    int cid = cluster++;
    labels[p] = cid;
    std::deque<int> frontier(neigh.begin(), neigh.end());
    while (!frontier.empty()) {
      int q = frontier.front();
      frontier.pop_front();
      if (labels[q] == kNoise) labels[q] = cid;  // border point
      if (labels[q] != kUnvisited) continue;
      labels[q] = cid;
      auto q_neigh = Neighbors(points, static_cast<size_t>(q), eps2);
      if (static_cast<int>(q_neigh.size()) >= min_pts) {
        frontier.insert(frontier.end(), q_neigh.begin(), q_neigh.end());
      }
    }
  }
  return labels;
}

std::vector<int> Dbscan1d(const std::vector<double>& values, double eps,
                          int min_pts) {
  std::vector<std::vector<double>> points;
  points.reserve(values.size());
  for (double v : values) points.push_back({v});
  return Dbscan(points, eps, min_pts);
}

}  // namespace aets
