#ifndef AETS_PREDICTOR_TENSOR_H_
#define AETS_PREDICTOR_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "aets/common/rng.h"

namespace aets {

/// A dense N-dimensional tensor node in a dynamically built autograd graph.
/// The op set is exactly what the predictor models need: matmul, elementwise
/// arithmetic and activations, dilated causal 1-D convolution over time,
/// graph (adjacency-power) mixing over the node dimension, pointwise linear
/// feature maps, dropout, slicing the time axis, and an MAE loss.
///
/// Tensors have shared-pointer semantics: copies alias the same storage.
/// Backward (`Tensor::Backward`) runs reverse-mode accumulation over the
/// graph in topological order.
class Tensor {
 public:
  Tensor() = default;

  /// Allocates a zero tensor of the given shape.
  static Tensor Zeros(std::vector<int> shape, bool requires_grad = false);
  /// Allocates with every element `value`.
  static Tensor Full(std::vector<int> shape, double value,
                     bool requires_grad = false);
  /// Xavier/Glorot uniform init (fan_in/fan_out from the first/last dims).
  static Tensor Xavier(std::vector<int> shape, Rng* rng);
  /// Wraps existing data (copied).
  static Tensor FromData(std::vector<int> shape, std::vector<double> data,
                         bool requires_grad = false);

  bool defined() const { return impl_ != nullptr; }
  const std::vector<int>& shape() const;
  int dim(int i) const { return shape()[static_cast<size_t>(i)]; }
  int ndim() const { return static_cast<int>(shape().size()); }
  int64_t size() const;
  bool requires_grad() const;

  std::vector<double>& data();
  const std::vector<double>& data() const;
  std::vector<double>& grad();
  const std::vector<double>& grad() const;

  double item() const;  // scalar tensors only

  /// Runs reverse-mode autodiff from this (scalar) tensor.
  void Backward();

  /// Zeroes the gradient buffer.
  void ZeroGrad();

  // ---- Differentiable ops (build graph nodes) ----

  /// Matrix product: [m,k] x [k,n] -> [m,n].
  static Tensor MatMul(const Tensor& a, const Tensor& b);
  /// Elementwise sum of same-shape tensors.
  static Tensor Add(const Tensor& a, const Tensor& b);
  /// Broadcast-adds a vector [F] over the last axis of `a` [..., F].
  static Tensor AddBias(const Tensor& a, const Tensor& bias);
  /// Elementwise (Hadamard) product.
  static Tensor Mul(const Tensor& a, const Tensor& b);
  /// Scales by a constant.
  static Tensor Scale(const Tensor& a, double s);
  static Tensor Tanh(const Tensor& a);
  static Tensor Sigmoid(const Tensor& a);
  static Tensor Relu(const Tensor& a);

  /// Dilated causal convolution over the time axis:
  /// x [T,N,Fi], w [K,Fi,Fo], -> [T,N,Fo]; out[t] sums x[t - k*dilation].
  static Tensor Conv1dTime(const Tensor& x, const Tensor& w, int dilation);

  /// Graph mixing (one adjacency-power term of the GCN):
  /// x [T,N,Fi], adj (constant, [N,N]), w [Fi,Fo] ->
  /// out[t,n,fo] = sum_m adj[n,m] * sum_fi x[t,m,fi] * w[fi,fo].
  static Tensor NodeMix(const Tensor& x, const Tensor& adj, const Tensor& w);

  /// Pointwise feature map over the last axis: x [...,Fi], w [Fi,Fo].
  static Tensor Linear(const Tensor& x, const Tensor& w);

  /// Selects time step `t` from x [T,N,F] -> [N,F].
  static Tensor SelectTime(const Tensor& x, int t);

  /// Inverted dropout (scales by 1/(1-p)); identity when !training.
  static Tensor Dropout(const Tensor& x, double p, Rng* rng, bool training);

  /// Mean absolute error against a constant target of the same shape.
  static Tensor MaeLoss(const Tensor& pred, const Tensor& target);

  /// Sum of squares (for L2 regularization), returns a scalar.
  static Tensor SquaredNorm(const Tensor& a);

  /// Number of live tensor nodes process-wide. Graphs must be freed once
  /// their roots go out of scope; the leak-regression test asserts this
  /// (a backward closure capturing its own node would cycle and leak).
  static int64_t LiveNodeCount();

 private:
  struct Impl {
    Impl();
    ~Impl();
    std::vector<int> shape;
    std::vector<double> data;
    std::vector<double> grad;
    bool requires_grad = false;
    std::function<void(Impl*)> backward_fn;  // accumulates into parents
    std::vector<std::shared_ptr<Impl>> parents;
  };

  explicit Tensor(std::shared_ptr<Impl> impl) : impl_(std::move(impl)) {}

  static std::shared_ptr<Impl> NewImpl(std::vector<int> shape,
                                       bool requires_grad);
  static Tensor MakeOp(std::vector<int> shape,
                       std::vector<Tensor> parents,
                       std::function<void(Impl*)> backward_fn);

  std::shared_ptr<Impl> impl_;

  friend class AdamOptimizer;
};

/// Adam with weight decay (L2) and step-decay learning rate — the training
/// configuration of the paper's Section VI-G.
class AdamOptimizer {
 public:
  struct Options {
    double lr = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double eps = 1e-8;
    double weight_decay = 1e-5;
    /// Multiply lr by `lr_decay` every `lr_decay_every` steps (paper: 0.1
    /// every 20 epochs).
    double lr_decay = 0.1;
    int lr_decay_every = 0;  // 0 = never
  };

  AdamOptimizer(std::vector<Tensor> params, Options options);

  /// Applies one update from the accumulated gradients, then zeroes them.
  void Step();

  double current_lr() const;
  int steps() const { return t_; }

 private:
  std::vector<Tensor> params_;
  Options options_;
  std::vector<std::vector<double>> m_;
  std::vector<std::vector<double>> v_;
  int t_ = 0;
};

}  // namespace aets

#endif  // AETS_PREDICTOR_TENSOR_H_
