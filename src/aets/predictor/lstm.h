#ifndef AETS_PREDICTOR_LSTM_H_
#define AETS_PREDICTOR_LSTM_H_

#include <string>
#include <vector>

#include "aets/common/rng.h"
#include "aets/predictor/predictor.h"
#include "aets/predictor/tensor.h"

namespace aets {

struct LstmConfig {
  int input_window = 16;
  int horizon = 60;
  int hidden = 32;
  int train_steps = 60;
  int batch = 4;
  double lr = 1e-3;
  double weight_decay = 1e-5;
  uint64_t seed = 77;
};

/// Single-layer LSTM forecaster shared across tables: each table's
/// normalized series forms one row of the step input ([N, 1]); the final
/// hidden state maps linearly to the horizon. One of the three QB5000
/// ensemble members.
class LstmPredictor : public RatePredictor {
 public:
  explicit LstmPredictor(LstmConfig config = LstmConfig());

  std::string name() const override { return "LSTM"; }
  void Fit(const RateMatrix& history) override;
  RateMatrix Predict(const RateMatrix& recent, int horizon) override;

 private:
  /// Runs the unrolled LSTM over a [T, N, 1]-shaped window (passed as
  /// per-step [N, 1] tensors); returns the readout [N, horizon].
  Tensor Forward(const std::vector<Tensor>& steps);

  std::vector<Tensor> Parameters() const;

  LstmConfig config_;
  Rng init_rng_;
  int num_tables_ = 0;
  // Gate weights: x [N,1] and h [N,H] concatenations are kept separate:
  // z_g = x W_xg + h W_hg + b_g for g in {i, f, o, c}.
  Tensor wx_[4], wh_[4], b_[4];
  Tensor out_w_;
  std::vector<double> mean_, stdev_;
  bool fitted_ = false;
};

}  // namespace aets

#endif  // AETS_PREDICTOR_LSTM_H_
