#include "aets/predictor/solver.h"

#include <cmath>

#include "aets/common/macros.h"

namespace aets {

bool SolveLinearSystem(std::vector<double> a, std::vector<double> b, int n,
                       std::vector<double>* x) {
  AETS_CHECK(static_cast<int>(a.size()) == n * n &&
             static_cast<int>(b.size()) == n);
  for (int col = 0; col < n; ++col) {
    // Partial pivot.
    int pivot = col;
    for (int r = col + 1; r < n; ++r) {
      if (std::abs(a[static_cast<size_t>(r * n + col)]) >
          std::abs(a[static_cast<size_t>(pivot * n + col)])) {
        pivot = r;
      }
    }
    if (std::abs(a[static_cast<size_t>(pivot * n + col)]) < 1e-12) return false;
    if (pivot != col) {
      for (int c = 0; c < n; ++c) {
        std::swap(a[static_cast<size_t>(col * n + c)],
                  a[static_cast<size_t>(pivot * n + c)]);
      }
      std::swap(b[static_cast<size_t>(col)], b[static_cast<size_t>(pivot)]);
    }
    double diag = a[static_cast<size_t>(col * n + col)];
    for (int r = col + 1; r < n; ++r) {
      double factor = a[static_cast<size_t>(r * n + col)] / diag;
      if (factor == 0) continue;
      for (int c = col; c < n; ++c) {
        a[static_cast<size_t>(r * n + c)] -=
            factor * a[static_cast<size_t>(col * n + c)];
      }
      b[static_cast<size_t>(r)] -= factor * b[static_cast<size_t>(col)];
    }
  }
  x->assign(static_cast<size_t>(n), 0.0);
  for (int r = n - 1; r >= 0; --r) {
    double sum = b[static_cast<size_t>(r)];
    for (int c = r + 1; c < n; ++c) {
      sum -= a[static_cast<size_t>(r * n + c)] * (*x)[static_cast<size_t>(c)];
    }
    (*x)[static_cast<size_t>(r)] = sum / a[static_cast<size_t>(r * n + r)];
  }
  return true;
}

bool OlsFit(const std::vector<double>& x, const std::vector<double>& y,
            int rows, int cols, std::vector<double>* theta, double ridge) {
  AETS_CHECK(static_cast<int>(x.size()) == rows * cols &&
             static_cast<int>(y.size()) == rows);
  // Normal equations: (X^T X + ridge I) theta = X^T y.
  std::vector<double> xtx(static_cast<size_t>(cols * cols), 0.0);
  std::vector<double> xty(static_cast<size_t>(cols), 0.0);
  for (int r = 0; r < rows; ++r) {
    const double* row = x.data() + static_cast<size_t>(r) * cols;
    for (int i = 0; i < cols; ++i) {
      xty[static_cast<size_t>(i)] += row[i] * y[static_cast<size_t>(r)];
      for (int j = i; j < cols; ++j) {
        xtx[static_cast<size_t>(i * cols + j)] += row[i] * row[j];
      }
    }
  }
  for (int i = 0; i < cols; ++i) {
    for (int j = 0; j < i; ++j) {
      xtx[static_cast<size_t>(i * cols + j)] =
          xtx[static_cast<size_t>(j * cols + i)];
    }
    xtx[static_cast<size_t>(i * cols + i)] += ridge;
  }
  return SolveLinearSystem(std::move(xtx), std::move(xty), cols, theta);
}

}  // namespace aets
