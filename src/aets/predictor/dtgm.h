#ifndef AETS_PREDICTOR_DTGM_H_
#define AETS_PREDICTOR_DTGM_H_

#include <memory>
#include <string>
#include <vector>

#include "aets/common/rng.h"
#include "aets/predictor/predictor.h"
#include "aets/predictor/tensor.h"

namespace aets {

struct DtgmConfig {
  int input_window = 16;  // T_h: history slots fed to the model
  int horizon = 60;       // forecast steps produced per inference
  int hidden = 48;        // paper Fig. 14's swept hidden dimension
  int layers = 2;         // stacked gated-TCN + GCN blocks
  int kernel = 2;         // temporal kernel size
  int adj_powers = 2;     // K: adjacency powers in the GCN sum
  bool use_gcn = true;    // false = the Table IV "w/o gcn" ablation
  int train_steps = 60;   // optimizer steps
  int batch = 4;          // windows per step
  double lr = 1e-3;
  double weight_decay = 1e-5;  // L2 penalty (paper Section VI-G)
  double dropout = 0.3;
  /// The paper decays lr by 0.1 every 20 EPOCHS; one epoch is roughly ten
  /// optimizer steps at these data sizes, hence 200 steps per decay.
  int lr_decay_every = 200;
  double lr_decay = 0.1;
  uint64_t seed = 1234;
};

/// DTGM — the Deep Temporal Graph Model of paper Section IV-A: stacked
/// layers of a gated temporal convolution (tanh ⊙ sigmoid, dilations 2^l)
/// followed by a graph convolution over adjacency powers (Z = Σ_k C^k H W_k),
/// with residual and skip connections, trained with MAE loss and Adam
/// (lr 1e-3 decayed 0.1 every 20 epochs, L2 1e-5, dropout 0.3 — the paper's
/// hyper-parameters). The adjacency matrix is built from the co-variation of
/// table access-rate series (tables accessed together correlate).
class DtgmPredictor : public RatePredictor {
 public:
  explicit DtgmPredictor(DtgmConfig config = DtgmConfig());

  std::string name() const override {
    return config_.use_gcn ? "DTGM" : "DTGM(w/o gcn)";
  }
  void Fit(const RateMatrix& history) override;
  RateMatrix Predict(const RateMatrix& recent, int horizon) override;

  /// Incremental retraining on fresh history (paper Section IV-A:
  /// "Retraining is only necessary if there are substantial changes in the
  /// business"). Keeps the current weights and adjacency, refreshes the
  /// normalization statistics, and runs `steps` additional optimizer steps
  /// at a reduced learning rate — far cheaper than a full Fit.
  void FineTune(const RateMatrix& history, int steps);

  /// Final training loss (for convergence tests).
  double final_loss() const { return final_loss_; }

 private:
  struct Layer {
    Tensor conv_filter;  // [K, F, F]
    Tensor conv_gate;    // [K, F, F]
    std::vector<Tensor> gcn_w;  // per adjacency power, [F, F]
    Tensor skip_w;       // [F, F]
  };

  /// Forward pass over one input window [T, N, 1]; returns [N, horizon].
  Tensor Forward(const Tensor& input, bool training, Rng* dropout_rng);

  /// Shared training loop over `history` (used by Fit and FineTune).
  void TrainSteps(const RateMatrix& history, int steps, double lr);

  /// Recomputes per-table normalization from `history`.
  void RefreshNormalization(const RateMatrix& history);

  /// Builds the row-normalized adjacency (plus powers) from series
  /// correlations.
  void BuildAdjacency(const RateMatrix& history);

  std::vector<Tensor> Parameters() const;

  DtgmConfig config_;
  Rng init_rng_;
  int num_tables_ = 0;
  std::vector<Tensor> adj_powers_;  // C^1..C^K as constant tensors
  Tensor input_proj_;               // [1, F]
  std::vector<Layer> layers_;
  Tensor out_w1_;  // [F, F]
  Tensor out_w2_;  // [F, horizon]
  // Per-table normalization from the training series.
  std::vector<double> mean_, stdev_;
  double final_loss_ = 0;
  bool fitted_ = false;
};

}  // namespace aets

#endif  // AETS_PREDICTOR_DTGM_H_
