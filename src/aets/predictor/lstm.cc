#include "aets/predictor/lstm.h"

#include <algorithm>
#include <cmath>

#include "aets/common/macros.h"

namespace aets {

LstmPredictor::LstmPredictor(LstmConfig config)
    : config_(config), init_rng_(config.seed) {}

std::vector<Tensor> LstmPredictor::Parameters() const {
  std::vector<Tensor> params;
  for (int g = 0; g < 4; ++g) {
    params.push_back(wx_[g]);
    params.push_back(wh_[g]);
    params.push_back(b_[g]);
  }
  params.push_back(out_w_);
  return params;
}

Tensor LstmPredictor::Forward(const std::vector<Tensor>& steps) {
  int h_dim = config_.hidden;
  Tensor h = Tensor::Zeros({num_tables_, h_dim});
  Tensor c = Tensor::Zeros({num_tables_, h_dim});
  for (const Tensor& x : steps) {
    auto gate = [&](int g) {
      return Tensor::AddBias(
          Tensor::Add(Tensor::MatMul(x, wx_[g]), Tensor::MatMul(h, wh_[g])),
          b_[g]);
    };
    Tensor i = Tensor::Sigmoid(gate(0));
    Tensor f = Tensor::Sigmoid(gate(1));
    Tensor o = Tensor::Sigmoid(gate(2));
    Tensor g = Tensor::Tanh(gate(3));
    c = Tensor::Add(Tensor::Mul(f, c), Tensor::Mul(i, g));
    h = Tensor::Mul(o, Tensor::Tanh(c));
  }
  return Tensor::MatMul(h, out_w_);  // [N, horizon]
}

void LstmPredictor::Fit(const RateMatrix& history) {
  AETS_CHECK(!history.empty());
  num_tables_ = static_cast<int>(history.front().size());
  int slots = static_cast<int>(history.size());
  int window = config_.input_window;
  AETS_CHECK(slots >= window + config_.horizon + 1);

  mean_.assign(static_cast<size_t>(num_tables_), 0.0);
  stdev_.assign(static_cast<size_t>(num_tables_), 1.0);
  for (const auto& row : history) {
    for (int t = 0; t < num_tables_; ++t) mean_[static_cast<size_t>(t)] += row[static_cast<size_t>(t)];
  }
  for (double& m : mean_) m /= slots;
  for (const auto& row : history) {
    for (int t = 0; t < num_tables_; ++t) {
      double d = row[static_cast<size_t>(t)] - mean_[static_cast<size_t>(t)];
      stdev_[static_cast<size_t>(t)] += d * d;
    }
  }
  for (double& s : stdev_) s = std::max(1e-6, std::sqrt(s / slots));

  int h_dim = config_.hidden;
  for (int g = 0; g < 4; ++g) {
    wx_[g] = Tensor::Xavier({1, h_dim}, &init_rng_);
    wh_[g] = Tensor::Xavier({h_dim, h_dim}, &init_rng_);
    b_[g] = Tensor::Zeros({h_dim}, /*requires_grad=*/true);
  }
  // Forget-gate bias starts positive (standard practice).
  std::fill(b_[1].data().begin(), b_[1].data().end(), 1.0);
  out_w_ = Tensor::Xavier({h_dim, config_.horizon}, &init_rng_);

  AdamOptimizer::Options opt;
  opt.lr = config_.lr;
  opt.weight_decay = config_.weight_decay;
  AdamOptimizer optimizer(Parameters(), opt);

  auto normalized = [&](int slot, int table) {
    return (history[static_cast<size_t>(slot)][static_cast<size_t>(table)] -
            mean_[static_cast<size_t>(table)]) /
           stdev_[static_cast<size_t>(table)];
  };

  Rng sample_rng(config_.seed ^ 0x51AB);
  int max_start = slots - window - config_.horizon;
  for (int step = 0; step < config_.train_steps; ++step) {
    Tensor total;
    for (int b = 0; b < config_.batch; ++b) {
      int start = static_cast<int>(sample_rng.UniformInt(0, max_start));
      std::vector<Tensor> steps;
      steps.reserve(static_cast<size_t>(window));
      for (int t = 0; t < window; ++t) {
        std::vector<double> x(static_cast<size_t>(num_tables_));
        for (int node = 0; node < num_tables_; ++node) {
          x[static_cast<size_t>(node)] = normalized(start + t, node);
        }
        steps.push_back(Tensor::FromData({num_tables_, 1}, std::move(x)));
      }
      std::vector<double> target(
          static_cast<size_t>(num_tables_ * config_.horizon));
      for (int node = 0; node < num_tables_; ++node) {
        for (int h = 0; h < config_.horizon; ++h) {
          target[static_cast<size_t>(node * config_.horizon + h)] =
              normalized(start + window + h, node);
        }
      }
      Tensor loss = Tensor::MaeLoss(
          Forward(steps),
          Tensor::FromData({num_tables_, config_.horizon}, std::move(target)));
      total = total.defined() ? Tensor::Add(total, loss) : loss;
    }
    total = Tensor::Scale(total, 1.0 / config_.batch);
    total.Backward();
    optimizer.Step();
  }
  fitted_ = true;
}

RateMatrix LstmPredictor::Predict(const RateMatrix& recent, int horizon) {
  AETS_CHECK(fitted_ && horizon <= config_.horizon);
  AETS_CHECK(static_cast<int>(recent.size()) >= config_.input_window);
  int window = config_.input_window;
  size_t offset = recent.size() - static_cast<size_t>(window);
  std::vector<Tensor> steps;
  for (int t = 0; t < window; ++t) {
    std::vector<double> x(static_cast<size_t>(num_tables_));
    for (int node = 0; node < num_tables_; ++node) {
      x[static_cast<size_t>(node)] =
          (recent[offset + static_cast<size_t>(t)][static_cast<size_t>(node)] -
           mean_[static_cast<size_t>(node)]) /
          stdev_[static_cast<size_t>(node)];
    }
    steps.push_back(Tensor::FromData({num_tables_, 1}, std::move(x)));
  }
  Tensor pred = Forward(steps);
  RateMatrix out(static_cast<size_t>(horizon),
                 std::vector<double>(static_cast<size_t>(num_tables_), 0.0));
  for (int node = 0; node < num_tables_; ++node) {
    for (int h = 0; h < horizon; ++h) {
      double z = pred.data()[static_cast<size_t>(node * config_.horizon + h)];
      out[static_cast<size_t>(h)][static_cast<size_t>(node)] = std::max(
          0.0,
          z * stdev_[static_cast<size_t>(node)] + mean_[static_cast<size_t>(node)]);
    }
  }
  return out;
}

}  // namespace aets
