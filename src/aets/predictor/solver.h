#ifndef AETS_PREDICTOR_SOLVER_H_
#define AETS_PREDICTOR_SOLVER_H_

#include <vector>

namespace aets {

/// Solves A x = b by Gaussian elimination with partial pivoting. `a` is
/// row-major n x n. Returns false when the system is singular.
bool SolveLinearSystem(std::vector<double> a, std::vector<double> b, int n,
                       std::vector<double>* x);

/// Ordinary least squares: finds theta minimizing ||X theta - y||^2 where X
/// is rows x cols (row-major). Solves the normal equations with ridge
/// damping `ridge` for numerical safety.
bool OlsFit(const std::vector<double>& x, const std::vector<double>& y,
            int rows, int cols, std::vector<double>* theta,
            double ridge = 1e-8);

}  // namespace aets

#endif  // AETS_PREDICTOR_SOLVER_H_
