#include "aets/predictor/tensor.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <unordered_set>

#include "aets/common/macros.h"

namespace aets {

namespace {

int64_t NumElements(const std::vector<int>& shape) {
  int64_t n = 1;
  for (int d : shape) n *= d;
  return n;
}

std::atomic<int64_t> g_live_nodes{0};

}  // namespace

Tensor::Impl::Impl() { g_live_nodes.fetch_add(1, std::memory_order_relaxed); }
Tensor::Impl::~Impl() { g_live_nodes.fetch_sub(1, std::memory_order_relaxed); }

int64_t Tensor::LiveNodeCount() {
  return g_live_nodes.load(std::memory_order_relaxed);
}

std::shared_ptr<Tensor::Impl> Tensor::NewImpl(std::vector<int> shape,
                                              bool requires_grad) {
  auto impl = std::make_shared<Impl>();
  impl->shape = std::move(shape);
  int64_t n = NumElements(impl->shape);
  AETS_CHECK(n >= 0);
  impl->data.assign(static_cast<size_t>(n), 0.0);
  impl->grad.assign(static_cast<size_t>(n), 0.0);
  impl->requires_grad = requires_grad;
  return impl;
}

Tensor Tensor::Zeros(std::vector<int> shape, bool requires_grad) {
  return Tensor(NewImpl(std::move(shape), requires_grad));
}

Tensor Tensor::Full(std::vector<int> shape, double value, bool requires_grad) {
  Tensor t(NewImpl(std::move(shape), requires_grad));
  std::fill(t.impl_->data.begin(), t.impl_->data.end(), value);
  return t;
}

Tensor Tensor::Xavier(std::vector<int> shape, Rng* rng) {
  Tensor t(NewImpl(shape, /*requires_grad=*/true));
  int fan_in = shape.size() >= 2 ? shape[shape.size() - 2] : shape.back();
  int fan_out = shape.back();
  double limit = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (double& v : t.impl_->data) {
    v = (rng->UniformDouble() * 2 - 1) * limit;
  }
  return t;
}

Tensor Tensor::FromData(std::vector<int> shape, std::vector<double> data,
                        bool requires_grad) {
  AETS_CHECK(NumElements(shape) == static_cast<int64_t>(data.size()));
  Tensor t(NewImpl(std::move(shape), requires_grad));
  t.impl_->data = std::move(data);
  return t;
}

const std::vector<int>& Tensor::shape() const { return impl_->shape; }
int64_t Tensor::size() const { return NumElements(impl_->shape); }
bool Tensor::requires_grad() const { return impl_->requires_grad; }
std::vector<double>& Tensor::data() { return impl_->data; }
const std::vector<double>& Tensor::data() const { return impl_->data; }
std::vector<double>& Tensor::grad() { return impl_->grad; }
const std::vector<double>& Tensor::grad() const { return impl_->grad; }

double Tensor::item() const {
  AETS_CHECK(size() == 1);
  return impl_->data[0];
}

void Tensor::ZeroGrad() {
  std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0);
}

Tensor Tensor::MakeOp(std::vector<int> shape, std::vector<Tensor> parents,
                      std::function<void(Impl*)> backward_fn) {
  bool needs_grad = false;
  for (const auto& p : parents) needs_grad = needs_grad || p.requires_grad();
  Tensor out(NewImpl(std::move(shape), needs_grad));
  if (needs_grad) {
    out.impl_->backward_fn = std::move(backward_fn);
    for (auto& p : parents) out.impl_->parents.push_back(p.impl_);
  }
  return out;
}

void Tensor::Backward() {
  AETS_CHECK_MSG(size() == 1, "Backward from non-scalar");
  // Topological order via iterative post-order DFS.
  std::vector<Impl*> order;
  std::unordered_set<Impl*> visited;
  std::vector<std::pair<Impl*, size_t>> stack;
  stack.emplace_back(impl_.get(), 0);
  visited.insert(impl_.get());
  while (!stack.empty()) {
    auto& [node, idx] = stack.back();
    if (idx < node->parents.size()) {
      Impl* parent = node->parents[idx].get();
      ++idx;
      if (visited.insert(parent).second) stack.emplace_back(parent, 0);
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  impl_->grad[0] = 1.0;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if ((*it)->backward_fn) (*it)->backward_fn(*it);
  }
}

Tensor Tensor::MatMul(const Tensor& a, const Tensor& b) {
  AETS_CHECK(a.ndim() == 2 && b.ndim() == 2 && a.dim(1) == b.dim(0));
  int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  auto pa = a.impl_, pb = b.impl_;
  Tensor out = MakeOp({m, n}, {a, b}, [pa, pb, m, k, n](Impl* self) {
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) {
        double g = self->grad[static_cast<size_t>(i * n + j)];
        if (g == 0) continue;
        for (int l = 0; l < k; ++l) {
          pa->grad[static_cast<size_t>(i * k + l)] +=
              g * pb->data[static_cast<size_t>(l * n + j)];
          pb->grad[static_cast<size_t>(l * n + j)] +=
              g * pa->data[static_cast<size_t>(i * k + l)];
        }
      }
    }
  });
  for (int i = 0; i < m; ++i) {
    for (int l = 0; l < k; ++l) {
      double av = pa->data[static_cast<size_t>(i * k + l)];
      if (av == 0) continue;
      for (int j = 0; j < n; ++j) {
        out.impl_->data[static_cast<size_t>(i * n + j)] +=
            av * pb->data[static_cast<size_t>(l * n + j)];
      }
    }
  }
  return out;
}

Tensor Tensor::Add(const Tensor& a, const Tensor& b) {
  AETS_CHECK(a.shape() == b.shape());
  auto pa = a.impl_, pb = b.impl_;
  Tensor out = MakeOp(a.shape(), {a, b}, [pa, pb](Impl* self) {
    for (size_t i = 0; i < self->grad.size(); ++i) {
      pa->grad[i] += self->grad[i];
      pb->grad[i] += self->grad[i];
    }
  });
  for (size_t i = 0; i < out.impl_->data.size(); ++i) {
    out.impl_->data[i] = pa->data[i] + pb->data[i];
  }
  return out;
}

Tensor Tensor::AddBias(const Tensor& a, const Tensor& bias) {
  AETS_CHECK(bias.ndim() == 1 && a.dim(a.ndim() - 1) == bias.dim(0));
  int f = bias.dim(0);
  auto pa = a.impl_, pbias = bias.impl_;
  Tensor out = MakeOp(a.shape(), {a, bias}, [pa, pbias, f](Impl* self) {
    for (size_t i = 0; i < self->grad.size(); ++i) {
      pa->grad[i] += self->grad[i];
      pbias->grad[i % static_cast<size_t>(f)] += self->grad[i];
    }
  });
  for (size_t i = 0; i < out.impl_->data.size(); ++i) {
    out.impl_->data[i] = pa->data[i] + pbias->data[i % static_cast<size_t>(f)];
  }
  return out;
}

Tensor Tensor::Mul(const Tensor& a, const Tensor& b) {
  AETS_CHECK(a.shape() == b.shape());
  auto pa = a.impl_, pb = b.impl_;
  Tensor out = MakeOp(a.shape(), {a, b}, [pa, pb](Impl* self) {
    for (size_t i = 0; i < self->grad.size(); ++i) {
      pa->grad[i] += self->grad[i] * pb->data[i];
      pb->grad[i] += self->grad[i] * pa->data[i];
    }
  });
  for (size_t i = 0; i < out.impl_->data.size(); ++i) {
    out.impl_->data[i] = pa->data[i] * pb->data[i];
  }
  return out;
}

Tensor Tensor::Scale(const Tensor& a, double s) {
  auto pa = a.impl_;
  Tensor out = MakeOp(a.shape(), {a}, [pa, s](Impl* self) {
    for (size_t i = 0; i < self->grad.size(); ++i) {
      pa->grad[i] += self->grad[i] * s;
    }
  });
  for (size_t i = 0; i < out.impl_->data.size(); ++i) {
    out.impl_->data[i] = pa->data[i] * s;
  }
  return out;
}

Tensor Tensor::Tanh(const Tensor& a) {
  // The backward uses the OUTPUT's cached values via the `self` argument —
  // capturing the output's own shared_ptr here would create a reference
  // cycle (impl -> backward_fn -> impl) and leak every graph.
  auto pa = a.impl_;
  Tensor out = MakeOp(a.shape(), {a}, [pa](Impl* self) {
    for (size_t i = 0; i < self->grad.size(); ++i) {
      double y = self->data[i];
      pa->grad[i] += self->grad[i] * (1 - y * y);
    }
  });
  for (size_t i = 0; i < out.impl_->data.size(); ++i) {
    out.impl_->data[i] = std::tanh(pa->data[i]);
  }
  return out;
}

Tensor Tensor::Sigmoid(const Tensor& a) {
  auto pa = a.impl_;
  Tensor out = MakeOp(a.shape(), {a}, [pa](Impl* self) {
    for (size_t i = 0; i < self->grad.size(); ++i) {
      double y = self->data[i];
      pa->grad[i] += self->grad[i] * y * (1 - y);
    }
  });
  for (size_t i = 0; i < out.impl_->data.size(); ++i) {
    out.impl_->data[i] = 1.0 / (1.0 + std::exp(-pa->data[i]));
  }
  return out;
}

Tensor Tensor::Relu(const Tensor& a) {
  auto pa = a.impl_;
  Tensor out = MakeOp(a.shape(), {a}, [pa](Impl* self) {
    for (size_t i = 0; i < self->grad.size(); ++i) {
      if (pa->data[i] > 0) pa->grad[i] += self->grad[i];
    }
  });
  for (size_t i = 0; i < out.impl_->data.size(); ++i) {
    out.impl_->data[i] = pa->data[i] > 0 ? pa->data[i] : 0.0;
  }
  return out;
}

Tensor Tensor::Conv1dTime(const Tensor& x, const Tensor& w, int dilation) {
  AETS_CHECK(x.ndim() == 3 && w.ndim() == 3 && x.dim(2) == w.dim(1));
  AETS_CHECK(dilation >= 1);
  int t_len = x.dim(0), n = x.dim(1), fi = x.dim(2);
  int k_len = w.dim(0), fo = w.dim(2);
  auto px = x.impl_, pw = w.impl_;
  auto at_x = [n, fi](int t, int node, int f) {
    return static_cast<size_t>((t * n + node) * fi + f);
  };
  auto at_w = [fi, fo](int k, int f_in, int f_out) {
    return static_cast<size_t>((k * fi + f_in) * fo + f_out);
  };
  auto at_y = [n, fo](int t, int node, int f) {
    return static_cast<size_t>((t * n + node) * fo + f);
  };
  Tensor out = MakeOp(
      {t_len, n, fo}, {x, w},
      [px, pw, t_len, n, fi, k_len, fo, dilation, at_x, at_w, at_y](Impl* self) {
        for (int t = 0; t < t_len; ++t) {
          for (int k = 0; k < k_len; ++k) {
            int src = t - k * dilation;
            if (src < 0) continue;
            for (int node = 0; node < n; ++node) {
              for (int f_out = 0; f_out < fo; ++f_out) {
                double g = self->grad[at_y(t, node, f_out)];
                if (g == 0) continue;
                for (int f_in = 0; f_in < fi; ++f_in) {
                  px->grad[at_x(src, node, f_in)] +=
                      g * pw->data[at_w(k, f_in, f_out)];
                  pw->grad[at_w(k, f_in, f_out)] +=
                      g * px->data[at_x(src, node, f_in)];
                }
              }
            }
          }
        }
      });
  for (int t = 0; t < t_len; ++t) {
    for (int k = 0; k < k_len; ++k) {
      int src = t - k * dilation;
      if (src < 0) continue;
      for (int node = 0; node < n; ++node) {
        for (int f_in = 0; f_in < fi; ++f_in) {
          double xv = px->data[at_x(src, node, f_in)];
          if (xv == 0) continue;
          for (int f_out = 0; f_out < fo; ++f_out) {
            out.impl_->data[at_y(t, node, f_out)] +=
                xv * pw->data[at_w(k, f_in, f_out)];
          }
        }
      }
    }
  }
  return out;
}

Tensor Tensor::NodeMix(const Tensor& x, const Tensor& adj, const Tensor& w) {
  AETS_CHECK(x.ndim() == 3 && adj.ndim() == 2 && w.ndim() == 2);
  int t_len = x.dim(0), n = x.dim(1), fi = x.dim(2), fo = w.dim(1);
  AETS_CHECK(adj.dim(0) == n && adj.dim(1) == n && w.dim(0) == fi);
  auto px = x.impl_, padj = adj.impl_, pw = w.impl_;
  // Forward: z[t] = x[t] * w  (N x Fo), y[t] = adj * z[t].
  // Cache z for the backward pass (dz = adj^T * dy; dw += x^T dz; dx = dz w^T).
  auto z = std::make_shared<std::vector<double>>(
      static_cast<size_t>(t_len * n * fo), 0.0);
  Tensor out = MakeOp(
      {t_len, n, fo}, {x, adj, w},
      [px, padj, pw, z, t_len, n, fi, fo](Impl* self) {
        std::vector<double> dz(static_cast<size_t>(n * fo));
        for (int t = 0; t < t_len; ++t) {
          const double* dy = self->grad.data() + static_cast<size_t>(t) * n * fo;
          std::fill(dz.begin(), dz.end(), 0.0);
          // dz = adj^T * dy
          for (int a = 0; a < n; ++a) {
            for (int b = 0; b < n; ++b) {
              double c = padj->data[static_cast<size_t>(a * n + b)];
              if (c == 0) continue;
              for (int f = 0; f < fo; ++f) {
                dz[static_cast<size_t>(b * fo + f)] +=
                    c * dy[static_cast<size_t>(a * fo + f)];
              }
            }
          }
          const double* xt = px->data.data() + static_cast<size_t>(t) * n * fi;
          double* dxt = px->grad.data() + static_cast<size_t>(t) * n * fi;
          for (int node = 0; node < n; ++node) {
            for (int f_in = 0; f_in < fi; ++f_in) {
              double xv = xt[static_cast<size_t>(node * fi + f_in)];
              double acc = 0;
              for (int f = 0; f < fo; ++f) {
                double d = dz[static_cast<size_t>(node * fo + f)];
                pw->grad[static_cast<size_t>(f_in * fo + f)] += xv * d;
                acc += d * pw->data[static_cast<size_t>(f_in * fo + f)];
              }
              dxt[static_cast<size_t>(node * fi + f_in)] += acc;
            }
          }
        }
      });
  for (int t = 0; t < t_len; ++t) {
    const double* xt = px->data.data() + static_cast<size_t>(t) * n * fi;
    double* zt = z->data() + static_cast<size_t>(t) * n * fo;
    for (int node = 0; node < n; ++node) {
      for (int f_in = 0; f_in < fi; ++f_in) {
        double xv = xt[static_cast<size_t>(node * fi + f_in)];
        if (xv == 0) continue;
        for (int f = 0; f < fo; ++f) {
          zt[static_cast<size_t>(node * fo + f)] +=
              xv * pw->data[static_cast<size_t>(f_in * fo + f)];
        }
      }
    }
    double* yt = out.impl_->data.data() + static_cast<size_t>(t) * n * fo;
    for (int a = 0; a < n; ++a) {
      for (int b = 0; b < n; ++b) {
        double c = padj->data[static_cast<size_t>(a * n + b)];
        if (c == 0) continue;
        for (int f = 0; f < fo; ++f) {
          yt[static_cast<size_t>(a * fo + f)] +=
              c * zt[static_cast<size_t>(b * fo + f)];
        }
      }
    }
  }
  return out;
}

Tensor Tensor::Linear(const Tensor& x, const Tensor& w) {
  AETS_CHECK(w.ndim() == 2 && x.dim(x.ndim() - 1) == w.dim(0));
  int fi = w.dim(0), fo = w.dim(1);
  int64_t rows = x.size() / fi;
  std::vector<int> out_shape = x.shape();
  out_shape.back() = fo;
  auto px = x.impl_, pw = w.impl_;
  Tensor out = MakeOp(out_shape, {x, w}, [px, pw, rows, fi, fo](Impl* self) {
    for (int64_t r = 0; r < rows; ++r) {
      const double* xr = px->data.data() + r * fi;
      double* dxr = px->grad.data() + r * fi;
      const double* dyr = self->grad.data() + r * fo;
      for (int f_in = 0; f_in < fi; ++f_in) {
        double acc = 0;
        for (int f = 0; f < fo; ++f) {
          pw->grad[static_cast<size_t>(f_in * fo + f)] +=
              xr[f_in] * dyr[f];
          acc += dyr[f] * pw->data[static_cast<size_t>(f_in * fo + f)];
        }
        dxr[f_in] += acc;
      }
    }
  });
  for (int64_t r = 0; r < rows; ++r) {
    const double* xr = px->data.data() + r * fi;
    double* yr = out.impl_->data.data() + r * fo;
    for (int f_in = 0; f_in < fi; ++f_in) {
      double xv = xr[f_in];
      if (xv == 0) continue;
      for (int f = 0; f < fo; ++f) {
        yr[f] += xv * pw->data[static_cast<size_t>(f_in * fo + f)];
      }
    }
  }
  return out;
}

Tensor Tensor::SelectTime(const Tensor& x, int t) {
  AETS_CHECK(x.ndim() == 3 && t >= 0 && t < x.dim(0));
  int n = x.dim(1), f = x.dim(2);
  auto px = x.impl_;
  size_t offset = static_cast<size_t>(t) * static_cast<size_t>(n * f);
  Tensor out = MakeOp({n, f}, {x}, [px, offset](Impl* self) {
    for (size_t i = 0; i < self->grad.size(); ++i) {
      px->grad[offset + i] += self->grad[i];
    }
  });
  std::copy(px->data.begin() + static_cast<ptrdiff_t>(offset),
            px->data.begin() + static_cast<ptrdiff_t>(offset) +
                static_cast<ptrdiff_t>(out.size()),
            out.impl_->data.begin());
  return out;
}

Tensor Tensor::Dropout(const Tensor& x, double p, Rng* rng, bool training) {
  if (!training || p <= 0) return x;
  auto px = x.impl_;
  auto mask = std::make_shared<std::vector<double>>(px->data.size());
  double keep = 1.0 - p;
  for (double& m : *mask) m = rng->Bernoulli(keep) ? 1.0 / keep : 0.0;
  Tensor out = MakeOp(x.shape(), {x}, [px, mask](Impl* self) {
    for (size_t i = 0; i < self->grad.size(); ++i) {
      px->grad[i] += self->grad[i] * (*mask)[i];
    }
  });
  for (size_t i = 0; i < out.impl_->data.size(); ++i) {
    out.impl_->data[i] = px->data[i] * (*mask)[i];
  }
  return out;
}

Tensor Tensor::MaeLoss(const Tensor& pred, const Tensor& target) {
  AETS_CHECK(pred.shape() == target.shape());
  auto pp = pred.impl_, pt = target.impl_;
  double n = static_cast<double>(pred.size());
  Tensor out = MakeOp({1}, {pred, target}, [pp, pt, n](Impl* self) {
    double g = self->grad[0] / n;
    for (size_t i = 0; i < pp->data.size(); ++i) {
      double diff = pp->data[i] - pt->data[i];
      pp->grad[i] += g * (diff > 0 ? 1.0 : (diff < 0 ? -1.0 : 0.0));
    }
  });
  double sum = 0;
  for (size_t i = 0; i < pp->data.size(); ++i) {
    sum += std::abs(pp->data[i] - pt->data[i]);
  }
  out.impl_->data[0] = sum / n;
  return out;
}

Tensor Tensor::SquaredNorm(const Tensor& a) {
  auto pa = a.impl_;
  Tensor out = MakeOp({1}, {a}, [pa](Impl* self) {
    double g = self->grad[0];
    for (size_t i = 0; i < pa->data.size(); ++i) {
      pa->grad[i] += g * 2 * pa->data[i];
    }
  });
  double sum = 0;
  for (double v : pa->data) sum += v * v;
  out.impl_->data[0] = sum;
  return out;
}

AdamOptimizer::AdamOptimizer(std::vector<Tensor> params, Options options)
    : params_(std::move(params)), options_(options) {
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    m_[i].assign(params_[i].data().size(), 0.0);
    v_[i].assign(params_[i].data().size(), 0.0);
  }
}

double AdamOptimizer::current_lr() const {
  double lr = options_.lr;
  if (options_.lr_decay_every > 0) {
    int decays = t_ / options_.lr_decay_every;
    for (int i = 0; i < decays; ++i) lr *= options_.lr_decay;
  }
  return lr;
}

void AdamOptimizer::Step() {
  ++t_;
  double lr = current_lr();
  double bc1 = 1.0 - std::pow(options_.beta1, t_);
  double bc2 = 1.0 - std::pow(options_.beta2, t_);
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& data = params_[i].data();
    auto& grad = params_[i].grad();
    for (size_t j = 0; j < data.size(); ++j) {
      double g = grad[j] + options_.weight_decay * data[j];
      m_[i][j] = options_.beta1 * m_[i][j] + (1 - options_.beta1) * g;
      v_[i][j] = options_.beta2 * v_[i][j] + (1 - options_.beta2) * g * g;
      double mhat = m_[i][j] / bc1;
      double vhat = v_[i][j] / bc2;
      data[j] -= lr * mhat / (std::sqrt(vhat) + options_.eps);
      grad[j] = 0;
    }
  }
}

}  // namespace aets
