#ifndef AETS_PREDICTOR_DBSCAN_H_
#define AETS_PREDICTOR_DBSCAN_H_

#include <vector>

namespace aets {

/// Density-based clustering (DBSCAN). AETS uses it to group tables with
/// similar access rates into replay groups (paper Section IV-A); it operates
/// on arbitrary-dimension points with Euclidean distance.
///
/// Returns one label per point: cluster ids 0..k-1, or -1 for noise points.
/// With min_pts == 1, every point belongs to a cluster (no noise), which is
/// the configuration table grouping uses.
std::vector<int> Dbscan(const std::vector<std::vector<double>>& points,
                        double eps, int min_pts);

/// 1-D convenience overload.
std::vector<int> Dbscan1d(const std::vector<double>& values, double eps,
                          int min_pts);

}  // namespace aets

#endif  // AETS_PREDICTOR_DBSCAN_H_
