#include "aets/predictor/qb5000.h"

#include <algorithm>
#include <cmath>

#include "aets/common/macros.h"
#include "aets/common/rng.h"
#include "aets/predictor/solver.h"

namespace aets {

Qb5000Predictor::Qb5000Predictor(Qb5000Config config) : config_(config) {
  config_.lstm.horizon = config_.horizon;
}

std::vector<double> Qb5000Predictor::NormalizeLags(
    const std::vector<double>& raw, double* scale) const {
  double mean = 0;
  for (double v : raw) mean += v;
  mean /= static_cast<double>(raw.size());
  *scale = std::max(1.0, mean);
  std::vector<double> out(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) out[i] = raw[i] / *scale;
  return out;
}

void Qb5000Predictor::Fit(const RateMatrix& history) {
  AETS_CHECK(!history.empty());
  int slots = static_cast<int>(history.size());
  int num_tables = static_cast<int>(history.front().size());
  int lag = config_.lag_window;
  int horizon = config_.horizon;
  AETS_CHECK(slots >= lag + horizon + 1);

  // Pooled training windows across all tables, scale-normalized so tables
  // with different magnitudes share one model (QB5000 normalizes per
  // cluster; per-window mean scaling plays that role here).
  int max_start = slots - lag - horizon;
  std::vector<std::vector<double>> rows;   // [sample][lag+1] with intercept
  std::vector<std::vector<double>> targets;  // [sample][horizon]
  Rng rng(config_.seed);
  for (int start = 0; start <= max_start; ++start) {
    for (int t = 0; t < num_tables; ++t) {
      // Skip constant-zero series (cold tables carry no signal).
      std::vector<double> raw(static_cast<size_t>(lag));
      double any = 0;
      for (int l = 0; l < lag; ++l) {
        raw[static_cast<size_t>(l)] =
            history[static_cast<size_t>(start + l)][static_cast<size_t>(t)];
        any += raw[static_cast<size_t>(l)];
      }
      if (any <= 0) continue;
      double scale = 1;
      std::vector<double> norm = NormalizeLags(raw, &scale);
      std::vector<double> row(static_cast<size_t>(lag + 1), 1.0);
      std::copy(norm.begin(), norm.end(), row.begin() + 1);
      std::vector<double> fut(static_cast<size_t>(horizon));
      for (int h = 0; h < horizon; ++h) {
        fut[static_cast<size_t>(h)] =
            history[static_cast<size_t>(start + lag + h)][static_cast<size_t>(t)] /
            scale;
      }
      rows.push_back(std::move(row));
      targets.push_back(std::move(fut));
    }
  }
  AETS_CHECK(!rows.empty());

  // LR: one OLS fit per horizon step over the pooled samples.
  int cols = lag + 1;
  std::vector<double> x_flat;
  x_flat.reserve(rows.size() * static_cast<size_t>(cols));
  for (const auto& r : rows) x_flat.insert(x_flat.end(), r.begin(), r.end());
  lr_.theta.assign(static_cast<size_t>(horizon), {});
  for (int h = 0; h < horizon; ++h) {
    std::vector<double> y(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) y[i] = targets[i][static_cast<size_t>(h)];
    AETS_CHECK(OlsFit(x_flat, y, static_cast<int>(rows.size()), cols,
                      &lr_.theta[static_cast<size_t>(h)], 1e-4));
  }

  // KR: retain a bounded reservoir of samples.
  kr_samples_.clear();
  for (size_t i = 0; i < rows.size(); ++i) {
    KrSample s;
    s.lags.assign(rows[i].begin() + 1, rows[i].end());
    s.futures = targets[i];
    if (static_cast<int>(kr_samples_.size()) < config_.kr_max_samples) {
      kr_samples_.push_back(std::move(s));
    } else {
      size_t j = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(i)));
      if (j < kr_samples_.size()) kr_samples_[j] = std::move(s);
    }
  }

  // LSTM member.
  config_.lstm.input_window = lag;
  lstm_ = std::make_unique<LstmPredictor>(config_.lstm);
  lstm_->Fit(history);

  fitted_ = true;
}

RateMatrix Qb5000Predictor::Predict(const RateMatrix& recent, int horizon) {
  AETS_CHECK(fitted_ && horizon <= config_.horizon);
  int lag = config_.lag_window;
  AETS_CHECK(static_cast<int>(recent.size()) >= lag);
  int num_tables = static_cast<int>(recent.front().size());

  RateMatrix lstm_pred = lstm_->Predict(recent, horizon);
  RateMatrix out(static_cast<size_t>(horizon),
                 std::vector<double>(static_cast<size_t>(num_tables), 0.0));

  size_t offset = recent.size() - static_cast<size_t>(lag);
  double bw2 = config_.kr_bandwidth * config_.kr_bandwidth;
  for (int t = 0; t < num_tables; ++t) {
    std::vector<double> raw(static_cast<size_t>(lag));
    double any = 0;
    for (int l = 0; l < lag; ++l) {
      raw[static_cast<size_t>(l)] =
          recent[offset + static_cast<size_t>(l)][static_cast<size_t>(t)];
      any += raw[static_cast<size_t>(l)];
    }
    if (any <= 0) {
      for (int h = 0; h < horizon; ++h) {
        out[static_cast<size_t>(h)][static_cast<size_t>(t)] =
            lstm_pred[static_cast<size_t>(h)][static_cast<size_t>(t)] / 3.0;
      }
      continue;
    }
    double scale = 1;
    std::vector<double> norm = NormalizeLags(raw, &scale);

    // LR member.
    std::vector<double> lr_pred(static_cast<size_t>(horizon));
    for (int h = 0; h < horizon; ++h) {
      const auto& theta = lr_.theta[static_cast<size_t>(h)];
      double acc = theta[0];
      for (int l = 0; l < lag; ++l) {
        acc += theta[static_cast<size_t>(l + 1)] * norm[static_cast<size_t>(l)];
      }
      lr_pred[static_cast<size_t>(h)] = std::max(0.0, acc * scale);
    }

    // KR member (Nadaraya-Watson with a Gaussian kernel).
    std::vector<double> kr_pred(static_cast<size_t>(horizon), 0.0);
    double weight_sum = 0;
    for (const auto& sample : kr_samples_) {
      double d2 = 0;
      for (int l = 0; l < lag; ++l) {
        double d = norm[static_cast<size_t>(l)] - sample.lags[static_cast<size_t>(l)];
        d2 += d * d;
      }
      double w = std::exp(-d2 / (2 * bw2));
      weight_sum += w;
      for (int h = 0; h < horizon; ++h) {
        kr_pred[static_cast<size_t>(h)] += w * sample.futures[static_cast<size_t>(h)];
      }
    }
    for (int h = 0; h < horizon; ++h) {
      double kr = weight_sum > 1e-12
                      ? std::max(0.0, kr_pred[static_cast<size_t>(h)] / weight_sum * scale)
                      : lr_pred[static_cast<size_t>(h)];
      double lstm = lstm_pred[static_cast<size_t>(h)][static_cast<size_t>(t)];
      out[static_cast<size_t>(h)][static_cast<size_t>(t)] =
          (lr_pred[static_cast<size_t>(h)] + kr + lstm) / 3.0;
    }
  }
  return out;
}

}  // namespace aets
