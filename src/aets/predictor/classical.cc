#include "aets/predictor/classical.h"

#include <algorithm>
#include <cmath>

#include "aets/common/macros.h"
#include "aets/predictor/solver.h"

namespace aets {

void HaPredictor::Fit(const RateMatrix&) {}

RateMatrix HaPredictor::Predict(const RateMatrix& recent, int horizon) {
  AETS_CHECK(!recent.empty());
  size_t n = recent.front().size();
  size_t window = std::min(static_cast<size_t>(window_), recent.size());
  std::vector<double> mean(n, 0.0);
  for (size_t s = recent.size() - window; s < recent.size(); ++s) {
    for (size_t t = 0; t < n; ++t) mean[t] += recent[s][t];
  }
  for (double& m : mean) m /= static_cast<double>(window);
  return RateMatrix(static_cast<size_t>(horizon), mean);
}

std::vector<double> ArimaPredictor::Difference(const std::vector<double>& series,
                                               int d) {
  std::vector<double> out = series;
  for (int k = 0; k < d; ++k) {
    for (size_t i = out.size() - 1; i > 0; --i) out[i] -= out[i - 1];
    out.erase(out.begin());
  }
  return out;
}

void ArimaPredictor::Fit(const RateMatrix& history) {
  AETS_CHECK(!history.empty());
  size_t num_tables = history.front().size();
  models_.assign(num_tables, TableModel{});

  for (size_t table = 0; table < num_tables; ++table) {
    std::vector<double> series(history.size());
    for (size_t s = 0; s < history.size(); ++s) series[s] = history[s][table];
    std::vector<double> w = Difference(series, d_);
    int n = static_cast<int>(w.size());
    int long_p = std::min(n / 4, std::max(p_ + q_ + 4, 8));
    if (n < long_p + p_ + q_ + 8) continue;  // not enough data; stays invalid

    // Stage 1: long AR to estimate innovations.
    {
      int rows = n - long_p;
      std::vector<double> x(static_cast<size_t>(rows * (long_p + 1)));
      std::vector<double> y(static_cast<size_t>(rows));
      for (int r = 0; r < rows; ++r) {
        x[static_cast<size_t>(r * (long_p + 1))] = 1.0;
        for (int l = 1; l <= long_p; ++l) {
          x[static_cast<size_t>(r * (long_p + 1) + l)] =
              w[static_cast<size_t>(r + long_p - l)];
        }
        y[static_cast<size_t>(r)] = w[static_cast<size_t>(r + long_p)];
      }
      std::vector<double> theta;
      if (!OlsFit(x, y, rows, long_p + 1, &theta, 1e-6)) continue;
      // Residuals -> innovation estimates aligned with w.
      std::vector<double> eps(w.size(), 0.0);
      for (int r = 0; r < rows; ++r) {
        double pred = theta[0];
        for (int l = 1; l <= long_p; ++l) {
          pred += theta[static_cast<size_t>(l)] *
                  w[static_cast<size_t>(r + long_p - l)];
        }
        eps[static_cast<size_t>(r + long_p)] =
            w[static_cast<size_t>(r + long_p)] - pred;
      }

      // Stage 2: regress w_t on [1, w_{t-1..t-p}, eps_{t-1..t-q}].
      int start = long_p + std::max(p_, q_);
      int rows2 = n - start;
      int cols2 = 1 + p_ + q_;
      std::vector<double> x2(static_cast<size_t>(rows2 * cols2));
      std::vector<double> y2(static_cast<size_t>(rows2));
      for (int r = 0; r < rows2; ++r) {
        int t = start + r;
        double* row = x2.data() + static_cast<size_t>(r) * cols2;
        row[0] = 1.0;
        for (int l = 1; l <= p_; ++l) row[l] = w[static_cast<size_t>(t - l)];
        for (int l = 1; l <= q_; ++l) {
          row[p_ + l] = eps[static_cast<size_t>(t - l)];
        }
        y2[static_cast<size_t>(r)] = w[static_cast<size_t>(t)];
      }
      std::vector<double> coef;
      if (!OlsFit(x2, y2, rows2, cols2, &coef, 1e-6)) continue;
      TableModel& m = models_[table];
      m.intercept = coef[0];
      m.ar.assign(coef.begin() + 1, coef.begin() + 1 + p_);
      m.ma.assign(coef.begin() + 1 + p_, coef.end());
      m.valid = true;
    }
  }
}

RateMatrix ArimaPredictor::Predict(const RateMatrix& recent, int horizon) {
  AETS_CHECK(!recent.empty());
  size_t num_tables = recent.front().size();
  RateMatrix out(static_cast<size_t>(horizon),
                 std::vector<double>(num_tables, 0.0));
  for (size_t table = 0; table < num_tables; ++table) {
    std::vector<double> series(recent.size());
    for (size_t s = 0; s < recent.size(); ++s) series[s] = recent[s][table];

    const TableModel& m =
        table < models_.size() ? models_[table] : TableModel{};
    if (!m.valid || static_cast<int>(series.size()) < d_ + p_ + 1) {
      // Fallback: repeat the last observation.
      for (int h = 0; h < horizon; ++h) {
        out[static_cast<size_t>(h)][table] = series.back();
      }
      continue;
    }
    std::vector<double> w = Difference(series, d_);
    // Innovations beyond the sample are their expectation, zero; recent
    // in-sample innovations are approximated as zero too (the long-AR
    // residuals are unavailable at forecast time), so MA terms fade.
    std::vector<double> extended = w;
    double level = series.back();
    for (int h = 0; h < horizon; ++h) {
      double pred = m.intercept;
      for (int l = 1; l <= p_; ++l) {
        int idx = static_cast<int>(extended.size()) - l;
        if (idx >= 0) pred += m.ar[static_cast<size_t>(l - 1)] *
                              extended[static_cast<size_t>(idx)];
      }
      extended.push_back(pred);
      level += pred;  // integrate (d = 1); for d > 1 this approximates
      out[static_cast<size_t>(h)][table] = std::max(0.0, level);
    }
  }
  return out;
}

}  // namespace aets
