#include "aets/replication/log_shipper.h"

#include <chrono>

#include "aets/common/macros.h"

namespace aets {

LogShipper::LogShipper(size_t epoch_size, size_t retention_capacity)
    : builder_(epoch_size),
      retention_capacity_(retention_capacity),
      epochs_shipped_metric_(obs::GetCounter("shipper.epochs_shipped")),
      heartbeats_shipped_metric_(obs::GetCounter("shipper.heartbeats_shipped")),
      bytes_shipped_metric_(obs::GetCounter("shipper.bytes_shipped")),
      txns_shipped_metric_(obs::GetCounter("shipper.txns_shipped")),
      send_failures_metric_(obs::GetCounter("shipper.send_failures")),
      epochs_dropped_metric_(obs::GetCounter("shipper.epochs_dropped")),
      retransmits_metric_(obs::GetCounter("shipper.retransmits")),
      batch_latency_us_metric_(obs::GetHistogram("shipper.batch_latency_us")) {
  AETS_CHECK(retention_capacity_ > 0);
}

LogShipper::~LogShipper() { Finish(); }

void LogShipper::AttachChannel(EpochChannel* channel) {
  std::lock_guard<std::mutex> lk(mu_);
  channels_.push_back(channel);
}

void LogShipper::OnCommit(TxnLog txn) {
  std::lock_guard<std::mutex> lk(mu_);
  if (finished_) return;
  last_activity_us_.store(MonotonicMicros(), std::memory_order_relaxed);
  if (epoch_open_us_ == 0) epoch_open_us_ = MonotonicMicros();
  auto sealed = builder_.AddTxn(std::move(txn));
  if (sealed) ShipLocked(std::move(*sealed));
}

void LogShipper::StartHeartbeats(std::function<Timestamp()> ts_source,
                                 int64_t interval_us) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (heartbeats_started_ || finished_) return;
    heartbeats_started_ = true;
  }
  heartbeat_ts_source_ = std::move(ts_source);
  heartbeat_interval_us_ = interval_us;
  last_activity_us_.store(MonotonicMicros(), std::memory_order_relaxed);
  stop_heartbeats_.store(false, std::memory_order_relaxed);
  heartbeat_thread_ = std::thread([this] { HeartbeatLoop(); });
}

void LogShipper::HeartbeatLoop() {
  while (!stop_heartbeats_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(heartbeat_interval_us_ / 4));
    int64_t now = MonotonicMicros();
    if (now - last_activity_us_.load(std::memory_order_relaxed) <
        heartbeat_interval_us_) {
      continue;
    }
    // Acquire the heartbeat timestamp before taking the shipper lock: the
    // source holds the primary's commit mutex, so locking it under mu_
    // while a committing transaction waits to deliver into OnCommit would
    // invert the lock order. Everything committed below hb_ts has already
    // been sunk when the source returns, and the flush below ships it.
    Timestamp hb_ts = heartbeat_ts_source_();
    std::lock_guard<std::mutex> lk(mu_);
    if (finished_) return;
    auto sealed = builder_.Flush();
    if (sealed) ShipLocked(std::move(*sealed));
    if (hb_ts != kInvalidTimestamp) {
      ShippedEpoch hb = MakeHeartbeatEpoch(builder_.ConsumeEpochId(), hb_ts);
      if (DeliverLocked(hb)) {
        ++heartbeats_;
        ++shipped_;
        heartbeats_shipped_metric_->Add(1);
      }
    }
    last_activity_us_.store(MonotonicMicros(), std::memory_order_relaxed);
  }
}

void LogShipper::FlushEpoch() {
  std::lock_guard<std::mutex> lk(mu_);
  if (finished_) return;
  auto sealed = builder_.Flush();
  if (sealed) ShipLocked(std::move(*sealed));
}

void LogShipper::ShipHeartbeat(Timestamp ts) {
  std::lock_guard<std::mutex> lk(mu_);
  if (finished_ || ts == kInvalidTimestamp) return;
  auto sealed = builder_.Flush();
  if (sealed) ShipLocked(std::move(*sealed));
  ShippedEpoch hb = MakeHeartbeatEpoch(builder_.ConsumeEpochId(), ts);
  if (DeliverLocked(hb)) {
    ++heartbeats_;
    ++shipped_;
    heartbeats_shipped_metric_->Add(1);
  }
  last_activity_us_.store(MonotonicMicros(), std::memory_order_relaxed);
}

void LogShipper::Finish() {
  if (heartbeat_thread_.joinable()) {
    stop_heartbeats_.store(true, std::memory_order_relaxed);
    heartbeat_thread_.join();
  }
  std::lock_guard<std::mutex> lk(mu_);
  if (finished_) return;
  finished_ = true;
  auto sealed = builder_.Flush();
  if (sealed) ShipLocked(std::move(*sealed));
  for (auto* ch : channels_) ch->Close();
}

bool LogShipper::DeliverLocked(const ShippedEpoch& encoded) {
  // Retain before fan-out: a replayer may NACK the very epoch whose Send it
  // raced with (duplicate fetch is harmless, a missed fetch is not).
  retained_.push_back(encoded);
  if (retained_.size() > retention_capacity_) retained_.pop_front();
  size_t delivered = 0;
  for (auto* ch : channels_) {
    if (ch->Send(encoded)) {
      ++delivered;
    } else {
      ++send_failures_;
      send_failures_metric_->Add(1);
    }
  }
  if (!channels_.empty() && delivered == 0) {
    ++epochs_dropped_;
    epochs_dropped_metric_->Add(1);
    return false;
  }
  return true;
}

void LogShipper::ShipLocked(Epoch epoch) {
  ShippedEpoch encoded = EncodeEpoch(epoch);
  if (epoch_open_us_ != 0) {
    batch_latency_us_metric_->Record(MonotonicMicros() - epoch_open_us_);
    epoch_open_us_ = 0;
  }
  if (!DeliverLocked(encoded)) return;  // counted dropped, not shipped
  ++shipped_;
  epochs_shipped_metric_->Add(1);
  txns_shipped_metric_->Add(encoded.num_txns);
  bytes_shipped_metric_->Add(encoded.ByteSize());
}

std::optional<ShippedEpoch> LogShipper::FetchEpoch(EpochId id) {
  std::lock_guard<std::mutex> lk(mu_);
  if (retained_.empty() || id < retained_.front().epoch_id ||
      id > retained_.back().epoch_id) {
    return std::nullopt;
  }
  ++retransmits_;
  retransmits_metric_->Add(1);
  return retained_[id - retained_.front().epoch_id];
}

EpochId LogShipper::NextEpochId() const {
  std::lock_guard<std::mutex> lk(mu_);
  return builder_.next_epoch_id();
}

EpochId LogShipper::epochs_shipped() const {
  std::lock_guard<std::mutex> lk(mu_);
  return shipped_;
}

uint64_t LogShipper::heartbeats_shipped() const {
  std::lock_guard<std::mutex> lk(mu_);
  return heartbeats_;
}

uint64_t LogShipper::send_failures() const {
  std::lock_guard<std::mutex> lk(mu_);
  return send_failures_;
}

uint64_t LogShipper::epochs_dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  return epochs_dropped_;
}

uint64_t LogShipper::retransmits() const {
  std::lock_guard<std::mutex> lk(mu_);
  return retransmits_;
}

}  // namespace aets
