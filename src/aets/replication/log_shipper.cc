#include "aets/replication/log_shipper.h"

#include <algorithm>
#include <chrono>

#include "aets/common/macros.h"

namespace aets {

LogShipper::LogShipper(size_t epoch_size, size_t retention_capacity)
    : builder_(epoch_size),
      retention_capacity_(retention_capacity),
      epochs_shipped_metric_(obs::GetCounter("shipper.epochs_shipped")),
      heartbeats_shipped_metric_(obs::GetCounter("shipper.heartbeats_shipped")),
      bytes_shipped_metric_(obs::GetCounter("shipper.bytes_shipped")),
      txns_shipped_metric_(obs::GetCounter("shipper.txns_shipped")),
      send_failures_metric_(obs::GetCounter("shipper.send_failures")),
      epochs_dropped_metric_(obs::GetCounter("shipper.epochs_dropped")),
      retransmits_metric_(obs::GetCounter("shipper.retransmits")),
      epochs_produced_metric_(obs::GetCounter("shipper.epochs_produced")),
      spills_metric_(obs::GetCounter("segment.spills")),
      spill_failures_metric_(obs::GetCounter("segment.spill_failures")),
      spills_below_floor_metric_(obs::GetCounter("segment.spills_below_floor")),
      budget_triggers_metric_(obs::GetCounter("segment.budget_triggers")),
      batch_latency_us_metric_(obs::GetHistogram("shipper.batch_latency_us")) {
  AETS_CHECK(retention_capacity_ > 0);
  lanes_.resize(1);
  sources_.push_back(std::make_unique<ShardSource>(this, 0));
}

LogShipper::~LogShipper() { Finish(); }

void LogShipper::SetShardMap(const ShardMap* map) {
  std::lock_guard<std::mutex> lk(mu_);
  AETS_CHECK(map != nullptr && map->num_shards() >= 1);
  AETS_CHECK_MSG(builder_.next_epoch_id() == 0 && retained_.empty() &&
                     !finished_,
                 "shard map must be installed before the first epoch ships");
  for (const Lane& lane : lanes_) {
    AETS_CHECK_MSG(lane.channels.empty() && lane.segment_store == nullptr,
                   "shard map must be installed before channels or stores");
  }
  shard_map_ = map;
  lanes_.assign(static_cast<size_t>(map->num_shards()), Lane{});
  sources_.clear();
  for (int s = 0; s < map->num_shards(); ++s) {
    sources_.push_back(std::make_unique<ShardSource>(this, s));
  }
}

int LogShipper::shard_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<int>(lanes_.size());
}

void LogShipper::AttachChannel(EpochChannel* channel) {
  AttachShardChannel(0, channel);
}

void LogShipper::AttachShardChannel(int shard, EpochChannel* channel) {
  std::lock_guard<std::mutex> lk(mu_);
  AETS_CHECK(shard >= 0 && shard < static_cast<int>(lanes_.size()));
  lanes_[shard].channels.push_back(channel);
}

void LogShipper::DetachChannel(EpochChannel* channel) {
  std::lock_guard<std::mutex> lk(mu_);
  for (Lane& lane : lanes_) {
    lane.channels.erase(
        std::remove(lane.channels.begin(), lane.channels.end(), channel),
        lane.channels.end());
  }
}

bool LogShipper::finished() const {
  std::lock_guard<std::mutex> lk(mu_);
  return finished_;
}

void LogShipper::AttachSegmentStore(SegmentStore* store, bool retention_spill) {
  AttachShardSegmentStore(0, store, retention_spill);
}

void LogShipper::AttachShardSegmentStore(int shard, SegmentStore* store,
                                         bool retention_spill) {
  std::lock_guard<std::mutex> lk(mu_);
  AETS_CHECK(shard >= 0 && shard < static_cast<int>(lanes_.size()));
  AETS_CHECK_MSG(store == nullptr || store->empty() ||
                     store->next_epoch() == builder_.next_epoch_id(),
                 "segment store out of step with the epoch sequence");
  lanes_[shard].segment_store = store;
  lanes_[shard].retention_spill = retention_spill;
}

void LogShipper::SetCheckpointTrigger(CheckpointTrigger trigger) {
  std::lock_guard<std::mutex> lk(mu_);
  checkpoint_trigger_ = std::move(trigger);
}

void LogShipper::FirePendingTriggers() {
  std::vector<PendingTrigger> fire;
  CheckpointTrigger trigger;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (pending_triggers_.empty()) return;
    fire.swap(pending_triggers_);
    trigger = checkpoint_trigger_;
  }
  if (!trigger) return;
  for (const PendingTrigger& t : fire) {
    trigger(t.shard, t.next_epoch, t.disk_bytes);
  }
}

void LogShipper::OnCommit(TxnLog txn) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (finished_) return;
    last_activity_us_.store(MonotonicMicros(), std::memory_order_relaxed);
    if (epoch_open_us_ == 0) epoch_open_us_ = MonotonicMicros();
    auto sealed = builder_.AddTxn(std::move(txn));
    if (sealed) ShipLocked(std::move(*sealed));
  }
  FirePendingTriggers();
}

void LogShipper::StartHeartbeats(std::function<Timestamp()> ts_source,
                                 int64_t interval_us) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (heartbeats_started_ || finished_) return;
    heartbeats_started_ = true;
  }
  heartbeat_ts_source_ = std::move(ts_source);
  heartbeat_interval_us_ = interval_us;
  last_activity_us_.store(MonotonicMicros(), std::memory_order_relaxed);
  stop_heartbeats_.store(false, std::memory_order_relaxed);
  heartbeat_thread_ = std::thread([this] { HeartbeatLoop(); });
}

void LogShipper::HeartbeatLoop() {
  while (!stop_heartbeats_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(heartbeat_interval_us_ / 4));
    int64_t now = MonotonicMicros();
    if (now - last_activity_us_.load(std::memory_order_relaxed) <
        heartbeat_interval_us_) {
      continue;
    }
    // Acquire the heartbeat timestamp before taking the shipper lock: the
    // source holds the primary's commit mutex, so locking it under mu_
    // while a committing transaction waits to deliver into OnCommit would
    // invert the lock order. Everything committed below hb_ts has already
    // been sunk when the source returns, and the flush below ships it.
    Timestamp hb_ts = heartbeat_ts_source_();
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (finished_) return;
      auto sealed = builder_.Flush();
      if (sealed) ShipLocked(std::move(*sealed));
      if (hb_ts != kInvalidTimestamp) {
        EpochId id = builder_.ConsumeEpochId();
        std::vector<ShippedEpoch> subs(lanes_.size(),
                                       MakeHeartbeatEpoch(id, hb_ts));
        if (DeliverLocked(id, std::move(subs)) > 0) ++heartbeats_;
      }
      last_activity_us_.store(MonotonicMicros(), std::memory_order_relaxed);
    }
    FirePendingTriggers();
  }
}

void LogShipper::FlushEpoch() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (finished_) return;
    auto sealed = builder_.Flush();
    if (sealed) ShipLocked(std::move(*sealed));
  }
  FirePendingTriggers();
}

void LogShipper::ShipHeartbeat(Timestamp ts) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (finished_ || ts == kInvalidTimestamp) return;
    auto sealed = builder_.Flush();
    if (sealed) ShipLocked(std::move(*sealed));
    EpochId id = builder_.ConsumeEpochId();
    std::vector<ShippedEpoch> subs(lanes_.size(), MakeHeartbeatEpoch(id, ts));
    if (DeliverLocked(id, std::move(subs)) > 0) ++heartbeats_;
    last_activity_us_.store(MonotonicMicros(), std::memory_order_relaxed);
  }
  FirePendingTriggers();
}

void LogShipper::Finish() {
  if (heartbeat_thread_.joinable()) {
    stop_heartbeats_.store(true, std::memory_order_relaxed);
    heartbeat_thread_.join();
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (finished_) return;
    finished_ = true;
    auto sealed = builder_.Flush();
    if (sealed) ShipLocked(std::move(*sealed));
    for (Lane& lane : lanes_) {
      for (auto* ch : lane.channels) ch->Close();
      // Clean-shutdown durability: force the active segment out regardless
      // of the per-epoch fsync policy (one fsync at the end is always
      // affordable).
      if (lane.segment_store != nullptr) lane.segment_store->Sync();
    }
  }
  FirePendingTriggers();
}

std::vector<ShippedEpoch> LogShipper::SplitLocked(const Epoch& epoch) const {
  std::vector<ShippedEpoch> subs;
  subs.reserve(lanes_.size());
  if (lanes_.size() == 1) {
    subs.push_back(EncodeEpoch(epoch));
    return subs;
  }
  // Route each transaction's DML records to the shards that own their
  // tables. A transaction spanning k shards becomes k trimmed TxnLogs (same
  // txn_id and commit_ts, bounded by copies of the original BEGIN/COMMIT
  // markers); row_seq sequences stay valid per shard because every row lives
  // on exactly one shard. The split is complete — every DML lands on exactly
  // one shard — so commit order and timestamps are preserved lane-by-lane.
  const Timestamp full_max = epoch.max_commit_ts();
  std::vector<Epoch> per_shard(lanes_.size());
  for (size_t s = 0; s < per_shard.size(); ++s) {
    per_shard[s].epoch_id = epoch.epoch_id;
  }
  std::vector<TxnLog*> open(lanes_.size());
  for (const TxnLog& txn : epoch.txns) {
    std::fill(open.begin(), open.end(), nullptr);
    const LogRecord* begin = nullptr;
    const LogRecord* commit = nullptr;
    if (!txn.records.empty()) {
      if (txn.records.front().type == LogRecordType::kBegin) {
        begin = &txn.records.front();
      }
      if (txn.records.back().type == LogRecordType::kCommit) {
        commit = &txn.records.back();
      }
    }
    for (const LogRecord& rec : txn.records) {
      if (!rec.is_dml()) continue;
      int s = shard_map_->shard_of(rec.table_id);
      TxnLog*& sub = open[static_cast<size_t>(s)];
      if (sub == nullptr) {
        Epoch& pe = per_shard[static_cast<size_t>(s)];
        pe.txns.emplace_back();
        sub = &pe.txns.back();
        sub->txn_id = txn.txn_id;
        sub->commit_ts = txn.commit_ts;
        sub->records.push_back(begin != nullptr ? *begin
                                                : LogRecord::Begin(rec.lsn,
                                                                   txn.txn_id,
                                                                   txn.commit_ts));
      }
      sub->records.push_back(rec);
    }
    for (size_t s = 0; s < open.size(); ++s) {
      if (open[s] == nullptr) continue;
      open[s]->records.push_back(
          commit != nullptr
              ? *commit
              : LogRecord::Commit(open[s]->records.back().lsn, txn.txn_id,
                                  txn.commit_ts));
    }
  }
  for (size_t s = 0; s < per_shard.size(); ++s) {
    if (per_shard[s].txns.empty()) {
      // Untouched shard: ship a synthetic heartbeat at the epoch's max commit
      // timestamp so this lane's epoch sequence stays gapless and its
      // watermarks advance with the primary.
      subs.push_back(MakeHeartbeatEpoch(epoch.epoch_id, full_max));
    } else {
      ShippedEpoch sub = EncodeEpoch(per_shard[s]);
      // A shard's last transaction may commit before the epoch's global max;
      // publishing the full-epoch max keeps quiet tables on this shard as
      // fresh as the unsharded stream would. Safe to patch after encoding:
      // the CRC covers the payload only, and commit order equals timestamp
      // order so everything at or below full_max is already in this epoch.
      sub.max_commit_ts = full_max;
      subs.push_back(std::move(sub));
    }
  }
  return subs;
}

size_t LogShipper::DeliverLocked(EpochId id, std::vector<ShippedEpoch> subs) {
  AETS_CHECK(subs.size() == lanes_.size());
  Retained entry;
  entry.id = id;
  entry.durable.assign(lanes_.size(), 0);
  // The durable append happens at deliver time, before fan-out: the segment
  // log is the log of record, and an epoch must be on disk before a backup
  // can have seen it. The payload is shared, so this costs one sequential
  // write per lane, not a copy held in RAM.
  for (size_t s = 0; s < lanes_.size(); ++s) {
    Lane& lane = lanes_[s];
    ++lane.produced;
    epochs_produced_metric_->Add(1);
    if (lane.segment_store != nullptr) {
      Status st = lane.segment_store->Append(subs[s]);
      if (st.ok()) {
        entry.durable[s] = 1;
      } else {
        ++lane.spill_failures;
        spill_failures_metric_->Add(1);
      }
      // Disk-budget edge detection: fire one checkpoint request per
      // over-budget episode. The callback runs outside mu_ (see
      // FirePendingTriggers); queueing here keeps the edge atomic with the
      // append that crossed the line.
      if (lane.segment_store->over_budget()) {
        if (lane.budget_trigger_armed) {
          lane.budget_trigger_armed = false;
          ++lane.budget_triggers;
          budget_triggers_metric_->Add(1);
          pending_triggers_.push_back(PendingTrigger{
              static_cast<int>(s), id + 1, lane.segment_store->disk_bytes()});
        }
      } else {
        lane.budget_trigger_armed = true;
      }
    }
  }
  // Retain before fan-out: a replayer may NACK the very epoch whose Send it
  // raced with (duplicate fetch is harmless, a missed fetch is not).
  entry.sub = std::move(subs);
  retained_.push_back(std::move(entry));
  if (retained_.size() > retention_capacity_) {
    // Eviction of a durable entry is a spill — the sub-epoch moves to
    // disk-only and stays fetchable. Evicting a non-durable entry (no store
    // attached, or its append failed) is the legacy loss of NACK coverage.
    // A durable entry that truncation already dropped from disk is neither:
    // it is checkpoint-covered, so the eviction promises an image rather
    // than a disk fetch and must not inflate the spill count. None of these
    // outcomes touches produced/shipped/dropped — conservation holds under
    // truncation by construction.
    for (size_t s = 0; s < lanes_.size(); ++s) {
      if (!retained_.front().durable[s]) continue;
      Lane& lane = lanes_[s];
      if (lane.segment_store != nullptr &&
          retained_.front().id < lane.segment_store->first_epoch()) {
        ++lane.spills_below_floor;
        spills_below_floor_metric_->Add(1);
      } else {
        ++lane.spilled;
        spills_metric_->Add(1);
      }
    }
    retained_.pop_front();
  }
  size_t lanes_delivered = 0;
  const Retained& kept = retained_.back();
  for (size_t s = 0; s < lanes_.size(); ++s) {
    Lane& lane = lanes_[s];
    const ShippedEpoch& sub = kept.sub[s];
    size_t delivered = 0;
    for (auto* ch : lane.channels) {
      if (ch->Send(sub)) {
        ++delivered;
      } else {
        ++lane.send_failures;
        send_failures_metric_->Add(1);
      }
    }
    if (!lane.channels.empty() && delivered == 0) {
      ++lane.dropped;
      epochs_dropped_metric_->Add(1);
      continue;
    }
    ++lane.shipped;
    ++lanes_delivered;
    if (sub.is_heartbeat()) {
      heartbeats_shipped_metric_->Add(1);
    } else {
      epochs_shipped_metric_->Add(1);
      txns_shipped_metric_->Add(sub.num_txns);
      bytes_shipped_metric_->Add(sub.ByteSize());
    }
  }
  return lanes_delivered;
}

void LogShipper::ShipLocked(Epoch epoch) {
  if (epoch_open_us_ != 0) {
    batch_latency_us_metric_->Record(MonotonicMicros() - epoch_open_us_);
    epoch_open_us_ = 0;
  }
  EpochId id = epoch.epoch_id;
  DeliverLocked(id, SplitLocked(epoch));
}

std::optional<ShippedEpoch> LogShipper::FetchEpoch(EpochId id) {
  return FetchShardEpoch(0, id);
}

std::optional<ShippedEpoch> LogShipper::FetchShardEpoch(int shard, EpochId id) {
  std::lock_guard<std::mutex> lk(mu_);
  AETS_CHECK(shard >= 0 && shard < static_cast<int>(lanes_.size()));
  Lane& lane = lanes_[static_cast<size_t>(shard)];
  if (!retained_.empty() && id >= retained_.front().id &&
      id <= retained_.back().id) {
    ++lane.retransmits;
    retransmits_metric_->Add(1);
    return retained_[id - retained_.front().id].sub[static_cast<size_t>(shard)];
  }
  // Evicted from RAM: with the durable tier spilling, the NACK path falls
  // through to a disk fetch (counted in segment.fetches_from_disk) and the
  // old terminal eviction error never fires for durable epochs.
  if (lane.segment_store != nullptr && lane.retention_spill) {
    auto from_disk = lane.segment_store->Read(id);
    if (from_disk) {
      ++lane.retransmits;
      retransmits_metric_->Add(1);
      return from_disk;
    }
  }
  return std::nullopt;
}

EpochId LogShipper::NextEpochId() const {
  std::lock_guard<std::mutex> lk(mu_);
  return builder_.next_epoch_id();
}

EpochId LogShipper::FloorEpochId() const { return ShardFloorEpochId(0); }

EpochId LogShipper::ShardFloorEpochId(int shard) const {
  std::lock_guard<std::mutex> lk(mu_);
  AETS_CHECK(shard >= 0 && shard < static_cast<int>(lanes_.size()));
  const Lane& lane = lanes_[static_cast<size_t>(shard)];
  if (lane.segment_store == nullptr || !lane.retention_spill) return 0;
  return lane.segment_store->first_epoch();
}

EpochSource* LogShipper::shard_source(int shard) {
  std::lock_guard<std::mutex> lk(mu_);
  AETS_CHECK(shard >= 0 && shard < static_cast<int>(sources_.size()));
  return sources_[static_cast<size_t>(shard)].get();
}

EpochId LogShipper::epochs_shipped() const {
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t total = 0;
  for (const Lane& lane : lanes_) total += lane.shipped;
  return total;
}

uint64_t LogShipper::heartbeats_shipped() const {
  std::lock_guard<std::mutex> lk(mu_);
  return heartbeats_;
}

uint64_t LogShipper::send_failures() const {
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t total = 0;
  for (const Lane& lane : lanes_) total += lane.send_failures;
  return total;
}

uint64_t LogShipper::epochs_dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t total = 0;
  for (const Lane& lane : lanes_) total += lane.dropped;
  return total;
}

uint64_t LogShipper::retransmits() const {
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t total = 0;
  for (const Lane& lane : lanes_) total += lane.retransmits;
  return total;
}

uint64_t LogShipper::epochs_produced() const {
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t total = 0;
  for (const Lane& lane : lanes_) total += lane.produced;
  return total;
}

uint64_t LogShipper::epochs_spilled() const {
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t total = 0;
  for (const Lane& lane : lanes_) total += lane.spilled;
  return total;
}

uint64_t LogShipper::spill_failures() const {
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t total = 0;
  for (const Lane& lane : lanes_) total += lane.spill_failures;
  return total;
}

uint64_t LogShipper::spills_below_floor() const {
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t total = 0;
  for (const Lane& lane : lanes_) total += lane.spills_below_floor;
  return total;
}

uint64_t LogShipper::budget_triggers() const {
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t total = 0;
  for (const Lane& lane : lanes_) total += lane.budget_triggers;
  return total;
}

uint64_t LogShipper::shard_produced(int shard) const {
  std::lock_guard<std::mutex> lk(mu_);
  AETS_CHECK(shard >= 0 && shard < static_cast<int>(lanes_.size()));
  return lanes_[static_cast<size_t>(shard)].produced;
}

uint64_t LogShipper::shard_shipped(int shard) const {
  std::lock_guard<std::mutex> lk(mu_);
  AETS_CHECK(shard >= 0 && shard < static_cast<int>(lanes_.size()));
  return lanes_[static_cast<size_t>(shard)].shipped;
}

uint64_t LogShipper::shard_dropped(int shard) const {
  std::lock_guard<std::mutex> lk(mu_);
  AETS_CHECK(shard >= 0 && shard < static_cast<int>(lanes_.size()));
  return lanes_[static_cast<size_t>(shard)].dropped;
}

uint64_t LogShipper::shard_spilled(int shard) const {
  std::lock_guard<std::mutex> lk(mu_);
  AETS_CHECK(shard >= 0 && shard < static_cast<int>(lanes_.size()));
  return lanes_[static_cast<size_t>(shard)].spilled;
}

}  // namespace aets
