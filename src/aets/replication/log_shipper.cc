#include "aets/replication/log_shipper.h"

#include <chrono>

#include "aets/common/macros.h"

namespace aets {

LogShipper::LogShipper(size_t epoch_size, size_t retention_capacity)
    : builder_(epoch_size),
      retention_capacity_(retention_capacity),
      epochs_shipped_metric_(obs::GetCounter("shipper.epochs_shipped")),
      heartbeats_shipped_metric_(obs::GetCounter("shipper.heartbeats_shipped")),
      bytes_shipped_metric_(obs::GetCounter("shipper.bytes_shipped")),
      txns_shipped_metric_(obs::GetCounter("shipper.txns_shipped")),
      send_failures_metric_(obs::GetCounter("shipper.send_failures")),
      epochs_dropped_metric_(obs::GetCounter("shipper.epochs_dropped")),
      retransmits_metric_(obs::GetCounter("shipper.retransmits")),
      epochs_produced_metric_(obs::GetCounter("shipper.epochs_produced")),
      spills_metric_(obs::GetCounter("segment.spills")),
      spill_failures_metric_(obs::GetCounter("segment.spill_failures")),
      batch_latency_us_metric_(obs::GetHistogram("shipper.batch_latency_us")) {
  AETS_CHECK(retention_capacity_ > 0);
}

LogShipper::~LogShipper() { Finish(); }

void LogShipper::AttachChannel(EpochChannel* channel) {
  std::lock_guard<std::mutex> lk(mu_);
  channels_.push_back(channel);
}

void LogShipper::AttachSegmentStore(SegmentStore* store, bool retention_spill) {
  std::lock_guard<std::mutex> lk(mu_);
  AETS_CHECK_MSG(store == nullptr || store->empty() ||
                     store->next_epoch() == builder_.next_epoch_id(),
                 "segment store out of step with the epoch sequence");
  segment_store_ = store;
  retention_spill_ = retention_spill;
}

void LogShipper::OnCommit(TxnLog txn) {
  std::lock_guard<std::mutex> lk(mu_);
  if (finished_) return;
  last_activity_us_.store(MonotonicMicros(), std::memory_order_relaxed);
  if (epoch_open_us_ == 0) epoch_open_us_ = MonotonicMicros();
  auto sealed = builder_.AddTxn(std::move(txn));
  if (sealed) ShipLocked(std::move(*sealed));
}

void LogShipper::StartHeartbeats(std::function<Timestamp()> ts_source,
                                 int64_t interval_us) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (heartbeats_started_ || finished_) return;
    heartbeats_started_ = true;
  }
  heartbeat_ts_source_ = std::move(ts_source);
  heartbeat_interval_us_ = interval_us;
  last_activity_us_.store(MonotonicMicros(), std::memory_order_relaxed);
  stop_heartbeats_.store(false, std::memory_order_relaxed);
  heartbeat_thread_ = std::thread([this] { HeartbeatLoop(); });
}

void LogShipper::HeartbeatLoop() {
  while (!stop_heartbeats_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(heartbeat_interval_us_ / 4));
    int64_t now = MonotonicMicros();
    if (now - last_activity_us_.load(std::memory_order_relaxed) <
        heartbeat_interval_us_) {
      continue;
    }
    // Acquire the heartbeat timestamp before taking the shipper lock: the
    // source holds the primary's commit mutex, so locking it under mu_
    // while a committing transaction waits to deliver into OnCommit would
    // invert the lock order. Everything committed below hb_ts has already
    // been sunk when the source returns, and the flush below ships it.
    Timestamp hb_ts = heartbeat_ts_source_();
    std::lock_guard<std::mutex> lk(mu_);
    if (finished_) return;
    auto sealed = builder_.Flush();
    if (sealed) ShipLocked(std::move(*sealed));
    if (hb_ts != kInvalidTimestamp) {
      ShippedEpoch hb = MakeHeartbeatEpoch(builder_.ConsumeEpochId(), hb_ts);
      if (DeliverLocked(hb)) {
        ++heartbeats_;
        ++shipped_;
        heartbeats_shipped_metric_->Add(1);
      }
    }
    last_activity_us_.store(MonotonicMicros(), std::memory_order_relaxed);
  }
}

void LogShipper::FlushEpoch() {
  std::lock_guard<std::mutex> lk(mu_);
  if (finished_) return;
  auto sealed = builder_.Flush();
  if (sealed) ShipLocked(std::move(*sealed));
}

void LogShipper::ShipHeartbeat(Timestamp ts) {
  std::lock_guard<std::mutex> lk(mu_);
  if (finished_ || ts == kInvalidTimestamp) return;
  auto sealed = builder_.Flush();
  if (sealed) ShipLocked(std::move(*sealed));
  ShippedEpoch hb = MakeHeartbeatEpoch(builder_.ConsumeEpochId(), ts);
  if (DeliverLocked(hb)) {
    ++heartbeats_;
    ++shipped_;
    heartbeats_shipped_metric_->Add(1);
  }
  last_activity_us_.store(MonotonicMicros(), std::memory_order_relaxed);
}

void LogShipper::Finish() {
  if (heartbeat_thread_.joinable()) {
    stop_heartbeats_.store(true, std::memory_order_relaxed);
    heartbeat_thread_.join();
  }
  std::lock_guard<std::mutex> lk(mu_);
  if (finished_) return;
  finished_ = true;
  auto sealed = builder_.Flush();
  if (sealed) ShipLocked(std::move(*sealed));
  for (auto* ch : channels_) ch->Close();
  // Clean-shutdown durability: force the active segment out regardless of
  // the per-epoch fsync policy (one fsync at the end is always affordable).
  if (segment_store_ != nullptr) segment_store_->Sync();
}

bool LogShipper::DeliverLocked(const ShippedEpoch& encoded) {
  ++produced_;
  epochs_produced_metric_->Add(1);
  // The durable append happens at deliver time, before fan-out: the segment
  // log is the log of record, and an epoch must be on disk before a backup
  // can have seen it. The payload is shared, so this costs one sequential
  // write, not a copy held in RAM.
  bool durable = false;
  if (segment_store_ != nullptr) {
    Status s = segment_store_->Append(encoded);
    if (s.ok()) {
      durable = true;
    } else {
      ++spill_failures_;
      spill_failures_metric_->Add(1);
    }
  }
  // Retain before fan-out: a replayer may NACK the very epoch whose Send it
  // raced with (duplicate fetch is harmless, a missed fetch is not).
  retained_.push_back(Retained{encoded, durable});
  if (retained_.size() > retention_capacity_) {
    // Eviction of a durable entry is a spill — the epoch moves to disk-only
    // and stays fetchable. Evicting a non-durable entry (no store attached,
    // or its append failed) is the legacy loss of NACK coverage.
    if (retained_.front().durable) {
      ++spilled_;
      spills_metric_->Add(1);
    }
    retained_.pop_front();
  }
  size_t delivered = 0;
  for (auto* ch : channels_) {
    if (ch->Send(encoded)) {
      ++delivered;
    } else {
      ++send_failures_;
      send_failures_metric_->Add(1);
    }
  }
  if (!channels_.empty() && delivered == 0) {
    ++epochs_dropped_;
    epochs_dropped_metric_->Add(1);
    return false;
  }
  return true;
}

void LogShipper::ShipLocked(Epoch epoch) {
  ShippedEpoch encoded = EncodeEpoch(epoch);
  if (epoch_open_us_ != 0) {
    batch_latency_us_metric_->Record(MonotonicMicros() - epoch_open_us_);
    epoch_open_us_ = 0;
  }
  if (!DeliverLocked(encoded)) return;  // counted dropped, not shipped
  ++shipped_;
  epochs_shipped_metric_->Add(1);
  txns_shipped_metric_->Add(encoded.num_txns);
  bytes_shipped_metric_->Add(encoded.ByteSize());
}

std::optional<ShippedEpoch> LogShipper::FetchEpoch(EpochId id) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!retained_.empty() && id >= retained_.front().epoch.epoch_id &&
      id <= retained_.back().epoch.epoch_id) {
    ++retransmits_;
    retransmits_metric_->Add(1);
    return retained_[id - retained_.front().epoch.epoch_id].epoch;
  }
  // Evicted from RAM: with the durable tier spilling, the NACK path falls
  // through to a disk fetch (counted in segment.fetches_from_disk) and the
  // old terminal eviction error never fires for durable epochs.
  if (segment_store_ != nullptr && retention_spill_) {
    auto from_disk = segment_store_->Read(id);
    if (from_disk) {
      ++retransmits_;
      retransmits_metric_->Add(1);
      return from_disk;
    }
  }
  return std::nullopt;
}

EpochId LogShipper::NextEpochId() const {
  std::lock_guard<std::mutex> lk(mu_);
  return builder_.next_epoch_id();
}

EpochId LogShipper::epochs_shipped() const {
  std::lock_guard<std::mutex> lk(mu_);
  return shipped_;
}

uint64_t LogShipper::heartbeats_shipped() const {
  std::lock_guard<std::mutex> lk(mu_);
  return heartbeats_;
}

uint64_t LogShipper::send_failures() const {
  std::lock_guard<std::mutex> lk(mu_);
  return send_failures_;
}

uint64_t LogShipper::epochs_dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  return epochs_dropped_;
}

uint64_t LogShipper::retransmits() const {
  std::lock_guard<std::mutex> lk(mu_);
  return retransmits_;
}

uint64_t LogShipper::epochs_produced() const {
  std::lock_guard<std::mutex> lk(mu_);
  return produced_;
}

uint64_t LogShipper::epochs_spilled() const {
  std::lock_guard<std::mutex> lk(mu_);
  return spilled_;
}

uint64_t LogShipper::spill_failures() const {
  std::lock_guard<std::mutex> lk(mu_);
  return spill_failures_;
}

}  // namespace aets
