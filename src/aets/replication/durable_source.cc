#include "aets/replication/durable_source.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

namespace fs = std::filesystem;

namespace aets {

namespace {
constexpr char kCheckpointPrefix[] = "ckpt-";
constexpr char kCheckpointSuffix[] = ".img";
}  // namespace

std::string CheckpointPathFor(const std::string& dir, EpochId next_epoch_id) {
  char name[32];
  std::snprintf(name, sizeof(name), "ckpt-%016llx.img",
                static_cast<unsigned long long>(next_epoch_id));
  return dir + "/" + name;
}

std::optional<EpochId> CheckpointEpochOf(const std::string& path) {
  const std::string name = fs::path(path).filename().string();
  // "ckpt-" + 16 hex digits + ".img"
  if (name.size() != 25 || name.rfind(kCheckpointPrefix, 0) != 0 ||
      name.compare(21, 4, kCheckpointSuffix) != 0) {
    return std::nullopt;
  }
  uint64_t id = 0;
  for (size_t i = 5; i < 21; ++i) {
    const char c = name[i];
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return std::nullopt;
    }
    id = (id << 4) | static_cast<uint64_t>(digit);
  }
  return static_cast<EpochId>(id);
}

std::vector<std::string> ListCheckpointFiles(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return out;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(kCheckpointPrefix, 0) == 0 &&
        name.size() > sizeof(kCheckpointSuffix) &&
        name.compare(name.size() - 4, 4, kCheckpointSuffix) == 0) {
      out.push_back(entry.path().string());
    }
  }
  // Order by the parsed epoch id, newest first, rather than by raw name —
  // a malformed name must sort oldest, never shadow the true newest image.
  std::sort(out.begin(), out.end(),
            [](const std::string& a, const std::string& b) {
              const auto ea = CheckpointEpochOf(a);
              const auto eb = CheckpointEpochOf(b);
              if (ea.has_value() != eb.has_value()) return ea.has_value();
              if (ea && eb && *ea != *eb) return *ea > *eb;
              return a > b;
            });
  return out;
}

void PruneCheckpoints(const std::string& dir, size_t keep,
                      EpochId truncation_floor) {
  auto files = ListCheckpointFiles(dir);
  // The floor image: the newest one whose next_epoch_id is at or below the
  // truncation floor. Every epoch below the floor exists only inside it (or
  // a newer image), so count-based rotation must never remove it — if every
  // newer image fails to restore, it is the last bridge to the durable tail.
  std::string protect;
  if (truncation_floor > 0) {
    for (const std::string& f : files) {
      auto epoch = CheckpointEpochOf(f);
      if (epoch && *epoch <= truncation_floor) {
        protect = f;
        break;
      }
    }
  }
  for (size_t i = keep; i < files.size(); ++i) {
    if (files[i] == protect) continue;
    std::error_code ec;
    fs::remove(files[i], ec);
  }
}

}  // namespace aets
