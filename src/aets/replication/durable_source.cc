#include "aets/replication/durable_source.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

namespace fs = std::filesystem;

namespace aets {

namespace {
constexpr char kCheckpointPrefix[] = "ckpt-";
constexpr char kCheckpointSuffix[] = ".img";
}  // namespace

std::string CheckpointPathFor(const std::string& dir, EpochId next_epoch_id) {
  char name[32];
  std::snprintf(name, sizeof(name), "ckpt-%016llx.img",
                static_cast<unsigned long long>(next_epoch_id));
  return dir + "/" + name;
}

std::vector<std::string> ListCheckpointFiles(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return out;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(kCheckpointPrefix, 0) == 0 &&
        name.size() > sizeof(kCheckpointSuffix) &&
        name.compare(name.size() - 4, 4, kCheckpointSuffix) == 0) {
      out.push_back(entry.path().string());
    }
  }
  // The 16-hex-digit zero-padded epoch id makes lexicographic order epoch
  // order; reverse for newest-first.
  std::sort(out.begin(), out.end(), std::greater<std::string>());
  return out;
}

void PruneCheckpoints(const std::string& dir, size_t keep) {
  auto files = ListCheckpointFiles(dir);
  for (size_t i = keep; i < files.size(); ++i) {
    std::error_code ec;
    fs::remove(files[i], ec);
  }
}

}  // namespace aets
