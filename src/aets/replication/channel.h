#ifndef AETS_REPLICATION_CHANNEL_H_
#define AETS_REPLICATION_CHANNEL_H_

#include "aets/common/queue.h"
#include "aets/log/shipped_epoch.h"

namespace aets {

/// In-process stand-in for the primary->backup network link: a bounded
/// blocking queue of encoded epochs, delivered in send order. Replayers
/// validate the epoch-id sequence on receive, so reordering or loss is
/// detected (and tested via failure injection).
class EpochChannel {
 public:
  explicit EpochChannel(size_t capacity = 128) : queue_(capacity) {}

  bool Send(ShippedEpoch epoch) { return queue_.Push(std::move(epoch)); }

  /// Blocks for the next epoch; nullopt when the channel is closed and
  /// drained.
  std::optional<ShippedEpoch> Receive() { return queue_.Pop(); }

  std::optional<ShippedEpoch> TryReceive() { return queue_.TryPop(); }

  void Close() { queue_.Close(); }

  size_t PendingEpochs() const { return queue_.Size(); }

 private:
  BlockingQueue<ShippedEpoch> queue_;
};

}  // namespace aets

#endif  // AETS_REPLICATION_CHANNEL_H_
