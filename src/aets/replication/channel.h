#ifndef AETS_REPLICATION_CHANNEL_H_
#define AETS_REPLICATION_CHANNEL_H_

#include "aets/common/clock.h"
#include "aets/common/queue.h"
#include "aets/log/shipped_epoch.h"
#include "aets/obs/metrics.h"

namespace aets {

/// In-process stand-in for the primary->backup network link: a bounded
/// blocking queue of encoded epochs, delivered in send order. The link is
/// NOT assumed reliable by the consumers: replayers verify each epoch's
/// payload CRC and the epoch-id sequence on receive, tolerate duplicates,
/// and recover drops/reorderings through the shipper's retention buffer
/// (see EpochSource and DESIGN.md "Failure model & recovery"). Loss,
/// duplication, reordering, delay, and corruption are exercised by
/// FaultInjectingChannel in tests/test_fault_injection.cc.
///
/// The receive-side methods are non-virtual on purpose: a faulty link only
/// mutates what the sender puts on the wire, so FaultInjectingChannel
/// overrides Send (and Close, to flush its reorder slot) while delivery
/// stays the plain queue pop.
///
/// Instrumented: `channel.depth` (epochs queued across all channels, the
/// replay backlog), `channel.recv_wait_us` (consumer time blocked per
/// receive — replayer starvation), `channel.epochs_sent`.
class EpochChannel {
 public:
  explicit EpochChannel(size_t capacity = 128)
      : queue_(capacity),
        depth_metric_(obs::GetGauge("channel.depth")),
        sent_metric_(obs::GetCounter("channel.epochs_sent")),
        recv_wait_us_metric_(obs::GetHistogram("channel.recv_wait_us")) {}

  virtual ~EpochChannel() = default;

  EpochChannel(const EpochChannel&) = delete;
  EpochChannel& operator=(const EpochChannel&) = delete;

  /// Hands one epoch to the link. False means the channel is closed — the
  /// caller must count the failure; pretending a rejected epoch was shipped
  /// is exactly the silent-loss bug this layer exists to prevent.
  virtual bool Send(ShippedEpoch epoch) { return Enqueue(std::move(epoch)); }

  /// Blocks for the next epoch; nullopt when the channel is closed and
  /// drained.
  std::optional<ShippedEpoch> Receive() {
    int64_t start = MonotonicMicros();
    std::optional<ShippedEpoch> epoch = queue_.Pop();
    if (epoch) {
      depth_metric_->Add(-1);
      recv_wait_us_metric_->Record(MonotonicMicros() - start);
    }
    return epoch;
  }

  std::optional<ShippedEpoch> TryReceive() {
    std::optional<ShippedEpoch> epoch = queue_.TryPop();
    if (epoch) depth_metric_->Add(-1);
    return epoch;
  }

  virtual void Close() { queue_.Close(); }

  size_t PendingEpochs() const { return queue_.Size(); }

 protected:
  /// Actual delivery onto the queue, shared by Send overrides.
  bool Enqueue(ShippedEpoch epoch) {
    bool ok = queue_.Push(std::move(epoch));
    if (ok) {
      sent_metric_->Add(1);
      depth_metric_->Add(1);
    }
    return ok;
  }

 private:
  BlockingQueue<ShippedEpoch> queue_;
  obs::Gauge* depth_metric_;
  obs::Counter* sent_metric_;
  Histogram* recv_wait_us_metric_;
};

}  // namespace aets

#endif  // AETS_REPLICATION_CHANNEL_H_
