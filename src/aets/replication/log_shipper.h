#ifndef AETS_REPLICATION_LOG_SHIPPER_H_
#define AETS_REPLICATION_LOG_SHIPPER_H_

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "aets/catalog/shard_map.h"
#include "aets/common/clock.h"
#include "aets/log/epoch.h"
#include "aets/log/shipped_epoch.h"
#include "aets/obs/metrics.h"
#include "aets/replication/channel.h"
#include "aets/replication/epoch_source.h"
#include "aets/storage/segment_store.h"

namespace aets {

/// Batches the primary's committed transactions into fixed-size epochs,
/// encodes each sealed epoch, and fans it out to every attached backup
/// channel (paper Section III-B: epochs are sealed on transaction
/// boundaries, sized by transaction count, and shipped in commit order).
///
/// When the primary goes idle, an optional heartbeat thread first flushes
/// the partial epoch and then ships heartbeat epochs so the backups'
/// global_cmt_ts keeps advancing (paper Section V-B, 50 ms default).
///
/// Sharded replication (DESIGN.md §11): with a ShardMap installed the
/// shipper routes every sealed epoch through N per-shard lanes. Each lane
/// carries a *sub-epoch* — the same epoch id, holding exactly the
/// transactions (trimmed to this shard's DML records) that touch the
/// shard's tables. A shard untouched by an epoch receives a synthetic
/// heartbeat at the epoch's max commit timestamp instead, so every lane
/// observes the full, gapless epoch id sequence and every shard's
/// watermarks keep pace with the primary. Data sub-epochs carry the FULL
/// epoch's max_commit_ts so quiet tables and the per-shard global
/// watermark advance as far as the unsharded stream would. Without a
/// ShardMap there is exactly one lane and the wire stream is byte-identical
/// to the pre-sharding shipper.
///
/// Fault tolerance: every delivered epoch (heartbeats included) is kept in a
/// bounded retention buffer — one buffer whose entries hold all N per-shard
/// sub-epochs, serving N independent NACK streams through shard_source(i).
/// Epochs rejected by every channel of a lane (closed link) are counted as
/// dropped on that lane, not shipped; the conservation invariant is
/// `epochs_produced() == epochs_shipped() + epochs_dropped()`, where each
/// accessor sums its per-lane counter over all shards.
class LogShipper : public EpochSource {
 public:
  /// Invoked (outside the shipper lock) when a lane's segment store first
  /// exceeds its disk_budget_bytes: `shard` is the over-budget lane,
  /// `next_epoch_id` the id the next epoch will carry, `disk_bytes` the
  /// lane's footprint at the moment it tripped. The receiver is expected to
  /// checkpoint that shard's backup and call SegmentStore::TruncateBelow;
  /// the trigger re-arms only once the store drops back under budget, so a
  /// slow checkpointer sees one request per over-budget episode, not one
  /// per epoch.
  using CheckpointTrigger =
      std::function<void(int shard, EpochId next_epoch_id,
                         uint64_t disk_bytes)>;

  /// `retention_capacity` bounds the NACK window: a backup that falls more
  /// than this many epochs behind can no longer recover a loss and must
  /// re-bootstrap from a checkpoint.
  explicit LogShipper(size_t epoch_size, size_t retention_capacity = 128);
  ~LogShipper() override;

  LogShipper(const LogShipper&) = delete;
  LogShipper& operator=(const LogShipper&) = delete;

  /// Installs the table→shard partition and sizes the per-shard lanes. Must
  /// be called before any channel/segment-store attach and before the first
  /// epoch ships; `map` must outlive the shipper. Without this call the
  /// shipper runs unsharded (one lane, legacy wire format).
  void SetShardMap(const ShardMap* map);

  /// Number of shard lanes (1 without a ShardMap).
  int shard_count() const;

  /// Attaches a backup channel to shard 0 (the whole stream when unsharded).
  void AttachChannel(EpochChannel* channel);

  /// Attaches a backup channel to one shard's lane. Every channel of a lane
  /// receives every sub-epoch routed to that shard.
  void AttachShardChannel(int shard, EpochChannel* channel);

  /// Removes `channel` from every lane it is attached to (no-op when absent).
  /// After this returns no further Send touches the channel, so a transport
  /// endpoint (e.g. the network tier's per-subscriber staging channel) may
  /// safely destroy channels whose subscriber is gone instead of leaking
  /// them for the shipper's lifetime.
  void DetachChannel(EpochChannel* channel);

  /// True once Finish() sealed the stream — transports use this to tell a
  /// final end-of-stream apart from their own shutdown.
  bool finished() const;

  /// Attaches the durable tier (DESIGN.md §10) to shard 0. Every delivered
  /// epoch — heartbeats included — is appended to `store` at deliver time,
  /// so the sequential segment log always holds the full epoch sequence.
  /// The RAM retention buffer then *spills* on overflow instead of losing:
  /// evicting a durable entry is a RAM→disk-only transition, and when
  /// `retention_spill` is true FetchEpoch falls through to the store for
  /// evicted ids, turning the old terminal eviction error into a disk fetch.
  /// (`retention_spill = false` keeps the legacy eviction semantics while
  /// still recording the durable log for restart recovery.)
  ///
  /// An append failure (full disk) marks that epoch non-durable and counts
  /// `spill_failures`; evicting a non-durable entry is the legacy terminal
  /// loss — graceful degradation, not an abort.
  ///
  /// Call before the first epoch ships; `store` must be empty or positioned
  /// at this shipper's next epoch id, and must outlive the shipper.
  void AttachSegmentStore(SegmentStore* store, bool retention_spill = true);

  /// Per-shard durable tier: each lane can have its own segment store (its
  /// own directory), holding that shard's sub-epoch sequence. Same contract
  /// as AttachSegmentStore.
  void AttachShardSegmentStore(int shard, SegmentStore* store,
                               bool retention_spill = true);

  /// Installs the disk-budget callback (see CheckpointTrigger). Lanes whose
  /// stores carry disk_budget_bytes == 0 never fire it.
  void SetCheckpointTrigger(CheckpointTrigger trigger);

  /// Commit-sink entry point: call in primary commit order.
  void OnCommit(TxnLog txn);

  /// Starts the idle-detection heartbeat thread. `ts_source` must return a
  /// timestamp below every future commit and above every already-sunk commit
  /// (PrimaryDb::AcquireHeartbeatTs). Called without the shipper lock held.
  /// Idempotent: only the first call starts a thread (a second call used to
  /// overwrite `heartbeat_thread_` without joining, i.e. std::terminate);
  /// calls after Finish() are ignored.
  void StartHeartbeats(std::function<Timestamp()> ts_source,
                       int64_t interval_us = 50'000);

  /// Seals and ships the currently open partial epoch, if any. The
  /// deterministic simulation harness uses this to place epoch boundaries
  /// exactly where a scenario script says, instead of on the size trigger.
  void FlushEpoch();

  /// Flushes the open epoch, then ships one heartbeat epoch carrying `ts`
  /// (to every shard lane, same epoch id). `ts` must satisfy the
  /// StartHeartbeats contract (above every sunk commit, below every future
  /// one); kInvalidTimestamp is ignored. The simulation harness calls this
  /// in place of the wall-clock heartbeat thread.
  void ShipHeartbeat(Timestamp ts);

  /// Seals and ships the final partial epoch, stops heartbeats, and closes
  /// all channels on all lanes. Idempotent.
  void Finish();

  /// EpochSource: the replayers' NACK path, served from the retention
  /// buffer. Equivalent to shard_source(0) — the whole stream when
  /// unsharded. Successful fetches count as retransmits.
  std::optional<ShippedEpoch> FetchEpoch(EpochId id) override;
  EpochId NextEpochId() const override;
  /// Shard 0's truncation floor (see ShardFloorEpochId).
  EpochId FloorEpochId() const override;

  /// The durable truncation floor of one lane: its segment store's
  /// first_epoch() when a spilling store is attached, 0 otherwise. A NACK
  /// for an id below this that misses RAM is "already checkpointed", not
  /// loss — the replayer reports BelowCheckpoint instead of Corruption.
  EpochId ShardFloorEpochId(int shard) const;

  /// Per-shard NACK back-channel: serves shard `shard`'s sub-epoch stream
  /// out of the shared retention buffer (falling through to that lane's
  /// segment store for evicted ids). The returned source is owned by the
  /// shipper and valid for its lifetime.
  EpochSource* shard_source(int shard);

  /// Fetches shard `shard`'s sub-epoch with id `id` (what shard_source
  /// serves). Counts as a retransmit on that lane when found.
  std::optional<ShippedEpoch> FetchShardEpoch(int shard, EpochId id);

  /// Sub-epochs delivered across all lanes (data and heartbeat frames; one
  /// per epoch id per shard). Unsharded this is the classic "epochs shipped
  /// plus heartbeats" count.
  EpochId epochs_shipped() const;
  /// Heartbeat epoch *ids* shipped (idle heartbeats; synthetic per-shard
  /// fillers inside data epochs are counted in epochs_shipped per lane, not
  /// here).
  uint64_t heartbeats_shipped() const;
  /// Channel-level Send() rejections (closed channel), across all lanes.
  uint64_t send_failures() const;
  /// Sub-epochs that reached zero attached channels on their lane — lost at
  /// the send side.
  uint64_t epochs_dropped() const;
  /// Sub-epochs re-served through the NACK path (RAM or disk), all lanes.
  uint64_t retransmits() const;
  /// Every sub-epoch that entered delivery, heartbeats included (one per
  /// epoch id per lane). The conservation invariant
  /// `produced == shipped + dropped` always holds, globally and per shard;
  /// spills are a disjoint dimension (where a produced epoch lives), never
  /// double-counted against shipped.
  uint64_t epochs_produced() const;
  /// Durable sub-epochs evicted from the RAM retention buffer (now
  /// disk-only), all lanes.
  uint64_t epochs_spilled() const;
  /// Segment-store appends that failed (disk full); those sub-epochs are
  /// RAM-only and evicting them is the legacy terminal loss.
  uint64_t spill_failures() const;
  /// Durable sub-epochs evicted from RAM after truncation had already
  /// dropped them from disk: checkpoint-covered, so NOT counted as spilled
  /// (a spill promises a disk fetch; these promise a checkpoint image). The
  /// conserved `produced == shipped + dropped` invariant is untouched
  /// either way.
  uint64_t spills_below_floor() const;
  /// CheckpointTrigger firings across all lanes (one per over-budget
  /// episode per lane).
  uint64_t budget_triggers() const;

  /// Per-shard views of the conserved accounting (`produced == shipped +
  /// dropped` holds for each shard independently).
  uint64_t shard_produced(int shard) const;
  uint64_t shard_shipped(int shard) const;
  uint64_t shard_dropped(int shard) const;
  uint64_t shard_spilled(int shard) const;

 private:
  /// One shard's delivery lane: its channels, optional durable tier, and
  /// the per-shard half of every conserved counter.
  struct Lane {
    std::vector<EpochChannel*> channels;
    SegmentStore* segment_store = nullptr;
    bool retention_spill = true;
    uint64_t produced = 0;
    uint64_t shipped = 0;
    uint64_t dropped = 0;
    uint64_t send_failures = 0;
    uint64_t spilled = 0;
    uint64_t spill_failures = 0;
    uint64_t spills_below_floor = 0;
    uint64_t retransmits = 0;
    uint64_t budget_triggers = 0;
    /// One CheckpointTrigger per over-budget episode: disarmed on fire,
    /// re-armed when the store drops back under budget.
    bool budget_trigger_armed = true;
  };

  /// EpochSource view of one lane.
  class ShardSource : public EpochSource {
   public:
    ShardSource(LogShipper* owner, int shard) : owner_(owner), shard_(shard) {}
    std::optional<ShippedEpoch> FetchEpoch(EpochId id) override {
      return owner_->FetchShardEpoch(shard_, id);
    }
    EpochId NextEpochId() const override { return owner_->NextEpochId(); }
    EpochId FloorEpochId() const override {
      return owner_->ShardFloorEpochId(shard_);
    }

   private:
    LogShipper* owner_;
    int shard_;
  };

  /// Invokes every trigger queued under the lock by DeliverLocked. Must be
  /// called WITHOUT mu_ held — the receiver typically checkpoints and
  /// truncates, which re-enters the store.
  void FirePendingTriggers();
  void ShipLocked(Epoch epoch);
  /// Splits a sealed epoch into per-lane sub-epochs (identity when
  /// unsharded; synthetic heartbeats for untouched shards otherwise).
  std::vector<ShippedEpoch> SplitLocked(const Epoch& epoch) const;
  /// Retains all `subs` under `id` and fans each out on its lane; returns
  /// the number of lanes that accepted (a lane with no channels counts as
  /// accepted, matching the unsharded contract).
  size_t DeliverLocked(EpochId id, std::vector<ShippedEpoch> subs);
  void HeartbeatLoop();

  mutable std::mutex mu_;
  EpochBuilder builder_;
  const ShardMap* shard_map_ = nullptr;  // null = unsharded (one lane)
  std::vector<Lane> lanes_;
  std::vector<std::unique_ptr<ShardSource>> sources_;
  uint64_t heartbeats_ = 0;
  bool finished_ = false;

  /// Recently delivered epochs, contiguous ids, newest at the back. Sized
  /// by `retention_capacity_`; payloads are shared so retention costs one
  /// ShippedEpoch header per entry per lane, not a payload copy. `durable`
  /// records, per lane, whether the segment-store append succeeded at
  /// deliver time. One buffer serves all N NACK streams.
  struct Retained {
    EpochId id = 0;
    std::vector<ShippedEpoch> sub;   // one per lane
    std::vector<uint8_t> durable;    // one per lane
  };
  std::deque<Retained> retained_;
  size_t retention_capacity_;

  /// Disk-budget checkpoint requests. Queued under mu_ at deliver time,
  /// drained by FirePendingTriggers() after every public entry point
  /// releases the lock.
  struct PendingTrigger {
    int shard;
    EpochId next_epoch;
    uint64_t disk_bytes;
  };
  CheckpointTrigger checkpoint_trigger_;
  std::vector<PendingTrigger> pending_triggers_;

  /// Observability (resolved once; see obs::MetricsRegistry). Batch latency
  /// is first-commit-in-epoch to ship.
  obs::Counter* epochs_shipped_metric_;
  obs::Counter* heartbeats_shipped_metric_;
  obs::Counter* bytes_shipped_metric_;
  obs::Counter* txns_shipped_metric_;
  obs::Counter* send_failures_metric_;
  obs::Counter* epochs_dropped_metric_;
  obs::Counter* retransmits_metric_;
  obs::Counter* epochs_produced_metric_;
  obs::Counter* spills_metric_;
  obs::Counter* spill_failures_metric_;
  obs::Counter* spills_below_floor_metric_;
  obs::Counter* budget_triggers_metric_;
  Histogram* batch_latency_us_metric_;
  int64_t epoch_open_us_ = 0;  // first OnCommit of the open epoch; 0 = none

  std::atomic<int64_t> last_activity_us_{0};
  std::atomic<bool> stop_heartbeats_{false};
  bool heartbeats_started_ = false;  // guarded by mu_
  int64_t heartbeat_interval_us_ = 50'000;
  std::function<Timestamp()> heartbeat_ts_source_;
  std::thread heartbeat_thread_;
};

}  // namespace aets

#endif  // AETS_REPLICATION_LOG_SHIPPER_H_
