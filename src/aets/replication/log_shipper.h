#ifndef AETS_REPLICATION_LOG_SHIPPER_H_
#define AETS_REPLICATION_LOG_SHIPPER_H_

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "aets/common/clock.h"
#include "aets/log/epoch.h"
#include "aets/log/shipped_epoch.h"
#include "aets/obs/metrics.h"
#include "aets/replication/channel.h"
#include "aets/replication/epoch_source.h"
#include "aets/storage/segment_store.h"

namespace aets {

/// Batches the primary's committed transactions into fixed-size epochs,
/// encodes each sealed epoch, and fans it out to every attached backup
/// channel (paper Section III-B: epochs are sealed on transaction
/// boundaries, sized by transaction count, and shipped in commit order).
///
/// When the primary goes idle, an optional heartbeat thread first flushes
/// the partial epoch and then ships heartbeat epochs so the backups'
/// global_cmt_ts keeps advancing (paper Section V-B, 50 ms default).
///
/// Fault tolerance: every delivered epoch (heartbeats included) is kept in a
/// bounded retention buffer, and the shipper serves EpochSource so replayers
/// can NACK-fetch epochs the link dropped or corrupted. Epochs rejected by
/// every channel (closed link) are counted as dropped, not shipped —
/// `send_failures()` / `epochs_dropped()` and the `shipper.send_failures` /
/// `shipper.epochs_dropped` metrics expose the loss instead of hiding it.
class LogShipper : public EpochSource {
 public:
  /// `retention_capacity` bounds the NACK window: a backup that falls more
  /// than this many epochs behind can no longer recover a loss and must
  /// re-bootstrap from a checkpoint.
  explicit LogShipper(size_t epoch_size, size_t retention_capacity = 128);
  ~LogShipper() override;

  LogShipper(const LogShipper&) = delete;
  LogShipper& operator=(const LogShipper&) = delete;

  /// Attaches a backup channel. All channels receive every epoch.
  void AttachChannel(EpochChannel* channel);

  /// Attaches the durable tier (DESIGN.md §10). Every delivered epoch —
  /// heartbeats included — is appended to `store` at deliver time, so the
  /// sequential segment log always holds the full epoch sequence. The RAM
  /// retention buffer then *spills* on overflow instead of losing: evicting
  /// a durable entry is a RAM→disk-only transition, and when
  /// `retention_spill` is true FetchEpoch falls through to the store for
  /// evicted ids, turning the old terminal eviction error into a disk fetch.
  /// (`retention_spill = false` keeps the legacy eviction semantics while
  /// still recording the durable log for restart recovery.)
  ///
  /// An append failure (full disk) marks that epoch non-durable and counts
  /// `spill_failures`; evicting a non-durable entry is the legacy terminal
  /// loss — graceful degradation, not an abort.
  ///
  /// Call before the first epoch ships; `store` must be empty or positioned
  /// at this shipper's next epoch id, and must outlive the shipper.
  void AttachSegmentStore(SegmentStore* store, bool retention_spill = true);

  /// Commit-sink entry point: call in primary commit order.
  void OnCommit(TxnLog txn);

  /// Starts the idle-detection heartbeat thread. `ts_source` must return a
  /// timestamp below every future commit and above every already-sunk commit
  /// (PrimaryDb::AcquireHeartbeatTs). Called without the shipper lock held.
  /// Idempotent: only the first call starts a thread (a second call used to
  /// overwrite `heartbeat_thread_` without joining, i.e. std::terminate);
  /// calls after Finish() are ignored.
  void StartHeartbeats(std::function<Timestamp()> ts_source,
                       int64_t interval_us = 50'000);

  /// Seals and ships the currently open partial epoch, if any. The
  /// deterministic simulation harness uses this to place epoch boundaries
  /// exactly where a scenario script says, instead of on the size trigger.
  void FlushEpoch();

  /// Flushes the open epoch, then ships one heartbeat epoch carrying `ts`.
  /// `ts` must satisfy the StartHeartbeats contract (above every sunk
  /// commit, below every future one); kInvalidTimestamp is ignored. The
  /// simulation harness calls this in place of the wall-clock heartbeat
  /// thread.
  void ShipHeartbeat(Timestamp ts);

  /// Seals and ships the final partial epoch, stops heartbeats, and closes
  /// all channels. Idempotent.
  void Finish();

  /// EpochSource: the replayers' NACK path, served from the retention
  /// buffer. Successful fetches count as retransmits.
  std::optional<ShippedEpoch> FetchEpoch(EpochId id) override;
  EpochId NextEpochId() const override;

  EpochId epochs_shipped() const;
  uint64_t heartbeats_shipped() const;
  /// Channel-level Send() rejections (closed channel), per channel.
  uint64_t send_failures() const;
  /// Epochs that reached zero attached channels — lost at the send side.
  uint64_t epochs_dropped() const;
  /// Epochs re-served through FetchEpoch (RAM or disk).
  uint64_t retransmits() const;
  /// Every epoch that entered DeliverLocked, heartbeats included. The
  /// conservation invariant `produced == shipped + dropped` always holds;
  /// spills are a disjoint dimension (where a produced epoch lives), never
  /// double-counted against shipped.
  uint64_t epochs_produced() const;
  /// Durable epochs evicted from the RAM retention buffer (now disk-only).
  uint64_t epochs_spilled() const;
  /// Segment-store appends that failed (disk full); those epochs are
  /// RAM-only and evicting them is the legacy terminal loss.
  uint64_t spill_failures() const;

 private:
  void ShipLocked(Epoch epoch);
  /// Retains `encoded` and fans it out; returns true when at least one
  /// channel accepted it (vacuously true with no channels attached).
  bool DeliverLocked(const ShippedEpoch& encoded);
  void HeartbeatLoop();

  mutable std::mutex mu_;
  EpochBuilder builder_;
  std::vector<EpochChannel*> channels_;
  EpochId shipped_ = 0;
  uint64_t heartbeats_ = 0;
  uint64_t send_failures_ = 0;
  uint64_t epochs_dropped_ = 0;
  uint64_t retransmits_ = 0;
  uint64_t produced_ = 0;
  uint64_t spilled_ = 0;
  uint64_t spill_failures_ = 0;
  bool finished_ = false;

  /// Recently delivered epochs, contiguous ids, newest at the back. Sized
  /// by `retention_capacity_`; payloads are shared so retention costs one
  /// ShippedEpoch header per entry, not a payload copy. `durable` records
  /// whether the segment-store append succeeded at deliver time.
  struct Retained {
    ShippedEpoch epoch;
    bool durable;
  };
  std::deque<Retained> retained_;
  size_t retention_capacity_;

  /// Durable tier; null = RAM-only (legacy) retention.
  SegmentStore* segment_store_ = nullptr;
  bool retention_spill_ = true;

  /// Observability (resolved once; see obs::MetricsRegistry). Batch latency
  /// is first-commit-in-epoch to ship.
  obs::Counter* epochs_shipped_metric_;
  obs::Counter* heartbeats_shipped_metric_;
  obs::Counter* bytes_shipped_metric_;
  obs::Counter* txns_shipped_metric_;
  obs::Counter* send_failures_metric_;
  obs::Counter* epochs_dropped_metric_;
  obs::Counter* retransmits_metric_;
  obs::Counter* epochs_produced_metric_;
  obs::Counter* spills_metric_;
  obs::Counter* spill_failures_metric_;
  Histogram* batch_latency_us_metric_;
  int64_t epoch_open_us_ = 0;  // first OnCommit of the open epoch; 0 = none

  std::atomic<int64_t> last_activity_us_{0};
  std::atomic<bool> stop_heartbeats_{false};
  bool heartbeats_started_ = false;  // guarded by mu_
  int64_t heartbeat_interval_us_ = 50'000;
  std::function<Timestamp()> heartbeat_ts_source_;
  std::thread heartbeat_thread_;
};

}  // namespace aets

#endif  // AETS_REPLICATION_LOG_SHIPPER_H_
