#ifndef AETS_REPLICATION_LOG_SHIPPER_H_
#define AETS_REPLICATION_LOG_SHIPPER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "aets/common/clock.h"
#include "aets/log/epoch.h"
#include "aets/log/shipped_epoch.h"
#include "aets/obs/metrics.h"
#include "aets/replication/channel.h"

namespace aets {

/// Batches the primary's committed transactions into fixed-size epochs,
/// encodes each sealed epoch, and fans it out to every attached backup
/// channel (paper Section III-B: epochs are sealed on transaction
/// boundaries, sized by transaction count, and shipped in commit order).
///
/// When the primary goes idle, an optional heartbeat thread first flushes
/// the partial epoch and then ships heartbeat epochs so the backups'
/// global_cmt_ts keeps advancing (paper Section V-B, 50 ms default).
class LogShipper {
 public:
  explicit LogShipper(size_t epoch_size);
  ~LogShipper();

  LogShipper(const LogShipper&) = delete;
  LogShipper& operator=(const LogShipper&) = delete;

  /// Attaches a backup channel. All channels receive every epoch.
  void AttachChannel(EpochChannel* channel);

  /// Commit-sink entry point: call in primary commit order.
  void OnCommit(TxnLog txn);

  /// Starts the idle-detection heartbeat thread. `ts_source` must return a
  /// timestamp below every future commit and above every already-sunk commit
  /// (PrimaryDb::AcquireHeartbeatTs). Called without the shipper lock held.
  void StartHeartbeats(std::function<Timestamp()> ts_source,
                       int64_t interval_us = 50'000);

  /// Seals and ships the final partial epoch, stops heartbeats, and closes
  /// all channels. Idempotent.
  void Finish();

  EpochId epochs_shipped() const;
  uint64_t heartbeats_shipped() const;

 private:
  void ShipLocked(Epoch epoch);
  void HeartbeatLoop();

  mutable std::mutex mu_;
  EpochBuilder builder_;
  std::vector<EpochChannel*> channels_;
  EpochId shipped_ = 0;
  uint64_t heartbeats_ = 0;
  bool finished_ = false;

  /// Observability (resolved once; see obs::MetricsRegistry). Batch latency
  /// is first-commit-in-epoch to ship.
  obs::Counter* epochs_shipped_metric_;
  obs::Counter* heartbeats_shipped_metric_;
  obs::Counter* bytes_shipped_metric_;
  obs::Counter* txns_shipped_metric_;
  Histogram* batch_latency_us_metric_;
  int64_t epoch_open_us_ = 0;  // first OnCommit of the open epoch; 0 = none

  std::atomic<int64_t> last_activity_us_{0};
  std::atomic<bool> stop_heartbeats_{false};
  int64_t heartbeat_interval_us_ = 50'000;
  std::function<Timestamp()> heartbeat_ts_source_;
  std::thread heartbeat_thread_;
};

}  // namespace aets

#endif  // AETS_REPLICATION_LOG_SHIPPER_H_
