#include "aets/replication/fault_injection.h"

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>

namespace aets {

FaultInjectingChannel::FaultInjectingChannel(FaultProfile profile,
                                             size_t capacity)
    : EpochChannel(capacity),
      profile_(profile),
      rng_(profile.seed),
      drops_metric_(obs::GetCounter("fault.drops")),
      duplicates_metric_(obs::GetCounter("fault.duplicates")),
      reorders_metric_(obs::GetCounter("fault.reorders")),
      corruptions_metric_(obs::GetCounter("fault.corruptions")),
      delays_metric_(obs::GetCounter("fault.delays")) {}

FaultInjectingChannel::~FaultInjectingChannel() = default;

void FaultInjectingChannel::CorruptPayload(ShippedEpoch* epoch) {
  auto damaged = std::make_shared<std::string>(*epoch->payload);
  size_t bit = static_cast<size_t>(
      rng_.UniformInt(0, static_cast<int64_t>(damaged->size() * 8 - 1)));
  (*damaged)[bit / 8] = static_cast<char>(
      static_cast<unsigned char>((*damaged)[bit / 8]) ^ (1u << (bit % 8)));
  epoch->payload = std::move(damaged);
}

bool FaultInjectingChannel::Send(ShippedEpoch epoch) {
  std::lock_guard<std::mutex> lk(mu_);
  // Fixed draw order keeps the schedule deterministic regardless of which
  // faults actually fire.
  bool delay = rng_.Bernoulli(profile_.delay);
  bool drop = rng_.Bernoulli(profile_.drop);
  bool corrupt = rng_.Bernoulli(profile_.corrupt);
  bool duplicate = rng_.Bernoulli(profile_.duplicate);
  bool reorder = rng_.Bernoulli(profile_.reorder);

  if (delay) {
    delays_.fetch_add(1, std::memory_order_relaxed);
    delays_metric_->Add(1);
    std::this_thread::sleep_for(std::chrono::microseconds(profile_.delay_us));
  }
  if (drop) {
    // The wire ate it. Report success: a lossy link gives no feedback, so
    // the sender's accounting must not see this — recovery is entirely the
    // receiver's NACK protocol.
    drops_.fetch_add(1, std::memory_order_relaxed);
    drops_metric_->Add(1);
    return true;
  }
  if (corrupt && !epoch.is_heartbeat() && epoch.ByteSize() > 0) {
    corruptions_.fetch_add(1, std::memory_order_relaxed);
    corruptions_metric_->Add(1);
    CorruptPayload(&epoch);
  }
  if (reorder && !held_) {
    reorders_.fetch_add(1, std::memory_order_relaxed);
    reorders_metric_->Add(1);
    held_ = std::move(epoch);
    return true;
  }
  bool ok = Enqueue(epoch);
  if (duplicate) {
    duplicates_.fetch_add(1, std::memory_order_relaxed);
    duplicates_metric_->Add(1);
    Enqueue(epoch);
  }
  if (held_) {
    Enqueue(std::move(*held_));
    held_.reset();
  }
  return ok;
}

void FaultInjectingChannel::Close() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (held_) {
      Enqueue(std::move(*held_));
      held_.reset();
    }
  }
  EpochChannel::Close();
}

}  // namespace aets
