#ifndef AETS_REPLICATION_EPOCH_SOURCE_H_
#define AETS_REPLICATION_EPOCH_SOURCE_H_

#include <optional>

#include "aets/log/shipped_epoch.h"

namespace aets {

/// The recovery back-channel from a backup replayer to its primary-side
/// shipper — the NACK path of the replication protocol. The streaming data
/// path (EpochChannel) may drop, duplicate, reorder, or corrupt epochs; this
/// control path is reliable (in-process it is a direct call into the
/// shipper's retention buffer; over a real network it would be a separate
/// acknowledged RPC connection).
///
/// LogShipper implements it from a bounded retention buffer of recently
/// shipped epochs, so recovery is possible only while the backup lags less
/// than the retention window — beyond that the replayer must latch a
/// terminal error and re-bootstrap from a checkpoint.
class EpochSource {
 public:
  virtual ~EpochSource() = default;

  /// Returns a clean copy of shipped epoch `id`, or nullopt when it was
  /// never shipped or has already been evicted from retention (in which
  /// case the requester cannot recover and must escalate).
  virtual std::optional<ShippedEpoch> FetchEpoch(EpochId id) = 0;

  /// The id the next shipped epoch will carry; every id in [0, NextEpochId())
  /// has been handed to the channels. After the channels close, a replayer
  /// whose expected id is below this bound is missing tail epochs and must
  /// fetch them before declaring its state final.
  virtual EpochId NextEpochId() const = 0;

  /// The durable truncation floor: every epoch below this id has been
  /// dropped from the durable log because a checkpoint image with
  /// next_epoch_id >= FloorEpochId() covers it. A FetchEpoch miss below the
  /// floor therefore means "already checkpointed", not data loss — the
  /// requester bootstraps from the image instead of latching Corruption.
  /// Sources without a durable tier report 0 (nothing ever truncated).
  virtual EpochId FloorEpochId() const { return 0; }
};

}  // namespace aets

#endif  // AETS_REPLICATION_EPOCH_SOURCE_H_
