#ifndef AETS_REPLICATION_FAULT_INJECTION_H_
#define AETS_REPLICATION_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>

#include "aets/common/rng.h"
#include "aets/obs/metrics.h"
#include "aets/replication/channel.h"

namespace aets {

/// Per-send fault probabilities for FaultInjectingChannel. All independent;
/// a single send can be delayed, corrupted, AND duplicated. Probabilities
/// are evaluated in a fixed order from one seeded RNG, so a given (profile,
/// seed, send sequence) always produces the same fault schedule — chaos
/// tests are exactly reproducible.
struct FaultProfile {
  double drop = 0.0;       ///< Epoch vanishes; Send still reports success.
  double duplicate = 0.0;  ///< Epoch is delivered twice back-to-back.
  double reorder = 0.0;    ///< Epoch is held back and delivered after the
                           ///< next send (adjacent swap; flushed on Close).
  double corrupt = 0.0;    ///< One random payload bit is flipped (the
                           ///< declared payload_crc is kept, so receivers
                           ///< detect the damage).
  double delay = 0.0;      ///< Sender sleeps delay_us before delivery (a
                           ///< slow link; stalls this sender only).
  int64_t delay_us = 200;
  uint64_t seed = 42;
};

/// A drop-in EpochChannel that models an unreliable network link: it applies
/// the FaultProfile to every epoch the shipper sends, deterministically
/// under the profile's seed. Drops are *silent* — Send returns true, exactly
/// like a datagram handed to a lossy wire — so only the receive-side
/// recovery protocol (CRC verify + gap NACK through EpochSource) can restore
/// the stream. Retransmitted epochs fetched through EpochSource bypass this
/// wrapper: the NACK path is the reliable control connection.
///
/// Thread-safe: Send may race between the shipper's commit path and its
/// heartbeat thread.
///
/// Instrumented: `fault.drops`, `fault.duplicates`, `fault.reorders`,
/// `fault.corruptions`, `fault.delays`.
class FaultInjectingChannel : public EpochChannel {
 public:
  explicit FaultInjectingChannel(FaultProfile profile, size_t capacity = 1024);

  ~FaultInjectingChannel() override;

  bool Send(ShippedEpoch epoch) override;

  /// Flushes a held-back (reordered) epoch, then closes the queue.
  void Close() override;

  uint64_t drops() const { return drops_.load(std::memory_order_relaxed); }
  uint64_t duplicates() const {
    return duplicates_.load(std::memory_order_relaxed);
  }
  uint64_t reorders() const {
    return reorders_.load(std::memory_order_relaxed);
  }
  uint64_t corruptions() const {
    return corruptions_.load(std::memory_order_relaxed);
  }
  uint64_t delays() const { return delays_.load(std::memory_order_relaxed); }
  uint64_t faults_injected() const {
    return drops() + duplicates() + reorders() + corruptions() + delays();
  }

 private:
  /// Flips one RNG-chosen bit in a private copy of the payload.
  void CorruptPayload(ShippedEpoch* epoch);

  FaultProfile profile_;
  std::mutex mu_;  // serializes RNG draws and the reorder slot
  Rng rng_;
  /// The reorder slot: at most one epoch held back, delivered after the next
  /// send (or on Close).
  std::optional<ShippedEpoch> held_;

  std::atomic<uint64_t> drops_{0};
  std::atomic<uint64_t> duplicates_{0};
  std::atomic<uint64_t> reorders_{0};
  std::atomic<uint64_t> corruptions_{0};
  std::atomic<uint64_t> delays_{0};

  obs::Counter* drops_metric_;
  obs::Counter* duplicates_metric_;
  obs::Counter* reorders_metric_;
  obs::Counter* corruptions_metric_;
  obs::Counter* delays_metric_;
};

}  // namespace aets

#endif  // AETS_REPLICATION_FAULT_INJECTION_H_
