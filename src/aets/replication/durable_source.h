#ifndef AETS_REPLICATION_DURABLE_SOURCE_H_
#define AETS_REPLICATION_DURABLE_SOURCE_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "aets/replication/epoch_source.h"
#include "aets/storage/segment_store.h"

namespace aets {

/// EpochSource view of a SegmentStore: the restart-recovery path. After a
/// crash, a fresh replayer bootstraps from the newest valid checkpoint and
/// then replays the durable segment tail through its normal main loop —
/// Start() against an already-closed channel drives FinalDrain, which pulls
/// every epoch in [expected, NextEpochId()) from this source exactly as if
/// they were NACK retransmits. No recovery-only replay code path exists.
///
/// Also usable as a live shipper's fallback: see
/// LogShipper::AttachSegmentStore, which folds the same disk fetch into its
/// own FetchEpoch instead.
class DurableEpochSource : public EpochSource {
 public:
  /// `store` must outlive this source.
  explicit DurableEpochSource(SegmentStore* store) : store_(store) {}

  std::optional<ShippedEpoch> FetchEpoch(EpochId id) override {
    return store_->Read(id);
  }

  EpochId NextEpochId() const override { return store_->next_epoch(); }

  /// The store's truncation floor: ids below first_epoch() were dropped
  /// under checkpoint coverage, so a replayer bootstrapped too far back
  /// reports BelowCheckpoint instead of misdiagnosing loss.
  EpochId FloorEpochId() const override { return store_->first_epoch(); }

 private:
  SegmentStore* store_;
};

/// Checkpoint images live beside the segments as `ckpt-<16hex next-epoch>.img`
/// so recovery can order them by how much of the epoch sequence they already
/// contain. Commit is atomic (tmp + rename inside Checkpointer::Write), so
/// any file matching the pattern is complete — though possibly corrupt, which
/// is why recovery walks the list newest-first until one restores cleanly.
std::string CheckpointPathFor(const std::string& dir, EpochId next_epoch_id);

/// All checkpoint images in `dir`, newest (highest next-epoch id) first.
/// Ordered by the numeric epoch id parsed from the name; files matching the
/// pattern but with an unparseable id sort oldest.
std::vector<std::string> ListCheckpointFiles(const std::string& dir);

/// Parses the `next_epoch_id` out of a `ckpt-<16hex>.img` path, or nullopt
/// when the name does not follow the convention.
std::optional<EpochId> CheckpointEpochOf(const std::string& path);

/// Deletes all but the newest `keep` checkpoint images — except the image
/// the durable log's truncation floor depends on. When `truncation_floor`
/// is nonzero, the newest image with next_epoch_id <= truncation_floor is
/// never deleted: segments below the floor are gone, so that image is the
/// only way to reach the log's remaining tail if every newer image turns
/// out corrupt at recovery time. Callers that truncate must pass the floor
/// they truncated to; callers without a truncating store may keep the
/// legacy two-argument form.
void PruneCheckpoints(const std::string& dir, size_t keep,
                      EpochId truncation_floor = 0);

}  // namespace aets

#endif  // AETS_REPLICATION_DURABLE_SOURCE_H_
