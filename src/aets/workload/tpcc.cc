#include "aets/workload/tpcc.h"

#include "aets/common/macros.h"

namespace aets {

namespace {

constexpr ColumnType kI = ColumnType::kInt64;
constexpr ColumnType kD = ColumnType::kDouble;
constexpr ColumnType kS = ColumnType::kString;

uint64_t MixKey(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

TpccWorkload::TpccWorkload(TpccConfig config) : config_(config) {
  AETS_CHECK(config_.warehouses >= 1 && config_.items >= 10 &&
             config_.customers_per_district >= 1);
  warehouse_ = catalog_
                   .RegisterTable("warehouse", Schema::Of({{"w_id", kI},
                                                           {"w_name", kS},
                                                           {"w_tax", kD},
                                                           {"w_ytd", kD}}))
                   .value();
  district_ = catalog_
                  .RegisterTable("district", Schema::Of({{"d_id", kI},
                                                         {"d_w_id", kI},
                                                         {"d_name", kS},
                                                         {"d_tax", kD},
                                                         {"d_ytd", kD},
                                                         {"d_next_o_id", kI}}))
                  .value();
  customer_ = catalog_
                  .RegisterTable("customer",
                                 Schema::Of({{"c_id", kI},
                                             {"c_name", kS},
                                             {"c_credit", kS},
                                             {"c_balance", kD},
                                             {"c_payment_cnt", kI},
                                             {"c_delivery_cnt", kI},
                                             {"c_data", kS}}))
                  .value();
  history_ = catalog_
                 .RegisterTable("history", Schema::Of({{"h_c_id", kI},
                                                       {"h_d_id", kI},
                                                       {"h_w_id", kI},
                                                       {"h_date", kI},
                                                       {"h_amount", kD}}))
                 .value();
  neworder_ = catalog_
                  .RegisterTable("new_order", Schema::Of({{"no_o_id", kI},
                                                          {"no_d_id", kI},
                                                          {"no_w_id", kI}}))
                  .value();
  orders_ = catalog_
                .RegisterTable("orders", Schema::Of({{"o_id", kI},
                                                     {"o_c_id", kI},
                                                     {"o_carrier_id", kI},
                                                     {"o_ol_cnt", kI},
                                                     {"o_entry_d", kI}}))
                .value();
  orderline_ = catalog_
                   .RegisterTable("order_line",
                                  Schema::Of({{"ol_o_id", kI},
                                              {"ol_number", kI},
                                              {"ol_i_id", kI},
                                              {"ol_supply_w_id", kI},
                                              {"ol_quantity", kI},
                                              {"ol_amount", kD},
                                              {"ol_delivery_d", kI},
                                              {"ol_dist_info", kS}}))
                   .value();
  item_ = catalog_
              .RegisterTable("item", Schema::Of({{"i_id", kI},
                                                 {"i_name", kS},
                                                 {"i_price", kD},
                                                 {"i_data", kS}}))
              .value();
  stock_ = catalog_
               .RegisterTable("stock", Schema::Of({{"s_i_id", kI},
                                                   {"s_w_id", kI},
                                                   {"s_quantity", kI},
                                                   {"s_ytd", kD},
                                                   {"s_order_cnt", kI},
                                                   {"s_data", kS}}))
               .value();

  // Read-only transactions as analytic queries (paper Table I: "we regard
  // the read-only transactions such as StockLevel and OrderStatus as
  // logical analytical queries").
  queries_ = {
      AnalyticQuery{"OrderStatus", {customer_, orders_, orderline_}, 1.0},
      AnalyticQuery{"StockLevel", {district_, orderline_, stock_}, 1.0},
  };

  int districts = config_.warehouses * 10;
  next_o_id_ = std::vector<std::atomic<int64_t>>(districts);
  next_delivery_o_id_ = std::vector<std::atomic<int64_t>>(districts);
  for (int i = 0; i < districts; ++i) {
    next_o_id_[i].store(config_.init_orders_per_district + 1);
    next_delivery_o_id_[i].store(1);
  }
}

std::vector<std::vector<TableId>> TpccWorkload::DefaultHotGroups() const {
  // Paper Section VI-A: one group of {district, stock, customer, orders} and
  // one group of {order_line} (accessed at twice the rate).
  return {{district_, stock_, customer_, orders_}, {orderline_}};
}

std::vector<TableId> TpccWorkload::WrittenTables() const {
  return {warehouse_, district_, customer_, history_,
          neworder_,  orders_,   orderline_, stock_};
}

int TpccWorkload::OrderLineCount(int w, int d, int64_t o) const {
  uint64_t h = MixKey(static_cast<uint64_t>(OrderKey(w, d, o)));
  return 5 + static_cast<int>(h % 11);  // [5, 15]
}

void TpccWorkload::Load(PrimaryDb* db, Rng* rng) {
  // Items (shared across warehouses).
  {
    PrimaryTxn txn = db->Begin();
    for (int64_t i = 1; i <= config_.items; ++i) {
      txn.Insert(item_, i,
                 {{0, Value(i)},
                  {1, Value(rng->AlphaString(8, 16))},
                  {2, Value(rng->UniformDouble() * 100 + 1)},
                  {3, Value(rng->AlphaString(16, 32))}});
      if (txn.num_writes() >= 256) {
        AETS_CHECK(db->Commit(std::move(txn)).ok());
        txn = db->Begin();
      }
    }
    if (txn.num_writes() > 0) AETS_CHECK(db->Commit(std::move(txn)).ok());
  }

  for (int w = 1; w <= config_.warehouses; ++w) {
    PrimaryTxn txn = db->Begin();
    txn.Insert(warehouse_, w,
               {{0, Value(static_cast<int64_t>(w))},
                {1, Value(rng->AlphaString(6, 10))},
                {2, Value(rng->UniformDouble() * 0.2)},
                {3, Value(300000.0)}});
    for (int64_t i = 1; i <= config_.items; ++i) {
      txn.Insert(stock_, StockKey(w, i),
                 {{0, Value(i)},
                  {1, Value(static_cast<int64_t>(w))},
                  {2, Value(rng->UniformInt(10, 100))},
                  {3, Value(0.0)},
                  {4, Value(static_cast<int64_t>(0))},
                  {5, Value(rng->AlphaString(16, 32))}});
      if (txn.num_writes() >= 256) {
        AETS_CHECK(db->Commit(std::move(txn)).ok());
        txn = db->Begin();
      }
    }
    for (int d = 1; d <= 10; ++d) {
      txn.Insert(district_, DistrictKey(w, d),
                 {{0, Value(static_cast<int64_t>(d))},
                  {1, Value(static_cast<int64_t>(w))},
                  {2, Value(rng->AlphaString(6, 10))},
                  {3, Value(rng->UniformDouble() * 0.2)},
                  {4, Value(30000.0)},
                  {5, Value(static_cast<int64_t>(config_.init_orders_per_district + 1))}});
      for (int c = 1; c <= config_.customers_per_district; ++c) {
        txn.Insert(customer_, CustomerKey(w, d, c),
                   {{0, Value(static_cast<int64_t>(c))},
                    {1, Value(rng->AlphaString(8, 16))},
                    {2, Value(rng->Bernoulli(0.1) ? "BC" : "GC")},
                    {3, Value(-10.0)},
                    {4, Value(static_cast<int64_t>(1))},
                    {5, Value(static_cast<int64_t>(0))},
                    {6, Value(rng->AlphaString(32, 64))}});
        if (txn.num_writes() >= 256) {
          AETS_CHECK(db->Commit(std::move(txn)).ok());
          txn = db->Begin();
        }
      }
      // A small backlog of undelivered initial orders.
      for (int64_t o = 1; o <= config_.init_orders_per_district; ++o) {
        int ol_cnt = OrderLineCount(w, d, o);
        int64_t c = rng->UniformInt(1, config_.customers_per_district);
        txn.Insert(orders_, OrderKey(w, d, o),
                   {{0, Value(o)},
                    {1, Value(c)},
                    {2, Value(static_cast<int64_t>(0))},
                    {3, Value(static_cast<int64_t>(ol_cnt))},
                    {4, Value(static_cast<int64_t>(0))}});
        txn.Insert(neworder_, OrderKey(w, d, o),
                   {{0, Value(o)},
                    {1, Value(static_cast<int64_t>(d))},
                    {2, Value(static_cast<int64_t>(w))}});
        for (int ol = 1; ol <= ol_cnt; ++ol) {
          txn.Insert(orderline_, OrderLineKey(w, d, o, ol),
                     {{0, Value(o)},
                      {1, Value(static_cast<int64_t>(ol))},
                      {2, Value(rng->UniformInt(1, config_.items))},
                      {3, Value(static_cast<int64_t>(w))},
                      {4, Value(rng->UniformInt(1, 10))},
                      {5, Value(rng->UniformDouble() * 100)},
                      {6, Value(static_cast<int64_t>(0))},
                      {7, Value(rng->AlphaString(24, 24))}});
        }
        if (txn.num_writes() >= 256) {
          AETS_CHECK(db->Commit(std::move(txn)).ok());
          txn = db->Begin();
        }
      }
    }
    if (txn.num_writes() > 0) AETS_CHECK(db->Commit(std::move(txn)).ok());
  }
}

Status TpccWorkload::RunOltpTransaction(PrimaryDb* db, Rng* rng) {
  double total = config_.new_order_weight + config_.payment_weight +
                 config_.delivery_weight;
  double draw = rng->UniformDouble() * total;
  if (draw < config_.new_order_weight) return RunNewOrder(db, rng);
  if (draw < config_.new_order_weight + config_.payment_weight) {
    return RunPayment(db, rng);
  }
  return RunDelivery(db, rng);
}

Status TpccWorkload::RunNewOrder(PrimaryDb* db, Rng* rng) {
  int w = static_cast<int>(rng->UniformInt(1, config_.warehouses));
  int d = static_cast<int>(rng->UniformInt(1, 10));
  int64_t c = rng->NuRand(1023, 1, config_.customers_per_district);
  int64_t o = next_o_id_[DistrictIndex(w, d)].fetch_add(1);
  int ol_cnt = OrderLineCount(w, d, o);

  PrimaryTxn txn = db->Begin();
  txn.Update(district_, DistrictKey(w, d), {{5, Value(o + 1)}});
  txn.Insert(orders_, OrderKey(w, d, o),
             {{0, Value(o)},
              {1, Value(c)},
              {2, Value(static_cast<int64_t>(0))},
              {3, Value(static_cast<int64_t>(ol_cnt))},
              {4, Value(static_cast<int64_t>(MonotonicMicros()))}});
  txn.Insert(neworder_, OrderKey(w, d, o),
             {{0, Value(o)},
              {1, Value(static_cast<int64_t>(d))},
              {2, Value(static_cast<int64_t>(w))}});
  for (int ol = 1; ol <= ol_cnt; ++ol) {
    int64_t i = rng->NuRand(8191, 1, config_.items);
    int supply_w = rng->Bernoulli(0.99) || config_.warehouses == 1
                       ? w
                       : static_cast<int>(rng->UniformInt(1, config_.warehouses));
    int64_t qty = rng->UniformInt(1, 10);
    txn.Update(stock_, StockKey(supply_w, i),
               {{2, Value(rng->UniformInt(10, 100))},
                {3, Value(rng->UniformDouble() * 1000)},
                {4, Value(static_cast<int64_t>(o))}});
    txn.Insert(orderline_, OrderLineKey(w, d, o, ol),
               {{0, Value(o)},
                {1, Value(static_cast<int64_t>(ol))},
                {2, Value(i)},
                {3, Value(static_cast<int64_t>(supply_w))},
                {4, Value(qty)},
                {5, Value(static_cast<double>(qty) * rng->UniformDouble() * 100)},
                {6, Value(static_cast<int64_t>(0))},
                {7, Value(rng->AlphaString(24, 24))}});
  }
  return db->Commit(std::move(txn)).status();
}

Status TpccWorkload::RunPayment(PrimaryDb* db, Rng* rng) {
  int w = static_cast<int>(rng->UniformInt(1, config_.warehouses));
  int d = static_cast<int>(rng->UniformInt(1, 10));
  int64_t c = rng->NuRand(1023, 1, config_.customers_per_district);
  double amount = rng->UniformDouble() * 4999 + 1;

  PrimaryTxn txn = db->Begin();
  txn.Update(warehouse_, w, {{3, Value(amount)}});
  txn.Update(district_, DistrictKey(w, d), {{4, Value(amount)}});
  txn.Update(customer_, CustomerKey(w, d, c),
             {{3, Value(-amount)}, {4, Value(rng->UniformInt(1, 100))}});
  txn.Insert(history_, next_history_id_.fetch_add(1),
             {{0, Value(c)},
              {1, Value(static_cast<int64_t>(d))},
              {2, Value(static_cast<int64_t>(w))},
              {3, Value(static_cast<int64_t>(MonotonicMicros()))},
              {4, Value(amount)}});
  return db->Commit(std::move(txn)).status();
}

Status TpccWorkload::RunDelivery(PrimaryDb* db, Rng* rng) {
  int w = static_cast<int>(rng->UniformInt(1, config_.warehouses));
  int64_t carrier = rng->UniformInt(1, 10);

  PrimaryTxn txn = db->Begin();
  for (int d = 1; d <= 10; ++d) {
    int idx = DistrictIndex(w, d);
    int64_t o = next_delivery_o_id_[idx].load(std::memory_order_relaxed);
    if (o >= next_o_id_[idx].load(std::memory_order_relaxed)) continue;
    next_delivery_o_id_[idx].fetch_add(1);
    int ol_cnt = OrderLineCount(w, d, o);
    txn.Delete(neworder_, OrderKey(w, d, o));
    txn.Update(orders_, OrderKey(w, d, o), {{2, Value(carrier)}});
    for (int ol = 1; ol <= ol_cnt; ++ol) {
      txn.Update(orderline_, OrderLineKey(w, d, o, ol),
                 {{6, Value(static_cast<int64_t>(MonotonicMicros()))}});
    }
    int64_t c = rng->UniformInt(1, config_.customers_per_district);
    txn.Update(customer_, CustomerKey(w, d, c),
               {{3, Value(rng->UniformDouble() * 100)},
                {5, Value(rng->UniformInt(1, 50))}});
  }
  if (txn.num_writes() == 0) {
    // Nothing to deliver in any district; fall back to a payment so the
    // driver always makes progress.
    return RunPayment(db, rng);
  }
  return db->Commit(std::move(txn)).status();
}

}  // namespace aets
