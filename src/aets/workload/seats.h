#ifndef AETS_WORKLOAD_SEATS_H_
#define AETS_WORKLOAD_SEATS_H_

#include <atomic>
#include <string>
#include <vector>

#include "aets/workload/workload.h"

namespace aets {

struct SeatsConfig {
  int flights = 200;
  int customers = 500;
  int airports = 50;
};

/// The SEATS airline-reservation benchmark, at the fidelity Table I needs:
/// the OLTP mix writes four tables (reservation, customer, frequent_flyer,
/// flight) while the analytic queries touch eight tables, only two of which
/// (flight, customer) are also written — giving the paper's low 38.08%
/// hot-log ratio. The transaction mix is tuned to land near that ratio.
class SeatsWorkload : public Workload {
 public:
  explicit SeatsWorkload(SeatsConfig config = SeatsConfig());

  std::string name() const override { return "SEATS"; }
  const Catalog& catalog() const override { return catalog_; }
  void Load(PrimaryDb* db, Rng* rng) override;
  Status RunOltpTransaction(PrimaryDb* db, Rng* rng) override;
  const std::vector<AnalyticQuery>& analytic_queries() const override {
    return queries_;
  }
  std::vector<TableId> WrittenTables() const override;

 private:
  SeatsConfig config_;
  Catalog catalog_;
  std::vector<AnalyticQuery> queries_;

  TableId country_, airport_, airport_distance_, airline_, customer_,
      frequent_flyer_, flight_, reservation_, config_profile_,
      config_histograms_;
  std::atomic<int64_t> next_reservation_{1};
};

}  // namespace aets

#endif  // AETS_WORKLOAD_SEATS_H_
