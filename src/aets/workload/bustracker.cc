#include "aets/workload/bustracker.h"

#include <cmath>

#include "aets/common/macros.h"

namespace aets {

namespace {

constexpr ColumnType kI = ColumnType::kInt64;
constexpr ColumnType kD = ColumnType::kDouble;
constexpr ColumnType kS = ColumnType::kString;

// The published BusTracker schema names (QB5000 sample); tables beyond the
// named ones are synthesized as m.aux_NN.
const char* const kHotNames[] = {
    "m.trip",      "m.calendar",     "m.estimate", "m.agency",
    "m.stop_time", "m.route",        "m.stop",     "m.messages",
    "m.region_agency", "m.vehicle",  "m.position", "m.arrival",
    "m.alert",     "m.rider_count",
};

const char* const kColdLogNames[] = {
    "m.app_state_log", "m.screen_log",  "m.device_log", "m.api_log",
    "m.session_log",   "m.crash_log",   "m.event_log",  "m.metric_log",
};

}  // namespace

BusTrackerWorkload::BusTrackerWorkload(BusTrackerConfig config)
    : config_(config) {
  AETS_CHECK(config_.num_hot_tables ==
             static_cast<int>(sizeof(kHotNames) / sizeof(kHotNames[0])));
  AETS_CHECK(config_.num_tables > config_.num_hot_tables + 8);

  Schema generic = Schema::Of(
      {{"id", kI}, {"ref_id", kI}, {"value", kD}, {"payload", kS}});

  for (const char* name : kHotNames) {
    hot_tables_.push_back(catalog_.RegisterTable(name, generic).value());
  }
  for (const char* name : kColdLogNames) {
    cold_tables_.push_back(catalog_.RegisterTable(name, generic).value());
  }
  for (int i = static_cast<int>(catalog_.num_tables());
       i < config_.num_tables; ++i) {
    std::string name = "m.aux_" + std::to_string(i);
    cold_tables_.push_back(catalog_.RegisterTable(name, generic).value());
  }

  // Shape parameters: deterministic per table so every run sees the same
  // Fig. 7-style curves.
  Rng shape_rng(0xB05'7C4C3);
  base_rate_.resize(catalog_.num_tables(), 0.0);
  phase_.resize(catalog_.num_tables(), 0.0);
  amp_.resize(catalog_.num_tables(), 0.0);
  trend_.resize(catalog_.num_tables(), 0.0);
  for (TableId t : hot_tables_) {
    // Log-uniform base rates spanning ~1.5 decades: the published Fig. 7
    // curves range from tens (m.calendar) to ~1700 (m.trip) accesses/min.
    base_rate_[t] = std::pow(10.0, 1.5 + 1.8 * shape_rng.UniformDouble());
    phase_[t] = shape_rng.UniformDouble();
    amp_[t] = 0.35 + 0.45 * shape_rng.UniformDouble();
    trend_[t] = (shape_rng.UniformDouble() - 0.5) * 0.4;
  }

  // Analytic query templates: each query predicts arrivals over one primary
  // hot table joined with a companion, so realized table access rates track
  // the shapes and neighboring tables correlate (the structure DTGM's GCN
  // exploits).
  for (size_t i = 0; i < hot_tables_.size(); ++i) {
    TableId primary = hot_tables_[i];
    TableId companion = hot_tables_[(i + 1) % hot_tables_.size()];
    const TableInfo* info = catalog_.GetTable(primary).value();
    queries_.push_back(AnalyticQuery{
        "predict_over_" + info->name, {primary, companion}, 1.0});
  }
}

double BusTrackerWorkload::TrueRate(TableId table, double slot) const {
  if (base_rate_[table] <= 0) return 0.0;
  double u = slot / static_cast<double>(config_.rate_period_slots);
  double diurnal = 1.0 + amp_[table] * std::sin(2 * M_PI * (u + phase_[table]));
  double harmonic =
      1.0 + 0.15 * amp_[table] * std::sin(4 * M_PI * (u + 2 * phase_[table]));
  double drift = 1.0 + trend_[table] * std::sin(2 * M_PI * u / 7.0);
  double rate = base_rate_[table] * diurnal * harmonic * drift;
  return rate > 0 ? rate : 0.0;
}

std::vector<double> BusTrackerWorkload::TrueRates(double slot) const {
  std::vector<double> rates(catalog_.num_tables(), 0.0);
  for (TableId t = 0; t < rates.size(); ++t) rates[t] = TrueRate(t, slot);
  return rates;
}

std::vector<std::vector<double>> BusTrackerWorkload::GenerateRateSeries(
    int num_slots, double noise_frac, uint64_t seed) const {
  Rng rng(seed);
  std::vector<std::vector<double>> series;
  series.reserve(static_cast<size_t>(num_slots));
  for (int s = 0; s < num_slots; ++s) {
    std::vector<double> row = TrueRates(static_cast<double>(s));
    for (double& r : row) {
      if (r > 0) {
        r = std::max(1.0, r * (1.0 + rng.Gaussian(0.0, noise_frac)));
      }
    }
    series.push_back(std::move(row));
  }
  return series;
}

size_t BusTrackerWorkload::SampleQuery(Rng* rng, double phase01) const {
  // Weight each query by its primary table's rate at the current phase.
  double slot = phase01 * static_cast<double>(config_.rate_period_slots);
  double total = 0;
  std::vector<double> weights(queries_.size());
  for (size_t i = 0; i < queries_.size(); ++i) {
    weights[i] = TrueRate(queries_[i].tables.front(), slot) + 1e-9;
    total += weights[i];
  }
  double draw = rng->UniformDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw <= 0) return i;
  }
  return weights.size() - 1;
}

std::vector<TableId> BusTrackerWorkload::WrittenTables() const {
  std::vector<TableId> all = hot_tables_;
  all.insert(all.end(), cold_tables_.begin(), cold_tables_.end());
  return all;
}

void BusTrackerWorkload::Load(PrimaryDb* db, Rng* rng) {
  PrimaryTxn txn = db->Begin();
  for (TableId t = 0; t < catalog_.num_tables(); ++t) {
    for (int r = 1; r <= config_.rows_per_table; ++r) {
      txn.Insert(t, r,
                 {{0, Value(static_cast<int64_t>(r))},
                  {1, Value(rng->UniformInt(1, 1000))},
                  {2, Value(rng->UniformDouble() * 100)},
                  {3, Value(rng->AlphaString(12, 24))}});
      if (txn.num_writes() >= 256) {
        AETS_CHECK(db->Commit(std::move(txn)).ok());
        txn = db->Begin();
      }
    }
  }
  if (txn.num_writes() > 0) AETS_CHECK(db->Commit(std::move(txn)).ok());
}

Status BusTrackerWorkload::RunOltpTransaction(PrimaryDb* db, Rng* rng) {
  // Mix tuned so hot-table entries are ~37% of the log (Table I: 37.12%):
  // cold log inserts average 2.2 per txn, hot operational updates 1.3.
  PrimaryTxn txn = db->Begin();
  int cold_writes = rng->Bernoulli(0.2) ? 3 : 2;
  for (int i = 0; i < cold_writes; ++i) {
    TableId t = cold_tables_[static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(cold_tables_.size()) - 1))];
    txn.Insert(t, next_row_.fetch_add(1),
               {{0, Value(next_row_.load())},
                {1, Value(rng->UniformInt(1, 1000))},
                {2, Value(rng->UniformDouble() * 100)},
                {3, Value(rng->AlphaString(16, 48))}});
  }
  int hot_writes = rng->Bernoulli(0.3) ? 2 : 1;
  for (int i = 0; i < hot_writes; ++i) {
    TableId t = hot_tables_[static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(hot_tables_.size()) - 1))];
    int64_t row = rng->UniformInt(1, config_.rows_per_table);
    txn.Update(t, row,
               {{1, Value(rng->UniformInt(1, 1000))},
                {2, Value(rng->UniformDouble() * 100)}});
  }
  return db->Commit(std::move(txn)).status();
}

}  // namespace aets
