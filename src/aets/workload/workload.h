#ifndef AETS_WORKLOAD_WORKLOAD_H_
#define AETS_WORKLOAD_WORKLOAD_H_

#include <memory>
#include <string>
#include <vector>

#include "aets/catalog/catalog.h"
#include "aets/common/rng.h"
#include "aets/common/status.h"
#include "aets/primary/primary_db.h"

namespace aets {

/// A read-only analytic query template: the tables it accesses (what
/// Algorithm 3 waits on) and a relative issue weight.
struct AnalyticQuery {
  std::string name;
  std::vector<TableId> tables;
  double weight = 1.0;
};

/// An HTAP workload: an OLTP transaction mix executed on the primary plus a
/// set of analytic query templates issued against the backup. Concrete
/// workloads: TPC-C, CH-benCHmark, BusTracker, SEATS.
class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;
  virtual const Catalog& catalog() const = 0;

  /// Populates initial data on the primary (a scaled-down load phase).
  virtual void Load(PrimaryDb* db, Rng* rng) = 0;

  /// Executes one transaction from the OLTP mix.
  virtual Status RunOltpTransaction(PrimaryDb* db, Rng* rng) = 0;

  /// The analytic query templates.
  virtual const std::vector<AnalyticQuery>& analytic_queries() const = 0;

  /// Samples the next analytic query index. `phase01` in [0,1) positions the
  /// draw within the workload's time horizon, letting workloads with
  /// time-varying access patterns (BusTracker) shift their mix.
  virtual size_t SampleQuery(Rng* rng, double phase01) const;

  /// The paper's table-group configuration for this workload (hot groups;
  /// remaining tables are singleton cold groups). Empty = group per table.
  virtual std::vector<std::vector<TableId>> DefaultHotGroups() const {
    return {};
  }

  /// Tables written by the OLTP mix (num(T) of Table I).
  virtual std::vector<TableId> WrittenTables() const = 0;

  /// Union of tables accessed by the analytic queries (num(A) of Table I).
  std::vector<TableId> AccessedTables() const;

  /// AccessedTables intersected with WrittenTables — the hot tables whose
  /// log share is Table I's "ratio" column.
  std::vector<TableId> HotTables() const;
};

}  // namespace aets

#endif  // AETS_WORKLOAD_WORKLOAD_H_
