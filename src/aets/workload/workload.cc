#include "aets/workload/workload.h"

#include <algorithm>
#include <set>

namespace aets {

size_t Workload::SampleQuery(Rng* rng, double /*phase01*/) const {
  const auto& queries = analytic_queries();
  double total = 0;
  for (const auto& q : queries) total += q.weight;
  double draw = rng->UniformDouble() * total;
  for (size_t i = 0; i < queries.size(); ++i) {
    draw -= queries[i].weight;
    if (draw <= 0) return i;
  }
  return queries.size() - 1;
}

std::vector<TableId> Workload::AccessedTables() const {
  std::set<TableId> tables;
  for (const auto& q : analytic_queries()) {
    tables.insert(q.tables.begin(), q.tables.end());
  }
  return std::vector<TableId>(tables.begin(), tables.end());
}

std::vector<TableId> Workload::HotTables() const {
  std::vector<TableId> accessed = AccessedTables();
  std::vector<TableId> written = WrittenTables();
  std::sort(written.begin(), written.end());
  std::vector<TableId> hot;
  for (TableId t : accessed) {
    if (std::binary_search(written.begin(), written.end(), t)) {
      hot.push_back(t);
    }
  }
  return hot;
}

}  // namespace aets
