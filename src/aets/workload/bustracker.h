#ifndef AETS_WORKLOAD_BUSTRACKER_H_
#define AETS_WORKLOAD_BUSTRACKER_H_

#include <atomic>
#include <string>
#include <vector>

#include "aets/workload/workload.h"

namespace aets {

struct BusTrackerConfig {
  /// Total tables (paper: 65, of which 14 are hot analytic tables).
  int num_tables = 65;
  int num_hot_tables = 14;
  /// Rows preloaded per table.
  int rows_per_table = 200;
  /// Sinusoid period of the access-rate shapes, in slots (one slot is one
  /// simulated minute in the paper's Fig. 7 / Fig. 13 experiments; 240
  /// minutes per cycle keeps 15-60 minute forecasting horizons meaningful).
  int rate_period_slots = 240;
};

/// The BusTracker HTAP workload, synthesized from the published QB5000
/// schema sample exactly as the paper did ("we generated a synthetic
/// workload"): 65 tables where write-heavy app/screen/device logs are almost
/// never read by analytics, while 14 operational tables (m.trip,
/// m.estimate, m.stop_time, ...) serve real-time bus-arrival predictions.
/// Hot tables receive ~37% of the log entries (Table I: 37.12%), and their
/// analytic access rates vary over time with diurnal-style shapes (Fig. 7),
/// which drives the adaptive-allocation and predictor experiments.
class BusTrackerWorkload : public Workload {
 public:
  explicit BusTrackerWorkload(BusTrackerConfig config = BusTrackerConfig());

  std::string name() const override { return "BusTracker"; }
  const Catalog& catalog() const override { return catalog_; }
  void Load(PrimaryDb* db, Rng* rng) override;
  Status RunOltpTransaction(PrimaryDb* db, Rng* rng) override;
  const std::vector<AnalyticQuery>& analytic_queries() const override {
    return queries_;
  }
  size_t SampleQuery(Rng* rng, double phase01) const override;
  std::vector<TableId> WrittenTables() const override;

  const BusTrackerConfig& config() const { return config_; }
  const std::vector<TableId>& hot_tables() const { return hot_tables_; }

  /// Ground-truth access rate of `table` at continuous phase `u` (slots,
  /// may be fractional): the diurnal sinusoid + trend + table-specific
  /// harmonics shown in Fig. 7. Cold tables return 0.
  double TrueRate(TableId table, double slot) const;

  /// Per-table rates at integer slot: series[t] = TrueRate(t, slot).
  std::vector<double> TrueRates(double slot) const;

  /// Generates a noisy realized access-count matrix [slot][table] — the
  /// predictor experiments' dataset (Table III/IV, Fig. 14).
  std::vector<std::vector<double>> GenerateRateSeries(int num_slots,
                                                      double noise_frac,
                                                      uint64_t seed) const;

 private:
  BusTrackerConfig config_;
  Catalog catalog_;
  std::vector<AnalyticQuery> queries_;
  std::vector<TableId> hot_tables_;
  std::vector<TableId> cold_tables_;
  // Shape parameters per hot table.
  std::vector<double> base_rate_;
  std::vector<double> phase_;
  std::vector<double> amp_;
  std::vector<double> trend_;
  std::atomic<int64_t> next_row_{1};
};

}  // namespace aets

#endif  // AETS_WORKLOAD_BUSTRACKER_H_
