#include "aets/workload/driver.h"

#include <chrono>

#include "aets/common/macros.h"

namespace aets {

void OltpDriver::Run(uint64_t num_txns, int threads) {
  Start(num_txns, threads);
  Join();
}

void OltpDriver::Start(uint64_t num_txns, int threads) {
  AETS_CHECK(threads >= 1);
  std::atomic<uint64_t>* committed = &committed_;
  for (int t = 0; t < threads; ++t) {
    uint64_t share = num_txns / static_cast<uint64_t>(threads) +
                     (static_cast<uint64_t>(t) <
                              num_txns % static_cast<uint64_t>(threads)
                          ? 1
                          : 0);
    threads_.emplace_back([this, committed, share, t] {
      Rng rng(seed_ + static_cast<uint64_t>(t) * 0x9E3779B9ull);
      for (uint64_t i = 0; i < share; ++i) {
        Status st = workload_->RunOltpTransaction(db_, &rng);
        if (st.ok()) committed->fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
}

void OltpDriver::Join() {
  for (auto& t : threads_) t.join();
  threads_.clear();
}

void OlapDriver::Run() {
  per_query_delays_ =
      std::vector<Histogram>(workload_->analytic_queries().size());
  Rng rng(options_.seed);
  for (uint64_t i = 0; i < options_.num_queries; ++i) {
    double phase = options_.phase_fn ? options_.phase_fn() : 0.0;
    size_t qi = workload_->SampleQuery(&rng, phase);
    const AnalyticQuery& query = workload_->analytic_queries()[qi];

    // Real-time query: snapshot at the primary's latest timestamp, then wait
    // until the backup has replayed everything up to it (Algorithm 3).
    Timestamp qts = clock_->Now();
    int64_t delay_us = WaitVisible(*replayer_, query.tables, qts);
    delays_.Record(delay_us);
    per_query_delays_[qi].Record(delay_us);

    if (options_.tracker != nullptr) {
      options_.tracker->RecordQuery(query.tables);
    }
    if (options_.read_rows) {
      // Touch one row per accessed table at the snapshot (the MVCC read).
      for (TableId t : query.tables) {
        (void)replayer_->store()->GetTable(t)->ReadRow(1, qts);
      }
    }
    if (options_.think_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(options_.think_us));
    }
  }
}

void OlapDriver::Start() {
  thread_ = std::thread([this] { Run(); });
}

void OlapDriver::Join() {
  if (thread_.joinable()) thread_.join();
}

}  // namespace aets
