#ifndef AETS_WORKLOAD_CHBENCHMARK_H_
#define AETS_WORKLOAD_CHBENCHMARK_H_

#include <memory>
#include <string>
#include <vector>

#include "aets/workload/tpcc.h"
#include "aets/workload/workload.h"

namespace aets {

/// CH-benCHmark: the TPC-C transaction mix as the OLTP side plus the 22
/// TPC-H-derived analytic queries. The catalog is TPC-C's nine tables plus
/// the three CH additions (supplier, nation, region), which are read-only.
/// Each analytic query's footprint is the set of tables it joins, taken
/// from the CH-benCHmark specification; that footprint is what Algorithm 3
/// waits on and what Fig. 10 measures per query.
class ChBenchmarkWorkload : public Workload {
 public:
  explicit ChBenchmarkWorkload(TpccConfig config = TpccConfig());

  std::string name() const override { return "CH-benCHmark"; }
  const Catalog& catalog() const override { return catalog_; }
  void Load(PrimaryDb* db, Rng* rng) override;
  Status RunOltpTransaction(PrimaryDb* db, Rng* rng) override;
  const std::vector<AnalyticQuery>& analytic_queries() const override {
    return queries_;
  }
  std::vector<TableId> WrittenTables() const override;

  /// Per-table groups (paper Section VI-A: "each table is assigned to its
  /// own group" for CH-benCHmark) is the default — no hot groups declared.
  std::vector<std::vector<TableId>> DefaultHotGroups() const override {
    return {};
  }

  const TpccWorkload& tpcc() const { return *tpcc_; }
  TableId supplier() const { return supplier_; }
  TableId nation() const { return nation_; }
  TableId region() const { return region_; }

 private:
  /// TPC-C embedded with its catalog replaced by ours (same dense ids for
  /// the shared tables, registered first).
  std::unique_ptr<TpccWorkload> tpcc_;
  Catalog catalog_;
  std::vector<AnalyticQuery> queries_;
  TableId supplier_, nation_, region_;
};

}  // namespace aets

#endif  // AETS_WORKLOAD_CHBENCHMARK_H_
