#ifndef AETS_WORKLOAD_TPCC_H_
#define AETS_WORKLOAD_TPCC_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "aets/workload/workload.h"

namespace aets {

/// Scaling knobs. The defaults are laptop-scale; the paper's SF=20 setup
/// maps to `warehouses` with full-size per-district populations.
struct TpccConfig {
  int warehouses = 2;
  int items = 1000;                 // full spec: 100'000
  int customers_per_district = 60;  // full spec: 3'000
  int init_orders_per_district = 20;
  /// Read-write mix (weights; paper uses the default NewOrder/Payment/
  /// Delivery configuration).
  double new_order_weight = 45;
  double payment_weight = 43;
  double delivery_weight = 4;
};

/// TPC-C with the paper's HTAP framing: NewOrder/Payment/Delivery run on the
/// primary as the OLTP side; the read-only OrderStatus and StockLevel
/// transactions become the analytic queries issued on the backup. Hot tables
/// are the union of the analytic footprints intersected with the written
/// tables: district, stock, customer, orders, order_line — with order_line
/// appearing in both queries and therefore accessed at twice the rate of the
/// other four (exactly the paper's Section VI-A grouping).
class TpccWorkload : public Workload {
 public:
  explicit TpccWorkload(TpccConfig config = TpccConfig());

  std::string name() const override { return "TPC-C"; }
  const Catalog& catalog() const override { return catalog_; }
  void Load(PrimaryDb* db, Rng* rng) override;
  Status RunOltpTransaction(PrimaryDb* db, Rng* rng) override;
  const std::vector<AnalyticQuery>& analytic_queries() const override {
    return queries_;
  }
  std::vector<std::vector<TableId>> DefaultHotGroups() const override;
  std::vector<TableId> WrittenTables() const override;

  const TpccConfig& config() const { return config_; }

  // Table ids (dense, assigned at construction).
  TableId warehouse() const { return warehouse_; }
  TableId district() const { return district_; }
  TableId customer() const { return customer_; }
  TableId history() const { return history_; }
  TableId neworder() const { return neworder_; }
  TableId orders() const { return orders_; }
  TableId orderline() const { return orderline_; }
  TableId item() const { return item_; }
  TableId stock() const { return stock_; }

  // Row-key encodings (exposed for tests and example apps).
  int64_t DistrictKey(int w, int d) const { return w * 100 + d; }
  int64_t CustomerKey(int w, int d, int c) const {
    return DistrictKey(w, d) * 10'000 + c;
  }
  int64_t OrderKey(int w, int d, int64_t o) const {
    return DistrictKey(w, d) * 10'000'000 + o;
  }
  int64_t OrderLineKey(int w, int d, int64_t o, int ol) const {
    return OrderKey(w, d, o) * 16 + ol;
  }
  int64_t StockKey(int w, int64_t i) const { return w * 1'000'000 + i; }

  /// Deterministic per-order line count in [5, 15] so Delivery can
  /// reconstruct it without consulting state.
  int OrderLineCount(int w, int d, int64_t o) const;

  Status RunNewOrder(PrimaryDb* db, Rng* rng);
  Status RunPayment(PrimaryDb* db, Rng* rng);
  Status RunDelivery(PrimaryDb* db, Rng* rng);

 private:
  int DistrictIndex(int w, int d) const {
    return (w - 1) * 10 + (d - 1);
  }

  TpccConfig config_;
  Catalog catalog_;
  std::vector<AnalyticQuery> queries_;

  TableId warehouse_, district_, customer_, history_, neworder_, orders_,
      orderline_, item_, stock_;

  // Order-id frontiers per (warehouse, district).
  std::vector<std::atomic<int64_t>> next_o_id_;
  std::vector<std::atomic<int64_t>> next_delivery_o_id_;
  std::atomic<int64_t> next_history_id_{1};
};

}  // namespace aets

#endif  // AETS_WORKLOAD_TPCC_H_
