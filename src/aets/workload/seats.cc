#include "aets/workload/seats.h"

#include "aets/common/macros.h"

namespace aets {

namespace {
constexpr ColumnType kI = ColumnType::kInt64;
constexpr ColumnType kD = ColumnType::kDouble;
constexpr ColumnType kS = ColumnType::kString;
}  // namespace

SeatsWorkload::SeatsWorkload(SeatsConfig config) : config_(config) {
  Schema generic = Schema::Of(
      {{"id", kI}, {"ref_id", kI}, {"value", kD}, {"info", kS}});
  country_ = catalog_.RegisterTable("country", generic).value();
  airport_ = catalog_.RegisterTable("airport", generic).value();
  airport_distance_ = catalog_.RegisterTable("airport_distance", generic).value();
  airline_ = catalog_.RegisterTable("airline", generic).value();
  customer_ = catalog_.RegisterTable("customer", generic).value();
  frequent_flyer_ = catalog_.RegisterTable("frequent_flyer", generic).value();
  flight_ = catalog_.RegisterTable("flight", generic).value();
  reservation_ = catalog_.RegisterTable("reservation", generic).value();
  config_profile_ = catalog_.RegisterTable("config_profile", generic).value();
  config_histograms_ = catalog_.RegisterTable("config_histograms", generic).value();

  queries_ = {
      {"FindFlights",
       {airport_, airport_distance_, flight_, airline_, country_},
       1.0},
      {"CustomerLookup", {customer_, config_profile_}, 1.0},
      {"SystemStats", {config_histograms_, flight_}, 1.0},
  };
}

std::vector<TableId> SeatsWorkload::WrittenTables() const {
  return {customer_, frequent_flyer_, flight_, reservation_};
}

void SeatsWorkload::Load(PrimaryDb* db, Rng* rng) {
  PrimaryTxn txn = db->Begin();
  auto insert_rows = [&](TableId table, int n) {
    for (int64_t r = 1; r <= n; ++r) {
      txn.Insert(table, r,
                 {{0, Value(r)},
                  {1, Value(rng->UniformInt(1, 100))},
                  {2, Value(rng->UniformDouble() * 100)},
                  {3, Value(rng->AlphaString(8, 20))}});
      if (txn.num_writes() >= 256) {
        AETS_CHECK(db->Commit(std::move(txn)).ok());
        txn = db->Begin();
      }
    }
  };
  insert_rows(country_, 50);
  insert_rows(airport_, config_.airports);
  insert_rows(airport_distance_, config_.airports * 4);
  insert_rows(airline_, 30);
  insert_rows(customer_, config_.customers);
  insert_rows(frequent_flyer_, config_.customers / 2);
  insert_rows(flight_, config_.flights);
  insert_rows(config_profile_, 10);
  insert_rows(config_histograms_, 10);
  if (txn.num_writes() > 0) AETS_CHECK(db->Commit(std::move(txn)).ok());
}

Status SeatsWorkload::RunOltpTransaction(PrimaryDb* db, Rng* rng) {
  // Mix tuned so flight+customer (the analytic-and-written tables) receive
  // ~38-40% of the DML entries, matching Table I's SEATS row.
  double draw = rng->UniformDouble();
  PrimaryTxn txn = db->Begin();
  if (draw < 0.24) {
    // NewReservation: insert reservation, take a seat, charge the customer.
    txn.Insert(reservation_, next_reservation_.fetch_add(1),
               {{0, Value(next_reservation_.load())},
                {1, Value(rng->UniformInt(1, config_.flights))},
                {2, Value(rng->UniformDouble() * 500)},
                {3, Value(rng->AlphaString(8, 16))}});
    txn.Update(flight_, rng->UniformInt(1, config_.flights),
               {{1, Value(rng->UniformInt(0, 150))}});
    txn.Update(customer_, rng->UniformInt(1, config_.customers),
               {{2, Value(rng->UniformDouble() * 1000)}});
  } else if (draw < 0.34) {
    // UpdateCustomer: profile + frequent-flyer status.
    txn.Update(customer_, rng->UniformInt(1, config_.customers),
               {{3, Value(rng->AlphaString(8, 20))}});
    txn.Update(frequent_flyer_, rng->UniformInt(1, config_.customers / 2),
               {{1, Value(rng->UniformInt(1, 100))}});
  } else if (draw < 0.84) {
    // UpdateReservation: seat change only.
    txn.Update(reservation_,
               rng->UniformInt(1, std::max<int64_t>(1, next_reservation_.load() - 1)),
               {{2, Value(rng->UniformDouble() * 500)}});
  } else {
    // DeleteReservation: refund path.
    txn.Delete(reservation_,
               rng->UniformInt(1, std::max<int64_t>(1, next_reservation_.load() - 1)));
    txn.Update(customer_, rng->UniformInt(1, config_.customers),
               {{2, Value(rng->UniformDouble() * 1000)}});
    txn.Update(frequent_flyer_, rng->UniformInt(1, config_.customers / 2),
               {{1, Value(rng->UniformInt(1, 100))}});
  }
  return db->Commit(std::move(txn)).status();
}

}  // namespace aets
