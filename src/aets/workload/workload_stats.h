#ifndef AETS_WORKLOAD_WORKLOAD_STATS_H_
#define AETS_WORKLOAD_WORKLOAD_STATS_H_

#include <string>
#include <vector>

#include "aets/workload/workload.h"

namespace aets {

/// The Table I characterization of one benchmark: how many tables OLTP
/// writes, how many OLAP reads, their intersection, and the fraction of log
/// entries that land in the intersection (the hot-log ratio).
struct WorkloadStats {
  std::string benchmark;
  size_t num_written_tables = 0;   // num(T)
  size_t num_accessed_tables = 0;  // num(A)
  size_t num_hot_tables = 0;       // num(A ∩ T)
  double hot_log_ratio = 0;        // ratio
};

/// Runs `num_txns` of the workload's OLTP mix on a fresh primary (after the
/// load phase, whose log entries are excluded) and measures Table I's
/// statistics from the produced value log.
WorkloadStats MeasureWorkloadStats(Workload* workload, uint64_t num_txns,
                                   uint64_t seed = 11);

/// Per-query variant for CH-benCHmark's Table I block: the ratio of log
/// entries in `query_tables ∩ written`.
double HotRatioForTables(Workload* workload, uint64_t num_txns,
                         const std::vector<TableId>& query_tables,
                         uint64_t seed = 11);

}  // namespace aets

#endif  // AETS_WORKLOAD_WORKLOAD_STATS_H_
