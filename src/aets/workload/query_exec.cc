#include "aets/workload/query_exec.h"

#include <cmath>

namespace aets {

namespace {

// order_line column ids (see TpccWorkload's schema registration).
constexpr ColumnId kOlNumber = 1;
constexpr ColumnId kOlQuantity = 4;
constexpr ColumnId kOlAmount = 5;
constexpr ColumnId kOlDeliveryD = 6;

int64_t IntCol(const Row& row, ColumnId col, int64_t fallback = 0) {
  const Value* v = row.Find(col);
  return v != nullptr && v->is_int64() ? v->as_int64() : fallback;
}

double DoubleCol(const Row& row, ColumnId col, double fallback = 0) {
  const Value* v = row.Find(col);
  return v != nullptr && v->is_double() ? v->as_double() : fallback;
}

}  // namespace

ChQueryExecutor::Q1Result ChQueryExecutor::RunQ1(
    Timestamp snapshot, int64_t delivery_cutoff) const {
  Q1Result result;
  const Memtable* order_line = store_->GetTable(workload_->tpcc().orderline());
  order_line->ScanVisible(snapshot, [&](int64_t, const Row& row) {
    if (IntCol(row, kOlDeliveryD) > delivery_cutoff) return true;
    Q1Row& agg = result[IntCol(row, kOlNumber)];
    agg.count += 1;
    agg.sum_quantity += IntCol(row, kOlQuantity);
    agg.sum_amount += DoubleCol(row, kOlAmount);
    return true;
  });
  return result;
}

ChQueryExecutor::Q6Result ChQueryExecutor::RunQ6(Timestamp snapshot,
                                                 int64_t qty_lo,
                                                 int64_t qty_hi) const {
  Q6Result result;
  const Memtable* order_line = store_->GetTable(workload_->tpcc().orderline());
  order_line->ScanVisible(snapshot, [&](int64_t, const Row& row) {
    int64_t quantity = IntCol(row, kOlQuantity);
    if (quantity < qty_lo || quantity > qty_hi) return true;
    result.lines += 1;
    result.revenue += DoubleCol(row, kOlAmount);
    return true;
  });
  return result;
}

bool operator==(const ChQueryExecutor::Q1Row& a,
                const ChQueryExecutor::Q1Row& b) {
  return a.count == b.count && a.sum_quantity == b.sum_quantity &&
         std::abs(a.sum_amount - b.sum_amount) < 1e-6;
}

bool operator==(const ChQueryExecutor::Q6Result& a,
                const ChQueryExecutor::Q6Result& b) {
  return a.lines == b.lines && std::abs(a.revenue - b.revenue) < 1e-6;
}

}  // namespace aets
