#include "aets/workload/query_exec.h"

#include <cmath>
#include <string>

#include "aets/obs/metrics.h"

namespace aets {

namespace {

// order_line column ids (see TpccWorkload's schema registration).
constexpr ColumnId kOlNumber = 1;
constexpr ColumnId kOlQuantity = 4;
constexpr ColumnId kOlAmount = 5;
constexpr ColumnId kOlDeliveryD = 6;

bool DenseTyped(const storage::ChunkData& d, ColumnId col, ColumnType type) {
  return col < d.cols.size() && d.cols[col].type == type && d.cols[col].dense;
}

void CountRowsScanned(size_t visited) {
  static obs::Counter* scanned = obs::GetCounter("column.rows_scanned");
  scanned->Add(static_cast<int64_t>(visited));
}

}  // namespace

void ChQueryExecutor::NoteMismatch(ColumnId col, const char* want) const {
  static obs::Counter* metric =
      obs::GetCounter("query.column_type_mismatches");
  metric->Add(1);
  mismatches_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(err_mu_);
  if (err_.ok()) {
    err_ = Status::Corruption("column " + std::to_string(col) +
                              " missing, NULL, or not " + want +
                              " in a scanned row");
  }
}

int64_t ChQueryExecutor::CheckedInt(const Row& row, ColumnId col) const {
  const Value* v = row.Find(col);
  if (v != nullptr && v->is_int64()) return v->as_int64();
  NoteMismatch(col, "int64");
  return 0;
}

double ChQueryExecutor::CheckedDouble(const Row& row, ColumnId col) const {
  const Value* v = row.Find(col);
  if (v != nullptr && v->is_double()) return v->as_double();
  NoteMismatch(col, "double");
  return 0;
}

int64_t ChQueryExecutor::ColInt(const storage::ChunkData& d, ColumnId col,
                                size_t i) const {
  if (col < d.cols.size()) {
    const storage::ChunkColumn& c = d.cols[col];
    if (c.type == ColumnType::kInt64 && c.has.Get(i) && !c.null.Get(i)) {
      return c.i64[i];
    }
  }
  NoteMismatch(col, "int64");
  return 0;
}

double ChQueryExecutor::ColDouble(const storage::ChunkData& d, ColumnId col,
                                  size_t i) const {
  if (col < d.cols.size()) {
    const storage::ChunkColumn& c = d.cols[col];
    if (c.type == ColumnType::kDouble && c.has.Get(i) && !c.null.Get(i)) {
      return c.f64[i];
    }
  }
  NoteMismatch(col, "double");
  return 0;
}

void ChQueryExecutor::AccumulateQ1(const Row& row, int64_t delivery_cutoff,
                                   Q1Result* result) const {
  if (CheckedInt(row, kOlDeliveryD) > delivery_cutoff) return;
  Q1Row& agg = (*result)[CheckedInt(row, kOlNumber)];
  agg.count += 1;
  agg.sum_quantity += CheckedInt(row, kOlQuantity);
  agg.sum_amount += CheckedDouble(row, kOlAmount);
}

void ChQueryExecutor::AccumulateQ6(const Row& row, int64_t qty_lo,
                                   int64_t qty_hi, Q6Result* result) const {
  int64_t quantity = CheckedInt(row, kOlQuantity);
  if (quantity < qty_lo || quantity > qty_hi) return;
  result->lines += 1;
  result->revenue += CheckedDouble(row, kOlAmount);
}

ChQueryExecutor::Q1Result ChQueryExecutor::RunQ1(
    Timestamp snapshot, int64_t delivery_cutoff) const {
  Q1Result result;
  TableId table = workload_->tpcc().orderline();
  if (columns_ != nullptr) {
    storage::ColumnSnapshot snap = columns_->SnapshotAt(table, snapshot);
    if (snap.valid()) {
      snap.LoadResidual();
      size_t visited = 0;
      for (const storage::ColumnChunk& chunk : snap.chunks()) {
        const storage::ChunkData& d = *chunk.data;
        size_t n = d.num_rows();
        if (n == 0) continue;
        visited += n;
        storage::BitVec base_skip = snap.ScanSkipBits(chunk);
        storage::BitVec skip = base_skip;
        skip.OrWith(d.irregular);
        bool fast = DenseTyped(d, kOlNumber, ColumnType::kInt64) &&
                    DenseTyped(d, kOlQuantity, ColumnType::kInt64) &&
                    DenseTyped(d, kOlAmount, ColumnType::kDouble) &&
                    DenseTyped(d, kOlDeliveryD, ColumnType::kInt64);
        if (fast) {
          const int64_t* num = d.cols[kOlNumber].i64.data();
          const int64_t* qty = d.cols[kOlQuantity].i64.data();
          const double* amt = d.cols[kOlAmount].f64.data();
          const int64_t* dd = d.cols[kOlDeliveryD].i64.data();
          for (size_t i = 0; i < n; ++i) {
            if (skip.Get(i) || dd[i] > delivery_cutoff) continue;
            Q1Row& agg = result[num[i]];
            agg.count += 1;
            agg.sum_quantity += qty[i];
            agg.sum_amount += amt[i];
          }
        } else {
          for (size_t i = 0; i < n; ++i) {
            if (skip.Get(i)) continue;
            if (ColInt(d, kOlDeliveryD, i) > delivery_cutoff) continue;
            Q1Row& agg = result[ColInt(d, kOlNumber, i)];
            agg.count += 1;
            agg.sum_quantity += ColInt(d, kOlQuantity, i);
            agg.sum_amount += ColDouble(d, kOlAmount, i);
          }
        }
        for (const auto& [idx, row] : d.irregular_rows) {
          if (!base_skip.Get(idx)) AccumulateQ1(row, delivery_cutoff, &result);
        }
      }
      for (const auto& [key, row] : snap.residual_rows()) {
        AccumulateQ1(row, delivery_cutoff, &result);
      }
      CountRowsScanned(visited);
      return result;
    }
  }
  const Memtable* order_line = store_->GetTable(table);
  order_line->ScanVisible(snapshot, [&](int64_t, const Row& row) {
    AccumulateQ1(row, delivery_cutoff, &result);
    return true;
  });
  return result;
}

ChQueryExecutor::Q6Result ChQueryExecutor::RunQ6(Timestamp snapshot,
                                                 int64_t qty_lo,
                                                 int64_t qty_hi) const {
  Q6Result result;
  TableId table = workload_->tpcc().orderline();
  if (columns_ != nullptr) {
    storage::ColumnSnapshot snap = columns_->SnapshotAt(table, snapshot);
    if (snap.valid()) {
      snap.LoadResidual();
      size_t visited = 0;
      for (const storage::ColumnChunk& chunk : snap.chunks()) {
        const storage::ChunkData& d = *chunk.data;
        size_t n = d.num_rows();
        if (n == 0) continue;
        visited += n;
        storage::BitVec base_skip = snap.ScanSkipBits(chunk);
        storage::BitVec skip = base_skip;
        skip.OrWith(d.irregular);
        bool fast = DenseTyped(d, kOlQuantity, ColumnType::kInt64) &&
                    DenseTyped(d, kOlAmount, ColumnType::kDouble);
        if (fast) {
          // The vectorized hot loop of the column path: two sequential
          // typed vectors, a bit test, and a branchless-friendly range
          // check — no version-chain latch, no FlatRow materialization.
          const int64_t* qty = d.cols[kOlQuantity].i64.data();
          const double* amt = d.cols[kOlAmount].f64.data();
          for (size_t i = 0; i < n; ++i) {
            if (skip.Get(i)) continue;
            int64_t q = qty[i];
            if (q < qty_lo || q > qty_hi) continue;
            result.lines += 1;
            result.revenue += amt[i];
          }
        } else {
          for (size_t i = 0; i < n; ++i) {
            if (skip.Get(i)) continue;
            int64_t q = ColInt(d, kOlQuantity, i);
            if (q < qty_lo || q > qty_hi) continue;
            result.lines += 1;
            result.revenue += ColDouble(d, kOlAmount, i);
          }
        }
        for (const auto& [idx, row] : d.irregular_rows) {
          if (!base_skip.Get(idx)) AccumulateQ6(row, qty_lo, qty_hi, &result);
        }
      }
      for (const auto& [key, row] : snap.residual_rows()) {
        AccumulateQ6(row, qty_lo, qty_hi, &result);
      }
      CountRowsScanned(visited);
      return result;
    }
  }
  const Memtable* order_line = store_->GetTable(table);
  order_line->ScanVisible(snapshot, [&](int64_t, const Row& row) {
    AccumulateQ6(row, qty_lo, qty_hi, &result);
    return true;
  });
  return result;
}

bool operator==(const ChQueryExecutor::Q1Row& a,
                const ChQueryExecutor::Q1Row& b) {
  return a.count == b.count && a.sum_quantity == b.sum_quantity &&
         std::abs(a.sum_amount - b.sum_amount) < 1e-6;
}

bool operator==(const ChQueryExecutor::Q6Result& a,
                const ChQueryExecutor::Q6Result& b) {
  return a.lines == b.lines && std::abs(a.revenue - b.revenue) < 1e-6;
}

}  // namespace aets
