#ifndef AETS_WORKLOAD_QUERY_EXEC_H_
#define AETS_WORKLOAD_QUERY_EXEC_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>

#include "aets/common/clock.h"
#include "aets/common/status.h"
#include "aets/storage/column_store.h"
#include "aets/storage/table_store.h"
#include "aets/workload/chbenchmark.h"

namespace aets {

/// Minimal analytic executors for representative CH-benCHmark queries,
/// evaluated over an MVCC snapshot of any store (primary or backup). The
/// examples and tests run them against the backup after Algorithm 3's wait
/// and cross-check the result against the primary at the same snapshot —
/// end-to-end proof that prioritized replay serves *consistent* answers,
/// not just timestamps.
///
/// With a ColumnStore attached, Q1/Q6 route through the vectorized column
/// path whenever a chunk generation covers the snapshot (residual rows and
/// schema-irregular rows take the row-at-a-time helpers, so both paths
/// produce identical aggregates); otherwise they fall back to the row-store
/// scan unchanged.
///
/// Type safety: a scanned row whose column is missing, NULL, or not of the
/// aggregate's type contributes the fallback 0 — but is COUNTED in the
/// `query.column_type_mismatches` metric and latches error() with the first
/// offender, instead of silently skewing the aggregate (the pre-fix
/// behavior this replaces).
class ChQueryExecutor {
 public:
  /// CH Q1 (pricing summary over order_line): per ol_number, the count of
  /// lines and sums of quantity and amount, for lines with
  /// ol_delivery_d <= delivery_cutoff (0 = undelivered lines excluded when
  /// cutoff < 0... pass INT64_MAX for all).
  struct Q1Row {
    uint64_t count = 0;
    int64_t sum_quantity = 0;
    double sum_amount = 0;
  };
  using Q1Result = std::map<int64_t, Q1Row>;  // keyed by ol_number

  /// CH Q6 (revenue forecast): total ol_amount over lines with quantity in
  /// [qty_lo, qty_hi].
  struct Q6Result {
    uint64_t lines = 0;
    double revenue = 0;
  };

  ChQueryExecutor(const ChBenchmarkWorkload* workload, const TableStore* store,
                  const storage::ColumnStore* columns = nullptr)
      : workload_(workload), store_(store), columns_(columns) {}

  Q1Result RunQ1(Timestamp snapshot, int64_t delivery_cutoff) const;
  Q6Result RunQ6(Timestamp snapshot, int64_t qty_lo, int64_t qty_hi) const;

  /// The first column type/presence mismatch any query on this executor
  /// hit, or OK. Latched (sticky): aggregates keep computing with the
  /// fallback value, but the caller can no longer mistake them for exact.
  Status error() const {
    std::lock_guard<std::mutex> lk(err_mu_);
    return err_;
  }
  /// Total mismatched column accesses across all queries on this executor.
  uint64_t column_type_mismatches() const {
    return mismatches_.load(std::memory_order_relaxed);
  }

 private:
  /// Row-path checked accessors: fallback 0 on mismatch, plus the metric
  /// and error latch.
  int64_t CheckedInt(const Row& row, ColumnId col) const;
  double CheckedDouble(const Row& row, ColumnId col) const;
  /// Column-path equivalents over a chunk row.
  int64_t ColInt(const storage::ChunkData& d, ColumnId col, size_t i) const;
  double ColDouble(const storage::ChunkData& d, ColumnId col, size_t i) const;
  void NoteMismatch(ColumnId col, const char* want) const;

  void AccumulateQ1(const Row& row, int64_t delivery_cutoff,
                    Q1Result* result) const;
  void AccumulateQ6(const Row& row, int64_t qty_lo, int64_t qty_hi,
                    Q6Result* result) const;

  const ChBenchmarkWorkload* workload_;
  const TableStore* store_;
  const storage::ColumnStore* columns_;

  mutable std::mutex err_mu_;
  mutable Status err_;
  mutable std::atomic<uint64_t> mismatches_{0};
};

bool operator==(const ChQueryExecutor::Q1Row& a, const ChQueryExecutor::Q1Row& b);
bool operator==(const ChQueryExecutor::Q6Result& a,
                const ChQueryExecutor::Q6Result& b);

}  // namespace aets

#endif  // AETS_WORKLOAD_QUERY_EXEC_H_
