#ifndef AETS_WORKLOAD_QUERY_EXEC_H_
#define AETS_WORKLOAD_QUERY_EXEC_H_

#include <cstdint>
#include <map>

#include "aets/common/clock.h"
#include "aets/storage/table_store.h"
#include "aets/workload/chbenchmark.h"

namespace aets {

/// Minimal analytic executors for representative CH-benCHmark queries,
/// evaluated over an MVCC snapshot of any store (primary or backup). The
/// examples and tests run them against the backup after Algorithm 3's wait
/// and cross-check the result against the primary at the same snapshot —
/// end-to-end proof that prioritized replay serves *consistent* answers,
/// not just timestamps.
class ChQueryExecutor {
 public:
  /// CH Q1 (pricing summary over order_line): per ol_number, the count of
  /// lines and sums of quantity and amount, for lines with
  /// ol_delivery_d <= delivery_cutoff (0 = undelivered lines excluded when
  /// cutoff < 0... pass INT64_MAX for all).
  struct Q1Row {
    uint64_t count = 0;
    int64_t sum_quantity = 0;
    double sum_amount = 0;
  };
  using Q1Result = std::map<int64_t, Q1Row>;  // keyed by ol_number

  /// CH Q6 (revenue forecast): total ol_amount over lines with quantity in
  /// [qty_lo, qty_hi].
  struct Q6Result {
    uint64_t lines = 0;
    double revenue = 0;
  };

  ChQueryExecutor(const ChBenchmarkWorkload* workload, const TableStore* store)
      : workload_(workload), store_(store) {}

  Q1Result RunQ1(Timestamp snapshot, int64_t delivery_cutoff) const;
  Q6Result RunQ6(Timestamp snapshot, int64_t qty_lo, int64_t qty_hi) const;

 private:
  const ChBenchmarkWorkload* workload_;
  const TableStore* store_;
};

bool operator==(const ChQueryExecutor::Q1Row& a, const ChQueryExecutor::Q1Row& b);
bool operator==(const ChQueryExecutor::Q6Result& a,
                const ChQueryExecutor::Q6Result& b);

}  // namespace aets

#endif  // AETS_WORKLOAD_QUERY_EXEC_H_
