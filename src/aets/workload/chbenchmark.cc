#include "aets/workload/chbenchmark.h"

#include "aets/common/macros.h"

namespace aets {

namespace {
constexpr ColumnType kI = ColumnType::kInt64;
constexpr ColumnType kD = ColumnType::kDouble;
constexpr ColumnType kS = ColumnType::kString;
}  // namespace

ChBenchmarkWorkload::ChBenchmarkWorkload(TpccConfig config)
    : tpcc_(std::make_unique<TpccWorkload>(config)) {
  // Mirror TPC-C's tables into our catalog (same registration order, hence
  // identical dense table ids), then add the CH-only read-only tables.
  size_t n = tpcc_->catalog().num_tables();
  for (size_t i = 0; i < n; ++i) {
    const TableInfo* info = tpcc_->catalog().GetTable(static_cast<TableId>(i)).value();
    TableId id = catalog_.RegisterTable(info->name, info->schema).value();
    AETS_CHECK(id == info->id);
  }
  supplier_ = catalog_
                  .RegisterTable("supplier", Schema::Of({{"su_suppkey", kI},
                                                         {"su_name", kS},
                                                         {"su_nationkey", kI},
                                                         {"su_acctbal", kD}}))
                  .value();
  nation_ = catalog_
                .RegisterTable("nation", Schema::Of({{"n_nationkey", kI},
                                                     {"n_name", kS},
                                                     {"n_regionkey", kI}}))
                .value();
  region_ = catalog_
                .RegisterTable("region", Schema::Of({{"r_regionkey", kI},
                                                     {"r_name", kS}}))
                .value();

  // The 22 CH-benCHmark queries' table footprints (CH spec; TPC-H query
  // shapes rewritten over the TPC-C schema).
  const TableId cu = tpcc_->customer(), no = tpcc_->neworder(),
                od = tpcc_->orders(), ol = tpcc_->orderline(),
                it = tpcc_->item(), st = tpcc_->stock(),
                di = tpcc_->district(), su = supplier_, na = nation_,
                re = region_;
  queries_ = {
      {"Q1", {ol}, 1.0},
      {"Q2", {it, su, st, na, re}, 1.0},
      {"Q3", {cu, no, od, ol}, 1.0},
      {"Q4", {od, ol}, 1.0},
      {"Q5", {cu, od, ol, st, su, na, re}, 1.0},
      {"Q6", {ol}, 1.0},
      {"Q7", {su, st, ol, od, cu, na}, 1.0},
      {"Q8", {it, su, st, ol, od, cu, na, re}, 1.0},
      {"Q9", {it, su, st, ol, od, na}, 1.0},
      {"Q10", {cu, od, ol, na}, 1.0},
      {"Q11", {su, st, na}, 1.0},
      {"Q12", {od, ol}, 1.0},
      {"Q13", {cu, od}, 1.0},
      {"Q14", {ol, it}, 1.0},
      {"Q15", {su, st, ol}, 1.0},
      {"Q16", {it, su, st}, 1.0},
      {"Q17", {ol, it}, 1.0},
      {"Q18", {cu, od, ol}, 1.0},
      {"Q19", {ol, it}, 1.0},
      {"Q20", {su, na, st, ol, it}, 1.0},
      {"Q21", {su, ol, od, st, na}, 1.0},
      {"Q22", {cu, od}, 1.0},
  };
  // Silence unused warning for district: it appears only via TPC-C's own
  // read-only queries, not the CH footprints.
  (void)di;
}

void ChBenchmarkWorkload::Load(PrimaryDb* db, Rng* rng) {
  tpcc_->Load(db, rng);
  PrimaryTxn txn = db->Begin();
  for (int64_t r = 1; r <= 5; ++r) {
    txn.Insert(region_, r, {{0, Value(r)}, {1, Value(rng->AlphaString(6, 12))}});
  }
  for (int64_t nkey = 1; nkey <= 25; ++nkey) {
    txn.Insert(nation_, nkey,
               {{0, Value(nkey)},
                {1, Value(rng->AlphaString(6, 12))},
                {2, Value(rng->UniformInt(1, 5))}});
  }
  for (int64_t s = 1; s <= 100; ++s) {
    txn.Insert(supplier_, s,
               {{0, Value(s)},
                {1, Value(rng->AlphaString(8, 16))},
                {2, Value(rng->UniformInt(1, 25))},
                {3, Value(rng->UniformDouble() * 10000)}});
  }
  AETS_CHECK(db->Commit(std::move(txn)).ok());
}

Status ChBenchmarkWorkload::RunOltpTransaction(PrimaryDb* db, Rng* rng) {
  return tpcc_->RunOltpTransaction(db, rng);
}

std::vector<TableId> ChBenchmarkWorkload::WrittenTables() const {
  return tpcc_->WrittenTables();
}

}  // namespace aets
