#include "aets/workload/workload_stats.h"

#include <algorithm>
#include <map>

#include "aets/workload/driver.h"

namespace aets {

namespace {

/// Per-table DML counts produced by `num_txns` of the OLTP mix, excluding
/// the load phase.
std::map<TableId, uint64_t> MixDmlCounts(Workload* workload, uint64_t num_txns,
                                         uint64_t seed) {
  LogicalClock clock;
  PrimaryDb db(&workload->catalog(), &clock);
  Rng rng(seed);
  workload->Load(&db, &rng);
  std::map<TableId, uint64_t> before = db.log_buffer().DmlCountsByTable();
  OltpDriver driver(workload, &db, seed);
  driver.Run(num_txns);
  std::map<TableId, uint64_t> after = db.log_buffer().DmlCountsByTable();
  for (const auto& [table, count] : before) after[table] -= count;
  return after;
}

double RatioOf(const std::map<TableId, uint64_t>& counts,
               const std::vector<TableId>& hot) {
  uint64_t total = 0, hot_count = 0;
  for (const auto& [table, count] : counts) total += count;
  for (TableId t : hot) {
    auto it = counts.find(t);
    if (it != counts.end()) hot_count += it->second;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(hot_count) / static_cast<double>(total);
}

}  // namespace

WorkloadStats MeasureWorkloadStats(Workload* workload, uint64_t num_txns,
                                   uint64_t seed) {
  WorkloadStats stats;
  stats.benchmark = workload->name();
  stats.num_written_tables = workload->WrittenTables().size();
  stats.num_accessed_tables = workload->AccessedTables().size();
  std::vector<TableId> hot = workload->HotTables();
  stats.num_hot_tables = hot.size();
  stats.hot_log_ratio = RatioOf(MixDmlCounts(workload, num_txns, seed), hot);
  return stats;
}

double HotRatioForTables(Workload* workload, uint64_t num_txns,
                         const std::vector<TableId>& query_tables,
                         uint64_t seed) {
  std::vector<TableId> written = workload->WrittenTables();
  std::sort(written.begin(), written.end());
  std::vector<TableId> hot;
  for (TableId t : query_tables) {
    if (std::binary_search(written.begin(), written.end(), t)) hot.push_back(t);
  }
  return RatioOf(MixDmlCounts(workload, num_txns, seed), hot);
}

}  // namespace aets
