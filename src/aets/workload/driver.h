#ifndef AETS_WORKLOAD_DRIVER_H_
#define AETS_WORKLOAD_DRIVER_H_

#include <atomic>
#include <functional>
#include <thread>
#include <vector>

#include "aets/common/histogram.h"
#include "aets/common/rng.h"
#include "aets/replay/access_tracker.h"
#include "aets/replay/replayer.h"
#include "aets/workload/workload.h"

namespace aets {

/// Runs the OLTP side: executes `num_txns` transactions of the workload mix
/// against the primary (optionally across several client threads).
class OltpDriver {
 public:
  OltpDriver(Workload* workload, PrimaryDb* db, uint64_t seed = 7)
      : workload_(workload), db_(db), seed_(seed) {}

  /// Synchronously runs `num_txns` transactions on `threads` client threads.
  void Run(uint64_t num_txns, int threads = 1);

  /// Starts the run in the background; `Join` waits for completion.
  void Start(uint64_t num_txns, int threads = 1);
  void Join();

  uint64_t txns_committed() const {
    return committed_.load(std::memory_order_relaxed);
  }

 private:
  Workload* workload_;
  PrimaryDb* db_;
  uint64_t seed_;
  std::atomic<uint64_t> committed_{0};
  std::vector<std::thread> threads_;
};

/// Runs the OLAP side against a replayer: issues analytic queries with
/// snapshot timestamps drawn from the primary clock, waits for visibility
/// per Algorithm 3, records the per-query visibility delay, and (optionally)
/// feeds the access tracker the tables each query touched.
class OlapDriver {
 public:
  struct Options {
    /// Queries to issue.
    uint64_t num_queries = 1000;
    /// Pause between queries (microseconds of think time, 0 = none).
    int64_t think_us = 0;
    /// Phase supplier in [0,1) for time-varying workloads; null = 0.
    std::function<double()> phase_fn;
    /// Optional access tracker to feed.
    AccessTracker* tracker = nullptr;
    /// Read a sample row after visibility (exercises the MVCC read path).
    bool read_rows = true;
    uint64_t seed = 13;
  };

  OlapDriver(Workload* workload, Replayer* replayer, LogicalClock* clock,
             Options options)
      : workload_(workload),
        replayer_(replayer),
        clock_(clock),
        options_(std::move(options)) {}

  /// Synchronously issues the configured number of queries.
  void Run();

  void Start();
  void Join();

  /// Visibility delay per query, microseconds.
  const Histogram& delays() const { return delays_; }
  /// Per-query-template delay histograms (Fig. 10's per-query series).
  const std::vector<Histogram>& per_query_delays() const {
    return per_query_delays_;
  }

 private:
  Workload* workload_;
  Replayer* replayer_;
  LogicalClock* clock_;
  Options options_;
  Histogram delays_;
  std::vector<Histogram> per_query_delays_;
  std::thread thread_;
};

}  // namespace aets

#endif  // AETS_WORKLOAD_DRIVER_H_
