#ifndef AETS_PRIMARY_PRIMARY_DB_H_
#define AETS_PRIMARY_PRIMARY_DB_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "aets/catalog/catalog.h"
#include "aets/common/clock.h"
#include "aets/common/result.h"
#include "aets/log/epoch.h"
#include "aets/log/log_buffer.h"
#include "aets/log/record.h"
#include "aets/storage/table_store.h"

namespace aets {

/// A buffered read-write transaction on the primary. Writes accumulate in the
/// transaction and only reach the primary's state (and the value log) at
/// commit time.
class PrimaryTxn {
 public:
  void Insert(TableId table, int64_t row_key, std::vector<ColumnValue> values);
  void Update(TableId table, int64_t row_key, std::vector<ColumnValue> values);
  void Delete(TableId table, int64_t row_key);

  size_t num_writes() const { return writes_.size(); }

 private:
  friend class PrimaryDb;

  struct Write {
    LogRecordType type;
    TableId table;
    int64_t row_key;
    std::vector<ColumnValue> values;
  };
  std::vector<Write> writes_;
};

/// The primary-node OLTP engine. It stands in for the MySQL primary of the
/// paper's testbed: it executes read-write transactions against its own
/// MVCC TableStore, assigns monotonically increasing transaction IDs that
/// define the commit order, and emits SiloR-style value logs. A commit sink
/// (the LogShipper) receives each committed TxnLog in commit order.
class PrimaryDb {
 public:
  /// `clock` is the shared timestamp oracle; queries on the backup draw
  /// their snapshot timestamps from the same clock.
  PrimaryDb(const Catalog* catalog, LogicalClock* clock);

  PrimaryDb(const PrimaryDb&) = delete;
  PrimaryDb& operator=(const PrimaryDb&) = delete;

  PrimaryTxn Begin() const { return PrimaryTxn(); }

  /// Commits `txn`: assigns txn id + commit timestamp, applies the writes to
  /// the primary state, appends to the retained log, and forwards the TxnLog
  /// to the commit sink. Empty transactions are rejected.
  Result<TxnLog> Commit(PrimaryTxn&& txn);

  /// Registers the commit-order consumer (at most one; typically the
  /// LogShipper). Must be set before the first commit that should ship.
  void SetCommitSink(std::function<void(TxnLog)> sink);

  /// Reads from the primary's own state (used by tests to cross-check the
  /// backup and by the paper's "route fresh queries to primary" discussion).
  std::optional<Row> Read(TableId table, int64_t row_key, Timestamp ts) const;

  /// Issues a timestamp that is safe to ship as a heartbeat: holding the
  /// commit mutex guarantees no commit is in flight, so every transaction
  /// with commit_ts below the returned value has already reached the commit
  /// sink, and every future commit will be above it.
  Timestamp AcquireHeartbeatTs();

  const TableStore& store() const { return store_; }
  const LogBuffer& log_buffer() const { return log_buffer_; }
  LogicalClock* clock() const { return clock_; }

  TxnId last_committed_txn() const {
    return next_txn_id_.load(std::memory_order_relaxed) - 1;
  }
  Timestamp last_commit_ts() const {
    return last_commit_ts_.load(std::memory_order_relaxed);
  }

 private:
  const Catalog* catalog_;
  LogicalClock* clock_;
  TableStore store_;
  LogBuffer log_buffer_;
  std::function<void(TxnLog)> sink_;

  std::mutex commit_mu_;  // serializes commit order
  std::atomic<TxnId> next_txn_id_{1};
  std::atomic<Lsn> next_lsn_{1};
  std::atomic<Timestamp> last_commit_ts_{kInvalidTimestamp};
};

}  // namespace aets

#endif  // AETS_PRIMARY_PRIMARY_DB_H_
