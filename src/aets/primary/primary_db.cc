#include "aets/primary/primary_db.h"

#include "aets/common/macros.h"
#include "aets/obs/metrics.h"

namespace aets {

void PrimaryTxn::Insert(TableId table, int64_t row_key,
                        std::vector<ColumnValue> values) {
  writes_.push_back(Write{LogRecordType::kInsert, table, row_key,
                          std::move(values)});
}

void PrimaryTxn::Update(TableId table, int64_t row_key,
                        std::vector<ColumnValue> values) {
  writes_.push_back(Write{LogRecordType::kUpdate, table, row_key,
                          std::move(values)});
}

void PrimaryTxn::Delete(TableId table, int64_t row_key) {
  writes_.push_back(Write{LogRecordType::kDelete, table, row_key, {}});
}

PrimaryDb::PrimaryDb(const Catalog* catalog, LogicalClock* clock)
    : catalog_(catalog), clock_(clock), store_(*catalog) {
  AETS_CHECK(catalog != nullptr && clock != nullptr);
}

void PrimaryDb::SetCommitSink(std::function<void(TxnLog)> sink) {
  sink_ = std::move(sink);
}

Result<TxnLog> PrimaryDb::Commit(PrimaryTxn&& txn) {
  if (txn.writes_.empty()) {
    return Status::InvalidArgument("empty transaction");
  }
  for (const auto& w : txn.writes_) {
    if (w.table >= catalog_->num_tables()) {
      return Status::InvalidArgument("write to unregistered table");
    }
  }

  static obs::Counter* txns_metric = obs::GetCounter("primary.txns_committed");
  static obs::Counter* writes_metric =
      obs::GetCounter("primary.rows_written");
  static obs::Gauge* commit_ts_metric =
      obs::GetGauge("primary.last_commit_ts");
  static Histogram* commit_us_metric = obs::GetHistogram("primary.commit_us");
  int64_t start_us = MonotonicMicros();

  // The commit mutex defines the commit order: txn id assignment, state
  // application, log append, and sink delivery happen atomically per txn.
  std::lock_guard<std::mutex> lk(commit_mu_);
  TxnId txn_id = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  Timestamp commit_ts = clock_->Tick();

  TxnLog out;
  out.txn_id = txn_id;
  out.commit_ts = commit_ts;
  out.records.reserve(txn.writes_.size() + 2);
  out.records.push_back(
      LogRecord::Begin(next_lsn_.fetch_add(1), txn_id, commit_ts));

  for (auto& w : txn.writes_) {
    Memtable* table = store_.GetTable(w.table);
    // Before-image txn id and per-row version sequence for the
    // operation-sequence checks of the direct-install baselines.
    MemNode* node = table->GetOrCreateNode(w.row_key);
    TxnId prev_txn = node->LastWriterTxn();
    uint64_t row_seq = node->NumVersions();
    LogRecord rec = LogRecord::Dml(w.type, next_lsn_.fetch_add(1), txn_id,
                                   commit_ts, w.table, w.row_key,
                                   std::move(w.values), prev_txn, row_seq);
    table->ApplyCommitted(rec, commit_ts);
    out.records.push_back(std::move(rec));
  }
  out.records.push_back(
      LogRecord::Commit(next_lsn_.fetch_add(1), txn_id, commit_ts));

  log_buffer_.AppendAll(out.records);
  last_commit_ts_.store(commit_ts, std::memory_order_release);
  if (sink_) sink_(out);

  txns_metric->Add(1);
  writes_metric->Add(txn.writes_.size());
  commit_ts_metric->Set(static_cast<int64_t>(commit_ts));
  commit_us_metric->Record(MonotonicMicros() - start_us);
  return out;
}

Timestamp PrimaryDb::AcquireHeartbeatTs() {
  std::lock_guard<std::mutex> lk(commit_mu_);
  return clock_->Tick();
}

std::optional<Row> PrimaryDb::Read(TableId table, int64_t row_key,
                                   Timestamp ts) const {
  return store_.GetTable(table)->ReadRow(row_key, ts);
}

}  // namespace aets
