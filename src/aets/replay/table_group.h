#ifndef AETS_REPLAY_TABLE_GROUP_H_
#define AETS_REPLAY_TABLE_GROUP_H_

#include <vector>

#include "aets/catalog/schema.h"

namespace aets {

/// A replay group: tables with similar OLAP access rates that share one
/// commit_order_queue and one commit thread. Groups with a positive access
/// rate form the first-class (hot) set replayed in stage one; zero-rate
/// groups are second-class (cold) and replayed in stage two (paper Fig. 1).
struct TableGroup {
  std::vector<TableId> tables;
  double access_rate = 0;
  bool hot = false;
};

/// Grouping policies (paper Section IV-A).
class TableGrouping {
 public:
  /// One group per table; hot iff its rate >= `hot_threshold`.
  static std::vector<TableGroup> PerTable(const std::vector<double>& rates,
                                          double hot_threshold = 1e-9);

  /// Clusters tables with similar access rates via DBSCAN on log10(rate).
  /// Tables below `hot_threshold` (predicted noise, or truly unqueried)
  /// become singleton cold groups. `eps` is the neighbor radius in log10
  /// space (0.3 groups rates within ~2x of each other).
  static std::vector<TableGroup> ByAccessRate(const std::vector<double>& rates,
                                              double eps = 0.3,
                                              double hot_threshold = 0.5);

  /// Caller-specified hot groups (e.g. the paper's TPC-C configuration);
  /// every table not listed becomes a singleton cold group. Rates supply
  /// each group's access rate (summed over member tables).
  static std::vector<TableGroup> Static(
      const std::vector<std::vector<TableId>>& hot_groups,
      const std::vector<double>& rates, size_t num_tables);

  /// Everything in one group (the ungrouped TPLR baseline).
  static std::vector<TableGroup> Single(size_t num_tables,
                                        const std::vector<double>& rates);

  /// Builds the table -> group index map. Aborts if any table is missing or
  /// duplicated across groups.
  static std::vector<int> TableToGroup(const std::vector<TableGroup>& groups,
                                       size_t num_tables);
};

}  // namespace aets

#endif  // AETS_REPLAY_TABLE_GROUP_H_
