#ifndef AETS_REPLAY_REPLAYER_BASE_H_
#define AETS_REPLAY_REPLAYER_BASE_H_

#include <atomic>
#include <mutex>
#include <string>
#include <thread>

#include "aets/catalog/catalog.h"
#include "aets/log/shipped_epoch.h"
#include "aets/obs/metrics.h"
#include "aets/replay/replayer.h"
#include "aets/replication/channel.h"
#include "aets/storage/table_store.h"

namespace aets {

/// The scaffolding every replayer shares — previously copy-pasted across
/// AETS, ATR, C5, and the serial oracle. Owns:
///
///  - the epoch-ordered main loop (strict epoch-id sequencing, wall-clock
///    stats, heartbeat routing, the per-epoch volume counters and metrics);
///  - the sticky error latch, with a lock-free HasError() fast check the
///    hot loops poll — once it trips, the main loop stops applying and
///    drains the channel without installing anything (the channel is
///    bounded, so halting receives outright could deadlock the producer);
///  - race-safe Start()/Stop(): lifecycle transitions are serialized by a
///    mutex, Stop() is idempotent, and a failed StartWorkers() leaves the
///    replayer cleanly un-started.
///
/// Subclasses implement ProcessEpoch/ProcessHeartbeat, and optionally
/// StartWorkers/StopWorkers for their thread pools. Their destructors must
/// call Stop() (so the virtual StopWorkers still dispatches).
class ReplayerBase : public Replayer {
 public:
  ReplayerBase(const Catalog* catalog, EpochChannel* channel, std::string name);
  ~ReplayerBase() override;

  Status Start() final;
  void Stop() final;

  TableStore* store() override { return &store_; }
  const ReplayStats& stats() const override { return stats_; }
  std::string name() const override { return name_; }

  /// Sticky error (corrupted record, out-of-order epoch). OK while healthy.
  Status error() const;

 protected:
  /// Validates options and spawns worker pools; a failure aborts Start()
  /// without marking the replayer started. Called under the lifecycle lock.
  virtual Status StartWorkers() { return Status::OK(); }

  /// Tears down worker pools after the main loop joined.
  virtual void StopWorkers() {}

  /// Applies one data epoch. On failure, latch with SetError() — the base
  /// then skips the per-epoch stats/metrics and stops applying.
  virtual void ProcessEpoch(const ShippedEpoch& epoch) = 0;

  /// Publishes a heartbeat timestamp to the visibility watermark(s).
  virtual void ProcessHeartbeat(const ShippedEpoch& epoch) = 0;

  void SetError(Status status);

  /// Lock-free check for the hot loops (translate claims, commit spins).
  bool HasError() const {
    return error_flag_.load(std::memory_order_acquire);
  }

  bool started() const { return started_.load(std::memory_order_acquire); }

  const Catalog* catalog_;
  EpochChannel* channel_;
  TableStore store_;
  ReplayStats stats_;
  /// The next epoch id expected from the channel. Only the main loop writes
  /// it while running; Bootstrap arms it before Start().
  EpochId expected_epoch_ = 0;

 private:
  void MainLoop();

  std::string name_;

  /// Observability (resolved once per instrument; aggregated process-wide).
  obs::Counter* epochs_applied_metric_;
  obs::Counter* txns_applied_metric_;
  obs::Counter* records_applied_metric_;
  obs::Counter* bytes_applied_metric_;
  obs::Counter* heartbeats_applied_metric_;

  std::thread main_thread_;
  std::mutex lifecycle_mu_;
  std::atomic<bool> started_{false};

  mutable std::mutex error_mu_;
  Status error_;
  std::atomic<bool> error_flag_{false};
};

}  // namespace aets

#endif  // AETS_REPLAY_REPLAYER_BASE_H_
