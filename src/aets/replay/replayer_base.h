#ifndef AETS_REPLAY_REPLAYER_BASE_H_
#define AETS_REPLAY_REPLAYER_BASE_H_

#include <atomic>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "aets/catalog/catalog.h"
#include "aets/log/shipped_epoch.h"
#include "aets/obs/metrics.h"
#include "aets/replay/replayer.h"
#include "aets/replication/channel.h"
#include "aets/replication/epoch_source.h"
#include "aets/storage/table_store.h"

namespace aets {

/// Tuning knobs of the epoch-loss recovery protocol (see MainLoop below and
/// DESIGN.md "Failure model & recovery").
struct ReplayRecoveryOptions {
  /// SpinBackoff pauses spent polling the channel before concluding a gap is
  /// a loss rather than a reordering still in flight.
  int reorder_window_pauses = 2000;
  /// Recovery rounds (reorder wait + NACK) per gap without progress before
  /// the sticky error latch trips.
  int max_retries = 8;
  /// Bound on buffered out-of-order epochs; exceeding it means the stream is
  /// unrecoverable (or the peer is misbehaving) and latches an error.
  size_t max_pending = 1024;
};

/// The scaffolding every replayer shares — previously copy-pasted across
/// AETS, ATR, C5, and the serial oracle. Owns:
///
///  - the epoch-ordered main loop: payload-CRC verification on receive,
///    epoch-id sequencing, wall-clock stats, heartbeat routing, and the
///    per-epoch volume counters and metrics;
///  - the loss-recovery protocol. The channel may drop, duplicate, reorder,
///    or corrupt epochs; the loop skips already-applied ids (duplicates),
///    buffers early arrivals, and fills gaps by first waiting a bounded
///    reorder window on the channel and then NACK-fetching the missing id
///    from the attached EpochSource (the shipper's retention buffer). After
///    the channel closes, any tail the link swallowed is pulled the same
///    way, so a finished replayer is either byte-equal to the primary or
///    has a latched error — never silently short. Without an EpochSource
///    the pre-recovery behavior stands: any anomaly is terminal;
///  - the sticky error latch, with a lock-free HasError() fast check the
///    hot loops poll — once it trips, the main loop stops applying and
///    drains the channel without installing anything (the channel is
///    bounded, so halting receives outright could deadlock the producer);
///  - race-safe Start()/Stop(): lifecycle transitions are serialized by a
///    mutex, Stop() is idempotent, and a failed StartWorkers() leaves the
///    replayer cleanly un-started.
///
/// Subclasses implement ProcessEpoch/ProcessHeartbeat, and optionally
/// StartWorkers/StopWorkers for their thread pools. Their destructors must
/// call Stop() (so the virtual StopWorkers still dispatches).
class ReplayerBase : public Replayer {
 public:
  ReplayerBase(const Catalog* catalog, EpochChannel* channel, std::string name);
  ~ReplayerBase() override;

  void SetEpochSource(EpochSource* source) override;
  /// Shrinks/extends the recovery windows (tests). Before Start() only.
  void SetRecoveryOptions(const ReplayRecoveryOptions& options);

  Status Start() final;
  void Stop() final;

  TableStore* store() override { return &store_; }
  const ReplayStats& stats() const override { return stats_; }
  std::string name() const override { return name_; }

  /// Sticky error (unrecoverable loss, corrupted record, pending-buffer
  /// overflow). OK while healthy or fully recovered.
  Status error() const;

  /// The next epoch id the main loop expects — i.e. every id below it has
  /// been handed to ProcessEpoch/ProcessHeartbeat. Safe to poll from other
  /// threads (the simulation harness steps epochs one at a time against it).
  EpochId next_expected_epoch() const {
    return expected_epoch_.load(std::memory_order_acquire);
  }

 protected:
  /// Validates options and spawns worker pools; a failure aborts Start()
  /// without marking the replayer started. Called under the lifecycle lock.
  virtual Status StartWorkers() { return Status::OK(); }

  /// Tears down worker pools after the main loop joined.
  virtual void StopWorkers() {}

  /// Applies one data epoch. On failure, latch with SetError() — the base
  /// then skips the per-epoch stats/metrics and stops applying.
  virtual void ProcessEpoch(const ShippedEpoch& epoch) = 0;

  /// Publishes a heartbeat timestamp to the visibility watermark(s).
  virtual void ProcessHeartbeat(const ShippedEpoch& epoch) = 0;

  void SetError(Status status);

  /// Lock-free check for the hot loops (translate claims, commit spins).
  bool HasError() const {
    return error_flag_.load(std::memory_order_acquire);
  }

  bool started() const { return started_.load(std::memory_order_acquire); }

  const Catalog* catalog_;
  EpochChannel* channel_;
  TableStore store_;
  ReplayStats stats_;
  /// The next epoch id expected from the channel. Only the main loop writes
  /// it while running; Bootstrap arms it before Start(). Atomic so external
  /// observers (next_expected_epoch) can poll replay progress.
  std::atomic<EpochId> expected_epoch_{0};

 private:
  /// Early arrivals parked while a gap is open, keyed by epoch id.
  using PendingMap = std::map<EpochId, ShippedEpoch>;

  void MainLoop();
  /// Classifies one received epoch: corrupt payloads are dropped (a loss the
  /// NACK path repairs), stale ids are counted as duplicates, early ids are
  /// parked in `pending`, and the expected id is applied — followed by every
  /// now-contiguous parked successor.
  void Ingest(ShippedEpoch epoch, PendingMap* pending, bool retransmitted);
  /// Applies the epoch at expected_epoch_ and advances the sequence.
  void ApplyNext(const ShippedEpoch& epoch, bool retransmitted);
  /// Closes the gap at expected_epoch_ while the channel is live: bounded
  /// reorder wait, then NACK via the EpochSource, then the error latch.
  void RecoverGaps(PendingMap* pending);
  /// After the channel closed: drain parked epochs and NACK-fetch whatever
  /// the link swallowed up to the source's NextEpochId().
  void FinalDrain(PendingMap* pending);

  std::string name_;

  EpochSource* source_ = nullptr;
  ReplayRecoveryOptions recovery_;

  /// Observability (resolved once per instrument; aggregated process-wide).
  obs::Counter* epochs_applied_metric_;
  obs::Counter* txns_applied_metric_;
  obs::Counter* records_applied_metric_;
  obs::Counter* bytes_applied_metric_;
  obs::Counter* heartbeats_applied_metric_;
  obs::Counter* epochs_retried_metric_;
  obs::Counter* duplicates_dropped_metric_;
  obs::Counter* corrupt_dropped_metric_;

  std::thread main_thread_;
  std::mutex lifecycle_mu_;
  std::atomic<bool> started_{false};

  mutable std::mutex error_mu_;
  Status error_;
  std::atomic<bool> error_flag_{false};
};

}  // namespace aets

#endif  // AETS_REPLAY_REPLAYER_BASE_H_
