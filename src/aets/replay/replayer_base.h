#ifndef AETS_REPLAY_REPLAYER_BASE_H_
#define AETS_REPLAY_REPLAYER_BASE_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "aets/catalog/catalog.h"
#include "aets/log/shipped_epoch.h"
#include "aets/obs/metrics.h"
#include "aets/replay/replayer.h"
#include "aets/replication/channel.h"
#include "aets/replication/epoch_source.h"
#include "aets/storage/column_store.h"
#include "aets/storage/table_store.h"

namespace aets {

/// Tuning knobs of the epoch-loss recovery protocol (see MainLoop below and
/// DESIGN.md "Failure model & recovery").
struct ReplayRecoveryOptions {
  /// SpinBackoff pauses spent polling the channel before concluding a gap is
  /// a loss rather than a reordering still in flight.
  int reorder_window_pauses = 2000;
  /// Recovery rounds (reorder wait + NACK) per gap without progress before
  /// the sticky error latch trips. Also bounds consecutive NACK fetch
  /// misses: a nullopt from the source can be a transient I/O timeout on a
  /// socket-backed NACK RPC, not proof of eviction, so a gap only latches
  /// after this many missed attempts with backoff in between.
  int max_retries = 8;
  /// Bound on buffered out-of-order epochs; exceeding it means the stream is
  /// unrecoverable (or the peer is misbehaving) and latches an error.
  size_t max_pending = 1024;
};

/// The scaffolding every replayer shares — previously copy-pasted across
/// AETS, ATR, C5, and the serial oracle. Owns:
///
///  - the epoch-ordered main loop: payload-CRC verification on receive,
///    epoch-id sequencing, wall-clock stats, heartbeat routing, and the
///    per-epoch volume counters and metrics;
///  - the cross-epoch pipeline (DESIGN.md §9): each in-order epoch is split
///    into a prepare phase (PrepareEpoch — dispatch/decode/translate launch,
///    runs on the main loop thread) and a commit phase (CommitEpoch — version
///    install + watermark publication). With pipeline_depth > 1 a dedicated
///    commit thread consumes a bounded in-order queue of prepared epochs, so
///    receive/CRC/dispatch/translation of epoch N+1 overlaps the commit of
///    epoch N. The queue bound is the backpressure: when depth epochs are in
///    flight the main loop blocks in ApplyNext (counted in
///    ReplayStats::pipeline_stalls / pipeline.stalls). Commit order — and
///    therefore every watermark publication — stays strictly epoch-ordered
///    because the single commit context pops the queue FIFO;
///  - the loss-recovery protocol. The channel may drop, duplicate, reorder,
///    or corrupt epochs; the loop skips already-applied ids (duplicates),
///    buffers early arrivals, and fills gaps by first waiting a bounded
///    reorder window on the channel and then NACK-fetching the missing id
///    from the attached EpochSource (the shipper's retention buffer). After
///    the channel closes, any tail the link swallowed is pulled the same
///    way, so a finished replayer is either byte-equal to the primary or
///    has a latched error — never silently short. Without an EpochSource
///    the pre-recovery behavior stands: any anomaly is terminal;
///  - the sticky error latch, with a lock-free HasError() fast check the
///    hot loops poll — once it trips, the main loop stops applying and
///    drains the channel without installing anything (the channel is
///    bounded, so halting receives outright could deadlock the producer).
///    Epochs already in the pipeline drain through the commit thread without
///    committing or publishing, and their prepared state unwinds cleanly
///    (subclasses quiesce in-flight translation in their PreparedEpoch
///    destructor);
///  - race-safe Start()/Stop(): lifecycle transitions are serialized by a
///    mutex, Stop() is idempotent, and a failed StartWorkers() leaves the
///    replayer cleanly un-started.
///
/// Subclasses implement PrepareEpoch/CommitEpoch/ProcessHeartbeat, and
/// optionally StartWorkers/StopWorkers for their thread pools. Their
/// destructors must call Stop() (so the virtual StopWorkers still
/// dispatches).
class ReplayerBase : public Replayer {
 public:
  ReplayerBase(const Catalog* catalog, EpochChannel* channel, std::string name);
  ~ReplayerBase() override;

  void SetEpochSource(EpochSource* source) override;
  /// Shrinks/extends the recovery windows (tests). Before Start() only.
  void SetRecoveryOptions(const ReplayRecoveryOptions& options);

  /// Bounds the number of epochs in flight between prepare and commit
  /// (1 = fully serial, i.e. the pre-pipeline behavior). Before Start()
  /// only; Start() rejects values < 1.
  void SetPipelineDepth(int depth);
  int pipeline_depth() const { return pipeline_depth_; }

  /// Test-only: invoked on the commit context right before each pipeline
  /// item (data epoch or heartbeat) commits. A blocking hook models a slow
  /// committer, letting tests freeze the commit stage while the prepare
  /// stage runs ahead. Before Start() only.
  void SetCommitHookForTest(std::function<void(const ShippedEpoch&)> hook);

  Status Start() final;
  void Stop() final;

  TableStore* store() override { return &store_; }
  const ReplayStats& stats() const override { return stats_; }
  std::string name() const override { return name_; }

  /// Attaches a columnar projection store (DESIGN.md §13) over this
  /// replayer's TableStore. After each committed data epoch the base posts
  /// the epoch's watermark to a background merge thread, which coalesces
  /// requests and publishes generations off the replay critical path; the
  /// subclass's commit path must feed it via column_store()->NoteDirty
  /// before each watermark store, else published chunks go stale silently.
  /// Before Start() only.
  void EnableColumnStore(storage::ColumnStoreOptions options);

  /// The attached column store, or nullptr. Non-const flavor for the
  /// subclass commit path (NoteDirty/SeedFromRows).
  storage::ColumnStore* column_store() { return column_store_.get(); }
  const storage::ColumnStore* ColumnStoreForTable(
      TableId /*table*/) const override {
    return column_store_.get();
  }

  /// Sticky error (unrecoverable loss, corrupted record, pending-buffer
  /// overflow). OK while healthy or fully recovered.
  Status error() const;

  /// The next epoch id the main loop expects — i.e. every id below it has
  /// been admitted into the replay pipeline (prepared, though with
  /// pipeline_depth > 1 not necessarily committed yet; poll stats().epochs
  /// for commit progress). Safe to poll from other threads.
  EpochId next_expected_epoch() const {
    return expected_epoch_.load(std::memory_order_acquire);
  }

  /// Disk-budget plumbing: the shipper's CheckpointTrigger (or any other
  /// observer) marks this backup as needing a checkpoint; the driver that
  /// owns the checkpoint cadence consumes the mark with
  /// TakeCheckpointRequest, quiesces, writes the image, and truncates the
  /// durable log. A latched request is level-held (re-requesting is
  /// idempotent) so a slow driver never misses it. Thread-safe.
  void RequestCheckpoint() {
    checkpoint_requested_.store(true, std::memory_order_release);
  }
  /// Returns true exactly once per pending request, clearing it.
  bool TakeCheckpointRequest() {
    return checkpoint_requested_.exchange(false, std::memory_order_acq_rel);
  }

 protected:
  /// Opaque per-epoch state carried from PrepareEpoch to CommitEpoch.
  /// Destroying it must quiesce anything the prepare phase left in flight
  /// (e.g. translation tasks still claiming fragments) — a dropped pipeline
  /// item after an error latch is destroyed without CommitEpoch running.
  struct PreparedEpoch {
    virtual ~PreparedEpoch() = default;
  };

  /// Validates options and spawns worker pools; a failure aborts Start()
  /// without marking the replayer started. Called under the lifecycle lock.
  virtual Status StartWorkers() { return Status::OK(); }

  /// Tears down worker pools after the main loop joined.
  virtual void StopWorkers() {}

  /// Phase A of one data epoch: metadata dispatch, decode, and launching
  /// any phase-1 translation. Runs on the main loop thread, possibly while
  /// an earlier epoch is still committing — it must not install versions or
  /// publish watermarks. On failure, latch with SetError(); the returned
  /// state is then discarded without CommitEpoch.
  virtual std::unique_ptr<PreparedEpoch> PrepareEpoch(
      const ShippedEpoch& epoch) = 0;

  /// Phase B of one data epoch: version install and watermark publication.
  /// Runs on the commit context (the commit thread when pipeline_depth > 1,
  /// inline otherwise), strictly in epoch order, one epoch at a time. On
  /// failure, latch with SetError() — the base then skips the per-epoch
  /// stats/metrics and stops applying.
  virtual void CommitEpoch(const ShippedEpoch& epoch,
                           std::unique_ptr<PreparedEpoch> prepared) = 0;

  /// Publishes a heartbeat timestamp to the visibility watermark(s). Runs on
  /// the commit context, ordered with CommitEpoch — a heartbeat never
  /// overtakes the data epoch shipped before it.
  virtual void ProcessHeartbeat(const ShippedEpoch& epoch) = 0;

  void SetError(Status status);

  /// Lock-free check for the hot loops (translate claims, commit spins).
  bool HasError() const {
    return error_flag_.load(std::memory_order_acquire);
  }

  bool started() const { return started_.load(std::memory_order_acquire); }

  const Catalog* catalog_;
  EpochChannel* channel_;
  TableStore store_;
  ReplayStats stats_;
  /// The next epoch id expected from the channel. Only the main loop writes
  /// it while running; Bootstrap arms it before Start(). Atomic so external
  /// observers (next_expected_epoch) can poll replay progress.
  std::atomic<EpochId> expected_epoch_{0};

 private:
  /// Early arrivals parked while a gap is open, keyed by epoch id.
  using PendingMap = std::map<EpochId, ShippedEpoch>;

  /// One in-order unit of the prepare→commit hand-off. Heartbeats flow
  /// through the same queue (prepared == nullptr) so their publication
  /// cannot overtake a data epoch still committing.
  struct PipelineItem {
    ShippedEpoch epoch;
    std::unique_ptr<PreparedEpoch> prepared;
  };

  void MainLoop();
  /// Classifies one received epoch: corrupt payloads are dropped (a loss the
  /// NACK path repairs), stale ids are counted as duplicates, early ids are
  /// parked in `pending`, and the expected id is applied — followed by every
  /// now-contiguous parked successor.
  void Ingest(ShippedEpoch epoch, PendingMap* pending, bool retransmitted);
  /// Prepares the epoch at expected_epoch_, advances the sequence, and hands
  /// the prepared item to the commit context — inline at depth 1, otherwise
  /// via the bounded pipeline queue (blocking when depth epochs are already
  /// in flight).
  void ApplyNext(ShippedEpoch epoch, bool retransmitted);
  /// Commits (or, post-latch, drains) one pipeline item and maintains the
  /// per-epoch stats/metrics. Runs on the commit context.
  void CommitItem(PipelineItem item);
  /// Commit-thread body at pipeline_depth > 1: pops the queue FIFO until it
  /// is closed and drained.
  void CommitLoop();
  /// Closes the gap at expected_epoch_ while the channel is live: bounded
  /// reorder wait, then NACK via the EpochSource, then the error latch.
  void RecoverGaps(PendingMap* pending);
  /// After the channel closed: drain parked epochs and NACK-fetch whatever
  /// the link swallowed up to the source's NextEpochId().
  void FinalDrain(PendingMap* pending);

  std::string name_;

  /// Columnar projections maintained at epoch-commit granularity; nullptr
  /// unless EnableColumnStore was called. Published only by the single
  /// commit context, read by any query thread.
  std::unique_ptr<storage::ColumnStore> column_store_;
  /// Newest timestamp the commit context fully applied (epoch max or
  /// heartbeat) — the watermark of the shutdown column-store flush. Written
  /// only by the commit context; Stop() reads it after joining.
  Timestamp last_applied_ts_ = kInvalidTimestamp;

  EpochSource* source_ = nullptr;
  ReplayRecoveryOptions recovery_;
  int pipeline_depth_ = 1;
  std::function<void(const ShippedEpoch&)> commit_hook_;

  /// Observability (resolved once per instrument; aggregated process-wide).
  obs::Counter* epochs_applied_metric_;
  obs::Counter* txns_applied_metric_;
  obs::Counter* records_applied_metric_;
  obs::Counter* bytes_applied_metric_;
  obs::Counter* heartbeats_applied_metric_;
  obs::Counter* epochs_retried_metric_;
  obs::Counter* duplicates_dropped_metric_;
  obs::Counter* corrupt_dropped_metric_;
  obs::Counter* pipeline_stalls_metric_;
  obs::Gauge* pipeline_depth_metric_;
  obs::Gauge* pipeline_occupancy_metric_;

  /// Prepare→commit hand-off (pipeline_depth > 1 only). Occupancy is
  /// pipe_.size() + in_commit_; ApplyNext blocks while it equals the depth.
  std::mutex pipe_mu_;
  std::condition_variable pipe_ready_cv_;
  std::condition_variable pipe_space_cv_;
  std::deque<PipelineItem> pipe_;
  int in_commit_ = 0;
  bool pipe_closed_ = false;

  std::thread main_thread_;
  std::thread commit_thread_;
  std::mutex lifecycle_mu_;
  std::atomic<bool> started_{false};

  /// Background column-merge worker (column_store_ set only): the commit
  /// context posts the newest applied watermark via RequestColumnPublish and
  /// moves on; this thread coalesces the requests — when replay outruns it,
  /// intermediate watermarks collapse into one rebuild at the latest — and
  /// runs ColumnStore::Publish off the replay critical path. Queries stay
  /// exact in the gap through the residual top-up. Stop() drains the worker,
  /// then force-flushes, so a stopped backup is always fully chunked.
  void ColumnMergeLoop();
  void RequestColumnPublish(Timestamp ts, bool force);
  std::thread column_thread_;
  std::mutex col_mu_;
  std::condition_variable col_cv_;
  Timestamp col_requested_ = kInvalidTimestamp;
  bool col_force_ = false;
  bool col_stop_ = false;

  mutable std::mutex error_mu_;
  Status error_;
  std::atomic<bool> error_flag_{false};

  std::atomic<bool> checkpoint_requested_{false};
};

}  // namespace aets

#endif  // AETS_REPLAY_REPLAYER_BASE_H_
