#ifndef AETS_REPLAY_SHARDED_BACKUP_H_
#define AETS_REPLAY_SHARDED_BACKUP_H_

#include <memory>
#include <string>
#include <vector>

#include "aets/catalog/shard_map.h"
#include "aets/replay/aets_replayer.h"
#include "aets/replay/replayer.h"
#include "aets/replay/snapshot_coordinator.h"

namespace aets {

/// N in-process backup shards behind the single-replayer interface (ISSUE 7
/// tentpole, DESIGN.md §11). Each shard is a full ReplayerBase-derived
/// replayer — its own channel, pipeline depth, sticky error latch, and
/// TableStore — consuming its sub-epoch stream from the sharded LogShipper.
/// The facade routes per-table reads to the owning shard and answers global
/// visibility through a GlobalSnapshotCoordinator, so existing callers
/// (WaitVisible, the sim oracle, the bench harness) see one Replayer whose
/// parallelism is pipeline_depth × shard_count.
///
/// Failure semantics: a shard that latches a sticky error freezes its
/// watermark; GlobalVisibleTs() (the coordinator minimum) freezes with it.
/// Healthy shards keep replaying — per-table reads on their tables stay
/// fresh — but no cross-shard snapshot past the failure point is ever
/// promised.
class ShardedBackup : public Replayer {
 public:
  /// `map` must outlive the backup; `shards[i]` replays the tables
  /// `map->TablesOnShard(i)` (each shard is built over the full catalog —
  /// tables it does not own simply stay empty in its store).
  ShardedBackup(const ShardMap* map,
                std::vector<std::unique_ptr<Replayer>> shards);
  ~ShardedBackup() override;

  /// Applies one NACK source to every shard. With a sharded LogShipper use
  /// SetShardEpochSource(i, shipper.shard_source(i)) instead, so each shard
  /// recovers its own sub-epoch stream.
  void SetEpochSource(EpochSource* source) override;
  void SetShardEpochSource(int shard, EpochSource* source);

  Status Start() override;
  void Stop() override;

  /// Routed to the shard owning `table` (exact per-table freshness; may run
  /// ahead of the global snapshot frontier).
  Timestamp TableVisibleTs(TableId table) const override;

  /// The cross-shard safe frontier: GlobalSnapshotCoordinator minimum over
  /// every shard's own global watermark.
  Timestamp GlobalVisibleTs() const override;

  /// Shard 0's store — only meaningful for single-store callers that predate
  /// sharding. Snapshot readers must use StoreForTable().
  TableStore* store() override;
  TableStore* StoreForTable(TableId table) override;
  /// Routed to the owning shard's columnar projection (nullptr when that
  /// shard maintains none).
  const storage::ColumnStore* ColumnStoreForTable(TableId table) const override;

  /// Aggregated over all shards: counters sum; wall_start is the earliest
  /// shard start, wall_end the latest shard end (so TxnsPerSec reflects the
  /// parallel aggregate).
  const ReplayStats& stats() const override;
  std::string name() const override;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  Replayer* shard(int i) { return shards_[static_cast<size_t>(i)].get(); }
  const ShardMap& shard_map() const { return *map_; }
  GlobalSnapshotCoordinator& coordinator() { return coordinator_; }
  const GlobalSnapshotCoordinator& coordinator() const { return coordinator_; }

 private:
  const ShardMap* map_;
  std::vector<std::unique_ptr<Replayer>> shards_;
  GlobalSnapshotCoordinator coordinator_;
  mutable ReplayStats agg_;
};

/// Builds one AetsReplayer per shard over `catalog`, reading from
/// `shard_channels[i]`, with `base`'s thread budget split across shards by
/// SplitThreadBudget — proportional to each shard's predicted load (the sum
/// of base.initial_rates over its tables), even when no rates are given.
/// Requires base.replay_threads >= num_shards and base.commit_threads >=
/// num_shards (every shard needs both a replay and a commit context).
std::unique_ptr<ShardedBackup> MakeShardedAetsBackup(
    const Catalog* catalog, const ShardMap* map,
    const std::vector<EpochChannel*>& shard_channels, const AetsOptions& base);

}  // namespace aets

#endif  // AETS_REPLAY_SHARDED_BACKUP_H_
