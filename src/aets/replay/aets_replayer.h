#ifndef AETS_REPLAY_AETS_REPLAYER_H_
#define AETS_REPLAY_AETS_REPLAYER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "aets/catalog/catalog.h"
#include "aets/common/thread_pool.h"
#include "aets/log/shipped_epoch.h"
#include "aets/obs/metrics.h"
#include "aets/replay/replayer_base.h"
#include "aets/replay/table_group.h"
#include "aets/replay/thread_allocator.h"
#include "aets/replication/channel.h"
#include "aets/storage/checkpoint.h"
#include "aets/storage/table_store.h"

namespace aets {

/// Grouping policy selector for AetsOptions.
enum class GroupingMode {
  kPerTable,       // one group per table (CH-benCHmark configuration)
  kByAccessRate,   // DBSCAN clustering on access rate (BusTracker)
  kStatic,         // caller-provided hot groups (TPC-C configuration)
  kSingle,         // everything in one group (the ungrouped-TPLR baseline)
};

/// Configuration of the AETS framework. The ablation switches (`two_stage`,
/// `adaptive_alloc`, `commit_threads = 1`) degrade AETS into the paper's
/// comparison points.
struct AetsOptions {
  // ---- Parallelism: threads, pipeline, shards (DESIGN.md §9, §11) -------
  // One replayer's concurrency is replay_threads × commit_threads ×
  // pipeline_depth. The third axis, shard_count, lives OUTSIDE this struct:
  // MakeShardedAetsBackup (replay/sharded_backup.h) builds N replayers from
  // one AetsOptions, treating replay_threads and commit_threads as TOTAL
  // budgets divided across shards by SplitThreadBudget — so a sharded and an
  // unsharded backup configured from the same options consume the same
  // thread resources.

  /// Total replay worker threads (T in Section IV-B).
  int replay_threads = 4;
  /// Committer pool size; each group's commit runs on one thread, groups
  /// commit in parallel up to this bound. 1 models a single commit thread.
  int commit_threads = 4;
  /// Cross-epoch pipeline depth (DESIGN.md §9): how many epochs may sit
  /// between dispatch/translation and commit at once. 1 reproduces the fully
  /// serial main loop; 2–4 overlap epoch N+1's dispatch + phase-1
  /// translation with epoch N's phase-2 commit. Watermark publication stays
  /// strictly epoch-ordered at any depth.
  int pipeline_depth = 2;

  // ---- Two-stage replay & allocation (Section IV-B ablations) -----------

  /// Replay hot groups in stage one, cold groups in stage two.
  bool two_stage = true;
  /// Weigh the thread allocation by access rate (false = AETS-NOAC).
  bool adaptive_alloc = true;

  // ---- Grouping ---------------------------------------------------------

  GroupingMode grouping = GroupingMode::kPerTable;
  /// Hot groups for GroupingMode::kStatic.
  std::vector<std::vector<TableId>> static_hot_groups;
  /// DBSCAN neighbor radius in log10(rate) space for kByAccessRate.
  double dbscan_eps = 0.3;
  /// Minimum predicted access rate for a table to count as hot (filters
  /// predictor noise on unqueried tables).
  double hot_rate_threshold = 0.5;

  /// Called at each epoch start for the predicted per-table access rates
  /// (the Table Access Rate Predictor feeding component 2 of Fig. 3). When
  /// null, `initial_rates` is used throughout.
  std::function<std::vector<double>()> rate_provider;
  std::vector<double> initial_rates;
  /// Re-run the grouping policy whenever the provided rates change (the
  /// adaptive workload-shift path; static groupings ignore this).
  bool regroup_on_rate_change = true;

  // ---- Columnar projections (DESIGN.md §13) -----------------------------

  /// Maintain watermark-versioned columnar chunks incrementally at epoch
  /// commit, so analytic scans (ChQueryExecutor, QueryServer) run
  /// vectorized over column vectors instead of walking version chains.
  /// False restores the pure row-store backup (all scans take the row
  /// path).
  bool column_store_enabled = true;
  /// Target rows per columnar chunk (storage::ColumnStoreOptions).
  size_t column_chunk_rows = 4096;
  /// Columnar publish amortization (storage::ColumnStoreOptions
  /// ::publish_min_dirty): the background merge worker only rolls a
  /// table's dirty backlog into new chunks once it reaches
  /// max(this, live_rows/8); until then queries resolve the backlog
  /// through the residual top-up. Heartbeats and shutdown force-flush, so
  /// an idle or drained backup is always fully chunked. 0 rebuilds at
  /// every posted watermark.
  size_t column_publish_min_dirty = 4096;
  /// Display name (baselines built on this engine override it).
  std::string name = "AETS";

  /// TEST-ONLY fault hook: added to the commit timestamp when the commit
  /// path publishes tg_cmt_ts. Any non-zero value announces visibility the
  /// group has not earned — the off-by-one the simulation oracle must catch
  /// (and shrink to a minimal scenario). Never set outside tests.
  Timestamp test_tg_publish_skew = 0;
};

/// The AETS framework (paper Fig. 3): log parser + dispatcher, fine-grained
/// table grouping, adaptive thread resource allocation, the TPLR two-phase
/// parallel replay algorithm with per-group commit threads, and the
/// visibility timestamps of Algorithm 3.
///
/// One AetsReplayer drives one backup node: it pulls encoded epochs from its
/// channel in order, dispatches + phase-1-translates each epoch on the main
/// loop thread (PrepareEpoch), and installs + publishes it on the commit
/// context (CommitEpoch) — with pipeline_depth > 1 the two phases of
/// adjacent epochs overlap (DESIGN.md §9).
class AetsReplayer : public ReplayerBase {
 public:
  AetsReplayer(const Catalog* catalog, EpochChannel* channel,
               AetsOptions options);
  ~AetsReplayer() override;

  Timestamp TableVisibleTs(TableId table) const override;
  Timestamp GlobalVisibleTs() const override;

  /// Current grouping (for tests / diagnostics).
  std::vector<TableGroup> groups() const;

  /// Bootstraps this backup from a checkpoint image instead of replaying
  /// history: loads the rows, publishes the snapshot timestamp, and arms
  /// the epoch sequence at the checkpoint's next epoch id. Must be called
  /// before Start(), on a fresh replayer.
  Status Bootstrap(const std::string& checkpoint_path);

  /// Writes a checkpoint of the current backup state at the global
  /// watermark. Only valid while stopped (quiesced) — checkpoint a backup
  /// after Stop(), or bootstrap-chain across process restarts.
  Status WriteCheckpoint(const std::string& path) const;

  /// Same image, but callable while the replayer is running. The CALLER
  /// must guarantee quiescence at the moment of the call: the channel
  /// drained and the watermark caught up to the primary (flush an epoch,
  /// then poll GlobalVisibleTs()). The MVCC scan at the published watermark
  /// is always consistent — the risk of calling this mid-apply is only that
  /// the image lands at an older watermark than intended, never that it is
  /// torn. The durable-replay tool uses this for periodic checkpoints
  /// between epochs.
  Status WriteLiveCheckpoint(const std::string& path) const;

 protected:
  Status StartWorkers() override;
  void StopWorkers() override;
  std::unique_ptr<PreparedEpoch> PrepareEpoch(
      const ShippedEpoch& epoch) override;
  void CommitEpoch(const ShippedEpoch& epoch,
                   std::unique_ptr<PreparedEpoch> prepared) override;
  void ProcessHeartbeat(const ShippedEpoch& epoch) override;

 private:
  /// A translated-but-uncommitted cell: the TPLR phase-1 output. Holds the
  /// pinned Memtable node and the version to append at commit, plus the
  /// owning table so the commit path can feed the column store's dirty set.
  struct PendingCell {
    MemNode* node;
    VersionCell cell;
    TableId table;
  };

  /// One transaction's log records routed to one group ("minor pieces" of a
  /// transaction, Section III-C). Offsets point into the epoch payload; the
  /// full value decode happens in phase 1, in parallel.
  struct Fragment {
    TxnId txn_id = kInvalidTxnId;
    Timestamp commit_ts = kInvalidTimestamp;
    std::vector<size_t> offsets;
    std::vector<PendingCell> cells;
    std::atomic<bool> translated{false};
    /// Set when translation failed mid-fragment: the cells are incomplete
    /// and must never be committed (a partial transaction is worse than a
    /// stalled watermark).
    std::atomic<bool> poisoned{false};
  };

  /// Per-group per-epoch replay state: the fragment list doubles as the
  /// commit_order_queue (it is built in primary commit order), and the
  /// per-fragment translated flags implement the waiting_commit_list.
  struct GroupEpochState {
    std::vector<std::unique_ptr<Fragment>> fragments;
    std::atomic<size_t> next_claim{0};
    size_t bytes = 0;
  };

  /// An immutable grouping generation. Each prepared epoch pins the
  /// generation it was dispatched under, so a regroup triggered while later
  /// epochs prepare can never invalidate the group/table lists a commit (or
  /// an in-flight translate task) still reads.
  struct GroupingSnapshot {
    std::vector<TableGroup> groups;
    std::vector<int> table_to_group;
  };

  /// Everything PrepareEpoch hands across the pipeline to CommitEpoch. Its
  /// destructor quiesces this epoch's translate tasks, so a dropped
  /// (post-error-latch) item can never leave a worker touching freed state.
  struct PreparedAets : PreparedEpoch {
    ~PreparedAets() override;
    /// Spins until every translate task launched for this epoch returned.
    void WaitTranslationDrained();

    std::shared_ptr<const GroupingSnapshot> grouping;
    /// Pins the wire bytes the fragments' offsets point into.
    std::shared_ptr<const std::string> payload;
    std::vector<GroupEpochState> gstate;
    std::vector<int> hot_groups;
    std::vector<int> cold_groups;
    /// Groups that received no log entries this epoch; their tables publish
    /// max_commit_ts only after the epoch commits cleanly.
    std::vector<int> quiet_groups;
    std::atomic<int> outstanding_translate{0};
    int64_t apply_start_us = 0;
  };

  void RefreshRates();
  void RebuildGroups(const std::vector<double>& rates);
  std::shared_ptr<const GroupingSnapshot> grouping_snapshot() const;
  bool DispatchEpoch(const ShippedEpoch& epoch,
                     const GroupingSnapshot& grouping,
                     std::vector<GroupEpochState>* gstate);
  /// Plans the stage's thread allocation and submits its phase-1 translate
  /// tasks to the replay pool (asynchronously — the commit stage, possibly
  /// epochs later, synchronizes on the per-fragment translated flags).
  void LaunchTranslate(PreparedAets* prep,
                       const std::vector<int>& member_groups);
  /// Runs the stage's phase-2 group commits and waits for them to finish.
  void CommitStage(PreparedAets* prep, const std::vector<int>& member_groups);
  void TranslateGroup(const std::string& payload, GroupEpochState* gs);
  void CommitGroup(GroupEpochState* gs, const TableGroup& group);

  AetsOptions options_;

  std::vector<std::atomic<Timestamp>> table_ts_;
  std::atomic<Timestamp> global_ts_{kInvalidTimestamp};

  mutable std::mutex groups_mu_;
  std::shared_ptr<const GroupingSnapshot> grouping_;
  std::vector<double> current_rates_;

  /// Observability (resolved once per instrument; aggregated process-wide).
  obs::Counter* commit_spin_waits_metric_;
  obs::Counter* regroup_metric_;
  obs::Counter* realloc_metric_;
  obs::Gauge* watermark_metric_;
  obs::Gauge* num_groups_metric_;
  Histogram* epoch_apply_us_metric_;
  /// Per-group thread-count gauges (`allocator.group_threads.g<i>`),
  /// re-resolved on regroup; `last_alloc_` detects reallocation events.
  /// Touched only by the main replay thread.
  std::vector<obs::Gauge*> group_thread_gauges_;
  std::vector<int> last_alloc_;

  std::unique_ptr<ThreadPool> replay_pool_;
  std::unique_ptr<ThreadPool> commit_pool_;
};

}  // namespace aets

#endif  // AETS_REPLAY_AETS_REPLAYER_H_
