#include "aets/replay/replayer.h"

#include <chrono>
#include <limits>
#include <thread>

namespace aets {

bool IsVisible(const Replayer& replayer, const std::vector<TableId>& tables,
               Timestamp qts) {
  if (replayer.GlobalVisibleTs() >= qts) return true;
  Timestamp min_tg = std::numeric_limits<Timestamp>::max();
  for (TableId t : tables) {
    min_tg = std::min(min_tg, replayer.TableVisibleTs(t));
  }
  return min_tg >= qts;
}

int64_t WaitVisible(const Replayer& replayer, const std::vector<TableId>& tables,
                    Timestamp qts) {
  int64_t start = MonotonicMicros();
  if (IsVisible(replayer, tables, qts)) return 0;
  int spins = 0;
  while (!IsVisible(replayer, tables, qts)) {
    // Wait until the replaying of the required log entries is completed
    // (Algorithm 3 line 9). Spin briefly, yield a few times, then sleep so
    // waiting queries do not steal cycles from the replay workers.
    ++spins;
    if (spins > 4096) {
      std::this_thread::sleep_for(std::chrono::microseconds(20));
    } else if (spins > 64) {
      std::this_thread::yield();
    }
  }
  return MonotonicMicros() - start;
}

}  // namespace aets
