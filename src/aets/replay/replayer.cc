#include "aets/replay/replayer.h"

#include <chrono>
#include <limits>
#include <thread>

#include "aets/obs/metrics.h"

namespace aets {

bool IsVisible(const Replayer& replayer, const std::vector<TableId>& tables,
               Timestamp qts) {
  if (replayer.GlobalVisibleTs() >= qts) return true;
  Timestamp min_tg = std::numeric_limits<Timestamp>::max();
  for (TableId t : tables) {
    min_tg = std::min(min_tg, replayer.TableVisibleTs(t));
  }
  return min_tg >= qts;
}

int64_t WaitVisible(const Replayer& replayer, const std::vector<TableId>& tables,
                    Timestamp qts) {
  static obs::Counter* queries = obs::GetCounter("visibility.queries");
  static obs::Counter* blocked = obs::GetCounter("visibility.blocked_queries");
  static Histogram* wait_us = obs::GetHistogram("visibility.wait_us");
  queries->Add(1);
  int64_t start = MonotonicMicros();
  if (IsVisible(replayer, tables, qts)) {
    wait_us->Record(0);
    return 0;
  }
  blocked->Add(1);
  int spins = 0;
  while (!IsVisible(replayer, tables, qts)) {
    // Wait until the replaying of the required log entries is completed
    // (Algorithm 3 line 9). Spin briefly, yield a few times, then sleep so
    // waiting queries do not steal cycles from the replay workers.
    ++spins;
    if (spins > 4096) {
      std::this_thread::sleep_for(std::chrono::microseconds(20));
    } else if (spins > 64) {
      std::this_thread::yield();
    }
  }
  int64_t waited = MonotonicMicros() - start;
  wait_us->Record(waited);
  return waited;
}

}  // namespace aets
