#include "aets/replay/thread_allocator.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "aets/common/macros.h"

namespace aets {

double UrgencyFactor(double access_rate) {
  // log10 damping keeps a 1000x access-rate gap from translating into a
  // 1000x thread gap (paper Section IV-B's discussion of log(r)).
  return std::log10(std::max(access_rate, 1.0)) + 1.0;
}

std::vector<int> AllocateThreads(const std::vector<GroupDemand>& demands,
                                 int total, bool use_access_rate) {
  AETS_CHECK(total >= 0);
  const size_t n = demands.size();
  std::vector<int> alloc(n, 0);
  if (n == 0 || total == 0) return alloc;

  std::vector<double> weights(n, 0.0);
  double weight_sum = 0;
  for (size_t i = 0; i < n; ++i) {
    double lambda = use_access_rate ? UrgencyFactor(demands[i].access_rate) : 1.0;
    weights[i] = demands[i].bytes > 0 ? lambda * demands[i].bytes : 0.0;
    weight_sum += weights[i];
  }
  if (weight_sum <= 0) return alloc;

  // Largest-remainder apportionment of `total` threads over the weights.
  std::vector<double> ideal(n);
  int assigned = 0;
  for (size_t i = 0; i < n; ++i) {
    ideal[i] = static_cast<double>(total) * weights[i] / weight_sum;
    alloc[i] = static_cast<int>(ideal[i]);
    assigned += alloc[i];
  }
  // Remainder ties are broken by group content (weight, then raw demand),
  // never by input position, so permuting the demand vector permutes the
  // allocation identically.
  auto remainder = [&](size_t i) { return ideal[i] - std::floor(ideal[i]); };
  auto more_urgent = [&](size_t a, size_t b) {
    if (weights[a] != weights[b]) return weights[a] > weights[b];
    if (demands[a].bytes != demands[b].bytes) {
      return demands[a].bytes > demands[b].bytes;
    }
    return demands[a].access_rate > demands[b].access_rate;
  };
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (remainder(a) != remainder(b)) return remainder(a) > remainder(b);
    return more_urgent(a, b);
  });
  for (size_t k = 0; assigned < total; k = (k + 1) % n) {
    size_t i = order[k];
    if (weights[i] <= 0) continue;
    ++alloc[i];
    ++assigned;
  }

  // Every group with pending work should make progress this epoch: move
  // threads from the largest allocations to demand-bearing zero groups,
  // most urgent recipients first, donating from the least urgent group
  // among the richest.
  std::vector<size_t> starved;
  for (size_t i = 0; i < n; ++i) {
    if (weights[i] > 0 && alloc[i] == 0) starved.push_back(i);
  }
  std::sort(starved.begin(), starved.end(), more_urgent);
  for (size_t i : starved) {
    size_t donor = n;
    for (size_t j = 0; j < n; ++j) {
      if (alloc[j] <= 1) continue;
      if (donor == n || alloc[j] > alloc[donor] ||
          (alloc[j] == alloc[donor] && more_urgent(donor, j))) {
        donor = j;
      }
    }
    if (donor == n) break;  // nothing left to take
    --alloc[donor];
    alloc[i] = 1;
  }
  return alloc;
}

std::vector<int> SplitThreadBudget(const std::vector<double>& shard_loads,
                                   int total) {
  const size_t n = shard_loads.size();
  AETS_CHECK(n >= 1);
  AETS_CHECK_MSG(total >= static_cast<int>(n),
                 "thread budget smaller than shard count");
  // Floor of one thread per shard: a shard with no predicted load still has
  // to consume its sub-epoch stream (heartbeats for untouched epochs) or the
  // global safe timestamp would freeze at that shard's watermark.
  std::vector<int> alloc(n, 1);
  int spare = total - static_cast<int>(n);
  if (spare == 0) return alloc;

  double load_sum = 0;
  for (double load : shard_loads) load_sum += std::max(load, 0.0);
  std::vector<double> weights(n);
  for (size_t i = 0; i < n; ++i) {
    // All-zero (or negative) loads: nothing is predicted, split evenly.
    weights[i] = load_sum > 0 ? std::max(shard_loads[i], 0.0) : 1.0;
  }
  if (load_sum <= 0) load_sum = static_cast<double>(n);

  // Largest-remainder apportionment of the spare threads over the loads,
  // ties broken toward the heavier shard, then the lower index (stable for
  // equal-load shards).
  std::vector<double> ideal(n);
  int assigned = 0;
  for (size_t i = 0; i < n; ++i) {
    ideal[i] = static_cast<double>(spare) * weights[i] / load_sum;
    alloc[i] += static_cast<int>(ideal[i]);
    assigned += static_cast<int>(ideal[i]);
  }
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    double ra = ideal[a] - std::floor(ideal[a]);
    double rb = ideal[b] - std::floor(ideal[b]);
    if (ra != rb) return ra > rb;
    if (weights[a] != weights[b]) return weights[a] > weights[b];
    return a < b;
  });
  for (size_t k = 0; assigned < spare; k = (k + 1) % n) {
    ++alloc[order[k]];
    ++assigned;
  }
  return alloc;
}

}  // namespace aets
