#ifndef AETS_REPLAY_ACCESS_TRACKER_H_
#define AETS_REPLAY_ACCESS_TRACKER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "aets/catalog/schema.h"

namespace aets {

/// Records per-table OLAP access counts in discrete time slots. The history
/// matrix it produces ([slot][table] access counts) is the training and
/// inference input of the table-access-rate predictors (paper Section IV-A:
/// "for each table, we calculate the total number of queries over it in a
/// time slot").
class AccessTracker {
 public:
  explicit AccessTracker(size_t num_tables);

  AccessTracker(const AccessTracker&) = delete;
  AccessTracker& operator=(const AccessTracker&) = delete;

  /// Counts one access to `table` in the current slot. Thread-safe.
  void RecordAccess(TableId table);

  /// Counts one access to every table in `tables`.
  void RecordQuery(const std::vector<TableId>& tables);

  /// Closes the current slot and opens a new one. The driver advances slots
  /// on its experiment cadence (e.g. once per simulated minute).
  void AdvanceSlot();

  size_t num_tables() const { return counts_.size(); }
  size_t num_slots() const;

  /// Per-table counts of the current (open) slot.
  std::vector<double> CurrentSlot() const;

  /// History matrix of all closed slots: history[slot][table].
  std::vector<std::vector<double>> History() const;

  /// Mean per-table rate over the last `window` closed slots (the AETS-HA
  /// baseline's estimate).
  std::vector<double> MeanRate(size_t window) const;

  /// Per-table counts of the most recently closed slot.
  std::vector<double> LastSlot() const;

 private:
  std::vector<std::atomic<uint64_t>> counts_;  // open slot
  mutable std::mutex mu_;
  std::vector<std::vector<double>> history_;  // closed slots
};

}  // namespace aets

#endif  // AETS_REPLAY_ACCESS_TRACKER_H_
