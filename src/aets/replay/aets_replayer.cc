#include "aets/replay/aets_replayer.h"

#include <algorithm>
#include <utility>

#include "aets/common/backoff.h"
#include "aets/common/macros.h"
#include "aets/log/codec.h"
#include "aets/obs/trace.h"

namespace aets {

AetsReplayer::PreparedAets::~PreparedAets() { WaitTranslationDrained(); }

void AetsReplayer::PreparedAets::WaitTranslationDrained() {
  SpinBackoff backoff;
  while (outstanding_translate.load(std::memory_order_acquire) != 0) {
    backoff.Pause();
  }
}

AetsReplayer::AetsReplayer(const Catalog* catalog, EpochChannel* channel,
                           AetsOptions options)
    : ReplayerBase(catalog, channel, options.name),
      options_(std::move(options)),
      table_ts_(catalog->num_tables()),
      commit_spin_waits_metric_(obs::GetCounter("replay.commit_spin_waits")),
      regroup_metric_(obs::GetCounter("allocator.regroups")),
      realloc_metric_(obs::GetCounter("allocator.reallocations")),
      watermark_metric_(obs::GetGauge("replay.global_visible_ts")),
      num_groups_metric_(obs::GetGauge("allocator.groups")),
      epoch_apply_us_metric_(obs::GetHistogram("replay.epoch_apply_us")) {
  for (auto& ts : table_ts_) ts.store(kInvalidTimestamp, std::memory_order_relaxed);
  current_rates_ = options_.initial_rates;
  current_rates_.resize(catalog_->num_tables(), 0.0);
  RebuildGroups(current_rates_);
  SetPipelineDepth(options_.pipeline_depth);
  if (options_.column_store_enabled) {
    storage::ColumnStoreOptions cs;
    cs.chunk_rows = options_.column_chunk_rows;
    cs.publish_min_dirty = options_.column_publish_min_dirty;
    EnableColumnStore(cs);
  }
}

AetsReplayer::~AetsReplayer() { Stop(); }

Status AetsReplayer::StartWorkers() {
  if (options_.replay_threads <= 0 || options_.commit_threads <= 0) {
    return Status::InvalidArgument("thread counts must be positive");
  }
  // Bounded queues: the pipeline depth already caps how many epochs feed the
  // pools, so these bounds are a backstop sized to the worst-case task count
  // per in-flight epoch — hitting one blocks the producer (backpressure)
  // instead of growing an unbounded deque.
  size_t depth = static_cast<size_t>(std::max(1, pipeline_depth()));
  size_t replay_cap = depth * static_cast<size_t>(options_.replay_threads + 1);
  replay_pool_ =
      std::make_unique<ThreadPool>(options_.replay_threads, replay_cap);
  commit_pool_ = std::make_unique<ThreadPool>(options_.commit_threads,
                                              /*max_queue=*/1024);
  return Status::OK();
}

void AetsReplayer::StopWorkers() {
  replay_pool_.reset();
  commit_pool_.reset();
}

Timestamp AetsReplayer::TableVisibleTs(TableId table) const {
  AETS_CHECK(table < table_ts_.size());
  return table_ts_[table].load(std::memory_order_acquire);
}

Timestamp AetsReplayer::GlobalVisibleTs() const {
  return global_ts_.load(std::memory_order_acquire);
}

std::vector<TableGroup> AetsReplayer::groups() const {
  std::lock_guard<std::mutex> lk(groups_mu_);
  return grouping_->groups;
}

std::shared_ptr<const AetsReplayer::GroupingSnapshot>
AetsReplayer::grouping_snapshot() const {
  std::lock_guard<std::mutex> lk(groups_mu_);
  return grouping_;
}

Status AetsReplayer::Bootstrap(const std::string& checkpoint_path) {
  if (started()) return Status::InvalidArgument("Bootstrap after Start");
  if (expected_epoch_ != 0 || global_ts_.load() != kInvalidTimestamp) {
    return Status::InvalidArgument("Bootstrap on a non-fresh replayer");
  }
  auto info = Checkpointer::Restore(checkpoint_path, &store_);
  if (!info.ok()) return info.status();
  for (auto& ts : table_ts_) {
    ts.store(info->snapshot_ts, std::memory_order_relaxed);
  }
  global_ts_.store(info->snapshot_ts, std::memory_order_relaxed);
  expected_epoch_ = info->next_epoch_id;
  // Seed generation 0 of the columnar projections from the restored rows —
  // without this, keys that never change again would stay invisible to the
  // column path forever (chunks only track dirty keys).
  if (column_store() != nullptr) {
    column_store()->SeedFromRows(info->snapshot_ts);
  }
  return Status::OK();
}

Status AetsReplayer::WriteCheckpoint(const std::string& path) const {
  if (started()) return Status::InvalidArgument("WriteCheckpoint while running");
  return Checkpointer::Write(store_, global_ts_.load(), expected_epoch_, path);
}

Status AetsReplayer::WriteLiveCheckpoint(const std::string& path) const {
  // Read the epoch cursor before the watermark: if an epoch slips in
  // between the two loads, the image claims an older next-epoch than the
  // rows it holds could support — and re-replaying an epoch is idempotent
  // here (full-image inserts/deletes at fixed commit timestamps), while
  // skipping one never is.
  EpochId next_epoch = next_expected_epoch();
  Timestamp watermark = global_ts_.load(std::memory_order_acquire);
  if (watermark == kInvalidTimestamp) {
    return Status::InvalidArgument("live checkpoint before any watermark");
  }
  return Checkpointer::Write(store_, watermark, next_epoch, path);
}

void AetsReplayer::ProcessHeartbeat(const ShippedEpoch& epoch) {
  // Heartbeats ride the pipeline queue behind every data epoch shipped
  // before them, and the commit context is single, so all data older than
  // heartbeat_ts is already replayed; the whole backup may publish it.
  for (auto& ts : table_ts_) StoreMaxTimestamp(ts, epoch.heartbeat_ts);
  StoreMaxTimestamp(global_ts_, epoch.heartbeat_ts);
  watermark_metric_->Set(
      static_cast<int64_t>(global_ts_.load(std::memory_order_relaxed)));
}

void AetsReplayer::RefreshRates() {
  if (!options_.rate_provider) return;
  std::vector<double> rates = options_.rate_provider();
  rates.resize(catalog_->num_tables(), 0.0);
  bool changed = rates != current_rates_;
  current_rates_ = std::move(rates);
  if (!changed) return;
  if (options_.regroup_on_rate_change &&
      (options_.grouping == GroupingMode::kPerTable ||
       options_.grouping == GroupingMode::kByAccessRate)) {
    RebuildGroups(current_rates_);
  } else {
    // Keep the group shapes; refresh their access rates for the allocator.
    // Installed as a fresh snapshot — epochs already in the pipeline keep
    // reading the generation they were dispatched under.
    auto next = std::make_shared<GroupingSnapshot>(*grouping_snapshot());
    for (auto& g : next->groups) {
      g.access_rate = 0;
      for (TableId t : g.tables) g.access_rate += current_rates_[t];
      if (options_.grouping != GroupingMode::kStatic &&
          options_.grouping != GroupingMode::kSingle) {
        g.hot = g.access_rate >= options_.hot_rate_threshold;
      }
    }
    std::lock_guard<std::mutex> lk(groups_mu_);
    grouping_ = std::move(next);
  }
}

void AetsReplayer::RebuildGroups(const std::vector<double>& rates) {
  auto next = std::make_shared<GroupingSnapshot>();
  switch (options_.grouping) {
    case GroupingMode::kPerTable:
      next->groups = TableGrouping::PerTable(rates, options_.hot_rate_threshold);
      break;
    case GroupingMode::kByAccessRate:
      next->groups = TableGrouping::ByAccessRate(rates, options_.dbscan_eps,
                                                 options_.hot_rate_threshold);
      break;
    case GroupingMode::kStatic:
      next->groups = TableGrouping::Static(options_.static_hot_groups, rates,
                                           catalog_->num_tables());
      break;
    case GroupingMode::kSingle:
      next->groups = TableGrouping::Single(catalog_->num_tables(), rates);
      break;
  }
  next->table_to_group =
      TableGrouping::TableToGroup(next->groups, catalog_->num_tables());
  size_t num_groups = next->groups.size();
  {
    std::lock_guard<std::mutex> lk(groups_mu_);
    grouping_ = std::move(next);
  }
  regroup_metric_->Add(1);
  num_groups_metric_->Set(static_cast<int64_t>(num_groups));
  group_thread_gauges_.resize(num_groups);
  for (size_t gi = 0; gi < num_groups; ++gi) {
    group_thread_gauges_[gi] = obs::GetGauge("allocator.group_threads.g" +
                                             std::to_string(gi));
  }
  last_alloc_.assign(num_groups, -1);
}

std::unique_ptr<ReplayerBase::PreparedEpoch> AetsReplayer::PrepareEpoch(
    const ShippedEpoch& epoch) {
  AETS_TRACE_SPAN("replay.prepare");
  auto prep = std::make_unique<PreparedAets>();
  prep->apply_start_us = MonotonicMicros();
  RefreshRates();
  prep->grouping = grouping_snapshot();
  prep->payload = epoch.payload;
  const GroupingSnapshot& grouping = *prep->grouping;
  prep->gstate = std::vector<GroupEpochState>(grouping.groups.size());
  {
    AETS_TRACE_SPAN("replay.dispatch");
    ScopedTimerNs timer(&stats_.dispatch_ns);
    if (!DispatchEpoch(epoch, grouping, &prep->gstate)) return prep;
  }

  // Partition groups into the two stages. Without two-stage replay every
  // group runs in one stage. Groups that received no log entries this epoch
  // have nothing pending, but their tables may publish the epoch's maximum
  // commit timestamp only after the whole epoch commits cleanly (see
  // CommitEpoch) — publishing here would let a later stage failure leave a
  // quiet table's watermark past the failure point.
  for (size_t gi = 0; gi < grouping.groups.size(); ++gi) {
    if (prep->gstate[gi].fragments.empty()) {
      prep->quiet_groups.push_back(static_cast<int>(gi));
    } else if (options_.two_stage && !grouping.groups[gi].hot) {
      prep->cold_groups.push_back(static_cast<int>(gi));
    } else {
      prep->hot_groups.push_back(static_cast<int>(gi));
    }
  }
  // Phase-1 translation starts now, possibly epochs ahead of its commit:
  // translate only pins Memtable nodes and builds pending cells, so it is
  // safe to overlap with the commit of earlier epochs. Hot groups enqueue
  // first so stage 1 is never starved behind cold work.
  LaunchTranslate(prep.get(), prep->hot_groups);
  LaunchTranslate(prep.get(), prep->cold_groups);
  return prep;
}

void AetsReplayer::CommitEpoch(const ShippedEpoch& epoch,
                               std::unique_ptr<PreparedEpoch> prepared) {
  AETS_TRACE_SPAN("replay.epoch");
  auto* prep = static_cast<PreparedAets*>(prepared.get());
  {
    AETS_TRACE_SPAN("replay.stage1_hot");
    ScopedTimerNs timer(&stats_.stage1_wall_ns);
    CommitStage(prep, prep->hot_groups);
  }
  {
    AETS_TRACE_SPAN("replay.stage2_cold");
    ScopedTimerNs timer(&stats_.stage2_wall_ns);
    CommitStage(prep, prep->cold_groups);
  }
  // Quiesce this epoch's translate tasks before reading the latch: a
  // poisoned fragment's SetError must not be outrun by the check below.
  prep->WaitTranslationDrained();

  // A failed epoch must not move any watermark past the failure point —
  // including the quiet groups, whose tables saw no log entries this epoch
  // but would otherwise announce visibility the epoch never earned.
  if (HasError()) return;

  const GroupingSnapshot& grouping = *prep->grouping;
  for (int gi : prep->quiet_groups) {
    for (TableId t : grouping.groups[static_cast<size_t>(gi)].tables) {
      StoreMaxTimestamp(table_ts_[t], epoch.max_commit_ts);
    }
  }
  StoreMaxTimestamp(global_ts_, epoch.max_commit_ts);
  stats_.txns.fetch_add(epoch.num_txns, std::memory_order_relaxed);
  watermark_metric_->Set(
      static_cast<int64_t>(global_ts_.load(std::memory_order_relaxed)));
  epoch_apply_us_metric_->Record(MonotonicMicros() - prep->apply_start_us);
}

bool AetsReplayer::DispatchEpoch(const ShippedEpoch& epoch,
                                 const GroupingSnapshot& grouping,
                                 std::vector<GroupEpochState>* gstate) {
  // The log parser + dispatcher (component 1 of Fig. 3): a single pass over
  // the metadata prefixes finds transaction boundaries and routes each DML
  // entry to its group, recording only the payload offset — values are
  // decoded later, in parallel, by the phase-1 replay workers.
  const std::string& data = *epoch.payload;
  size_t offset = 0;
  TxnId cur_txn = kInvalidTxnId;
  Timestamp cur_ts = kInvalidTimestamp;
  std::vector<Fragment*> open(grouping.groups.size(), nullptr);
  std::vector<int> touched;
  while (offset < data.size()) {
    size_t rec_start = offset;
    auto rec = LogCodec::DecodeMetadata(data, &offset);
    if (!rec.ok()) {
      SetError(rec.status());
      return false;
    }
    switch (rec->type) {
      case LogRecordType::kBegin:
        cur_txn = rec->txn_id;
        cur_ts = rec->timestamp;
        break;
      case LogRecordType::kCommit:
        for (int gi : touched) open[static_cast<size_t>(gi)] = nullptr;
        touched.clear();
        cur_txn = kInvalidTxnId;
        break;
      case LogRecordType::kHeartbeat:
        break;
      default: {  // DML
        if (cur_txn == kInvalidTxnId) {
          SetError(Status::Corruption("DML outside transaction"));
          return false;
        }
        if (rec->table_id >= grouping.table_to_group.size()) {
          SetError(Status::Corruption("DML for unknown table"));
          return false;
        }
        size_t gi = static_cast<size_t>(grouping.table_to_group[rec->table_id]);
        GroupEpochState& gs = (*gstate)[gi];
        if (open[gi] == nullptr) {
          auto frag = std::make_unique<Fragment>();
          frag->txn_id = cur_txn;
          frag->commit_ts = cur_ts;
          open[gi] = frag.get();
          gs.fragments.push_back(std::move(frag));
          touched.push_back(static_cast<int>(gi));
        }
        open[gi]->offsets.push_back(rec_start);
        gs.bytes += offset - rec_start;
        break;
      }
    }
  }
  return true;
}

void AetsReplayer::LaunchTranslate(PreparedAets* prep,
                                   const std::vector<int>& member_groups) {
  if (member_groups.empty()) return;
  const GroupingSnapshot& grouping = *prep->grouping;

  std::vector<GroupDemand> demands;
  demands.reserve(member_groups.size());
  for (int gi : member_groups) {
    demands.push_back(GroupDemand{
        static_cast<double>(prep->gstate[static_cast<size_t>(gi)].bytes),
        grouping.groups[static_cast<size_t>(gi)].access_rate});
  }
  std::vector<int> alloc =
      AllocateThreads(demands, options_.replay_threads, options_.adaptive_alloc);

  // Publish the allocation and count the epochs where it shifted (the
  // adaptive-allocation activity the paper's Fig. 13 sweeps).
  bool changed = false;
  for (size_t i = 0; i < member_groups.size(); ++i) {
    size_t gi = static_cast<size_t>(member_groups[i]);
    group_thread_gauges_[gi]->Set(alloc[i]);
    if (last_alloc_[gi] != alloc[i]) {
      if (last_alloc_[gi] >= 0) changed = true;
      last_alloc_[gi] = alloc[i];
    }
  }
  if (changed) realloc_metric_->Add(1);

  // Expand the allocation into per-worker group assignments. Groups that
  // received no thread (more groups than workers) piggyback on existing
  // workers round-robin, so every group always makes progress.
  std::vector<std::vector<int>> worker_groups;
  std::vector<int> leftovers;
  for (size_t i = 0; i < member_groups.size(); ++i) {
    if (alloc[i] == 0) {
      leftovers.push_back(member_groups[i]);
      continue;
    }
    for (int k = 0; k < alloc[i]; ++k) {
      worker_groups.push_back({member_groups[i]});
    }
  }
  if (worker_groups.empty()) worker_groups.push_back({});
  for (size_t i = 0; i < leftovers.size(); ++i) {
    worker_groups[i % worker_groups.size()].push_back(leftovers[i]);
  }

  // Submit phase-1 translate tasks. The committers — which may only run
  // epochs later — synchronize on the per-fragment translated flags, and
  // the prepared state's outstanding_translate counter keeps the gstate
  // alive until every task returned. A full replay queue blocks right here,
  // throttling the prepare stage (bounded-queue backpressure).
  const std::string* payload = prep->payload.get();
  for (auto& assignment : worker_groups) {
    prep->outstanding_translate.fetch_add(1, std::memory_order_relaxed);
    bool accepted = replay_pool_->Submit([this, prep, payload, assignment] {
      for (int gi : assignment) {
        TranslateGroup(*payload, &prep->gstate[static_cast<size_t>(gi)]);
      }
      prep->outstanding_translate.fetch_sub(1, std::memory_order_release);
    });
    if (!accepted) {
      prep->outstanding_translate.fetch_sub(1, std::memory_order_relaxed);
      SetError(Status::Internal("replay pool rejected a translate task"));
      return;
    }
  }
}

void AetsReplayer::CommitStage(PreparedAets* prep,
                               const std::vector<int>& member_groups) {
  if (member_groups.empty()) return;
  // Phase 2 (Algorithms 1-2): one task per group; the commit pool bounds how
  // many groups commit in parallel (1 reproduces a single-commit-thread
  // design). Only the single commit context submits here, so WaitIdle is a
  // barrier over exactly this epoch's stage.
  for (int gi : member_groups) {
    bool accepted = commit_pool_->Submit([this, prep, gi] {
      CommitGroup(&prep->gstate[static_cast<size_t>(gi)],
                  prep->grouping->groups[static_cast<size_t>(gi)]);
    });
    if (!accepted) {
      SetError(Status::Internal("commit pool rejected a commit task"));
      break;
    }
  }
  commit_pool_->WaitIdle();
}

void AetsReplayer::TranslateGroup(const std::string& payload,
                                  GroupEpochState* gs) {
  // TPLR phase 1: claim fragments and translate their log entries into
  // uncommitted cells. No transaction dependencies are considered and no
  // Memtable locks are taken — cells only pin their target nodes. The
  // zero-copy decode validates each frame once; the packed delta is the
  // only allocation per record.
  ScopedTimerNs timer(&stats_.replay_ns);
  for (;;) {
    if (HasError()) return;  // stop claiming; committers bail on the latch
    size_t idx = gs->next_claim.fetch_add(1, std::memory_order_relaxed);
    if (idx >= gs->fragments.size()) return;
    Fragment* frag = gs->fragments[idx].get();
    frag->cells.reserve(frag->offsets.size());
    for (size_t off : frag->offsets) {
      size_t pos = off;
      auto rec = LogCodec::DecodeView(payload, &pos);
      if (!rec.ok()) {
        SetError(rec.status());
        frag->poisoned.store(true, std::memory_order_release);
        break;
      }
      MemNode* node =
          store_.GetTable(rec->table_id)->GetOrCreateNode(rec->row_key);
      VersionCell cell;
      cell.commit_ts = frag->commit_ts;
      cell.txn_id = rec->txn_id;
      cell.is_delete = rec->type == LogRecordType::kDelete;
      cell.delta = PackedDelta::FromWire(rec->num_values, rec->value_bytes);
      frag->cells.push_back(PendingCell{node, std::move(cell), rec->table_id});
    }
    // Always flip `translated` (even when poisoned) so a committer already
    // spinning on this fragment wakes promptly; `poisoned` keeps the
    // partial cells from ever being installed.
    frag->translated.store(true, std::memory_order_release);
  }
}

void AetsReplayer::CommitGroup(GroupEpochState* gs, const TableGroup& group) {
  // TPLR phase 2 (Algorithms 1-2): walk the group's commit order; for each
  // transaction wait until phase 1 finished it, then append its cells to the
  // version lists and publish tg_cmt_ts.
  for (auto& frag_ptr : gs->fragments) {
    Fragment* frag = frag_ptr.get();
    // waiting_commit_list check: spin briefly, then yield the core to the
    // translate workers (see SpinBackoff for why not a futex park). On
    // error, unclaimed fragments never flip `translated`, so the latch is
    // the exit.
    SpinBackoff backoff;
    while (!frag->translated.load(std::memory_order_acquire)) {
      if (HasError()) return;
      backoff.Pause();
    }
    if (backoff.waited()) commit_spin_waits_metric_->Add(1);
    // A poisoned fragment holds a partial transaction; installing it would
    // corrupt the backup. Freeze this group's watermark at the last fully
    // committed transaction instead.
    if (frag->poisoned.load(std::memory_order_acquire) || HasError()) return;
    {
      ScopedTimerNs timer(&stats_.commit_ns);
      for (auto& pc : frag->cells) {
        pc.node->AppendVersion(std::move(pc.cell));
      }
    }
    // Feed the column store BEFORE the watermark store below: a reader that
    // observes tg_cmt_ts >= frag->commit_ts must also observe these keys in
    // the pending dirty set (mutex release → release-store → acquire-load →
    // mutex acquire), or its residual top-up would miss them.
    if (storage::ColumnStore* cs = column_store()) {
      for (const auto& pc : frag->cells) {
        cs->NoteDirty(pc.table, pc.node->row_key(), frag->commit_ts);
      }
    }
    for (TableId t : group.tables) {
      StoreMaxTimestamp(table_ts_[t], frag->commit_ts + options_.test_tg_publish_skew);
    }
  }
}

}  // namespace aets
