#ifndef AETS_REPLAY_SNAPSHOT_COORDINATOR_H_
#define AETS_REPLAY_SNAPSHOT_COORDINATOR_H_

#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "aets/common/clock.h"
#include "aets/obs/metrics.h"

namespace aets {

class GlobalSnapshotCoordinator;

/// RAII pin of an exact cross-shard read view (DESIGN.md §11). While a handle
/// is alive its timestamp is excluded from the coordinator's GC horizon, so a
/// long cross-shard scan can read every shard at one timestamp without a
/// per-shard GC daemon pruning the versions out from under it. Move-only;
/// destruction (or Release) unpins.
class SnapshotHandle {
 public:
  SnapshotHandle() = default;
  ~SnapshotHandle() { Release(); }

  SnapshotHandle(SnapshotHandle&& other) noexcept
      : coordinator_(other.coordinator_), ts_(other.ts_) {
    other.coordinator_ = nullptr;
    other.ts_ = kInvalidTimestamp;
  }
  SnapshotHandle& operator=(SnapshotHandle&& other) noexcept {
    if (this != &other) {
      Release();
      coordinator_ = other.coordinator_;
      ts_ = other.ts_;
      other.coordinator_ = nullptr;
      other.ts_ = kInvalidTimestamp;
    }
    return *this;
  }
  SnapshotHandle(const SnapshotHandle&) = delete;
  SnapshotHandle& operator=(const SnapshotHandle&) = delete;

  /// The pinned snapshot timestamp: every transaction with commit_ts <= ts()
  /// was fully replayed on every shard when the handle was acquired.
  Timestamp ts() const { return ts_; }
  bool valid() const { return coordinator_ != nullptr; }

  void Release();

 private:
  friend class GlobalSnapshotCoordinator;
  SnapshotHandle(GlobalSnapshotCoordinator* coordinator, Timestamp ts)
      : coordinator_(coordinator), ts_(ts) {}

  GlobalSnapshotCoordinator* coordinator_ = nullptr;
  Timestamp ts_ = kInvalidTimestamp;
};

/// The cross-shard watermark protocol (ISSUE 7 tentpole, DESIGN.md §11).
/// Each backup shard publishes its own global_cmt_ts; the coordinator's
/// GlobalSafeTimestamp() is the minimum over all shards — the largest T such
/// that EVERY shard has fully replayed every transaction with commit_ts <= T.
/// A query at qts spanning tables on multiple shards is exact iff
/// qts <= GlobalSafeTimestamp() (per-shard watermarks alone would admit a
/// torn read: shard A at ts 100, shard B at ts 80, a qts=90 query would see
/// a transaction's A-rows but not its B-rows).
///
/// The coordinator never blocks replay: it only reads the shards' already
/// published atomics through registered probes. Probes must be individually
/// monotone (every replayer's watermark is), which makes the safe timestamp
/// monotone. A shard that latches a sticky replay error freezes its
/// watermark, and the safe timestamp freezes with it — failed shards degrade
/// global snapshot freshness to the failure point instead of serving torn
/// reads.
///
/// Observability: every GlobalSafeTimestamp() call refreshes the per-shard
/// `shard.<i>.watermark_lag` gauges (fastest shard's watermark minus this
/// shard's), making a skewed or stalled shard visible at a glance.
class GlobalSnapshotCoordinator {
 public:
  GlobalSnapshotCoordinator() = default;

  GlobalSnapshotCoordinator(const GlobalSnapshotCoordinator&) = delete;
  GlobalSnapshotCoordinator& operator=(const GlobalSnapshotCoordinator&) =
      delete;

  /// Registers one shard's watermark probe (typically
  /// `[r] { return r->GlobalVisibleTs(); }`). Returns the shard's index.
  /// Register all shards before concurrent use; probes must be monotone and
  /// safe to call from any thread.
  int AttachShard(std::function<Timestamp()> watermark_probe);

  int num_shards() const { return static_cast<int>(probes_.size()); }

  /// The largest timestamp every shard has fully replayed: min over the
  /// per-shard watermarks (kInvalidTimestamp until every shard has published
  /// one). Monotone across calls.
  Timestamp GlobalSafeTimestamp() const;

  /// One shard's current watermark (what the probe returns).
  Timestamp ShardWatermark(int shard) const;

  /// Pins the current GlobalSafeTimestamp() as an atomic cross-shard read
  /// view. The pinned timestamp is held out of GcHorizon() until the handle
  /// is released, so every version the snapshot can see survives GC for the
  /// handle's lifetime.
  SnapshotHandle AcquireSnapshot();

  /// The oldest timestamp any live SnapshotHandle has pinned, or
  /// kInvalidTimestamp when none is live.
  Timestamp MinPinnedTs() const;

  /// The timestamp below which no live or future snapshot can read:
  /// min(GlobalSafeTimestamp(), MinPinnedTs()). Per-shard GC daemons must
  /// prune against this, not their own shard's watermark.
  Timestamp GcHorizon() const;

 private:
  friend class SnapshotHandle;
  void ReleasePin(Timestamp ts);

  std::vector<std::function<Timestamp()>> probes_;
  std::vector<obs::Gauge*> lag_gauges_;
  /// Monotonicity backstop over the min-of-probes (protects against a probe
  /// briefly publishing out of order); also what ShardWatermark lags against.
  mutable std::atomic<Timestamp> last_safe_ts_{kInvalidTimestamp};

  mutable std::mutex pins_mu_;
  std::map<Timestamp, int> pins_;  // pinned ts -> live handle count
};

}  // namespace aets

#endif  // AETS_REPLAY_SNAPSHOT_COORDINATOR_H_
