#include "aets/replay/snapshot_coordinator.h"

#include <string>
#include <utility>

#include "aets/common/macros.h"

namespace aets {

void SnapshotHandle::Release() {
  if (coordinator_ != nullptr) {
    coordinator_->ReleasePin(ts_);
    coordinator_ = nullptr;
    ts_ = kInvalidTimestamp;
  }
}

int GlobalSnapshotCoordinator::AttachShard(
    std::function<Timestamp()> watermark_probe) {
  AETS_CHECK(watermark_probe != nullptr);
  int shard = static_cast<int>(probes_.size());
  probes_.push_back(std::move(watermark_probe));
  lag_gauges_.push_back(
      obs::GetGauge("shard." + std::to_string(shard) + ".watermark_lag"));
  return shard;
}

Timestamp GlobalSnapshotCoordinator::GlobalSafeTimestamp() const {
  if (probes_.empty()) return kInvalidTimestamp;
  // One pass reads every shard's watermark; min is the safe frontier, max is
  // the lag reference (the fastest shard defines "no lag").
  const size_t n = probes_.size();
  std::vector<Timestamp> local(n);
  Timestamp min_ts = local[0] = probes_[0]();
  Timestamp max_ts = min_ts;
  for (size_t s = 1; s < n; ++s) {
    Timestamp ts = local[s] = probes_[s]();
    if (ts < min_ts) min_ts = ts;
    if (ts > max_ts) max_ts = ts;
  }
  for (size_t s = 0; s < n; ++s) {
    lag_gauges_[s]->Set(static_cast<int64_t>(max_ts - local[s]));
  }
  StoreMaxTimestamp(last_safe_ts_, min_ts);
  return last_safe_ts_.load(std::memory_order_acquire);
}

Timestamp GlobalSnapshotCoordinator::ShardWatermark(int shard) const {
  AETS_CHECK(shard >= 0 && shard < static_cast<int>(probes_.size()));
  return probes_[static_cast<size_t>(shard)]();
}

SnapshotHandle GlobalSnapshotCoordinator::AcquireSnapshot() {
  // Pin under the lock AFTER reading the safe timestamp: the pin can only be
  // at or below the current horizon, so GcHorizon() (which also reads under
  // this lock) can never have released versions the pin needs.
  std::lock_guard<std::mutex> lk(pins_mu_);
  Timestamp ts = GlobalSafeTimestamp();
  ++pins_[ts];
  return SnapshotHandle(this, ts);
}

void GlobalSnapshotCoordinator::ReleasePin(Timestamp ts) {
  std::lock_guard<std::mutex> lk(pins_mu_);
  auto it = pins_.find(ts);
  AETS_CHECK(it != pins_.end() && it->second > 0);
  if (--it->second == 0) pins_.erase(it);
}

Timestamp GlobalSnapshotCoordinator::MinPinnedTs() const {
  std::lock_guard<std::mutex> lk(pins_mu_);
  return pins_.empty() ? kInvalidTimestamp : pins_.begin()->first;
}

Timestamp GlobalSnapshotCoordinator::GcHorizon() const {
  std::lock_guard<std::mutex> lk(pins_mu_);
  Timestamp safe = GlobalSafeTimestamp();
  if (pins_.empty()) return safe;
  Timestamp pinned = pins_.begin()->first;
  return pinned < safe ? pinned : safe;
}

}  // namespace aets
