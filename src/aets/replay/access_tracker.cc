#include "aets/replay/access_tracker.h"

#include "aets/common/macros.h"

namespace aets {

AccessTracker::AccessTracker(size_t num_tables) : counts_(num_tables) {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
}

void AccessTracker::RecordAccess(TableId table) {
  AETS_CHECK(table < counts_.size());
  counts_[table].fetch_add(1, std::memory_order_relaxed);
}

void AccessTracker::RecordQuery(const std::vector<TableId>& tables) {
  for (TableId t : tables) RecordAccess(t);
}

void AccessTracker::AdvanceSlot() {
  std::vector<double> slot(counts_.size());
  for (size_t t = 0; t < counts_.size(); ++t) {
    slot[t] = static_cast<double>(counts_[t].exchange(0, std::memory_order_relaxed));
  }
  std::lock_guard<std::mutex> lk(mu_);
  history_.push_back(std::move(slot));
}

size_t AccessTracker::num_slots() const {
  std::lock_guard<std::mutex> lk(mu_);
  return history_.size();
}

std::vector<double> AccessTracker::CurrentSlot() const {
  std::vector<double> slot(counts_.size());
  for (size_t t = 0; t < counts_.size(); ++t) {
    slot[t] = static_cast<double>(counts_[t].load(std::memory_order_relaxed));
  }
  return slot;
}

std::vector<std::vector<double>> AccessTracker::History() const {
  std::lock_guard<std::mutex> lk(mu_);
  return history_;
}

std::vector<double> AccessTracker::MeanRate(size_t window) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<double> mean(counts_.size(), 0.0);
  if (history_.empty() || window == 0) return mean;
  size_t n = std::min(window, history_.size());
  for (size_t s = history_.size() - n; s < history_.size(); ++s) {
    for (size_t t = 0; t < counts_.size(); ++t) mean[t] += history_[s][t];
  }
  for (auto& m : mean) m /= static_cast<double>(n);
  return mean;
}

std::vector<double> AccessTracker::LastSlot() const {
  std::lock_guard<std::mutex> lk(mu_);
  if (history_.empty()) return std::vector<double>(counts_.size(), 0.0);
  return history_.back();
}

}  // namespace aets
