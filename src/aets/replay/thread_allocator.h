#ifndef AETS_REPLAY_THREAD_ALLOCATOR_H_
#define AETS_REPLAY_THREAD_ALLOCATOR_H_

#include <vector>

namespace aets {

/// Demand of one table group at an epoch boundary: pending (un-replayed) log
/// bytes and the (predicted) OLAP access rate of the group's tables.
struct GroupDemand {
  double bytes = 0;
  double access_rate = 0;
};

/// Solves the paper's Section IV-B allocation: choose integer t_gi with
/// sum t_gi = total such that lambda_gi * n_gi / t_gi is equalized, where
/// n_gi is the pending log size and lambda_gi = log10(access rate) + 1
/// (log-damped urgency, "guarantees numerical stability"). With
/// `use_access_rate == false` (the AETS-NOAC ablation) lambda is 1 and the
/// split is proportional to log size alone.
///
/// Properties (tested): allocations sum to `total`; groups with zero demand
/// get zero threads; every group with demand gets at least one thread when
/// enough exist; allocation is monotone in demand weight.
std::vector<int> AllocateThreads(const std::vector<GroupDemand>& demands,
                                 int total, bool use_access_rate);

/// The urgency factor lambda for a given access rate.
double UrgencyFactor(double access_rate);

/// Top-level budget split for sharded replay (DESIGN.md §11): divides `total`
/// threads across shards proportionally to each shard's predicted load
/// (typically the sum of its tables' access rates), before each shard's own
/// AllocateThreads subdivides its share across table groups. Requires
/// `total >= shard_loads.size()` so every shard can replay at all.
///
/// Properties (tested): shares sum exactly to `total`; every shard gets at
/// least one thread regardless of load (a zero-load shard still consumes
/// heartbeats); shares are proportional to load via largest remainder; all
/// loads zero or negative falls back to an even split.
std::vector<int> SplitThreadBudget(const std::vector<double>& shard_loads,
                                   int total);

}  // namespace aets

#endif  // AETS_REPLAY_THREAD_ALLOCATOR_H_
