#include "aets/replay/table_group.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "aets/common/macros.h"
#include "aets/predictor/dbscan.h"

namespace aets {

std::vector<TableGroup> TableGrouping::PerTable(const std::vector<double>& rates,
                                                double hot_threshold) {
  std::vector<TableGroup> groups;
  groups.reserve(rates.size());
  for (size_t t = 0; t < rates.size(); ++t) {
    TableGroup g;
    g.tables = {static_cast<TableId>(t)};
    g.access_rate = rates[t];
    g.hot = rates[t] >= hot_threshold;
    groups.push_back(std::move(g));
  }
  return groups;
}

std::vector<TableGroup> TableGrouping::ByAccessRate(
    const std::vector<double>& rates, double eps, double hot_threshold) {
  std::vector<TableGroup> groups;
  // Hot tables cluster on log10(rate); cold tables (below the threshold —
  // predictors emit small nonzero noise for unqueried tables) become
  // singleton groups, mirroring the paper's TPC-C setup.
  std::vector<size_t> hot_tables;
  std::vector<double> log_rates;
  for (size_t t = 0; t < rates.size(); ++t) {
    if (rates[t] >= hot_threshold) {
      hot_tables.push_back(t);
      log_rates.push_back(std::log10(rates[t]));
    } else {
      TableGroup g;
      g.tables = {static_cast<TableId>(t)};
      g.access_rate = rates[t];
      g.hot = false;
      groups.push_back(std::move(g));
    }
  }
  if (!hot_tables.empty()) {
    std::vector<int> labels = Dbscan1d(log_rates, eps, /*min_pts=*/1);
    std::map<int, TableGroup> clusters;
    for (size_t i = 0; i < hot_tables.size(); ++i) {
      TableGroup& g = clusters[labels[i]];
      g.tables.push_back(static_cast<TableId>(hot_tables[i]));
      g.access_rate += rates[hot_tables[i]];
      g.hot = true;
    }
    for (auto& [label, group] : clusters) groups.push_back(std::move(group));
  }
  return groups;
}

std::vector<TableGroup> TableGrouping::Static(
    const std::vector<std::vector<TableId>>& hot_groups,
    const std::vector<double>& rates, size_t num_tables) {
  std::vector<TableGroup> groups;
  std::vector<bool> covered(num_tables, false);
  for (const auto& tables : hot_groups) {
    TableGroup g;
    g.hot = true;
    for (TableId t : tables) {
      AETS_CHECK_MSG(t < num_tables, "static group references unknown table");
      AETS_CHECK_MSG(!covered[t], "table in two static groups");
      covered[t] = true;
      g.tables.push_back(t);
      g.access_rate += t < rates.size() ? rates[t] : 0;
    }
    groups.push_back(std::move(g));
  }
  for (size_t t = 0; t < num_tables; ++t) {
    if (covered[t]) continue;
    TableGroup g;
    g.tables = {static_cast<TableId>(t)};
    g.access_rate = t < rates.size() ? rates[t] : 0;
    g.hot = false;
    groups.push_back(std::move(g));
  }
  return groups;
}

std::vector<TableGroup> TableGrouping::Single(size_t num_tables,
                                              const std::vector<double>& rates) {
  TableGroup g;
  g.hot = true;
  for (size_t t = 0; t < num_tables; ++t) {
    g.tables.push_back(static_cast<TableId>(t));
    g.access_rate += t < rates.size() ? rates[t] : 0;
  }
  return {std::move(g)};
}

std::vector<int> TableGrouping::TableToGroup(
    const std::vector<TableGroup>& groups, size_t num_tables) {
  std::vector<int> map(num_tables, -1);
  for (size_t gi = 0; gi < groups.size(); ++gi) {
    for (TableId t : groups[gi].tables) {
      AETS_CHECK_MSG(t < num_tables, "group references unknown table");
      AETS_CHECK_MSG(map[t] == -1, "table assigned to two groups");
      map[t] = static_cast<int>(gi);
    }
  }
  for (size_t t = 0; t < num_tables; ++t) {
    AETS_CHECK_MSG(map[t] != -1, "table missing from grouping");
  }
  return map;
}

}  // namespace aets
