#include "aets/replay/replayer_base.h"

#include "aets/common/clock.h"

namespace aets {

ReplayerBase::ReplayerBase(const Catalog* catalog, EpochChannel* channel,
                           std::string name)
    : catalog_(catalog),
      channel_(channel),
      store_(*catalog),
      name_(std::move(name)),
      epochs_applied_metric_(obs::GetCounter("replay.epochs_applied")),
      txns_applied_metric_(obs::GetCounter("replay.txns_applied")),
      records_applied_metric_(obs::GetCounter("replay.records_applied")),
      bytes_applied_metric_(obs::GetCounter("replay.bytes_applied")),
      heartbeats_applied_metric_(
          obs::GetCounter("replay.heartbeats_applied")) {}

ReplayerBase::~ReplayerBase() {
  // Backstop only: by now the derived part is gone, so StopWorkers() would
  // not dispatch — derived destructors must call Stop() themselves.
  std::lock_guard<std::mutex> lk(lifecycle_mu_);
  if (main_thread_.joinable()) main_thread_.join();
}

Status ReplayerBase::Start() {
  std::lock_guard<std::mutex> lk(lifecycle_mu_);
  if (started_.load(std::memory_order_relaxed)) {
    return Status::InvalidArgument("already started");
  }
  Status s = StartWorkers();
  if (!s.ok()) return s;
  started_.store(true, std::memory_order_release);
  main_thread_ = std::thread([this] { MainLoop(); });
  return Status::OK();
}

void ReplayerBase::Stop() {
  std::lock_guard<std::mutex> lk(lifecycle_mu_);
  if (!started_.load(std::memory_order_relaxed)) return;
  if (main_thread_.joinable()) main_thread_.join();
  StopWorkers();
  started_.store(false, std::memory_order_release);
}

Status ReplayerBase::error() const {
  std::lock_guard<std::mutex> lk(error_mu_);
  return error_;
}

void ReplayerBase::SetError(Status status) {
  std::lock_guard<std::mutex> lk(error_mu_);
  if (error_.ok()) error_ = std::move(status);
  error_flag_.store(true, std::memory_order_release);
}

void ReplayerBase::MainLoop() {
  while (auto epoch = channel_->Receive()) {
    // Once the error latch trips, stop applying but keep draining: the
    // channel is bounded, so refusing to receive could block the shipper
    // forever. Nothing received after the failure point is installed and no
    // watermark moves.
    if (HasError()) continue;
    if (epoch->epoch_id != expected_epoch_) {
      SetError(Status::Corruption(
          "epoch out of order: expected " + std::to_string(expected_epoch_) +
          ", got " + std::to_string(epoch->epoch_id)));
      continue;
    }
    ++expected_epoch_;
    if (stats_.wall_start_us.load() == 0) {
      stats_.wall_start_us.store(MonotonicMicros());
    }
    if (epoch->is_heartbeat()) {
      ProcessHeartbeat(*epoch);
      heartbeats_applied_metric_->Add(1);
    } else {
      ProcessEpoch(*epoch);
      if (!HasError()) {
        stats_.epochs.fetch_add(1, std::memory_order_relaxed);
        stats_.records.fetch_add(epoch->num_records,
                                 std::memory_order_relaxed);
        stats_.bytes.fetch_add(epoch->ByteSize(), std::memory_order_relaxed);
        epochs_applied_metric_->Add(1);
        txns_applied_metric_->Add(epoch->num_txns);
        records_applied_metric_->Add(epoch->num_records);
        bytes_applied_metric_->Add(epoch->ByteSize());
      }
    }
    stats_.wall_end_us.store(MonotonicMicros());
  }
}

}  // namespace aets
