#include "aets/replay/replayer_base.h"

#include <string>
#include <utility>

#include "aets/common/backoff.h"
#include "aets/common/clock.h"

namespace aets {

ReplayerBase::ReplayerBase(const Catalog* catalog, EpochChannel* channel,
                           std::string name)
    : catalog_(catalog),
      channel_(channel),
      store_(*catalog),
      name_(std::move(name)),
      epochs_applied_metric_(obs::GetCounter("replay.epochs_applied")),
      txns_applied_metric_(obs::GetCounter("replay.txns_applied")),
      records_applied_metric_(obs::GetCounter("replay.records_applied")),
      bytes_applied_metric_(obs::GetCounter("replay.bytes_applied")),
      heartbeats_applied_metric_(
          obs::GetCounter("replay.heartbeats_applied")),
      epochs_retried_metric_(obs::GetCounter("replay.epochs_retried")),
      duplicates_dropped_metric_(
          obs::GetCounter("replay.epochs_duplicate_dropped")),
      corrupt_dropped_metric_(
          obs::GetCounter("replay.epochs_corrupt_dropped")),
      pipeline_stalls_metric_(obs::GetCounter("pipeline.stalls")),
      pipeline_depth_metric_(obs::GetGauge("pipeline.depth")),
      pipeline_occupancy_metric_(obs::GetGauge("pipeline.occupancy")) {}

ReplayerBase::~ReplayerBase() {
  // Backstop only: by now the derived part is gone, so StopWorkers() would
  // not dispatch — derived destructors must call Stop() themselves.
  std::lock_guard<std::mutex> lk(lifecycle_mu_);
  if (main_thread_.joinable()) main_thread_.join();
  if (commit_thread_.joinable()) commit_thread_.join();
}

void ReplayerBase::SetEpochSource(EpochSource* source) {
  std::lock_guard<std::mutex> lk(lifecycle_mu_);
  if (started_.load(std::memory_order_relaxed)) return;
  source_ = source;
}

void ReplayerBase::SetRecoveryOptions(const ReplayRecoveryOptions& options) {
  std::lock_guard<std::mutex> lk(lifecycle_mu_);
  if (started_.load(std::memory_order_relaxed)) return;
  recovery_ = options;
}

void ReplayerBase::SetPipelineDepth(int depth) {
  std::lock_guard<std::mutex> lk(lifecycle_mu_);
  if (started_.load(std::memory_order_relaxed)) return;
  pipeline_depth_ = depth;
}

void ReplayerBase::EnableColumnStore(storage::ColumnStoreOptions options) {
  std::lock_guard<std::mutex> lk(lifecycle_mu_);
  if (started_.load(std::memory_order_relaxed)) return;
  column_store_ =
      std::make_unique<storage::ColumnStore>(catalog_, &store_, options);
}

void ReplayerBase::SetCommitHookForTest(
    std::function<void(const ShippedEpoch&)> hook) {
  std::lock_guard<std::mutex> lk(lifecycle_mu_);
  if (started_.load(std::memory_order_relaxed)) return;
  commit_hook_ = std::move(hook);
}

Status ReplayerBase::Start() {
  std::lock_guard<std::mutex> lk(lifecycle_mu_);
  if (started_.load(std::memory_order_relaxed)) {
    return Status::InvalidArgument("already started");
  }
  if (pipeline_depth_ < 1) {
    return Status::InvalidArgument("pipeline_depth must be >= 1, got " +
                                   std::to_string(pipeline_depth_));
  }
  Status s = StartWorkers();
  if (!s.ok()) return s;
  pipe_.clear();
  pipe_closed_ = false;
  in_commit_ = 0;
  pipeline_depth_metric_->Set(pipeline_depth_);
  started_.store(true, std::memory_order_release);
  if (column_store_ != nullptr) {
    col_requested_ = kInvalidTimestamp;
    col_force_ = false;
    col_stop_ = false;
    column_thread_ = std::thread([this] { ColumnMergeLoop(); });
  }
  if (pipeline_depth_ > 1) {
    commit_thread_ = std::thread([this] { CommitLoop(); });
  }
  main_thread_ = std::thread([this] { MainLoop(); });
  return Status::OK();
}

void ReplayerBase::Stop() {
  std::lock_guard<std::mutex> lk(lifecycle_mu_);
  if (!started_.load(std::memory_order_relaxed)) return;
  // The main loop closes the pipeline after its final drain, so joining in
  // this order leaves the commit queue fully consumed.
  if (main_thread_.joinable()) main_thread_.join();
  if (commit_thread_.joinable()) commit_thread_.join();
  if (column_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lk(col_mu_);
      col_stop_ = true;
    }
    col_cv_.notify_one();
    column_thread_.join();
  }
  // The stream is drained: flush whatever columnar backlog the merge worker
  // and the publish threshold were still batching, so a caught-up backup
  // serves every table from chunks (the joins above ordered
  // last_applied_ts_ before this read).
  if (column_store_ != nullptr && !HasError()) {
    column_store_->Publish(last_applied_ts_, /*force=*/true);
  }
  StopWorkers();
  started_.store(false, std::memory_order_release);
}

Status ReplayerBase::error() const {
  std::lock_guard<std::mutex> lk(error_mu_);
  return error_;
}

void ReplayerBase::SetError(Status status) {
  std::lock_guard<std::mutex> lk(error_mu_);
  if (error_.ok()) error_ = std::move(status);
  error_flag_.store(true, std::memory_order_release);
}

void ReplayerBase::ApplyNext(ShippedEpoch epoch, bool retransmitted) {
  ++expected_epoch_;
  if (retransmitted) {
    stats_.epochs_retried.fetch_add(1, std::memory_order_relaxed);
    epochs_retried_metric_->Add(1);
  }
  if (stats_.wall_start_us.load() == 0) {
    stats_.wall_start_us.store(MonotonicMicros());
  }
  PipelineItem item;
  // The latch can trip from the commit context mid-ingest; a post-latch
  // epoch skips prepare and drains through the queue as a no-op.
  if (!epoch.is_heartbeat() && !HasError()) {
    item.prepared = PrepareEpoch(epoch);
  }
  item.epoch = std::move(epoch);
  if (pipeline_depth_ <= 1) {
    CommitItem(std::move(item));
    return;
  }
  {
    std::unique_lock<std::mutex> lk(pipe_mu_);
    const size_t depth = static_cast<size_t>(pipeline_depth_);
    if (pipe_.size() + static_cast<size_t>(in_commit_) >= depth) {
      // Backpressure: the commit stage is the bottleneck — block instead of
      // letting prepared epochs (and their pinned payloads) pile up.
      stats_.pipeline_stalls.fetch_add(1, std::memory_order_relaxed);
      pipeline_stalls_metric_->Add(1);
      pipe_space_cv_.wait(lk, [&] {
        return pipe_.size() + static_cast<size_t>(in_commit_) < depth;
      });
    }
    pipe_.push_back(std::move(item));
    pipeline_occupancy_metric_->Set(
        static_cast<int64_t>(pipe_.size()) + in_commit_);
  }
  pipe_ready_cv_.notify_one();
}

void ReplayerBase::CommitItem(PipelineItem item) {
  if (!HasError()) {
    if (commit_hook_) commit_hook_(item.epoch);
    if (item.epoch.is_heartbeat()) {
      ProcessHeartbeat(item.epoch);
      stats_.heartbeats.fetch_add(1, std::memory_order_relaxed);
      heartbeats_applied_metric_->Add(1);
      // A heartbeat means the stream is idle — have the merge worker drain
      // any columnar backlog the publish-amortization threshold held back.
      if (column_store_ != nullptr && !HasError()) {
        RequestColumnPublish(item.epoch.heartbeat_ts, /*force=*/true);
        if (item.epoch.heartbeat_ts != kInvalidTimestamp &&
            (last_applied_ts_ == kInvalidTimestamp ||
             item.epoch.heartbeat_ts > last_applied_ts_)) {
          last_applied_ts_ = item.epoch.heartbeat_ts;
        }
      }
    } else {
      CommitEpoch(item.epoch, std::move(item.prepared));
      if (!HasError()) {
        // Hand the epoch's dirty keys to the column-merge worker. The
        // request is posted after every watermark of the epoch published,
        // so the asynchronous rebuild reads fully-installed version chains
        // at max_commit_ts; a failed epoch posts nothing and its dirty keys
        // stay pending (queries resolve them through the residual path).
        if (column_store_ != nullptr) {
          RequestColumnPublish(item.epoch.max_commit_ts, /*force=*/false);
          if (item.epoch.max_commit_ts != kInvalidTimestamp &&
              (last_applied_ts_ == kInvalidTimestamp ||
               item.epoch.max_commit_ts > last_applied_ts_)) {
            last_applied_ts_ = item.epoch.max_commit_ts;
          }
        }
        stats_.epochs.fetch_add(1, std::memory_order_relaxed);
        stats_.records.fetch_add(item.epoch.num_records,
                                 std::memory_order_relaxed);
        stats_.bytes.fetch_add(item.epoch.ByteSize(),
                               std::memory_order_relaxed);
        epochs_applied_metric_->Add(1);
        txns_applied_metric_->Add(item.epoch.num_txns);
        records_applied_metric_->Add(item.epoch.num_records);
        bytes_applied_metric_->Add(item.epoch.ByteSize());
      }
    }
  }
  // A dropped (post-latch) item unwinds here: destroying `prepared` quiesces
  // any translation the prepare phase left in flight, and nothing publishes.
  stats_.wall_end_us.store(MonotonicMicros());
}

void ReplayerBase::CommitLoop() {
  for (;;) {
    PipelineItem item;
    {
      std::unique_lock<std::mutex> lk(pipe_mu_);
      pipe_ready_cv_.wait(lk, [&] { return pipe_closed_ || !pipe_.empty(); });
      if (pipe_.empty()) return;  // closed and drained
      item = std::move(pipe_.front());
      pipe_.pop_front();
      ++in_commit_;
    }
    pipe_space_cv_.notify_one();
    CommitItem(std::move(item));
    {
      std::lock_guard<std::mutex> lk(pipe_mu_);
      --in_commit_;
      pipeline_occupancy_metric_->Set(
          static_cast<int64_t>(pipe_.size()) + in_commit_);
    }
    pipe_space_cv_.notify_one();
  }
}

void ReplayerBase::Ingest(ShippedEpoch epoch, PendingMap* pending,
                          bool retransmitted) {
  if (!epoch.PayloadIntact()) {
    // Damaged in flight. The epoch is a loss, not an error: the clean copy
    // lives in the shipper's retention buffer and the gap machinery will
    // NACK it back. Without a source there is no way to recover — latch.
    stats_.corrupt_dropped.fetch_add(1, std::memory_order_relaxed);
    corrupt_dropped_metric_->Add(1);
    if (source_ == nullptr) {
      SetError(Status::Corruption(
          "epoch " + std::to_string(epoch.epoch_id) +
          " payload checksum mismatch (no retransmission source)"));
    }
    return;
  }
  if (epoch.epoch_id < expected_epoch_) {
    // Already applied — a link-level duplicate or a redundant retransmit.
    stats_.duplicates_dropped.fetch_add(1, std::memory_order_relaxed);
    duplicates_dropped_metric_->Add(1);
    return;
  }
  if (epoch.epoch_id > expected_epoch_) {
    if (source_ == nullptr) {
      SetError(Status::Corruption(
          "epoch out of order: expected " + std::to_string(expected_epoch_) +
          ", got " + std::to_string(epoch.epoch_id) +
          " (no retransmission source)"));
      return;
    }
    auto [it, inserted] = pending->emplace(epoch.epoch_id, std::move(epoch));
    if (!inserted) {
      stats_.duplicates_dropped.fetch_add(1, std::memory_order_relaxed);
      duplicates_dropped_metric_->Add(1);
    } else if (pending->size() > recovery_.max_pending) {
      SetError(Status::Corruption(
          "reorder buffer overflow: " + std::to_string(pending->size()) +
          " epochs parked waiting for epoch " +
          std::to_string(expected_epoch_)));
    }
    return;
  }
  ApplyNext(std::move(epoch), retransmitted);
  // The arrival may have been the gap head — drain every parked successor
  // that is now contiguous.
  while (!HasError()) {
    auto it = pending->find(expected_epoch_);
    if (it == pending->end()) break;
    ShippedEpoch next = std::move(it->second);
    pending->erase(it);
    ApplyNext(std::move(next), false);
  }
}

void ReplayerBase::RecoverGaps(PendingMap* pending) {
  // Invariant here: pending is non-empty, so some epoch beyond
  // expected_epoch_ arrived — the shipper definitely assigned (and
  // retained or evicted) every id up to it. source_ is non-null, because
  // Ingest latches instead of parking without one.
  int rounds_without_progress = 0;
  while (!pending->empty() && !HasError()) {
    EpochId gap = expected_epoch_;
    // Reorder window: the missing epoch may be queued right behind what we
    // already pulled (or held back by the link). Poll before NACKing.
    SpinBackoff backoff;
    for (int i = 0; i < recovery_.reorder_window_pauses; ++i) {
      if (auto epoch = channel_->TryReceive()) {
        Ingest(std::move(*epoch), pending, false);
        if (pending->empty() || HasError()) return;
        if (expected_epoch_ > gap) break;
      } else {
        backoff.Pause();
      }
    }
    if (expected_epoch_ > gap) {
      rounds_without_progress = 0;
      continue;
    }
    // NACK: re-fetch the gap head from the shipper's retention buffer.
    bool fetch_missed = false;
    if (auto epoch = source_->FetchEpoch(gap)) {
      Ingest(std::move(*epoch), pending, true);
      if (expected_epoch_ > gap) {
        rounds_without_progress = 0;
        continue;
      }
    } else if (gap < source_->FloorEpochId()) {
      // Not a loss: truncation dropped this id because a checkpoint image
      // covers it. The distinct code lets the operator bootstrap from the
      // image instead of treating the backup as corrupt.
      SetError(Status::BelowCheckpoint(
          "epoch " + std::to_string(gap) +
          " is below the durable log's truncation floor " +
          std::to_string(source_->FloorEpochId()) +
          "; a checkpoint image covers it — bootstrap from that image"));
      return;
    } else {
      // A miss is not proof of loss: over a socket source the same nullopt
      // also covers a timed-out NACK RPC, and latching on the first one
      // would poison the replayer on a transient stall. Burn a retry round
      // (the reorder-window poll above is the backoff) and only conclude
      // eviction once the budget is spent.
      fetch_missed = true;
    }
    if (++rounds_without_progress >= recovery_.max_retries) {
      if (fetch_missed) {
        SetError(Status::Corruption(
            "epoch " + std::to_string(gap) +
            " lost in transit and evicted from the shipper's retention "
            "buffer (" + std::to_string(recovery_.max_retries) +
            " NACK attempts); re-bootstrap from a checkpoint"));
      } else {
        SetError(Status::Corruption(
            "epoch gap at " + std::to_string(gap) + " persisted after " +
            std::to_string(recovery_.max_retries) + " recovery rounds"));
      }
      return;
    }
  }
}

void ReplayerBase::FinalDrain(PendingMap* pending) {
  if (source_ == nullptr) {
    // Unreachable in practice: without a source Ingest latches on the first
    // out-of-order id, so nothing is ever parked. Kept as a backstop.
    if (!pending->empty()) {
      SetError(Status::Corruption(
          "channel closed with an epoch gap at " +
          std::to_string(expected_epoch_) + " (no retransmission source)"));
    }
    return;
  }
  // The channel is closed and drained, so the shipper has finished: every id
  // in [0, end) was handed to the link, and anything we have not applied was
  // swallowed by it. Pull the remainder straight from retention. As in
  // RecoverGaps, a fetch miss is retried with backoff before it is treated
  // as eviction — over a socket source nullopt also covers a transient
  // timeout on the NACK RPC.
  EpochId end = source_->NextEpochId();
  int fetch_misses = 0;
  SpinBackoff miss_backoff;
  while (!HasError() && expected_epoch_ < end) {
    auto it = pending->find(expected_epoch_);
    if (it != pending->end()) {
      ShippedEpoch epoch = std::move(it->second);
      pending->erase(it);
      Ingest(std::move(epoch), pending, false);
      fetch_misses = 0;
      continue;
    }
    if (auto epoch = source_->FetchEpoch(expected_epoch_)) {
      Ingest(std::move(*epoch), pending, true);
      fetch_misses = 0;
      miss_backoff = SpinBackoff();
      continue;
    }
    if (expected_epoch_ < source_->FloorEpochId()) {
      SetError(Status::BelowCheckpoint(
          "epoch " + std::to_string(expected_epoch_) +
          " is below the durable log's truncation floor " +
          std::to_string(source_->FloorEpochId()) +
          "; a checkpoint image covers it — bootstrap from that image"));
      return;
    }
    if (++fetch_misses >= recovery_.max_retries) {
      SetError(Status::Corruption(
          "epoch " + std::to_string(expected_epoch_) +
          " lost in transit and evicted from the shipper's retention buffer "
          "(" + std::to_string(recovery_.max_retries) +
          " NACK attempts); re-bootstrap from a checkpoint"));
      return;
    }
    for (int i = 0; i < recovery_.reorder_window_pauses; ++i) {
      miss_backoff.Pause();
    }
  }
}

void ReplayerBase::MainLoop() {
  PendingMap pending;
  while (auto epoch = channel_->Receive()) {
    // Once the error latch trips, stop applying but keep draining: the
    // channel is bounded, so refusing to receive could block the shipper
    // forever. Nothing received after the failure point is installed and no
    // watermark moves.
    if (HasError()) continue;
    Ingest(std::move(*epoch), &pending, false);
    if (!pending.empty() && !HasError()) RecoverGaps(&pending);
  }
  if (!HasError()) FinalDrain(&pending);
  if (pipeline_depth_ > 1) {
    {
      std::lock_guard<std::mutex> lk(pipe_mu_);
      pipe_closed_ = true;
    }
    pipe_ready_cv_.notify_all();
  }
}

void ReplayerBase::RequestColumnPublish(Timestamp ts, bool force) {
  if (ts == kInvalidTimestamp) return;
  {
    std::lock_guard<std::mutex> lk(col_mu_);
    if (col_requested_ == kInvalidTimestamp || ts > col_requested_) {
      col_requested_ = ts;
    }
    col_force_ |= force;
  }
  col_cv_.notify_one();
}

void ReplayerBase::ColumnMergeLoop() {
  for (;;) {
    Timestamp ts;
    bool force;
    {
      std::unique_lock<std::mutex> lk(col_mu_);
      col_cv_.wait(lk, [&] {
        return col_stop_ || col_requested_ != kInvalidTimestamp;
      });
      if (col_requested_ == kInvalidTimestamp) return;  // stopped and drained
      ts = col_requested_;
      force = col_force_;
      col_requested_ = kInvalidTimestamp;
      col_force_ = false;
    }
    // Reading at `ts` is stable against concurrent commits (MVCC reads at a
    // fixed timestamp) and the poster's mutex hand-off ordered every version
    // <= ts before this call. When several requests queued up while a
    // rebuild ran, the coalesced `ts` is the latest — one rebuild covers
    // them all.
    column_store_->Publish(ts, force);
  }
}

}  // namespace aets
