#ifndef AETS_REPLAY_REPLAYER_H_
#define AETS_REPLAY_REPLAYER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "aets/catalog/catalog.h"
#include "aets/common/clock.h"
#include "aets/common/status.h"
#include "aets/storage/table_store.h"

namespace aets {

/// Counters shared by all replayer implementations. The dispatch/replay/
/// commit nanosecond breakdown reproduces the paper's Table II.
struct ReplayStats {
  std::atomic<uint64_t> epochs{0};
  std::atomic<uint64_t> txns{0};
  std::atomic<uint64_t> records{0};
  std::atomic<uint64_t> bytes{0};
  std::atomic<int64_t> dispatch_ns{0};
  std::atomic<int64_t> replay_ns{0};
  std::atomic<int64_t> commit_ns{0};
  /// Wall time spent in the two stages (AETS only): stage 1 replays the
  /// hot (first-class) groups, stage 2 the cold groups.
  std::atomic<int64_t> stage1_wall_ns{0};
  std::atomic<int64_t> stage2_wall_ns{0};
  /// Time replay workers spent blocked on ordering synchronization (ATR's
  /// operation-sequence-check spins). Grows with worker count; drives the
  /// scalability analysis of Fig. 11.
  std::atomic<int64_t> sync_wait_ns{0};
  std::atomic<int64_t> wall_start_us{0};
  std::atomic<int64_t> wall_end_us{0};
  /// Degraded-mode counters of the loss-recovery protocol: epochs recovered
  /// through the shipper's retention buffer (NACK retransmits), duplicate
  /// epoch ids skipped, and payloads whose CRC failed on receive. All zero
  /// on a healthy link.
  std::atomic<uint64_t> epochs_retried{0};
  std::atomic<uint64_t> duplicates_dropped{0};
  std::atomic<uint64_t> corrupt_dropped{0};
  /// Heartbeat epochs routed through ProcessHeartbeat. Together with
  /// `epochs` this tells an external stepper when a shipped epoch has been
  /// fully consumed (the simulation harness waits on it).
  std::atomic<uint64_t> heartbeats{0};
  /// Times the main loop blocked handing a prepared epoch to a full commit
  /// pipeline (pipeline_depth epochs already in flight) — the backpressure
  /// events of the cross-epoch pipeline, DESIGN.md §9.
  std::atomic<uint64_t> pipeline_stalls{0};

  int64_t WallMicros() const {
    // An error latched before the first epoch leaves both marks at zero; a
    // clamped difference keeps downstream throughput math out of inf/NaN.
    int64_t us = wall_end_us.load() - wall_start_us.load();
    return us < 0 ? 0 : us;
  }
  /// Replayed transactions per second of wall time.
  double TxnsPerSec() const {
    int64_t us = WallMicros();
    return us <= 0 ? 0.0 : static_cast<double>(txns.load()) * 1e6 /
                               static_cast<double>(us);
  }
  double DispatchFraction() const {
    int64_t total = dispatch_ns.load() + replay_ns.load() + commit_ns.load();
    return total <= 0 ? 0.0
                      : static_cast<double>(dispatch_ns.load()) /
                            static_cast<double>(total);
  }
  double ReplayFraction() const {
    int64_t total = dispatch_ns.load() + replay_ns.load() + commit_ns.load();
    return total <= 0 ? 0.0
                      : static_cast<double>(replay_ns.load()) /
                            static_cast<double>(total);
  }
  double CommitFraction() const {
    int64_t total = dispatch_ns.load() + replay_ns.load() + commit_ns.load();
    return total <= 0 ? 0.0
                      : static_cast<double>(commit_ns.load()) /
                            static_cast<double>(total);
  }
};

/// Common interface of the backup-side log replayers: AETS and the three
/// baselines (ATR, C5, ungrouped TPLR) plus the serial oracle. A replayer
/// consumes encoded epochs from its channel, installs versions into its
/// TableStore, and publishes visibility timestamps that Algorithm 3 reads.
class EpochSource;

namespace storage {
class ColumnStore;
}  // namespace storage

class Replayer {
 public:
  virtual ~Replayer() = default;

  /// Attaches the primary-side retransmission source (the NACK back-channel
  /// of the recovery protocol; LogShipper implements it). Optional — without
  /// one, any gap or corrupt payload on the channel is a terminal error.
  /// Must be called before Start(). Default: ignored.
  virtual void SetEpochSource(EpochSource* /*source*/) {}

  /// Spawns the replay machinery; returns once threads are running.
  virtual Status Start() = 0;

  /// Blocks until the channel is closed and fully drained, then joins all
  /// threads. After Stop(), the backup state is final.
  virtual void Stop() = 0;

  /// Publish timestamp of the table: the commit timestamp of the latest
  /// transaction visible on this table's group (tg_cmt_ts in the paper).
  virtual Timestamp TableVisibleTs(TableId table) const = 0;

  /// Maximum timestamp T such that every transaction with commit_ts <= T is
  /// fully replayed across all tables (global_cmt_ts in the paper).
  virtual Timestamp GlobalVisibleTs() const = 0;

  virtual TableStore* store() = 0;

  /// The store holding `table`'s versions. Single-backup replayers keep every
  /// table in one store (the default); the ShardedBackup facade routes to the
  /// owning shard's store. Snapshot readers (OLAP scans, the sim oracle) must
  /// use this instead of store() so their reads stay correct under sharding.
  virtual TableStore* StoreForTable(TableId /*table*/) { return store(); }

  /// The columnar projection covering `table`, or nullptr when this
  /// replayer maintains none (disabled, or a baseline without the commit
  /// hook) — callers fall back to the row path. The ShardedBackup facade
  /// routes to the owning shard's store.
  virtual const storage::ColumnStore* ColumnStoreForTable(
      TableId /*table*/) const {
    return nullptr;
  }

  virtual const ReplayStats& stats() const = 0;
  virtual std::string name() const = 0;
};

/// Algorithm 3 (Visibility at backup): blocks until every table in `tables`
/// is visible at snapshot `qts` — i.e. min tg_cmt_ts over the accessed
/// groups reaches qts, or the global watermark does. Returns the wall time
/// waited in microseconds (the query's visibility delay).
int64_t WaitVisible(const Replayer& replayer, const std::vector<TableId>& tables,
                    Timestamp qts);

/// Non-blocking variant: true when `qts` is already visible on all `tables`.
bool IsVisible(const Replayer& replayer, const std::vector<TableId>& tables,
               Timestamp qts);

}  // namespace aets

#endif  // AETS_REPLAY_REPLAYER_H_
