#include "aets/replay/sharded_backup.h"

#include <utility>

#include "aets/common/macros.h"
#include "aets/replay/thread_allocator.h"

namespace aets {

ShardedBackup::ShardedBackup(const ShardMap* map,
                             std::vector<std::unique_ptr<Replayer>> shards)
    : map_(map), shards_(std::move(shards)) {
  AETS_CHECK(map_ != nullptr);
  AETS_CHECK_MSG(static_cast<int>(shards_.size()) == map_->num_shards(),
                 "shard replayer count does not match the shard map");
  for (auto& shard : shards_) {
    AETS_CHECK(shard != nullptr);
    Replayer* r = shard.get();
    coordinator_.AttachShard([r] { return r->GlobalVisibleTs(); });
  }
}

ShardedBackup::~ShardedBackup() { Stop(); }

void ShardedBackup::SetEpochSource(EpochSource* source) {
  for (auto& shard : shards_) shard->SetEpochSource(source);
}

void ShardedBackup::SetShardEpochSource(int shard, EpochSource* source) {
  AETS_CHECK(shard >= 0 && shard < num_shards());
  shards_[static_cast<size_t>(shard)]->SetEpochSource(source);
}

Status ShardedBackup::Start() {
  for (size_t i = 0; i < shards_.size(); ++i) {
    Status st = shards_[i]->Start();
    if (!st.ok()) {
      // Roll back the shards already running so the caller gets a clean
      // all-or-nothing facade.
      for (size_t j = 0; j < i; ++j) shards_[j]->Stop();
      return st;
    }
  }
  return Status::OK();
}

void ShardedBackup::Stop() {
  for (auto& shard : shards_) shard->Stop();
}

Timestamp ShardedBackup::TableVisibleTs(TableId table) const {
  return shards_[static_cast<size_t>(map_->shard_of(table))]->TableVisibleTs(
      table);
}

Timestamp ShardedBackup::GlobalVisibleTs() const {
  return coordinator_.GlobalSafeTimestamp();
}

TableStore* ShardedBackup::store() { return shards_[0]->store(); }

TableStore* ShardedBackup::StoreForTable(TableId table) {
  return shards_[static_cast<size_t>(map_->shard_of(table))]->StoreForTable(
      table);
}

const storage::ColumnStore* ShardedBackup::ColumnStoreForTable(
    TableId table) const {
  return shards_[static_cast<size_t>(map_->shard_of(table))]
      ->ColumnStoreForTable(table);
}

const ReplayStats& ShardedBackup::stats() const {
  // Re-aggregated on every call: cheap (a few atomic loads per shard) and
  // always current. agg_ is only ever written here; concurrent readers see
  // a consistent-enough snapshot for stats purposes, same as any ReplayStats
  // read while replay runs.
  uint64_t epochs = 0, txns = 0, records = 0, bytes = 0;
  uint64_t retried = 0, dups = 0, corrupt = 0, heartbeats = 0, stalls = 0;
  int64_t dispatch = 0, replay = 0, commit = 0, stage1 = 0, stage2 = 0;
  int64_t sync_wait = 0;
  int64_t wall_start = 0, wall_end = 0;
  for (const auto& shard : shards_) {
    const ReplayStats& s = shard->stats();
    epochs += s.epochs.load();
    txns += s.txns.load();
    records += s.records.load();
    bytes += s.bytes.load();
    dispatch += s.dispatch_ns.load();
    replay += s.replay_ns.load();
    commit += s.commit_ns.load();
    stage1 += s.stage1_wall_ns.load();
    stage2 += s.stage2_wall_ns.load();
    sync_wait += s.sync_wait_ns.load();
    retried += s.epochs_retried.load();
    dups += s.duplicates_dropped.load();
    corrupt += s.corrupt_dropped.load();
    heartbeats += s.heartbeats.load();
    stalls += s.pipeline_stalls.load();
    int64_t start = s.wall_start_us.load();
    if (start != 0 && (wall_start == 0 || start < wall_start)) {
      wall_start = start;
    }
    int64_t end = s.wall_end_us.load();
    if (end > wall_end) wall_end = end;
  }
  agg_.epochs.store(epochs);
  agg_.txns.store(txns);
  agg_.records.store(records);
  agg_.bytes.store(bytes);
  agg_.dispatch_ns.store(dispatch);
  agg_.replay_ns.store(replay);
  agg_.commit_ns.store(commit);
  agg_.stage1_wall_ns.store(stage1);
  agg_.stage2_wall_ns.store(stage2);
  agg_.sync_wait_ns.store(sync_wait);
  agg_.epochs_retried.store(retried);
  agg_.duplicates_dropped.store(dups);
  agg_.corrupt_dropped.store(corrupt);
  agg_.heartbeats.store(heartbeats);
  agg_.pipeline_stalls.store(stalls);
  agg_.wall_start_us.store(wall_start);
  agg_.wall_end_us.store(wall_end);
  return agg_;
}

std::string ShardedBackup::name() const {
  return "Sharded[" + shards_[0]->name() + " x " +
         std::to_string(shards_.size()) + "]";
}

std::unique_ptr<ShardedBackup> MakeShardedAetsBackup(
    const Catalog* catalog, const ShardMap* map,
    const std::vector<EpochChannel*>& shard_channels, const AetsOptions& base) {
  AETS_CHECK(catalog != nullptr && map != nullptr);
  const int n = map->num_shards();
  AETS_CHECK_MSG(static_cast<int>(shard_channels.size()) == n,
                 "need exactly one channel per shard");
  // Predicted per-shard load: the sum of the configured access rates over
  // the shard's tables. All-zero (no prediction) falls back to an even
  // split inside SplitThreadBudget.
  std::vector<double> loads(static_cast<size_t>(n), 0.0);
  for (TableId t = 0; t < catalog->num_tables(); ++t) {
    if (t < base.initial_rates.size()) {
      loads[static_cast<size_t>(map->shard_of(t))] += base.initial_rates[t];
    }
  }
  std::vector<int> replay_split = SplitThreadBudget(loads, base.replay_threads);
  std::vector<int> commit_split = SplitThreadBudget(loads, base.commit_threads);
  std::vector<std::unique_ptr<Replayer>> shards;
  shards.reserve(static_cast<size_t>(n));
  for (int s = 0; s < n; ++s) {
    AetsOptions opts = base;
    opts.name = base.name + ".s" + std::to_string(s);
    opts.replay_threads = replay_split[static_cast<size_t>(s)];
    opts.commit_threads = commit_split[static_cast<size_t>(s)];
    shards.push_back(std::make_unique<AetsReplayer>(
        catalog, shard_channels[static_cast<size_t>(s)], std::move(opts)));
  }
  return std::make_unique<ShardedBackup>(map, std::move(shards));
}

}  // namespace aets
