#include "aets/baselines/c5_replayer.h"

#include <chrono>
#include <thread>
#include <vector>

#include "aets/common/macros.h"
#include "aets/log/codec.h"
#include "aets/obs/trace.h"

namespace aets {

namespace {

size_t RowQueueOf(TableId table, int64_t row_key, int workers) {
  uint64_t h = (static_cast<uint64_t>(table) << 48) ^
               static_cast<uint64_t>(row_key) * 0x9E3779B97F4A7C15ull;
  h = (h ^ (h >> 31)) * 0xBF58476D1CE4E5B9ull;
  return static_cast<size_t>(h % static_cast<uint64_t>(workers));
}

}  // namespace

C5Replayer::C5Replayer(const Catalog* catalog, EpochChannel* channel,
                       C5Options options)
    : ReplayerBase(catalog, channel, "C5"), options_(options) {
  SetPipelineDepth(options_.pipeline_depth);
}

C5Replayer::~C5Replayer() { Stop(); }

Status C5Replayer::StartWorkers() {
  if (options_.workers <= 0) {
    return Status::InvalidArgument("workers must be positive");
  }
  pool_ = std::make_unique<ThreadPool>(
      options_.workers, /*max_queue=*/static_cast<size_t>(options_.workers) * 2);
  return Status::OK();
}

void C5Replayer::StopWorkers() { pool_.reset(); }

Timestamp C5Replayer::TableVisibleTs(TableId) const {
  return watermark_.load(std::memory_order_acquire);
}

Timestamp C5Replayer::GlobalVisibleTs() const {
  return watermark_.load(std::memory_order_acquire);
}

void C5Replayer::ProcessHeartbeat(const ShippedEpoch& epoch) {
  StoreMaxTimestamp(watermark_, epoch.heartbeat_ts);
}

std::unique_ptr<ReplayerBase::PreparedEpoch> C5Replayer::PrepareEpoch(
    const ShippedEpoch& epoch) {
  AETS_TRACE_SPAN("replay.prepare");
  // Row-based dispatch: decode the ENTIRE data image on the dispatch thread
  // and send each operation, in transaction order, to the dedicated queue of
  // its row. Per-transaction remaining-op counters drive the watermark. All
  // decode errors surface here, before any worker runs — the queues drain
  // only in CommitEpoch, so the pipeline overlaps this parse with the
  // previous epoch's apply.
  auto prep = std::make_unique<PreparedC5>();
  prep->queues.resize(static_cast<size_t>(options_.workers));
  ScopedTimerNs timer(&stats_.dispatch_ns);
  const std::string& data = *epoch.payload;
  prep->txn_ts.reserve(epoch.num_txns);
  std::vector<uint32_t> counts;
  counts.reserve(epoch.num_txns);
  size_t offset = 0;
  size_t cur_txn = SIZE_MAX;
  Timestamp cur_ts = kInvalidTimestamp;
  while (offset < data.size()) {
    auto rec = LogCodec::DecodeView(data, &offset);  // full image decode
    if (!rec.ok()) {
      SetError(rec.status());
      return prep;
    }
    switch (rec->type) {
      case LogRecordType::kBegin:
        cur_txn = prep->txn_ts.size();
        cur_ts = rec->timestamp;
        prep->txn_ts.push_back(cur_ts);
        counts.push_back(0);
        break;
      case LogRecordType::kCommit:
      case LogRecordType::kHeartbeat:
        break;
      default: {
        if (cur_txn == SIZE_MAX) {
          SetError(Status::Corruption("DML outside transaction"));
          return prep;
        }
        size_t q = RowQueueOf(rec->table_id, rec->row_key, options_.workers);
        counts[cur_txn]++;
        RowOp op;
        op.table_id = rec->table_id;
        op.row_key = rec->row_key;
        op.txn_id = rec->txn_id;
        op.is_delete = rec->type == LogRecordType::kDelete;
        op.delta = PackedDelta::FromWire(rec->num_values, rec->value_bytes);
        op.commit_ts = cur_ts;
        op.txn_index = cur_txn;
        prep->queues[q].push_back(std::move(op));
        break;
      }
    }
  }
  prep->txn_remaining = std::vector<std::atomic<uint32_t>>(counts.size());
  for (size_t i = 0; i < counts.size(); ++i) {
    prep->txn_remaining[i].store(counts[i], std::memory_order_relaxed);
  }
  return prep;
}

void C5Replayer::CommitEpoch(const ShippedEpoch& epoch,
                             std::unique_ptr<PreparedEpoch> prepared) {
  AETS_TRACE_SPAN("replay.epoch");
  auto* prep = static_cast<PreparedC5*>(prepared.get());
  std::vector<std::vector<RowOp>>* queues = &prep->queues;
  std::vector<std::atomic<uint32_t>>* txn_remaining = &prep->txn_remaining;
  for (int w = 0; w < options_.workers; ++w) {
    bool accepted = pool_->Submit([this, queues, txn_remaining, w] {
      ScopedTimerNs timer(&stats_.replay_ns);
      for (auto& op : (*queues)[static_cast<size_t>(w)]) {
        MemNode* node =
            store_.GetTable(op.table_id)->GetOrCreateNode(op.row_key);
        // Writes to one row always land in the same queue in log order, so
        // per-row operation order holds without any check — but commit-ts
        // monotonicity across rows of a node still requires waiting for
        // earlier epoch-internal versions of the same row only, which queue
        // order already guarantees.
        VersionCell cell;
        cell.commit_ts = op.commit_ts;
        cell.txn_id = op.txn_id;
        cell.is_delete = op.is_delete;
        cell.delta = std::move(op.delta);
        node->AppendVersion(std::move(cell));
        (*txn_remaining)[op.txn_index].fetch_sub(1, std::memory_order_acq_rel);
      }
    });
    if (!accepted) {
      SetError(Status::Internal("worker pool rejected an apply task"));
      break;
    }
  }

  // The watermark thread: every watermark_period_us, advance the snapshot
  // timestamp to the largest prefix of transactions whose operations have
  // all been applied (the "smallest completed LSN" rule).
  std::atomic<bool> workers_done{false};
  std::thread watermark_thread([this, prep, &workers_done] {
    size_t next = 0;
    for (;;) {
      bool done = workers_done.load(std::memory_order_acquire);
      {
        ScopedTimerNs timer(&stats_.commit_ns);
        while (next < prep->txn_ts.size() &&
               prep->txn_remaining[next].load(std::memory_order_acquire) == 0) {
          // Max-guarded: a sharded sub-epoch's patched header max may have
          // already advanced the watermark past this sub-stream's own
          // timestamps; a plain store would move it backwards.
          StoreMaxTimestamp(watermark_, prep->txn_ts[next]);
          stats_.txns.fetch_add(1, std::memory_order_relaxed);
          ++next;
        }
      }
      if (next >= prep->txn_ts.size() || done) break;
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.watermark_period_us));
    }
  });

  pool_->WaitIdle();
  workers_done.store(true, std::memory_order_release);
  watermark_thread.join();
  // Sharded sub-epochs carry the FULL epoch's max_commit_ts in the header;
  // advance to it after a clean epoch so this shard keeps pace with the
  // primary even when its own last transaction commits earlier (no-op
  // unsharded).
  if (!HasError()) StoreMaxTimestamp(watermark_, epoch.max_commit_ts);
}

}  // namespace aets
