#include "aets/baselines/tplr_replayer.h"

namespace aets {

AetsOptions TplrBaselineOptions(int replay_threads) {
  AetsOptions options;
  options.replay_threads = replay_threads;
  options.commit_threads = 1;  // one group, one commit thread
  options.two_stage = false;
  options.adaptive_alloc = false;
  options.grouping = GroupingMode::kSingle;
  options.regroup_on_rate_change = false;
  options.name = "TPLR";
  return options;
}

std::unique_ptr<AetsReplayer> MakeTplrReplayer(const Catalog* catalog,
                                               EpochChannel* channel,
                                               int replay_threads) {
  auto replayer = std::make_unique<AetsReplayer>(
      catalog, channel, TplrBaselineOptions(replay_threads));
  return replayer;
}

}  // namespace aets
