#ifndef AETS_BASELINES_SERIAL_REPLAYER_H_
#define AETS_BASELINES_SERIAL_REPLAYER_H_

#include <atomic>
#include <memory>

#include "aets/catalog/catalog.h"
#include "aets/log/shipped_epoch.h"
#include "aets/replay/replayer_base.h"
#include "aets/replication/channel.h"

namespace aets {

/// Single-threaded replayer that applies transactions strictly in commit
/// order. It is the correctness oracle: every parallel replayer's final
/// backup state must equal the serial replayer's (and the primary's). It
/// deliberately keeps the owning decode path (DecodeEpoch) so the oracle
/// exercises different codec machinery than the replayers under test.
///
/// The cross-epoch pipeline (DESIGN.md §9) still applies: the owning decode
/// of epoch N+1 overlaps the apply of epoch N. The apply itself — and every
/// watermark store — remains strictly serial in commit order.
class SerialReplayer : public ReplayerBase {
 public:
  SerialReplayer(const Catalog* catalog, EpochChannel* channel,
                 int pipeline_depth = 2);
  ~SerialReplayer() override;

  Timestamp TableVisibleTs(TableId table) const override;
  Timestamp GlobalVisibleTs() const override;

 protected:
  std::unique_ptr<PreparedEpoch> PrepareEpoch(
      const ShippedEpoch& epoch) override;
  void CommitEpoch(const ShippedEpoch& epoch,
                   std::unique_ptr<PreparedEpoch> prepared) override;
  void ProcessHeartbeat(const ShippedEpoch& epoch) override;

 private:
  /// Prepare-stage output: the owning decode of one epoch.
  struct PreparedSerial : PreparedEpoch {
    Epoch epoch;
  };

  std::atomic<Timestamp> watermark_{kInvalidTimestamp};
};

}  // namespace aets

#endif  // AETS_BASELINES_SERIAL_REPLAYER_H_
