#ifndef AETS_BASELINES_SERIAL_REPLAYER_H_
#define AETS_BASELINES_SERIAL_REPLAYER_H_

#include <atomic>

#include "aets/catalog/catalog.h"
#include "aets/replay/replayer_base.h"
#include "aets/replication/channel.h"

namespace aets {

/// Single-threaded replayer that applies transactions strictly in commit
/// order. It is the correctness oracle: every parallel replayer's final
/// backup state must equal the serial replayer's (and the primary's). It
/// deliberately keeps the owning decode path (DecodeEpoch) so the oracle
/// exercises different codec machinery than the replayers under test.
class SerialReplayer : public ReplayerBase {
 public:
  SerialReplayer(const Catalog* catalog, EpochChannel* channel);
  ~SerialReplayer() override;

  Timestamp TableVisibleTs(TableId table) const override;
  Timestamp GlobalVisibleTs() const override;

 protected:
  void ProcessEpoch(const ShippedEpoch& epoch) override;
  void ProcessHeartbeat(const ShippedEpoch& epoch) override;

 private:
  std::atomic<Timestamp> watermark_{kInvalidTimestamp};
};

}  // namespace aets

#endif  // AETS_BASELINES_SERIAL_REPLAYER_H_
