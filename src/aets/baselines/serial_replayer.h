#ifndef AETS_BASELINES_SERIAL_REPLAYER_H_
#define AETS_BASELINES_SERIAL_REPLAYER_H_

#include <atomic>
#include <string>
#include <thread>

#include "aets/catalog/catalog.h"
#include "aets/replay/replayer.h"
#include "aets/replication/channel.h"
#include "aets/storage/table_store.h"

namespace aets {

/// Single-threaded replayer that applies transactions strictly in commit
/// order. It is the correctness oracle: every parallel replayer's final
/// backup state must equal the serial replayer's (and the primary's).
class SerialReplayer : public Replayer {
 public:
  SerialReplayer(const Catalog* catalog, EpochChannel* channel);
  ~SerialReplayer() override;

  Status Start() override;
  void Stop() override;

  Timestamp TableVisibleTs(TableId table) const override;
  Timestamp GlobalVisibleTs() const override;
  TableStore* store() override { return &store_; }
  const ReplayStats& stats() const override { return stats_; }
  std::string name() const override { return "Serial"; }

  Status error() const;

 private:
  void MainLoop();

  const Catalog* catalog_;
  EpochChannel* channel_;
  TableStore store_;
  ReplayStats stats_;
  std::atomic<Timestamp> watermark_{kInvalidTimestamp};
  std::thread main_thread_;
  EpochId expected_epoch_ = 0;
  bool started_ = false;

  mutable std::mutex error_mu_;
  Status error_;
};

}  // namespace aets

#endif  // AETS_BASELINES_SERIAL_REPLAYER_H_
