#ifndef AETS_BASELINES_ATR_REPLAYER_H_
#define AETS_BASELINES_ATR_REPLAYER_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "aets/catalog/catalog.h"
#include "aets/common/thread_pool.h"
#include "aets/log/shipped_epoch.h"
#include "aets/replay/replayer.h"
#include "aets/replication/channel.h"
#include "aets/storage/table_store.h"

namespace aets {

struct AtrOptions {
  int workers = 4;
};

/// Reimplementation of the ATR log replay baseline (Lee et al., VLDB'17) on
/// our substrate: transactionID-based dispatch (txn_id modulo worker count),
/// workers install versions directly into the Memtable guarded by the
/// per-record operation-sequence check (spin until the record's chain head
/// matches the log entry's before-image txn id), and a single commit thread
/// that advances the visibility watermark in primary transaction order.
/// There is no table grouping: all tables publish the same watermark.
class AtrReplayer : public Replayer {
 public:
  AtrReplayer(const Catalog* catalog, EpochChannel* channel, AtrOptions options);
  ~AtrReplayer() override;

  Status Start() override;
  void Stop() override;

  Timestamp TableVisibleTs(TableId table) const override;
  Timestamp GlobalVisibleTs() const override;
  TableStore* store() override { return &store_; }
  const ReplayStats& stats() const override { return stats_; }
  std::string name() const override { return "ATR"; }

  Status error() const;

 private:
  /// One transaction's work: offsets of its DML records in the payload.
  struct TxnTask {
    TxnId txn_id = kInvalidTxnId;
    Timestamp commit_ts = kInvalidTimestamp;
    std::vector<size_t> offsets;
    std::atomic<bool> done{false};
  };

  void MainLoop();
  void ProcessEpoch(const ShippedEpoch& epoch);
  void WorkerRun(const std::string& payload, std::deque<TxnTask>* tasks,
                 int worker_id);
  void SetError(Status status);

  const Catalog* catalog_;
  EpochChannel* channel_;
  AtrOptions options_;
  TableStore store_;
  ReplayStats stats_;
  std::atomic<Timestamp> watermark_{kInvalidTimestamp};

  std::unique_ptr<ThreadPool> pool_;
  std::thread main_thread_;
  EpochId expected_epoch_ = 0;
  bool started_ = false;

  mutable std::mutex error_mu_;
  Status error_;
};

}  // namespace aets

#endif  // AETS_BASELINES_ATR_REPLAYER_H_
