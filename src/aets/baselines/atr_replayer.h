#ifndef AETS_BASELINES_ATR_REPLAYER_H_
#define AETS_BASELINES_ATR_REPLAYER_H_

#include <atomic>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "aets/catalog/catalog.h"
#include "aets/common/thread_pool.h"
#include "aets/log/shipped_epoch.h"
#include "aets/replay/replayer_base.h"
#include "aets/replication/channel.h"

namespace aets {

struct AtrOptions {
  int workers = 4;
  /// Cross-epoch pipeline depth (DESIGN.md §9): metadata dispatch of epoch
  /// N+1 overlaps the worker apply + watermark advance of epoch N. Kept at
  /// the same default as AetsOptions so benchmark comparisons stay
  /// apples-to-apples.
  int pipeline_depth = 2;
};

/// Reimplementation of the ATR log replay baseline (Lee et al., VLDB'17) on
/// our substrate: transactionID-based dispatch (txn_id modulo worker count),
/// workers install versions directly into the Memtable guarded by the
/// per-record operation-sequence check (spin until the record's chain head
/// matches the log entry's before-image txn id), and a single commit thread
/// that advances the visibility watermark in primary transaction order.
/// There is no table grouping: all tables publish the same watermark.
class AtrReplayer : public ReplayerBase {
 public:
  AtrReplayer(const Catalog* catalog, EpochChannel* channel, AtrOptions options);
  ~AtrReplayer() override;

  Timestamp TableVisibleTs(TableId table) const override;
  Timestamp GlobalVisibleTs() const override;

 protected:
  Status StartWorkers() override;
  void StopWorkers() override;
  std::unique_ptr<PreparedEpoch> PrepareEpoch(
      const ShippedEpoch& epoch) override;
  void CommitEpoch(const ShippedEpoch& epoch,
                   std::unique_ptr<PreparedEpoch> prepared) override;
  void ProcessHeartbeat(const ShippedEpoch& epoch) override;

 private:
  /// One transaction's work: offsets of its DML records in the payload.
  struct TxnTask {
    TxnId txn_id = kInvalidTxnId;
    Timestamp commit_ts = kInvalidTimestamp;
    std::vector<size_t> offsets;
    std::atomic<bool> done{false};
  };

  /// Prepare-stage output: the per-transaction dispatch of one epoch. The
  /// workers only run during CommitEpoch (ATR installs versions directly,
  /// which must stay epoch-ordered), so nothing here outlives its commit.
  struct PreparedAtr : PreparedEpoch {
    std::shared_ptr<const std::string> payload;
    std::deque<TxnTask> tasks;
  };

  void WorkerRun(const std::string& payload, std::deque<TxnTask>* tasks,
                 int worker_id);

  AtrOptions options_;
  std::atomic<Timestamp> watermark_{kInvalidTimestamp};
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace aets

#endif  // AETS_BASELINES_ATR_REPLAYER_H_
