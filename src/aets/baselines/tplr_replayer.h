#ifndef AETS_BASELINES_TPLR_REPLAYER_H_
#define AETS_BASELINES_TPLR_REPLAYER_H_

#include <memory>

#include "aets/replay/aets_replayer.h"

namespace aets {

/// The TPLR baseline of the paper's evaluation: the two-phase parallel
/// replay algorithm WITHOUT table grouping — hot and cold tables share one
/// group, so there is a single commit thread and no two-stage priority.
/// Exactly AETS configured with a single group.
AetsOptions TplrBaselineOptions(int replay_threads);

std::unique_ptr<AetsReplayer> MakeTplrReplayer(const Catalog* catalog,
                                               EpochChannel* channel,
                                               int replay_threads);

}  // namespace aets

#endif  // AETS_BASELINES_TPLR_REPLAYER_H_
