#include "aets/baselines/atr_replayer.h"

#include <chrono>

#include "aets/common/macros.h"
#include "aets/log/codec.h"
#include "aets/obs/trace.h"

namespace aets {

AtrReplayer::AtrReplayer(const Catalog* catalog, EpochChannel* channel,
                         AtrOptions options)
    : catalog_(catalog),
      channel_(channel),
      options_(options),
      store_(*catalog) {}

AtrReplayer::~AtrReplayer() { Stop(); }

Status AtrReplayer::Start() {
  if (options_.workers <= 0) {
    return Status::InvalidArgument("workers must be positive");
  }
  if (started_) return Status::InvalidArgument("already started");
  pool_ = std::make_unique<ThreadPool>(options_.workers);
  started_ = true;
  main_thread_ = std::thread([this] { MainLoop(); });
  return Status::OK();
}

void AtrReplayer::Stop() {
  if (!started_) return;
  if (main_thread_.joinable()) main_thread_.join();
  pool_.reset();
  started_ = false;
}

Timestamp AtrReplayer::TableVisibleTs(TableId) const {
  return watermark_.load(std::memory_order_acquire);
}

Timestamp AtrReplayer::GlobalVisibleTs() const {
  return watermark_.load(std::memory_order_acquire);
}

Status AtrReplayer::error() const {
  std::lock_guard<std::mutex> lk(error_mu_);
  return error_;
}

void AtrReplayer::SetError(Status status) {
  std::lock_guard<std::mutex> lk(error_mu_);
  if (error_.ok()) error_ = std::move(status);
}

void AtrReplayer::MainLoop() {
  while (auto epoch = channel_->Receive()) {
    if (epoch->epoch_id != expected_epoch_) {
      SetError(Status::Corruption("epoch out of order"));
      return;
    }
    ++expected_epoch_;
    if (stats_.wall_start_us.load() == 0) {
      stats_.wall_start_us.store(MonotonicMicros());
    }
    if (epoch->is_heartbeat()) {
      watermark_.store(epoch->heartbeat_ts, std::memory_order_release);
    } else {
      ProcessEpoch(*epoch);
    }
    stats_.wall_end_us.store(MonotonicMicros());
  }
}

void AtrReplayer::ProcessEpoch(const ShippedEpoch& epoch) {
  AETS_TRACE_SPAN("replay.epoch");
  // Dispatch: one metadata pass splits the payload into per-transaction
  // tasks (transactionID-based dispatch parses only the log metadata).
  std::deque<TxnTask> tasks;
  {
    ScopedTimerNs timer(&stats_.dispatch_ns);
    const std::string& data = *epoch.payload;
    size_t offset = 0;
    TxnTask* open = nullptr;
    while (offset < data.size()) {
      size_t rec_start = offset;
      auto rec = LogCodec::DecodeMetadata(data, &offset);
      if (!rec.ok()) {
        SetError(rec.status());
        return;
      }
      switch (rec->type) {
        case LogRecordType::kBegin:
          tasks.emplace_back();
          open = &tasks.back();
          open->txn_id = rec->txn_id;
          open->commit_ts = rec->timestamp;
          break;
        case LogRecordType::kCommit:
          open = nullptr;
          break;
        case LogRecordType::kHeartbeat:
          break;
        default:
          if (open == nullptr) {
            SetError(Status::Corruption("DML outside transaction"));
            return;
          }
          open->offsets.push_back(rec_start);
          break;
      }
    }
  }

  const std::string* payload = epoch.payload.get();
  for (int w = 0; w < options_.workers; ++w) {
    pool_->Submit([this, payload, &tasks, w] { WorkerRun(*payload, &tasks, w); });
  }

  // The single commit thread: make transactions visible strictly in primary
  // commit order (run inline on the epoch loop thread). Spin-then-yield so
  // the workers never pay a wake-up cost.
  {
    for (auto& task : tasks) {
      int spins = 0;
      int yields = 0;
      while (!task.done.load(std::memory_order_acquire)) {
        if (++spins > 64) {
          spins = 0;
          if (++yields > 256) {
            std::this_thread::sleep_for(std::chrono::microseconds(20));
          } else {
            std::this_thread::yield();
          }
        }
      }
      ScopedTimerNs timer(&stats_.commit_ns);
      watermark_.store(task.commit_ts, std::memory_order_release);
      stats_.txns.fetch_add(1, std::memory_order_relaxed);
    }
  }
  pool_->WaitIdle();

  stats_.epochs.fetch_add(1, std::memory_order_relaxed);
  stats_.records.fetch_add(epoch.num_records, std::memory_order_relaxed);
  stats_.bytes.fetch_add(epoch.ByteSize(), std::memory_order_relaxed);

  static obs::Counter* epochs_applied = obs::GetCounter("replay.epochs_applied");
  static obs::Counter* txns_applied = obs::GetCounter("replay.txns_applied");
  static obs::Counter* records_applied =
      obs::GetCounter("replay.records_applied");
  static obs::Counter* bytes_applied = obs::GetCounter("replay.bytes_applied");
  epochs_applied->Add(1);
  txns_applied->Add(epoch.num_txns);
  records_applied->Add(epoch.num_records);
  bytes_applied->Add(epoch.ByteSize());
}

void AtrReplayer::WorkerRun(const std::string& payload,
                            std::deque<TxnTask>* tasks, int worker_id) {
  ScopedTimerNs timer(&stats_.replay_ns);
  for (size_t i = static_cast<size_t>(worker_id); i < tasks->size();
       i += static_cast<size_t>(options_.workers)) {
    TxnTask& task = (*tasks)[i];
    for (size_t off : task.offsets) {
      size_t pos = off;
      auto rec = LogCodec::Decode(payload, &pos);
      if (!rec.ok()) {
        SetError(rec.status());
        break;
      }
      LogRecord r = std::move(rec).value();
      MemNode* node = store_.GetTable(r.table_id)->GetOrCreateNode(r.row_key);
      // Operation-sequence check: versions of one record must be installed
      // in the primary's modification order. Spin until the chain length
      // matches the log entry's row sequence (its before-image position);
      // the dependency always points to an earlier operation, so this
      // cannot deadlock. Time spent here is the synchronization cost the
      // paper identifies as ATR's scalability limiter.
      if (node->NumVersions() != r.row_seq) {
        static obs::Counter* sync_retries =
            obs::GetCounter("replay.conflict_retries");
        sync_retries->Add(1);
        ScopedTimerNs wait_timer(&stats_.sync_wait_ns);
        int spins = 0;
        while (node->NumVersions() != r.row_seq) {
          if (++spins > 512) {
            std::this_thread::yield();
            spins = 0;
          }
        }
      }
      VersionCell cell;
      cell.commit_ts = task.commit_ts;
      cell.txn_id = r.txn_id;
      cell.is_delete = r.type == LogRecordType::kDelete;
      cell.delta = std::move(r.values);
      node->AppendVersion(std::move(cell));
    }
    task.done.store(true, std::memory_order_release);
  }
}

}  // namespace aets
