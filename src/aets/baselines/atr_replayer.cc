#include "aets/baselines/atr_replayer.h"

#include "aets/common/backoff.h"
#include "aets/common/macros.h"
#include "aets/log/codec.h"
#include "aets/obs/trace.h"

namespace aets {

AtrReplayer::AtrReplayer(const Catalog* catalog, EpochChannel* channel,
                         AtrOptions options)
    : ReplayerBase(catalog, channel, "ATR"), options_(options) {
  SetPipelineDepth(options_.pipeline_depth);
}

AtrReplayer::~AtrReplayer() { Stop(); }

Status AtrReplayer::StartWorkers() {
  if (options_.workers <= 0) {
    return Status::InvalidArgument("workers must be positive");
  }
  pool_ = std::make_unique<ThreadPool>(
      options_.workers, /*max_queue=*/static_cast<size_t>(options_.workers) * 2);
  return Status::OK();
}

void AtrReplayer::StopWorkers() { pool_.reset(); }

Timestamp AtrReplayer::TableVisibleTs(TableId) const {
  return watermark_.load(std::memory_order_acquire);
}

Timestamp AtrReplayer::GlobalVisibleTs() const {
  return watermark_.load(std::memory_order_acquire);
}

void AtrReplayer::ProcessHeartbeat(const ShippedEpoch& epoch) {
  StoreMaxTimestamp(watermark_, epoch.heartbeat_ts);
}

std::unique_ptr<ReplayerBase::PreparedEpoch> AtrReplayer::PrepareEpoch(
    const ShippedEpoch& epoch) {
  AETS_TRACE_SPAN("replay.prepare");
  // Dispatch: one metadata pass splits the payload into per-transaction
  // tasks (transactionID-based dispatch parses only the log metadata). The
  // workers install directly into the Memtable, so they only run in
  // CommitEpoch — the pipeline overlaps this pass with the previous epoch's
  // apply.
  auto prep = std::make_unique<PreparedAtr>();
  prep->payload = epoch.payload;
  ScopedTimerNs timer(&stats_.dispatch_ns);
  const std::string& data = *epoch.payload;
  size_t offset = 0;
  TxnTask* open = nullptr;
  while (offset < data.size()) {
    size_t rec_start = offset;
    auto rec = LogCodec::DecodeMetadata(data, &offset);
    if (!rec.ok()) {
      SetError(rec.status());
      return prep;
    }
    switch (rec->type) {
      case LogRecordType::kBegin:
        prep->tasks.emplace_back();
        open = &prep->tasks.back();
        open->txn_id = rec->txn_id;
        open->commit_ts = rec->timestamp;
        break;
      case LogRecordType::kCommit:
        open = nullptr;
        break;
      case LogRecordType::kHeartbeat:
        break;
      default:
        if (open == nullptr) {
          SetError(Status::Corruption("DML outside transaction"));
          return prep;
        }
        open->offsets.push_back(rec_start);
        break;
    }
  }
  return prep;
}

void AtrReplayer::CommitEpoch(const ShippedEpoch& epoch,
                              std::unique_ptr<PreparedEpoch> prepared) {
  AETS_TRACE_SPAN("replay.epoch");
  auto* prep = static_cast<PreparedAtr*>(prepared.get());
  const std::string* payload = epoch.payload.get();
  std::deque<TxnTask>* tasks = &prep->tasks;
  for (int w = 0; w < options_.workers; ++w) {
    if (!pool_->Submit(
            [this, payload, tasks, w] { WorkerRun(*payload, tasks, w); })) {
      SetError(Status::Internal("worker pool rejected an apply task"));
      break;
    }
  }

  // The single commit thread: make transactions visible strictly in primary
  // commit order (run inline on the commit context). Spin-then-yield so
  // the workers never pay a wake-up cost. On error a worker may never flip
  // its tasks' done flags, so the latch is the exit — the watermark freezes
  // at the last fully applied transaction.
  for (auto& task : prep->tasks) {
    SpinBackoff backoff;
    while (!task.done.load(std::memory_order_acquire)) {
      if (HasError()) break;
      backoff.Pause();
    }
    if (HasError()) break;
    ScopedTimerNs timer(&stats_.commit_ns);
    // Max-guarded for the same reason as the epoch-end advance below: the
    // previous sub-epoch's patched header max may exceed this commit.
    StoreMaxTimestamp(watermark_, task.commit_ts);
    stats_.txns.fetch_add(1, std::memory_order_relaxed);
  }
  pool_->WaitIdle();
  // Sharded sub-epochs carry the FULL epoch's max_commit_ts in the header;
  // advance to it after a clean epoch so this shard keeps pace with the
  // primary even when its own last transaction commits earlier (no-op
  // unsharded).
  if (!HasError()) StoreMaxTimestamp(watermark_, epoch.max_commit_ts);
}

void AtrReplayer::WorkerRun(const std::string& payload,
                            std::deque<TxnTask>* tasks, int worker_id) {
  ScopedTimerNs timer(&stats_.replay_ns);
  for (size_t i = static_cast<size_t>(worker_id); i < tasks->size();
       i += static_cast<size_t>(options_.workers)) {
    if (HasError()) return;
    TxnTask& task = (*tasks)[i];
    for (size_t off : task.offsets) {
      size_t pos = off;
      auto rec = LogCodec::DecodeView(payload, &pos);
      if (!rec.ok()) {
        // Leave `done` unset: a partially applied transaction must never
        // become visible. The commit loop and the other workers exit
        // through the error latch.
        SetError(rec.status());
        return;
      }
      MemNode* node =
          store_.GetTable(rec->table_id)->GetOrCreateNode(rec->row_key);
      // Operation-sequence check: versions of one record must be installed
      // in the primary's modification order. Spin until the chain length
      // matches the log entry's row sequence (its before-image position);
      // the dependency always points to an earlier operation, so this
      // cannot stall — unless that operation's worker died on the error
      // latch, which the spin checks for. Time spent here is the
      // synchronization cost the paper identifies as ATR's scalability
      // limiter.
      if (node->NumVersions() != rec->row_seq) {
        static obs::Counter* sync_retries =
            obs::GetCounter("replay.conflict_retries");
        sync_retries->Add(1);
        ScopedTimerNs wait_timer(&stats_.sync_wait_ns);
        SpinBackoff backoff(/*spins_per_yield=*/512,
                            /*yields_before_sleep=*/-1);
        while (node->NumVersions() != rec->row_seq) {
          if (HasError()) return;
          backoff.Pause();
        }
      }
      VersionCell cell;
      cell.commit_ts = task.commit_ts;
      cell.txn_id = rec->txn_id;
      cell.is_delete = rec->type == LogRecordType::kDelete;
      cell.delta = PackedDelta::FromWire(rec->num_values, rec->value_bytes);
      node->AppendVersion(std::move(cell));
    }
    task.done.store(true, std::memory_order_release);
  }
}

}  // namespace aets
