#ifndef AETS_BASELINES_C5_REPLAYER_H_
#define AETS_BASELINES_C5_REPLAYER_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "aets/catalog/catalog.h"
#include "aets/common/thread_pool.h"
#include "aets/log/shipped_epoch.h"
#include "aets/replay/replayer_base.h"
#include "aets/replication/channel.h"
#include "aets/storage/packed_delta.h"

namespace aets {

struct C5Options {
  int workers = 4;
  /// Watermark (snapshot timestamp) advance period (paper: 5 ms).
  int64_t watermark_period_us = 5'000;
  /// Cross-epoch pipeline depth (DESIGN.md §9): the full-image row dispatch
  /// of epoch N+1 overlaps the queue drain + watermark advance of epoch N.
  /// Same default as AetsOptions for apples-to-apples comparisons.
  int pipeline_depth = 2;
};

/// Reimplementation of the C5 baseline (Helt et al., VLDB'22) on our
/// substrate: row-based dispatch — the dispatcher decodes the FULL log data
/// image (the extra parsing cost the paper highlights) and routes each row
/// operation to the dedicated queue owned by hash(table, row); one worker
/// drains each queue in order, which preserves per-row operation order by
/// construction; a single watermark thread advances the snapshot timestamp
/// every `watermark_period_us` to the largest prefix of fully applied
/// transactions. No table grouping: one global watermark.
class C5Replayer : public ReplayerBase {
 public:
  C5Replayer(const Catalog* catalog, EpochChannel* channel, C5Options options);
  ~C5Replayer() override;

  Timestamp TableVisibleTs(TableId table) const override;
  Timestamp GlobalVisibleTs() const override;

 protected:
  Status StartWorkers() override;
  void StopWorkers() override;
  std::unique_ptr<PreparedEpoch> PrepareEpoch(
      const ShippedEpoch& epoch) override;
  void CommitEpoch(const ShippedEpoch& epoch,
                   std::unique_ptr<PreparedEpoch> prepared) override;
  void ProcessHeartbeat(const ShippedEpoch& epoch) override;

 private:
  /// A fully decoded row operation bound for one dedicated queue: the fixed
  /// fields plus the delta already packed for installation (the dispatcher
  /// pays the full parse, per the baseline's design — but no longer a
  /// per-value materialization).
  struct RowOp {
    TableId table_id = kInvalidTableId;
    int64_t row_key = 0;
    TxnId txn_id = kInvalidTxnId;
    bool is_delete = false;
    PackedDelta delta;
    Timestamp commit_ts = kInvalidTimestamp;
    size_t txn_index = 0;  // index into the epoch's txn bookkeeping
  };

  /// Prepare-stage output: the fully decoded per-worker row queues plus the
  /// per-transaction bookkeeping the watermark thread walks. The queues are
  /// drained only during CommitEpoch (C5 installs versions directly), so
  /// nothing here outlives its commit.
  struct PreparedC5 : PreparedEpoch {
    std::vector<std::vector<RowOp>> queues;
    std::vector<Timestamp> txn_ts;
    std::vector<std::atomic<uint32_t>> txn_remaining;
  };

  C5Options options_;
  std::atomic<Timestamp> watermark_{kInvalidTimestamp};
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace aets

#endif  // AETS_BASELINES_C5_REPLAYER_H_
