#ifndef AETS_BASELINES_C5_REPLAYER_H_
#define AETS_BASELINES_C5_REPLAYER_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "aets/catalog/catalog.h"
#include "aets/common/thread_pool.h"
#include "aets/log/shipped_epoch.h"
#include "aets/replay/replayer.h"
#include "aets/replication/channel.h"
#include "aets/storage/table_store.h"

namespace aets {

struct C5Options {
  int workers = 4;
  /// Watermark (snapshot timestamp) advance period (paper: 5 ms).
  int64_t watermark_period_us = 5'000;
};

/// Reimplementation of the C5 baseline (Helt et al., VLDB'22) on our
/// substrate: row-based dispatch — the dispatcher decodes the FULL log data
/// image (the extra parsing cost the paper highlights) and routes each row
/// operation to the dedicated queue owned by hash(table, row); one worker
/// drains each queue in order, which preserves per-row operation order by
/// construction; a single watermark thread advances the snapshot timestamp
/// every `watermark_period_us` to the largest prefix of fully applied
/// transactions. No table grouping: one global watermark.
class C5Replayer : public Replayer {
 public:
  C5Replayer(const Catalog* catalog, EpochChannel* channel, C5Options options);
  ~C5Replayer() override;

  Status Start() override;
  void Stop() override;

  Timestamp TableVisibleTs(TableId table) const override;
  Timestamp GlobalVisibleTs() const override;
  TableStore* store() override { return &store_; }
  const ReplayStats& stats() const override { return stats_; }
  std::string name() const override { return "C5"; }

  Status error() const;

 private:
  /// A fully decoded row operation bound for one dedicated queue.
  struct RowOp {
    LogRecord record;
    Timestamp commit_ts;
    size_t txn_index;  // index into the epoch's txn bookkeeping
  };

  void MainLoop();
  void ProcessEpoch(const ShippedEpoch& epoch);
  void SetError(Status status);

  const Catalog* catalog_;
  EpochChannel* channel_;
  C5Options options_;
  TableStore store_;
  ReplayStats stats_;
  std::atomic<Timestamp> watermark_{kInvalidTimestamp};

  std::unique_ptr<ThreadPool> pool_;
  std::thread main_thread_;
  EpochId expected_epoch_ = 0;
  bool started_ = false;

  mutable std::mutex error_mu_;
  Status error_;
};

}  // namespace aets

#endif  // AETS_BASELINES_C5_REPLAYER_H_
