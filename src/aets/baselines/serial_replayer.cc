#include "aets/baselines/serial_replayer.h"

#include "aets/common/macros.h"
#include "aets/log/shipped_epoch.h"
#include "aets/obs/trace.h"

namespace aets {

SerialReplayer::SerialReplayer(const Catalog* catalog, EpochChannel* channel)
    : ReplayerBase(catalog, channel, "Serial") {}

SerialReplayer::~SerialReplayer() { Stop(); }

Timestamp SerialReplayer::TableVisibleTs(TableId) const {
  return watermark_.load(std::memory_order_acquire);
}

Timestamp SerialReplayer::GlobalVisibleTs() const {
  return watermark_.load(std::memory_order_acquire);
}

void SerialReplayer::ProcessHeartbeat(const ShippedEpoch& epoch) {
  watermark_.store(epoch.heartbeat_ts, std::memory_order_release);
}

void SerialReplayer::ProcessEpoch(const ShippedEpoch& shipped) {
  auto epoch = DecodeEpoch(shipped);
  if (!epoch.ok()) {
    SetError(epoch.status());
    return;
  }
  AETS_TRACE_SPAN("replay.epoch");
  ScopedTimerNs timer(&stats_.replay_ns);
  for (const auto& txn : epoch->txns) {
    for (const auto& rec : txn.records) {
      if (!rec.is_dml()) continue;
      store_.GetTable(rec.table_id)->ApplyCommitted(rec, txn.commit_ts);
    }
    watermark_.store(txn.commit_ts, std::memory_order_release);
    stats_.txns.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace aets
