#include "aets/baselines/serial_replayer.h"

#include <utility>

#include "aets/common/macros.h"
#include "aets/log/shipped_epoch.h"
#include "aets/obs/trace.h"

namespace aets {

SerialReplayer::SerialReplayer(const Catalog* catalog, EpochChannel* channel,
                               int pipeline_depth)
    : ReplayerBase(catalog, channel, "Serial") {
  SetPipelineDepth(pipeline_depth);
}

SerialReplayer::~SerialReplayer() { Stop(); }

Timestamp SerialReplayer::TableVisibleTs(TableId) const {
  return watermark_.load(std::memory_order_acquire);
}

Timestamp SerialReplayer::GlobalVisibleTs() const {
  return watermark_.load(std::memory_order_acquire);
}

void SerialReplayer::ProcessHeartbeat(const ShippedEpoch& epoch) {
  StoreMaxTimestamp(watermark_, epoch.heartbeat_ts);
}

std::unique_ptr<ReplayerBase::PreparedEpoch> SerialReplayer::PrepareEpoch(
    const ShippedEpoch& shipped) {
  AETS_TRACE_SPAN("replay.prepare");
  auto prep = std::make_unique<PreparedSerial>();
  ScopedTimerNs timer(&stats_.dispatch_ns);
  auto epoch = DecodeEpoch(shipped);
  if (!epoch.ok()) {
    SetError(epoch.status());
    return prep;
  }
  prep->epoch = std::move(*epoch);
  return prep;
}

void SerialReplayer::CommitEpoch(const ShippedEpoch& shipped,
                                 std::unique_ptr<PreparedEpoch> prepared) {
  auto* prep = static_cast<PreparedSerial*>(prepared.get());
  AETS_TRACE_SPAN("replay.epoch");
  ScopedTimerNs timer(&stats_.replay_ns);
  for (const auto& txn : prep->epoch.txns) {
    for (const auto& rec : txn.records) {
      if (!rec.is_dml()) continue;
      store_.GetTable(rec.table_id)->ApplyCommitted(rec, txn.commit_ts);
    }
    // Max-guarded: the previous sub-epoch's patched header max may already
    // exceed this shard's next commit timestamp.
    StoreMaxTimestamp(watermark_, txn.commit_ts);
    stats_.txns.fetch_add(1, std::memory_order_relaxed);
  }
  // A sharded sub-epoch's header max_commit_ts is the FULL epoch's max —
  // this shard's last transaction may commit earlier. Advancing to the
  // header max after a clean replay keeps the shard's watermark in step
  // with the primary (no-op unsharded: the last txn IS the header max).
  if (!HasError()) StoreMaxTimestamp(watermark_, shipped.max_commit_ts);
}

}  // namespace aets
