#include "aets/baselines/serial_replayer.h"

#include "aets/common/macros.h"
#include "aets/log/shipped_epoch.h"
#include "aets/obs/trace.h"

namespace aets {

SerialReplayer::SerialReplayer(const Catalog* catalog, EpochChannel* channel)
    : catalog_(catalog), channel_(channel), store_(*catalog) {}

SerialReplayer::~SerialReplayer() { Stop(); }

Status SerialReplayer::Start() {
  if (started_) return Status::InvalidArgument("already started");
  started_ = true;
  main_thread_ = std::thread([this] { MainLoop(); });
  return Status::OK();
}

void SerialReplayer::Stop() {
  if (!started_) return;
  if (main_thread_.joinable()) main_thread_.join();
  started_ = false;
}

Timestamp SerialReplayer::TableVisibleTs(TableId) const {
  return watermark_.load(std::memory_order_acquire);
}

Timestamp SerialReplayer::GlobalVisibleTs() const {
  return watermark_.load(std::memory_order_acquire);
}

Status SerialReplayer::error() const {
  std::lock_guard<std::mutex> lk(error_mu_);
  return error_;
}

void SerialReplayer::MainLoop() {
  while (auto shipped = channel_->Receive()) {
    if (shipped->epoch_id != expected_epoch_) {
      std::lock_guard<std::mutex> lk(error_mu_);
      error_ = Status::Corruption("epoch out of order");
      return;
    }
    ++expected_epoch_;
    if (stats_.wall_start_us.load() == 0) {
      stats_.wall_start_us.store(MonotonicMicros());
    }
    if (shipped->is_heartbeat()) {
      watermark_.store(shipped->heartbeat_ts, std::memory_order_release);
      stats_.wall_end_us.store(MonotonicMicros());
      continue;
    }
    auto epoch = DecodeEpoch(*shipped);
    if (!epoch.ok()) {
      std::lock_guard<std::mutex> lk(error_mu_);
      error_ = epoch.status();
      return;
    }
    {
      AETS_TRACE_SPAN("replay.epoch");
      ScopedTimerNs timer(&stats_.replay_ns);
      for (const auto& txn : epoch->txns) {
        for (const auto& rec : txn.records) {
          if (!rec.is_dml()) continue;
          store_.GetTable(rec.table_id)->ApplyCommitted(rec, txn.commit_ts);
        }
        watermark_.store(txn.commit_ts, std::memory_order_release);
        stats_.txns.fetch_add(1, std::memory_order_relaxed);
        stats_.records.fetch_add(txn.records.size(), std::memory_order_relaxed);
      }
    }
    stats_.epochs.fetch_add(1, std::memory_order_relaxed);
    stats_.bytes.fetch_add(shipped->ByteSize(), std::memory_order_relaxed);
    static obs::Counter* epochs_applied =
        obs::GetCounter("replay.epochs_applied");
    static obs::Counter* txns_applied = obs::GetCounter("replay.txns_applied");
    epochs_applied->Add(1);
    txns_applied->Add(shipped->num_txns);
    stats_.wall_end_us.store(MonotonicMicros());
  }
}

}  // namespace aets
