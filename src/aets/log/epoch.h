#ifndef AETS_LOG_EPOCH_H_
#define AETS_LOG_EPOCH_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "aets/log/record.h"

namespace aets {

/// All log records of one committed transaction, bounded by BEGIN/COMMIT
/// (paper Section III-C: "log entries belonging to the same transaction are
/// bounded by the terms BEGIN and COMMIT").
struct TxnLog {
  TxnId txn_id = kInvalidTxnId;
  Timestamp commit_ts = kInvalidTimestamp;
  std::vector<LogRecord> records;  // BEGIN, DML..., COMMIT

  size_t ByteSize() const {
    size_t size = 0;
    for (const auto& r : records) size += r.ByteSize();
    return size;
  }
};

using EpochId = uint64_t;

/// A fixed-size, non-overlapping batch of committed transactions, segmented
/// on transaction boundaries (paper Section III-B). Epochs are replayed
/// strictly in order.
struct Epoch {
  EpochId epoch_id = 0;
  std::vector<TxnLog> txns;

  TxnId first_txn() const { return txns.empty() ? kInvalidTxnId : txns.front().txn_id; }
  TxnId last_txn() const { return txns.empty() ? kInvalidTxnId : txns.back().txn_id; }
  Timestamp max_commit_ts() const {
    return txns.empty() ? kInvalidTimestamp : txns.back().commit_ts;
  }

  size_t num_txns() const { return txns.size(); }
  size_t num_records() const {
    size_t n = 0;
    for (const auto& t : txns) n += t.records.size();
    return n;
  }
  size_t ByteSize() const {
    size_t size = 0;
    for (const auto& t : txns) size += t.ByteSize();
    return size;
  }
};

/// Groups committed transactions into epochs of `epoch_size` transactions.
/// The builder preserves commit order: transactions must be added in their
/// primary commit order, and epochs are emitted in that same order.
class EpochBuilder {
 public:
  explicit EpochBuilder(size_t epoch_size);

  /// Adds one committed transaction; returns a sealed epoch once
  /// `epoch_size` transactions have accumulated.
  std::optional<Epoch> AddTxn(TxnLog txn);

  /// Seals and returns the partially filled epoch, if any.
  std::optional<Epoch> Flush();

  /// Reserves the next epoch id for an out-of-band epoch (heartbeats).
  /// Only valid when no transactions are pending.
  EpochId ConsumeEpochId();

  size_t epoch_size() const { return epoch_size_; }
  EpochId next_epoch_id() const { return next_id_; }

 private:
  size_t epoch_size_;
  EpochId next_id_ = 0;
  Epoch current_;
  TxnId last_txn_id_ = 0;
};

}  // namespace aets

#endif  // AETS_LOG_EPOCH_H_
