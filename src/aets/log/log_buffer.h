#ifndef AETS_LOG_LOG_BUFFER_H_
#define AETS_LOG_LOG_BUFFER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "aets/catalog/schema.h"
#include "aets/log/record.h"

namespace aets {

/// Append-only in-memory log retained by the primary. Besides feeding the
/// shipper, it answers the workload-characterization questions of the
/// paper's Table I (per-table log-entry counts and hot-table ratios).
class LogBuffer {
 public:
  LogBuffer() = default;
  LogBuffer(const LogBuffer&) = delete;
  LogBuffer& operator=(const LogBuffer&) = delete;

  void Append(const LogRecord& record);
  void AppendAll(const std::vector<LogRecord>& records);

  size_t size() const;
  LogRecord At(size_t index) const;
  std::vector<LogRecord> Snapshot() const;

  /// DML entry count per table (Table I's per-table log statistics).
  std::map<TableId, uint64_t> DmlCountsByTable() const;

  /// Total DML entries.
  uint64_t TotalDmlCount() const;

  /// Fraction of DML entries touching any of `hot_tables` (Table I "ratio").
  double HotRatio(const std::vector<TableId>& hot_tables) const;

 private:
  mutable std::mutex mu_;
  std::vector<LogRecord> records_;
  std::map<TableId, uint64_t> dml_by_table_;
  uint64_t total_dml_ = 0;
};

}  // namespace aets

#endif  // AETS_LOG_LOG_BUFFER_H_
