#ifndef AETS_LOG_VIEW_H_
#define AETS_LOG_VIEW_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "aets/log/record.h"
#include "aets/storage/value.h"

namespace aets {

/// Wire tag of one encoded value. The same byte appears in log-record frames
/// and inside PackedDelta buffers — both carry the value wire format:
///   [tag u8][payload: i64 | f64 | u32 len + bytes | none]
enum class ValueTag : uint8_t {
  kNull = 0,
  kInt64 = 1,
  kDouble = 2,
  kString = 3,
};

/// A non-owning decoded value: scalars by copy, strings as a view into the
/// underlying buffer (an epoch payload or a PackedDelta block). Valid only
/// while that buffer is alive and unmodified.
struct ValueView {
  ValueTag tag = ValueTag::kNull;
  int64_t i64 = 0;        // valid when tag == kInt64
  double f64 = 0.0;       // valid when tag == kDouble
  std::string_view str;   // valid when tag == kString

  bool is_null() const { return tag == ValueTag::kNull; }
  bool is_int64() const { return tag == ValueTag::kInt64; }
  bool is_double() const { return tag == ValueTag::kDouble; }
  bool is_string() const { return tag == ValueTag::kString; }

  /// Materializes an owning Value (allocates for strings).
  Value ToValue() const;

  /// Deep equality against an owning Value (no allocation).
  bool Equals(const Value& v) const;
};

/// Exact wire size of a value: tag byte plus payload.
inline size_t ValueWireSize(const Value& v) { return v.ByteSize(); }

/// Appends the value wire form to a string (codec / test path).
void AppendValueWire(const Value& v, std::string* out);

/// Writes the value wire form at `dst` (PackedDelta path); returns the byte
/// past the last one written. `dst` must have ValueWireSize(v) bytes free.
char* WriteValueWire(char* dst, const Value& v);

/// Parses one value at `p` (bounded by `end`) into `out`. Returns the byte
/// past the value, or nullptr when truncated or the tag is invalid.
const char* ParseValueWire(const char* p, const char* end, ValueView* out);

/// Cursor over a validated sequence of `[col_id u16][value wire]` entries —
/// the payload tail of a DML record and the body of a PackedDelta. The
/// bytes must have been bounds-checked once (DecodeView / PackedDelta do);
/// Next() then never fails before `count` entries are consumed.
class DeltaReader {
 public:
  DeltaReader(std::string_view bytes, uint16_t count)
      : pos_(bytes.data()), end_(bytes.data() + bytes.size()),
        remaining_(count) {}

  /// Reads the next (column, value) entry. False once exhausted.
  bool Next(ColumnId* col, ValueView* value);

  uint16_t remaining() const { return remaining_; }

 private:
  const char* pos_;
  const char* end_;
  uint16_t remaining_;
};

/// A non-owning decoded log record: fixed fields by copy, values as a raw
/// validated slice into the source buffer. The view (and every ValueView
/// obtained from it) is valid only while the source buffer out-lives it —
/// for replay, until the epoch's shared payload is released.
struct LogRecordView {
  LogRecordType type = LogRecordType::kBegin;
  Lsn lsn = 0;
  TxnId txn_id = kInvalidTxnId;
  Timestamp timestamp = kInvalidTimestamp;
  TableId table_id = kInvalidTableId;
  int64_t row_key = 0;
  TxnId prev_txn_id = kInvalidTxnId;
  uint64_t row_seq = 0;
  /// Declared value count; for metadata-only decodes the count is read from
  /// the DML header but `value_bytes` stays empty (values not validated).
  uint16_t num_values = 0;
  /// Validated `[col_id u16][value wire]` entries (full decodes only).
  std::string_view value_bytes;

  bool is_dml() const {
    return type == LogRecordType::kInsert || type == LogRecordType::kUpdate ||
           type == LogRecordType::kDelete;
  }

  DeltaReader values() const { return DeltaReader(value_bytes, num_values); }

  /// Materializes an owning LogRecord (the one allocation-heavy path, kept
  /// for the serial oracle, DecodeAll, and tests).
  LogRecord Materialize() const;
};

}  // namespace aets

#endif  // AETS_LOG_VIEW_H_
