#include "aets/log/record.h"

namespace aets {

std::string_view LogRecordTypeToString(LogRecordType type) {
  switch (type) {
    case LogRecordType::kBegin:
      return "BEGIN";
    case LogRecordType::kCommit:
      return "COMMIT";
    case LogRecordType::kInsert:
      return "INSERT";
    case LogRecordType::kUpdate:
      return "UPDATE";
    case LogRecordType::kDelete:
      return "DELETE";
    case LogRecordType::kHeartbeat:
      return "HEARTBEAT";
  }
  return "UNKNOWN";
}

size_t LogRecord::ByteSize() const {
  // header: type + lsn + txn + ts
  size_t size = 1 + 8 + 8 + 8;
  if (is_dml()) {
    size += 4 + 8 + 8 + 8 + 2;  // table + row key + prev txn + seq + count
    for (const auto& cv : values) size += 2 + cv.value.ByteSize();
  }
  return size;
}

LogRecord LogRecord::Begin(Lsn lsn, TxnId txn, Timestamp ts) {
  LogRecord r;
  r.type = LogRecordType::kBegin;
  r.lsn = lsn;
  r.txn_id = txn;
  r.timestamp = ts;
  return r;
}

LogRecord LogRecord::Commit(Lsn lsn, TxnId txn, Timestamp commit_ts) {
  LogRecord r;
  r.type = LogRecordType::kCommit;
  r.lsn = lsn;
  r.txn_id = txn;
  r.timestamp = commit_ts;
  return r;
}

LogRecord LogRecord::Heartbeat(Lsn lsn, TxnId txn, Timestamp ts) {
  LogRecord r;
  r.type = LogRecordType::kHeartbeat;
  r.lsn = lsn;
  r.txn_id = txn;
  r.timestamp = ts;
  return r;
}

LogRecord LogRecord::Dml(LogRecordType type, Lsn lsn, TxnId txn, Timestamp ts,
                         TableId table, int64_t row_key,
                         std::vector<ColumnValue> values, TxnId prev_txn,
                         uint64_t row_seq) {
  LogRecord r;
  r.type = type;
  r.lsn = lsn;
  r.txn_id = txn;
  r.timestamp = ts;
  r.table_id = table;
  r.row_key = row_key;
  r.prev_txn_id = prev_txn;
  r.row_seq = row_seq;
  r.values = std::move(values);
  return r;
}

bool LogRecord::operator==(const LogRecord& other) const {
  return type == other.type && lsn == other.lsn && txn_id == other.txn_id &&
         timestamp == other.timestamp && table_id == other.table_id &&
         row_key == other.row_key && prev_txn_id == other.prev_txn_id &&
         row_seq == other.row_seq && values == other.values;
}

}  // namespace aets
