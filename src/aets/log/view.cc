#include "aets/log/view.h"

#include "aets/common/macros.h"

namespace aets {

namespace {

template <typename T>
const char* ReadFixed(const char* p, const char* end, T* out) {
  if (p == nullptr || end - p < static_cast<ptrdiff_t>(sizeof(T))) {
    return nullptr;
  }
  std::memcpy(out, p, sizeof(T));
  return p + sizeof(T);
}

}  // namespace

Value ValueView::ToValue() const {
  switch (tag) {
    case ValueTag::kNull:
      return Value::Null();
    case ValueTag::kInt64:
      return Value(i64);
    case ValueTag::kDouble:
      return Value(f64);
    case ValueTag::kString:
      return Value(std::string(str));
  }
  AETS_CHECK_MSG(false, "bad ValueView tag");
  return Value::Null();
}

bool ValueView::Equals(const Value& v) const {
  switch (tag) {
    case ValueTag::kNull:
      return v.is_null();
    case ValueTag::kInt64:
      return v.is_int64() && v.as_int64() == i64;
    case ValueTag::kDouble:
      return v.is_double() && v.as_double() == f64;
    case ValueTag::kString:
      return v.is_string() && v.as_string() == str;
  }
  return false;
}

void AppendValueWire(const Value& v, std::string* out) {
  char buf[1 + sizeof(uint32_t)];
  if (v.is_null()) {
    buf[0] = static_cast<char>(ValueTag::kNull);
    out->append(buf, 1);
  } else if (v.is_int64()) {
    buf[0] = static_cast<char>(ValueTag::kInt64);
    out->append(buf, 1);
    int64_t payload = v.as_int64();
    out->append(reinterpret_cast<const char*>(&payload), sizeof(payload));
  } else if (v.is_double()) {
    buf[0] = static_cast<char>(ValueTag::kDouble);
    out->append(buf, 1);
    double payload = v.as_double();
    out->append(reinterpret_cast<const char*>(&payload), sizeof(payload));
  } else {
    const std::string& s = v.as_string();
    buf[0] = static_cast<char>(ValueTag::kString);
    uint32_t len = static_cast<uint32_t>(s.size());
    std::memcpy(buf + 1, &len, sizeof(len));
    out->append(buf, 1 + sizeof(len));
    out->append(s);
  }
}

char* WriteValueWire(char* dst, const Value& v) {
  if (v.is_null()) {
    *dst++ = static_cast<char>(ValueTag::kNull);
  } else if (v.is_int64()) {
    *dst++ = static_cast<char>(ValueTag::kInt64);
    int64_t payload = v.as_int64();
    std::memcpy(dst, &payload, sizeof(payload));
    dst += sizeof(payload);
  } else if (v.is_double()) {
    *dst++ = static_cast<char>(ValueTag::kDouble);
    double payload = v.as_double();
    std::memcpy(dst, &payload, sizeof(payload));
    dst += sizeof(payload);
  } else {
    const std::string& s = v.as_string();
    *dst++ = static_cast<char>(ValueTag::kString);
    uint32_t len = static_cast<uint32_t>(s.size());
    std::memcpy(dst, &len, sizeof(len));
    dst += sizeof(len);
    std::memcpy(dst, s.data(), s.size());
    dst += s.size();
  }
  return dst;
}

const char* ParseValueWire(const char* p, const char* end, ValueView* out) {
  uint8_t tag;
  p = ReadFixed(p, end, &tag);
  if (p == nullptr) return nullptr;
  switch (static_cast<ValueTag>(tag)) {
    case ValueTag::kNull:
      out->tag = ValueTag::kNull;
      return p;
    case ValueTag::kInt64:
      out->tag = ValueTag::kInt64;
      return ReadFixed(p, end, &out->i64);
    case ValueTag::kDouble:
      out->tag = ValueTag::kDouble;
      return ReadFixed(p, end, &out->f64);
    case ValueTag::kString: {
      uint32_t len;
      p = ReadFixed(p, end, &len);
      if (p == nullptr || end - p < static_cast<ptrdiff_t>(len)) {
        return nullptr;
      }
      out->tag = ValueTag::kString;
      out->str = std::string_view(p, len);
      return p + len;
    }
    default:
      return nullptr;
  }
}

bool DeltaReader::Next(ColumnId* col, ValueView* value) {
  if (remaining_ == 0) return false;
  const char* p = ReadFixed(pos_, end_, col);
  p = ParseValueWire(p, end_, value);
  AETS_CHECK_MSG(p != nullptr, "DeltaReader over unvalidated bytes");
  pos_ = p;
  --remaining_;
  return true;
}

LogRecord LogRecordView::Materialize() const {
  LogRecord rec;
  rec.type = type;
  rec.lsn = lsn;
  rec.txn_id = txn_id;
  rec.timestamp = timestamp;
  if (is_dml()) {
    rec.table_id = table_id;
    rec.row_key = row_key;
    rec.prev_txn_id = prev_txn_id;
    rec.row_seq = row_seq;
    rec.values.reserve(num_values);
    DeltaReader reader = values();
    ColumnId col;
    ValueView v;
    while (reader.Next(&col, &v)) {
      rec.values.push_back(ColumnValue{col, v.ToValue()});
    }
  }
  return rec;
}

}  // namespace aets
