#include "aets/log/codec.h"

#include <array>
#include <cstring>

namespace aets {

namespace {

constexpr uint32_t kCrcPoly = 0x82F63B78u;  // CRC32C reflected polynomial

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kCrcPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256> kTable = BuildCrcTable();
  return kTable;
}

template <typename T>
void PutFixed(std::string* out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}

template <typename T>
bool GetFixed(const std::string& data, size_t* offset, T* out) {
  if (*offset + sizeof(T) > data.size()) return false;
  std::memcpy(out, data.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

constexpr uint8_t kTagNull = 0;
constexpr uint8_t kTagInt64 = 1;
constexpr uint8_t kTagDouble = 2;
constexpr uint8_t kTagString = 3;

void EncodeValue(const Value& v, std::string* out) {
  if (v.is_null()) {
    PutFixed<uint8_t>(out, kTagNull);
  } else if (v.is_int64()) {
    PutFixed<uint8_t>(out, kTagInt64);
    PutFixed<int64_t>(out, v.as_int64());
  } else if (v.is_double()) {
    PutFixed<uint8_t>(out, kTagDouble);
    PutFixed<double>(out, v.as_double());
  } else {
    PutFixed<uint8_t>(out, kTagString);
    const std::string& s = v.as_string();
    PutFixed<uint32_t>(out, static_cast<uint32_t>(s.size()));
    out->append(s);
  }
}

Result<Value> DecodeValue(const std::string& data, size_t* offset) {
  uint8_t tag;
  if (!GetFixed(data, offset, &tag)) {
    return Status::Corruption("truncated value tag");
  }
  switch (tag) {
    case kTagNull:
      return Value::Null();
    case kTagInt64: {
      int64_t v;
      if (!GetFixed(data, offset, &v)) return Status::Corruption("truncated i64");
      return Value(v);
    }
    case kTagDouble: {
      double v;
      if (!GetFixed(data, offset, &v)) return Status::Corruption("truncated f64");
      return Value(v);
    }
    case kTagString: {
      uint32_t len;
      if (!GetFixed(data, offset, &len)) return Status::Corruption("truncated len");
      if (*offset + len > data.size()) return Status::Corruption("truncated str");
      Value v(data.substr(*offset, len));
      *offset += len;
      return v;
    }
    default:
      return Status::Corruption("bad value tag " + std::to_string(tag));
  }
}

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
  const auto& table = CrcTable();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

void LogCodec::Encode(const LogRecord& record, std::string* out) {
  std::string payload;
  payload.reserve(record.ByteSize());
  PutFixed<uint8_t>(&payload, static_cast<uint8_t>(record.type));
  PutFixed<uint64_t>(&payload, record.lsn);
  PutFixed<uint64_t>(&payload, record.txn_id);
  PutFixed<uint64_t>(&payload, record.timestamp);
  if (record.is_dml()) {
    PutFixed<uint32_t>(&payload, record.table_id);
    PutFixed<int64_t>(&payload, record.row_key);
    PutFixed<uint64_t>(&payload, record.prev_txn_id);
    PutFixed<uint64_t>(&payload, record.row_seq);
    PutFixed<uint16_t>(&payload, static_cast<uint16_t>(record.values.size()));
    for (const auto& cv : record.values) {
      PutFixed<uint16_t>(&payload, cv.column_id);
      EncodeValue(cv.value, &payload);
    }
  }
  PutFixed<uint32_t>(out, Crc32c(payload.data(), payload.size()));
  PutFixed<uint32_t>(out, static_cast<uint32_t>(payload.size()));
  out->append(payload);
}

namespace {

/// Shared framing: validates length (and the checksum when `verify_crc`),
/// returns payload bounds. The metadata-only dispatch path skips the
/// checksum — it touches just the fixed prefix, and the phase-1 full decode
/// verifies the same frame before any value is installed.
Result<std::pair<size_t, size_t>> ReadFrame(const std::string& data,
                                            size_t* offset, bool verify_crc) {
  uint32_t crc, len;
  if (!GetFixed(data, offset, &crc) || !GetFixed(data, offset, &len)) {
    return Status::Corruption("truncated frame header");
  }
  if (*offset + len > data.size()) {
    return Status::Corruption("frame extends past buffer");
  }
  if (verify_crc) {
    uint32_t actual = Crc32c(data.data() + *offset, len);
    if (actual != crc) {
      return Status::Corruption("checksum mismatch");
    }
  }
  size_t begin = *offset;
  *offset += len;
  return std::make_pair(begin, begin + len);
}

Result<LogRecord> DecodeBody(const std::string& data, size_t begin, size_t end,
                             bool metadata_only) {
  size_t pos = begin;
  LogRecord rec;
  uint8_t type;
  if (!GetFixed(data, &pos, &type) || !GetFixed(data, &pos, &rec.lsn) ||
      !GetFixed(data, &pos, &rec.txn_id) ||
      !GetFixed(data, &pos, &rec.timestamp)) {
    return Status::Corruption("truncated record header");
  }
  if (type > static_cast<uint8_t>(LogRecordType::kHeartbeat)) {
    return Status::Corruption("bad record type");
  }
  rec.type = static_cast<LogRecordType>(type);
  if (rec.is_dml()) {
    uint16_t count;
    if (!GetFixed(data, &pos, &rec.table_id) ||
        !GetFixed(data, &pos, &rec.row_key) ||
        !GetFixed(data, &pos, &rec.prev_txn_id) ||
        !GetFixed(data, &pos, &rec.row_seq) ||
        !GetFixed(data, &pos, &count)) {
      return Status::Corruption("truncated dml header");
    }
    if (!metadata_only) {
      rec.values.reserve(count);
      for (uint16_t i = 0; i < count; ++i) {
        uint16_t col;
        if (!GetFixed(data, &pos, &col)) {
          return Status::Corruption("truncated column id");
        }
        auto value = DecodeValue(data, &pos);
        if (!value.ok()) return value.status();
        rec.values.push_back(ColumnValue{col, std::move(value).value()});
      }
      if (pos != end) return Status::Corruption("trailing bytes in record");
    }
  }
  return rec;
}

}  // namespace

Result<LogRecord> LogCodec::Decode(const std::string& data, size_t* offset) {
  auto frame = ReadFrame(data, offset, /*verify_crc=*/true);
  if (!frame.ok()) return frame.status();
  return DecodeBody(data, frame->first, frame->second, /*metadata_only=*/false);
}

Result<LogRecord> LogCodec::DecodeMetadata(const std::string& data,
                                           size_t* offset) {
  auto frame = ReadFrame(data, offset, /*verify_crc=*/false);
  if (!frame.ok()) return frame.status();
  return DecodeBody(data, frame->first, frame->second, /*metadata_only=*/true);
}

std::string LogCodec::EncodeAll(const std::vector<LogRecord>& records) {
  std::string out;
  for (const auto& r : records) Encode(r, &out);
  return out;
}

Result<std::vector<LogRecord>> LogCodec::DecodeAll(const std::string& data) {
  std::vector<LogRecord> records;
  size_t offset = 0;
  while (offset < data.size()) {
    auto rec = Decode(data, &offset);
    if (!rec.ok()) return rec.status();
    records.push_back(std::move(rec).value());
  }
  return records;
}

}  // namespace aets
