#include "aets/log/codec.h"

#include <array>
#include <cstring>

namespace aets {

namespace {

constexpr uint32_t kCrcPoly = 0x82F63B78u;  // CRC32C reflected polynomial

// Slice-by-8: table[0] is the classic byte-at-a-time table; table[k] maps a
// byte that is k positions deeper in an 8-byte block, so one iteration folds
// 8 input bytes with 8 independent lookups instead of an 8-long serial chain.
std::array<std::array<uint32_t, 256>, 8> BuildCrcTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kCrcPoly : crc >> 1;
    }
    tables[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = tables[0][i];
    for (size_t k = 1; k < 8; ++k) {
      crc = tables[0][crc & 0xFF] ^ (crc >> 8);
      tables[k][i] = crc;
    }
  }
  return tables;
}

const std::array<std::array<uint32_t, 256>, 8>& CrcTables() {
  static const std::array<std::array<uint32_t, 256>, 8> kTables =
      BuildCrcTables();
  return kTables;
}

template <typename T>
void PutFixed(std::string* out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}

template <typename T>
bool GetFixed(std::string_view data, size_t* offset, T* out) {
  if (*offset + sizeof(T) > data.size()) return false;
  std::memcpy(out, data.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
  const auto& tables = CrcTables();
  const auto& table = tables[0];
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  while (n >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, p, sizeof(lo));
    std::memcpy(&hi, p + 4, sizeof(hi));
    lo ^= crc;
    crc = tables[7][lo & 0xFF] ^ tables[6][(lo >> 8) & 0xFF] ^
          tables[5][(lo >> 16) & 0xFF] ^ tables[4][lo >> 24] ^
          tables[3][hi & 0xFF] ^ tables[2][(hi >> 8) & 0xFF] ^
          tables[1][(hi >> 16) & 0xFF] ^ tables[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

void LogCodec::Encode(const LogRecord& record, std::string* out) {
  std::string payload;
  payload.reserve(record.ByteSize());
  PutFixed<uint8_t>(&payload, static_cast<uint8_t>(record.type));
  PutFixed<uint64_t>(&payload, record.lsn);
  PutFixed<uint64_t>(&payload, record.txn_id);
  PutFixed<uint64_t>(&payload, record.timestamp);
  if (record.is_dml()) {
    PutFixed<uint32_t>(&payload, record.table_id);
    PutFixed<int64_t>(&payload, record.row_key);
    PutFixed<uint64_t>(&payload, record.prev_txn_id);
    PutFixed<uint64_t>(&payload, record.row_seq);
    PutFixed<uint16_t>(&payload, static_cast<uint16_t>(record.values.size()));
    for (const auto& cv : record.values) {
      PutFixed<uint16_t>(&payload, cv.column_id);
      AppendValueWire(cv.value, &payload);
    }
  }
  PutFixed<uint32_t>(out, Crc32c(payload.data(), payload.size()));
  PutFixed<uint32_t>(out, static_cast<uint32_t>(payload.size()));
  out->append(payload);
}

namespace {

/// Shared framing: validates length (and the checksum when `verify_crc`),
/// returns payload bounds. The metadata-only dispatch path skips the
/// checksum — it touches just the fixed prefix, and the phase-1 full decode
/// verifies the same frame before any value is installed.
Result<std::pair<size_t, size_t>> ReadFrame(std::string_view data,
                                            size_t* offset, bool verify_crc) {
  uint32_t crc, len;
  if (!GetFixed(data, offset, &crc) || !GetFixed(data, offset, &len)) {
    return Status::Corruption("truncated frame header");
  }
  if (*offset + len > data.size()) {
    return Status::Corruption("frame extends past buffer");
  }
  if (verify_crc) {
    uint32_t actual = Crc32c(data.data() + *offset, len);
    if (actual != crc) {
      return Status::Corruption("checksum mismatch");
    }
  }
  size_t begin = *offset;
  *offset += len;
  return std::make_pair(begin, begin + len);
}

Result<LogRecordView> DecodeViewBody(std::string_view data, size_t begin,
                                     size_t end, bool metadata_only) {
  size_t pos = begin;
  LogRecordView view;
  uint8_t type;
  if (!GetFixed(data, &pos, &type) || !GetFixed(data, &pos, &view.lsn) ||
      !GetFixed(data, &pos, &view.txn_id) ||
      !GetFixed(data, &pos, &view.timestamp)) {
    return Status::Corruption("truncated record header");
  }
  if (type > static_cast<uint8_t>(LogRecordType::kHeartbeat)) {
    return Status::Corruption("bad record type");
  }
  view.type = static_cast<LogRecordType>(type);
  if (view.is_dml()) {
    if (!GetFixed(data, &pos, &view.table_id) ||
        !GetFixed(data, &pos, &view.row_key) ||
        !GetFixed(data, &pos, &view.prev_txn_id) ||
        !GetFixed(data, &pos, &view.row_seq) ||
        !GetFixed(data, &pos, &view.num_values)) {
      return Status::Corruption("truncated dml header");
    }
    if (!metadata_only) {
      // One bounds-validating walk; after it, DeltaReader can iterate the
      // slice without any further checks.
      const char* p = data.data() + pos;
      const char* const value_end = data.data() + end;
      ValueView scratch;
      for (uint16_t i = 0; i < view.num_values; ++i) {
        ColumnId col;
        if (value_end - p < static_cast<ptrdiff_t>(sizeof(col))) {
          return Status::Corruption("truncated column id");
        }
        std::memcpy(&col, p, sizeof(col));
        p = ParseValueWire(p + sizeof(col), value_end, &scratch);
        if (p == nullptr) return Status::Corruption("truncated value");
      }
      if (p != value_end) return Status::Corruption("trailing bytes in record");
      view.value_bytes = data.substr(pos, end - pos);
    }
  }
  return view;
}

}  // namespace

Result<LogRecordView> LogCodec::DecodeView(std::string_view data,
                                           size_t* offset) {
  auto frame = ReadFrame(data, offset, /*verify_crc=*/true);
  if (!frame.ok()) return frame.status();
  return DecodeViewBody(data, frame->first, frame->second,
                        /*metadata_only=*/false);
}

Result<LogRecord> LogCodec::Decode(std::string_view data, size_t* offset) {
  auto view = DecodeView(data, offset);
  if (!view.ok()) return view.status();
  return view->Materialize();
}

Result<LogRecordView> LogCodec::DecodeMetadata(std::string_view data,
                                               size_t* offset) {
  auto frame = ReadFrame(data, offset, /*verify_crc=*/false);
  if (!frame.ok()) return frame.status();
  return DecodeViewBody(data, frame->first, frame->second,
                        /*metadata_only=*/true);
}

std::string LogCodec::EncodeAll(const std::vector<LogRecord>& records) {
  size_t total = 0;
  for (const auto& r : records) total += r.ByteSize() + 8;  // + frame header
  std::string out;
  out.reserve(total);
  for (const auto& r : records) Encode(r, &out);
  return out;
}

Result<std::vector<LogRecord>> LogCodec::DecodeAll(std::string_view data) {
  std::vector<LogRecord> records;
  size_t offset = 0;
  while (offset < data.size()) {
    auto rec = Decode(data, &offset);
    if (!rec.ok()) return rec.status();
    records.push_back(std::move(rec).value());
  }
  return records;
}

}  // namespace aets
