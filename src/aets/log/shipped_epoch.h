#ifndef AETS_LOG_SHIPPED_EPOCH_H_
#define AETS_LOG_SHIPPED_EPOCH_H_

#include <memory>
#include <string>

#include "aets/common/result.h"
#include "aets/log/epoch.h"

namespace aets {

/// The wire form of an epoch: all log records of its transactions encoded
/// back-to-back in commit order. Replayers differ in how much of it they
/// decode where — AETS and ATR route on the cheap metadata prefix and let
/// replay workers decode values in parallel, while C5's dispatcher must
/// decode the full data image up front (the parsing-cost asymmetry of the
/// paper's Section VI-B).
struct ShippedEpoch {
  EpochId epoch_id = 0;
  /// Encoded records; shared so fragments can reference offsets into it
  /// without copying.
  std::shared_ptr<const std::string> payload;
  /// CRC32C over the whole payload, computed by EncodeEpoch before the epoch
  /// leaves the primary. Receivers verify it before dispatch (the per-record
  /// checksums protect individual frames, but the cheap metadata dispatch
  /// path skips them — the epoch-level CRC closes that window and turns link
  /// corruption into a retransmittable loss instead of a decode error).
  uint32_t payload_crc = 0;
  size_t num_txns = 0;
  size_t num_records = 0;
  TxnId first_txn = kInvalidTxnId;
  TxnId last_txn = kInvalidTxnId;
  Timestamp max_commit_ts = kInvalidTimestamp;
  /// Non-zero marks a heartbeat epoch: no transactions, just a liveness
  /// timestamp that bumps global_cmt_ts on the backup (paper Section V-B).
  Timestamp heartbeat_ts = kInvalidTimestamp;

  bool is_heartbeat() const { return heartbeat_ts != kInvalidTimestamp; }
  size_t ByteSize() const { return payload ? payload->size() : 0; }

  /// Recomputes the payload CRC32C and compares it against `payload_crc`.
  /// False means the payload was damaged in flight (or truncated); the
  /// receiver must treat the epoch as lost and request a retransmit.
  bool PayloadIntact() const;
};

/// Encodes a sealed epoch for shipping.
ShippedEpoch EncodeEpoch(const Epoch& epoch);

/// Builds a heartbeat epoch.
ShippedEpoch MakeHeartbeatEpoch(EpochId id, Timestamp ts);

/// Fully decodes a shipped epoch back into transaction logs (used by tests
/// and the serial oracle).
Result<Epoch> DecodeEpoch(const ShippedEpoch& shipped);

}  // namespace aets

#endif  // AETS_LOG_SHIPPED_EPOCH_H_
