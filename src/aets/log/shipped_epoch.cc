#include "aets/log/shipped_epoch.h"

#include "aets/common/macros.h"
#include "aets/log/codec.h"

namespace aets {

ShippedEpoch EncodeEpoch(const Epoch& epoch) {
  ShippedEpoch out;
  out.epoch_id = epoch.epoch_id;
  out.num_txns = epoch.num_txns();
  out.num_records = epoch.num_records();
  out.first_txn = epoch.first_txn();
  out.last_txn = epoch.last_txn();
  out.max_commit_ts = epoch.max_commit_ts();
  auto payload = std::make_shared<std::string>();
  payload->reserve(epoch.ByteSize() + 8 * epoch.num_records());  // + frames
  for (const auto& txn : epoch.txns) {
    for (const auto& rec : txn.records) LogCodec::Encode(rec, payload.get());
  }
  out.payload_crc = Crc32c(payload->data(), payload->size());
  out.payload = std::move(payload);
  return out;
}

ShippedEpoch MakeHeartbeatEpoch(EpochId id, Timestamp ts) {
  AETS_CHECK(ts != kInvalidTimestamp);
  ShippedEpoch out;
  out.epoch_id = id;
  out.payload = std::make_shared<std::string>();
  out.payload_crc = Crc32c(nullptr, 0);
  out.heartbeat_ts = ts;
  out.max_commit_ts = ts;
  return out;
}

bool ShippedEpoch::PayloadIntact() const {
  const char* data = payload ? payload->data() : nullptr;
  size_t n = payload ? payload->size() : 0;
  return Crc32c(data, n) == payload_crc;
}

Result<Epoch> DecodeEpoch(const ShippedEpoch& shipped) {
  Epoch epoch;
  epoch.epoch_id = shipped.epoch_id;
  if (shipped.is_heartbeat()) return epoch;
  AETS_CHECK(shipped.payload != nullptr);
  const std::string& data = *shipped.payload;
  size_t offset = 0;
  TxnLog current;
  bool in_txn = false;
  while (offset < data.size()) {
    auto rec = LogCodec::Decode(data, &offset);
    if (!rec.ok()) return rec.status();
    LogRecord record = std::move(rec).value();
    switch (record.type) {
      case LogRecordType::kBegin:
        if (in_txn) return Status::Corruption("nested BEGIN");
        current = TxnLog{};
        current.txn_id = record.txn_id;
        in_txn = true;
        current.records.push_back(std::move(record));
        break;
      case LogRecordType::kCommit:
        if (!in_txn) return Status::Corruption("COMMIT without BEGIN");
        current.commit_ts = record.timestamp;
        current.records.push_back(std::move(record));
        epoch.txns.push_back(std::move(current));
        in_txn = false;
        break;
      default:
        if (!in_txn) return Status::Corruption("DML outside transaction");
        current.records.push_back(std::move(record));
        break;
    }
  }
  if (in_txn) return Status::Corruption("unterminated transaction");
  return epoch;
}

}  // namespace aets
