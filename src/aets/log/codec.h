#ifndef AETS_LOG_CODEC_H_
#define AETS_LOG_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "aets/common/result.h"
#include "aets/common/status.h"
#include "aets/log/record.h"
#include "aets/log/view.h"

namespace aets {

/// Binary wire format for value-log entries.
///
/// Layout (little-endian):
///   u32 crc32c over everything after the crc field
///   u32 payload length
///   u8  type
///   u64 lsn, u64 txn_id, u64 timestamp
///   DML only: u32 table_id, i64 row_key, u64 prev_txn_id, u64 row_seq,
///             u16 value count, then per value: u16 column_id, u8 tag,
///             tag-dependent payload (i64 | f64 | u32 len + bytes | none)
///
/// The replication channel ships encoded epochs; replayers decode either the
/// metadata prefix only (AETS, ATR) or the full image (C5) — the asymmetric
/// parsing cost the paper's Section VI-B calls out. The hot apply path uses
/// `DecodeView`, which validates the frame once and hands back string_view
/// slices into the source buffer instead of allocating per value.
class LogCodec {
 public:
  /// Appends the encoded record to `out`.
  static void Encode(const LogRecord& record, std::string* out);

  /// Decodes one record starting at `data[*offset]`, advancing `*offset`.
  /// Checksum mismatches and truncation return Corruption. Owning: every
  /// string value is copied out. Kept for checkpoint restore compatibility,
  /// DecodeAll, and the serial oracle.
  static Result<LogRecord> Decode(std::string_view data, size_t* offset);

  /// Single-pass zero-copy decode: verifies the checksum, bounds-checks every
  /// value once, and returns a view whose `value_bytes` (and any string
  /// ValueView read from it) points into `data`. The caller must keep `data`
  /// alive and unmodified for the lifetime of the view — on the replay path
  /// that is the epoch's shared payload.
  static Result<LogRecordView> DecodeView(std::string_view data,
                                          size_t* offset);

  /// Decodes only the fixed metadata prefix (type/lsn/txn/ts/table/rowkey),
  /// skipping value parsing AND checksum verification — the cheap dispatch
  /// path touches headers only; the phase-1 full decode of the same frame
  /// verifies the checksum before anything is installed. Advances `*offset`
  /// past the whole record. The returned view's `value_bytes` is empty (the
  /// declared `num_values` is still populated).
  static Result<LogRecordView> DecodeMetadata(std::string_view data,
                                              size_t* offset);

  /// Encodes a whole sequence (single exact-size allocation).
  static std::string EncodeAll(const std::vector<LogRecord>& records);

  /// Decodes a whole sequence.
  static Result<std::vector<LogRecord>> DecodeAll(std::string_view data);
};

/// Software CRC32C (Castagnoli), table-driven slice-by-8 (little-endian
/// fast path, byte-at-a-time tail). Also guards shipped-epoch payloads and
/// checkpoint images, so throughput matters beyond the per-record frames.
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

}  // namespace aets

#endif  // AETS_LOG_CODEC_H_
