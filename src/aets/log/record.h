#ifndef AETS_LOG_RECORD_H_
#define AETS_LOG_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "aets/catalog/schema.h"
#include "aets/common/clock.h"
#include "aets/storage/value.h"

namespace aets {

using Lsn = uint64_t;
using TxnId = uint64_t;

constexpr TxnId kInvalidTxnId = 0;

/// Log entry types (paper Section III-A): transaction boundary markers plus
/// the three row operations; heartbeats are the dummy entries of Section V-B.
enum class LogRecordType : uint8_t {
  kBegin = 0,
  kCommit = 1,
  kInsert = 2,
  kUpdate = 3,
  kDelete = 4,
  kHeartbeat = 5,
};

std::string_view LogRecordTypeToString(LogRecordType type);

/// A SiloR-style value-log entry (paper Fig. 2). DML entries carry the table
/// id, the row key, and the column-id/new-value pairs; `prev_txn_id` is the
/// before-image transaction id that last wrote this row on the primary, which
/// the ATR baseline uses for its operation-sequence check.
struct LogRecord {
  LogRecordType type = LogRecordType::kBegin;
  Lsn lsn = 0;
  TxnId txn_id = kInvalidTxnId;
  Timestamp timestamp = kInvalidTimestamp;  // commit_ts on kCommit entries
  TableId table_id = kInvalidTableId;
  int64_t row_key = 0;
  TxnId prev_txn_id = kInvalidTxnId;
  /// Number of versions this row had on the primary before this operation
  /// (a per-row modification sequence, like ATR's RVID). Baselines that
  /// install versions directly use it for the operation-sequence check.
  uint64_t row_seq = 0;
  std::vector<ColumnValue> values;

  bool is_dml() const {
    return type == LogRecordType::kInsert || type == LogRecordType::kUpdate ||
           type == LogRecordType::kDelete;
  }

  /// Approximate serialized size; drives the allocator's n_gi weights.
  size_t ByteSize() const;

  static LogRecord Begin(Lsn lsn, TxnId txn, Timestamp ts);
  static LogRecord Commit(Lsn lsn, TxnId txn, Timestamp commit_ts);
  static LogRecord Heartbeat(Lsn lsn, TxnId txn, Timestamp ts);
  static LogRecord Dml(LogRecordType type, Lsn lsn, TxnId txn, Timestamp ts,
                       TableId table, int64_t row_key,
                       std::vector<ColumnValue> values,
                       TxnId prev_txn = kInvalidTxnId, uint64_t row_seq = 0);

  bool operator==(const LogRecord& other) const;
};

}  // namespace aets

#endif  // AETS_LOG_RECORD_H_
