#include "aets/log/epoch.h"

#include "aets/common/macros.h"

namespace aets {

EpochBuilder::EpochBuilder(size_t epoch_size) : epoch_size_(epoch_size) {
  AETS_CHECK(epoch_size > 0);
  current_.epoch_id = next_id_;
}

std::optional<Epoch> EpochBuilder::AddTxn(TxnLog txn) {
  AETS_CHECK_MSG(txn.txn_id > last_txn_id_,
                 "transactions must arrive in commit order");
  last_txn_id_ = txn.txn_id;
  current_.txns.push_back(std::move(txn));
  if (current_.txns.size() < epoch_size_) return std::nullopt;
  Epoch sealed = std::move(current_);
  current_ = Epoch{};
  current_.epoch_id = ++next_id_;
  return sealed;
}

EpochId EpochBuilder::ConsumeEpochId() {
  AETS_CHECK_MSG(current_.txns.empty(),
                 "ConsumeEpochId with pending transactions");
  EpochId id = next_id_;
  current_.epoch_id = ++next_id_;
  return id;
}

std::optional<Epoch> EpochBuilder::Flush() {
  if (current_.txns.empty()) return std::nullopt;
  Epoch sealed = std::move(current_);
  current_ = Epoch{};
  current_.epoch_id = ++next_id_;
  return sealed;
}

}  // namespace aets
