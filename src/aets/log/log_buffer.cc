#include "aets/log/log_buffer.h"

#include <algorithm>

namespace aets {

void LogBuffer::Append(const LogRecord& record) {
  std::lock_guard<std::mutex> lk(mu_);
  if (record.is_dml()) {
    dml_by_table_[record.table_id]++;
    ++total_dml_;
  }
  records_.push_back(record);
}

void LogBuffer::AppendAll(const std::vector<LogRecord>& records) {
  for (const auto& r : records) Append(r);
}

size_t LogBuffer::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return records_.size();
}

LogRecord LogBuffer::At(size_t index) const {
  std::lock_guard<std::mutex> lk(mu_);
  return records_.at(index);
}

std::vector<LogRecord> LogBuffer::Snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  return records_;
}

std::map<TableId, uint64_t> LogBuffer::DmlCountsByTable() const {
  std::lock_guard<std::mutex> lk(mu_);
  return dml_by_table_;
}

uint64_t LogBuffer::TotalDmlCount() const {
  std::lock_guard<std::mutex> lk(mu_);
  return total_dml_;
}

double LogBuffer::HotRatio(const std::vector<TableId>& hot_tables) const {
  std::lock_guard<std::mutex> lk(mu_);
  if (total_dml_ == 0) return 0.0;
  uint64_t hot = 0;
  for (TableId t : hot_tables) {
    auto it = dml_by_table_.find(t);
    if (it != dml_by_table_.end()) hot += it->second;
  }
  return static_cast<double>(hot) / static_cast<double>(total_dml_);
}

}  // namespace aets
