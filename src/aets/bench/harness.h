#ifndef AETS_BENCH_HARNESS_H_
#define AETS_BENCH_HARNESS_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "aets/baselines/atr_replayer.h"
#include "aets/baselines/c5_replayer.h"
#include "aets/baselines/serial_replayer.h"
#include "aets/baselines/tplr_replayer.h"
#include "aets/common/histogram.h"
#include "aets/replay/aets_replayer.h"
#include "aets/replay/sharded_backup.h"
#include "aets/workload/driver.h"
#include "aets/workload/workload.h"

/// \file
/// Shared experiment harness for the paper-reproduction benchmarks: replayer
/// factories, a recorded-log batch replay (throughput/replay-time
/// experiments), a live HTAP run (visibility-delay experiments), and table
/// printing. All benches scale with AETS_BENCH_SCALE (default 1.0) and
/// AETS_BENCH_THREADS so the suite stays runnable on small machines.

namespace aets {

/// Parses harness-wide command-line flags and registers the metrics dump.
/// Call first thing in main(). Flags:
///   --metrics-json <path>   write the obs::MetricsRegistry JSON snapshot
///                           (metrics + recent spans) to <path> at exit.
/// The AETS_METRICS_JSON env var is the flagless equivalent (works for
/// binaries without harness wiring, e.g. the google-benchmark micros); the
/// flag wins when both are set. Unknown flags abort with a usage message.
void BenchInit(int argc, char** argv);

/// Multiplier applied to transaction/query counts (env AETS_BENCH_SCALE).
double BenchScale();

/// Worker-thread default for comparison benches (env AETS_BENCH_THREADS).
int BenchThreads(int fallback);

/// Scales `n` by BenchScale() with a floor of `min_value`.
uint64_t Scaled(uint64_t n, uint64_t min_value = 1);

/// The replayer configurations the paper compares.
enum class ReplayerKind {
  kAets,            // full framework
  kAetsNoTwoStage,  // ablation: single stage
  kAetsNoac,        // ablation: allocation ignores access rates (AETS-NOAC)
  kAetsSingleCommit,  // ablation: one commit thread for all groups
  kTplr,            // two-phase replay, ungrouped (paper's TPLR baseline)
  kAtr,
  kC5,
  kSerial,
};

std::string KindName(ReplayerKind kind);

/// Everything needed to build a replayer for one experiment run.
struct ReplayerSpec {
  ReplayerKind kind = ReplayerKind::kAets;
  int threads = 4;
  int commit_threads = 4;
  /// AETS grouping configuration (ignored by ATR/C5/Serial).
  GroupingMode grouping = GroupingMode::kPerTable;
  std::vector<std::vector<TableId>> hot_groups;  // for kStatic
  std::vector<double> rates;
  std::function<std::vector<double>()> rate_provider;
  /// Rebuild the grouping when provided rates change (see AetsOptions).
  bool regroup_on_rate_change = true;
  double dbscan_eps = 0.3;
  /// Cross-epoch pipeline depth (DESIGN.md §9). 1 disables the pipeline.
  int pipeline_depth = 2;
  /// Backup shard count (DESIGN.md §11). 1 runs the classic single-replayer
  /// path; N > 1 splits the recorded stream into per-shard sub-epoch lanes
  /// (ShardMap::Hash over the catalog) and replays them through N replayers
  /// of `kind` behind a ShardedBackup, with `threads`/`commit_threads`
  /// treated as TOTAL budgets divided across shards by SplitThreadBudget.
  int shard_count = 1;
};

std::unique_ptr<Replayer> MakeReplayer(const ReplayerSpec& spec,
                                       const Catalog* catalog,
                                       EpochChannel* channel);

/// Builds `map->num_shards()` replayers of spec.kind — shard i reading from
/// `shard_channels[i]` — behind a ShardedBackup. spec.threads and
/// spec.commit_threads are total budgets, divided across shards by
/// SplitThreadBudget proportionally to each shard's share of spec.rates
/// (even split when no rates are given). `map` must outlive the returned
/// backup.
std::unique_ptr<ShardedBackup> MakeShardedReplayer(
    const ReplayerSpec& spec, const Catalog* catalog, const ShardMap* map,
    const std::vector<EpochChannel*>& shard_channels);

/// A pre-generated log: the paper's RQ2 methodology ("once the log entries
/// were generated, we replicated them into the main memory of the replica in
/// epoch mode").
struct RecordedLog {
  std::vector<ShippedEpoch> epochs;
  uint64_t load_txns = 0;
  uint64_t mix_txns = 0;
  Timestamp load_end_ts = kInvalidTimestamp;  // last load-phase commit ts
  Timestamp final_ts = kInvalidTimestamp;
  uint64_t primary_digest = 0;
  double primary_txns_per_sec = 0;  // txn mix rate during generation
};

/// Loads the workload and runs `num_txns` of its OLTP mix, recording every
/// shipped epoch.
RecordedLog RecordWorkload(Workload* workload, uint64_t num_txns,
                           size_t epoch_size, uint64_t seed);

/// Re-ships a recorded log through a sharded LogShipper and returns the N
/// per-shard sub-epoch streams (result[s] is shard s's lane, epoch ids
/// aligned with log.epochs). Done once up front so the split cost never
/// lands inside a replay measurement.
std::vector<std::vector<ShippedEpoch>> ShardRecordedLog(const RecordedLog& log,
                                                        const ShardMap& map);

/// XOR of TableStore::Mix(t, digest of table t read through StoreForTable)
/// over the whole catalog: equals TableStore::DigestAt on a single-store
/// replayer, and the cross-shard equivalent under a ShardedBackup (each
/// table's versions live in its owning shard's store).
uint64_t ReplicaDigestAt(Replayer* replayer, const Catalog* catalog,
                         Timestamp ts);

/// Result of draining a recorded log through one replayer.
struct BatchReplayResult {
  std::string name;
  double txns_per_sec = 0;
  int64_t wall_us = 0;
  int64_t stage1_wall_us = 0;  // hot-stage wall (AETS only)
  int64_t stage2_wall_us = 0;  // cold-stage wall (AETS only)
  double dispatch_frac = 0;
  double replay_frac = 0;
  double commit_frac = 0;
  /// Share of busy time spent blocked on ordering synchronization (subset
  /// of replay_frac; nonzero for ATR's operation-sequence check).
  double sync_frac = 0;
  bool state_matches_primary = false;
};

BatchReplayResult ReplayRecorded(const RecordedLog& log, const Catalog* catalog,
                                 const ReplayerSpec& spec);

/// Options for a live HTAP run: OLTP streams into the replayer while the
/// OLAP driver issues real-time queries (Algorithm 3) and measures the
/// visibility delay.
struct LiveRunOptions {
  uint64_t oltp_txns = 5000;
  uint64_t olap_queries = 500;
  size_t epoch_size = 256;
  uint64_t seed = 7;
  int64_t think_us = 0;
  std::function<double()> phase_fn;  // for time-varying workloads
  int64_t heartbeat_interval_us = 5'000;
};

struct LiveRunResult {
  std::string name;
  double mean_delay_us = 0;
  double p50_delay_us = 0;
  double p95_delay_us = 0;
  double p99_delay_us = 0;
  uint64_t queries = 0;
  /// Mean visibility delay per analytic-query template (Fig. 10's series).
  std::vector<double> per_query_mean_us;
  bool state_matches_primary = false;
};

/// `make_workload` must build a FRESH workload each call so runs are
/// independent and identically seeded.
LiveRunResult RunLive(const std::function<std::unique_ptr<Workload>()>& make_workload,
                      const ReplayerSpec& spec, const LiveRunOptions& options);

/// Catch-up visibility experiment (the paper's Fig. 1 scenario and the
/// methodology behind Figs. 8(c)/9(c)/10/12): the replayer drains a recorded
/// backlog while real-time analytic queries arrive with snapshot timestamps
/// spread uniformly over the recorded commit range. Each query's visibility
/// delay is the Algorithm 3 wait until its tables publish its snapshot.
/// Prioritized (two-stage, rate-weighted) replay unblocks hot-table queries
/// long before the cold log is finished.
struct CatchUpOptions {
  uint64_t queries = 400;
  uint64_t seed = 7;
  /// Freshness demand: each query's snapshot is `lead_txns` commit
  /// timestamps ahead of the replayer's current global watermark (a
  /// real-time query asks for data the backup has not replayed yet). The
  /// delay is how long Algorithm 3 blocks until the query's tables publish
  /// that snapshot — hot-prioritized replay answers hot queries early.
  uint64_t lead_txns = 256;
  /// What the freshness demand is relative to. Pacing on the global
  /// watermark (default) asks for a fixed fresh point: prioritized replay
  /// publishes it on hot groups after only the hot share of the backlog —
  /// the paper's Fig. 1 effect. Pacing on the query's own tables instead
  /// measures per-group advance rates (and self-defeats for prioritized
  /// groups: the fresher the group, the more freshness gets demanded).
  bool pace_on_global = true;
  /// Optional pause between queries (0 = a continuous query stream, which
  /// gives the most stable relative signal: every query immediately demands
  /// the next `lead_txns` of freshness).
  int64_t think_us = 0;
  /// Called once per query, in issue order, before sampling the template;
  /// returns the workload phase in [0,1). Defaults to drain progress.
  std::function<double()> phase_fn;
  /// Called once per query with (query index, visibility delay in us).
  std::function<void(uint64_t, int64_t)> on_delay;
};

struct CatchUpResult {
  std::string name;
  double mean_delay_us = 0;
  double p50_delay_us = 0;
  double p95_delay_us = 0;
  double p99_delay_us = 0;
  int64_t drain_wall_us = 0;
  std::vector<double> per_query_mean_us;
  bool state_matches_primary = false;
};

CatchUpResult RunCatchUp(const RecordedLog& log, Workload* workload,
                         const ReplayerSpec& spec,
                         const CatchUpOptions& options);

/// Fixed-width console table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);
  void AddRow(std::vector<std::string> row);
  void Print() const;

  static std::string Fmt(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace aets

#endif  // AETS_BENCH_HARNESS_H_
