#include "aets/bench/harness.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <thread>

#include <string>

#include "aets/common/macros.h"
#include "aets/obs/export.h"
#include "aets/replay/thread_allocator.h"
#include "aets/replication/log_shipper.h"

namespace aets {

namespace {

std::string g_metrics_json_path;  // set by BenchInit, read by the atexit hook

void DumpMetricsAtExit() {
  if (g_metrics_json_path.empty()) return;
  Status st = obs::WriteMetricsJsonFile(g_metrics_json_path);
  if (st.ok()) {
    std::fprintf(stderr, "metrics snapshot written to %s\n",
                 g_metrics_json_path.c_str());
  } else {
    std::fprintf(stderr, "metrics export failed: %s\n", st.ToString().c_str());
  }
}

}  // namespace

void BenchInit(int argc, char** argv) {
  const char* env = std::getenv("AETS_METRICS_JSON");
  if (env != nullptr && env[0] != '\0') {
    g_metrics_json_path = env;
    // Take ownership of the dump: without this the MetricsRegistry's own
    // env hook would also fire at exit and write a second file.
    unsetenv("AETS_METRICS_JSON");
  }
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--metrics-json" && i + 1 < argc) {
      g_metrics_json_path = argv[++i];
    } else if (arg.rfind("--metrics-json=", 0) == 0) {
      g_metrics_json_path = arg.substr(std::string("--metrics-json=").size());
    } else {
      std::fprintf(stderr, "usage: %s [--metrics-json <path>]\n", argv[0]);
      std::exit(2);
    }
  }
  if (!g_metrics_json_path.empty()) std::atexit(DumpMetricsAtExit);
}

double BenchScale() {
  const char* env = std::getenv("AETS_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  double v = std::atof(env);
  return v > 0 ? v : 1.0;
}

int BenchThreads(int fallback) {
  const char* env = std::getenv("AETS_BENCH_THREADS");
  if (env == nullptr) return fallback;
  int v = std::atoi(env);
  return v > 0 ? v : fallback;
}

uint64_t Scaled(uint64_t n, uint64_t min_value) {
  double scaled = static_cast<double>(n) * BenchScale();
  uint64_t out = static_cast<uint64_t>(scaled);
  return out < min_value ? min_value : out;
}

std::string KindName(ReplayerKind kind) {
  switch (kind) {
    case ReplayerKind::kAets:
      return "AETS";
    case ReplayerKind::kAetsNoTwoStage:
      return "AETS(-two-stage)";
    case ReplayerKind::kAetsNoac:
      return "AETS-NOAC";
    case ReplayerKind::kAetsSingleCommit:
      return "AETS(-par-commit)";
    case ReplayerKind::kTplr:
      return "TPLR";
    case ReplayerKind::kAtr:
      return "ATR";
    case ReplayerKind::kC5:
      return "C5";
    case ReplayerKind::kSerial:
      return "Serial";
  }
  return "?";
}

std::unique_ptr<Replayer> MakeReplayer(const ReplayerSpec& spec,
                                       const Catalog* catalog,
                                       EpochChannel* channel) {
  switch (spec.kind) {
    case ReplayerKind::kAets:
    case ReplayerKind::kAetsNoTwoStage:
    case ReplayerKind::kAetsNoac:
    case ReplayerKind::kAetsSingleCommit: {
      AetsOptions options;
      options.replay_threads = spec.threads;
      options.commit_threads =
          spec.kind == ReplayerKind::kAetsSingleCommit ? 1 : spec.commit_threads;
      options.two_stage = spec.kind != ReplayerKind::kAetsNoTwoStage;
      options.adaptive_alloc = spec.kind != ReplayerKind::kAetsNoac;
      options.grouping = spec.grouping;
      options.static_hot_groups = spec.hot_groups;
      options.initial_rates = spec.rates;
      options.rate_provider = spec.rate_provider;
      options.regroup_on_rate_change = spec.regroup_on_rate_change;
      options.dbscan_eps = spec.dbscan_eps;
      options.pipeline_depth = spec.pipeline_depth;
      return std::make_unique<AetsReplayer>(catalog, channel, options);
    }
    case ReplayerKind::kTplr: {
      AetsOptions options = TplrBaselineOptions(spec.threads);
      options.pipeline_depth = spec.pipeline_depth;
      return std::make_unique<AetsReplayer>(catalog, channel, options);
    }
    case ReplayerKind::kAtr:
      return std::make_unique<AtrReplayer>(
          catalog, channel, AtrOptions{spec.threads, spec.pipeline_depth});
    case ReplayerKind::kC5:
      return std::make_unique<C5Replayer>(
          catalog, channel,
          C5Options{spec.threads, /*watermark_period_us=*/5'000,
                    spec.pipeline_depth});
    case ReplayerKind::kSerial:
      return std::make_unique<SerialReplayer>(catalog, channel,
                                              spec.pipeline_depth);
  }
  return nullptr;
}

std::unique_ptr<ShardedBackup> MakeShardedReplayer(
    const ReplayerSpec& spec, const Catalog* catalog, const ShardMap* map,
    const std::vector<EpochChannel*>& shard_channels) {
  const int n = map->num_shards();
  AETS_CHECK(static_cast<int>(shard_channels.size()) == n);
  // Predicted per-shard load: each shard's share of the per-table access
  // rates. No rates means no signal — SplitThreadBudget falls back to an
  // even split.
  std::vector<double> loads(static_cast<size_t>(n), 0.0);
  for (size_t t = 0; t < spec.rates.size(); ++t) {
    loads[static_cast<size_t>(map->shard_of(static_cast<TableId>(t)))] +=
        spec.rates[t];
  }
  std::vector<int> replay_split =
      SplitThreadBudget(loads, std::max(spec.threads, n));
  std::vector<int> commit_split =
      SplitThreadBudget(loads, std::max(spec.commit_threads, n));
  std::vector<std::unique_ptr<Replayer>> shards;
  shards.reserve(static_cast<size_t>(n));
  for (int s = 0; s < n; ++s) {
    ReplayerSpec sub = spec;
    sub.shard_count = 1;
    sub.threads = replay_split[static_cast<size_t>(s)];
    sub.commit_threads = commit_split[static_cast<size_t>(s)];
    shards.push_back(MakeReplayer(sub, catalog, shard_channels[static_cast<size_t>(s)]));
  }
  return std::make_unique<ShardedBackup>(map, std::move(shards));
}

std::vector<std::vector<ShippedEpoch>> ShardRecordedLog(const RecordedLog& log,
                                                        const ShardMap& map) {
  const int n = map.num_shards();
  // Seal only on FlushEpoch so the re-shipped epoch boundaries land exactly
  // where the recorded ones did.
  LogShipper shipper(/*epoch_size=*/SIZE_MAX);
  shipper.SetShardMap(&map);
  std::vector<std::unique_ptr<EpochChannel>> recorders;
  for (int s = 0; s < n; ++s) {
    recorders.push_back(std::make_unique<EpochChannel>(0));
    shipper.AttachShardChannel(s, recorders.back().get());
  }
  for (const ShippedEpoch& shipped : log.epochs) {
    if (shipped.is_heartbeat()) {
      shipper.ShipHeartbeat(shipped.heartbeat_ts);
      continue;
    }
    auto epoch = DecodeEpoch(shipped);
    AETS_CHECK(epoch.ok());
    for (auto& txn : epoch->txns) shipper.OnCommit(std::move(txn));
    shipper.FlushEpoch();
  }
  shipper.Finish();
  std::vector<std::vector<ShippedEpoch>> streams(static_cast<size_t>(n));
  for (int s = 0; s < n; ++s) {
    while (auto sub = recorders[static_cast<size_t>(s)]->TryReceive()) {
      streams[static_cast<size_t>(s)].push_back(std::move(*sub));
    }
  }
  return streams;
}

uint64_t ReplicaDigestAt(Replayer* replayer, const Catalog* catalog,
                         Timestamp ts) {
  uint64_t digest = 0;
  for (TableId t = 0; t < static_cast<TableId>(catalog->num_tables()); ++t) {
    digest ^= TableStore::Mix(
        t, replayer->StoreForTable(t)->GetTable(t)->DigestAt(ts));
  }
  return digest;
}

RecordedLog RecordWorkload(Workload* workload, uint64_t num_txns,
                           size_t epoch_size, uint64_t seed) {
  RecordedLog log;
  LogicalClock clock;
  PrimaryDb db(&workload->catalog(), &clock);
  LogShipper shipper(epoch_size);
  // Unbounded channel acting as the recorder.
  EpochChannel recorder(0);
  shipper.AttachChannel(&recorder);
  db.SetCommitSink([&](TxnLog txn) { shipper.OnCommit(std::move(txn)); });

  Rng rng(seed);
  workload->Load(&db, &rng);
  log.load_txns = db.last_committed_txn();
  log.load_end_ts = db.last_commit_ts();

  int64_t start = MonotonicMicros();
  OltpDriver driver(workload, &db, seed);
  driver.Run(num_txns);
  int64_t elapsed = MonotonicMicros() - start;
  log.mix_txns = driver.txns_committed();
  log.primary_txns_per_sec =
      elapsed > 0 ? static_cast<double>(log.mix_txns) * 1e6 /
                        static_cast<double>(elapsed)
                  : 0;

  shipper.Finish();
  while (auto epoch = recorder.TryReceive()) {
    log.epochs.push_back(std::move(*epoch));
  }
  log.final_ts = db.last_commit_ts();
  log.primary_digest = db.store().DigestAt(log.final_ts);
  return log;
}

namespace {

void FillBatchResult(const Replayer& replayer, BatchReplayResult* result) {
  const ReplayStats& stats = replayer.stats();
  result->wall_us = stats.WallMicros();
  result->txns_per_sec = stats.TxnsPerSec();
  result->stage1_wall_us = stats.stage1_wall_ns.load() / 1000;
  result->stage2_wall_us = stats.stage2_wall_ns.load() / 1000;
  result->dispatch_frac = stats.DispatchFraction();
  result->replay_frac = stats.ReplayFraction();
  result->commit_frac = stats.CommitFraction();
  int64_t busy = stats.dispatch_ns.load() + stats.replay_ns.load() +
                 stats.commit_ns.load();
  result->sync_frac = busy > 0
                          ? static_cast<double>(stats.sync_wait_ns.load()) /
                                static_cast<double>(busy)
                          : 0;
}

}  // namespace

BatchReplayResult ReplayRecorded(const RecordedLog& log, const Catalog* catalog,
                                 const ReplayerSpec& spec) {
  BatchReplayResult result;
  result.name = KindName(spec.kind);

  if (spec.shard_count > 1) {
    // Sharded path (DESIGN.md §11): split the recorded stream into per-shard
    // lanes and fill the per-shard channels BEFORE building the backup, so
    // the measured wall covers replay only, exactly like the single-shard
    // path below.
    ShardMap map = ShardMap::Hash(catalog->num_tables(), spec.shard_count);
    std::vector<std::vector<ShippedEpoch>> streams = ShardRecordedLog(log, map);
    std::vector<std::unique_ptr<EpochChannel>> channels;
    std::vector<EpochChannel*> raw;
    for (auto& stream : streams) {
      channels.push_back(std::make_unique<EpochChannel>(0));
      for (const ShippedEpoch& sub : stream) {
        ShippedEpoch copy = sub;  // payload shared; metadata copied
        AETS_CHECK(channels.back()->Send(std::move(copy)));
      }
      channels.back()->Close();
      raw.push_back(channels.back().get());
    }
    std::unique_ptr<ShardedBackup> backup =
        MakeShardedReplayer(spec, catalog, &map, raw);
    AETS_CHECK(backup->Start().ok());
    backup->Stop();
    FillBatchResult(*backup, &result);
    result.name += "x" + std::to_string(spec.shard_count);
    result.state_matches_primary =
        ReplicaDigestAt(backup.get(), catalog, log.final_ts) ==
        log.primary_digest;
    return result;
  }

  EpochChannel channel(0);
  for (const auto& epoch : log.epochs) {
    ShippedEpoch copy = epoch;  // payload shared; metadata copied
    AETS_CHECK(channel.Send(std::move(copy)));
  }
  channel.Close();

  std::unique_ptr<Replayer> replayer = MakeReplayer(spec, catalog, &channel);
  AETS_CHECK(replayer->Start().ok());
  replayer->Stop();

  FillBatchResult(*replayer, &result);
  result.state_matches_primary =
      replayer->store()->DigestAt(log.final_ts) == log.primary_digest;
  return result;
}

LiveRunResult RunLive(
    const std::function<std::unique_ptr<Workload>()>& make_workload,
    const ReplayerSpec& spec, const LiveRunOptions& options) {
  std::unique_ptr<Workload> workload = make_workload();
  LogicalClock clock;
  PrimaryDb db(&workload->catalog(), &clock);
  LogShipper shipper(options.epoch_size);
  EpochChannel channel(0);
  shipper.AttachChannel(&channel);
  db.SetCommitSink([&](TxnLog txn) { shipper.OnCommit(std::move(txn)); });

  Rng rng(options.seed);
  workload->Load(&db, &rng);
  shipper.StartHeartbeats([&db] { return db.AcquireHeartbeatTs(); },
                          options.heartbeat_interval_us);

  std::unique_ptr<Replayer> replayer =
      MakeReplayer(spec, &workload->catalog(), &channel);
  AETS_CHECK(replayer->Start().ok());

  OltpDriver oltp(workload.get(), &db, options.seed);
  oltp.Start(options.oltp_txns);

  OlapDriver::Options olap_options;
  olap_options.num_queries = options.olap_queries;
  olap_options.think_us = options.think_us;
  olap_options.phase_fn = options.phase_fn;
  olap_options.seed = options.seed ^ 0xABCD;
  OlapDriver olap(workload.get(), replayer.get(), &clock, olap_options);
  olap.Run();

  oltp.Join();
  shipper.Finish();
  replayer->Stop();

  LiveRunResult result;
  result.name = KindName(spec.kind);
  result.queries = static_cast<uint64_t>(olap.delays().count());
  result.mean_delay_us = olap.delays().Mean();
  result.p50_delay_us = olap.delays().Percentile(50);
  result.p95_delay_us = olap.delays().Percentile(95);
  result.p99_delay_us = olap.delays().Percentile(99);
  for (const auto& h : olap.per_query_delays()) {
    result.per_query_mean_us.push_back(h.Mean());
  }
  Timestamp final_ts = db.last_commit_ts();
  result.state_matches_primary =
      replayer->store()->DigestAt(final_ts) == db.store().DigestAt(final_ts);
  return result;
}

CatchUpResult RunCatchUp(const RecordedLog& log, Workload* workload,
                         const ReplayerSpec& spec,
                         const CatchUpOptions& options) {
  EpochChannel channel(0);
  for (const auto& epoch : log.epochs) {
    ShippedEpoch copy = epoch;
    AETS_CHECK(channel.Send(std::move(copy)));
  }
  channel.Close();

  std::unique_ptr<Replayer> replayer =
      MakeReplayer(spec, &workload->catalog(), &channel);

  CatchUpResult result;
  result.name = KindName(spec.kind);
  Histogram delays;
  std::vector<Histogram> per_query(workload->analytic_queries().size());

  // The query stream rides the drain: each query demands a snapshot
  // `lead_txns` commits fresher than the current global watermark, so its
  // delay is the Algorithm 3 wait until the tables it touches publish that
  // snapshot. Queries stop demanding beyond the recorded range.
  std::thread query_thread([&] {
    Rng rng(options.seed);
    Timestamp lo = log.load_end_ts;
    Timestamp hi = log.final_ts;
    for (uint64_t i = 0; i < options.queries; ++i) {
      double progress =
          static_cast<double>(std::max(lo, replayer->GlobalVisibleTs()) - lo) /
          std::max<double>(1.0, static_cast<double>(hi - lo));
      double phase = options.phase_fn ? options.phase_fn() : progress;
      size_t qi = workload->SampleQuery(&rng, phase);
      const AnalyticQuery& query = workload->analytic_queries()[qi];
      // The query demands data `lead_txns` fresher than the pacing frontier
      // — its delay is how long its tables' groups take to publish that
      // snapshot.
      Timestamp base;
      if (options.pace_on_global) {
        base = replayer->GlobalVisibleTs();
      } else {
        Timestamp min_tg = kInvalidTimestamp;
        bool first = true;
        for (TableId t : query.tables) {
          Timestamp ts = replayer->TableVisibleTs(t);
          min_tg = first ? ts : std::min(min_tg, ts);
          first = false;
        }
        base = std::max(min_tg, replayer->GlobalVisibleTs());
      }
      base = std::max(lo, base);
      Timestamp qts = std::min(hi, base + options.lead_txns);
      int64_t waited = WaitVisible(*replayer, query.tables, qts);
      delays.Record(waited);
      per_query[qi].Record(waited);
      if (options.on_delay) options.on_delay(i, waited);
      // Touch a row per table at the snapshot (the MVCC read path).
      for (TableId t : query.tables) {
        (void)replayer->store()->GetTable(t)->ReadRow(1, qts);
      }
      if (options.think_us > 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(options.think_us));
      }
    }
  });

  AETS_CHECK(replayer->Start().ok());
  replayer->Stop();
  query_thread.join();

  result.drain_wall_us = replayer->stats().WallMicros();
  result.mean_delay_us = delays.Mean();
  result.p50_delay_us = delays.Percentile(50);
  result.p95_delay_us = delays.Percentile(95);
  result.p99_delay_us = delays.Percentile(99);
  for (const auto& h : per_query) result.per_query_mean_us.push_back(h.Mean());
  result.state_matches_primary =
      replayer->store()->DigestAt(log.final_ts) == log.primary_digest;
  return result;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  AETS_CHECK(row.size() == headers_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    std::printf("|");
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf(" %-*s |", static_cast<int>(widths[c]), row[c].c_str());
    }
    std::printf("\n");
  };
  auto print_sep = [&] {
    std::printf("+");
    for (size_t c = 0; c < widths.size(); ++c) {
      for (size_t i = 0; i < widths[c] + 2; ++i) std::printf("-");
      std::printf("+");
    }
    std::printf("\n");
  };
  print_sep();
  print_row(headers_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
  std::fflush(stdout);
}

}  // namespace aets
