#ifndef AETS_COMMON_QUEUE_H_
#define AETS_COMMON_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace aets {

/// Bounded multi-producer/multi-consumer blocking queue.
///
/// `Close()` wakes all waiters; after close, `Push` fails and `Pop` drains the
/// remaining elements then returns nullopt. Used for the replication channel
/// and for per-group replay task queues.
template <typename T>
class BlockingQueue {
 public:
  explicit BlockingQueue(size_t capacity = 0) : capacity_(capacity) {}

  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Blocks while full. Returns false if the queue was closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lk(mu_);
    not_full_.wait(lk, [&] {
      return closed_ || capacity_ == 0 || queue_.size() < capacity_;
    });
    if (closed_) return false;
    queue_.push_back(std::move(item));
    lk.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed.
  bool TryPush(T item) {
    std::unique_lock<std::mutex> lk(mu_);
    if (closed_ || (capacity_ != 0 && queue_.size() >= capacity_)) return false;
    queue_.push_back(std::move(item));
    lk.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty. Returns nullopt once closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lk(mu_);
    not_empty_.wait(lk, [&] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;
    T item = std::move(queue_.front());
    queue_.pop_front();
    lk.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::unique_lock<std::mutex> lk(mu_);
    if (queue_.empty()) return std::nullopt;
    T item = std::move(queue_.front());
    queue_.pop_front();
    lk.unlock();
    not_full_.notify_one();
    return item;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lk(mu_);
    return closed_;
  }

  size_t Size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return queue_.size();
  }

  bool Empty() const { return Size() == 0; }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> queue_;
  size_t capacity_;  // 0 = unbounded
  bool closed_ = false;
};

}  // namespace aets

#endif  // AETS_COMMON_QUEUE_H_
