#include "aets/common/rng.h"

#include <cmath>
#include <string>

#include "aets/common/macros.h"

namespace aets {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  c_load_ = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  AETS_CHECK(lo <= hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(Next() % range);
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::Gaussian(double mean, double stddev) {
  if (has_gauss_) {
    has_gauss_ = false;
    return mean + stddev * gauss_spare_;
  }
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  while (u1 <= 1e-12) u1 = UniformDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  gauss_spare_ = mag * std::sin(2.0 * M_PI * u2);
  has_gauss_ = true;
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

int64_t Rng::NuRand(int64_t a, int64_t x, int64_t y) {
  int64_t c = static_cast<int64_t>(c_load_ % static_cast<uint64_t>(a + 1));
  return (((UniformInt(0, a) | UniformInt(x, y)) + c) % (y - x + 1)) + x;
}

std::string Rng::AlphaString(int min_len, int max_len) {
  static constexpr char kChars[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  int len = static_cast<int>(UniformInt(min_len, max_len));
  std::string out(static_cast<size_t>(len), '\0');
  for (char& ch : out) ch = kChars[Next() % (sizeof(kChars) - 1)];
  return out;
}

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  AETS_CHECK(n > 0);
  zetan_ = Zeta(n, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - Zeta(2, theta) / zetan_);
}

double ZipfianGenerator::Zeta(uint64_t n, double theta) const {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}

uint64_t ZipfianGenerator::Next() {
  double u = rng_.UniformDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  return static_cast<uint64_t>(static_cast<double>(n_) *
                               std::pow(eta_ * u - eta_ + 1.0, alpha_));
}

}  // namespace aets
