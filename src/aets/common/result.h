#ifndef AETS_COMMON_RESULT_H_
#define AETS_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "aets/common/macros.h"
#include "aets/common/status.h"

namespace aets {

/// Value-or-error return type. A `Result<T>` holds either a `T` or a non-OK
/// `Status`. Accessing the value of an errored Result aborts (programmer
/// error), mirroring arrow::Result.
template <typename T>
class Result {
 public:
  /// Implicit so `return value;` and `return SomeStatus();` both work.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(runtime/explicit)
    AETS_CHECK_MSG(!std::get<Status>(repr_).ok(),
                   "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    return ok() ? kOk : std::get<Status>(repr_);
  }

  T& value() & {
    AETS_CHECK_MSG(ok(), "Result::value() on error");
    return std::get<T>(repr_);
  }
  const T& value() const& {
    AETS_CHECK_MSG(ok(), "Result::value() on error");
    return std::get<T>(repr_);
  }
  T&& value() && {
    AETS_CHECK_MSG(ok(), "Result::value() on error");
    return std::get<T>(std::move(repr_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

/// Assigns the value of a `Result` expression to `lhs`, or returns its error.
#define AETS_ASSIGN_OR_RETURN(lhs, rexpr)                 \
  auto&& _res_##__LINE__ = (rexpr);                       \
  if (!_res_##__LINE__.ok()) return _res_##__LINE__.status(); \
  lhs = std::move(_res_##__LINE__).value()

}  // namespace aets

#endif  // AETS_COMMON_RESULT_H_
