#ifndef AETS_COMMON_THREAD_POOL_H_
#define AETS_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace aets {

/// Fixed-size worker pool with a shared task queue and a barrier-style
/// `WaitIdle()`. Replay stages submit a batch of tasks and wait for the stage
/// to drain; predictors use it for data-parallel training loops.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Never blocks.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void WaitIdle();

  int num_threads() const { return static_cast<int>(threads_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> tasks_;
  int in_flight_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

/// Runs `fn(i)` for i in [0, n) across `num_threads` workers created on the
/// spot, then joins. Convenience for one-shot parallel sections.
void ParallelFor(int num_threads, int n, const std::function<void(int)>& fn);

}  // namespace aets

#endif  // AETS_COMMON_THREAD_POOL_H_
