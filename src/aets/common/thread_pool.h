#ifndef AETS_COMMON_THREAD_POOL_H_
#define AETS_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace aets {

/// Fixed-size worker pool with a shared task queue and a barrier-style
/// `WaitIdle()`. Replay stages submit a batch of tasks and wait for the stage
/// to drain; predictors use it for data-parallel training loops.
///
/// The submit queue may be bounded (`max_queue > 0`), in which case `Submit`
/// blocks the producer until a worker frees a slot — this is the backpressure
/// that lets a slow commit stage throttle upstream translation instead of
/// growing an unbounded deque. `TrySubmit` and `SubmitFor` are the
/// non-blocking / deadline-bounded variants.
///
/// Shutdown semantics: `Shutdown()` (also run by the destructor) drains tasks
/// already accepted, then stops the workers. Any `Submit`/`TrySubmit`/
/// `SubmitFor` that races with or follows shutdown is a documented no-op that
/// returns false — the task is never silently enqueued into a dying pool.
class ThreadPool {
 public:
  /// `max_queue == 0` means unbounded (submits never block on capacity).
  explicit ThreadPool(int num_threads, size_t max_queue = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task, blocking while the bounded queue is full. Returns true
  /// once the task is accepted; returns false (task dropped, never run) if
  /// the pool is shut down before a slot frees up.
  bool Submit(std::function<void()> task);

  /// Enqueues a task only if a queue slot is free right now. Returns false on
  /// a full queue or a shut-down pool; the task is never run in that case.
  bool TrySubmit(std::function<void()> task);

  /// Like `Submit` but gives up after `timeout_us` microseconds of waiting
  /// for a free slot. Returns false on timeout or shutdown.
  bool SubmitFor(std::function<void()> task, int64_t timeout_us);

  /// Blocks until every accepted task has finished executing.
  void WaitIdle();

  /// Drains accepted tasks, joins the workers, and rejects all future
  /// submits. Idempotent; the destructor calls it too.
  void Shutdown();

  int num_threads() const { return static_cast<int>(threads_.size()); }
  size_t max_queue() const { return max_queue_; }

  /// Producers observed blocking on a full queue (backpressure events).
  uint64_t submit_stalls() const {
    return submit_stalls_.load(std::memory_order_relaxed);
  }

 private:
  void WorkerLoop();
  // Pre: `lk` holds mu_. Enqueues and wakes a worker.
  void EnqueueLocked(std::function<void()>&& task);
  bool HasSpaceLocked() const {
    return max_queue_ == 0 || tasks_.size() < max_queue_;
  }

  const size_t max_queue_;
  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::condition_variable space_;
  std::deque<std::function<void()>> tasks_;
  int in_flight_ = 0;
  bool shutdown_ = false;
  std::atomic<uint64_t> submit_stalls_{0};
  std::vector<std::thread> threads_;
};

/// Runs `fn(i)` for i in [0, n) across `num_threads` workers created on the
/// spot, then joins. Convenience for one-shot parallel sections.
void ParallelFor(int num_threads, int n, const std::function<void(int)>& fn);

}  // namespace aets

#endif  // AETS_COMMON_THREAD_POOL_H_
