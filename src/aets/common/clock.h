#ifndef AETS_COMMON_CLOCK_H_
#define AETS_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace aets {

/// Logical timestamps used for commit ordering and snapshot reads. The
/// primary's commit sequence and OLAP query snapshots are both drawn from one
/// `LogicalClock`, playing the role of the timestamp oracle the paper assumes
/// ("gets the latest snapshot timestamp value from the primary", Section V-B).
using Timestamp = uint64_t;

constexpr Timestamp kInvalidTimestamp = 0;

/// Monotonically increasing logical clock. Thread-safe.
class LogicalClock {
 public:
  LogicalClock() : next_(1) {}
  explicit LogicalClock(Timestamp start) : next_(start) {}

  LogicalClock(const LogicalClock&) = delete;
  LogicalClock& operator=(const LogicalClock&) = delete;

  /// Returns a fresh, unique timestamp (strictly increasing across calls).
  Timestamp Tick() { return next_.fetch_add(1, std::memory_order_relaxed); }

  /// The most recently issued timestamp, or 0 if none was issued yet.
  Timestamp Now() const { return next_.load(std::memory_order_relaxed) - 1; }

  /// Advances the clock so the next Tick() returns at least `ts + 1`.
  void AdvanceTo(Timestamp ts) {
    Timestamp cur = next_.load(std::memory_order_relaxed);
    while (cur <= ts &&
           !next_.compare_exchange_weak(cur, ts + 1, std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<Timestamp> next_;
};

/// Monotone atomic-max publication of a watermark: advances `slot` to `ts`
/// unless it is already past it. The canonical way every replayer publishes
/// tg_cmt_ts / global_cmt_ts — a plain store could move a watermark backwards
/// when an epoch's own commits race a heartbeat or a sub-epoch's
/// max-commit-ts advance (see LogShipper's sharded split).
inline void StoreMaxTimestamp(std::atomic<Timestamp>& slot, Timestamp ts) {
  Timestamp cur = slot.load(std::memory_order_relaxed);
  while (cur < ts &&
         !slot.compare_exchange_weak(cur, ts, std::memory_order_release)) {
  }
}

/// Seam for the monotonic wall clock. Production code never sees this: the
/// default source reads std::chrono::steady_clock. The deterministic
/// simulation harness (aets/sim) installs a virtual source so every
/// MonotonicMicros/MonotonicNanos reading — stats wall times, channel wait
/// histograms, GC pauses — is a pure function of the simulated schedule
/// instead of host timing.
class ClockSource {
 public:
  virtual ~ClockSource() = default;
  virtual int64_t NowNanos() const = 0;
};

namespace internal {
/// The installed override, or nullptr for the real clock. One relaxed load
/// on the hot path; only tests ever store to it.
inline std::atomic<const ClockSource*> g_clock_source{nullptr};
}  // namespace internal

/// Installs `source` as the process-wide monotonic clock (nullptr restores
/// the real clock). Returns the previous source. Not for concurrent use
/// against itself — install before spawning the threads under test.
inline const ClockSource* InstallClockSource(const ClockSource* source) {
  return internal::g_clock_source.exchange(source, std::memory_order_acq_rel);
}

inline const ClockSource* InstalledClockSource() {
  return internal::g_clock_source.load(std::memory_order_acquire);
}

/// Wall-clock helpers (steady clock, unless a ClockSource override is
/// installed) used for measuring visibility delay and phase breakdowns.
inline int64_t MonotonicNanos() {
  if (const ClockSource* src =
          internal::g_clock_source.load(std::memory_order_acquire)) {
    return src->NowNanos();
  }
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

inline int64_t MonotonicMicros() { return MonotonicNanos() / 1000; }

/// Scoped stopwatch accumulating elapsed nanoseconds into a counter.
class ScopedTimerNs {
 public:
  explicit ScopedTimerNs(std::atomic<int64_t>* sink)
      : sink_(sink), start_(MonotonicNanos()) {}
  ~ScopedTimerNs() {
    sink_->fetch_add(MonotonicNanos() - start_, std::memory_order_relaxed);
  }

  ScopedTimerNs(const ScopedTimerNs&) = delete;
  ScopedTimerNs& operator=(const ScopedTimerNs&) = delete;

 private:
  std::atomic<int64_t>* sink_;
  int64_t start_;
};

}  // namespace aets

#endif  // AETS_COMMON_CLOCK_H_
