#ifndef AETS_COMMON_CLOCK_H_
#define AETS_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace aets {

/// Logical timestamps used for commit ordering and snapshot reads. The
/// primary's commit sequence and OLAP query snapshots are both drawn from one
/// `LogicalClock`, playing the role of the timestamp oracle the paper assumes
/// ("gets the latest snapshot timestamp value from the primary", Section V-B).
using Timestamp = uint64_t;

constexpr Timestamp kInvalidTimestamp = 0;

/// Monotonically increasing logical clock. Thread-safe.
class LogicalClock {
 public:
  LogicalClock() : next_(1) {}
  explicit LogicalClock(Timestamp start) : next_(start) {}

  LogicalClock(const LogicalClock&) = delete;
  LogicalClock& operator=(const LogicalClock&) = delete;

  /// Returns a fresh, unique timestamp (strictly increasing across calls).
  Timestamp Tick() { return next_.fetch_add(1, std::memory_order_relaxed); }

  /// The most recently issued timestamp, or 0 if none was issued yet.
  Timestamp Now() const { return next_.load(std::memory_order_relaxed) - 1; }

  /// Advances the clock so the next Tick() returns at least `ts + 1`.
  void AdvanceTo(Timestamp ts) {
    Timestamp cur = next_.load(std::memory_order_relaxed);
    while (cur <= ts &&
           !next_.compare_exchange_weak(cur, ts + 1, std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<Timestamp> next_;
};

/// Wall-clock helpers (steady clock) used for measuring visibility delay and
/// phase breakdowns.
inline int64_t MonotonicMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

inline int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Scoped stopwatch accumulating elapsed nanoseconds into a counter.
class ScopedTimerNs {
 public:
  explicit ScopedTimerNs(std::atomic<int64_t>* sink)
      : sink_(sink), start_(MonotonicNanos()) {}
  ~ScopedTimerNs() {
    sink_->fetch_add(MonotonicNanos() - start_, std::memory_order_relaxed);
  }

  ScopedTimerNs(const ScopedTimerNs&) = delete;
  ScopedTimerNs& operator=(const ScopedTimerNs&) = delete;

 private:
  std::atomic<int64_t>* sink_;
  int64_t start_;
};

}  // namespace aets

#endif  // AETS_COMMON_CLOCK_H_
