#include "aets/common/status.h"

namespace aets {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kBelowCheckpoint:
      return "BelowCheckpoint";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(state_->code));
  out += ": ";
  out += state_->message;
  return out;
}

}  // namespace aets
