#ifndef AETS_COMMON_MACROS_H_
#define AETS_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// \file
/// Invariant-checking macros. `AETS_CHECK` aborts on programmer errors; it is
/// compiled into all build types because replay correctness bugs are silent
/// data corruption otherwise.

#define AETS_CHECK(cond)                                                     \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "AETS_CHECK failed: %s at %s:%d\n", #cond,        \
                   __FILE__, __LINE__);                                      \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define AETS_CHECK_MSG(cond, msg)                                            \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "AETS_CHECK failed: %s (%s) at %s:%d\n", #cond,   \
                   msg, __FILE__, __LINE__);                                 \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

/// Propagates a non-OK Status out of the current function.
#define AETS_RETURN_NOT_OK(expr)                                             \
  do {                                                                       \
    ::aets::Status _st = (expr);                                             \
    if (!_st.ok()) return _st;                                               \
  } while (0)

#endif  // AETS_COMMON_MACROS_H_
