#ifndef AETS_COMMON_STATUS_H_
#define AETS_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

/// \file
/// RocksDB/Arrow-style `Status` used for recoverable errors throughout the
/// library. Hot paths never throw; functions that can fail return `Status`
/// (or `Result<T>`, see result.h).

namespace aets {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kCorruption = 4,
  kOutOfRange = 5,
  kAborted = 6,
  kTimedOut = 7,
  kInternal = 8,
  kNotSupported = 9,
  /// The requested epoch sits below the durable log's truncation floor: a
  /// checkpoint image already covers it, so the data is not lost — the
  /// requester must bootstrap from that image instead of replaying.
  kBelowCheckpoint = 10,
};

/// Returns a human-readable name such as "InvalidArgument".
std::string_view StatusCodeToString(StatusCode code);

class Status {
 public:
  /// Default constructor builds an OK status with no allocation.
  Status() = default;

  Status(StatusCode code, std::string message)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_unique<State>(State{code, std::move(message)})) {}

  Status(const Status& other)
      : state_(other.state_ ? std::make_unique<State>(*other.state_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
    }
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status BelowCheckpoint(std::string msg) {
    return Status(StatusCode::kBelowCheckpoint, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsAborted() const { return code() == StatusCode::kAborted; }
  bool IsTimedOut() const { return code() == StatusCode::kTimedOut; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsNotSupported() const { return code() == StatusCode::kNotSupported; }
  bool IsBelowCheckpoint() const { return code() == StatusCode::kBelowCheckpoint; }

  /// The error message; empty for OK.
  std::string_view message() const {
    return state_ ? std::string_view(state_->message) : std::string_view();
  }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // nullptr means OK so the success path costs nothing.
  std::unique_ptr<State> state_;
};

}  // namespace aets

#endif  // AETS_COMMON_STATUS_H_
