#ifndef AETS_COMMON_HISTOGRAM_H_
#define AETS_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace aets {

/// Log-bucketed latency histogram (microsecond-scale values). Thread-safe;
/// the OLAP driver records one visibility-delay sample per query.
class Histogram {
 public:
  /// Consistent point-in-time statistics, taken under one lock acquisition
  /// (the individual accessors each lock separately, so combining them can
  /// mix states under concurrent recording).
  struct Stats {
    int64_t count = 0;
    int64_t sum = 0;
    int64_t min = 0;
    int64_t max = 0;
    double mean = 0;
    double p50 = 0;
    double p95 = 0;
    double p99 = 0;
  };

  Histogram();

  void Record(int64_t value);

  /// Merges `other` into this histogram.
  void Merge(const Histogram& other);

  int64_t count() const;
  double Mean() const;
  int64_t Min() const;
  int64_t Max() const;

  /// Approximate percentile (p in [0, 100]) by linear interpolation within
  /// the containing bucket.
  double Percentile(double p) const;

  Stats SnapshotStats() const;

  /// One-line summary, e.g. "n=100 mean=5.2us p50=4 p95=11 p99=20 max=33".
  std::string Summary() const;

  void Reset();

 private:
  static constexpr int kNumBuckets = 64 * 4;  // 4 sub-buckets per power of two

  static int BucketFor(int64_t value);
  static int64_t BucketLower(int bucket);

  /// Percentile with `mu_` already held.
  double PercentileLocked(double p) const;

  mutable std::mutex mu_;
  std::vector<int64_t> buckets_;
  int64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

}  // namespace aets

#endif  // AETS_COMMON_HISTOGRAM_H_
