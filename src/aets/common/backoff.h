#ifndef AETS_COMMON_BACKOFF_H_
#define AETS_COMMON_BACKOFF_H_

#include <chrono>
#include <cstdint>
#include <thread>

namespace aets {

/// Spin-then-yield-then-sleep backoff for the replay-path busy waits. The
/// waiter burns `spins_per_yield` iterations on the core first (the common
/// case: the producer is one cache miss away), then yields the core, and
/// after `yields_before_sleep` yields starts sleeping `sleep_us` at a time.
/// Yielding instead of a futex park keeps the producer hot path free of any
/// waker-signalling cost — the waiter wakes to find a batch of work ready.
///
/// Pass a negative `yields_before_sleep` to never escalate past yielding
/// (ATR's operation-sequence check: the dependency is always an earlier
/// in-flight operation, microseconds away).
class SpinBackoff {
 public:
  explicit SpinBackoff(int spins_per_yield = 64, int yields_before_sleep = 256,
                       int64_t sleep_us = 20)
      : spins_per_yield_(spins_per_yield),
        yields_before_sleep_(yields_before_sleep),
        sleep_us_(sleep_us) {}

  /// One backoff step; call in the body of the wait loop.
  void Pause() {
    waited_ = true;
    if (++spins_ <= spins_per_yield_) return;
    spins_ = 0;
    if (yields_before_sleep_ >= 0 && ++yields_ > yields_before_sleep_) {
      std::this_thread::sleep_for(std::chrono::microseconds(sleep_us_));
    } else {
      std::this_thread::yield();
    }
  }

  /// True once Pause() has run at least once (the wait wasn't free).
  bool waited() const { return waited_; }

 private:
  int spins_per_yield_;
  int yields_before_sleep_;
  int64_t sleep_us_;
  int spins_ = 0;
  int yields_ = 0;
  bool waited_ = false;
};

}  // namespace aets

#endif  // AETS_COMMON_BACKOFF_H_
