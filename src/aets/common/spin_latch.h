#ifndef AETS_COMMON_SPIN_LATCH_H_
#define AETS_COMMON_SPIN_LATCH_H_

#include <atomic>
#include <thread>

namespace aets {

/// Tiny test-and-test-and-set spinlock. Memtable nodes hold one of these;
/// the paper's Algorithm 1 takes it only for the short append into a version
/// list, so spinning beats a futex.
class SpinLatch {
 public:
  SpinLatch() = default;
  SpinLatch(const SpinLatch&) = delete;
  SpinLatch& operator=(const SpinLatch&) = delete;

  void Lock() {
    int spins = 0;
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) {
        if (++spins > 1024) {
          std::this_thread::yield();
          spins = 0;
        }
      }
    }
  }

  bool TryLock() { return !flag_.exchange(true, std::memory_order_acquire); }

  void Unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

/// RAII guard for SpinLatch.
class SpinGuard {
 public:
  explicit SpinGuard(SpinLatch& latch) : latch_(latch) { latch_.Lock(); }
  ~SpinGuard() { latch_.Unlock(); }
  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  SpinLatch& latch_;
};

}  // namespace aets

#endif  // AETS_COMMON_SPIN_LATCH_H_
