#include "aets/common/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace aets {

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

int Histogram::BucketFor(int64_t value) {
  if (value <= 0) return 0;
  uint64_t v = static_cast<uint64_t>(value);
  int log2 = 63 - std::countl_zero(v);
  // 4 linear sub-buckets per power of two.
  int sub = log2 >= 2 ? static_cast<int>((v >> (log2 - 2)) & 0x3) : 0;
  int bucket = log2 * 4 + sub;
  return std::min(bucket, kNumBuckets - 1);
}

int64_t Histogram::BucketLower(int bucket) {
  int log2 = bucket / 4;
  int sub = bucket % 4;
  if (log2 == 0) return 0;
  int64_t base = int64_t{1} << log2;
  if (log2 < 2) return base;
  return base + (base >> 2) * sub;
}

void Histogram::Record(int64_t value) {
  std::lock_guard<std::mutex> lk(mu_);
  buckets_[static_cast<size_t>(BucketFor(value))]++;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

void Histogram::Merge(const Histogram& other) {
  // Consistent lock order by address avoids deadlock on cross merges.
  const Histogram* first = this < &other ? this : &other;
  const Histogram* second = this < &other ? &other : this;
  std::lock_guard<std::mutex> lk1(first->mu_);
  std::lock_guard<std::mutex> lk2(second->mu_);
  for (int i = 0; i < kNumBuckets; ++i) buckets_[static_cast<size_t>(i)] += other.buckets_[static_cast<size_t>(i)];
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
  }
}

int64_t Histogram::count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return count_;
}

double Histogram::Mean() const {
  std::lock_guard<std::mutex> lk(mu_);
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
}

int64_t Histogram::Min() const {
  std::lock_guard<std::mutex> lk(mu_);
  return min_;
}

int64_t Histogram::Max() const {
  std::lock_guard<std::mutex> lk(mu_);
  return max_;
}

double Histogram::Percentile(double p) const {
  std::lock_guard<std::mutex> lk(mu_);
  return PercentileLocked(p);
}

Histogram::Stats Histogram::SnapshotStats() const {
  std::lock_guard<std::mutex> lk(mu_);
  Stats s;
  s.count = count_;
  s.sum = sum_;
  s.min = min_;
  s.max = max_;
  s.mean = count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  s.p50 = PercentileLocked(50);
  s.p95 = PercentileLocked(95);
  s.p99 = PercentileLocked(99);
  return s;
}

double Histogram::PercentileLocked(double p) const {
  if (count_ == 0) return 0.0;
  double rank = p / 100.0 * static_cast<double>(count_);
  int64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    int64_t in_bucket = buckets_[static_cast<size_t>(i)];
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= rank) {
      double frac = (rank - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      int64_t lo = BucketLower(i);
      int64_t hi = i + 1 < kNumBuckets ? BucketLower(i + 1) : max_;
      hi = std::min(hi, max_);
      lo = std::max(lo, min_);
      if (hi < lo) hi = lo;
      return static_cast<double>(lo) + frac * static_cast<double>(hi - lo);
    }
    seen += in_bucket;
  }
  return static_cast<double>(max_);
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%lld mean=%.1f p50=%.0f p95=%.0f p99=%.0f max=%lld",
                static_cast<long long>(count()), Mean(), Percentile(50),
                Percentile(95), Percentile(99), static_cast<long long>(Max()));
  return buf;
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lk(mu_);
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = sum_ = min_ = max_ = 0;
}

}  // namespace aets
