#include "aets/common/thread_pool.h"

#include <chrono>

#include "aets/common/macros.h"

namespace aets {

ThreadPool::ThreadPool(int num_threads, size_t max_queue)
    : max_queue_(max_queue) {
  AETS_CHECK(num_threads > 0);
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  task_ready_.notify_all();
  space_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::EnqueueLocked(std::function<void()>&& task) {
  tasks_.push_back(std::move(task));
}

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (!shutdown_ && !HasSpaceLocked()) {
      submit_stalls_.fetch_add(1, std::memory_order_relaxed);
      space_.wait(lk, [&] { return shutdown_ || HasSpaceLocked(); });
    }
    if (shutdown_) return false;
    EnqueueLocked(std::move(task));
  }
  task_ready_.notify_one();
  return true;
}

bool ThreadPool::TrySubmit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (shutdown_ || !HasSpaceLocked()) return false;
    EnqueueLocked(std::move(task));
  }
  task_ready_.notify_one();
  return true;
}

bool ThreadPool::SubmitFor(std::function<void()> task, int64_t timeout_us) {
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (!shutdown_ && !HasSpaceLocked()) {
      submit_stalls_.fetch_add(1, std::memory_order_relaxed);
      bool ok = space_.wait_for(lk, std::chrono::microseconds(timeout_us),
                                [&] { return shutdown_ || HasSpaceLocked(); });
      if (!ok) return false;  // timed out with a full queue
    }
    if (shutdown_) return false;
    EnqueueLocked(std::move(task));
  }
  task_ready_.notify_one();
  return true;
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_.wait(lk, [&] { return tasks_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      task_ready_.wait(lk, [&] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutdown with drained queue
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++in_flight_;
    }
    space_.notify_one();
    task();
    {
      std::lock_guard<std::mutex> lk(mu_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

void ParallelFor(int num_threads, int n, const std::function<void(int)>& fn) {
  AETS_CHECK(num_threads > 0);
  if (n <= 0) return;
  if (num_threads == 1 || n == 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<int> next{0};
  std::vector<std::thread> threads;
  int workers = std::min(num_threads, n);
  threads.reserve(static_cast<size_t>(workers));
  for (int t = 0; t < workers; ++t) {
    threads.emplace_back([&] {
      for (;;) {
        int i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  for (auto& t : threads) t.join();
}

}  // namespace aets
