#ifndef AETS_COMMON_RNG_H_
#define AETS_COMMON_RNG_H_

#include <cstdint>
#include <string>

namespace aets {

/// Deterministic, fast PRNG (xoshiro256**). Benchmarks and tests seed it
/// explicitly so every run is reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  uint64_t Next();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Gaussian via Box-Muller.
  double Gaussian(double mean, double stddev);

  /// True with probability p.
  bool Bernoulli(double p);

  /// TPC-C NURand(A, x, y) non-uniform random, with constant C fixed at seed
  /// time (TPC-C clause 2.1.6).
  int64_t NuRand(int64_t a, int64_t x, int64_t y);

  /// Random alphanumeric string of length in [min_len, max_len].
  std::string AlphaString(int min_len, int max_len);

 private:
  uint64_t s_[4];
  uint64_t c_load_;  // NURand C constant.
  bool has_gauss_ = false;
  double gauss_spare_ = 0.0;
};

/// Zipfian generator over [0, n) with skew theta (Gray et al.). Used by the
/// synthetic hot/cold workloads.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta, uint64_t seed = 42);

  uint64_t Next();

  uint64_t n() const { return n_; }

 private:
  double Zeta(uint64_t n, double theta) const;

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  Rng rng_;
};

}  // namespace aets

#endif  // AETS_COMMON_RNG_H_
