#include "aets/obs/trace.h"

#include <atomic>

namespace aets {
namespace obs {

namespace {

uint32_t ThisThreadOrdinal() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

/// Thread-local staging buffer. Flushes on overflow and at thread exit (the
/// destructor), so short-lived pool workers never strand their spans.
struct Tracer::ThreadBuffer {
  std::vector<SpanEvent> events;

  ThreadBuffer() { events.reserve(kThreadBufferSize); }
  ~ThreadBuffer() {
    if (!events.empty()) Tracer::Instance().FlushBuffer(this);
  }
};

Tracer& Tracer::Instance() {
  // Intentionally leaked, like MetricsRegistry: thread-exit buffer flushes
  // and atexit dump hooks can run after static destruction begins.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

Tracer::ThreadBuffer& Tracer::LocalBuffer() {
  thread_local ThreadBuffer buffer;
  return buffer;
}

void Tracer::Record(const SpanEvent& event) {
  ThreadBuffer& buf = LocalBuffer();
  buf.events.push_back(event);
  if (buf.events.size() >= kThreadBufferSize) FlushBuffer(&buf);
}

void Tracer::FlushThisThread() {
  ThreadBuffer& buf = LocalBuffer();
  if (!buf.events.empty()) FlushBuffer(&buf);
}

void Tracer::FlushBuffer(ThreadBuffer* buf) {
  std::lock_guard<std::mutex> lk(mu_);
  for (const SpanEvent& ev : buf->events) {
    if (ring_.size() < kRingCapacity) {
      ring_.push_back(ev);
    } else {
      ring_[ring_next_] = ev;
      ring_next_ = (ring_next_ + 1) % kRingCapacity;
    }
    ++total_;
  }
  buf->events.clear();
}

std::vector<SpanEvent> Tracer::RecentSpans() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<SpanEvent> out;
  out.reserve(ring_.size());
  // Once wrapped, ring_next_ points at the oldest element.
  if (ring_.size() == kRingCapacity) {
    for (size_t i = 0; i < kRingCapacity; ++i) {
      out.push_back(ring_[(ring_next_ + i) % kRingCapacity]);
    }
  } else {
    out = ring_;
  }
  return out;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lk(mu_);
  ring_.clear();
  ring_next_ = 0;
}

uint64_t Tracer::total_recorded() const {
  std::lock_guard<std::mutex> lk(mu_);
  return total_;
}

ScopedSpan::~ScopedSpan() {
  int64_t duration = MonotonicNanos() - start_ns_;
  site_->hist()->Record(duration / 1000);
  Tracer::Instance().Record(
      SpanEvent{site_->name(), ThisThreadOrdinal(), start_ns_, duration});
}

}  // namespace obs
}  // namespace aets
