#ifndef AETS_OBS_EXPORT_H_
#define AETS_OBS_EXPORT_H_

#include <string>
#include <string_view>

#include "aets/common/status.h"
#include "aets/obs/metrics.h"

namespace aets {
namespace obs {

/// Escapes `s` for inclusion inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string JsonEscape(std::string_view s);

/// Renders one snapshot as a pretty-printed JSON object:
/// {"counters": {...}, "gauges": {...},
///  "histograms": {name: {count, sum, min, max, mean, p50, p95, p99}}}.
std::string SnapshotToJson(const MetricsSnapshot& snapshot);

/// Full observability dump: the registry snapshot plus the tracer's recent
/// spans ({"metrics": ..., "spans": [{name, thread, start_ns, duration_ns}]}).
/// Flushes the calling thread's span buffer first.
std::string MetricsToJson();

/// Writes MetricsToJson() to `path` (truncating). Used by the bench
/// harness's --metrics-json flag and the AETS_METRICS_JSON env hook.
Status WriteMetricsJsonFile(const std::string& path);

}  // namespace obs
}  // namespace aets

#endif  // AETS_OBS_EXPORT_H_
