#ifndef AETS_OBS_TRACE_H_
#define AETS_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "aets/common/clock.h"
#include "aets/obs/metrics.h"

namespace aets {
namespace obs {

/// One completed span: a named wall-clock interval on one thread.
struct SpanEvent {
  const char* name = nullptr;  // static string owned by the SpanSite
  uint32_t thread_id = 0;      // small per-process ordinal, not the OS tid
  int64_t start_ns = 0;        // MonotonicNanos at entry
  int64_t duration_ns = 0;
};

/// Process-wide span sink. Spans land in a per-thread buffer first (no
/// locks on the hot path) and are flushed in batches into a bounded ring
/// that keeps the most recent `kRingCapacity` events; older events are
/// overwritten. Thread buffers flush when full and at thread exit.
class Tracer {
 public:
  static constexpr size_t kRingCapacity = 8192;
  static constexpr size_t kThreadBufferSize = 128;

  static Tracer& Instance();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Appends to the calling thread's buffer; flushes to the ring if full.
  void Record(const SpanEvent& event);

  /// Pushes the calling thread's buffered spans into the ring now.
  void FlushThisThread();

  /// The ring contents in arrival order (oldest first). Only spans already
  /// flushed from their thread buffers are visible.
  std::vector<SpanEvent> RecentSpans() const;

  /// Empties the ring (thread buffers are untouched).
  void Clear();

  /// Total spans ever flushed into the ring (monotone; exceeds
  /// kRingCapacity once the ring has wrapped).
  uint64_t total_recorded() const;

 private:
  Tracer() { ring_.reserve(kRingCapacity); }

  struct ThreadBuffer;
  void FlushBuffer(ThreadBuffer* buf);
  static ThreadBuffer& LocalBuffer();

  mutable std::mutex mu_;
  std::vector<SpanEvent> ring_;  // grows to kRingCapacity, then circular
  size_t ring_next_ = 0;
  uint64_t total_ = 0;
};

/// Per-call-site state for AETS_TRACE_SPAN: owns the span name and the
/// latency histogram (`span.<name>`, microseconds) resolved once.
class SpanSite {
 public:
  explicit SpanSite(const char* name)
      : name_(name), hist_(GetHistogram(std::string("span.") + name)) {}

  const char* name() const { return name_; }
  Histogram* hist() const { return hist_; }

 private:
  const char* name_;
  Histogram* hist_;
};

/// RAII span: on destruction records the duration into the site's histogram
/// and emits a SpanEvent to the tracer.
class ScopedSpan {
 public:
  explicit ScopedSpan(const SpanSite* site)
      : site_(site), start_ns_(MonotonicNanos()) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan();

 private:
  const SpanSite* site_;
  int64_t start_ns_;
};

}  // namespace obs
}  // namespace aets

#define AETS_OBS_CONCAT_INNER(a, b) a##b
#define AETS_OBS_CONCAT(a, b) AETS_OBS_CONCAT_INNER(a, b)

/// Times the enclosing scope under `name`: duration goes to the registry
/// histogram `span.<name>` (microseconds) and to the tracer ring. The site
/// is resolved once per call site (function-local static).
#define AETS_TRACE_SPAN(name)                                              \
  static const ::aets::obs::SpanSite AETS_OBS_CONCAT(aets_span_site_,      \
                                                     __LINE__){name};      \
  ::aets::obs::ScopedSpan AETS_OBS_CONCAT(aets_span_, __LINE__)(           \
      &AETS_OBS_CONCAT(aets_span_site_, __LINE__))

#endif  // AETS_OBS_TRACE_H_
