#ifndef AETS_OBS_METRICS_H_
#define AETS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "aets/common/histogram.h"

namespace aets {
namespace obs {

/// Monotonically increasing event counter. Lock-free; safe to hammer from
/// replay workers, committers, and daemon threads concurrently.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depth, thread counts,
/// watermarks). Lock-free.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// One consistent snapshot of every registered instrument. Histogram stats
/// are each taken under that histogram's lock (see Histogram::SnapshotStats).
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, Histogram::Stats> histograms;
};

/// Process-wide registry of named Counters, Gauges, and Histograms.
///
/// Lookup takes a mutex and allocates on first use, so call sites resolve
/// their instrument pointer ONCE (constructor, static local, or member) and
/// then update through the pointer on the hot path — returned pointers are
/// stable for the process lifetime; instruments are never unregistered.
///
/// The registry aggregates across every component instance in the process:
/// a comparison bench that runs four replayers sequentially accumulates all
/// four into the same `replay.*` series (use ResetAll between phases when
/// per-phase numbers are needed).
class MetricsRegistry {
 public:
  static MetricsRegistry& Instance();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the named instrument. Never returns nullptr.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered instrument (names stay registered). Tests and
  /// multi-phase benches use this to scope measurements.
  void ResetAll();

 private:
  MetricsRegistry();

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Shorthands for instrument resolution at initialization time.
inline Counter* GetCounter(std::string_view name) {
  return MetricsRegistry::Instance().GetCounter(name);
}
inline Gauge* GetGauge(std::string_view name) {
  return MetricsRegistry::Instance().GetGauge(name);
}
inline Histogram* GetHistogram(std::string_view name) {
  return MetricsRegistry::Instance().GetHistogram(name);
}

}  // namespace obs
}  // namespace aets

#endif  // AETS_OBS_METRICS_H_
