#include "aets/obs/export.h"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstring>

#include "aets/obs/trace.h"

namespace aets {
namespace obs {

namespace {

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, std::min(sizeof(buf) - 1, static_cast<size_t>(n)));
}

/// %.17g round-trips every double; trim to a compact fixed form for the
/// histogram stats (latencies in microseconds — 3 decimals is plenty).
void AppendDouble(std::string* out, double v) { AppendF(out, "%.3f", v); }

}  // namespace

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          AppendF(&out, "\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string SnapshotToJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : snapshot.counters) {
    AppendF(&out, "%s\n    \"%s\": %" PRIu64, first ? "" : ",",
            JsonEscape(name).c_str(), v);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : snapshot.gauges) {
    AppendF(&out, "%s\n    \"%s\": %" PRId64, first ? "" : ",",
            JsonEscape(name).c_str(), v);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    AppendF(&out,
            "%s\n    \"%s\": {\"count\": %" PRId64 ", \"sum\": %" PRId64
            ", \"min\": %" PRId64 ", \"max\": %" PRId64 ", \"mean\": ",
            first ? "" : ",", JsonEscape(name).c_str(), h.count, h.sum, h.min,
            h.max);
    AppendDouble(&out, h.mean);
    out += ", \"p50\": ";
    AppendDouble(&out, h.p50);
    out += ", \"p95\": ";
    AppendDouble(&out, h.p95);
    out += ", \"p99\": ";
    AppendDouble(&out, h.p99);
    out += "}";
    first = false;
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}";
  return out;
}

std::string MetricsToJson() {
  Tracer::Instance().FlushThisThread();
  std::string out = "{\n\"metrics\": ";
  out += SnapshotToJson(MetricsRegistry::Instance().Snapshot());
  out += ",\n\"spans\": [";
  bool first = true;
  for (const SpanEvent& ev : Tracer::Instance().RecentSpans()) {
    AppendF(&out,
            "%s\n  {\"name\": \"%s\", \"thread\": %u, \"start_ns\": %" PRId64
            ", \"duration_ns\": %" PRId64 "}",
            first ? "" : ",", JsonEscape(ev.name).c_str(), ev.thread_id,
            ev.start_ns, ev.duration_ns);
    first = false;
  }
  out += first ? "]\n}\n" : "\n]\n}\n";
  return out;
}

Status WriteMetricsJsonFile(const std::string& path) {
  std::string json = MetricsToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open metrics file " + path + ": " +
                            std::strerror(errno));
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status::Internal("short write to metrics file " + path);
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace aets
