#include "aets/obs/metrics.h"

#include <cstdio>
#include <cstdlib>

#include "aets/obs/export.h"

namespace aets {
namespace obs {

namespace {

/// atexit hook for the AETS_METRICS_JSON env var: any binary that touches
/// the registry dumps its final snapshot without needing harness wiring
/// (google-benchmark micros, examples, ad-hoc tools).
void DumpSnapshotAtExit() {
  const char* path = std::getenv("AETS_METRICS_JSON");
  if (path == nullptr || path[0] == '\0') return;
  Status st = WriteMetricsJsonFile(path);
  if (!st.ok()) {
    std::fprintf(stderr, "metrics export to %s failed: %s\n", path,
                 st.ToString().c_str());
  }
}

}  // namespace

MetricsRegistry::MetricsRegistry() {
  if (std::getenv("AETS_METRICS_JSON") != nullptr) {
    std::atexit(DumpSnapshotAtExit);
  }
}

MetricsRegistry& MetricsRegistry::Instance() {
  // Intentionally leaked: atexit dump hooks and detached daemon threads may
  // touch the registry after main() returns, so it must outlive every other
  // static (a Meyers singleton would be destroyed before late atexit hooks).
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = h->SnapshotStats();
  }
  return snap;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace obs
}  // namespace aets
