#ifndef AETS_STORAGE_VERSION_CHAIN_H_
#define AETS_STORAGE_VERSION_CHAIN_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "aets/common/clock.h"
#include "aets/common/spin_latch.h"
#include "aets/log/record.h"
#include "aets/storage/flat_row.h"
#include "aets/storage/packed_delta.h"
#include "aets/storage/value.h"

namespace aets {

/// One committed version of a record: the delta written by one transaction,
/// packed into a single contiguous block. Inserts carry the full row image;
/// updates carry only the modified columns; deletes are tombstones.
/// Move-only (the delta block has one owner).
struct VersionCell {
  Timestamp commit_ts = kInvalidTimestamp;
  TxnId txn_id = kInvalidTxnId;
  bool is_delete = false;
  PackedDelta delta;
};

/// A materialized row at some snapshot: sorted (column id, value) pairs.
using Row = FlatRow;

/// A record in the Memtable: row key plus its transactionID-based version
/// chain (paper Fig. 6). Versions are appended strictly in commit-timestamp
/// order under the node latch; readers reconstruct the row visible at a
/// snapshot by folding deltas up to that timestamp.
class MemNode {
 public:
  explicit MemNode(int64_t row_key) : row_key_(row_key) {}

  MemNode(const MemNode&) = delete;
  MemNode& operator=(const MemNode&) = delete;

  int64_t row_key() const { return row_key_; }

  /// Appends a committed version. Enforces commit-timestamp monotonicity —
  /// the invariant the commit phase of every replayer must maintain.
  void AppendVersion(VersionCell cell);

  /// Reconstructs the row visible at `ts` (latest version with
  /// commit_ts <= ts). Returns nullopt if the row does not exist at `ts`
  /// (never inserted yet, or deleted).
  std::optional<Row> ReadVisible(Timestamp ts) const;

  /// The newest committed version's txn id, or kInvalidTxnId when empty.
  /// ATR's operation-sequence check compares this against the log's
  /// before-image txn id.
  TxnId LastWriterTxn() const;

  /// The newest committed version's timestamp.
  Timestamp LastCommitTs() const;

  size_t NumVersions() const;

  /// Garbage-collects versions no snapshot at or above `watermark` can ever
  /// read: drops every version older than the newest version with
  /// commit_ts <= watermark (that one stays as the visible base), after
  /// folding the dropped delta prefix into it so reconstruction still works.
  /// Returns the number of versions reclaimed. Reads below the watermark
  /// afterwards see the folded base instead of history — callers must only
  /// pass watermarks no reader can still be below.
  size_t TruncateBefore(Timestamp watermark);

 private:
  int64_t row_key_;
  mutable SpinLatch latch_;
  std::vector<VersionCell> versions_;  // ascending commit_ts
};

}  // namespace aets

#endif  // AETS_STORAGE_VERSION_CHAIN_H_
