#ifndef AETS_STORAGE_COLUMN_STORE_H_
#define AETS_STORAGE_COLUMN_STORE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "aets/catalog/catalog.h"
#include "aets/common/clock.h"
#include "aets/storage/column_chunk.h"
#include "aets/storage/table_store.h"

namespace aets {
namespace storage {

struct ColumnStoreOptions {
  /// Target rows per chunk. A rewrite that grows a chunk past twice this
  /// splits it back into chunk_rows-sized pieces.
  size_t chunk_rows = 4096;
  /// Generations retained per table. A query pinned before the oldest
  /// retained generation falls back to the row path.
  size_t max_generations = 8;
  /// Publish amortization: when > 0, a non-forced Publish skips any table
  /// whose pending dirty set is smaller than
  /// max(publish_min_dirty, live_rows / 8) — rewriting a chunk costs
  /// O(chunk_rows) regardless of how few of its rows changed, so batching
  /// epochs until the backlog is worth the rewrite bounds the replay-path
  /// write amplification at ~8x. Skipped tables stay exact: their changes
  /// ride the residual top-up until the backlog crosses the threshold (or a
  /// forced flush on heartbeat / shutdown). 0 publishes on every call.
  size_t publish_min_dirty = 0;
};

/// One query's consistent view of a table's columnar projection: the newest
/// generation with chunk_ts <= qts, plus the sorted residual key set that
/// may have changed in (chunk_ts, qts] and must be re-resolved from the
/// row-store version chains. Obtained from ColumnStore::SnapshotAt; all
/// referenced chunk data is immutable, so a snapshot outlives any
/// concurrent Publish.
///
/// Protocol: call LoadResidual() while `qts` is still protected from GC
/// (snapshot pin / watermark retention) — it reads the residual keys from
/// the version chains. After that, Digest/RowCount/ScanRows touch only
/// immutable chunk data plus the preloaded residual rows, so the caller may
/// release its pin first (this is what bounds the QueryServer's pin time).
class ColumnSnapshot {
 public:
  ColumnSnapshot() = default;

  bool valid() const { return gen_ != nullptr; }
  Timestamp qts() const { return qts_; }
  Timestamp chunk_ts() const { return gen_->chunk_ts; }
  const std::vector<ColumnChunk>& chunks() const { return gen_->chunks; }
  const std::vector<int64_t>& residual_keys() const { return residual_; }

  /// Re-resolves every residual key at qts from the row store. Requires the
  /// snapshot to be GC-protected at the time of the call.
  void LoadResidual();
  bool residual_loaded() const { return residual_loaded_; }
  /// Residual keys visible at qts, with their rows (absent keys dropped).
  const std::map<int64_t, FlatRow>& residual_rows() const {
    return residual_rows_;
  }

  /// Rows of `chunk` a scan must skip: this generation's tombstones plus
  /// any residual key falling in the chunk (its chunk value is stale at
  /// qts; the residual row supersedes it). Irregular rows are NOT included
  /// — typed loops must OR in chunk.data->irregular themselves and cover
  /// those rows via chunk.data->irregular_rows.
  BitVec ScanSkipBits(const ColumnChunk& chunk) const;

  /// Order-independent digest of everything visible at qts — equals
  /// Memtable::DigestAt(qts). Requires LoadResidual().
  uint64_t Digest() const;

  /// Number of rows visible at qts. Requires LoadResidual().
  size_t RowCount() const;

  /// Visits every row visible at qts (chunk rows in ascending key order
  /// first, then residual rows; overall order unspecified). Visitor returns
  /// false to stop. Requires LoadResidual().
  template <typename Visitor>
  void ScanRows(Visitor&& visit) const {
    AETS_CHECK_MSG(residual_loaded_, "ScanRows before LoadResidual");
    for (const ColumnChunk& chunk : gen_->chunks) {
      BitVec skip = ScanSkipBits(chunk);
      size_t n = chunk.data->num_rows();
      for (size_t i = 0; i < n; ++i) {
        if (skip.Get(i)) continue;
        if (!visit(chunk.data->keys[i], chunk.data->MaterializeRow(i))) return;
      }
    }
    for (const auto& [key, row] : residual_rows_) {
      if (!visit(key, row)) return;
    }
  }

 private:
  friend class ColumnStore;

  std::shared_ptr<const TableGeneration> gen_;
  const Memtable* rows_ = nullptr;  // residual top-up source
  Timestamp qts_ = kInvalidTimestamp;
  std::vector<int64_t> residual_;  // sorted
  std::map<int64_t, FlatRow> residual_rows_;
  bool residual_loaded_ = false;
};

/// Watermark-versioned columnar projections of a TableStore, rebuilt
/// incrementally from the dirty-key sets of each committed epoch
/// (DESIGN.md §13; the delta-merge design of ROADMAP item 1).
///
/// Commit side:
///   - Group commits call NoteDirty(key, commit_ts) for every row they
///     install, BEFORE publishing the group watermark — so any reader that
///     observed a watermark also observes the dirty keys accumulated up to
///     it.
///   - After an epoch's watermarks publish, the replayer's background merge
///     thread runs Publish(w), turning each table's pending entries with
///     commit_ts <= w into a new generation (later entries stay pending):
///     only touched chunks are rewritten (pure deletes just copy the
///     tombstone overlay), everything else shares the previous generation's
///     column vectors.
///
/// Query side (any thread): SnapshotAt(table, qts) picks the newest
/// generation with chunk_ts <= qts and derives the residual key set —
/// the next generation's dirty list, or the live pending set when qts runs
/// ahead of the newest generation. Chunks are immutable, so queries never
/// block Publish and vice versa (per-table mutex held only for the
/// pending/generation-list swap).
class ColumnStore {
 public:
  ColumnStore(const Catalog* catalog, const TableStore* rows,
              ColumnStoreOptions options = {});

  ColumnStore(const ColumnStore&) = delete;
  ColumnStore& operator=(const ColumnStore&) = delete;

  const ColumnStoreOptions& options() const { return options_; }

  /// Marks `key` of `table` changed at `commit_ts`. Commit path only;
  /// thread-safe across concurrent group commits. Must happen before the
  /// corresponding watermark store (see class comment). The timestamp lets
  /// an asynchronous Publish at an older watermark take only the entries it
  /// actually covers — keys whose change committed later stay pending, so
  /// the residual top-up never loses them.
  void NoteDirty(TableId table, int64_t key, Timestamp commit_ts);

  /// Publishes one generation per table from the pending entries with
  /// commit_ts <= watermark, reading the merged rows from the row store at
  /// `watermark`; later entries stay pending (the residual path covers
  /// them). Single publisher at a time — the replayer runs it on a
  /// background merge thread, posting a watermark only after that epoch's
  /// watermarks published, so every consumed key's versions up to
  /// `watermark` are fully installed. With publish_min_dirty set, tables
  /// below the backlog threshold are skipped (their pending keys keep
  /// accumulating) unless `force` — used on heartbeats and at shutdown to
  /// drain the backlog.
  void Publish(Timestamp watermark, bool force = false);

  /// Bootstrap seeding: builds generation 0 of every table from the rows
  /// visible at `snapshot_ts` (a checkpoint restore's snapshot timestamp).
  /// No-op for kInvalidTimestamp.
  void SeedFromRows(Timestamp snapshot_ts);

  /// The query-side entry point; see ColumnSnapshot. Returns an invalid
  /// snapshot (caller falls back to the row path) when no retained
  /// generation has chunk_ts <= qts.
  ColumnSnapshot SnapshotAt(TableId table, Timestamp qts) const;

  /// chunk_ts of `table`'s newest generation, or kInvalidTimestamp.
  Timestamp PublishedTs(TableId table) const;

 private:
  struct TableState {
    mutable std::mutex mu;
    /// Unsorted, may hold duplicates. Publish(w) consumes only entries with
    /// commit_ts <= w; later ones ride into the next generation.
    std::vector<std::pair<int64_t, Timestamp>> pending;
    std::deque<std::shared_ptr<const TableGeneration>> gens;  // ascending ts
    size_t live_rows = 0;  // newest generation's live count (threshold input)
  };

  std::shared_ptr<const TableGeneration> RebuildTable(
      TableId table, const TableGeneration* prev,
      std::vector<int64_t> dirty, Timestamp watermark);

  const Catalog* catalog_;
  const TableStore* rows_;
  ColumnStoreOptions options_;
  std::vector<std::unique_ptr<TableState>> tables_;
};

}  // namespace storage
}  // namespace aets

#endif  // AETS_STORAGE_COLUMN_STORE_H_
