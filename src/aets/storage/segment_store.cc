#include "aets/storage/segment_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "aets/common/clock.h"
#include "aets/common/macros.h"
#include "aets/log/codec.h"

namespace fs = std::filesystem;

namespace aets {

namespace {

constexpr char kManifestMagic[8] = {'A', 'E', 'T', 'S', 'S', 'E', 'G', 'M'};
constexpr uint32_t kManifestVersion = 1;
constexpr char kManifestName[] = "MANIFEST";

// Frame body: epoch_id, heartbeat_ts, max_commit_ts, num_txns, num_records,
// first_txn, last_txn (u64 each), payload_crc, payload_len (u32 each).
constexpr size_t kBodyFixedBytes = 7 * sizeof(uint64_t) + 2 * sizeof(uint32_t);
constexpr size_t kFrameHeaderBytes = 2 * sizeof(uint32_t);  // crc, len
// Sanity bound on a declared body length: a corrupted length field must not
// drive a multi-gigabyte allocation before the CRC gets a chance to veto it.
constexpr size_t kMaxBodyBytes = size_t{1} << 30;

template <typename T>
void PutRaw(std::string* out, T v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
T GetRaw(const char* p) {
  T v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

// Writes the whole buffer through write(2), retrying short writes.
Status WriteFully(int fd, const char* data, size_t n) {
  size_t done = 0;
  while (done < n) {
    ssize_t w = ::write(fd, data + done, n - done);
    if (w <= 0) {
      return Status::Internal("segment write failed: " +
                              std::string(std::strerror(errno)));
    }
    done += static_cast<size_t>(w);
  }
  return Status::OK();
}

// Fsyncs the directory itself so a freshly renamed file's directory entry
// is durable (the classic create-then-rename commit protocol).
void FsyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

std::string EncodeFrame(const ShippedEpoch& epoch) {
  const size_t payload_len = epoch.ByteSize();
  std::string body;
  body.reserve(kBodyFixedBytes + payload_len);
  PutRaw<uint64_t>(&body, epoch.epoch_id);
  PutRaw<uint64_t>(&body, static_cast<uint64_t>(epoch.heartbeat_ts));
  PutRaw<uint64_t>(&body, static_cast<uint64_t>(epoch.max_commit_ts));
  PutRaw<uint64_t>(&body, epoch.num_txns);
  PutRaw<uint64_t>(&body, epoch.num_records);
  PutRaw<uint64_t>(&body, static_cast<uint64_t>(epoch.first_txn));
  PutRaw<uint64_t>(&body, static_cast<uint64_t>(epoch.last_txn));
  PutRaw<uint32_t>(&body, epoch.payload_crc);
  PutRaw<uint32_t>(&body, static_cast<uint32_t>(payload_len));
  if (payload_len > 0) body.append(*epoch.payload);

  std::string frame;
  frame.reserve(kFrameHeaderBytes + body.size());
  PutRaw<uint32_t>(&frame, Crc32c(body.data(), body.size()));
  PutRaw<uint32_t>(&frame, static_cast<uint32_t>(body.size()));
  frame.append(body);
  return frame;
}

// Decodes a verified frame body back into a ShippedEpoch. The caller has
// already checked the frame CRC and that `body` spans the declared length.
ShippedEpoch DecodeBody(const char* body, size_t len) {
  ShippedEpoch out;
  const char* p = body;
  out.epoch_id = GetRaw<uint64_t>(p);
  p += 8;
  out.heartbeat_ts = static_cast<Timestamp>(GetRaw<uint64_t>(p));
  p += 8;
  out.max_commit_ts = static_cast<Timestamp>(GetRaw<uint64_t>(p));
  p += 8;
  out.num_txns = GetRaw<uint64_t>(p);
  p += 8;
  out.num_records = GetRaw<uint64_t>(p);
  p += 8;
  out.first_txn = static_cast<TxnId>(GetRaw<uint64_t>(p));
  p += 8;
  out.last_txn = static_cast<TxnId>(GetRaw<uint64_t>(p));
  p += 8;
  out.payload_crc = GetRaw<uint32_t>(p);
  p += 4;
  const uint32_t payload_len = GetRaw<uint32_t>(p);
  p += 4;
  AETS_CHECK(kBodyFixedBytes + payload_len == len);
  out.payload = std::make_shared<const std::string>(p, payload_len);
  return out;
}

// A declared body length the frame machinery will even consider.
bool PlausibleLen(uint64_t len) {
  return len >= kBodyFixedBytes && len <= kMaxBodyBytes;
}

// Parses "seg-<16hex>.log" back to the segment's first epoch id.
bool ParseSegmentName(const std::string& name, EpochId* first_epoch) {
  if (name.size() != 24 || name.rfind("seg-", 0) != 0 ||
      name.compare(20, 4, ".log") != 0) {
    return false;
  }
  uint64_t id = 0;
  for (size_t i = 4; i < 20; ++i) {
    const char c = name[i];
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    id = (id << 4) | static_cast<uint64_t>(digit);
  }
  *first_epoch = id;
  return true;
}

}  // namespace

SegmentStore::SegmentStore(SegmentStoreOptions options)
    : options_(std::move(options)),
      bytes_written_metric_(obs::GetCounter("segment.bytes_written")),
      fetches_metric_(obs::GetCounter("segment.fetches_from_disk")),
      fsyncs_metric_(obs::GetCounter("segment.fsyncs")),
      torn_metric_(obs::GetCounter("segment.torn_frames_truncated")),
      truncations_metric_(obs::GetCounter("segment.truncations")),
      segments_deleted_metric_(obs::GetCounter("segment.segments_deleted")),
      bytes_reclaimed_metric_(obs::GetCounter("segment.bytes_reclaimed")),
      segments_metric_(obs::GetGauge("segment.segments")),
      recovery_ms_metric_(obs::GetGauge("segment.recovery_ms")) {}

SegmentStore::~SegmentStore() {
  std::lock_guard<std::mutex> lk(mu_);
  if (append_fd_ >= 0) {
    if (options_.fsync_policy != FsyncPolicy::kNone) {
      ::fsync(append_fd_);
      ++fsyncs_;
      fsyncs_metric_->Add(1);
    }
    ::close(append_fd_);
  }
  for (auto& seg : segments_) {
    if (seg.read_fd >= 0) ::close(seg.read_fd);
  }
}

std::string SegmentStore::SegmentPath(EpochId first_epoch) const {
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%016llx.log",
                static_cast<unsigned long long>(first_epoch));
  return options_.dir + "/" + name;
}

std::string SegmentStore::ManifestPath() const {
  return options_.dir + "/" + kManifestName;
}

Result<std::unique_ptr<SegmentStore>> SegmentStore::Open(
    SegmentStoreOptions options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("segment store needs a directory");
  }
  std::error_code ec;
  fs::create_directories(options.dir, ec);
  if (ec) {
    return Status::Internal("cannot create segment dir " + options.dir + ": " +
                            ec.message());
  }
  std::unique_ptr<SegmentStore> store(new SegmentStore(std::move(options)));
  std::lock_guard<std::mutex> lk(store->mu_);
  const int64_t start_us = MonotonicMicros();

  const std::string manifest_path = store->ManifestPath();
  if (!fs::exists(manifest_path)) {
    // A fresh directory is fine; segment files without a manifest are not —
    // the manifest is the commit record of what this store ever sealed.
    for (const auto& entry : fs::directory_iterator(store->options_.dir)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("seg-", 0) == 0) {
        return Status::Corruption("segment files present without a manifest: " +
                                  store->options_.dir);
      }
    }
    store->segments_metric_->Set(0);
    store->recovery_ms_metric_->Set(0);
    return store;
  }

  std::ifstream in(manifest_path, std::ios::binary);
  std::string raw((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  constexpr size_t kManifestHeader = sizeof(kManifestMagic) + 2 * sizeof(uint32_t) +
                                     sizeof(uint64_t);
  if (raw.size() < kManifestHeader ||
      std::memcmp(raw.data(), kManifestMagic, sizeof(kManifestMagic)) != 0) {
    return Status::Corruption("bad segment manifest magic");
  }
  const char* p = raw.data() + sizeof(kManifestMagic);
  const uint32_t version = GetRaw<uint32_t>(p);
  if (version != kManifestVersion) {
    return Status::NotSupported("unknown segment manifest version");
  }
  const uint32_t crc = GetRaw<uint32_t>(p + sizeof(uint32_t));
  const char* body = p + 2 * sizeof(uint32_t);
  const size_t body_len = raw.size() - (body - raw.data());
  if (Crc32c(body, body_len) != crc) {
    return Status::Corruption("segment manifest checksum mismatch");
  }
  const uint64_t num_segments = GetRaw<uint64_t>(body);
  if (body_len != sizeof(uint64_t) + num_segments * sizeof(uint64_t)) {
    return Status::Corruption("segment manifest length mismatch");
  }
  for (uint64_t i = 0; i < num_segments; ++i) {
    SegmentMeta meta;
    meta.first_epoch =
        GetRaw<uint64_t>(body + sizeof(uint64_t) + i * sizeof(uint64_t));
    store->segments_.push_back(meta);
  }
  if (store->segments_.empty()) {
    store->segments_metric_->Set(0);
    store->recovery_ms_metric_->Set(0);
    return store;
  }

  // The manifest is the commit record: any seg file below its first entry
  // is a leftover from a truncation that crashed between the manifest
  // rename and the unlinks. Remove it before scanning so the deleted epochs
  // can never resurrect.
  store->RemoveOrphanSegmentsLocked();

  store->first_epoch_ = store->segments_.front().first_epoch;
  EpochId expected = store->first_epoch_;
  for (size_t i = 0; i < store->segments_.size(); ++i) {
    if (store->segments_[i].first_epoch != expected) {
      return Status::Corruption(
          "segment manifest epoch gap: segment declares " +
          std::to_string(store->segments_[i].first_epoch) + ", expected " +
          std::to_string(expected));
    }
    Status s =
        store->ScanSegmentLocked(i, expected, i + 1 == store->segments_.size());
    if (!s.ok()) return s;
    expected = store->first_epoch_ + store->index_.size();
  }
  Status s = store->OpenActiveForAppendLocked();
  if (!s.ok()) return s;

  store->segments_metric_->Set(static_cast<int64_t>(store->segments_.size()));
  store->recovery_ms_metric_->Set((MonotonicMicros() - start_us) / 1000);
  return store;
}

Status SegmentStore::ScanSegmentLocked(size_t seg_idx, EpochId expected,
                                       bool newest) {
  SegmentMeta& meta = segments_[seg_idx];
  const std::string path = SegmentPath(meta.first_epoch);
  if (!fs::exists(path)) {
    // The crash window between the manifest rename and the segment-file
    // creation: legal only for the newest (empty) segment.
    if (newest) return Status::OK();
    return Status::Corruption("sealed segment missing: " + path);
  }
  std::ifstream in(path, std::ios::binary);
  std::string raw((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  size_t offset = 0;
  std::string torn_reason;
  while (offset < raw.size()) {
    if (offset + kFrameHeaderBytes > raw.size()) {
      torn_reason = "partial frame header";
      break;
    }
    const uint32_t crc = GetRaw<uint32_t>(raw.data() + offset);
    const uint64_t len = GetRaw<uint32_t>(raw.data() + offset + 4);
    if (!PlausibleLen(len) || offset + kFrameHeaderBytes + len > raw.size()) {
      torn_reason = "partial or implausible frame body";
      break;
    }
    const char* frame_body = raw.data() + offset + kFrameHeaderBytes;
    if (Crc32c(frame_body, len) != crc) {
      torn_reason = "frame checksum mismatch";
      break;
    }
    const uint64_t epoch_id = GetRaw<uint64_t>(frame_body);
    if (epoch_id != expected) {
      // A valid frame carrying the wrong id is not a torn write — the store
      // never produces it, so the file has been tampered with or mixed up.
      return Status::Corruption(
          "segment " + path + " frame carries epoch " +
          std::to_string(epoch_id) + ", expected " + std::to_string(expected));
    }
    index_.push_back(FrameLoc{
        static_cast<uint32_t>(seg_idx), offset,
        static_cast<uint32_t>(kFrameHeaderBytes + len)});
    ++meta.frames;
    offset += kFrameHeaderBytes + len;
    ++expected;
  }
  if (offset < raw.size()) {
    if (!newest) {
      // Sealed segments were fsynced whole; damage here is real corruption,
      // and truncating it would silently rewrite durable history.
      return Status::Corruption("corrupt frame in sealed segment " + path +
                                " (" + torn_reason + ")");
    }
    std::error_code ec;
    fs::resize_file(path, offset, ec);
    if (ec) {
      return Status::Internal("cannot truncate torn tail of " + path + ": " +
                              ec.message());
    }
    ++torn_truncated_;
    torn_metric_->Add(1);
  }
  meta.bytes = offset;
  disk_bytes_ += offset;
  return Status::OK();
}

void SegmentStore::RemoveOrphanSegmentsLocked() {
  AETS_CHECK(!segments_.empty());
  const EpochId manifest_first = segments_.front().first_epoch;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
    EpochId first = 0;
    if (!ParseSegmentName(entry.path().filename().string(), &first)) continue;
    if (first < manifest_first) {
      std::error_code rm_ec;
      fs::remove(entry.path(), rm_ec);
    }
  }
}

Status SegmentStore::WriteManifestLocked(size_t drop_prefix, int64_t new_first) {
  AETS_CHECK(drop_prefix <= segments_.size());
  std::string body;
  const uint64_t count =
      segments_.size() - drop_prefix + (new_first >= 0 ? 1 : 0);
  PutRaw<uint64_t>(&body, count);
  for (size_t i = drop_prefix; i < segments_.size(); ++i) {
    PutRaw<uint64_t>(&body, segments_[i].first_epoch);
  }
  if (new_first >= 0) PutRaw<uint64_t>(&body, static_cast<uint64_t>(new_first));

  std::string buf;
  buf.append(kManifestMagic, sizeof(kManifestMagic));
  PutRaw<uint32_t>(&buf, kManifestVersion);
  PutRaw<uint32_t>(&buf, Crc32c(body.data(), body.size()));
  buf.append(body);

  if (options_.write_fault_hook) {
    Status s = options_.write_fault_hook(buf.size());
    if (!s.ok()) return s;
  }
  const std::string tmp = ManifestPath() + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal("cannot open manifest tmp: " + tmp);
  }
  Status s = WriteFully(fd, buf.data(), buf.size());
  if (s.ok() && ::fsync(fd) != 0) {
    s = Status::Internal("manifest fsync failed");
  }
  ::close(fd);
  if (!s.ok()) {
    std::remove(tmp.c_str());
    return s;
  }
  ++fsyncs_;
  fsyncs_metric_->Add(1);
  if (std::rename(tmp.c_str(), ManifestPath().c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("manifest rename failed");
  }
  FsyncDir(options_.dir);
  return Status::OK();
}

Status SegmentStore::OpenActiveForAppendLocked() {
  AETS_CHECK(!segments_.empty());
  if (append_fd_ >= 0) return Status::OK();
  const std::string path = SegmentPath(segments_.back().first_epoch);
  append_fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (append_fd_ < 0) {
    return Status::Internal("cannot open segment for append: " + path);
  }
  return Status::OK();
}

Status SegmentStore::FsyncActiveLocked() {
  if (append_fd_ < 0) return Status::OK();
  if (::fsync(append_fd_) != 0) {
    return Status::Internal("segment fsync failed");
  }
  ++fsyncs_;
  fsyncs_metric_->Add(1);
  return Status::OK();
}

Status SegmentStore::RolloverLocked(EpochId first_epoch) {
  // Order matters for failure atomicity: the manifest commits the new
  // segment before the old descriptor closes, so a failed rewrite (disk
  // full) leaves the old segment active and appendable — the store degrades
  // to oversized segments instead of wedging.
  if (options_.fsync_policy != FsyncPolicy::kNone) {
    Status s = FsyncActiveLocked();
    if (!s.ok()) return s;
  }
  Status s = WriteManifestLocked(0, static_cast<int64_t>(first_epoch));
  if (!s.ok()) return s;
  ::close(append_fd_);
  append_fd_ = -1;
  SegmentMeta meta;
  meta.first_epoch = first_epoch;
  segments_.push_back(meta);
  segments_metric_->Set(static_cast<int64_t>(segments_.size()));
  return OpenActiveForAppendLocked();
}

Status SegmentStore::Append(const ShippedEpoch& epoch) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!segments_.empty() && epoch.epoch_id != first_epoch_ + index_.size()) {
    return Status::InvalidArgument(
        "segment append out of order: got epoch " +
        std::to_string(epoch.epoch_id) + ", next is " +
        std::to_string(first_epoch_ + index_.size()));
  }
  const std::string frame = EncodeFrame(epoch);
  if (options_.write_fault_hook) {
    Status s = options_.write_fault_hook(frame.size());
    if (!s.ok()) return s;
  }
  if (segments_.empty()) {
    Status s = WriteManifestLocked(0, static_cast<int64_t>(epoch.epoch_id));
    if (!s.ok()) return s;
    // Only now does the store's id range start here: a failed first append
    // must not leave first_epoch() pointing at an id that was never written
    // (FloorEpochId would misread it as a truncation floor).
    first_epoch_ = epoch.epoch_id;
    SegmentMeta meta;
    meta.first_epoch = epoch.epoch_id;
    segments_.push_back(meta);
    segments_metric_->Set(1);
    Status o = OpenActiveForAppendLocked();
    if (!o.ok()) return o;
  } else if (segments_.back().bytes > 0 &&
             segments_.back().bytes + frame.size() >
                 options_.segment_max_bytes) {
    Status s = RolloverLocked(epoch.epoch_id);
    if (!s.ok()) return s;
  } else {
    Status s = OpenActiveForAppendLocked();
    if (!s.ok()) return s;
  }

  SegmentMeta& meta = segments_.back();
  Status s = WriteFully(append_fd_, frame.data(), frame.size());
  if (!s.ok()) {
    // Drop any partial frame so the durable prefix stays scannable.
    if (::ftruncate(append_fd_, static_cast<off_t>(meta.bytes)) != 0) {
      // The truncate failing too leaves a torn tail; Open() repairs it.
    }
    return s;
  }
  index_.push_back(FrameLoc{static_cast<uint32_t>(segments_.size() - 1),
                            meta.bytes,
                            static_cast<uint32_t>(frame.size())});
  meta.bytes += frame.size();
  ++meta.frames;
  bytes_written_ += frame.size();
  disk_bytes_ += frame.size();
  bytes_written_metric_->Add(frame.size());
  if (options_.fsync_policy == FsyncPolicy::kAlways) {
    return FsyncActiveLocked();
  }
  return Status::OK();
}

int SegmentStore::ReadFdLocked(size_t seg_idx) {
  SegmentMeta& meta = segments_[seg_idx];
  if (meta.read_fd < 0) {
    meta.read_fd =
        ::open(SegmentPath(meta.first_epoch).c_str(), O_RDONLY);
  }
  return meta.read_fd;
}

std::optional<ShippedEpoch> SegmentStore::Read(EpochId id) {
  std::lock_guard<std::mutex> lk(mu_);
  if (index_.empty() || id < first_epoch_ ||
      id >= first_epoch_ + index_.size()) {
    return std::nullopt;
  }
  const FrameLoc& loc = index_[id - first_epoch_];
  int fd = ReadFdLocked(loc.segment);
  if (fd < 0) return std::nullopt;
  std::string buf(loc.size, '\0');
  ssize_t r = ::pread(fd, buf.data(), buf.size(),
                      static_cast<off_t>(loc.offset));
  if (r != static_cast<ssize_t>(buf.size())) return std::nullopt;
  const uint32_t crc = GetRaw<uint32_t>(buf.data());
  const uint32_t len = GetRaw<uint32_t>(buf.data() + 4);
  if (kFrameHeaderBytes + len != buf.size() ||
      Crc32c(buf.data() + kFrameHeaderBytes, len) != crc) {
    // Bit rot after the append-time scan: indistinguishable from an evicted
    // epoch for the caller, which escalates to re-bootstrap.
    return std::nullopt;
  }
  ShippedEpoch epoch = DecodeBody(buf.data() + kFrameHeaderBytes, len);
  if (epoch.epoch_id != id) return std::nullopt;
  fetches_metric_->Add(1);
  return epoch;
}

Status SegmentStore::Sync() {
  std::lock_guard<std::mutex> lk(mu_);
  return FsyncActiveLocked();
}

Status SegmentStore::TruncateBelow(EpochId floor) {
  std::lock_guard<std::mutex> lk(mu_);
  // Segment i is wholly below the floor iff its successor starts at or
  // below it. The newest segment never qualifies: it is the append head,
  // and the manifest must keep listing at least one segment.
  size_t drop = 0;
  while (drop + 1 < segments_.size() &&
         segments_[drop + 1].first_epoch <= floor) {
    ++drop;
  }
  if (drop == 0) return Status::OK();

  if (options_.truncate_fault_hook) {
    Status s = options_.truncate_fault_hook(0);
    if (!s.ok()) return s;
  }
  // Manifest first: once the rename lands, the dropped segments are no
  // longer part of the store no matter where a crash interrupts the
  // unlinks below — reopen treats the leftover files as orphans.
  Status s = WriteManifestLocked(drop, -1);
  if (!s.ok()) return s;

  std::vector<std::pair<std::string, uint64_t>> victims;
  for (size_t i = 0; i < drop; ++i) {
    if (segments_[i].read_fd >= 0) ::close(segments_[i].read_fd);
    victims.emplace_back(SegmentPath(segments_[i].first_epoch),
                         segments_[i].bytes);
  }
  const EpochId new_first = segments_[drop].first_epoch;
  segments_.erase(segments_.begin(), segments_.begin() + drop);
  index_.erase(index_.begin(),
               index_.begin() + static_cast<size_t>(new_first - first_epoch_));
  for (auto& loc : index_) loc.segment -= static_cast<uint32_t>(drop);
  first_epoch_ = new_first;
  ++truncations_;
  truncations_metric_->Add(1);
  segments_metric_->Set(static_cast<int64_t>(segments_.size()));

  for (size_t i = 0; i < victims.size(); ++i) {
    if (options_.truncate_fault_hook) {
      Status hs = options_.truncate_fault_hook(static_cast<int>(i) + 1);
      if (!hs.ok()) return hs;
    }
    std::error_code ec;
    if (fs::remove(victims[i].first, ec) && !ec) {
      ++segments_deleted_;
      segments_deleted_metric_->Add(1);
      bytes_reclaimed_ += victims[i].second;
      bytes_reclaimed_metric_->Add(victims[i].second);
      disk_bytes_ -= victims[i].second;
    }
  }
  return Status::OK();
}

EpochId SegmentStore::first_epoch() const {
  std::lock_guard<std::mutex> lk(mu_);
  return first_epoch_;
}

EpochId SegmentStore::next_epoch() const {
  std::lock_guard<std::mutex> lk(mu_);
  return first_epoch_ + index_.size();
}

bool SegmentStore::empty() const {
  std::lock_guard<std::mutex> lk(mu_);
  return index_.empty();
}

size_t SegmentStore::num_segments() const {
  std::lock_guard<std::mutex> lk(mu_);
  return segments_.size();
}

uint64_t SegmentStore::bytes_written() const {
  std::lock_guard<std::mutex> lk(mu_);
  return bytes_written_;
}

uint64_t SegmentStore::fsyncs() const {
  std::lock_guard<std::mutex> lk(mu_);
  return fsyncs_;
}

uint64_t SegmentStore::torn_frames_truncated() const {
  std::lock_guard<std::mutex> lk(mu_);
  return torn_truncated_;
}

uint64_t SegmentStore::disk_bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return disk_bytes_;
}

bool SegmentStore::over_budget() const {
  std::lock_guard<std::mutex> lk(mu_);
  return options_.disk_budget_bytes > 0 &&
         disk_bytes_ > options_.disk_budget_bytes;
}

uint64_t SegmentStore::truncations() const {
  std::lock_guard<std::mutex> lk(mu_);
  return truncations_;
}

uint64_t SegmentStore::segments_deleted() const {
  std::lock_guard<std::mutex> lk(mu_);
  return segments_deleted_;
}

uint64_t SegmentStore::bytes_reclaimed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return bytes_reclaimed_;
}

}  // namespace aets
