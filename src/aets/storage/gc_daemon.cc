#include "aets/storage/gc_daemon.h"

#include <chrono>

#include "aets/common/macros.h"
#include "aets/obs/metrics.h"

namespace aets {

GcDaemon::GcDaemon(TableStore* store, std::function<Timestamp()> watermark_source,
                   Timestamp retention, int64_t interval_us)
    : store_(store),
      watermark_source_(std::move(watermark_source)),
      retention_(retention),
      interval_us_(interval_us) {
  AETS_CHECK(store != nullptr && watermark_source_ != nullptr);
}

GcDaemon::~GcDaemon() { Stop(); }

void GcDaemon::Start() {
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { Loop(); });
}

void GcDaemon::Stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
}

size_t GcDaemon::RunOnce() {
  static obs::Counter* passes_metric = obs::GetCounter("gc.passes");
  static obs::Counter* reclaimed_metric =
      obs::GetCounter("gc.versions_reclaimed");
  static Histogram* pause_us_metric = obs::GetHistogram("gc.pause_us");
  Timestamp watermark = watermark_source_();
  if (watermark <= retention_) return 0;
  Timestamp horizon = watermark - retention_;
  if (pre_pass_hook_) pre_pass_hook_(horizon);
  int64_t start_us = MonotonicMicros();
  size_t reclaimed = store_->GarbageCollect(horizon);
  pause_us_metric->Record(MonotonicMicros() - start_us);
  passes_metric->Add(1);
  reclaimed_metric->Add(reclaimed);
  total_reclaimed_.fetch_add(reclaimed, std::memory_order_relaxed);
  passes_.fetch_add(1, std::memory_order_relaxed);
  if (post_pass_hook_) post_pass_hook_(horizon, reclaimed);
  return reclaimed;
}

void GcDaemon::Loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    RunOnce();
    std::this_thread::sleep_for(std::chrono::microseconds(interval_us_));
  }
}

}  // namespace aets
