#include "aets/storage/table_store.h"

#include "aets/common/macros.h"

namespace aets {

TableStore::TableStore(const Catalog& catalog) {
  size_t n = catalog.num_tables();
  tables_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    tables_.push_back(std::make_unique<Memtable>(static_cast<TableId>(i)));
  }
}

Memtable* TableStore::GetTable(TableId id) {
  AETS_CHECK_MSG(id < tables_.size(), "unknown table id");
  return tables_[id].get();
}

const Memtable* TableStore::GetTable(TableId id) const {
  AETS_CHECK_MSG(id < tables_.size(), "unknown table id");
  return tables_[id].get();
}

uint64_t TableStore::DigestAt(Timestamp ts) const {
  uint64_t digest = 0;
  for (const auto& t : tables_) {
    digest ^= Mix(t->table_id(), t->DigestAt(ts));
  }
  return digest;
}

size_t TableStore::VisibleRowCount(Timestamp ts) const {
  size_t n = 0;
  for (const auto& t : tables_) n += t->VisibleRowCount(ts);
  return n;
}

size_t TableStore::GarbageCollect(Timestamp watermark) {
  size_t reclaimed = 0;
  for (const auto& t : tables_) reclaimed += t->GarbageCollect(watermark);
  return reclaimed;
}

uint64_t TableStore::Mix(TableId id, uint64_t digest) {
  // Tag each table's digest with its id so identical contents in different
  // tables don't cancel under XOR.
  uint64_t z = digest ^ (static_cast<uint64_t>(id + 1) * 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace aets
