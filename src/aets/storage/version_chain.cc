#include "aets/storage/version_chain.h"

#include "aets/common/macros.h"

namespace aets {

void MemNode::AppendVersion(VersionCell cell) {
  SpinGuard guard(latch_);
  AETS_CHECK_MSG(versions_.empty() || versions_.back().commit_ts <= cell.commit_ts,
                 "version chain must be appended in commit-ts order");
  versions_.push_back(std::move(cell));
}

std::optional<Row> MemNode::ReadVisible(Timestamp ts) const {
  SpinGuard guard(latch_);
  Row row;
  bool exists = false;
  for (const auto& v : versions_) {
    if (v.commit_ts > ts) break;
    if (v.is_delete) {
      row.clear();
      exists = false;
      continue;
    }
    v.delta.ApplyTo(&row);
    exists = true;
  }
  if (!exists) return std::nullopt;
  return row;
}

TxnId MemNode::LastWriterTxn() const {
  SpinGuard guard(latch_);
  return versions_.empty() ? kInvalidTxnId : versions_.back().txn_id;
}

Timestamp MemNode::LastCommitTs() const {
  SpinGuard guard(latch_);
  return versions_.empty() ? kInvalidTimestamp : versions_.back().commit_ts;
}

size_t MemNode::NumVersions() const {
  SpinGuard guard(latch_);
  return versions_.size();
}

size_t MemNode::TruncateBefore(Timestamp watermark) {
  SpinGuard guard(latch_);
  // Find the newest version with commit_ts <= watermark: the base every
  // snapshot >= watermark starts from.
  size_t base = versions_.size();
  for (size_t i = 0; i < versions_.size(); ++i) {
    if (versions_[i].commit_ts <= watermark) {
      base = i;
    } else {
      break;
    }
  }
  if (base == versions_.size() || base == 0) return 0;

  // Fold the delta prefix [0, base] into one full-image base version, so a
  // read at any ts >= versions_[base].commit_ts reconstructs identically.
  Row folded;
  bool exists = false;
  for (size_t i = 0; i <= base; ++i) {
    if (versions_[i].is_delete) {
      folded.clear();
      exists = false;
      continue;
    }
    versions_[i].delta.ApplyTo(&folded);
    exists = true;
  }
  VersionCell base_cell;
  base_cell.commit_ts = versions_[base].commit_ts;
  base_cell.txn_id = versions_[base].txn_id;
  base_cell.is_delete = !exists;
  base_cell.delta = PackedDelta::FromRow(folded);
  size_t reclaimed = base;  // versions [0, base) disappear
  versions_.erase(versions_.begin(), versions_.begin() + static_cast<ptrdiff_t>(base));
  versions_.front() = std::move(base_cell);
  return reclaimed;
}

}  // namespace aets
