#ifndef AETS_STORAGE_FLAT_ROW_H_
#define AETS_STORAGE_FLAT_ROW_H_

#include <algorithm>
#include <utility>
#include <vector>

#include "aets/common/macros.h"
#include "aets/storage/value.h"

namespace aets {

/// A materialized row at some snapshot: (column id, value) pairs kept sorted
/// by column id in one flat vector. Rows have a handful of columns, so
/// binary-searched upserts into contiguous storage beat the node-per-entry
/// std::map this replaces — one allocation (amortized) per row instead of
/// one per column, and ordered iteration falls out for free (the digest and
/// checkpoint serialization depend on column order).
class FlatRow {
 public:
  using value_type = std::pair<ColumnId, Value>;
  using const_iterator = std::vector<value_type>::const_iterator;

  FlatRow() = default;

  /// Upserts: replaces the value if the column exists, inserts in sorted
  /// position otherwise.
  void Set(ColumnId col, Value value) {
    auto it = LowerBound(col);
    if (it != cols_.end() && it->first == col) {
      it->second = std::move(value);
    } else {
      cols_.insert(it, value_type{col, std::move(value)});
    }
  }

  /// Binary search; nullptr when the column is absent.
  const Value* Find(ColumnId col) const {
    auto it = LowerBound(col);
    if (it == cols_.end() || it->first != col) return nullptr;
    return &it->second;
  }

  /// map-compatible lookup: iterator to the (col, value) pair or end().
  const_iterator find(ColumnId col) const {
    auto it = LowerBound(col);
    if (it == cols_.end() || it->first != col) return cols_.end();
    return it;
  }

  /// map-compatible checked access; the column must exist.
  const Value& at(ColumnId col) const {
    const Value* v = Find(col);
    AETS_CHECK_MSG(v != nullptr, "FlatRow::at: no such column");
    return *v;
  }

  const_iterator begin() const { return cols_.begin(); }
  const_iterator end() const { return cols_.end(); }
  size_t size() const { return cols_.size(); }
  bool empty() const { return cols_.empty(); }
  void clear() { cols_.clear(); }
  void reserve(size_t n) { cols_.reserve(n); }

  bool operator==(const FlatRow& other) const { return cols_ == other.cols_; }
  bool operator!=(const FlatRow& other) const { return !(*this == other); }

 private:
  std::vector<value_type>::iterator LowerBound(ColumnId col) {
    return std::lower_bound(
        cols_.begin(), cols_.end(), col,
        [](const value_type& e, ColumnId c) { return e.first < c; });
  }
  const_iterator LowerBound(ColumnId col) const {
    return std::lower_bound(
        cols_.begin(), cols_.end(), col,
        [](const value_type& e, ColumnId c) { return e.first < c; });
  }

  std::vector<value_type> cols_;  // ascending column id
};

}  // namespace aets

#endif  // AETS_STORAGE_FLAT_ROW_H_
