#ifndef AETS_STORAGE_BTREE_H_
#define AETS_STORAGE_BTREE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <utility>
#include <vector>

#include "aets/common/macros.h"

namespace aets {

/// In-memory B+Tree mapping int64 keys to heap-allocated values with stable
/// addresses (the Memtable's index over MemNodes; the paper's backup storage
/// engine is "a B+Tree as the in-memory storage engine").
///
/// Concurrency: tree-level reader/writer latch — lookups and scans run
/// concurrently under a shared latch; inserts take the exclusive latch only
/// when the key is absent. Value objects are never moved after insertion, so
/// returned pointers remain valid for the tree's lifetime (erase only unlinks
/// the entry; the value is reclaimed with the tree). Erase removes the key
/// from its leaf without rebalancing (lazy deletion): fine for the workloads
/// here, where deletes are rare tombstones.
template <typename V>
class BPlusTree {
 public:
  using Key = int64_t;
  static constexpr int kFanout = 64;  // max keys per node

  BPlusTree() : root_(NewLeaf()) {}
  ~BPlusTree() { FreeNode(root_); }

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  /// Finds the value for `key`, or nullptr.
  V* Find(Key key) const {
    std::shared_lock<std::shared_mutex> lk(latch_);
    return FindLocked(key);
  }

  /// Finds or default-constructs the value for `key`. Sets `*created` when a
  /// new entry was inserted.
  template <typename... Args>
  V* GetOrCreate(Key key, bool* created, Args&&... args) {
    {
      std::shared_lock<std::shared_mutex> lk(latch_);
      if (V* v = FindLocked(key)) {
        if (created) *created = false;
        return v;
      }
    }
    std::unique_lock<std::shared_mutex> lk(latch_);
    // Re-check: another writer may have inserted between latches.
    if (V* v = FindLocked(key)) {
      if (created) *created = false;
      return v;
    }
    if (created) *created = true;
    return Insert(key, std::make_unique<V>(std::forward<Args>(args)...));
  }

  /// Removes `key`. Returns true if present. The value's storage stays alive
  /// in the erased list until the tree is destroyed.
  bool Erase(Key key) {
    std::unique_lock<std::shared_mutex> lk(latch_);
    Node* node = root_;
    while (!node->is_leaf) {
      node = Child(node, key);
    }
    Leaf* leaf = static_cast<Leaf*>(node);
    auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
    if (it == leaf->keys.end() || *it != key) return false;
    size_t idx = static_cast<size_t>(it - leaf->keys.begin());
    erased_.push_back(std::move(leaf->values[idx]));
    leaf->keys.erase(it);
    leaf->values.erase(leaf->values.begin() + static_cast<ptrdiff_t>(idx));
    --size_;
    return true;
  }

  /// Visits entries with keys in [lo, hi], in ascending key order. The
  /// callback returns false to stop early. The visitor is a template so the
  /// per-row call inlines (no std::function indirect call on the scan hot
  /// path); the non-template overload below keeps type-erased callers
  /// working unchanged.
  template <typename Visitor>
  void Scan(Key lo, Key hi, Visitor&& visit) const {
    ScanImpl(lo, hi, visit);
  }
  void Scan(Key lo, Key hi,
            const std::function<bool(Key, V*)>& visit) const {
    ScanImpl(lo, hi, visit);
  }

  size_t size() const {
    std::shared_lock<std::shared_mutex> lk(latch_);
    return size_;
  }

  /// Tree height (1 = just a leaf). For tests and diagnostics.
  int Height() const {
    std::shared_lock<std::shared_mutex> lk(latch_);
    int h = 1;
    const Node* node = root_;
    while (!node->is_leaf) {
      node = static_cast<const Internal*>(node)->children.front();
      ++h;
    }
    return h;
  }

  /// Validates B+Tree structural invariants (sorted keys, fanout bounds,
  /// leaf chain order). Aborts on violation; used by property tests.
  void CheckInvariants() const {
    std::shared_lock<std::shared_mutex> lk(latch_);
    int64_t prev = INT64_MIN;
    CheckNode(root_, /*is_root=*/true, &prev);
  }

 private:
  struct Node {
    bool is_leaf;
    explicit Node(bool leaf) : is_leaf(leaf) {}
  };
  struct Leaf : Node {
    Leaf() : Node(true) {}
    std::vector<Key> keys;
    std::vector<std::unique_ptr<V>> values;
    Leaf* next = nullptr;
  };
  struct Internal : Node {
    Internal() : Node(false) {}
    // children.size() == keys.size() + 1; subtree i holds keys < keys[i],
    // subtree i+1 holds keys >= keys[i].
    std::vector<Key> keys;
    std::vector<Node*> children;
  };

  static Leaf* NewLeaf() { return new Leaf(); }

  static void FreeNode(Node* node) {
    if (!node->is_leaf) {
      for (Node* c : static_cast<Internal*>(node)->children) FreeNode(c);
    }
    if (node->is_leaf) {
      delete static_cast<Leaf*>(node);
    } else {
      delete static_cast<Internal*>(node);
    }
  }

  static Node* Child(Node* node, Key key) {
    Internal* in = static_cast<Internal*>(node);
    auto it = std::upper_bound(in->keys.begin(), in->keys.end(), key);
    return in->children[static_cast<size_t>(it - in->keys.begin())];
  }
  static const Node* Child(const Node* node, Key key) {
    const Internal* in = static_cast<const Internal*>(node);
    auto it = std::upper_bound(in->keys.begin(), in->keys.end(), key);
    return in->children[static_cast<size_t>(it - in->keys.begin())];
  }

  template <typename Visitor>
  void ScanImpl(Key lo, Key hi, Visitor&& visit) const {
    std::shared_lock<std::shared_mutex> lk(latch_);
    const Node* node = root_;
    while (!node->is_leaf) node = Child(node, lo);
    const Leaf* leaf = static_cast<const Leaf*>(node);
    auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), lo);
    size_t idx = static_cast<size_t>(it - leaf->keys.begin());
    while (leaf != nullptr) {
      for (; idx < leaf->keys.size(); ++idx) {
        if (leaf->keys[idx] > hi) return;
        if (!visit(leaf->keys[idx], leaf->values[idx].get())) return;
      }
      leaf = leaf->next;
      idx = 0;
    }
  }

  V* FindLocked(Key key) const {
    const Node* node = root_;
    while (!node->is_leaf) node = Child(node, key);
    const Leaf* leaf = static_cast<const Leaf*>(node);
    auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
    if (it == leaf->keys.end() || *it != key) return nullptr;
    return leaf->values[static_cast<size_t>(it - leaf->keys.begin())].get();
  }

  struct SplitResult {
    Key separator;
    Node* right;
  };

  /// Inserts into the subtree; returns a split descriptor if the child split.
  std::optional<SplitResult> InsertRec(Node* node, Key key,
                                       std::unique_ptr<V>* value, V** out) {
    if (node->is_leaf) {
      Leaf* leaf = static_cast<Leaf*>(node);
      auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
      size_t idx = static_cast<size_t>(it - leaf->keys.begin());
      AETS_CHECK_MSG(it == leaf->keys.end() || *it != key,
                     "duplicate insert must be caught by caller");
      leaf->keys.insert(it, key);
      leaf->values.insert(leaf->values.begin() + static_cast<ptrdiff_t>(idx),
                          std::move(*value));
      *out = leaf->values[idx].get();
      if (leaf->keys.size() <= kFanout) return std::nullopt;
      // Split the leaf in half; right half keeps the upper keys.
      Leaf* right = NewLeaf();
      size_t mid = leaf->keys.size() / 2;
      right->keys.assign(leaf->keys.begin() + static_cast<ptrdiff_t>(mid),
                         leaf->keys.end());
      right->values.reserve(leaf->values.size() - mid);
      for (size_t i = mid; i < leaf->values.size(); ++i) {
        right->values.push_back(std::move(leaf->values[i]));
      }
      leaf->keys.resize(mid);
      leaf->values.resize(mid);
      right->next = leaf->next;
      leaf->next = right;
      return SplitResult{right->keys.front(), right};
    }
    Internal* in = static_cast<Internal*>(node);
    auto it = std::upper_bound(in->keys.begin(), in->keys.end(), key);
    size_t child_idx = static_cast<size_t>(it - in->keys.begin());
    auto split = InsertRec(in->children[child_idx], key, value, out);
    if (!split) return std::nullopt;
    in->keys.insert(in->keys.begin() + static_cast<ptrdiff_t>(child_idx),
                    split->separator);
    in->children.insert(
        in->children.begin() + static_cast<ptrdiff_t>(child_idx) + 1,
        split->right);
    if (in->keys.size() <= kFanout) return std::nullopt;
    // Split the internal node; the middle key moves up.
    Internal* right = new Internal();
    size_t mid = in->keys.size() / 2;
    Key up = in->keys[mid];
    right->keys.assign(in->keys.begin() + static_cast<ptrdiff_t>(mid) + 1,
                       in->keys.end());
    right->children.assign(
        in->children.begin() + static_cast<ptrdiff_t>(mid) + 1,
        in->children.end());
    in->keys.resize(mid);
    in->children.resize(mid + 1);
    return SplitResult{up, right};
  }

  V* Insert(Key key, std::unique_ptr<V> value) {
    V* out = nullptr;
    auto split = InsertRec(root_, key, &value, &out);
    if (split) {
      Internal* new_root = new Internal();
      new_root->keys.push_back(split->separator);
      new_root->children.push_back(root_);
      new_root->children.push_back(split->right);
      root_ = new_root;
    }
    ++size_;
    return out;
  }

  void CheckNode(const Node* node, bool is_root, int64_t* prev_leaf_key) const {
    if (node->is_leaf) {
      const Leaf* leaf = static_cast<const Leaf*>(node);
      AETS_CHECK(leaf->keys.size() == leaf->values.size());
      AETS_CHECK(leaf->keys.size() <= kFanout);
      for (Key k : leaf->keys) {
        AETS_CHECK_MSG(k > *prev_leaf_key || (*prev_leaf_key == INT64_MIN),
                       "leaf keys out of order");
        AETS_CHECK(k >= *prev_leaf_key);
        *prev_leaf_key = k;
      }
      return;
    }
    const Internal* in = static_cast<const Internal*>(node);
    AETS_CHECK(in->children.size() == in->keys.size() + 1);
    AETS_CHECK(in->keys.size() <= kFanout);
    AETS_CHECK(is_root || !in->keys.empty());
    AETS_CHECK(std::is_sorted(in->keys.begin(), in->keys.end()));
    for (const Node* c : in->children) CheckNode(c, false, prev_leaf_key);
  }

  mutable std::shared_mutex latch_;
  Node* root_;
  size_t size_ = 0;
  std::vector<std::unique_ptr<V>> erased_;
};

}  // namespace aets

#endif  // AETS_STORAGE_BTREE_H_
