#include "aets/storage/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "aets/common/macros.h"
#include "aets/log/codec.h"
#include "aets/obs/metrics.h"

namespace aets {

namespace {

constexpr char kMagic[8] = {'A', 'E', 'T', 'S', 'C', 'K', 'P', 'T'};
// v2 adds a whole-body CRC32C. The per-record frame checksums only protect
// individual records: v1 could not tell a truncated tail inside a frame
// boundary from corruption that rewrites a frame consistently, and restored
// whatever still parsed. v2 rejects any body damage up front.
constexpr uint32_t kVersion = 2;

struct Header {
  char magic[8];
  uint32_t version;
  uint32_t crc;  // over the fields below
  uint64_t snapshot_ts;
  uint64_t next_epoch_id;
  uint64_t num_rows;
  uint64_t num_tables;
  uint32_t body_crc;  // v2+: CRC32C over every byte after the header
  uint32_t reserved;  // keeps the struct 8-byte aligned; always 0
};

// The v1 header: identical prefix, no body checksum. Old images restore
// through the per-record checksums alone.
struct HeaderV1 {
  char magic[8];
  uint32_t version;
  uint32_t crc;
  uint64_t snapshot_ts;
  uint64_t next_epoch_id;
  uint64_t num_rows;
  uint64_t num_tables;
};

template <typename H>
uint32_t HeaderCrc(const H& h) {
  // CRC over the payload fields (everything after the crc member).
  return Crc32c(&h.snapshot_ts, sizeof(H) - offsetof(H, snapshot_ts));
}

}  // namespace

Status Checkpointer::Write(const TableStore& store, Timestamp snapshot_ts,
                           EpochId next_epoch_id, const std::string& path) {
  if (snapshot_ts == kInvalidTimestamp) {
    return Status::InvalidArgument("checkpoint needs a valid snapshot ts");
  }
  static obs::Counter* writes_metric = obs::GetCounter("checkpoint.writes");
  static obs::Counter* bytes_metric =
      obs::GetCounter("checkpoint.bytes_written");
  static Histogram* write_us_metric =
      obs::GetHistogram("checkpoint.write_us");
  int64_t start_us = MonotonicMicros();
  // Encode all visible rows first (also gives the row count for the header).
  std::string body;
  uint64_t num_rows = 0;
  for (size_t t = 0; t < store.num_tables(); ++t) {
    const Memtable* table = store.GetTable(static_cast<TableId>(t));
    table->ScanVisible(snapshot_ts, [&](int64_t key, const Row& row) {
      std::vector<ColumnValue> values;
      values.reserve(row.size());
      for (const auto& [col, value] : row) {
        values.push_back(ColumnValue{col, value});
      }
      LogCodec::Encode(
          LogRecord::Dml(LogRecordType::kInsert, /*lsn=*/num_rows + 1,
                         /*txn=*/1, snapshot_ts, static_cast<TableId>(t), key,
                         std::move(values)),
          &body);
      ++num_rows;
      return true;
    });
  }

  Header header;
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kVersion;
  header.snapshot_ts = snapshot_ts;
  header.next_epoch_id = next_epoch_id;
  header.num_rows = num_rows;
  header.num_tables = store.num_tables();
  header.body_crc = Crc32c(body.data(), body.size());
  header.reserved = 0;
  header.crc = HeaderCrc(header);

  // Atomic rename commit: a reader (or a recovery scan after a crash) either
  // sees the complete previous image or the complete new one, never a
  // half-written file under the final name.
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::Internal("cannot open checkpoint file: " + tmp);
  bool ok = true;
  const char* chunks[2] = {reinterpret_cast<const char*>(&header),
                           body.data()};
  size_t sizes[2] = {sizeof(header), body.size()};
  for (int c = 0; c < 2 && ok; ++c) {
    size_t done = 0;
    while (done < sizes[c]) {
      ssize_t w = ::write(fd, chunks[c] + done, sizes[c] - done);
      if (w <= 0) {
        ok = false;
        break;
      }
      done += static_cast<size_t>(w);
    }
  }
  if (ok && ::fsync(fd) != 0) ok = false;
  ::close(fd);
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::Internal("checkpoint write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("checkpoint rename failed: " + path);
  }
  // Make the directory entry durable too (rename is only atomic, not
  // durable, until the directory itself reaches the disk).
  const std::string dir =
      std::filesystem::path(path).parent_path().string();
  int dfd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  writes_metric->Add(1);
  bytes_metric->Add(sizeof(header) + body.size());
  write_us_metric->Record(MonotonicMicros() - start_us);
  return Status::OK();
}

Result<CheckpointInfo> Checkpointer::Restore(const std::string& path,
                                             TableStore* store) {
  AETS_CHECK(store != nullptr);
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open checkpoint file: " + path);

  Header header;
  in.read(reinterpret_cast<char*>(&header.magic), sizeof(header.magic));
  in.read(reinterpret_cast<char*>(&header.version), sizeof(header.version));
  if (!in || std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad checkpoint magic");
  }
  if (header.version != 1 && header.version != kVersion) {
    return Status::NotSupported("unknown checkpoint version");
  }
  bool has_body_crc = header.version >= 2;
  if (has_body_crc) {
    in.read(reinterpret_cast<char*>(&header.crc),
            sizeof(Header) - offsetof(Header, crc));
    if (!in) return Status::Corruption("truncated checkpoint header");
    if (header.crc != HeaderCrc(header)) {
      return Status::Corruption("checkpoint header checksum mismatch");
    }
  } else {
    HeaderV1 v1;
    std::memcpy(v1.magic, header.magic, sizeof(v1.magic));
    v1.version = header.version;
    in.read(reinterpret_cast<char*>(&v1.crc),
            sizeof(HeaderV1) - offsetof(HeaderV1, crc));
    if (!in) return Status::Corruption("truncated checkpoint header");
    if (v1.crc != HeaderCrc(v1)) {
      return Status::Corruption("checkpoint header checksum mismatch");
    }
    header.crc = v1.crc;
    header.snapshot_ts = v1.snapshot_ts;
    header.next_epoch_id = v1.next_epoch_id;
    header.num_rows = v1.num_rows;
    header.num_tables = v1.num_tables;
    header.body_crc = 0;
    header.reserved = 0;
  }
  if (header.num_tables != store->num_tables()) {
    return Status::InvalidArgument("checkpoint table count mismatch");
  }

  std::string body((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (has_body_crc && Crc32c(body.data(), body.size()) != header.body_crc) {
    return Status::Corruption("checkpoint body checksum mismatch");
  }
  size_t offset = 0;
  uint64_t rows = 0;
  while (offset < body.size()) {
    auto rec = LogCodec::DecodeView(body, &offset);
    if (!rec.ok()) {
      // v1 images have no body checksum; surface the record-level failure
      // as an unambiguous body-corruption verdict instead of restoring a
      // prefix silently.
      return Status::Corruption("checkpoint body record corrupt: " +
                                std::string(rec.status().message()));
    }
    if (rec->type != LogRecordType::kInsert ||
        rec->timestamp != header.snapshot_ts) {
      return Status::Corruption("unexpected record in checkpoint body");
    }
    if (rec->table_id >= store->num_tables()) {
      return Status::Corruption("checkpoint row for unknown table");
    }
    store->GetTable(rec->table_id)->ApplyCommitted(*rec, header.snapshot_ts);
    ++rows;
  }
  if (rows != header.num_rows) {
    return Status::Corruption("checkpoint truncated: expected " +
                              std::to_string(header.num_rows) + " rows, got " +
                              std::to_string(rows));
  }
  CheckpointInfo info;
  info.snapshot_ts = header.snapshot_ts;
  info.next_epoch_id = header.next_epoch_id;
  info.num_rows = rows;
  static obs::Counter* restores_metric = obs::GetCounter("checkpoint.restores");
  static obs::Counter* rows_metric =
      obs::GetCounter("checkpoint.rows_restored");
  restores_metric->Add(1);
  rows_metric->Add(rows);
  return info;
}

}  // namespace aets
