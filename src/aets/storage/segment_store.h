#ifndef AETS_STORAGE_SEGMENT_STORE_H_
#define AETS_STORAGE_SEGMENT_STORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "aets/common/result.h"
#include "aets/common/status.h"
#include "aets/log/shipped_epoch.h"
#include "aets/obs/metrics.h"

namespace aets {

/// When the durable tier forces epochs to stable storage (the classic
/// durability/throughput trade, DESIGN.md §10). A kill -9 never loses
/// page-cache data on any policy — fsync only matters for power loss —
/// so the crash-restart gauntlet runs fine at kSegment.
enum class FsyncPolicy {
  kNone,     // never fsync; the OS flushes on its own schedule
  kSegment,  // fsync when a segment seals (bounded loss: one open segment)
  kAlways,   // fsync after every appended epoch
};

struct SegmentStoreOptions {
  /// Directory holding MANIFEST, seg-*.log segment files, and (by
  /// convention, see durable_source.h) ckpt-*.img checkpoint images.
  std::string dir;
  /// Rollover threshold: a segment seals once its size would exceed this.
  /// Every segment still holds at least one epoch, so a single oversized
  /// epoch occupies a segment of its own rather than failing.
  size_t segment_max_bytes = 8u << 20;
  FsyncPolicy fsync_policy = FsyncPolicy::kSegment;
  /// Soft cap on the on-disk footprint of this store's segment files. 0
  /// disables the budget. The store never refuses appends over budget — a
  /// full log is still better than a lost epoch — it only reports
  /// over_budget() so the owner (LogShipper) can request a checkpoint and
  /// truncate the covered prefix (DESIGN.md §10).
  uint64_t disk_budget_bytes = 0;
  /// TEST-ONLY fault hook, called with the frame size before every segment
  /// write (frames and manifest rewrites). A non-OK return fails the append
  /// exactly like a full disk; the caller must degrade, not abort. Never set
  /// outside tests.
  std::function<Status(size_t)> write_fault_hook;
  /// TEST-ONLY fault hook for the truncation sequence. Called with step 0
  /// before the manifest rewrite and step i (1-based) before unlinking the
  /// i-th dropped segment file. A non-OK return aborts TruncateBelow at that
  /// point, leaving the directory exactly as a crash there would — the chaos
  /// sweep reopens the store from every such window. Never set outside
  /// tests.
  std::function<Status(int)> truncate_fault_hook;
};

/// Append-only on-disk tier for shipped epochs (ROADMAP item 2): the
/// LogShipper appends every delivered epoch here so the bounded RAM
/// retention buffer can evict ("spill") cold epochs without losing them,
/// and a crashed backup can replay its way back to freshness from disk.
///
/// Layout (all little-endian, CRC32C reusing the wire codec's Crc32c):
///
///   <dir>/MANIFEST          magic "AETSSEGM", version, crc, ordered list of
///                           segment first-epoch ids; rewritten via tmp +
///                           atomic rename whenever a segment is created.
///   <dir>/seg-<16hex>.log   frames appended in epoch-id order, named by the
///                           first epoch id the segment holds. Frame:
///                             u32 crc     (CRC32C over the body)
///                             u32 len     (body length in bytes)
///                             body: u64 epoch_id, u64 heartbeat_ts,
///                                   u64 max_commit_ts, u64 num_txns,
///                                   u64 num_records, u64 first_txn,
///                                   u64 last_txn, u32 payload_crc,
///                                   u32 payload_len, payload bytes
///
/// Epoch ids are contiguous: Append requires exactly next_epoch(). Open()
/// replays the manifest, scans every segment to rebuild the frame index,
/// and handles damage by provenance: a bad or partial frame at the tail of
/// the NEWEST segment is a torn write from a crash — the tail is truncated
/// at the first bad frame and the store continues from there — while any
/// damage in a sealed segment or in the manifest is a hard Corruption error
/// (those bytes were durable; losing them silently would fake freshness).
///
/// Thread-safe. Reads use pread on cached per-segment descriptors, so
/// NACK-path fetches do not disturb the append head.
///
/// Metrics: segment.bytes_written, segment.fetches_from_disk,
/// segment.fsyncs, segment.torn_frames_truncated, segment.truncations,
/// segment.segments_deleted, segment.bytes_reclaimed, segment.segments
/// (gauge), segment.recovery_ms (gauge, last Open's scan time).
class SegmentStore {
 public:
  /// Creates `options.dir` if needed, validates the manifest, scans and
  /// indexes every segment, and truncates a torn tail. Damage outside the
  /// torn-tail case returns Corruption.
  static Result<std::unique_ptr<SegmentStore>> Open(SegmentStoreOptions options);

  ~SegmentStore();
  SegmentStore(const SegmentStore&) = delete;
  SegmentStore& operator=(const SegmentStore&) = delete;

  /// Appends one epoch. `epoch.epoch_id` must equal next_epoch() (the first
  /// append of an empty store sets the base id). Failures (hook-injected
  /// disk-full, write errors) leave the store consistent at its previous
  /// durable prefix and are retryable.
  Status Append(const ShippedEpoch& epoch);

  /// Reads epoch `id` back, or nullopt when it is outside [first_epoch,
  /// next_epoch). A frame that fails its CRC on read returns nullopt as
  /// well — callers treat it like an evicted epoch and escalate.
  std::optional<ShippedEpoch> Read(EpochId id);

  /// Forces the active segment to stable storage regardless of policy.
  Status Sync();

  /// Checkpoint-coordinated truncation (DESIGN.md §10): drops every sealed
  /// segment wholly below `floor` — i.e. whose epochs are all covered by a
  /// durable checkpoint image with next_epoch_id == floor. The newest
  /// segment is never dropped, and a segment straddling the floor survives
  /// whole, so first_epoch() after a truncation is <= floor.
  ///
  /// Crash-consistent by construction: the MANIFEST is rewritten first
  /// (tmp + rename + directory fsync, the same commit protocol as segment
  /// rollover) and only then are the dropped files unlinked. A crash after
  /// the rename leaves orphaned seg-*.log files below the manifest's first
  /// entry; Open() removes them, so deleted epochs never resurrect. A crash
  /// before the rename leaves the store untouched.
  ///
  /// No-op (OK) when nothing is droppable. Failures leave the store
  /// consistent and are retryable.
  Status TruncateBelow(EpochId floor);

  /// Durable id range: [first_epoch(), next_epoch()). Empty when equal.
  EpochId first_epoch() const;
  EpochId next_epoch() const;
  bool empty() const;

  size_t num_segments() const;
  uint64_t bytes_written() const;
  uint64_t fsyncs() const;
  /// Torn frames discarded by Open() across the store's lifetime on disk.
  uint64_t torn_frames_truncated() const;

  /// Live on-disk footprint: the byte total of every segment file currently
  /// listed in the manifest (grows with Append, shrinks with TruncateBelow).
  uint64_t disk_bytes() const;
  /// True when a budget is configured and disk_bytes() exceeds it.
  bool over_budget() const;
  uint64_t disk_budget_bytes() const { return options_.disk_budget_bytes; }
  /// Truncation telemetry for this store instance.
  uint64_t truncations() const;
  uint64_t segments_deleted() const;
  uint64_t bytes_reclaimed() const;

 private:
  struct SegmentMeta {
    EpochId first_epoch = 0;
    uint64_t frames = 0;
    uint64_t bytes = 0;  // current file size
    int read_fd = -1;    // lazily opened pread descriptor
  };
  struct FrameLoc {
    uint32_t segment;
    uint64_t offset;  // of the frame header within the segment file
    uint32_t size;    // whole frame: header + body
  };

  explicit SegmentStore(SegmentStoreOptions options);

  std::string SegmentPath(EpochId first_epoch) const;
  std::string ManifestPath() const;
  /// Rewrites MANIFEST (tmp + rename + directory fsync) listing every
  /// segment in segments_ from `drop_prefix` on, plus, when >= 0,
  /// `new_first` as the new tail. Rollover passes drop_prefix 0; truncation
  /// passes the count of leading segments it is about to delete.
  Status WriteManifestLocked(size_t drop_prefix, int64_t new_first);
  /// Unlinks seg-*.log files below the manifest's first listed segment —
  /// the crash window between a truncation's manifest rename and its
  /// unlinks. Called by Open() after the manifest parses clean.
  void RemoveOrphanSegmentsLocked();
  /// Opens (creating if absent) the active segment for appending.
  Status OpenActiveForAppendLocked();
  /// Seals the active segment and starts a new one at `first_epoch`.
  Status RolloverLocked(EpochId first_epoch);
  /// Scans one segment file, appending to index_; `newest` selects the
  /// torn-tail truncation rule. `expected` is the first epoch id the scan
  /// must find.
  Status ScanSegmentLocked(size_t seg_idx, EpochId expected, bool newest);
  Status FsyncActiveLocked();
  int ReadFdLocked(size_t seg_idx);

  SegmentStoreOptions options_;

  mutable std::mutex mu_;
  std::vector<SegmentMeta> segments_;
  /// index_[i] locates epoch first_epoch_ + i.
  std::vector<FrameLoc> index_;
  EpochId first_epoch_ = 0;
  int append_fd_ = -1;

  uint64_t bytes_written_ = 0;
  uint64_t fsyncs_ = 0;
  uint64_t torn_truncated_ = 0;
  uint64_t disk_bytes_ = 0;
  uint64_t truncations_ = 0;
  uint64_t segments_deleted_ = 0;
  uint64_t bytes_reclaimed_ = 0;

  obs::Counter* bytes_written_metric_;
  obs::Counter* fetches_metric_;
  obs::Counter* fsyncs_metric_;
  obs::Counter* torn_metric_;
  obs::Counter* truncations_metric_;
  obs::Counter* segments_deleted_metric_;
  obs::Counter* bytes_reclaimed_metric_;
  obs::Gauge* segments_metric_;
  obs::Gauge* recovery_ms_metric_;
};

}  // namespace aets

#endif  // AETS_STORAGE_SEGMENT_STORE_H_
