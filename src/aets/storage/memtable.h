#ifndef AETS_STORAGE_MEMTABLE_H_
#define AETS_STORAGE_MEMTABLE_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>

#include "aets/catalog/schema.h"
#include "aets/common/clock.h"
#include "aets/log/record.h"
#include "aets/storage/btree.h"
#include "aets/storage/version_chain.h"

namespace aets {

/// Per-table in-memory multi-version store: a B+Tree of MemNodes, each with
/// a commit-ordered version chain (the paper's "Memtable").
class Memtable {
 public:
  explicit Memtable(TableId table_id) : table_id_(table_id) {}

  Memtable(const Memtable&) = delete;
  Memtable& operator=(const Memtable&) = delete;

  TableId table_id() const { return table_id_; }

  /// Looks up the node for `row_key`, creating an empty one if absent.
  /// TPLR's phase 1 uses this: translation pins the node, no version is
  /// installed yet.
  MemNode* GetOrCreateNode(int64_t row_key);

  /// Looks up the node for `row_key`, or nullptr.
  MemNode* FindNode(int64_t row_key) const;

  /// Installs the version carried by a committed DML record. Used by the
  /// primary engine, the serial oracle, and direct-install replayers (ATR,
  /// C5); TPLR-style replayers append the translated cells themselves.
  void ApplyCommitted(const LogRecord& record, Timestamp commit_ts);

  /// Zero-copy variant: packs the view's validated value slice straight into
  /// the version cell (one allocation, no per-value materialization).
  void ApplyCommitted(const LogRecordView& record, Timestamp commit_ts);

  /// The row visible at snapshot `ts`, or nullopt.
  std::optional<Row> ReadRow(int64_t row_key, Timestamp ts) const;

  /// Visits rows visible at `ts` in ascending key order. Callback returns
  /// false to stop. Template so the per-row visit inlines (the row-scan hot
  /// path previously paid a std::function indirect call per row); the
  /// non-template overload keeps type-erased callers working.
  template <typename Visitor>
  void ScanVisible(Timestamp ts, Visitor&& visit) const {
    index_.Scan(std::numeric_limits<int64_t>::min(),
                std::numeric_limits<int64_t>::max(),
                [&](int64_t key, MemNode* node) {
                  auto row = node->ReadVisible(ts);
                  if (!row) return true;
                  return visit(key, static_cast<const Row&>(*row));
                });
  }
  void ScanVisible(Timestamp ts,
                   const std::function<bool(int64_t, const Row&)>& visit) const;

  /// Number of indexed keys (including rows whose latest version at some
  /// snapshot may be a tombstone).
  size_t NumKeys() const { return index_.size(); }

  /// Number of rows visible at `ts`.
  size_t VisibleRowCount(Timestamp ts) const;

  /// Order-independent 64-bit digest of everything visible at `ts`. Two
  /// stores hold identical visible data iff digests match (w.h.p.); the
  /// replay-equivalence tests compare primary vs. backup with this.
  uint64_t DigestAt(Timestamp ts) const;

  /// MVCC garbage collection: folds away version history that no snapshot
  /// at or above `watermark` can read (see MemNode::TruncateBefore).
  /// Returns versions reclaimed across all rows.
  size_t GarbageCollect(Timestamp watermark);

 private:
  TableId table_id_;
  BPlusTree<MemNode> index_;
};

}  // namespace aets

#endif  // AETS_STORAGE_MEMTABLE_H_
