#ifndef AETS_STORAGE_PACKED_DELTA_H_
#define AETS_STORAGE_PACKED_DELTA_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

#include "aets/log/view.h"
#include "aets/storage/flat_row.h"
#include "aets/storage/value.h"

namespace aets {

/// The delta payload of one version cell, packed into a single contiguous
/// allocation instead of a std::vector<ColumnValue> (which costs one vector
/// block plus one string block per string value). Layout mirrors the log
/// wire format so translate can memcpy straight out of a decoded view:
///
///   [u16 count][entry]*count   where entry = u16 col_id, u8 tag, payload
///
/// Empty deltas (pure tombstones) hold no allocation at all. Move-only —
/// version chains only ever move cells; copying is an explicit Clone().
class PackedDelta {
 public:
  PackedDelta() = default;
  PackedDelta(PackedDelta&&) noexcept = default;
  PackedDelta& operator=(PackedDelta&&) noexcept = default;
  PackedDelta(const PackedDelta&) = delete;
  PackedDelta& operator=(const PackedDelta&) = delete;

  /// Packs a validated `[col_id][value wire]` slice — the `value_bytes` of a
  /// LogRecordView. One memcpy, the single allocation of the apply path.
  static PackedDelta FromWire(uint16_t count, std::string_view bytes);

  /// Packs owning column values (serial oracle, checkpoint restore, tests).
  static PackedDelta FromColumnValues(const std::vector<ColumnValue>& values);

  /// Packs a materialized row — the GC fold writes its full-image base cell
  /// through this. Row iteration order is ascending column id.
  static PackedDelta FromRow(const FlatRow& row);

  /// Explicit deep copy.
  PackedDelta Clone() const;

  uint16_t count() const {
    if (data_ == nullptr) return 0;
    uint16_t n;
    std::memcpy(&n, data_.get(), sizeof(n));
    return n;
  }
  bool empty() const { return data_ == nullptr; }

  /// Total packed bytes (count header included); 0 when empty.
  size_t byte_size() const { return size_; }

  /// Iterates the entries; views into this block, valid while it lives.
  DeltaReader Read() const {
    if (data_ == nullptr) return DeltaReader(std::string_view(), 0);
    return DeltaReader(
        std::string_view(data_.get() + sizeof(uint16_t), size_ - sizeof(uint16_t)),
        count());
  }

  /// Folds this delta into `row` (upsert per entry) — the ReadVisible and GC
  /// reconstruction step. Strings are copied out into owning Values.
  void ApplyTo(FlatRow* row) const;

  /// Materializes owning column values (checkpoint serialization, tests).
  std::vector<ColumnValue> ToColumnValues() const;

  /// Byte equality — the encoding is deterministic, so packed bytes agree
  /// iff the logical deltas agree entry-for-entry.
  bool operator==(const PackedDelta& other) const {
    return size_ == other.size_ &&
           (size_ == 0 ||
            std::memcmp(data_.get(), other.data_.get(), size_) == 0);
  }
  bool operator!=(const PackedDelta& other) const { return !(*this == other); }

 private:
  PackedDelta(std::unique_ptr<char[]> data, uint32_t size)
      : data_(std::move(data)), size_(size) {}

  std::unique_ptr<char[]> data_;
  uint32_t size_ = 0;
};

}  // namespace aets

#endif  // AETS_STORAGE_PACKED_DELTA_H_
