#include "aets/storage/column_store.h"

#include <algorithm>
#include <utility>

#include "aets/obs/metrics.h"
#include "aets/storage/row_hash.h"

namespace aets {
namespace storage {

namespace {

/// Builds the immutable columnar payload for `n` (key, row) pairs sorted by
/// key. Rows that deviate from the schema go whole into the irregular
/// overflow; everything else lands in the typed vectors.
std::shared_ptr<const ChunkData> BuildChunkData(
    const Schema& schema, const std::pair<int64_t, FlatRow>* rows, size_t n,
    const uint64_t* hashes = nullptr) {
  auto data = std::make_shared<ChunkData>();
  data->keys.reserve(n);
  data->row_hash.reserve(n);
  data->irregular.Reset(n);
  size_t nc = schema.num_columns();
  data->cols.resize(nc);
  for (size_t c = 0; c < nc; ++c) {
    ChunkColumn& col = data->cols[c];
    col.type = schema.column(static_cast<ColumnId>(c)).type;
    col.has.Reset(n);
    col.null.Reset(n);
    switch (col.type) {
      case ColumnType::kInt64:
        col.i64.assign(n, 0);
        break;
      case ColumnType::kDouble:
        col.f64.assign(n, 0.0);
        break;
      case ColumnType::kString:
        col.str.assign(n, std::string());
        break;
    }
  }
  for (size_t i = 0; i < n; ++i) {
    const auto& [key, row] = rows[i];
    data->keys.push_back(key);
    data->row_hash.push_back(hashes != nullptr ? hashes[i] : HashRow(key, row));
    bool irregular = false;
    for (const auto& [col, value] : row) {
      if (col >= nc ||
          (!value.is_null() &&
           value.type() != schema.column(col).type)) {
        irregular = true;
        break;
      }
    }
    if (irregular) {
      data->irregular.Set(i);
      data->irregular_rows.emplace_back(static_cast<uint32_t>(i), row);
      continue;
    }
    for (const auto& [col, value] : row) {
      ChunkColumn& cc = data->cols[col];
      cc.has.Set(i);
      if (value.is_null()) {
        cc.null.Set(i);
      } else if (cc.type == ColumnType::kInt64) {
        cc.i64[i] = value.as_int64();
      } else if (cc.type == ColumnType::kDouble) {
        cc.f64[i] = value.as_double();
      } else {
        cc.str[i] = value.as_string();
      }
    }
  }
  for (ChunkColumn& col : data->cols) {
    col.dense = col.has.CountSet() == n && !col.null.Any();
  }
  return data;
}

/// Appends chunks covering `rows` (sorted by key), splitting every
/// `target` rows so no chunk starts life oversized.
void AppendChunks(const Schema& schema,
                  const std::vector<std::pair<int64_t, FlatRow>>& rows,
                  size_t target, std::vector<ColumnChunk>* out,
                  obs::Counter* rebuilt_metric,
                  const uint64_t* hashes = nullptr) {
  for (size_t off = 0; off < rows.size(); off += target) {
    size_t n = std::min(target, rows.size() - off);
    ColumnChunk chunk;
    chunk.data = BuildChunkData(schema, rows.data() + off, n,
                                hashes != nullptr ? hashes + off : nullptr);
    chunk.tombstones.Reset(n);
    chunk.live = n;
    out->push_back(std::move(chunk));
    rebuilt_metric->Add(1);
  }
}

}  // namespace

void ColumnSnapshot::LoadResidual() {
  static obs::Counter* residual_metric =
      obs::GetCounter("column.residual_rows");
  AETS_CHECK_MSG(valid(), "LoadResidual on an invalid snapshot");
  residual_loaded_ = true;
  if (residual_.empty()) return;
  residual_metric->Add(static_cast<int64_t>(residual_.size()));
  for (int64_t key : residual_) {
    auto row = rows_->ReadRow(key, qts_);
    if (row) residual_rows_.emplace(key, std::move(*row));
  }
}

BitVec ColumnSnapshot::ScanSkipBits(const ColumnChunk& chunk) const {
  BitVec skip = chunk.tombstones;
  if (!residual_.empty() && chunk.data->num_rows() > 0) {
    const auto& keys = chunk.data->keys;
    auto lo = std::lower_bound(residual_.begin(), residual_.end(),
                               keys.front());
    auto hi = std::upper_bound(lo, residual_.end(), keys.back());
    for (auto it = lo; it != hi; ++it) {
      auto kit = std::lower_bound(keys.begin(), keys.end(), *it);
      if (kit != keys.end() && *kit == *it) {
        skip.Set(static_cast<size_t>(kit - keys.begin()));
      }
    }
  }
  return skip;
}

uint64_t ColumnSnapshot::Digest() const {
  static obs::Counter* scanned = obs::GetCounter("column.rows_scanned");
  AETS_CHECK_MSG(residual_loaded_, "Digest before LoadResidual");
  uint64_t digest = 0;
  size_t visited = 0;
  for (const ColumnChunk& chunk : gen_->chunks) {
    BitVec skip = ScanSkipBits(chunk);
    size_t n = chunk.data->num_rows();
    visited += n;
    const uint64_t* hashes = chunk.data->row_hash.data();
    for (size_t i = 0; i < n; ++i) {
      if (!skip.Get(i)) digest ^= hashes[i];
    }
  }
  for (const auto& [key, row] : residual_rows_) {
    digest ^= HashRow(key, row);
  }
  scanned->Add(static_cast<int64_t>(visited));
  return digest;
}

size_t ColumnSnapshot::RowCount() const {
  AETS_CHECK_MSG(residual_loaded_, "RowCount before LoadResidual");
  size_t count = residual_rows_.size();
  for (const ColumnChunk& chunk : gen_->chunks) {
    count += chunk.data->num_rows() - ScanSkipBits(chunk).CountSet();
  }
  return count;
}

ColumnStore::ColumnStore(const Catalog* catalog, const TableStore* rows,
                         ColumnStoreOptions options)
    : catalog_(catalog), rows_(rows), options_(options) {
  AETS_CHECK(options_.chunk_rows > 0);
  AETS_CHECK(options_.max_generations > 0);
  tables_.reserve(catalog_->num_tables());
  for (size_t i = 0; i < catalog_->num_tables(); ++i) {
    tables_.push_back(std::make_unique<TableState>());
  }
}

void ColumnStore::NoteDirty(TableId table, int64_t key, Timestamp commit_ts) {
  AETS_CHECK(table < tables_.size());
  TableState& st = *tables_[table];
  std::lock_guard<std::mutex> lk(st.mu);
  st.pending.emplace_back(key, commit_ts);
}

void ColumnStore::Publish(Timestamp watermark, bool force) {
  if (watermark == kInvalidTimestamp) return;
  for (size_t t = 0; t < tables_.size(); ++t) {
    TableState& st = *tables_[t];
    std::vector<int64_t> dirty;
    std::shared_ptr<const TableGeneration> prev;
    {
      std::lock_guard<std::mutex> lk(st.mu);
      if (st.pending.empty()) continue;
      // Amortization: rewriting a chunk costs O(chunk_rows) however few of
      // its rows changed, so below the backlog threshold let the pending
      // set keep growing — the residual path keeps queries exact. The first
      // generation always publishes (pending.size() over-counts duplicates,
      // which only delays a skip, never a publish of stale data).
      if (!force && options_.publish_min_dirty > 0 && !st.gens.empty() &&
          st.pending.size() <
              std::max(options_.publish_min_dirty, st.live_rows / 8)) {
        continue;
      }
      // Take only entries the watermark covers. A key noted for a commit
      // newer than `watermark` (the poster raced ahead of this rebuild)
      // must stay pending: the chunk built here won't show that change, so
      // only the pending set keeps the residual top-up complete for it.
      // COPY, don't remove: while the rebuild below runs outside the lock,
      // a query ahead of the still-current newest generation derives its
      // residual from this pending set — dropping the consumed entries now
      // would make those keys vanish (absent from old chunks AND from the
      // residual) until the new generation lands. They are erased in the
      // second lock scope, atomically with the swap that covers them.
      dirty.reserve(st.pending.size());
      for (const auto& [key, ts] : st.pending) {
        if (ts <= watermark) dirty.push_back(key);
      }
      if (dirty.empty()) continue;
      if (!st.gens.empty()) prev = st.gens.back();
    }
    // Rebuild outside the lock: queries keep snapshotting the old
    // generation list; the sources (previous chunks, version chains) are
    // immutable/latched respectively.
    auto gen = RebuildTable(static_cast<TableId>(t), prev.get(),
                            std::move(dirty), watermark);
    {
      size_t live = 0;
      for (const ColumnChunk& chunk : gen->chunks) live += chunk.live;
      std::lock_guard<std::mutex> lk(st.mu);
      // Erase the consumed entries now that the generation covering them is
      // about to be visible. No new entry with commit_ts <= watermark can
      // have arrived since the copy above (the publisher is only handed a
      // watermark after every version it covers is installed and noted), so
      // this removes exactly the copied set.
      size_t kept = 0;
      for (size_t i = 0; i < st.pending.size(); ++i) {
        if (st.pending[i].second > watermark) st.pending[kept++] = st.pending[i];
      }
      st.pending.resize(kept);
      st.live_rows = live;
      st.gens.push_back(std::move(gen));
      while (st.gens.size() > options_.max_generations) st.gens.pop_front();
    }
  }
}

void ColumnStore::SeedFromRows(Timestamp snapshot_ts) {
  if (snapshot_ts == kInvalidTimestamp) return;
  for (size_t t = 0; t < tables_.size(); ++t) {
    const Memtable* mem = rows_->GetTable(static_cast<TableId>(t));
    TableState& st = *tables_[t];
    std::lock_guard<std::mutex> lk(st.mu);
    mem->ScanVisible(snapshot_ts, [&](int64_t key, const FlatRow&) {
      st.pending.emplace_back(key, snapshot_ts);
      return true;
    });
  }
  Publish(snapshot_ts, /*force=*/true);
}

ColumnSnapshot ColumnStore::SnapshotAt(TableId table, Timestamp qts) const {
  ColumnSnapshot snap;
  if (table >= tables_.size() || qts == kInvalidTimestamp) return snap;
  TableState& st = *tables_[table];
  std::lock_guard<std::mutex> lk(st.mu);
  size_t gi = st.gens.size();
  while (gi > 0 && st.gens[gi - 1]->chunk_ts > qts) --gi;
  if (gi == 0) return snap;  // qts predates every retained generation
  snap.gen_ = st.gens[gi - 1];
  snap.rows_ = rows_->GetTable(table);
  snap.qts_ = qts;
  if (qts == snap.gen_->chunk_ts) {
    // Exact generation: the residual range (chunk_ts, qts] is empty.
  } else if (gi < st.gens.size()) {
    // A newer generation exists: everything that changed in (chunk_ts, qts]
    // is a subset of its dirty set (commit timestamps are monotone across
    // epochs, so later generations' changes all exceed qts).
    snap.residual_ = st.gens[gi]->dirty;
  } else {
    // qts runs ahead of the newest generation: the live pending set covers
    // every key changed after chunk_ts. NoteDirty happens before the
    // watermark that made qts visible was stored, so the copy is complete;
    // keys committed after qts are a harmless superset (their row-store
    // read at qts returns the same state the chunk holds).
    snap.residual_.reserve(st.pending.size());
    for (const auto& [key, ts] : st.pending) snap.residual_.push_back(key);
    std::sort(snap.residual_.begin(), snap.residual_.end());
    snap.residual_.erase(
        std::unique(snap.residual_.begin(), snap.residual_.end()),
        snap.residual_.end());
  }
  return snap;
}

Timestamp ColumnStore::PublishedTs(TableId table) const {
  AETS_CHECK(table < tables_.size());
  TableState& st = *tables_[table];
  std::lock_guard<std::mutex> lk(st.mu);
  return st.gens.empty() ? kInvalidTimestamp : st.gens.back()->chunk_ts;
}

std::shared_ptr<const TableGeneration> ColumnStore::RebuildTable(
    TableId table, const TableGeneration* prev, std::vector<int64_t> dirty,
    Timestamp watermark) {
  static obs::Counter* rebuilt = obs::GetCounter("column.chunks_rebuilt");
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());

  const Memtable* mem = rows_->GetTable(table);
  std::vector<std::optional<FlatRow>> dirty_rows(dirty.size());
  for (size_t i = 0; i < dirty.size(); ++i) {
    dirty_rows[i] = mem->ReadRow(dirty[i], watermark);
  }

  auto info = catalog_->GetTable(table);
  AETS_CHECK(info.ok());
  const Schema& schema = (*info)->schema;

  auto gen = std::make_shared<TableGeneration>();
  gen->chunk_ts = watermark;
  gen->dirty = dirty;

  if (prev == nullptr || prev->chunks.empty()) {
    // First generation (or the table emptied out entirely): chunk the
    // present rows directly — dirty is sorted, so they arrive in key order.
    std::vector<std::pair<int64_t, FlatRow>> rows;
    rows.reserve(dirty.size());
    for (size_t i = 0; i < dirty.size(); ++i) {
      if (dirty_rows[i]) rows.emplace_back(dirty[i], std::move(*dirty_rows[i]));
    }
    AppendChunks(schema, rows, options_.chunk_rows, &gen->chunks, rebuilt);
    return gen;
  }

  // Route each dirty key to the previous generation's chunk owning its key
  // range (out-of-range keys attach to the nearest edge chunk).
  size_t nchunks = prev->chunks.size();
  std::vector<std::vector<size_t>> assigned(nchunks);
  {
    size_t ci = 0;
    for (size_t i = 0; i < dirty.size(); ++i) {
      while (ci + 1 < nchunks && dirty[i] > prev->chunks[ci].max_key()) ++ci;
      assigned[ci].push_back(i);
    }
  }

  for (size_t ci = 0; ci < nchunks; ++ci) {
    const ColumnChunk& old = prev->chunks[ci];
    if (assigned[ci].empty()) {
      gen->chunks.push_back(old);  // shares the column vectors
      continue;
    }
    size_t n = old.data->num_rows();
    bool all_deletes = true;
    for (size_t i : assigned[ci]) {
      if (dirty_rows[i]) {
        all_deletes = false;
        break;
      }
    }
    if (all_deletes) {
      // Pure deletes: copy only the tombstone overlay; the column vectors
      // stay shared with the previous generation.
      ColumnChunk next = old;
      const auto& keys = old.data->keys;
      for (size_t i : assigned[ci]) {
        auto it = std::lower_bound(keys.begin(), keys.end(), dirty[i]);
        if (it != keys.end() && *it == dirty[i]) {
          size_t idx = static_cast<size_t>(it - keys.begin());
          if (!next.tombstones.Get(idx)) {
            next.tombstones.Set(idx);
            --next.live;
          }
        }
      }
      if (next.live == 0) continue;  // chunk fully dead: drop it
      if ((n - next.live) * 2 <= n) {
        gen->chunks.push_back(std::move(next));
        continue;
      }
      // Majority tombstoned: fall through and compact via a full rewrite.
    }
    // Rewrite: merge the surviving old rows with the dirty keys' images at
    // the new watermark (both streams sorted by key). Carried rows reuse
    // the previous chunk's cached hashes — only dirty images rehash.
    std::vector<std::pair<int64_t, FlatRow>> merged;
    std::vector<uint64_t> merged_hash;
    merged.reserve(old.live + assigned[ci].size());
    merged_hash.reserve(old.live + assigned[ci].size());
    const auto& a = assigned[ci];
    size_t di = 0;
    auto emit_dirty = [&](size_t i) {
      if (dirty_rows[i]) {
        merged_hash.push_back(HashRow(dirty[i], *dirty_rows[i]));
        merged.emplace_back(dirty[i], *dirty_rows[i]);
      }
    };
    for (size_t r = 0; r < n; ++r) {
      int64_t k = old.data->keys[r];
      while (di < a.size() && dirty[a[di]] < k) emit_dirty(a[di++]);
      if (di < a.size() && dirty[a[di]] == k) {
        emit_dirty(a[di++]);  // new image supersedes the old row
        continue;
      }
      if (old.tombstones.Get(r)) continue;
      merged_hash.push_back(old.data->row_hash[r]);
      merged.emplace_back(k, old.data->MaterializeRow(r));
    }
    while (di < a.size()) emit_dirty(a[di++]);
    if (merged.empty()) continue;
    if (merged.size() <= 2 * options_.chunk_rows) {
      ColumnChunk chunk;
      chunk.data = BuildChunkData(schema, merged.data(), merged.size(),
                                  merged_hash.data());
      chunk.tombstones.Reset(merged.size());
      chunk.live = merged.size();
      gen->chunks.push_back(std::move(chunk));
      rebuilt->Add(1);
    } else {
      AppendChunks(schema, merged, options_.chunk_rows, &gen->chunks, rebuilt,
                   merged_hash.data());
    }
  }
  return gen;
}

}  // namespace storage
}  // namespace aets
