#ifndef AETS_STORAGE_VALUE_H_
#define AETS_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "aets/catalog/schema.h"

namespace aets {

/// A single column value as carried in a value-log entry and stored in the
/// Memtable's version cells. Monostate represents SQL NULL.
class Value {
 public:
  Value() : repr_(std::monostate{}) {}
  explicit Value(int64_t v) : repr_(v) {}
  explicit Value(double v) : repr_(v) {}
  explicit Value(std::string v) : repr_(std::move(v)) {}
  explicit Value(const char* v) : repr_(std::string(v)) {}

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(repr_); }
  bool is_int64() const { return std::holds_alternative<int64_t>(repr_); }
  bool is_double() const { return std::holds_alternative<double>(repr_); }
  bool is_string() const { return std::holds_alternative<std::string>(repr_); }

  int64_t as_int64() const { return std::get<int64_t>(repr_); }
  double as_double() const { return std::get<double>(repr_); }
  const std::string& as_string() const { return std::get<std::string>(repr_); }

  ColumnType type() const {
    if (is_int64()) return ColumnType::kInt64;
    if (is_double()) return ColumnType::kDouble;
    return ColumnType::kString;
  }

  /// Approximate wire size in bytes; the thread allocator weighs groups by
  /// un-replayed log bytes.
  size_t ByteSize() const {
    if (is_null()) return 1;
    if (is_string()) return 1 + 4 + as_string().size();
    return 1 + 8;
  }

  bool operator==(const Value& other) const { return repr_ == other.repr_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  std::string ToString() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> repr_;
};

/// A (column id, new value) pair — the payload unit of an update log entry.
struct ColumnValue {
  ColumnId column_id;
  Value value;

  bool operator==(const ColumnValue& other) const {
    return column_id == other.column_id && value == other.value;
  }
};

}  // namespace aets

#endif  // AETS_STORAGE_VALUE_H_
