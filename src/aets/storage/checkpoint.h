#ifndef AETS_STORAGE_CHECKPOINT_H_
#define AETS_STORAGE_CHECKPOINT_H_

#include <cstdint>
#include <string>

#include "aets/common/clock.h"
#include "aets/common/result.h"
#include "aets/log/epoch.h"
#include "aets/storage/table_store.h"

namespace aets {

/// Checkpoint metadata: the snapshot timestamp the image was taken at and
/// the next epoch id the backup expects, so a bootstrapped replayer resumes
/// the stream at the right place.
struct CheckpointInfo {
  Timestamp snapshot_ts = kInvalidTimestamp;
  EpochId next_epoch_id = 0;
  uint64_t num_rows = 0;
};

/// Backup checkpointing: serializes every row visible at `snapshot_ts` (as
/// value-log insert records, reusing the wire codec and its checksums) so a
/// new backup can bootstrap without replaying the full history — the
/// operational complement to version GC and log truncation.
///
/// Format (v2): a fixed header (magic, version, snapshot ts, next epoch id,
/// row count, header CRC, body CRC) followed by one encoded insert record
/// per visible row. The body CRC32C covers every byte after the header, so
/// damage anywhere in the image — including truncation on a record boundary,
/// which the per-record checksums cannot see — fails Restore() with a
/// Corruption status instead of restoring silently. v1 images (header CRC
/// only) still restore, guarded by the per-record checksums alone.
class Checkpointer {
 public:
  /// Writes the image of `store` at `snapshot_ts` to `path`. Concurrent
  /// appends above the snapshot are fine (MVCC reads at the snapshot);
  /// concurrent GC must not truncate past `snapshot_ts`.
  static Status Write(const TableStore& store, Timestamp snapshot_ts,
                      EpochId next_epoch_id, const std::string& path);

  /// Loads a checkpoint into `store` (which must contain the same tables,
  /// freshly constructed) and returns its metadata. Detects truncation,
  /// bad magic, and corrupted rows.
  static Result<CheckpointInfo> Restore(const std::string& path,
                                        TableStore* store);
};

}  // namespace aets

#endif  // AETS_STORAGE_CHECKPOINT_H_
