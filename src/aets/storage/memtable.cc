#include "aets/storage/memtable.h"

#include <cstring>
#include <limits>

#include "aets/common/macros.h"

namespace aets {

namespace {

// 64-bit mix (splitmix64 finalizer) for digesting row contents.
uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t HashValue(const Value& v) {
  if (v.is_null()) return Mix64(0x9E3779B97F4A7C15ull);
  if (v.is_int64()) return Mix64(static_cast<uint64_t>(v.as_int64()) ^ 0x1111);
  if (v.is_double()) {
    double d = v.as_double();
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    return Mix64(bits ^ 0x2222);
  }
  uint64_t h = 0xCBF29CE484222325ull;
  for (char c : v.as_string()) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001B3ull;
  }
  return Mix64(h ^ 0x3333);
}

uint64_t HashRow(int64_t key, const Row& row) {
  uint64_t h = Mix64(static_cast<uint64_t>(key));
  for (const auto& [col, value] : row) {
    h = Mix64(h ^ (static_cast<uint64_t>(col) << 32) ^ HashValue(value));
  }
  return h;
}

}  // namespace

MemNode* Memtable::GetOrCreateNode(int64_t row_key) {
  bool created = false;
  return index_.GetOrCreate(row_key, &created, row_key);
}

MemNode* Memtable::FindNode(int64_t row_key) const {
  return index_.Find(row_key);
}

void Memtable::ApplyCommitted(const LogRecord& record, Timestamp commit_ts) {
  AETS_CHECK(record.is_dml());
  MemNode* node = GetOrCreateNode(record.row_key);
  VersionCell cell;
  cell.commit_ts = commit_ts;
  cell.txn_id = record.txn_id;
  cell.is_delete = record.type == LogRecordType::kDelete;
  cell.delta = PackedDelta::FromColumnValues(record.values);
  node->AppendVersion(std::move(cell));
}

void Memtable::ApplyCommitted(const LogRecordView& record,
                              Timestamp commit_ts) {
  AETS_CHECK(record.is_dml());
  MemNode* node = GetOrCreateNode(record.row_key);
  VersionCell cell;
  cell.commit_ts = commit_ts;
  cell.txn_id = record.txn_id;
  cell.is_delete = record.type == LogRecordType::kDelete;
  cell.delta = PackedDelta::FromWire(record.num_values, record.value_bytes);
  node->AppendVersion(std::move(cell));
}

std::optional<Row> Memtable::ReadRow(int64_t row_key, Timestamp ts) const {
  MemNode* node = index_.Find(row_key);
  if (node == nullptr) return std::nullopt;
  return node->ReadVisible(ts);
}

void Memtable::ScanVisible(
    Timestamp ts, const std::function<bool(int64_t, const Row&)>& visit) const {
  index_.Scan(std::numeric_limits<int64_t>::min(),
              std::numeric_limits<int64_t>::max(),
              [&](int64_t key, MemNode* node) {
                auto row = node->ReadVisible(ts);
                if (!row) return true;
                return visit(key, *row);
              });
}

size_t Memtable::VisibleRowCount(Timestamp ts) const {
  size_t n = 0;
  ScanVisible(ts, [&](int64_t, const Row&) {
    ++n;
    return true;
  });
  return n;
}

size_t Memtable::GarbageCollect(Timestamp watermark) {
  size_t reclaimed = 0;
  index_.Scan(std::numeric_limits<int64_t>::min(),
              std::numeric_limits<int64_t>::max(),
              [&](int64_t, MemNode* node) {
                reclaimed += node->TruncateBefore(watermark);
                return true;
              });
  return reclaimed;
}

uint64_t Memtable::DigestAt(Timestamp ts) const {
  // XOR of per-row hashes: order-independent, so concurrent replayers with
  // different scan interleavings still compare equal.
  uint64_t digest = 0;
  ScanVisible(ts, [&](int64_t key, const Row& row) {
    digest ^= HashRow(key, row);
    return true;
  });
  return digest;
}

}  // namespace aets
