#include "aets/storage/memtable.h"

#include "aets/common/macros.h"
#include "aets/storage/row_hash.h"

namespace aets {

MemNode* Memtable::GetOrCreateNode(int64_t row_key) {
  bool created = false;
  return index_.GetOrCreate(row_key, &created, row_key);
}

MemNode* Memtable::FindNode(int64_t row_key) const {
  return index_.Find(row_key);
}

void Memtable::ApplyCommitted(const LogRecord& record, Timestamp commit_ts) {
  AETS_CHECK(record.is_dml());
  MemNode* node = GetOrCreateNode(record.row_key);
  VersionCell cell;
  cell.commit_ts = commit_ts;
  cell.txn_id = record.txn_id;
  cell.is_delete = record.type == LogRecordType::kDelete;
  cell.delta = PackedDelta::FromColumnValues(record.values);
  node->AppendVersion(std::move(cell));
}

void Memtable::ApplyCommitted(const LogRecordView& record,
                              Timestamp commit_ts) {
  AETS_CHECK(record.is_dml());
  MemNode* node = GetOrCreateNode(record.row_key);
  VersionCell cell;
  cell.commit_ts = commit_ts;
  cell.txn_id = record.txn_id;
  cell.is_delete = record.type == LogRecordType::kDelete;
  cell.delta = PackedDelta::FromWire(record.num_values, record.value_bytes);
  node->AppendVersion(std::move(cell));
}

std::optional<Row> Memtable::ReadRow(int64_t row_key, Timestamp ts) const {
  MemNode* node = index_.Find(row_key);
  if (node == nullptr) return std::nullopt;
  return node->ReadVisible(ts);
}

void Memtable::ScanVisible(
    Timestamp ts, const std::function<bool(int64_t, const Row&)>& visit) const {
  // Type-erased shim over the template fast path (existing callers that
  // hold a std::function).
  ScanVisible<const std::function<bool(int64_t, const Row&)>&>(ts, visit);
}

size_t Memtable::VisibleRowCount(Timestamp ts) const {
  size_t n = 0;
  ScanVisible(ts, [&](int64_t, const Row&) {
    ++n;
    return true;
  });
  return n;
}

size_t Memtable::GarbageCollect(Timestamp watermark) {
  size_t reclaimed = 0;
  index_.Scan(std::numeric_limits<int64_t>::min(),
              std::numeric_limits<int64_t>::max(),
              [&](int64_t, MemNode* node) {
                reclaimed += node->TruncateBefore(watermark);
                return true;
              });
  return reclaimed;
}

uint64_t Memtable::DigestAt(Timestamp ts) const {
  // XOR of per-row hashes: order-independent, so concurrent replayers with
  // different scan interleavings still compare equal. HashRow lives in
  // row_hash.h so the column store's cached per-row hashes match exactly.
  uint64_t digest = 0;
  ScanVisible(ts, [&](int64_t key, const Row& row) {
    digest ^= HashRow(key, row);
    return true;
  });
  return digest;
}

}  // namespace aets
