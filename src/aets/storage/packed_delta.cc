#include "aets/storage/packed_delta.h"

namespace aets {

PackedDelta PackedDelta::FromWire(uint16_t count, std::string_view bytes) {
  if (count == 0) return PackedDelta();
  uint32_t size = static_cast<uint32_t>(sizeof(uint16_t) + bytes.size());
  std::unique_ptr<char[]> data(new char[size]);
  std::memcpy(data.get(), &count, sizeof(count));
  std::memcpy(data.get() + sizeof(count), bytes.data(), bytes.size());
  return PackedDelta(std::move(data), size);
}

PackedDelta PackedDelta::FromColumnValues(
    const std::vector<ColumnValue>& values) {
  if (values.empty()) return PackedDelta();
  size_t body = 0;
  for (const auto& cv : values) {
    body += sizeof(ColumnId) + ValueWireSize(cv.value);
  }
  uint32_t size = static_cast<uint32_t>(sizeof(uint16_t) + body);
  std::unique_ptr<char[]> data(new char[size]);
  uint16_t count = static_cast<uint16_t>(values.size());
  std::memcpy(data.get(), &count, sizeof(count));
  char* p = data.get() + sizeof(count);
  for (const auto& cv : values) {
    std::memcpy(p, &cv.column_id, sizeof(cv.column_id));
    p = WriteValueWire(p + sizeof(cv.column_id), cv.value);
  }
  return PackedDelta(std::move(data), size);
}

PackedDelta PackedDelta::FromRow(const FlatRow& row) {
  if (row.empty()) return PackedDelta();
  size_t body = 0;
  for (const auto& [col, value] : row) {
    (void)col;
    body += sizeof(ColumnId) + ValueWireSize(value);
  }
  uint32_t size = static_cast<uint32_t>(sizeof(uint16_t) + body);
  std::unique_ptr<char[]> data(new char[size]);
  uint16_t count = static_cast<uint16_t>(row.size());
  std::memcpy(data.get(), &count, sizeof(count));
  char* p = data.get() + sizeof(count);
  for (const auto& [col, value] : row) {
    std::memcpy(p, &col, sizeof(col));
    p = WriteValueWire(p + sizeof(col), value);
  }
  return PackedDelta(std::move(data), size);
}

PackedDelta PackedDelta::Clone() const {
  if (data_ == nullptr) return PackedDelta();
  std::unique_ptr<char[]> copy(new char[size_]);
  std::memcpy(copy.get(), data_.get(), size_);
  return PackedDelta(std::move(copy), size_);
}

void PackedDelta::ApplyTo(FlatRow* row) const {
  DeltaReader reader = Read();
  ColumnId col;
  ValueView v;
  while (reader.Next(&col, &v)) {
    row->Set(col, v.ToValue());
  }
}

std::vector<ColumnValue> PackedDelta::ToColumnValues() const {
  std::vector<ColumnValue> out;
  out.reserve(count());
  DeltaReader reader = Read();
  ColumnId col;
  ValueView v;
  while (reader.Next(&col, &v)) {
    out.push_back(ColumnValue{col, v.ToValue()});
  }
  return out;
}

}  // namespace aets
