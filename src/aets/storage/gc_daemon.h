#ifndef AETS_STORAGE_GC_DAEMON_H_
#define AETS_STORAGE_GC_DAEMON_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>

#include "aets/common/clock.h"
#include "aets/storage/table_store.h"

namespace aets {

/// Background MVCC garbage collector for a backup's TableStore. Version
/// chains on the backup grow with every replayed transaction; the daemon
/// periodically folds away history below `watermark_source() - retention`,
/// which is safe as long as no reader uses snapshots older than that (the
/// backup's readers take fresh snapshots, so a small retention horizon
/// suffices — the hybrid-GC concern of the paper's Section III-A model).
class GcDaemon {
 public:
  /// `watermark_source` is typically the replayer's GlobalVisibleTs.
  GcDaemon(TableStore* store, std::function<Timestamp()> watermark_source,
           Timestamp retention = 0, int64_t interval_us = 100'000);
  ~GcDaemon();

  GcDaemon(const GcDaemon&) = delete;
  GcDaemon& operator=(const GcDaemon&) = delete;

  void Start();
  void Stop();

  /// Test/observer hooks around each pass. The pre-pass hook fires with the
  /// truncation watermark BEFORE any version is folded (the simulation
  /// oracle raises its GC horizon here, so it never probes a snapshot the
  /// pass is about to invalidate); the post-pass hook fires after the pass
  /// with (watermark, versions reclaimed). Set before Start().
  void SetPrePassHook(std::function<void(Timestamp)> hook) {
    pre_pass_hook_ = std::move(hook);
  }
  void SetPostPassHook(std::function<void(Timestamp, size_t)> hook) {
    post_pass_hook_ = std::move(hook);
  }

  /// One synchronous pass (also used by Start's loop). Returns versions
  /// reclaimed.
  size_t RunOnce();

  uint64_t total_reclaimed() const {
    return total_reclaimed_.load(std::memory_order_relaxed);
  }
  uint64_t passes() const { return passes_.load(std::memory_order_relaxed); }

 private:
  void Loop();

  TableStore* store_;
  std::function<Timestamp()> watermark_source_;
  std::function<void(Timestamp)> pre_pass_hook_;
  std::function<void(Timestamp, size_t)> post_pass_hook_;
  Timestamp retention_;
  int64_t interval_us_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> total_reclaimed_{0};
  std::atomic<uint64_t> passes_{0};
  std::thread thread_;
};

}  // namespace aets

#endif  // AETS_STORAGE_GC_DAEMON_H_
