#ifndef AETS_STORAGE_TABLE_STORE_H_
#define AETS_STORAGE_TABLE_STORE_H_

#include <memory>
#include <mutex>
#include <vector>

#include "aets/catalog/catalog.h"
#include "aets/common/clock.h"
#include "aets/storage/memtable.h"

namespace aets {

/// The set of Memtables for one database instance (primary or backup).
/// Tables are created eagerly from the catalog so replay never races
/// table creation.
class TableStore {
 public:
  /// Creates one Memtable per table currently registered in `catalog`.
  explicit TableStore(const Catalog& catalog);

  TableStore(const TableStore&) = delete;
  TableStore& operator=(const TableStore&) = delete;

  Memtable* GetTable(TableId id);
  const Memtable* GetTable(TableId id) const;

  size_t num_tables() const { return tables_.size(); }

  /// XOR-combined digest across all tables at snapshot `ts`.
  uint64_t DigestAt(Timestamp ts) const;

  /// The per-table combiner DigestAt folds with. Public so a sharded reader
  /// can reproduce the whole-database digest by XOR-ing Mix(t, digest of
  /// table t) drawn from each table's owning shard (DESIGN.md §11).
  static uint64_t Mix(TableId id, uint64_t digest);

  /// Total visible rows across all tables at `ts`.
  size_t VisibleRowCount(Timestamp ts) const;

  /// Runs MVCC garbage collection on every table (see
  /// Memtable::GarbageCollect). Returns total versions reclaimed.
  size_t GarbageCollect(Timestamp watermark);

 private:

  std::vector<std::unique_ptr<Memtable>> tables_;
};

}  // namespace aets

#endif  // AETS_STORAGE_TABLE_STORE_H_
