#include "aets/storage/value.h"

namespace aets {

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int64()) return std::to_string(as_int64());
  if (is_double()) return std::to_string(as_double());
  return "\"" + as_string() + "\"";
}

}  // namespace aets
