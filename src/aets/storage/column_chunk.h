#ifndef AETS_STORAGE_COLUMN_CHUNK_H_
#define AETS_STORAGE_COLUMN_CHUNK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "aets/catalog/schema.h"
#include "aets/common/clock.h"
#include "aets/common/macros.h"
#include "aets/storage/flat_row.h"
#include "aets/storage/row_hash.h"

namespace aets {
namespace storage {

/// Dense bitmap over a chunk's row positions (tombstones, presence masks,
/// scan skip sets). One cache line covers 512 rows, so per-chunk overlays
/// stay tiny next to the column vectors they qualify.
struct BitVec {
  std::vector<uint64_t> words;

  void Reset(size_t bits) { words.assign((bits + 63) / 64, 0); }
  bool Get(size_t i) const { return (words[i >> 6] >> (i & 63)) & 1; }
  void Set(size_t i) { words[i >> 6] |= uint64_t{1} << (i & 63); }
  bool Any() const {
    for (uint64_t w : words) {
      if (w != 0) return true;
    }
    return false;
  }
  size_t CountSet() const {
    size_t n = 0;
    for (uint64_t w : words) n += static_cast<size_t>(__builtin_popcountll(w));
    return n;
  }
  /// this |= other. Both must cover the same row count.
  void OrWith(const BitVec& other) {
    AETS_CHECK(words.size() == other.words.size());
    for (size_t i = 0; i < words.size(); ++i) words[i] |= other.words[i];
  }
};

/// One typed column vector of a chunk. Storage is chosen by the schema type;
/// `has`/`null` distinguish "column absent from the row image" from an
/// explicit SQL NULL, so a row materialized back from the columns is
/// bit-identical to the FlatRow the row store would produce.
struct ChunkColumn {
  ColumnType type = ColumnType::kInt64;
  /// Every row has a typed, non-null value in this column — the vectorized
  /// executors hoist the per-row presence checks out of their tight loops
  /// when this holds (it does for well-formed OLTP workloads).
  bool dense = false;
  std::vector<int64_t> i64;       // type == kInt64
  std::vector<double> f64;        // type == kDouble
  std::vector<std::string> str;   // type == kString
  BitVec has;
  BitVec null;
};

/// The immutable payload of one columnar chunk: a sorted key vector, one
/// ChunkColumn per schema column, and the cached per-row digest hashes
/// (HashRow — identical to what Memtable::DigestAt folds). Shared by every
/// generation that did not rewrite the chunk; never mutated after build.
struct ChunkData {
  std::vector<int64_t> keys;      // ascending
  std::vector<ChunkColumn> cols;  // indexed by (dense, positional) ColumnId
  std::vector<uint64_t> row_hash;
  /// Rows whose value set deviates from the schema (unknown column id or a
  /// runtime type the schema column cannot hold). Such rows are excluded
  /// from the typed vectors and carried whole in `irregular_rows`, so the
  /// tight loops skip them and a row-at-a-time fallback covers them.
  BitVec irregular;
  std::vector<std::pair<uint32_t, FlatRow>> irregular_rows;  // by row index

  size_t num_rows() const { return keys.size(); }

  /// Rebuilds the exact FlatRow at row position `i` from the columns.
  FlatRow MaterializeRow(size_t i) const {
    if (irregular.Get(i)) {
      for (const auto& [idx, row] : irregular_rows) {
        if (idx == i) return row;
      }
      AETS_CHECK_MSG(false, "irregular row missing from overflow list");
    }
    FlatRow row;
    for (size_t c = 0; c < cols.size(); ++c) {
      const ChunkColumn& col = cols[c];
      if (!col.has.Get(i)) continue;
      ColumnId id = static_cast<ColumnId>(c);
      if (col.null.Get(i)) {
        row.Set(id, Value());
      } else if (col.type == ColumnType::kInt64) {
        row.Set(id, Value(col.i64[i]));
      } else if (col.type == ColumnType::kDouble) {
        row.Set(id, Value(col.f64[i]));
      } else {
        row.Set(id, Value(col.str[i]));
      }
    }
    return row;
  }
};

/// A chunk as one generation sees it: the shared immutable data plus this
/// generation's tombstone overlay. A pure-delete epoch only copies the
/// overlay; the column vectors are shared across generations.
struct ColumnChunk {
  std::shared_ptr<const ChunkData> data;
  BitVec tombstones;
  size_t live = 0;  // rows not tombstoned

  int64_t min_key() const { return data->keys.front(); }
  int64_t max_key() const { return data->keys.back(); }
};

/// One published generation of a table's columnar projection, valid for
/// queries pinned at qts >= chunk_ts (topped up from the row store for the
/// residual (chunk_ts, qts] range). Immutable once published.
struct TableGeneration {
  Timestamp chunk_ts = kInvalidTimestamp;
  std::vector<ColumnChunk> chunks;  // disjoint, ascending key ranges
  /// Keys whose visible state changed in (prev generation's chunk_ts,
  /// chunk_ts] — sorted. A query pinned between the two generations reads
  /// the older one and re-resolves exactly these keys from the row store.
  std::vector<int64_t> dirty;
};

}  // namespace storage
}  // namespace aets

#endif  // AETS_STORAGE_COLUMN_CHUNK_H_
