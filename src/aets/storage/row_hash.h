#ifndef AETS_STORAGE_ROW_HASH_H_
#define AETS_STORAGE_ROW_HASH_H_

#include <cstdint>
#include <cstring>

#include "aets/storage/flat_row.h"
#include "aets/storage/value.h"

namespace aets {

/// Row hashing shared by Memtable::DigestAt and the column store's cached
/// per-row hashes — both sides must agree bit-for-bit so a columnar digest
/// equals the row-store digest at the same snapshot.

/// 64-bit mix (splitmix64 finalizer) for digesting row contents.
inline uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

inline uint64_t HashValue(const Value& v) {
  if (v.is_null()) return Mix64(0x9E3779B97F4A7C15ull);
  if (v.is_int64()) return Mix64(static_cast<uint64_t>(v.as_int64()) ^ 0x1111);
  if (v.is_double()) {
    double d = v.as_double();
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    return Mix64(bits ^ 0x2222);
  }
  uint64_t h = 0xCBF29CE484222325ull;
  for (char c : v.as_string()) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001B3ull;
  }
  return Mix64(h ^ 0x3333);
}

inline uint64_t HashRow(int64_t key, const FlatRow& row) {
  uint64_t h = Mix64(static_cast<uint64_t>(key));
  for (const auto& [col, value] : row) {
    h = Mix64(h ^ (static_cast<uint64_t>(col) << 32) ^ HashValue(value));
  }
  return h;
}

}  // namespace aets

#endif  // AETS_STORAGE_ROW_HASH_H_
