#ifndef AETS_SIM_REFERENCE_MODEL_H_
#define AETS_SIM_REFERENCE_MODEL_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "aets/catalog/schema.h"
#include "aets/common/clock.h"
#include "aets/common/status.h"
#include "aets/log/shipped_epoch.h"
#include "aets/storage/table_store.h"
#include "aets/storage/version_chain.h"

namespace aets {
namespace sim {

/// One transaction's write footprint, recorded while the model consumes the
/// epoch stream. The oracle uses it for the no-torn-transaction probe: at
/// any snapshot where the transaction is visible, every one of its writes
/// must be reflected (and at any earlier snapshot, none).
struct TxnFootprint {
  TxnId txn_id = kInvalidTxnId;
  Timestamp commit_ts = kInvalidTimestamp;
  EpochId epoch_id = 0;
  /// (table, row key) pairs the transaction wrote, in log order.
  std::vector<std::pair<TableId, int64_t>> writes;
};

/// The model-based oracle's reference executor: a single-threaded MVCC
/// interpreter that consumes the same ShippedEpoch stream a replayer does
/// and can answer, for any (qts, table, key), the exact row a correct
/// snapshot read must return.
///
/// It is deliberately a SECOND implementation of the storage semantics:
/// where Memtable keeps deltas and folds them lazily at read time (and GC
/// folds prefixes), the model materializes the full row image eagerly at
/// apply time into a plain std::map. A fold bug in either implementation
/// surfaces as a divergence instead of cancelling out.
class ReferenceModel {
 public:
  explicit ReferenceModel(size_t num_tables);

  /// Consumes one epoch (decoded with the owning DecodeEpoch path). Epochs
  /// must arrive in epoch-id order, exactly once. Heartbeats only advance
  /// the liveness timestamp.
  Status Apply(const ShippedEpoch& epoch);

  /// Arms a fresh model from a checkpoint-bootstrapped backup instead of
  /// replaying pre-checkpoint history — the recovery oracle's counterpart
  /// of AetsReplayer::Bootstrap once truncation has dropped the early
  /// epochs from the durable log. Every row of `store` visible at
  /// `snapshot_ts` becomes a base version committed at `snapshot_ts`
  /// (exactly how Checkpointer::Restore installs the image), the liveness
  /// timestamp starts at `snapshot_ts`, and the epoch sequence is armed at
  /// `next_epoch` so Apply accepts the log tail the image does not cover.
  /// Must be called before the first Apply, on an empty model.
  Status SeedFromStore(const TableStore& store, Timestamp snapshot_ts,
                       EpochId next_epoch);

  /// The row visible at snapshot `ts`, or nullopt (never existed, or
  /// deleted at `ts`).
  std::optional<Row> VisibleRow(TableId table, int64_t key, Timestamp ts) const;

  /// All rows of `table` visible at `ts`, keyed by row key.
  std::map<int64_t, Row> RowsAt(TableId table, Timestamp ts) const;

  size_t VisibleRowCount(TableId table, Timestamp ts) const;

  size_t num_tables() const { return tables_.size(); }

  /// The largest commit timestamp applied so far (kInvalidTimestamp before
  /// the first data epoch).
  Timestamp MaxCommitTs() const { return max_commit_ts_; }

  /// Max of MaxCommitTs and every heartbeat timestamp seen — the timestamp
  /// a fully caught-up backup's global watermark converges to.
  Timestamp MaxVisibleTs() const;

  /// Every distinct commit timestamp, ascending — probe generators sample
  /// snapshot points (and boundaries +/- 1) from it.
  const std::vector<Timestamp>& CommitTimestamps() const {
    return commit_timestamps_;
  }

  const std::vector<TxnFootprint>& Footprints() const { return footprints_; }

  /// Exactness probe: every table of `store`, scanned at snapshot `ts`, must
  /// hold exactly the rows this model holds at `ts` — same keys, same column
  /// values, nothing extra. Crash-restart recovery uses it to prove the
  /// recovered backup is byte-equivalent to the reference history, not
  /// merely digest-colliding. Returns Internal with the first divergence.
  Status ExpectStoreExact(const TableStore& store, Timestamp ts) const;

 private:
  /// Full-image version: the row as it exists right after `commit_ts`.
  struct ModelVersion {
    Timestamp commit_ts;
    bool exists;
    Row image;
  };
  /// Per-row history, ascending commit_ts. Snapshot read = last version
  /// with commit_ts <= ts.
  using RowHistory = std::vector<ModelVersion>;

  const RowHistory* FindHistory(TableId table, int64_t key) const;

  std::vector<std::map<int64_t, RowHistory>> tables_;
  Timestamp max_commit_ts_ = kInvalidTimestamp;
  Timestamp max_heartbeat_ts_ = kInvalidTimestamp;
  EpochId next_epoch_ = 0;
  std::vector<Timestamp> commit_timestamps_;
  std::vector<TxnFootprint> footprints_;
};

}  // namespace sim
}  // namespace aets

#endif  // AETS_SIM_REFERENCE_MODEL_H_
