#include "aets/sim/sim_clock.h"

#include <utility>

#include "aets/common/macros.h"

namespace aets {
namespace sim {

void SimSchedule::AddTimer(std::string name, int64_t period_us, double jitter,
                           std::function<void()> fn) {
  AETS_CHECK(period_us > 0);
  AETS_CHECK(jitter >= 0.0 && jitter < 1.0);
  Timer timer;
  timer.name = std::move(name);
  timer.period_us = period_us;
  timer.jitter = jitter;
  timer.fn = std::move(fn);
  timers_.push_back(std::move(timer));
  timers_.back().next_due_us = clock_->NowMicros() + JitteredPeriod(timers_.back());
}

int64_t SimSchedule::JitteredPeriod(const Timer& timer) {
  if (timer.jitter == 0.0) return timer.period_us;
  double factor = 1.0 + timer.jitter * (2.0 * rng_.UniformDouble() - 1.0);
  int64_t period = static_cast<int64_t>(
      static_cast<double>(timer.period_us) * factor);
  return period > 0 ? period : 1;
}

int SimSchedule::NextDue() const {
  int best = -1;
  for (size_t i = 0; i < timers_.size(); ++i) {
    if (best < 0 ||
        timers_[i].next_due_us < timers_[static_cast<size_t>(best)].next_due_us) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

void SimSchedule::Fire(Timer* timer) {
  clock_->AdvanceToNanos(timer->next_due_us * 1000);
  transcript_.push_back(timer->name);
  ++fires_;
  timer->fn();
  timer->next_due_us = clock_->NowMicros() + JitteredPeriod(*timer);
}

void SimSchedule::RunUntilMicros(int64_t deadline_us) {
  for (;;) {
    int idx = NextDue();
    if (idx < 0 || timers_[static_cast<size_t>(idx)].next_due_us > deadline_us) {
      break;
    }
    Fire(&timers_[static_cast<size_t>(idx)]);
  }
  clock_->AdvanceToNanos(deadline_us * 1000);
}

void SimSchedule::Step(int n) {
  for (int i = 0; i < n; ++i) {
    int idx = NextDue();
    if (idx < 0) return;
    Fire(&timers_[static_cast<size_t>(idx)]);
  }
}

}  // namespace sim
}  // namespace aets
