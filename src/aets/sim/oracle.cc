#include "aets/sim/oracle.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "aets/common/macros.h"
#include "aets/storage/column_store.h"

namespace aets {
namespace sim {

namespace {

std::string RowToString(const Row& row) {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [col, value] : row) {
    if (!first) os << ", ";
    first = false;
    os << col << ":" << value.ToString();
  }
  os << "}";
  return os.str();
}

std::string OptRowToString(const std::optional<Row>& row) {
  return row ? RowToString(*row) : "<absent>";
}

}  // namespace

void ViolationLog::Report(std::string invariant, std::string detail) {
  total_.fetch_add(1, std::memory_order_acq_rel);
  std::lock_guard<std::mutex> lock(mu_);
  if (violations_.size() < cap_) {
    violations_.push_back({std::move(invariant), std::move(detail)});
  }
}

bool ViolationLog::empty() const { return total() == 0; }

std::vector<Violation> ViolationLog::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return violations_;
}

std::string ViolationLog::FirstInvariant() const {
  std::lock_guard<std::mutex> lock(mu_);
  return violations_.empty() ? std::string() : violations_.front().invariant;
}

std::string ViolationLog::Describe() const {
  std::ostringstream os;
  std::vector<Violation> snapshot = TakeSnapshot();
  os << total() << " violation(s)";
  for (const Violation& v : snapshot) {
    os << "\n  [" << v.invariant << "] " << v.detail;
  }
  return os.str();
}

ConsistencyOracle::ConsistencyOracle(const ReferenceModel* model,
                                     Replayer* replayer, ViolationLog* log)
    : model_(model),
      replayer_(replayer),
      log_(log),
      last_table_ts_(model->num_tables(), 0) {}

void ConsistencyOracle::RaiseGcFloor(Timestamp watermark) {
  Timestamp cur = gc_floor_.load(std::memory_order_relaxed);
  while (cur < watermark && !gc_floor_.compare_exchange_weak(
                                cur, watermark, std::memory_order_acq_rel)) {
  }
}

bool ConsistencyOracle::CompareTable(TableId table, Timestamp qts,
                                     const char* invariant) {
  if (qts < gc_floor()) return true;  // below the GC horizon: unverifiable
  // StoreForTable, not store(): under a ShardedBackup each table's versions
  // live in its owning shard's store, and a cross-shard probe must read each
  // table where it actually lives.
  const Memtable* mt = replayer_->StoreForTable(table)->GetTable(table);
  AETS_CHECK(mt != nullptr);
  std::map<int64_t, Row> got;
  mt->ScanVisible(qts, [&got](int64_t key, const Row& row) {
    got.emplace(key, row);
    return true;
  });
  std::map<int64_t, Row> want = model_->RowsAt(table, qts);
  if (got == want) return CompareColumns(table, qts, got);
  // GC may have raced past qts between the floor check and the scan, in
  // which case the divergence is an artifact, not a bug.
  if (qts < gc_floor()) return true;

  std::ostringstream os;
  os << replayer_->name() << ": table " << table << " at qts " << qts
     << " diverges from the reference model (" << got.size() << " vs "
     << want.size() << " rows)";
  size_t shown = 0;
  for (const auto& [key, row] : want) {
    auto it = got.find(key);
    if (it == got.end() || it->second != row) {
      os << "\n    key " << key << ": replayer="
         << (it == got.end() ? std::string("<absent>") : RowToString(it->second))
         << " model=" << RowToString(row);
      if (++shown >= 3) break;
    }
  }
  for (const auto& [key, row] : got) {
    if (shown >= 3) break;
    if (want.find(key) == want.end()) {
      os << "\n    key " << key << ": replayer=" << RowToString(row)
         << " model=<absent>";
      ++shown;
    }
  }
  log_->Report(invariant, os.str());
  return false;
}

bool ConsistencyOracle::CompareColumns(TableId table, Timestamp qts,
                                       const std::map<int64_t, Row>& rows) {
  const storage::ColumnStore* columns = replayer_->ColumnStoreForTable(table);
  if (columns == nullptr) return true;
  storage::ColumnSnapshot snap = columns->SnapshotAt(table, qts);
  if (!snap.valid()) return true;  // no chunk generation covers qts yet
  snap.LoadResidual();
  std::map<int64_t, Row> got;
  bool duplicate_key = false;
  snap.ScanRows([&](int64_t key, const Row& row) {
    duplicate_key = !got.emplace(key, row).second || duplicate_key;
    return true;
  });
  uint64_t col_digest = snap.Digest();
  uint64_t row_digest =
      replayer_->StoreForTable(table)->GetTable(table)->DigestAt(qts);
  if (!duplicate_key && got == rows && col_digest == row_digest) return true;
  // The residual top-up reads live version chains, so GC racing past qts
  // can fold the values it needs — an artifact, not a bug.
  if (qts < gc_floor()) return true;

  std::ostringstream os;
  os << replayer_->name() << ": columnar snapshot of table " << table
     << " at qts " << qts << " diverges from the row store (" << got.size()
     << " vs " << rows.size() << " rows, digest " << col_digest << " vs "
     << row_digest << (duplicate_key ? ", duplicate chunk/residual key" : "")
     << ")";
  size_t shown = 0;
  for (const auto& [key, row] : rows) {
    auto it = got.find(key);
    if (it == got.end() || it->second != row) {
      os << "\n    key " << key << ": column="
         << (it == got.end() ? std::string("<absent>") : RowToString(it->second))
         << " row-store=" << RowToString(row);
      if (++shown >= 3) break;
    }
  }
  for (const auto& [key, row] : got) {
    if (shown >= 3) break;
    if (rows.find(key) == rows.end()) {
      os << "\n    key " << key << ": column=" << RowToString(row)
         << " row-store=<absent>";
      ++shown;
    }
  }
  log_->Report(kInvariantColumnParity, os.str());
  return false;
}

bool ConsistencyOracle::CheckTableSnapshot(TableId table, Timestamp qts) {
  return CompareTable(table, qts, kInvariantSnapshotExact);
}

bool ConsistencyOracle::CheckWatermarks() {
  bool ok = true;
  for (TableId t = 0; t < model_->num_tables(); ++t) {
    Timestamp w = replayer_->TableVisibleTs(t);
    if (w == kInvalidTimestamp) continue;
    // Cap at the model's max visible ts: a heartbeat may legitimately push
    // the watermark past every commit, where the final state applies.
    Timestamp qts = std::min(w, model_->MaxVisibleTs());
    if (qts == kInvalidTimestamp) continue;
    ok = CompareTable(t, qts, kInvariantSnapshotExact) && ok;
  }
  Timestamp g = replayer_->GlobalVisibleTs();
  if (g != kInvalidTimestamp && model_->MaxVisibleTs() != kInvalidTimestamp) {
    Timestamp qts = std::min(g, model_->MaxVisibleTs());
    for (TableId t = 0; t < model_->num_tables(); ++t) {
      ok = CompareTable(t, qts, kInvariantSnapshotExact) && ok;
    }
  }
  return ok;
}

bool ConsistencyOracle::CheckVisibleProbe(const std::vector<TableId>& tables,
                                          Timestamp qts) {
  if (!IsVisible(*replayer_, tables, qts)) return true;  // nothing claimed
  bool ok = true;
  for (TableId t : tables) {
    ok = CompareTable(t, qts, kInvariantSnapshotExact) && ok;
  }
  return ok;
}

bool ConsistencyOracle::CheckTxnAtomicity(const TxnFootprint& txn) {
  bool ok = true;
  for (int side = 0; side < 2; ++side) {
    // side 0: at commit_ts every write is in. side 1: just before, none are.
    Timestamp qts = side == 0 ? txn.commit_ts : txn.commit_ts - 1;
    if (txn.commit_ts == kInvalidTimestamp ||
        (side == 1 && txn.commit_ts == 1)) {
      continue;
    }
    if (qts < gc_floor()) continue;
    for (const auto& [table, key] : txn.writes) {
      // Only judge what the replayer has promised: skip tables where qts is
      // not yet visible (in concurrent mode the txn may simply not have been
      // replayed). A watermark published ahead of the data — the injected
      // bug — passes this gate and is then caught by the comparison.
      if (!IsVisible(*replayer_, {table}, qts)) continue;
      std::optional<Row> got =
          replayer_->StoreForTable(table)->GetTable(table)->ReadRow(key, qts);
      std::optional<Row> want = model_->VisibleRow(table, key, qts);
      if (got == want) continue;
      if (qts < gc_floor()) continue;  // GC raced the read
      std::ostringstream os;
      os << replayer_->name() << ": txn " << txn.txn_id << " (commit_ts "
         << txn.commit_ts << ", epoch " << txn.epoch_id << ") torn at qts "
         << qts << ": table " << table << " key " << key << " replayer="
         << OptRowToString(got) << " model=" << OptRowToString(want);
      log_->Report(kInvariantTornTxn, os.str());
      ok = false;
    }
  }
  return ok;
}

bool ConsistencyOracle::ObserveMonotonicity() {
  // Both the watermark reads and the comparison against the high-water
  // record happen under one lock: reading outside it lets a prober that
  // read a stale value but locked late report a false regression (another
  // prober recorded the newer value in between). The watermarks are cheap
  // atomic loads, so holding mono_mu_ across them costs little.
  std::lock_guard<std::mutex> lock(mono_mu_);
  std::vector<Timestamp> table_ts(model_->num_tables());
  for (TableId t = 0; t < model_->num_tables(); ++t) {
    table_ts[t] = replayer_->TableVisibleTs(t);
  }
  Timestamp global = replayer_->GlobalVisibleTs();
  bool ok = true;
  for (TableId t = 0; t < model_->num_tables(); ++t) {
    if (table_ts[t] < last_table_ts_[t]) {
      std::ostringstream os;
      os << replayer_->name() << ": tg_cmt_ts of table " << t
         << " moved backwards: " << last_table_ts_[t] << " -> " << table_ts[t];
      log_->Report(kInvariantMonotonicity, os.str());
      ok = false;
    }
    last_table_ts_[t] = std::max(last_table_ts_[t], table_ts[t]);
  }
  if (global < last_global_ts_) {
    std::ostringstream os;
    os << replayer_->name() << ": global_cmt_ts moved backwards: "
       << last_global_ts_ << " -> " << global;
    log_->Report(kInvariantMonotonicity, os.str());
    ok = false;
  }
  last_global_ts_ = std::max(last_global_ts_, global);
  return ok;
}

bool ConsistencyOracle::CheckGcSafety(Timestamp horizon) {
  bool ok = true;
  Timestamp model_max = model_->MaxVisibleTs();
  if (model_max == kInvalidTimestamp) return true;
  for (TableId t = 0; t < model_->num_tables(); ++t) {
    Timestamp w = std::min(replayer_->TableVisibleTs(t), model_max);
    if (w == kInvalidTimestamp || w < horizon) continue;
    // Both ends of the surviving window: the oldest snapshot GC must keep
    // and the newest one published.
    ok = CompareTable(t, horizon, kInvariantGcSafety) && ok;
    ok = CompareTable(t, w, kInvariantGcSafety) && ok;
  }
  return ok;
}

bool ConsistencyOracle::CheckConverged() {
  bool ok = true;
  Timestamp target = model_->MaxCommitTs();
  if (target != kInvalidTimestamp &&
      replayer_->GlobalVisibleTs() < target) {
    std::ostringstream os;
    os << replayer_->name() << ": global_cmt_ts stuck at "
       << replayer_->GlobalVisibleTs() << " after drain; expected >= "
       << target;
    log_->Report(kInvariantConvergence, os.str());
    ok = false;
  }
  Timestamp final_ts = model_->MaxVisibleTs();
  if (final_ts == kInvalidTimestamp) return ok;
  for (TableId t = 0; t < model_->num_tables(); ++t) {
    ok = CompareTable(t, final_ts, kInvariantConvergence) && ok;
  }
  return ok;
}

}  // namespace sim
}  // namespace aets
