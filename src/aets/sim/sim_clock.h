#ifndef AETS_SIM_SIM_CLOCK_H_
#define AETS_SIM_SIM_CLOCK_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "aets/common/clock.h"
#include "aets/common/rng.h"

namespace aets {
namespace sim {

/// Virtual monotonic clock for deterministic simulation. Time only moves
/// when the harness advances it, so every MonotonicMicros/MonotonicNanos
/// reading taken while a SimClock is installed is a pure function of the
/// simulated schedule, not of host scheduling.
class SimClock : public ClockSource {
 public:
  explicit SimClock(int64_t start_ns = 1'000'000'000) : now_ns_(start_ns) {}

  int64_t NowNanos() const override {
    return now_ns_.load(std::memory_order_acquire);
  }
  int64_t NowMicros() const { return NowNanos() / 1000; }

  void AdvanceNanos(int64_t ns) {
    now_ns_.fetch_add(ns, std::memory_order_acq_rel);
  }
  void AdvanceMicros(int64_t us) { AdvanceNanos(us * 1000); }

  /// Moves the clock forward to `ns` (never backwards).
  void AdvanceToNanos(int64_t ns) {
    int64_t cur = now_ns_.load(std::memory_order_relaxed);
    while (cur < ns && !now_ns_.compare_exchange_weak(
                           cur, ns, std::memory_order_acq_rel)) {
    }
  }

 private:
  std::atomic<int64_t> now_ns_;
};

/// Installs a SimClock as the process-wide monotonic clock for the scope's
/// lifetime and restores the previous source on destruction.
class ScopedSimClock {
 public:
  explicit ScopedSimClock(SimClock* clock)
      : previous_(InstallClockSource(clock)) {}
  ~ScopedSimClock() { InstallClockSource(previous_); }

  ScopedSimClock(const ScopedSimClock&) = delete;
  ScopedSimClock& operator=(const ScopedSimClock&) = delete;

 private:
  const ClockSource* previous_;
};

/// Seeded, single-threaded timer wheel: the deterministic stand-in for the
/// background heartbeat/GC/watermark threads of the real system. Timers fire
/// on the caller's thread inside RunUntil/Step, in an order fully determined
/// by (seed, periods, registration order) — the per-fire jitter draws from
/// one Rng, so the interleaving of, say, GC passes against heartbeat
/// emissions replays byte-identically from the seed.
class SimSchedule {
 public:
  explicit SimSchedule(SimClock* clock, uint64_t seed)
      : clock_(clock), rng_(seed) {}

  SimSchedule(const SimSchedule&) = delete;
  SimSchedule& operator=(const SimSchedule&) = delete;

  /// Registers a periodic timer. `jitter` in [0, 1) perturbs each interval
  /// by a seeded factor in [1-jitter, 1+jitter]; the first due time is one
  /// (jittered) period from the current virtual time.
  void AddTimer(std::string name, int64_t period_us, double jitter,
                std::function<void()> fn);

  /// Fires every timer due at or before `deadline_us` (virtual time), in
  /// due-time order with registration order breaking ties, advancing the
  /// SimClock to each fire point and finally to the deadline.
  void RunUntilMicros(int64_t deadline_us);

  /// Fires the next `n` due timers (advancing virtual time to each).
  void Step(int n);

  /// Names of fired events in order — the schedule transcript tests compare
  /// for determinism.
  const std::vector<std::string>& transcript() const { return transcript_; }

  uint64_t fires() const { return fires_; }

 private:
  struct Timer {
    std::string name;
    int64_t period_us;
    double jitter;
    std::function<void()> fn;
    int64_t next_due_us;
  };

  /// Index of the earliest-due timer, ties broken by registration order;
  /// -1 when no timers exist.
  int NextDue() const;
  void Fire(Timer* timer);
  int64_t JitteredPeriod(const Timer& timer);

  SimClock* clock_;
  Rng rng_;
  std::vector<Timer> timers_;
  std::vector<std::string> transcript_;
  uint64_t fires_ = 0;
};

}  // namespace sim
}  // namespace aets

#endif  // AETS_SIM_SIM_CLOCK_H_
