#ifndef AETS_SIM_SCENARIO_H_
#define AETS_SIM_SCENARIO_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "aets/catalog/catalog.h"
#include "aets/replay/replayer.h"
#include "aets/replication/channel.h"
#include "aets/replication/fault_injection.h"
#include "aets/sim/oracle.h"

namespace aets {
namespace sim {

/// One planned write. Values are derived deterministically from the write's
/// position in the scenario, so re-recording a (possibly shrunk) spec always
/// produces the same log bytes and commit timestamps.
struct WritePlan {
  enum Kind { kInsert = 0, kUpdate = 1, kDelete = 2 };
  Kind kind = kInsert;
  TableId table = 0;
  int64_t key = 0;
};

struct TxnPlan {
  std::vector<WritePlan> writes;
};

/// One epoch boundary in the shipped stream: the transactions sealed into
/// it, optionally followed by a heartbeat epoch.
struct EpochPlan {
  std::vector<TxnPlan> txns;
  bool heartbeat_after = false;
};

enum class SimMode {
  /// Single stepper thread: ship one epoch, wait until the replayer consumed
  /// it, run the oracle between epochs. Fully deterministic — the mode the
  /// shrinker and the injected-bug acceptance test rely on.
  kLockstep,
  /// Free-running: a fault-injecting link, concurrent prober threads, and
  /// (optionally) a live GC daemon. Invariant checks stay sound under the
  /// races; the violation verdict is still seed-reproducible because the
  /// fault schedule and all probe draws are seeded.
  kConcurrent,
};

/// A complete simulation scenario: workload plan x fault plan x schedule
/// perturbation, all derived from one seed.
struct ScenarioSpec {
  uint64_t seed = 0;
  size_t num_tables = 4;
  SimMode mode = SimMode::kLockstep;
  std::vector<EpochPlan> epochs;

  /// Fault plan (kConcurrent only; the lockstep link is clean).
  FaultProfile faults;
  /// Run a GC daemon against the replayer during kConcurrent replay.
  bool with_gc = false;
  Timestamp gc_retention = 8;
  int probe_threads = 2;

  /// Shards the backup (DESIGN.md §11): with shard_count > 1 the stream is
  /// re-recorded through a sharded LogShipper (hash shard map over the
  /// catalog), one replayer per shard is built behind a ShardedBackup, and
  /// the oracle probes cross-shard snapshots through the facade. The
  /// factory is invoked once per shard, in shard order 0..N-1 (a test that
  /// must perturb one specific shard can count invocations). 1 = the
  /// classic single-backup harness.
  int shard_count = 1;
};

/// Builds a replayer under test on the given catalog + channel (same shape
/// as the chaos suite's specs). The factory also decides any injected fault
/// (e.g. AetsOptions::test_tg_publish_skew) — the shrinker re-runs it on
/// every candidate.
using ReplayerFactory =
    std::function<std::unique_ptr<Replayer>(const Catalog*, EpochChannel*)>;

struct ScenarioResult {
  uint64_t total_violations = 0;
  /// First violation's invariant name ("" when clean) — the shrinker keeps a
  /// candidate only when this matches the original failure.
  std::string first_invariant;
  std::vector<Violation> violations;

  bool ok() const { return total_violations == 0; }
};

/// Derives a full scenario from `seed` (workload shape, epoch boundaries,
/// heartbeat placement, fault probabilities, GC and probe plan). The mode
/// defaults to kLockstep; callers flip `mode` to exercise the concurrent
/// harness with the same workload.
ScenarioSpec GenerateScenario(uint64_t seed);

/// Records the scenario's log stream through a real PrimaryDb + LogShipper,
/// builds the reference model, replays the stream into `factory`'s replayer
/// under the scenario's mode, and returns every invariant violation the
/// oracle found. Deterministic for kLockstep specs: identical specs yield
/// identical results. With spec.shard_count > 1 the replay side runs N
/// shards behind a ShardedBackup (the reference model still consumes the
/// unsharded stream — the ground truth is shard-free by construction).
ScenarioResult RunScenario(const ScenarioSpec& spec,
                           const ReplayerFactory& factory);

/// Greedy delta-debugging shrink: repeatedly drops epochs, then
/// transactions, then single writes, keeping a removal only if the scenario
/// still fails with the same first invariant. Returns the minimal failing
/// spec (== `spec` if it does not fail). Deterministic. Intended for
/// kLockstep specs.
ScenarioSpec ShrinkScenario(const ScenarioSpec& spec,
                            const ReplayerFactory& factory);

/// Stable human-readable rendering (printed as the minimal repro; also
/// compared verbatim by the shrink-determinism test).
std::string DescribeScenario(const ScenarioSpec& spec);

size_t CountTxns(const ScenarioSpec& spec);
size_t CountWrites(const ScenarioSpec& spec);

}  // namespace sim
}  // namespace aets

#endif  // AETS_SIM_SCENARIO_H_
