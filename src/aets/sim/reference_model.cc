#include "aets/sim/reference_model.h"

#include <algorithm>
#include <utility>

#include "aets/common/macros.h"

namespace aets {
namespace sim {

ReferenceModel::ReferenceModel(size_t num_tables) : tables_(num_tables) {}

Status ReferenceModel::Apply(const ShippedEpoch& shipped) {
  if (shipped.epoch_id != next_epoch_) {
    return Status::InvalidArgument(
        "model epochs must be applied in order: expected " +
        std::to_string(next_epoch_) + ", got " +
        std::to_string(shipped.epoch_id));
  }
  ++next_epoch_;
  if (shipped.is_heartbeat()) {
    max_heartbeat_ts_ = std::max(max_heartbeat_ts_, shipped.heartbeat_ts);
    return Status::OK();
  }
  auto epoch = DecodeEpoch(shipped);
  if (!epoch.ok()) return epoch.status();

  for (const TxnLog& txn : epoch->txns) {
    TxnFootprint footprint;
    footprint.txn_id = txn.txn_id;
    footprint.commit_ts = txn.commit_ts;
    footprint.epoch_id = shipped.epoch_id;
    for (const LogRecord& record : txn.records) {
      if (!record.is_dml()) continue;
      if (record.table_id >= tables_.size()) {
        return Status::Corruption("model: DML for unknown table " +
                                  std::to_string(record.table_id));
      }
      footprint.writes.emplace_back(record.table_id, record.row_key);
      RowHistory& history = tables_[record.table_id][record.row_key];
      // The image after this operation: start from the row as the previous
      // version left it (matching MemNode's fold-from-the-chain-start read).
      ModelVersion version;
      version.commit_ts = txn.commit_ts;
      if (!history.empty() && history.back().exists) {
        version.image = history.back().image;
      }
      if (record.type == LogRecordType::kDelete) {
        version.exists = false;
        version.image.clear();
      } else {
        // Insert and update share upsert semantics: the delta's columns land
        // on whatever the row held (updates to absent rows create them, the
        // replay path has no before-image to consult).
        version.exists = true;
        for (const ColumnValue& cv : record.values) {
          version.image.Set(cv.column_id, cv.value);
        }
      }
      // A transaction may write the same row several times; each record is
      // one version in chain order, all sharing the commit timestamp.
      history.push_back(std::move(version));
    }
    if (max_commit_ts_ == kInvalidTimestamp ||
        txn.commit_ts > max_commit_ts_) {
      commit_timestamps_.push_back(txn.commit_ts);
    }
    max_commit_ts_ = std::max(max_commit_ts_, txn.commit_ts);
    footprints_.push_back(std::move(footprint));
  }
  return Status::OK();
}

Status ReferenceModel::SeedFromStore(const TableStore& store,
                                     Timestamp snapshot_ts,
                                     EpochId next_epoch) {
  if (store.num_tables() != tables_.size()) {
    return Status::InvalidArgument("model seed: table count mismatch");
  }
  if (next_epoch_ != 0 || max_commit_ts_ != kInvalidTimestamp ||
      max_heartbeat_ts_ != kInvalidTimestamp) {
    return Status::InvalidArgument("model seed: model is not fresh");
  }
  if (snapshot_ts == kInvalidTimestamp) {
    return Status::InvalidArgument("model seed: invalid snapshot timestamp");
  }
  for (size_t t = 0; t < tables_.size(); ++t) {
    auto& table = tables_[t];
    store.GetTable(static_cast<TableId>(t))
        ->ScanVisible(snapshot_ts, [&](int64_t key, const Row& row) {
          ModelVersion version;
          version.commit_ts = snapshot_ts;
          version.exists = true;
          version.image = row;
          table[key].push_back(std::move(version));
          return true;
        });
  }
  // The image is the state AT snapshot_ts: treat it like a heartbeat there,
  // not a commit — seeded rows are not transactions the probes may sample.
  max_heartbeat_ts_ = snapshot_ts;
  next_epoch_ = next_epoch;
  return Status::OK();
}

Timestamp ReferenceModel::MaxVisibleTs() const {
  return std::max(max_commit_ts_, max_heartbeat_ts_);
}

const ReferenceModel::RowHistory* ReferenceModel::FindHistory(
    TableId table, int64_t key) const {
  AETS_CHECK(table < tables_.size());
  auto it = tables_[table].find(key);
  if (it == tables_[table].end()) return nullptr;
  return &it->second;
}

std::optional<Row> ReferenceModel::VisibleRow(TableId table, int64_t key,
                                              Timestamp ts) const {
  const RowHistory* history = FindHistory(table, key);
  if (history == nullptr) return std::nullopt;
  // Last version with commit_ts <= ts.
  auto it = std::upper_bound(
      history->begin(), history->end(), ts,
      [](Timestamp t, const ModelVersion& v) { return t < v.commit_ts; });
  if (it == history->begin()) return std::nullopt;
  --it;
  if (!it->exists) return std::nullopt;
  return it->image;
}

std::map<int64_t, Row> ReferenceModel::RowsAt(TableId table,
                                              Timestamp ts) const {
  AETS_CHECK(table < tables_.size());
  std::map<int64_t, Row> rows;
  for (const auto& [key, history] : tables_[table]) {
    (void)history;
    if (auto row = VisibleRow(table, key, ts)) {
      rows.emplace(key, std::move(*row));
    }
  }
  return rows;
}

size_t ReferenceModel::VisibleRowCount(TableId table, Timestamp ts) const {
  AETS_CHECK(table < tables_.size());
  size_t n = 0;
  for (const auto& [key, history] : tables_[table]) {
    (void)history;
    if (VisibleRow(table, key, ts)) ++n;
  }
  return n;
}

Status ReferenceModel::ExpectStoreExact(const TableStore& store,
                                        Timestamp ts) const {
  if (store.num_tables() != tables_.size()) {
    return Status::InvalidArgument("exactness probe: table count mismatch");
  }
  for (size_t t = 0; t < tables_.size(); ++t) {
    std::map<int64_t, Row> got;
    store.GetTable(static_cast<TableId>(t))
        ->ScanVisible(ts, [&got](int64_t key, const Row& row) {
          got.emplace(key, row);
          return true;
        });
    std::map<int64_t, Row> want = RowsAt(static_cast<TableId>(t), ts);
    if (got == want) continue;
    // Name the first divergent key so a failed recovery run is debuggable
    // from the error alone.
    for (const auto& [key, row] : want) {
      auto it = got.find(key);
      if (it == got.end()) {
        return Status::Internal(
            "exactness probe: table " + std::to_string(t) + " key " +
            std::to_string(key) + " missing from store at ts " +
            std::to_string(ts));
      }
      if (!(it->second == row)) {
        return Status::Internal("exactness probe: table " + std::to_string(t) +
                                " key " + std::to_string(key) +
                                " differs at ts " + std::to_string(ts));
      }
    }
    for (const auto& [key, row] : got) {
      (void)row;
      if (want.find(key) == want.end()) {
        return Status::Internal(
            "exactness probe: table " + std::to_string(t) + " key " +
            std::to_string(key) + " present in store but not in model at ts " +
            std::to_string(ts));
      }
    }
    return Status::Internal("exactness probe: table " + std::to_string(t) +
                            " diverges at ts " + std::to_string(ts));
  }
  return Status::OK();
}

}  // namespace sim
}  // namespace aets
