#ifndef AETS_SIM_ORACLE_H_
#define AETS_SIM_ORACLE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "aets/replay/replayer.h"
#include "aets/sim/reference_model.h"

namespace aets {
namespace sim {

/// One invariant violation. `invariant` is a stable machine-matchable name
/// (the shrinker matches on it); `detail` is the human-readable evidence.
struct Violation {
  std::string invariant;
  std::string detail;
};

/// Invariant names reported by the oracle.
inline constexpr char kInvariantSnapshotExact[] = "snapshot-exactness";
inline constexpr char kInvariantMonotonicity[] = "watermark-monotonicity";
inline constexpr char kInvariantTornTxn[] = "torn-transaction";
inline constexpr char kInvariantGcSafety[] = "gc-reclaimed-visible-version";
inline constexpr char kInvariantColumnParity[] = "column-row-divergence";
inline constexpr char kInvariantConvergence[] = "final-convergence";
inline constexpr char kInvariantReplayerError[] = "replayer-error";

/// Thread-safe bounded collector shared by the oracle and its probe
/// threads. Keeps the first `cap` violations (the interesting one is almost
/// always the first).
class ViolationLog {
 public:
  explicit ViolationLog(size_t cap = 16) : cap_(cap) {}

  void Report(std::string invariant, std::string detail);

  bool empty() const;
  size_t total() const { return total_.load(std::memory_order_acquire); }
  std::vector<Violation> TakeSnapshot() const;
  /// The first violation's invariant name, or "" when clean.
  std::string FirstInvariant() const;
  std::string Describe() const;

 private:
  mutable std::mutex mu_;
  std::vector<Violation> violations_;
  std::atomic<uint64_t> total_{0};
  size_t cap_;
};

/// The snapshot-consistency oracle: checks a live replayer against the
/// fully-built ReferenceModel. All checks are sound under concurrency —
/// they only rely on state the published watermarks promise is immutable —
/// so probe threads may call them while replay, heartbeats, and GC race
/// underneath. `gc_floor` is the largest GC watermark ever passed to the
/// store: snapshots below it are legitimately folded, so value probes stay
/// at or above it.
class ConsistencyOracle {
 public:
  ConsistencyOracle(const ReferenceModel* model, Replayer* replayer,
                    ViolationLog* log);

  /// Raises the floor below which snapshot probes are invalid (call from
  /// the GC pass hook with the truncation watermark).
  void RaiseGcFloor(Timestamp watermark);
  Timestamp gc_floor() const {
    return gc_floor_.load(std::memory_order_acquire);
  }

  /// Snapshot exactness: `table`'s full visible row set at `qts` equals the
  /// model's. Precondition: qts <= TableVisibleTs(table) (or the global
  /// watermark) at some point before the call, and qts >= gc_floor.
  bool CheckTableSnapshot(TableId table, Timestamp qts);

  /// Per-table and global watermark self-consistency: reads each published
  /// watermark w and verifies the state the watermark promises (every
  /// transaction <= w applied on that table) against the model at w. This
  /// is the probe that catches a watermark published ahead of the data.
  bool CheckWatermarks();

  /// Algorithm-3 probe: if the replayer claims `qts` visible on `tables`,
  /// their snapshot row sets must match the model exactly.
  bool CheckVisibleProbe(const std::vector<TableId>& tables, Timestamp qts);

  /// No-torn-transaction probe for one recorded footprint: once visible,
  /// all of the transaction's writes are reflected at qts >= commit_ts;
  /// at qts == commit_ts - 1 none of them are (reads still match the model,
  /// which excludes the transaction).
  bool CheckTxnAtomicity(const TxnFootprint& txn);

  /// Watermark monotonicity: per-table and global watermarks never move
  /// backwards across calls. Call repeatedly (probe threads poll it).
  bool ObserveMonotonicity();

  /// GC-never-reclaims-visible-versions: after a GC pass truncated below
  /// `horizon`, every snapshot at or above it that the watermarks promise
  /// must still read exactly (call from the GC post-pass hook).
  bool CheckGcSafety(Timestamp horizon);

  /// Terminal check after the stream is fully replayed: the global
  /// watermark reached the model's max visible timestamp and every table's
  /// final row set is exact.
  bool CheckConverged();

 private:
  /// Compares replayer vs model rows of `table` at `qts`; reports with
  /// `invariant` on mismatch. Skips (returns true) when GC raced past qts.
  /// When the row scan is exact and the replayer maintains a columnar
  /// projection of `table`, also runs the column-parity probe below.
  bool CompareTable(TableId table, Timestamp qts, const char* invariant);

  /// Column-parity probe (DESIGN.md §13): the columnar snapshot at `qts`
  /// (chunks minus tombstones plus the residual top-up) must yield exactly
  /// `rows` — the row-store ScanVisible result — and the same XOR digest as
  /// Memtable::DigestAt(qts). Skips when no generation covers qts or GC
  /// raced past it.
  bool CompareColumns(TableId table, Timestamp qts,
                      const std::map<int64_t, Row>& rows);

  const ReferenceModel* model_;
  Replayer* replayer_;
  ViolationLog* log_;
  std::atomic<Timestamp> gc_floor_{0};

  std::mutex mono_mu_;
  std::vector<Timestamp> last_table_ts_;
  Timestamp last_global_ts_ = 0;
};

}  // namespace sim
}  // namespace aets

#endif  // AETS_SIM_ORACLE_H_
