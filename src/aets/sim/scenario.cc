#include "aets/sim/scenario.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>
#include <utility>

#include "aets/catalog/shard_map.h"
#include "aets/common/macros.h"
#include "aets/common/rng.h"
#include "aets/primary/primary_db.h"
#include "aets/replay/replayer_base.h"
#include "aets/replay/sharded_backup.h"
#include "aets/replication/epoch_source.h"
#include "aets/replication/log_shipper.h"
#include "aets/sim/reference_model.h"
#include "aets/storage/gc_daemon.h"

namespace aets {
namespace sim {

namespace {

/// The recorded log stream plus the catalog it was recorded against (the
/// replayer under test is built on the same catalog). With sharding, the
/// per-shard sub-epoch streams ride along (index-aligned with `epochs`:
/// entry i of every stream carries the same epoch id).
struct RecordedStream {
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<ShardMap> shard_map;  // set when spec.shard_count > 1
  std::vector<ShippedEpoch> epochs;     // the unsharded (reference) stream
  std::vector<std::vector<ShippedEpoch>> shard_epochs;  // one per shard
};

/// Drives the scenario's transactions and epoch boundaries into one
/// PrimaryDb + LogShipper pair. Deterministic given fresh instances: the
/// write values and commit timestamps depend only on plan order.
void ExecuteWorkload(const ScenarioSpec& spec, PrimaryDb* db,
                     LogShipper* shipper) {
  int64_t seq = 0;
  for (const EpochPlan& ep : spec.epochs) {
    for (const TxnPlan& tp : ep.txns) {
      if (tp.writes.empty()) continue;  // PrimaryDb rejects empty txns
      PrimaryTxn txn = db->Begin();
      for (const WritePlan& w : tp.writes) {
        ++seq;
        switch (w.kind) {
          case WritePlan::kInsert: {
            std::string sval = "v";
            sval += std::to_string(seq);
            txn.Insert(w.table, w.key,
                       {{0, Value(seq)}, {1, Value(std::move(sval))}});
            break;
          }
          case WritePlan::kUpdate:
            txn.Update(w.table, w.key, {{0, Value(seq * 1000)}});
            break;
          case WritePlan::kDelete:
            txn.Delete(w.table, w.key);
            break;
        }
      }
      AETS_CHECK(db->Commit(std::move(txn)).ok());
    }
    shipper->FlushEpoch();
    if (ep.heartbeat_after) shipper->ShipHeartbeat(db->AcquireHeartbeatTs());
  }
  shipper->Finish();
}

/// Executes the scenario's workload on a real PrimaryDb and captures the
/// shipped epoch stream. Fully deterministic: a fresh LogicalClock assigns
/// commit timestamps 1, 2, 3, ... in plan order, write values are a pure
/// function of the write's global sequence number, and epoch boundaries sit
/// exactly where the plan says (FlushEpoch/ShipHeartbeat, not size or time
/// triggers). Re-recording a shrunk spec therefore yields a stream whose
/// remaining transactions are byte-identical in content.
///
/// Sharded specs record TWICE — once unsharded (the reference stream the
/// ground-truth model consumes) and once through a sharded shipper for the
/// per-shard streams. Determinism makes the two passes agree on every commit
/// timestamp, so the sharded replay is checked against exactly the history
/// the unsharded stream describes.
RecordedStream RecordScenario(const ScenarioSpec& spec) {
  RecordedStream out;
  out.catalog = std::make_unique<Catalog>();
  for (size_t t = 0; t < spec.num_tables; ++t) {
    std::string table_name = "t";
    table_name += std::to_string(t);
    AETS_CHECK(out.catalog
                   ->RegisterTable(table_name,
                                   Schema::Of({{"a", ColumnType::kInt64},
                                               {"b", ColumnType::kString}}))
                   .ok());
  }
  {
    LogicalClock clock;
    PrimaryDb db(out.catalog.get(), &clock);
    // Epoch size far above any plan so only FlushEpoch seals; retention wide
    // enough that nothing is ever evicted.
    LogShipper shipper(/*epoch_size=*/1u << 20,
                       /*retention_capacity=*/2 * spec.epochs.size() + 8);
    EpochChannel recorder(/*capacity=*/0);  // unbounded
    shipper.AttachChannel(&recorder);
    db.SetCommitSink(
        [&shipper](TxnLog txn) { shipper.OnCommit(std::move(txn)); });
    ExecuteWorkload(spec, &db, &shipper);
    while (auto epoch = recorder.TryReceive()) {
      out.epochs.push_back(std::move(*epoch));
    }
  }
  if (spec.shard_count > 1) {
    out.shard_map = std::make_unique<ShardMap>(
        ShardMap::Hash(spec.num_tables, spec.shard_count));
    LogicalClock clock;
    PrimaryDb db(out.catalog.get(), &clock);
    LogShipper shipper(/*epoch_size=*/1u << 20,
                       /*retention_capacity=*/2 * spec.epochs.size() + 8);
    shipper.SetShardMap(out.shard_map.get());
    std::vector<std::unique_ptr<EpochChannel>> recorders;
    for (int s = 0; s < spec.shard_count; ++s) {
      recorders.push_back(std::make_unique<EpochChannel>(/*capacity=*/0));
      shipper.AttachShardChannel(s, recorders.back().get());
    }
    db.SetCommitSink(
        [&shipper](TxnLog txn) { shipper.OnCommit(std::move(txn)); });
    ExecuteWorkload(spec, &db, &shipper);
    out.shard_epochs.resize(static_cast<size_t>(spec.shard_count));
    for (int s = 0; s < spec.shard_count; ++s) {
      auto& stream = out.shard_epochs[static_cast<size_t>(s)];
      while (auto epoch = recorders[static_cast<size_t>(s)]->TryReceive()) {
        stream.push_back(std::move(*epoch));
      }
      // Every lane carries the full epoch id sequence (synthetic heartbeats
      // fill untouched shards), so the streams must be index-aligned.
      AETS_CHECK_MSG(stream.size() == out.epochs.size(),
                     "sharded record out of step with the reference stream");
    }
  }
  return out;
}

/// EpochSource over the recorded stream: the simulation's stand-in for the
/// shipper's retention buffer. Never evicts, so any loss the fault channel
/// inflicts is recoverable and replayer errors always mean a real bug.
class RecordedSource : public EpochSource {
 public:
  explicit RecordedSource(const std::vector<ShippedEpoch>* epochs)
      : epochs_(epochs) {}

  std::optional<ShippedEpoch> FetchEpoch(EpochId id) override {
    if (id >= epochs_->size()) return std::nullopt;
    return (*epochs_)[id];
  }
  EpochId NextEpochId() const override { return epochs_->size(); }

 private:
  const std::vector<ShippedEpoch>* epochs_;
};

void ReportReplayerError(Replayer* replayer, ViolationLog* log) {
  auto* base = dynamic_cast<ReplayerBase*>(replayer);
  if (base != nullptr && !base->error().ok()) {
    log->Report(kInvariantReplayerError,
                replayer->name() + ": " + base->error().ToString());
  }
}

bool ReplayerErrored(Replayer* replayer) {
  auto* base = dynamic_cast<ReplayerBase*>(replayer);
  return base != nullptr && !base->error().ok();
}

std::vector<TableId> RandomTableSet(Rng* rng, size_t num_tables) {
  int64_t max_pick = std::min<int64_t>(3, static_cast<int64_t>(num_tables));
  int64_t k = rng->UniformInt(1, max_pick);
  std::vector<TableId> tables;
  tables.reserve(static_cast<size_t>(k));
  for (int64_t i = 0; i < k; ++i) {
    tables.push_back(static_cast<TableId>(
        rng->UniformInt(0, static_cast<int64_t>(num_tables) - 1)));
  }
  return tables;
}

/// Final-state verification shared by both modes: convergence plus a sweep
/// of snapshot-exactness probes over the commit-timestamp history.
void VerifyFinalState(const ReferenceModel& model, ConsistencyOracle* oracle) {
  oracle->ObserveMonotonicity();
  oracle->CheckConverged();
  const std::vector<Timestamp>& cts = model.CommitTimestamps();
  size_t stride = cts.size() > 64 ? cts.size() / 64 + 1 : 1;
  for (size_t i = 0; i < cts.size(); i += stride) {
    for (TableId t = 0; t < model.num_tables(); ++t) {
      oracle->CheckTableSnapshot(t, cts[i]);
    }
  }
  for (const TxnFootprint& fp : model.Footprints()) {
    oracle->CheckTxnAtomicity(fp);
  }
}

/// Lockstep mode: ship one epoch, wait until the replayer consumed it (via
/// the data/heartbeat counters — next_expected_epoch advances *before*
/// ProcessEpoch runs, so it cannot serve as a consumption barrier), then run
/// the oracle. This is the deterministic mode: every check sees exactly the
/// same state on every run of the same spec.
void RunLockstep(const ScenarioSpec& spec, const RecordedStream& stream,
                 const ReferenceModel& model, const ReplayerFactory& factory,
                 ViolationLog* log) {
  EpochChannel channel(/*capacity=*/0);
  std::unique_ptr<Replayer> replayer = factory(stream.catalog.get(), &channel);
  ConsistencyOracle oracle(&model, replayer.get(), log);
  AETS_CHECK(replayer->Start().ok());

  Rng probe_rng(spec.seed ^ 0x5DEECE66Dull);
  uint64_t data_sent = 0;
  uint64_t hb_sent = 0;
  bool stalled = false;
  for (const ShippedEpoch& epoch : stream.epochs) {
    if (epoch.is_heartbeat()) {
      ++hb_sent;
    } else {
      ++data_sent;
    }
    AETS_CHECK(channel.Send(epoch));
    auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (replayer->stats().epochs.load(std::memory_order_acquire) <
               data_sent ||
           replayer->stats().heartbeats.load(std::memory_order_acquire) <
               hb_sent) {
      if (ReplayerErrored(replayer.get()) ||
          std::chrono::steady_clock::now() > deadline) {
        stalled = true;
        break;
      }
      std::this_thread::yield();
    }
    if (stalled) {
      log->Report(kInvariantReplayerError,
                  replayer->name() + ": epoch " +
                      std::to_string(epoch.epoch_id) +
                      " was never consumed (stall or latched error)");
      break;
    }
    // Between-epoch checks — the window where a watermark published ahead
    // of its data (the injected off-by-one) is observable.
    oracle.ObserveMonotonicity();
    oracle.CheckWatermarks();
    for (const TxnFootprint& fp : model.Footprints()) {
      if (fp.epoch_id == epoch.epoch_id) oracle.CheckTxnAtomicity(fp);
    }
    const std::vector<Timestamp>& cts = model.CommitTimestamps();
    if (!cts.empty()) {
      for (int p = 0; p < 2; ++p) {
        Timestamp qts = cts[static_cast<size_t>(probe_rng.UniformInt(
            0, static_cast<int64_t>(cts.size()) - 1))];
        oracle.CheckVisibleProbe(RandomTableSet(&probe_rng, spec.num_tables),
                                 qts);
      }
    }
  }
  channel.Close();
  replayer->Stop();
  ReportReplayerError(replayer.get(), log);
  if (!stalled && !ReplayerErrored(replayer.get())) {
    VerifyFinalState(model, &oracle);
  }
}

/// Concurrent mode: a fault-injecting link (seeded), prober threads hammering
/// the oracle while replay runs, and optionally a live GC daemon whose pass
/// hooks feed the oracle's GC horizon. Checks are sound under the races; the
/// fault schedule and all probe draws derive from the scenario seed.
void RunConcurrent(const ScenarioSpec& spec, const RecordedStream& stream,
                   const ReferenceModel& model, const ReplayerFactory& factory,
                   ViolationLog* log) {
  FaultInjectingChannel channel(spec.faults, /*capacity=*/4096);
  std::unique_ptr<Replayer> replayer = factory(stream.catalog.get(), &channel);
  RecordedSource source(&stream.epochs);
  replayer->SetEpochSource(&source);
  if (auto* base = dynamic_cast<ReplayerBase*>(replayer.get())) {
    ReplayRecoveryOptions fast;
    fast.reorder_window_pauses = 256;
    fast.max_retries = 16;
    fast.max_pending = 4096;
    base->SetRecoveryOptions(fast);
  }
  ConsistencyOracle oracle(&model, replayer.get(), log);

  std::unique_ptr<GcDaemon> gc;
  if (spec.with_gc) {
    Replayer* rp = replayer.get();
    gc = std::make_unique<GcDaemon>(
        rp->store(), [rp] { return rp->GlobalVisibleTs(); },
        spec.gc_retention, /*interval_us=*/500);
    gc->SetPrePassHook(
        [&oracle](Timestamp horizon) { oracle.RaiseGcFloor(horizon); });
    gc->SetPostPassHook([&oracle](Timestamp horizon, size_t /*reclaimed*/) {
      oracle.CheckGcSafety(horizon);
    });
  }

  AETS_CHECK(replayer->Start().ok());
  if (gc) gc->Start();

  std::atomic<bool> done{false};
  std::vector<std::thread> probers;
  for (int p = 0; p < spec.probe_threads; ++p) {
    probers.emplace_back([&, p] {
      Rng rng(spec.seed * 1315423911ull + static_cast<uint64_t>(p) + 1);
      const std::vector<Timestamp>& cts = model.CommitTimestamps();
      const std::vector<TxnFootprint>& fps = model.Footprints();
      while (!done.load(std::memory_order_acquire)) {
        oracle.ObserveMonotonicity();
        if (!cts.empty()) {
          Timestamp qts = cts[static_cast<size_t>(
              rng.UniformInt(0, static_cast<int64_t>(cts.size()) - 1))];
          oracle.CheckVisibleProbe(RandomTableSet(&rng, spec.num_tables), qts);
        }
        if (!fps.empty()) {
          oracle.CheckTxnAtomicity(fps[static_cast<size_t>(
              rng.UniformInt(0, static_cast<int64_t>(fps.size()) - 1))]);
        }
        std::this_thread::yield();
      }
    });
  }

  for (const ShippedEpoch& epoch : stream.epochs) {
    channel.Send(epoch);  // faults may silently drop; the NACK path recovers
  }
  channel.Close();
  replayer->Stop();
  if (gc) gc->Stop();
  done.store(true, std::memory_order_release);
  for (std::thread& t : probers) t.join();

  ReportReplayerError(replayer.get(), log);
  if (!ReplayerErrored(replayer.get())) {
    VerifyFinalState(model, &oracle);
  }
}

/// Builds the N shard replayers (factory called in shard order) behind the
/// ShardedBackup facade, wiring channel s to shard s.
std::unique_ptr<ShardedBackup> BuildShardedBackup(
    const RecordedStream& stream, const ReplayerFactory& factory,
    const std::vector<EpochChannel*>& channels) {
  std::vector<std::unique_ptr<Replayer>> shards;
  shards.reserve(channels.size());
  for (EpochChannel* channel : channels) {
    shards.push_back(factory(stream.catalog.get(), channel));
  }
  return std::make_unique<ShardedBackup>(stream.shard_map.get(),
                                         std::move(shards));
}

bool AnyShardErrored(ShardedBackup* backup) {
  for (int s = 0; s < backup->num_shards(); ++s) {
    if (ReplayerErrored(backup->shard(s))) return true;
  }
  return false;
}

/// Sharded lockstep: ship epoch i's sub-epoch to every shard, wait until
/// every shard consumed its sub-epoch (some as data, some as synthetic
/// heartbeats), then run the cross-shard oracle checks through the facade —
/// the window where a coordinator promising more than the slowest shard
/// replayed would serve a torn cross-shard snapshot.
void RunShardedLockstep(const ScenarioSpec& spec, const RecordedStream& stream,
                        const ReferenceModel& model,
                        const ReplayerFactory& factory, ViolationLog* log) {
  const size_t n = static_cast<size_t>(spec.shard_count);
  std::vector<std::unique_ptr<EpochChannel>> channels;
  std::vector<EpochChannel*> chans;
  for (size_t s = 0; s < n; ++s) {
    channels.push_back(std::make_unique<EpochChannel>(/*capacity=*/0));
    chans.push_back(channels.back().get());
  }
  std::unique_ptr<ShardedBackup> backup =
      BuildShardedBackup(stream, factory, chans);
  ConsistencyOracle oracle(&model, backup.get(), log);
  AETS_CHECK(backup->Start().ok());

  Rng probe_rng(spec.seed ^ 0x5DEECE66Dull);
  std::vector<uint64_t> data_sent(n, 0);
  std::vector<uint64_t> hb_sent(n, 0);
  bool stalled = false;
  for (size_t i = 0; i < stream.epochs.size() && !stalled; ++i) {
    for (size_t s = 0; s < n; ++s) {
      const ShippedEpoch& sub = stream.shard_epochs[s][i];
      if (sub.is_heartbeat()) {
        ++hb_sent[s];
      } else {
        ++data_sent[s];
      }
      AETS_CHECK(chans[s]->Send(sub));
    }
    auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
    for (size_t s = 0; s < n && !stalled; ++s) {
      const ReplayStats& st = backup->shard(static_cast<int>(s))->stats();
      while (st.epochs.load(std::memory_order_acquire) < data_sent[s] ||
             st.heartbeats.load(std::memory_order_acquire) < hb_sent[s]) {
        if (AnyShardErrored(backup.get()) ||
            std::chrono::steady_clock::now() > deadline) {
          stalled = true;
          break;
        }
        std::this_thread::yield();
      }
    }
    if (stalled) {
      log->Report(kInvariantReplayerError,
                  backup->name() + ": epoch " +
                      std::to_string(stream.epochs[i].epoch_id) +
                      " was never consumed on some shard (stall or latched "
                      "error)");
      break;
    }
    oracle.ObserveMonotonicity();
    oracle.CheckWatermarks();
    for (const TxnFootprint& fp : model.Footprints()) {
      if (fp.epoch_id == stream.epochs[i].epoch_id) {
        oracle.CheckTxnAtomicity(fp);
      }
    }
    const std::vector<Timestamp>& cts = model.CommitTimestamps();
    if (!cts.empty()) {
      for (int p = 0; p < 2; ++p) {
        Timestamp qts = cts[static_cast<size_t>(probe_rng.UniformInt(
            0, static_cast<int64_t>(cts.size()) - 1))];
        oracle.CheckVisibleProbe(RandomTableSet(&probe_rng, spec.num_tables),
                                 qts);
      }
      // Pinned cross-shard snapshot: everything at or below the handle's
      // timestamp must read exactly on every table, whichever shard owns it.
      SnapshotHandle snap = backup->coordinator().AcquireSnapshot();
      if (snap.ts() != kInvalidTimestamp) {
        Timestamp qts = std::min(snap.ts(), model.MaxVisibleTs());
        for (TableId t = 0; t < model.num_tables(); ++t) {
          oracle.CheckTableSnapshot(t, qts);
        }
      }
    }
  }
  for (auto& channel : channels) channel->Close();
  backup->Stop();
  for (int s = 0; s < backup->num_shards(); ++s) {
    ReportReplayerError(backup->shard(s), log);
  }
  if (!stalled && !AnyShardErrored(backup.get())) {
    VerifyFinalState(model, &oracle);
  }
}

/// Sharded concurrent: one fault-injecting link per shard (each lane gets
/// its own seeded fault schedule), per-shard NACK sources, probers pinning
/// cross-shard snapshots while replay and (optionally) per-shard GC race
/// underneath. GC prunes against the coordinator's GcHorizon — the global
/// safe frontier min the oldest pinned snapshot — never a single shard's
/// own watermark.
void RunShardedConcurrent(const ScenarioSpec& spec,
                          const RecordedStream& stream,
                          const ReferenceModel& model,
                          const ReplayerFactory& factory, ViolationLog* log) {
  const size_t n = static_cast<size_t>(spec.shard_count);
  std::vector<std::unique_ptr<FaultInjectingChannel>> channels;
  std::vector<EpochChannel*> chans;
  for (size_t s = 0; s < n; ++s) {
    FaultProfile faults = spec.faults;
    faults.seed = spec.faults.seed + 0x9E3779B97F4A7C15ull * (s + 1);
    channels.push_back(
        std::make_unique<FaultInjectingChannel>(faults, /*capacity=*/4096));
    chans.push_back(channels.back().get());
  }
  std::unique_ptr<ShardedBackup> backup =
      BuildShardedBackup(stream, factory, chans);
  std::vector<std::unique_ptr<RecordedSource>> sources;
  for (size_t s = 0; s < n; ++s) {
    sources.push_back(std::make_unique<RecordedSource>(&stream.shard_epochs[s]));
    backup->SetShardEpochSource(static_cast<int>(s), sources.back().get());
    if (auto* base = dynamic_cast<ReplayerBase*>(
            backup->shard(static_cast<int>(s)))) {
      ReplayRecoveryOptions fast;
      fast.reorder_window_pauses = 256;
      fast.max_retries = 16;
      fast.max_pending = 4096;
      base->SetRecoveryOptions(fast);
    }
  }
  ConsistencyOracle oracle(&model, backup.get(), log);

  std::vector<std::unique_ptr<GcDaemon>> gcs;
  if (spec.with_gc) {
    GlobalSnapshotCoordinator* coordinator = &backup->coordinator();
    for (size_t s = 0; s < n; ++s) {
      auto gc = std::make_unique<GcDaemon>(
          backup->shard(static_cast<int>(s))->store(),
          [coordinator] { return coordinator->GcHorizon(); },
          spec.gc_retention, /*interval_us=*/500);
      gc->SetPrePassHook(
          [&oracle](Timestamp horizon) { oracle.RaiseGcFloor(horizon); });
      gc->SetPostPassHook([&oracle](Timestamp horizon, size_t /*reclaimed*/) {
        oracle.CheckGcSafety(horizon);
      });
      gcs.push_back(std::move(gc));
    }
  }

  AETS_CHECK(backup->Start().ok());
  for (auto& gc : gcs) gc->Start();

  std::atomic<bool> done{false};
  std::vector<std::thread> probers;
  for (int p = 0; p < spec.probe_threads; ++p) {
    probers.emplace_back([&, p] {
      Rng rng(spec.seed * 1315423911ull + static_cast<uint64_t>(p) + 1);
      const std::vector<Timestamp>& cts = model.CommitTimestamps();
      const std::vector<TxnFootprint>& fps = model.Footprints();
      while (!done.load(std::memory_order_acquire)) {
        oracle.ObserveMonotonicity();
        if (!cts.empty()) {
          Timestamp qts = cts[static_cast<size_t>(
              rng.UniformInt(0, static_cast<int64_t>(cts.size()) - 1))];
          oracle.CheckVisibleProbe(RandomTableSet(&rng, spec.num_tables), qts);
        }
        if (!fps.empty()) {
          oracle.CheckTxnAtomicity(fps[static_cast<size_t>(
              rng.UniformInt(0, static_cast<int64_t>(fps.size()) - 1))]);
        }
        // Pin an exact cross-shard view and read a random table set at the
        // pinned timestamp while replay and GC race underneath — the pin
        // must keep every version the snapshot can see alive.
        SnapshotHandle snap = backup->coordinator().AcquireSnapshot();
        if (snap.ts() != kInvalidTimestamp &&
            model.MaxVisibleTs() != kInvalidTimestamp) {
          Timestamp qts = std::min(snap.ts(), model.MaxVisibleTs());
          for (TableId t : RandomTableSet(&rng, spec.num_tables)) {
            oracle.CheckTableSnapshot(t, qts);
          }
        }
        std::this_thread::yield();
      }
    });
  }

  for (size_t i = 0; i < stream.epochs.size(); ++i) {
    for (size_t s = 0; s < n; ++s) {
      chans[s]->Send(stream.shard_epochs[s][i]);  // faults may drop; NACK recovers
    }
  }
  for (auto& channel : channels) channel->Close();
  backup->Stop();
  for (auto& gc : gcs) gc->Stop();
  done.store(true, std::memory_order_release);
  for (std::thread& t : probers) t.join();

  for (int s = 0; s < backup->num_shards(); ++s) {
    ReportReplayerError(backup->shard(s), log);
  }
  if (!AnyShardErrored(backup.get())) {
    VerifyFinalState(model, &oracle);
  }
}

/// Drops no-op structure: empty transactions (PrimaryDb rejects them) and
/// epochs that ship nothing at all.
ScenarioSpec Normalize(ScenarioSpec spec) {
  for (EpochPlan& ep : spec.epochs) {
    ep.txns.erase(std::remove_if(ep.txns.begin(), ep.txns.end(),
                                 [](const TxnPlan& t) {
                                   return t.writes.empty();
                                 }),
                  ep.txns.end());
  }
  spec.epochs.erase(std::remove_if(spec.epochs.begin(), spec.epochs.end(),
                                   [](const EpochPlan& e) {
                                     return e.txns.empty() &&
                                            !e.heartbeat_after;
                                   }),
                    spec.epochs.end());
  return spec;
}

}  // namespace

ScenarioSpec GenerateScenario(uint64_t seed) {
  ScenarioSpec spec;
  spec.seed = seed;
  Rng rng(seed ^ 0xA24BAED4963EE407ull);
  spec.num_tables = static_cast<size_t>(2 + rng.UniformInt(0, 3));
  int num_epochs = static_cast<int>(3 + rng.UniformInt(0, 5));
  bool any_txn = false;
  for (int e = 0; e < num_epochs; ++e) {
    EpochPlan ep;
    int num_txns = static_cast<int>(rng.UniformInt(0, 4));
    for (int t = 0; t < num_txns; ++t) {
      TxnPlan tp;
      int num_writes = static_cast<int>(1 + rng.UniformInt(0, 3));
      for (int w = 0; w < num_writes; ++w) {
        WritePlan wp;
        int64_t kind = rng.UniformInt(0, 9);
        wp.kind = kind < 5   ? WritePlan::kInsert
                  : kind < 9 ? WritePlan::kUpdate
                             : WritePlan::kDelete;
        wp.table = static_cast<TableId>(
            rng.UniformInt(0, static_cast<int64_t>(spec.num_tables) - 1));
        wp.key = rng.UniformInt(0, 19);
        tp.writes.push_back(wp);
      }
      ep.txns.push_back(std::move(tp));
      any_txn = true;
    }
    ep.heartbeat_after = rng.Bernoulli(0.3);
    spec.epochs.push_back(std::move(ep));
  }
  if (!any_txn) {
    // Degenerate draw: force one insert so the scenario exercises data flow.
    TxnPlan tp;
    tp.writes.push_back(WritePlan{WritePlan::kInsert, 0, 1});
    spec.epochs.front().txns.push_back(std::move(tp));
  }
  // Fault plan (used when the caller flips mode to kConcurrent).
  spec.faults.drop = rng.UniformDouble() * 0.06;
  spec.faults.duplicate = rng.UniformDouble() * 0.06;
  spec.faults.reorder = rng.UniformDouble() * 0.06;
  spec.faults.corrupt = rng.UniformDouble() * 0.02;
  spec.faults.seed = seed * 0x9E3779B97F4A7C15ull + 1;
  // Schedule perturbation: GC horizon pressure and probe-thread count.
  spec.with_gc = rng.Bernoulli(0.5);
  spec.gc_retention = static_cast<Timestamp>(4 + rng.UniformInt(0, 12));
  spec.probe_threads = static_cast<int>(1 + rng.UniformInt(0, 2));
  return spec;
}

ScenarioResult RunScenario(const ScenarioSpec& spec,
                           const ReplayerFactory& factory) {
  RecordedStream stream = RecordScenario(spec);
  ReferenceModel model(spec.num_tables);
  for (const ShippedEpoch& epoch : stream.epochs) {
    Status s = model.Apply(epoch);
    AETS_CHECK_MSG(s.ok(), "reference model rejected the recorded stream");
  }
  ViolationLog log;
  if (spec.shard_count > 1) {
    if (spec.mode == SimMode::kLockstep) {
      RunShardedLockstep(spec, stream, model, factory, &log);
    } else {
      RunShardedConcurrent(spec, stream, model, factory, &log);
    }
  } else if (spec.mode == SimMode::kLockstep) {
    RunLockstep(spec, stream, model, factory, &log);
  } else {
    RunConcurrent(spec, stream, model, factory, &log);
  }
  ScenarioResult result;
  result.total_violations = log.total();
  result.first_invariant = log.FirstInvariant();
  result.violations = log.TakeSnapshot();
  return result;
}

ScenarioSpec ShrinkScenario(const ScenarioSpec& spec,
                            const ReplayerFactory& factory) {
  ScenarioResult baseline = RunScenario(spec, factory);
  if (baseline.ok()) return spec;
  const std::string target = baseline.first_invariant;
  auto still_fails = [&factory, &target](const ScenarioSpec& cand) {
    ScenarioResult r = RunScenario(cand, factory);
    return !r.ok() && r.first_invariant == target;
  };

  ScenarioSpec cur = Normalize(spec);
  if (!still_fails(cur)) cur = spec;  // defensive: keep the known-failing spec

  bool progress = true;
  while (progress) {
    progress = false;
    // Pass 1: drop whole epochs.
    for (size_t e = 0; e < cur.epochs.size();) {
      ScenarioSpec cand = cur;
      cand.epochs.erase(cand.epochs.begin() + static_cast<long>(e));
      if (!cand.epochs.empty() && still_fails(cand)) {
        cur = std::move(cand);
        progress = true;
      } else {
        ++e;
      }
    }
    // Pass 2: drop single transactions.
    for (size_t e = 0; e < cur.epochs.size(); ++e) {
      for (size_t t = 0; t < cur.epochs[e].txns.size();) {
        ScenarioSpec cand = cur;
        cand.epochs[e].txns.erase(cand.epochs[e].txns.begin() +
                                  static_cast<long>(t));
        if (still_fails(cand)) {
          cur = std::move(cand);
          progress = true;
        } else {
          ++t;
        }
      }
    }
    // Pass 3: drop single writes (removing a txn's last write removes it).
    for (size_t e = 0; e < cur.epochs.size(); ++e) {
      for (size_t t = 0; t < cur.epochs[e].txns.size(); ++t) {
        for (size_t w = 0; w < cur.epochs[e].txns[t].writes.size();) {
          ScenarioSpec cand = cur;
          auto& writes = cand.epochs[e].txns[t].writes;
          writes.erase(writes.begin() + static_cast<long>(w));
          if (writes.empty()) {
            cand.epochs[e].txns.erase(cand.epochs[e].txns.begin() +
                                      static_cast<long>(t));
          }
          if (still_fails(cand)) {
            cur = std::move(cand);
            progress = true;
            if (cur.epochs[e].txns.size() <= t ||
                cur.epochs[e].txns[t].writes.size() <= w) {
              break;  // the txn itself went away; outer loops rescan
            }
          } else {
            ++w;
          }
        }
      }
    }
    // Pass 4: drop heartbeat markers.
    for (size_t e = 0; e < cur.epochs.size(); ++e) {
      if (!cur.epochs[e].heartbeat_after) continue;
      ScenarioSpec cand = cur;
      cand.epochs[e].heartbeat_after = false;
      if (still_fails(cand)) {
        cur = std::move(cand);
        progress = true;
      }
    }
  }
  return Normalize(cur);
}

std::string DescribeScenario(const ScenarioSpec& spec) {
  std::ostringstream os;
  os << "scenario seed=" << spec.seed << " mode="
     << (spec.mode == SimMode::kLockstep ? "lockstep" : "concurrent")
     << " tables=" << spec.num_tables << " epochs=" << spec.epochs.size();
  if (spec.shard_count > 1) os << " shards=" << spec.shard_count;
  for (size_t e = 0; e < spec.epochs.size(); ++e) {
    os << "\n  epoch " << e << ":";
    for (const TxnPlan& tp : spec.epochs[e].txns) {
      os << " txn{";
      for (size_t w = 0; w < tp.writes.size(); ++w) {
        const WritePlan& wp = tp.writes[w];
        if (w > 0) os << "; ";
        os << (wp.kind == WritePlan::kInsert   ? "I"
               : wp.kind == WritePlan::kUpdate ? "U"
                                               : "D")
           << " t" << wp.table << " k" << wp.key;
      }
      os << "}";
    }
    if (spec.epochs[e].heartbeat_after) os << " +hb";
  }
  return os.str();
}

size_t CountTxns(const ScenarioSpec& spec) {
  size_t n = 0;
  for (const EpochPlan& ep : spec.epochs) n += ep.txns.size();
  return n;
}

size_t CountWrites(const ScenarioSpec& spec) {
  size_t n = 0;
  for (const EpochPlan& ep : spec.epochs) {
    for (const TxnPlan& tp : ep.txns) n += tp.writes.size();
  }
  return n;
}

}  // namespace sim
}  // namespace aets
