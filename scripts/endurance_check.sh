#!/usr/bin/env bash
# Endurance check: run durable_replay long enough under a disk budget to
# force repeated checkpoint-coordinated truncations, and assert
#
#   1. the run truncates at least MIN_TRUNCS times,
#   2. disk usage stays bounded by the budget (every post-truncation disk=
#      sample is under BUDGET, and the run's high-water mark never exceeds
#      BUDGET by more than one segment's worth of slack),
#   3. RSS stays under a generous ceiling (the durable tier and retention
#      deque are bounded; only the MVCC store's history may grow),
#   4. a kill -9 mid-run, after the oldest segments have been deleted,
#      recovers to a digest equal to the uninterrupted reference.
#
# Env knobs: BIN (durable_replay binary), SEED, TXNS (raise for the nightly
# long soak), BUDGET (bytes), MIN_TRUNCS, RSS_LIMIT_KB, WORK (scratch dir).
set -uo pipefail

BIN=${BIN:-build/examples/durable_replay}
SEED=${SEED:-29}
TXNS=${TXNS:-20000}
BUDGET=${BUDGET:-1200000}
MIN_TRUNCS=${MIN_TRUNCS:-3}
SLACK=${SLACK:-262144}          # one segment_max_bytes of overshoot allowance
RSS_LIMIT_KB=${RSS_LIMIT_KB:-524288}
WORK=${WORK:-$(mktemp -d /tmp/aets-endurance.XXXXXX)}

fail() { echo "FAIL: $*" >&2; exit 1; }
[ -x "$BIN" ] || fail "binary not found: $BIN (set BIN or build durable_replay)"

# --- Reference soak: uninterrupted digest run under the budget. -------------
ref="$WORK/ref.txt"
"$BIN" digest --dir "$WORK/ref-dir" --seed "$SEED" --txns "$TXNS" \
    --disk_budget "$BUDGET" > "$ref" \
    || fail "reference endurance run failed"

truncs=$(grep -c '^TRUNC' "$ref")
[ "$truncs" -ge "$MIN_TRUNCS" ] \
    || fail "only $truncs truncation(s) in $TXNS txns; need >= $MIN_TRUNCS (shrink BUDGET or raise TXNS)"

# Every TRUNC line reports the lane's disk footprint right after the
# truncation: each one must be back under budget, or the knob is not
# reclaiming what it promises.
while read -r disk; do
  [ "$disk" -le "$BUDGET" ] \
      || fail "post-truncation disk $disk bytes exceeds budget $BUDGET"
done < <(sed -n 's/.*disk=\([0-9]*\).*/\1/p' <(grep '^TRUNC' "$ref"))

# The high-water mark (FINAL max_disk=): the trigger fires on the append
# that crosses the budget and the driver truncates within one batch, so the
# overshoot is bounded by SLACK, never a runaway.
max_disk=$(sed -n 's/.*max_disk=\([0-9]*\).*/\1/p' <(grep '^FINAL' "$ref"))
[ -n "$max_disk" ] || fail "no max_disk in the FINAL line"
[ "$max_disk" -le $(( BUDGET + SLACK )) ] \
    || fail "disk high-water mark $max_disk exceeds budget $BUDGET + slack $SLACK"

# RSS ceiling: sampled on every TRUNC line; the last sample is the largest
# the truncating infrastructure ever let the process grow to.
last_rss=$(grep '^TRUNC' "$ref" | tail -1 | sed -n 's/.*rss_kb=\([0-9-]*\).*/\1/p')
if [ -n "$last_rss" ] && [ "$last_rss" -gt 0 ]; then
  [ "$last_rss" -le "$RSS_LIMIT_KB" ] \
      || fail "RSS ${last_rss}kB exceeds ceiling ${RSS_LIMIT_KB}kB"
fi

echo "endurance: $truncs truncations, max disk $max_disk <= $BUDGET+$SLACK, rss ${last_rss:-n/a}kB" >&2

# --- Kill -9 after the oldest segments are gone, then recover. --------------
dir="$WORK/crash-dir"
rm -rf "$dir"
"$BIN" run --dir "$dir" --seed "$SEED" --txns "$TXNS" --disk_budget "$BUDGET" \
    > "$WORK/run.txt" 2>&1 &
pid=$!
waited=0
while [ "$(grep -c '^TRUNC' "$WORK/run.txt" 2>/dev/null)" -lt 1 ]; do
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.1
  waited=$(( waited + 1 ))
  [ "$waited" -lt 600 ] || fail "paced run did not truncate within 60s"
done
{ kill -9 "$pid" && wait "$pid"; } 2>/dev/null
grep -q '^TRUNC' "$WORK/run.txt" || fail "paced run never truncated"

out=$("$BIN" recover --dir "$dir" --seed "$SEED" --disk_budget "$BUDGET" \
    2>"$WORK/recover.err") \
    || fail "recover exited $? ($(cat "$WORK/recover.err"))"
echo "$out" | grep -q '^ORACLE exact' \
    || fail "sim-oracle exactness probe did not run"
rec=$(echo "$out" | grep '^RECOVERED') || fail "no RECOVERED line"
last_data=$(echo "$rec" | sed -n 's/.*last_data=\([0-9]*\).*/\1/p')
ts=$(echo "$rec" | sed -n 's/.*ts=\([0-9]*\).*/\1/p')
digest=$(echo "$rec" | sed -n 's/.*digest=\([0-9a-f]*\).*/\1/p')
floor=$(echo "$rec" | sed -n 's/.*floor=\([0-9]*\).*/\1/p')
[ -n "$floor" ] && [ "$floor" -gt 0 ] \
    || fail "recovery did not cross a truncation floor (floor=$floor)"
want=$(grep "^EPOCH $last_data $ts " "$ref" | awk '{print $4}')
[ -n "$want" ] || fail "no reference digest for epoch $last_data ts $ts"
[ "$digest" = "$want" ] \
    || fail "digest mismatch at epoch $last_data past floor $floor: got $digest want $want"
echo "endurance: recovered past floor $floor, digest match" >&2

echo "OK"
