#!/usr/bin/env bash
# Net-integration gauntlet (DESIGN.md §12): runs net_replay primary and
# backup as SEPARATE PROCESSES over localhost TCP and demands the backup's
# final digest equal both the primary's and an uninterrupted no-network
# reference run's. Three cases per seed:
#
#   clean     primary + backup run to completion.
#   restart   the backup is kill -9'd mid-stream and restarted from empty;
#             the restart recovers the whole prefix by NACK against the
#             primary's retention buffer and must still converge.
#   query     while replay is live, a client issues snapshot scans against
#             the backup's query port (the analytic path must answer
#             mid-replay), then the digest check runs as in `clean`.
#
# Env knobs: BIN (net_replay binary), SEEDS, TXNS, WORK (scratch dir).
set -uo pipefail

BIN=${BIN:-build/examples/net_replay}
SEEDS=${SEEDS:-"11 23"}
TXNS=${TXNS:-8000}
WORK=${WORK:-$(mktemp -d /tmp/aets-net.XXXXXX)}

fail() { echo "FAIL: $*" >&2; exit 1; }
[ -x "$BIN" ] || fail "binary not found: $BIN (set BIN or build net_replay)"

PRIMARY_PID=""
cleanup() { [ -n "$PRIMARY_PID" ] && kill "$PRIMARY_PID" 2>/dev/null; wait 2>/dev/null; }
trap cleanup EXIT

# Polls $1 for a "^$2 " line, echoing its second field. Bounded wait: the
# primary binds before the workload starts, so this resolves in well under
# the 10s cap unless something is genuinely wedged.
await_token() {
  local file=$1 token=$2
  for _ in $(seq 1 200); do
    local port
    port=$(sed -n "s/^$token \([0-9]*\).*/\1/p" "$file" 2>/dev/null | head -1)
    if [ -n "$port" ]; then echo "$port"; return 0; fi
    sleep 0.05
  done
  return 1
}

final_digest() { sed -n 's/^FINAL [0-9]* \([0-9a-f]*\).*/\1/p' "$1" | head -1; }

start_primary() {
  local seed=$1 log=$2
  "$BIN" primary --listen_port 0 --seed "$seed" --txns "$TXNS" \
      --linger_ms 60000 > "$log" 2>&1 &
  PRIMARY_PID=$!
  await_token "$log" LISTENING >/dev/null || fail "seed $seed: primary never bound"
}

stop_primary() {
  kill "$PRIMARY_PID" 2>/dev/null
  wait "$PRIMARY_PID" 2>/dev/null
  PRIMARY_PID=""
}

# Every case ends the same way: the backup's FINAL digest must match the
# primary's FINAL digest and the reference run's.
check_digests() {
  local seed=$1 primary_log=$2 backup_log=$3 case_name=$4
  grep -q '^FINAL' "$primary_log" || fail \
      "seed $seed ($case_name): primary never printed FINAL ($(cat "$primary_log"))"
  local want got ref
  want=$(final_digest "$primary_log")
  got=$(final_digest "$backup_log")
  ref=$(final_digest "$WORK/reference-$seed.txt")
  [ -n "$got" ] || fail "seed $seed ($case_name): backup printed no FINAL"
  [ "$got" = "$want" ] || fail \
      "seed $seed ($case_name): backup digest $got != primary digest $want"
  [ "$got" = "$ref" ] || fail \
      "seed $seed ($case_name): networked digest $got != reference digest $ref"
  echo "seed $seed ($case_name): digest $got ok" >&2
}

for seed in $SEEDS; do
  "$BIN" reference --seed "$seed" --txns "$TXNS" \
      > "$WORK/reference-$seed.txt" 2>&1 \
      || fail "seed $seed: reference run failed"

  # --- clean: two processes, uninterrupted ------------------------------
  start_primary "$seed" "$WORK/primary-clean-$seed.txt"
  port=$(await_token "$WORK/primary-clean-$seed.txt" LISTENING)
  "$BIN" backup --connect "127.0.0.1:$port" --query_port 0 \
      > "$WORK/backup-clean-$seed.txt" 2>&1 \
      || fail "seed $seed (clean): backup exited $? ($(cat "$WORK/backup-clean-$seed.txt"))"
  # FINAL may trail the backup's exit by a pacing step; the primary flushes
  # it before lingering, so a short wait suffices.
  await_token "$WORK/primary-clean-$seed.txt" FINAL >/dev/null \
      || fail "seed $seed (clean): primary never finished"
  check_digests "$seed" "$WORK/primary-clean-$seed.txt" \
      "$WORK/backup-clean-$seed.txt" clean
  stop_primary

  # --- restart: kill -9 the backup mid-stream, restart from empty -------
  start_primary "$seed" "$WORK/primary-restart-$seed.txt"
  port=$(await_token "$WORK/primary-restart-$seed.txt" LISTENING)
  "$BIN" backup --connect "127.0.0.1:$port" --query_port 0 \
      > "$WORK/backup-kill-$seed.txt" 2>&1 &
  victim=$!
  sleep 0.4   # well inside the paced run: the kill lands mid-stream
  kill -9 "$victim" 2>/dev/null \
      || echo "seed $seed (restart): backup finished before the kill (still valid)" >&2
  wait "$victim" 2>/dev/null
  "$BIN" backup --connect "127.0.0.1:$port" --query_port 0 \
      > "$WORK/backup-restart-$seed.txt" 2>&1 \
      || fail "seed $seed (restart): restarted backup exited $? ($(cat "$WORK/backup-restart-$seed.txt"))"
  await_token "$WORK/primary-restart-$seed.txt" FINAL >/dev/null \
      || fail "seed $seed (restart): primary never finished"
  check_digests "$seed" "$WORK/primary-restart-$seed.txt" \
      "$WORK/backup-restart-$seed.txt" restart
  stop_primary

  # --- query: scans answered while replay is live -----------------------
  start_primary "$seed" "$WORK/primary-query-$seed.txt"
  port=$(await_token "$WORK/primary-query-$seed.txt" LISTENING)
  "$BIN" backup --connect "127.0.0.1:$port" --query_port 0 \
      > "$WORK/backup-query-$seed.txt" 2>&1 &
  backup_pid=$!
  qport=$(await_token "$WORK/backup-query-$seed.txt" QUERY_LISTENING) \
      || fail "seed $seed (query): backup never opened its query port"
  "$BIN" client --connect "127.0.0.1:$qport" --scans 8 \
      > "$WORK/client-$seed.txt" 2>&1 \
      || fail "seed $seed (query): client exited $? ($(cat "$WORK/client-$seed.txt"))"
  [ "$(grep -c '^QUERY ' "$WORK/client-$seed.txt")" -eq 8 ] \
      || fail "seed $seed (query): expected 8 QUERY lines"
  wait "$backup_pid" || fail \
      "seed $seed (query): backup exited $? ($(cat "$WORK/backup-query-$seed.txt"))"
  await_token "$WORK/primary-query-$seed.txt" FINAL >/dev/null \
      || fail "seed $seed (query): primary never finished"
  check_digests "$seed" "$WORK/primary-query-$seed.txt" \
      "$WORK/backup-query-$seed.txt" query
  stop_primary
done

echo "PASS: net integration (seeds: $SEEDS, $TXNS txns, work dir $WORK)"
