#!/usr/bin/env bash
# Crash-restart gauntlet: kill -9 a paced replay run at a seeded random
# point, restart, and demand the recovered snapshot digest equal the
# uninterrupted reference run's digest at the same epoch (plus the sim
# oracle's row-exactness probe, which `recover` mode runs internally).
#
#   scripts/crash_restart_gauntlet.sh          # kill/recover, seeds $SEEDS
#   scripts/crash_restart_gauntlet.sh --chaos  # + torn-write / truncated-
#                                              #   segment / bit-flipped-
#                                              #   manifest damage cases
#
# Env knobs: BIN (durable_replay binary), SEEDS, TXNS, WORK (scratch dir).
set -uo pipefail

BIN=${BIN:-build/examples/durable_replay}
SEEDS=${SEEDS:-"11 23 47"}
TXNS=${TXNS:-20000}
WORK=${WORK:-$(mktemp -d /tmp/aets-gauntlet.XXXXXX)}
CHAOS=${1:-}

fail() { echo "FAIL: $*" >&2; exit 1; }
[ -x "$BIN" ] || fail "binary not found: $BIN (set BIN or build durable_replay)"

# Runs `run` mode, kills it after $2 ms, recovers, and checks the recovered
# digest against the reference table in $3. Echoes the recovered fetch count.
kill_and_recover() {
  local seed=$1 delay_ms=$2 ref=$3 dir=$4
  rm -rf "$dir"
  "$BIN" run --dir "$dir" --seed "$seed" --txns "$TXNS" \
      > "$WORK/run-$seed.txt" 2>&1 &
  local pid=$!
  sleep "$(awk "BEGIN{print $delay_ms/1000}")"
  if kill -9 "$pid" 2>/dev/null; then
    echo "seed $seed: killed after ${delay_ms}ms" >&2
  else
    echo "seed $seed: run completed before the kill (still a valid case)" >&2
  fi
  wait "$pid" 2>/dev/null

  local out
  out=$("$BIN" recover --dir "$dir" --seed "$seed" 2>"$WORK/recover-$seed.err") \
      || fail "seed $seed: recover exited $? ($(cat "$WORK/recover-$seed.err"))"
  echo "$out" | grep -q '^ORACLE exact' \
      || fail "seed $seed: sim-oracle exactness probe did not run"
  local rec
  rec=$(echo "$out" | grep '^RECOVERED') || fail "seed $seed: no RECOVERED line"
  local next_epoch last_data ts digest fetches tail
  next_epoch=$(echo "$rec" | sed -n 's/.*next_epoch=\([0-9]*\).*/\1/p')
  last_data=$(echo "$rec" | sed -n 's/.*last_data=\([0-9]*\).*/\1/p')
  ts=$(echo "$rec" | sed -n 's/.*ts=\([0-9]*\).*/\1/p')
  digest=$(echo "$rec" | sed -n 's/.*digest=\([0-9a-f]*\).*/\1/p')
  fetches=$(echo "$rec" | sed -n 's/.*fetches=\([0-9]*\).*/\1/p')
  tail=$(echo "$rec" | sed -n 's/.*tail=\([0-9]*\).*/\1/p')

  [ "$next_epoch" -gt 0 ] || fail "seed $seed: nothing durable survived the kill"
  local want
  want=$(grep "^EPOCH $last_data $ts " "$ref" | awk '{print $4}')
  [ -n "$want" ] || fail "seed $seed: no reference digest for epoch $last_data ts $ts"
  [ "$digest" = "$want" ] || fail \
      "seed $seed: digest mismatch at epoch $last_data: got $digest want $want"
  [ "$fetches" -gt 0 ] || [ "$tail" -eq 0 ] || fail \
      "seed $seed: replayed a tail of $tail epochs with zero disk fetches"
  echo "seed $seed: recovered to epoch $last_data, digest match, $fetches disk fetches" >&2
  echo "$fetches"
}

total_fetches=0
for seed in $SEEDS; do
  ref="$WORK/ref-$seed.txt"
  "$BIN" digest --dir "$WORK/ref-$seed" --seed "$seed" --txns "$TXNS" > "$ref" \
      || fail "seed $seed: reference run failed"
  delay_ms=$(( 400 + (seed * 7919) % 1600 ))
  fetches=$(kill_and_recover "$seed" "$delay_ms" "$ref" "$WORK/crash-$seed")
  total_fetches=$(( total_fetches + fetches ))
done
[ "$total_fetches" -gt 0 ] || fail "no recovery fetched a single epoch from disk"
echo "gauntlet: all seeds recovered, $total_fetches total disk fetches" >&2

# Truncation cases: run with a disk budget so checkpoint-coordinated
# truncation deletes the oldest segments mid-run, kill only AFTER the first
# truncation landed (polling the run's TRUNC output), and demand recovery
# bridge the deleted prefix through the checkpoint image — digest-equal to a
# budget-matched reference and with a floor > 0 in the RECOVERED line.
kill_after_trunc_and_recover() {
  local seed=$1 ref=$2 dir=$3 extra=$4 want_truncs=$5
  rm -rf "$dir"
  # shellcheck disable=SC2086
  "$BIN" run --dir "$dir" --seed "$seed" --txns "$TXNS" $extra \
      > "$WORK/trun-$seed.txt" 2>&1 &
  local pid=$!
  local waited=0
  # Wait until `want_truncs` DISTINCT shards have truncated at least once —
  # the recovered floor is the minimum across shards, so every lane must
  # have crossed it for the floor>0 assertion to be meaningful.
  while [ "$(sed -n 's/^TRUNC shard=\([0-9]*\).*/\1/p' "$WORK/trun-$seed.txt" 2>/dev/null | sort -u | wc -l)" -lt "$want_truncs" ]; do
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
    waited=$(( waited + 1 ))
    [ "$waited" -lt 600 ] || fail "seed $seed: no truncation within 60s"
  done
  local was_killed=0
  { kill -9 "$pid" && was_killed=1; wait "$pid"; } 2>/dev/null
  if [ "$was_killed" -eq 1 ]; then
    echo "seed $seed: killed after $(grep -c '^TRUNC' "$WORK/trun-$seed.txt") truncation(s)" >&2
  else
    echo "seed $seed: run completed before the kill (still a valid case)" >&2
  fi
  grep -q '^TRUNC' "$WORK/trun-$seed.txt" \
      || fail "seed $seed: the run never truncated (budget too large?)"

  local out
  # shellcheck disable=SC2086
  out=$("$BIN" recover --dir "$dir" --seed "$seed" $extra \
      2>"$WORK/trun-recover-$seed.err") \
      || fail "seed $seed: budget recover exited $? ($(cat "$WORK/trun-recover-$seed.err"))"
  echo "$out" | grep -q '^ORACLE exact' \
      || fail "seed $seed: sim-oracle exactness probe did not run"
  local rec last_data ts digest floor
  rec=$(echo "$out" | grep '^RECOVERED') || fail "seed $seed: no RECOVERED line"
  last_data=$(echo "$rec" | sed -n 's/.*last_data=\([0-9]*\).*/\1/p')
  ts=$(echo "$rec" | sed -n 's/.*ts=\([0-9]*\).*/\1/p')
  digest=$(echo "$rec" | sed -n 's/.*digest=\([0-9a-f]*\).*/\1/p')
  floor=$(echo "$rec" | sed -n 's/.*floor=\([0-9]*\).*/\1/p')
  [ -n "$floor" ] && [ "$floor" -gt 0 ] \
      || fail "seed $seed: recovery did not cross a truncation floor (floor=$floor)"
  local want
  want=$(grep "^EPOCH $last_data $ts " "$ref" | awk '{print $4}')
  [ -n "$want" ] || fail "seed $seed: no reference digest for epoch $last_data ts $ts"
  [ "$digest" = "$want" ] || fail \
      "seed $seed: digest mismatch at epoch $last_data past floor $floor: got $digest want $want"
  echo "seed $seed: recovered past truncation floor $floor, digest match" >&2
}

BUDGET=${BUDGET:-1200000}
seed=31
ref="$WORK/ref-budget-$seed.txt"
"$BIN" digest --dir "$WORK/ref-budget-$seed" --seed "$seed" --txns "$TXNS" \
    --disk_budget "$BUDGET" > "$ref" \
    || fail "budget reference run failed"
[ "$(grep -c '^TRUNC' "$ref")" -ge 1 ] \
    || fail "budget reference never truncated (budget too large for $TXNS txns?)"
kill_after_trunc_and_recover "$seed" "$ref" "$WORK/trunc-$seed" \
    "--disk_budget $BUDGET" 1
echo "gauntlet: truncated-log recovery passed" >&2

# The sharded variant: per-shard budgets, per-shard checkpoint directories,
# kill after every shard truncated at least once.
seed=37
ref="$WORK/ref-shbudget-$seed.txt"
"$BIN" digest --dir "$WORK/ref-shbudget-$seed" --seed "$seed" --txns "$TXNS" \
    --shard_count 2 --disk_budget 700000 > "$ref" \
    || fail "sharded budget reference run failed"
grep -q '^TRUNC shard=0' "$ref" && grep -q '^TRUNC shard=1' "$ref" \
    || fail "sharded budget reference: not every shard truncated"
kill_after_trunc_and_recover "$seed" "$ref" "$WORK/shtrunc-$seed" \
    "--shard_count 2 --disk_budget 700000" 2
echo "gauntlet: sharded truncated-log recovery passed" >&2

if [ "$CHAOS" = "--chaos" ]; then
  seed=101
  ref="$WORK/ref-$seed.txt"
  "$BIN" digest --dir "$WORK/ref-$seed" --seed "$seed" --txns "$TXNS" > "$ref" \
      || fail "chaos: reference run failed"

  damage_setup() {  # fresh killed run to damage; echoes the newest segment
    local dir=$1
    rm -rf "$dir"
    "$BIN" run --dir "$dir" --seed "$seed" --txns "$TXNS" >/dev/null 2>&1 &
    local pid=$!
    sleep 0.8
    kill -9 "$pid" 2>/dev/null
    wait "$pid" 2>/dev/null
    ls "$dir"/seg-*.log | sort | tail -1
  }

  # Torn write: garbage appended past the last durable frame must be
  # truncated away and recovery must still match the reference.
  dir="$WORK/chaos-torn"
  seg=$(damage_setup "$dir")
  head -c 37 /dev/urandom >> "$seg"
  out=$("$BIN" recover --dir "$dir" --seed "$seed") \
      || fail "chaos torn-write: recover failed"
  rec=$(echo "$out" | grep '^RECOVERED')
  last_data=$(echo "$rec" | sed -n 's/.*last_data=\([0-9]*\).*/\1/p')
  ts=$(echo "$rec" | sed -n 's/.*ts=\([0-9]*\).*/\1/p')
  digest=$(echo "$rec" | sed -n 's/.*digest=\([0-9a-f]*\).*/\1/p')
  torn=$(echo "$rec" | sed -n 's/.*torn=\([0-9]*\).*/\1/p')
  [ "$torn" -gt 0 ] || fail "chaos torn-write: no torn frame was truncated"
  want=$(grep "^EPOCH $last_data $ts " "$ref" | awk '{print $4}')
  [ "$digest" = "$want" ] || fail "chaos torn-write: digest mismatch after truncation"
  echo "chaos torn-write: truncated $torn frame(s), digest match" >&2

  # Truncated segment: cutting into the newest segment mid-frame loses the
  # tail but recovery must converge on the surviving durable prefix.
  dir="$WORK/chaos-trunc"
  seg=$(damage_setup "$dir")
  truncate -s -13 "$seg"
  out=$("$BIN" recover --dir "$dir" --seed "$seed") \
      || fail "chaos truncated-segment: recover failed"
  rec=$(echo "$out" | grep '^RECOVERED')
  last_data=$(echo "$rec" | sed -n 's/.*last_data=\([0-9]*\).*/\1/p')
  ts=$(echo "$rec" | sed -n 's/.*ts=\([0-9]*\).*/\1/p')
  digest=$(echo "$rec" | sed -n 's/.*digest=\([0-9a-f]*\).*/\1/p')
  want=$(grep "^EPOCH $last_data $ts " "$ref" | awk '{print $4}')
  [ "$digest" = "$want" ] || fail "chaos truncated-segment: digest mismatch"
  echo "chaos truncated-segment: recovered shorter prefix, digest match" >&2

  # Bit-flipped manifest: durable metadata damage must be a loud Corruption
  # error, never a silent partial recovery.
  dir="$WORK/chaos-manifest"
  damage_setup "$dir" >/dev/null
  python3 - "$dir/MANIFEST" <<'EOF'
import sys
path = sys.argv[1]
data = bytearray(open(path, 'rb').read())
data[12] ^= 0xFF  # inside the manifest CRC field
open(path, 'wb').write(data)
EOF
  if "$BIN" recover --dir "$dir" --seed "$seed" 2>"$WORK/manifest.err"; then
    fail "chaos bit-flipped-manifest: recover succeeded on corrupt metadata"
  fi
  grep -qi "corruption\|checksum" "$WORK/manifest.err" \
      || fail "chaos bit-flipped-manifest: error was not a Corruption verdict"
  echo "chaos bit-flipped-manifest: clean Corruption error" >&2

  echo "gauntlet: chaos damage cases passed" >&2
fi

echo "OK"
