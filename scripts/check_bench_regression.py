#!/usr/bin/env python3
"""Bench-regression gate: compare a google-benchmark JSON result file
against the checked-in floor in bench/baseline.json.

  scripts/check_bench_regression.py results.json               # gate
  scripts/check_bench_regression.py results.json --update      # rewrite floor

The baseline stores items_per_second floors per benchmark name. A run fails
when any benchmark named in the baseline drops more than the allowed margin
below its floor (default 15%, override with AETS_BENCH_MARGIN, e.g. 0.25).
Benchmarks in the results but absent from the baseline are reported, not
gated, so adding a benchmark never breaks CI retroactively.

With repetitions (--benchmark_repetitions=N) the median aggregate row is
used; otherwise the single run is. `--update` writes the observed medians
scaled by AETS_BENCH_UPDATE_SCALE (default 0.5) so the recorded floor sits
well under normal machine jitter.
"""

import argparse
import json
import os
import sys

BASELINE = os.path.join(os.path.dirname(__file__), "..", "bench",
                        "baseline.json")


def load_medians(results_path):
    """Return {benchmark_name: median items_per_second}."""
    with open(results_path) as f:
        data = json.load(f)
    runs = data.get("benchmarks", [])
    medians = {}
    singles = {}
    for bench in runs:
        rate = bench.get("items_per_second")
        if rate is None:
            continue
        if bench.get("run_type") == "aggregate":
            if bench.get("aggregate_name") == "median":
                medians[bench["run_name"]] = rate
        else:
            singles.setdefault(bench.get("run_name", bench["name"]),
                               []).append(rate)
    # Fall back to the median of iteration rows when no aggregates exist.
    for name, rates in singles.items():
        if name not in medians:
            rates.sort()
            medians[name] = rates[len(rates) // 2]
    return medians


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("results", help="google-benchmark JSON output file")
    parser.add_argument("--baseline", default=os.path.normpath(BASELINE))
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from these results")
    args = parser.parse_args()

    margin = float(os.environ.get("AETS_BENCH_MARGIN", "0.15"))
    medians = load_medians(args.results)
    if not medians:
        print("FAIL: no items_per_second entries in", args.results)
        return 1

    if args.update:
        scale = float(os.environ.get("AETS_BENCH_UPDATE_SCALE", "0.5"))
        floors = {name: round(rate * scale, 1)
                  for name, rate in sorted(medians.items())}
        with open(args.baseline, "w") as f:
            json.dump({"comment":
                       "items_per_second floors; see "
                       "scripts/check_bench_regression.py",
                       "floors": floors}, f, indent=2)
            f.write("\n")
        print("updated %s with %d floors (scale %.2f)"
              % (args.baseline, len(floors), scale))
        return 0

    with open(args.baseline) as f:
        floors = json.load(f)["floors"]

    failed = []
    for name, floor in sorted(floors.items()):
        got = medians.get(name)
        if got is None:
            print("MISSING %-48s floor %.0f/s but not in results" %
                  (name, floor))
            failed.append(name)
            continue
        allowed = floor * (1.0 - margin)
        verdict = "ok" if got >= allowed else "REGRESSED"
        print("%-9s %-48s %12.0f/s  floor %12.0f/s (margin %d%%)"
              % (verdict, name, got, floor, margin * 100))
        if got < allowed:
            failed.append(name)
    for name in sorted(set(medians) - set(floors)):
        print("ungated   %-48s %12.0f/s  (not in baseline)"
              % (name, medians[name]))

    if failed:
        print("FAIL: %d benchmark(s) regressed past the %.0f%% margin: %s"
              % (len(failed), margin * 100, ", ".join(failed)))
        return 1
    print("OK: %d gated benchmark(s) within margin" % len(floors))
    return 0


if __name__ == "__main__":
    sys.exit(main())
