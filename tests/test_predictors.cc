// Predictor tests: MAPE, HA exactness, ARIMA on known processes, LSTM and
// DTGM convergence and accuracy relative to naive baselines, the QB5000
// ensemble, and the Table IV GCN ablation mechanics.

#include <gtest/gtest.h>

#include <cmath>

#include "aets/common/rng.h"
#include "aets/predictor/classical.h"
#include "aets/predictor/dtgm.h"
#include "aets/predictor/lstm.h"
#include "aets/predictor/qb5000.h"
#include "aets/workload/bustracker.h"

namespace aets {
namespace {

// A small synthetic sinusoid dataset: N correlated tables with phase
// offsets, the same structure the BusTracker generator produces.
RateMatrix Sinusoids(int slots, int tables, double noise, uint64_t seed) {
  Rng rng(seed);
  RateMatrix out;
  for (int s = 0; s < slots; ++s) {
    std::vector<double> row(static_cast<size_t>(tables));
    for (int t = 0; t < tables; ++t) {
      double base = 100.0 + 20.0 * t;
      double u = static_cast<double>(s) / 24.0 + 0.1 * t;
      row[static_cast<size_t>(t)] = std::max(
          1.0, base * (1 + 0.5 * std::sin(2 * M_PI * u)) +
                   rng.Gaussian(0, noise * base));
    }
    out.push_back(std::move(row));
  }
  return out;
}

TEST(MapeTest, Definition) {
  EXPECT_DOUBLE_EQ(Mape({100, 200}, {110, 180}), (0.1 + 0.1) / 2);
  EXPECT_DOUBLE_EQ(Mape({100}, {100}), 0.0);
  // Zero actuals are skipped.
  EXPECT_DOUBLE_EQ(Mape({0, 100}, {50, 150}), 0.5);
  EXPECT_DOUBLE_EQ(Mape({0}, {50}), 0.0);
}

TEST(HaTest, PredictsWindowMeanAtEveryHorizon) {
  HaPredictor ha(3);
  RateMatrix recent = {{10, 1}, {20, 2}, {30, 3}};
  RateMatrix pred = ha.Predict(recent, 5);
  ASSERT_EQ(pred.size(), 5u);
  for (const auto& row : pred) {
    EXPECT_DOUBLE_EQ(row[0], 20.0);
    EXPECT_DOUBLE_EQ(row[1], 2.0);
  }
}

TEST(HaTest, HorizonIndependentMape) {
  // The paper's Table III shows HA at the same MAPE for 15/30/60 minutes;
  // that's structural: the forecast is constant in the horizon.
  RateMatrix series = Sinusoids(200, 3, 0.05, 1);
  HaPredictor ha(60);
  double m15 = EvaluateHorizonMape(&ha, series, 120, 60, 15, 4);
  double m60 = EvaluateHorizonMape(&ha, series, 120, 60, 60, 4);
  EXPECT_GT(m15, 0.0);
  // Same forecast value, evaluated at different actuals; not exactly equal
  // here because the evaluation offsets differ, but both substantial.
  EXPECT_GT(m60, 0.05);
}

TEST(ArimaTest, RecoversArProcess) {
  // y_t = 0.8 y_{t-1} + e on the differenced series: ARIMA should beat a
  // last-value carry-forward on a trending AR process.
  Rng rng(2);
  std::vector<double> y = {100};
  for (int i = 1; i < 300; ++i) {
    double prev_delta = i >= 2 ? y[static_cast<size_t>(i - 1)] - y[static_cast<size_t>(i - 2)] : 1.0;
    y.push_back(y.back() + 0.8 * prev_delta + rng.Gaussian(0.2, 0.5));
  }
  RateMatrix series;
  for (double v : y) series.push_back({std::max(1.0, v)});
  ArimaPredictor arima(4, 1, 2);
  arima.Fit(RateMatrix(series.begin(), series.begin() + 250));
  RateMatrix recent(series.begin() + 200, series.begin() + 250);
  RateMatrix pred = arima.Predict(recent, 10);
  ASSERT_EQ(pred.size(), 10u);
  // The AR(1)-on-deltas process keeps trending; ARIMA must extrapolate a
  // continued rise rather than flat-lining.
  EXPECT_GT(pred[9][0], recent.back()[0]);
}

TEST(ArimaTest, FallsBackGracefullyOnShortSeries) {
  ArimaPredictor arima;
  RateMatrix tiny = {{5}, {6}, {7}};
  arima.Fit(tiny);
  RateMatrix pred = arima.Predict(tiny, 3);
  ASSERT_EQ(pred.size(), 3u);
  EXPECT_DOUBLE_EQ(pred[0][0], 7.0);  // last-value fallback
}

TEST(LstmTest, LearnsSinusoidBetterThanNaiveMean) {
  RateMatrix series = Sinusoids(160, 4, 0.02, 3);
  LstmConfig config;
  config.input_window = 12;
  config.horizon = 12;
  config.hidden = 16;
  config.train_steps = 80;
  config.batch = 4;
  LstmPredictor lstm(config);
  double lstm_mape = EvaluateHorizonMape(&lstm, series, 120, 12, 12, 4);
  HaPredictor ha(60);
  double ha_mape = EvaluateHorizonMape(&ha, series, 120, 60, 12, 4);
  EXPECT_LT(lstm_mape, ha_mape);
  EXPECT_LT(lstm_mape, 0.5);
}

TEST(DtgmTest, TrainingReducesLoss) {
  RateMatrix series = Sinusoids(120, 4, 0.02, 4);
  DtgmConfig config;
  config.input_window = 12;
  config.horizon = 8;
  config.hidden = 12;
  config.layers = 2;
  config.train_steps = 150;
  config.batch = 4;
  config.dropout = 0.0;  // deterministic loss for the convergence assertion
  DtgmPredictor dtgm(config);
  dtgm.Fit(series);
  // Normalized MAE well below 1 (the scale of the standardized data).
  EXPECT_LT(dtgm.final_loss(), 0.6);
}

TEST(DtgmTest, BeatsHaOnStructuredSeries) {
  RateMatrix series = Sinusoids(160, 4, 0.02, 5);
  DtgmConfig config;
  config.input_window = 12;
  config.horizon = 12;
  config.hidden = 16;
  config.layers = 2;
  config.train_steps = 80;
  config.batch = 4;
  DtgmPredictor dtgm(config);
  double dtgm_mape = EvaluateHorizonMape(&dtgm, series, 120, 12, 12, 4);
  HaPredictor ha(60);
  double ha_mape = EvaluateHorizonMape(&ha, series, 120, 60, 12, 4);
  EXPECT_LT(dtgm_mape, ha_mape);
}

TEST(DtgmTest, GcnAblationRunsAndPredicts) {
  RateMatrix series = Sinusoids(120, 3, 0.02, 6);
  DtgmConfig config;
  config.input_window = 12;
  config.horizon = 8;
  config.hidden = 8;
  config.layers = 1;
  config.train_steps = 20;
  config.use_gcn = false;
  DtgmPredictor no_gcn(config);
  EXPECT_EQ(no_gcn.name(), "DTGM(w/o gcn)");
  no_gcn.Fit(series);
  RateMatrix recent(series.end() - 12, series.end());
  RateMatrix pred = no_gcn.Predict(recent, 8);
  ASSERT_EQ(pred.size(), 8u);
  for (const auto& row : pred) {
    for (double v : row) {
      EXPECT_GE(v, 0.0);
      EXPECT_TRUE(std::isfinite(v));
    }
  }
}

TEST(DtgmTest, PredictionsAreNonNegativeAndFinite) {
  BusTrackerWorkload bus;
  RateMatrix series = bus.GenerateRateSeries(90, 0.1, 11);
  DtgmConfig config;
  config.input_window = 12;
  config.horizon = 8;
  config.hidden = 8;
  config.layers = 1;
  config.train_steps = 15;
  config.batch = 2;
  DtgmPredictor dtgm(config);
  dtgm.Fit(series);
  RateMatrix recent(series.end() - 12, series.end());
  RateMatrix pred = dtgm.Predict(recent, 8);
  for (const auto& row : pred) {
    ASSERT_EQ(row.size(), 65u);
    for (double v : row) {
      EXPECT_GE(v, 0.0);
      EXPECT_TRUE(std::isfinite(v));
    }
  }
}

TEST(DtgmTest, FineTuneAdaptsToShiftedWorkload) {
  // Train on one regime, shift the scale of every series, fine-tune on the
  // shifted history: accuracy on the new regime must improve.
  RateMatrix before = Sinusoids(160, 4, 0.02, 12);
  RateMatrix after = before;
  for (auto& row : after) {
    for (size_t t = 0; t < row.size(); ++t) {
      row[t] = row[t] * (t % 2 == 0 ? 2.5 : 0.4) + 10;  // regime change
    }
  }
  DtgmConfig config;
  config.input_window = 12;
  config.horizon = 12;
  config.hidden = 16;
  config.layers = 2;
  config.train_steps = 60;
  config.batch = 3;
  config.dropout = 0.0;
  DtgmPredictor dtgm(config);
  dtgm.Fit(RateMatrix(before.begin(), before.begin() + 120));

  auto mape_on_after = [&] {
    std::vector<double> actual, pred;
    for (int t = 120; t + 12 <= static_cast<int>(after.size()); t += 6) {
      RateMatrix recent(after.begin() + (t - 12), after.begin() + t);
      RateMatrix forecast = dtgm.Predict(recent, 12);
      const auto& a = after[static_cast<size_t>(t + 11)];
      actual.insert(actual.end(), a.begin(), a.end());
      pred.insert(pred.end(), forecast.back().begin(), forecast.back().end());
    }
    return Mape(actual, pred);
  };

  double stale = mape_on_after();
  dtgm.FineTune(RateMatrix(after.begin(), after.begin() + 120), 40);
  double tuned = mape_on_after();
  EXPECT_LT(tuned, stale);
}

TEST(Qb5000Test, EnsembleRunsAndIsReasonable) {
  RateMatrix series = Sinusoids(160, 3, 0.02, 7);
  Qb5000Config config;
  config.lag_window = 12;
  config.horizon = 12;
  config.lstm.hidden = 12;
  config.lstm.train_steps = 40;
  Qb5000Predictor qb(config);
  double qb_mape = EvaluateHorizonMape(&qb, series, 120, 12, 12, 4);
  EXPECT_GT(qb_mape, 0.0);
  EXPECT_LT(qb_mape, 0.6);
}

TEST(Qb5000Test, HandlesAllZeroTables) {
  // Cold tables (constant zero) must not break the ensemble.
  RateMatrix series = Sinusoids(140, 2, 0.02, 8);
  for (auto& row : series) row.push_back(0.0);  // third, always-cold table
  Qb5000Config config;
  config.lag_window = 10;
  config.horizon = 6;
  config.lstm.hidden = 8;
  config.lstm.train_steps = 10;
  Qb5000Predictor qb(config);
  qb.Fit(series);
  RateMatrix recent(series.end() - 10, series.end());
  RateMatrix pred = qb.Predict(recent, 6);
  ASSERT_EQ(pred.size(), 6u);
  for (const auto& row : pred) {
    EXPECT_TRUE(std::isfinite(row[2]));
    EXPECT_GE(row[2], 0.0);
  }
}

}  // namespace
}  // namespace aets
