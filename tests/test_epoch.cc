// Epoch batching and shipped-epoch (wire form) tests: transaction-boundary
// sealing, id sequencing, heartbeat epochs, and decode validation.

#include <gtest/gtest.h>

#include "aets/log/epoch.h"
#include "aets/log/shipped_epoch.h"

namespace aets {
namespace {

TxnLog MakeTxn(TxnId id, Timestamp ts, int dml_count = 2) {
  TxnLog txn;
  txn.txn_id = id;
  txn.commit_ts = ts;
  Lsn lsn = id * 100;
  txn.records.push_back(LogRecord::Begin(lsn++, id, ts));
  for (int i = 0; i < dml_count; ++i) {
    txn.records.push_back(LogRecord::Dml(
        LogRecordType::kUpdate, lsn++, id, ts, /*table=*/i % 3,
        /*row_key=*/static_cast<int64_t>(id) * 10 + i,
        {{0, Value(static_cast<int64_t>(i))}}));
  }
  txn.records.push_back(LogRecord::Commit(lsn++, id, ts));
  return txn;
}

TEST(EpochBuilderTest, SealsAtEpochSize) {
  EpochBuilder builder(3);
  EXPECT_FALSE(builder.AddTxn(MakeTxn(1, 10)).has_value());
  EXPECT_FALSE(builder.AddTxn(MakeTxn(2, 11)).has_value());
  auto sealed = builder.AddTxn(MakeTxn(3, 12));
  ASSERT_TRUE(sealed.has_value());
  EXPECT_EQ(sealed->epoch_id, 0u);
  EXPECT_EQ(sealed->num_txns(), 3u);
  EXPECT_EQ(sealed->first_txn(), 1u);
  EXPECT_EQ(sealed->last_txn(), 3u);
  EXPECT_EQ(sealed->max_commit_ts(), 12u);
}

TEST(EpochBuilderTest, SequentialEpochIds) {
  EpochBuilder builder(2);
  builder.AddTxn(MakeTxn(1, 1));
  auto e0 = builder.AddTxn(MakeTxn(2, 2));
  builder.AddTxn(MakeTxn(3, 3));
  auto e1 = builder.AddTxn(MakeTxn(4, 4));
  ASSERT_TRUE(e0 && e1);
  EXPECT_EQ(e0->epoch_id, 0u);
  EXPECT_EQ(e1->epoch_id, 1u);
}

TEST(EpochBuilderTest, FlushSealsPartial) {
  EpochBuilder builder(10);
  builder.AddTxn(MakeTxn(1, 1));
  builder.AddTxn(MakeTxn(2, 2));
  auto partial = builder.Flush();
  ASSERT_TRUE(partial.has_value());
  EXPECT_EQ(partial->num_txns(), 2u);
  EXPECT_FALSE(builder.Flush().has_value());  // empty now
}

TEST(EpochBuilderTest, ConsumeEpochIdAdvancesSequence) {
  EpochBuilder builder(2);
  EpochId hb_id = builder.ConsumeEpochId();
  EXPECT_EQ(hb_id, 0u);
  builder.AddTxn(MakeTxn(1, 1));
  auto sealed = builder.AddTxn(MakeTxn(2, 2));
  ASSERT_TRUE(sealed);
  EXPECT_EQ(sealed->epoch_id, 1u);
}

TEST(EpochBuilderTest, TransactionBoundariesNeverSplit) {
  // A transaction's records always stay within one epoch regardless of its
  // size relative to the epoch size.
  EpochBuilder builder(2);
  builder.AddTxn(MakeTxn(1, 1, /*dml_count=*/50));
  auto sealed = builder.AddTxn(MakeTxn(2, 2, /*dml_count=*/50));
  ASSERT_TRUE(sealed);
  EXPECT_EQ(sealed->num_txns(), 2u);
  EXPECT_EQ(sealed->num_records(), 2u * 52u);
}

TEST(EpochBuilderTest, ByteSizeAggregates) {
  EpochBuilder builder(2);
  builder.AddTxn(MakeTxn(1, 1));
  auto sealed = builder.AddTxn(MakeTxn(2, 2));
  ASSERT_TRUE(sealed);
  EXPECT_EQ(sealed->ByteSize(), MakeTxn(1, 1).ByteSize() + MakeTxn(2, 2).ByteSize());
  EXPECT_GT(sealed->ByteSize(), 0u);
}

TEST(ShippedEpochTest, EncodeDecodeRoundTrip) {
  Epoch epoch;
  epoch.epoch_id = 5;
  epoch.txns = {MakeTxn(10, 100), MakeTxn(11, 101, 4)};
  ShippedEpoch shipped = EncodeEpoch(epoch);
  EXPECT_EQ(shipped.epoch_id, 5u);
  EXPECT_EQ(shipped.num_txns, 2u);
  EXPECT_EQ(shipped.first_txn, 10u);
  EXPECT_EQ(shipped.last_txn, 11u);
  EXPECT_EQ(shipped.max_commit_ts, 101u);
  EXPECT_FALSE(shipped.is_heartbeat());

  auto decoded = DecodeEpoch(shipped);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->txns.size(), 2u);
  EXPECT_EQ(decoded->txns[0].txn_id, 10u);
  EXPECT_EQ(decoded->txns[0].commit_ts, 100u);
  EXPECT_EQ(decoded->txns[0].records, epoch.txns[0].records);
  EXPECT_EQ(decoded->txns[1].records, epoch.txns[1].records);
}

TEST(ShippedEpochTest, HeartbeatEpoch) {
  ShippedEpoch hb = MakeHeartbeatEpoch(7, 12345);
  EXPECT_TRUE(hb.is_heartbeat());
  EXPECT_EQ(hb.heartbeat_ts, 12345u);
  EXPECT_EQ(hb.max_commit_ts, 12345u);
  auto decoded = DecodeEpoch(hb);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->txns.empty());
}

TEST(ShippedEpochTest, RejectsNestedBegin) {
  Epoch epoch;
  TxnLog bad;
  bad.txn_id = 1;
  bad.commit_ts = 1;
  bad.records = {LogRecord::Begin(1, 1, 1), LogRecord::Begin(2, 1, 1)};
  epoch.txns.push_back(bad);
  auto decoded = DecodeEpoch(EncodeEpoch(epoch));
  EXPECT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsCorruption());
}

TEST(ShippedEpochTest, RejectsDmlOutsideTransaction) {
  Epoch epoch;
  TxnLog bad;
  bad.txn_id = 1;
  bad.commit_ts = 1;
  bad.records = {LogRecord::Dml(LogRecordType::kInsert, 1, 1, 1, 0, 1,
                                {{0, Value(int64_t{1})}})};
  epoch.txns.push_back(bad);
  auto decoded = DecodeEpoch(EncodeEpoch(epoch));
  EXPECT_FALSE(decoded.ok());
}

TEST(ShippedEpochTest, RejectsUnterminatedTransaction) {
  Epoch epoch;
  TxnLog bad;
  bad.txn_id = 1;
  bad.commit_ts = 1;
  bad.records = {LogRecord::Begin(1, 1, 1)};
  epoch.txns.push_back(bad);
  auto decoded = DecodeEpoch(EncodeEpoch(epoch));
  EXPECT_FALSE(decoded.ok());
}

}  // namespace
}  // namespace aets
