// Edge-case and boundary tests across modules: degenerate epochs, huge
// transactions, delete-heavy streams, queue close semantics, and builder
// ordering violations.

#include <gtest/gtest.h>

#include <thread>

#include "aets/baselines/atr_replayer.h"
#include "aets/baselines/c5_replayer.h"
#include "aets/common/queue.h"
#include "aets/common/rng.h"
#include "aets/primary/primary_db.h"
#include "aets/replay/aets_replayer.h"
#include "aets/replication/log_shipper.h"

namespace aets {
namespace {

Catalog* MakeCatalog(int num_tables) {
  auto* catalog = new Catalog();
  for (int t = 0; t < num_tables; ++t) {
    AETS_CHECK(catalog
                   ->RegisterTable("t" + std::to_string(t),
                                   Schema::Of({{"a", ColumnType::kInt64}}))
                   .ok());
  }
  return catalog;
}

TEST(EpochBuilderDeathTest, RejectsOutOfOrderTransactions) {
  EpochBuilder builder(4);
  TxnLog t5;
  t5.txn_id = 5;
  t5.commit_ts = 5;
  builder.AddTxn(std::move(t5));
  TxnLog t3;
  t3.txn_id = 3;
  t3.commit_ts = 3;
  EXPECT_DEATH(builder.AddTxn(std::move(t3)), "commit order");
}

TEST(EdgeCaseTest, SingleHugeTransactionSpanningAllTables) {
  // One transaction with thousands of writes across every table: fragments
  // per group stay ordered and the state converges.
  constexpr int kTables = 4;
  std::unique_ptr<Catalog> catalog(MakeCatalog(kTables));
  LogicalClock clock;
  PrimaryDb db(catalog.get(), &clock);
  LogShipper shipper(/*epoch_size=*/4);
  EpochChannel channel(64);
  shipper.AttachChannel(&channel);
  db.SetCommitSink([&](TxnLog txn) { shipper.OnCommit(std::move(txn)); });

  AetsOptions options;
  options.replay_threads = 3;
  options.grouping = GroupingMode::kPerTable;
  options.initial_rates = {100, 0, 50, 0};
  AetsReplayer replayer(catalog.get(), &channel, options);
  ASSERT_TRUE(replayer.Start().ok());

  PrimaryTxn big = db.Begin();
  for (int i = 0; i < 4000; ++i) {
    big.Insert(static_cast<TableId>(i % kTables), i,
               {{0, Value(static_cast<int64_t>(i))}});
  }
  ASSERT_TRUE(db.Commit(std::move(big)).ok());
  shipper.Finish();
  replayer.Stop();
  ASSERT_TRUE(replayer.error().ok());

  Timestamp ts = db.last_commit_ts();
  EXPECT_EQ(replayer.store()->DigestAt(ts), db.store().DigestAt(ts));
  EXPECT_EQ(replayer.store()->VisibleRowCount(ts), 4000u);
}

TEST(EdgeCaseTest, DeleteHeavyStreamLeavesTombstonesEverywhere) {
  std::unique_ptr<Catalog> catalog(MakeCatalog(2));
  LogicalClock clock;
  PrimaryDb db(catalog.get(), &clock);
  LogShipper shipper(8);
  EpochChannel channel(64);
  shipper.AttachChannel(&channel);
  db.SetCommitSink([&](TxnLog txn) { shipper.OnCommit(std::move(txn)); });

  AtrReplayer replayer(catalog.get(), &channel, AtrOptions{2});
  ASSERT_TRUE(replayer.Start().ok());

  // Insert 50 rows then delete all of them, interleaved across tables.
  for (int i = 0; i < 50; ++i) {
    PrimaryTxn txn = db.Begin();
    txn.Insert(0, i, {{0, Value(static_cast<int64_t>(i))}});
    txn.Insert(1, i, {{0, Value(static_cast<int64_t>(i))}});
    ASSERT_TRUE(db.Commit(std::move(txn)).ok());
  }
  for (int i = 0; i < 50; ++i) {
    PrimaryTxn txn = db.Begin();
    txn.Delete(0, i);
    txn.Delete(1, 49 - i);
    ASSERT_TRUE(db.Commit(std::move(txn)).ok());
  }
  shipper.Finish();
  replayer.Stop();

  Timestamp ts = db.last_commit_ts();
  EXPECT_EQ(replayer.store()->VisibleRowCount(ts), 0u);
  EXPECT_EQ(replayer.store()->DigestAt(ts), db.store().DigestAt(ts));
  // The midpoint snapshot still sees all 100 rows on both sides.
  Timestamp mid = ts - 50;
  EXPECT_EQ(replayer.store()->DigestAt(mid), db.store().DigestAt(mid));
}

TEST(EdgeCaseTest, C5SingleWorkerDegeneratesToSerialOrder) {
  std::unique_ptr<Catalog> catalog(MakeCatalog(2));
  LogicalClock clock;
  PrimaryDb db(catalog.get(), &clock);
  LogShipper shipper(16);
  EpochChannel channel(64);
  shipper.AttachChannel(&channel);
  db.SetCommitSink([&](TxnLog txn) { shipper.OnCommit(std::move(txn)); });

  C5Replayer replayer(catalog.get(), &channel, C5Options{1, 100});
  ASSERT_TRUE(replayer.Start().ok());
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    PrimaryTxn txn = db.Begin();
    txn.Insert(static_cast<TableId>(rng.UniformInt(0, 1)),
               rng.UniformInt(0, 30), {{0, Value(static_cast<int64_t>(i))}});
    ASSERT_TRUE(db.Commit(std::move(txn)).ok());
  }
  shipper.Finish();
  replayer.Stop();
  Timestamp ts = db.last_commit_ts();
  EXPECT_EQ(replayer.store()->DigestAt(ts), db.store().DigestAt(ts));
}

TEST(EdgeCaseTest, EmptyChannelCloseStopsCleanly) {
  std::unique_ptr<Catalog> catalog(MakeCatalog(1));
  EpochChannel channel;
  AetsOptions options;
  options.replay_threads = 1;
  AetsReplayer replayer(catalog.get(), &channel, options);
  ASSERT_TRUE(replayer.Start().ok());
  channel.Close();
  replayer.Stop();
  EXPECT_TRUE(replayer.error().ok());
  EXPECT_EQ(replayer.stats().epochs.load(), 0u);
  EXPECT_EQ(replayer.GlobalVisibleTs(), kInvalidTimestamp);
}

TEST(EdgeCaseTest, BlockedPushWakesOnClose) {
  BlockingQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::atomic<bool> push_returned{false};
  std::atomic<bool> push_result{true};
  std::thread producer([&] {
    push_result.store(q.Push(2));  // blocks: queue full
    push_returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(push_returned.load());
  q.Close();
  producer.join();
  EXPECT_TRUE(push_returned.load());
  EXPECT_FALSE(push_result.load());  // push after close fails
}

TEST(EdgeCaseTest, ShipperAfterFinishDropsCommits) {
  LogShipper shipper(4);
  EpochChannel channel;
  shipper.AttachChannel(&channel);
  shipper.Finish();
  TxnLog txn;
  txn.txn_id = 1;
  txn.commit_ts = 1;
  shipper.OnCommit(std::move(txn));  // ignored, no crash
  EXPECT_EQ(shipper.epochs_shipped(), 0u);
  EXPECT_FALSE(channel.Receive().has_value());
}

TEST(EdgeCaseTest, AllColdGroupingStillReplaysInStageTwo) {
  // No hot table at all: two_stage runs everything in the cold stage.
  std::unique_ptr<Catalog> catalog(MakeCatalog(3));
  LogicalClock clock;
  PrimaryDb db(catalog.get(), &clock);
  LogShipper shipper(8);
  EpochChannel channel(64);
  shipper.AttachChannel(&channel);
  db.SetCommitSink([&](TxnLog txn) { shipper.OnCommit(std::move(txn)); });

  AetsOptions options;
  options.replay_threads = 2;
  options.grouping = GroupingMode::kPerTable;
  options.initial_rates = {0, 0, 0};
  AetsReplayer replayer(catalog.get(), &channel, options);
  ASSERT_TRUE(replayer.Start().ok());
  for (int i = 0; i < 100; ++i) {
    PrimaryTxn txn = db.Begin();
    txn.Insert(static_cast<TableId>(i % 3), i,
               {{0, Value(static_cast<int64_t>(i))}});
    ASSERT_TRUE(db.Commit(std::move(txn)).ok());
  }
  shipper.Finish();
  replayer.Stop();
  Timestamp ts = db.last_commit_ts();
  EXPECT_EQ(replayer.store()->DigestAt(ts), db.store().DigestAt(ts));
  // All the replay work happened in the cold stage.
  EXPECT_GT(replayer.stats().stage2_wall_ns.load(),
            replayer.stats().stage1_wall_ns.load() * 10);
}

}  // namespace
}  // namespace aets
