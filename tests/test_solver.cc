// Linear-algebra helper tests: Gaussian elimination and OLS fitting, the
// numeric core under ARIMA and the QB5000 linear-regression member.

#include <gtest/gtest.h>

#include <cmath>

#include "aets/common/rng.h"
#include "aets/predictor/solver.h"

namespace aets {
namespace {

TEST(SolveLinearSystemTest, TwoByTwo) {
  // 2x + y = 5; x - y = 1  =>  x = 2, y = 1.
  std::vector<double> x;
  ASSERT_TRUE(SolveLinearSystem({2, 1, 1, -1}, {5, 1}, 2, &x));
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(SolveLinearSystemTest, RequiresPivoting) {
  // Leading zero forces a row swap.
  std::vector<double> x;
  ASSERT_TRUE(SolveLinearSystem({0, 1, 1, 0}, {3, 7}, 2, &x));
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveLinearSystemTest, SingularFails) {
  std::vector<double> x;
  EXPECT_FALSE(SolveLinearSystem({1, 2, 2, 4}, {1, 2}, 2, &x));
}

TEST(SolveLinearSystemTest, RandomSystemsRoundTrip) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    int n = static_cast<int>(rng.UniformInt(1, 8));
    std::vector<double> a(static_cast<size_t>(n * n));
    std::vector<double> truth(static_cast<size_t>(n));
    for (auto& v : a) v = rng.Gaussian(0, 1);
    for (auto& v : truth) v = rng.Gaussian(0, 2);
    // b = A * truth.
    std::vector<double> b(static_cast<size_t>(n), 0.0);
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < n; ++c) {
        b[static_cast<size_t>(r)] +=
            a[static_cast<size_t>(r * n + c)] * truth[static_cast<size_t>(c)];
      }
    }
    std::vector<double> x;
    if (!SolveLinearSystem(a, b, n, &x)) continue;  // near-singular draw
    for (int i = 0; i < n; ++i) {
      EXPECT_NEAR(x[static_cast<size_t>(i)], truth[static_cast<size_t>(i)], 1e-6);
    }
  }
}

TEST(OlsFitTest, RecoversExactLinearModel) {
  // y = 3 + 2a - b over a grid; OLS must recover the coefficients.
  std::vector<double> x, y;
  for (int a = 0; a < 10; ++a) {
    for (int b = 0; b < 10; ++b) {
      x.push_back(1);
      x.push_back(a);
      x.push_back(b);
      y.push_back(3 + 2.0 * a - b);
    }
  }
  std::vector<double> theta;
  ASSERT_TRUE(OlsFit(x, y, 100, 3, &theta));
  EXPECT_NEAR(theta[0], 3.0, 1e-6);
  EXPECT_NEAR(theta[1], 2.0, 1e-6);
  EXPECT_NEAR(theta[2], -1.0, 1e-6);
}

TEST(OlsFitTest, NoisyFitIsClose) {
  Rng rng(4);
  std::vector<double> x, y;
  for (int i = 0; i < 500; ++i) {
    double a = rng.Gaussian(0, 1);
    x.push_back(1);
    x.push_back(a);
    y.push_back(5 - 0.7 * a + rng.Gaussian(0, 0.1));
  }
  std::vector<double> theta;
  ASSERT_TRUE(OlsFit(x, y, 500, 2, &theta));
  EXPECT_NEAR(theta[0], 5.0, 0.05);
  EXPECT_NEAR(theta[1], -0.7, 0.05);
}

TEST(OlsFitTest, RidgeHandlesCollinearColumns) {
  // Perfectly collinear features: plain normal equations are singular, but
  // the ridge keeps the solve stable.
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    x.push_back(2.0 * i);
    y.push_back(10.0 * i);
  }
  std::vector<double> theta;
  ASSERT_TRUE(OlsFit(x, y, 50, 2, &theta, 1e-4));
  // Any (t0 + 2 t1) == 10 combination is acceptable; check the prediction.
  EXPECT_NEAR(theta[0] + 2 * theta[1], 10.0, 1e-3);
}

}  // namespace
}  // namespace aets
