// ColumnStore unit tests (DESIGN.md §13): chunk builds, incremental
// generation publishes, residual top-up at every snapshot shape, tombstone
// overlays, irregular-row overflow, generation pruning — each asserted
// provably identical to the row store's ScanVisible/DigestAt at the same
// snapshot. The RebuildRacesPinnedQueries test is the TSan CI step's race
// surface: concurrent Publish against pinned readers.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "aets/catalog/catalog.h"
#include "aets/common/rng.h"
#include "aets/storage/column_store.h"
#include "aets/storage/memtable.h"
#include "aets/storage/table_store.h"
#include "test_seed.h"

namespace aets {
namespace storage {
namespace {

constexpr TableId kT = 0;

LogRecord Ins(int64_t key, Timestamp ts, std::vector<ColumnValue> values) {
  return LogRecord::Dml(LogRecordType::kInsert, static_cast<Lsn>(ts), 1, ts,
                        kT, key, std::move(values));
}

LogRecord Del(int64_t key, Timestamp ts) {
  return LogRecord::Dml(LogRecordType::kDelete, static_cast<Lsn>(ts), 1, ts,
                        kT, key, {});
}

/// Catalog with one table {a int64, b double, s string} + the store pair.
struct Rig {
  explicit Rig(size_t chunk_rows = 4, size_t max_generations = 8)
      : store(MakeCatalog(catalog)) {
    ColumnStoreOptions options;
    options.chunk_rows = chunk_rows;
    options.max_generations = max_generations;
    columns = std::make_unique<ColumnStore>(&catalog, &store, options);
  }

  static const Catalog& MakeCatalog(Catalog& catalog) {
    AETS_CHECK(catalog
                   .RegisterTable("t", Schema::Of({{"a", ColumnType::kInt64},
                                                   {"b", ColumnType::kDouble},
                                                   {"s", ColumnType::kString}}))
                   .ok());
    return catalog;
  }

  /// A regular row: a = key * 10, b = key * 0.5, s = "r<key>".
  void Apply(int64_t key, Timestamp ts) {
    store.GetTable(kT)->ApplyCommitted(
        Ins(key, ts,
            {{0, Value(key * 10)},
             {1, Value(static_cast<double>(key) * 0.5)},
             {2, Value("r" + std::to_string(key))}}),
        ts);
    columns->NoteDirty(kT, key, ts);
  }

  void Delete(int64_t key, Timestamp ts) {
    store.GetTable(kT)->ApplyCommitted(Del(key, ts), ts);
    columns->NoteDirty(kT, key, ts);
  }

  /// Column snapshot vs row-store ScanVisible at `qts`: same rows, same
  /// digest, same count — the tentpole's "provably identical" claim.
  void ExpectParity(Timestamp qts) {
    const Memtable* mt = store.GetTable(kT);
    ColumnSnapshot snap = columns->SnapshotAt(kT, qts);
    ASSERT_TRUE(snap.valid()) << "no generation covers qts " << qts;
    snap.LoadResidual();
    std::map<int64_t, Row> want;
    mt->ScanVisible(qts, [&](int64_t key, const Row& row) {
      want.emplace(key, row);
      return true;
    });
    std::map<int64_t, Row> got;
    snap.ScanRows([&](int64_t key, const Row& row) {
      EXPECT_TRUE(got.emplace(key, row).second)
          << "duplicate key " << key << " at qts " << qts;
      return true;
    });
    EXPECT_EQ(got, want) << "qts " << qts;
    EXPECT_EQ(snap.Digest(), mt->DigestAt(qts)) << "qts " << qts;
    EXPECT_EQ(snap.RowCount(), mt->VisibleRowCount(qts)) << "qts " << qts;
  }

  Catalog catalog;
  TableStore store;
  std::unique_ptr<ColumnStore> columns;
};

TEST(ColumnStoreTest, SeedMatchesRowStoreAcrossChunks) {
  Rig rig(/*chunk_rows=*/4);
  for (int64_t k = 1; k <= 10; ++k) rig.Apply(k, 10);
  rig.columns->SeedFromRows(10);
  EXPECT_EQ(rig.columns->PublishedTs(kT), 10);
  rig.ExpectParity(10);
  // qts past the seed with nothing pending: empty residual, same rows.
  rig.ExpectParity(15);
}

TEST(ColumnStoreTest, SnapshotBelowFirstGenerationIsInvalid) {
  Rig rig;
  rig.Apply(1, 10);
  rig.columns->SeedFromRows(10);
  EXPECT_FALSE(rig.columns->SnapshotAt(kT, 9).valid());
  EXPECT_TRUE(rig.columns->SnapshotAt(kT, 10).valid());
  // Unknown tables (off the catalog) also fall back to the row path.
  EXPECT_FALSE(rig.columns->SnapshotAt(kT + 7, 10).valid());
}

TEST(ColumnStoreTest, IncrementalPublishRoutesDirtyKeysToChunks) {
  Rig rig(/*chunk_rows=*/4);
  for (int64_t k = 1; k <= 20; ++k) rig.Apply(k, 20);
  rig.columns->SeedFromRows(20);  // 5 chunks of 4
  // Touch three distinct chunks, append past max_key, delete in another.
  rig.Apply(2, 21);    // chunk 0 update
  rig.Apply(9, 22);    // chunk 2 update
  rig.Apply(30, 23);   // append beyond the last chunk
  rig.Delete(14, 24);  // chunk 3 delete
  rig.Apply(18, 25);   // chunk 4 update
  rig.columns->Publish(25);
  EXPECT_EQ(rig.columns->PublishedTs(kT), 25);
  rig.ExpectParity(25);
  // The previous generation still answers historical snapshots, topping up
  // (20, qts] from the version chains via the newer generation's dirty set.
  for (Timestamp qts = 20; qts <= 25; ++qts) rig.ExpectParity(qts);
}

TEST(ColumnStoreTest, PendingResidualCoversUnpublishedTail) {
  Rig rig(/*chunk_rows=*/4);
  for (int64_t k = 1; k <= 8; ++k) rig.Apply(k, 10);
  rig.columns->SeedFromRows(10);
  // Dirty-but-unpublished writes: served from the newest generation plus
  // the live pending set (the residual path a mid-epoch query takes).
  rig.Apply(3, 11);
  rig.Apply(100, 12);
  rig.Delete(7, 13);
  for (Timestamp qts = 10; qts <= 13; ++qts) rig.ExpectParity(qts);
  rig.columns->Publish(13);
  for (Timestamp qts = 10; qts <= 13; ++qts) rig.ExpectParity(qts);
}

TEST(ColumnStoreTest, DeleteHeavyChunksCompactAndDisappear) {
  Rig rig(/*chunk_rows=*/4);
  for (int64_t k = 1; k <= 12; ++k) rig.Apply(k, 12);
  rig.columns->SeedFromRows(12);
  // Kill chunk 1 (keys 5..8) entirely plus one key of chunk 0: the rebuild
  // must drop the empty chunk, tombstone the lightly-touched one, and stay
  // row-identical throughout.
  for (int64_t k = 5; k <= 8; ++k) rig.Delete(k, 13);
  rig.Delete(1, 14);
  rig.columns->Publish(14);
  rig.ExpectParity(14);
  ColumnSnapshot snap = rig.columns->SnapshotAt(kT, 14);
  ASSERT_TRUE(snap.valid());
  size_t live = 0;
  for (const ColumnChunk& chunk : snap.chunks()) {
    live += chunk.live;
    EXPECT_GT(chunk.live, 0u) << "empty chunk retained";
  }
  EXPECT_EQ(live, 7u);
  // Deleting everything leaves a valid, empty generation.
  for (int64_t k = 2; k <= 12; ++k) {
    if (k != 5 && k != 6 && k != 7 && k != 8) rig.Delete(k, 15);
  }
  rig.columns->Publish(15);
  rig.ExpectParity(15);
  ColumnSnapshot empty = rig.columns->SnapshotAt(kT, 15);
  ASSERT_TRUE(empty.valid());
  empty.LoadResidual();
  EXPECT_EQ(empty.RowCount(), 0u);
}

TEST(ColumnStoreTest, IrregularRowsStayExact) {
  Rig rig(/*chunk_rows=*/4);
  for (int64_t k = 1; k <= 6; ++k) rig.Apply(k, 10);
  // Schema violations the projection cannot vectorize: a wrong-typed
  // column, an unknown column id, and a NULL — all must round-trip through
  // the irregular overflow (or null bitmap) without perturbing digests.
  rig.store.GetTable(kT)->ApplyCommitted(
      Ins(7, 10, {{0, Value("not-an-int")}, {1, Value(0.5)}}), 10);
  rig.columns->NoteDirty(kT, 7, 10);
  rig.store.GetTable(kT)->ApplyCommitted(
      Ins(8, 10, {{0, Value(int64_t{80})}, {9, Value(int64_t{1})}}), 10);
  rig.columns->NoteDirty(kT, 8, 10);
  rig.store.GetTable(kT)->ApplyCommitted(
      Ins(9, 10, {{0, Value(int64_t{90})}, {1, Value()}}), 10);
  rig.columns->NoteDirty(kT, 9, 10);
  rig.columns->SeedFromRows(10);
  rig.ExpectParity(10);
  // An irregular row updated back to a regular shape leaves the overflow.
  rig.Apply(7, 11);
  rig.columns->Publish(11);
  rig.ExpectParity(11);
  rig.ExpectParity(10);
}

TEST(ColumnStoreTest, GenerationPruningBoundsHistory) {
  Rig rig(/*chunk_rows=*/4, /*max_generations=*/2);
  rig.Apply(1, 10);
  rig.columns->SeedFromRows(10);
  rig.Apply(2, 20);
  rig.columns->Publish(20);
  rig.Apply(3, 30);
  rig.columns->Publish(30);
  // Generation 10 is pruned: snapshots in [10, 20) fall back to the row
  // path; [20, ...] stays columnar.
  EXPECT_FALSE(rig.columns->SnapshotAt(kT, 15).valid());
  rig.ExpectParity(20);
  rig.ExpectParity(25);
  rig.ExpectParity(30);
}

TEST(ColumnStoreTest, PublishWithoutDirtyKeysPublishesNothing) {
  Rig rig;
  rig.Apply(1, 10);
  rig.columns->SeedFromRows(10);
  rig.columns->Publish(20);  // no dirty keys: watermark must not advance
  EXPECT_EQ(rig.columns->PublishedTs(kT), 10);
  rig.ExpectParity(20);  // still exact via the empty residual
}

// The TSan CI step's target: one commit-context thread rebuilding
// generations while reader threads pin snapshots, load residuals, and
// digest chunks. Readers only use timestamps at or below the published
// watermark they observed, so every comparison is deterministic even
// though Publish races the scans.
TEST(ColumnStoreRaceTest, RebuildRacesPinnedQueries) {
  Rig rig(/*chunk_rows=*/8);
  for (int64_t k = 0; k < 32; ++k) rig.Apply(k, 1);
  rig.columns->SeedFromRows(1);

  constexpr Timestamp kLastTs = 400;
  std::atomic<bool> done{false};
  std::thread writer([&] {
    Rng rng(test::DeriveSeed(42));
    for (Timestamp ts = 2; ts <= kLastTs; ++ts) {
      int writes = static_cast<int>(rng.UniformInt(1, 4));
      for (int w = 0; w < writes; ++w) {
        int64_t key = rng.UniformInt(0, 47);
        if (rng.UniformInt(0, 9) < 8) {
          rig.Apply(key, ts);
        } else {
          rig.Delete(key, ts);
        }
      }
      if (ts % 3 == 0) rig.columns->Publish(ts);
    }
    rig.columns->Publish(kLastTs);
    done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  std::atomic<uint64_t> checked{0};
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(test::DeriveSeed(100 + static_cast<uint64_t>(r)));
      const Memtable* mt = rig.store.GetTable(kT);
      bool last_pass = false;
      while (!last_pass) {
        last_pass = done.load(std::memory_order_acquire);
        Timestamp published = rig.columns->PublishedTs(kT);
        if (published == kInvalidTimestamp) continue;
        // At or below the observed watermark every version is installed
        // and immutable, so row/column parity must hold mid-race.
        // Timestamp is unsigned: subtract-then-clamp would wrap past the
        // watermark while the writer is mid-flight, so clamp first.
        Timestamp delta = rng.UniformInt(0, 5);
        Timestamp qts = published > delta ? published - delta : 1;
        ColumnSnapshot snap = rig.columns->SnapshotAt(kT, qts);
        if (!snap.valid()) continue;  // generation already pruned
        snap.LoadResidual();
        ASSERT_EQ(snap.Digest(), mt->DigestAt(qts)) << "qts " << qts;
        ASSERT_EQ(snap.RowCount(), mt->VisibleRowCount(qts));
        checked.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_GT(checked.load(), 0u);
  rig.ExpectParity(kLastTs);
}

}  // namespace
}  // namespace storage
}  // namespace aets
