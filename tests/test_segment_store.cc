// Durable segment store (DESIGN.md §10): frame round-trips, rollover and
// manifest handling, torn-tail truncation on reopen, the damage-provenance
// rule (sealed-segment or manifest damage is Corruption, never a silent
// truncation), disk-full degradation through the write fault hook, and a
// seeded kill-at-any-byte chaos sweep.
//
// This binary has its own main(): `--chaos_iters=N` (or AETS_CHAOS_ITERS)
// scales the chaos sweep for the nightly run.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "aets/log/epoch.h"
#include "aets/log/record.h"
#include "aets/log/shipped_epoch.h"
#include "aets/storage/segment_store.h"
#include "test_seed.h"

static int g_chaos_iters = 2;

namespace aets {
namespace {

namespace fs = std::filesystem;

SegmentStoreOptions DirOptions(const std::string& dir) {
  SegmentStoreOptions options;
  options.dir = dir;
  return options;
}

std::string FreshDir(const char* name) {
  std::string dir = std::string(::testing::TempDir()) + "/" + name;
  fs::remove_all(dir);
  return dir;
}

// One data epoch with `txns` single-insert transactions; payload size scales
// with `value_len` so tests can steer rollover behavior.
ShippedEpoch MakeEpoch(EpochId id, Timestamp ts, int txns = 1,
                       size_t value_len = 8) {
  Epoch epoch;
  epoch.epoch_id = id;
  for (int t = 0; t < txns; ++t) {
    TxnLog txn;
    txn.txn_id = static_cast<TxnId>(id * 100 + t + 1);
    txn.commit_ts = ts + t;
    txn.records = {
        LogRecord::Begin(1, txn.txn_id, txn.commit_ts),
        LogRecord::Dml(LogRecordType::kInsert, 2, txn.txn_id, txn.commit_ts,
                       0, static_cast<int64_t>(t),
                       {{0, Value(std::string(value_len, 'x'))}}),
        LogRecord::Commit(3, txn.txn_id, txn.commit_ts)};
    epoch.txns.push_back(std::move(txn));
  }
  return EncodeEpoch(epoch);
}

void ExpectSameEpoch(const ShippedEpoch& got, const ShippedEpoch& want) {
  EXPECT_EQ(got.epoch_id, want.epoch_id);
  EXPECT_EQ(got.num_txns, want.num_txns);
  EXPECT_EQ(got.num_records, want.num_records);
  EXPECT_EQ(got.first_txn, want.first_txn);
  EXPECT_EQ(got.last_txn, want.last_txn);
  EXPECT_EQ(got.max_commit_ts, want.max_commit_ts);
  EXPECT_EQ(got.heartbeat_ts, want.heartbeat_ts);
  EXPECT_EQ(got.payload_crc, want.payload_crc);
  ASSERT_TRUE(got.payload != nullptr);
  ASSERT_TRUE(want.payload != nullptr);
  EXPECT_EQ(*got.payload, *want.payload);
  EXPECT_TRUE(got.PayloadIntact());
}

std::string NewestSegment(const std::string& dir) {
  std::string newest;
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::string name = entry.path().filename().string();
    if (name.rfind("seg-", 0) == 0 && name > newest) newest = name;
  }
  return dir + "/" + newest;
}

void FlipByte(const std::string& path, size_t offset) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.is_open()) << path;
  f.seekg(static_cast<std::streamoff>(offset));
  char b;
  f.read(&b, 1);
  b = static_cast<char>(b ^ 0xFF);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&b, 1);
}

TEST(SegmentStoreTest, RoundTripAcrossReopen) {
  std::string dir = FreshDir("segstore_roundtrip");
  std::vector<ShippedEpoch> epochs;
  for (EpochId id = 0; id < 10; ++id) {
    if (id % 4 == 3) {
      epochs.push_back(MakeHeartbeatEpoch(id, 1000 + id));
    } else {
      epochs.push_back(MakeEpoch(id, 10 * id + 1, /*txns=*/3));
    }
  }
  {
    auto store = SegmentStore::Open(DirOptions(dir));
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_TRUE((*store)->empty());
    for (const auto& e : epochs) {
      ASSERT_TRUE((*store)->Append(e).ok());
    }
    EXPECT_EQ((*store)->next_epoch(), 10u);
    for (const auto& want : epochs) {
      auto got = (*store)->Read(want.epoch_id);
      ASSERT_TRUE(got.has_value()) << want.epoch_id;
      ExpectSameEpoch(*got, want);
    }
    EXPECT_FALSE((*store)->Read(10).has_value());
    EXPECT_GT((*store)->bytes_written(), 0u);
  }
  // Reopen: the index rebuilds from the files alone.
  auto reopened = SegmentStore::Open(DirOptions(dir));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->first_epoch(), 0u);
  EXPECT_EQ((*reopened)->next_epoch(), 10u);
  EXPECT_EQ((*reopened)->torn_frames_truncated(), 0u);
  for (const auto& want : epochs) {
    auto got = (*reopened)->Read(want.epoch_id);
    ASSERT_TRUE(got.has_value()) << want.epoch_id;
    ExpectSameEpoch(*got, want);
  }
  // And appending continues the sequence.
  ShippedEpoch next = MakeEpoch(10, 500);
  ASSERT_TRUE((*reopened)->Append(next).ok());
  auto got = (*reopened)->Read(10);
  ASSERT_TRUE(got.has_value());
  ExpectSameEpoch(*got, next);
}

TEST(SegmentStoreTest, RolloverSealsFixedSizeSegments) {
  std::string dir = FreshDir("segstore_rollover");
  SegmentStoreOptions options;
  options.dir = dir;
  options.segment_max_bytes = 2048;
  auto store = SegmentStore::Open(options);
  ASSERT_TRUE(store.ok());
  for (EpochId id = 0; id < 40; ++id) {
    ASSERT_TRUE((*store)->Append(MakeEpoch(id, id + 1, 2, 64)).ok());
  }
  EXPECT_GT((*store)->num_segments(), 3u);
  for (EpochId id = 0; id < 40; ++id) {
    EXPECT_TRUE((*store)->Read(id).has_value()) << id;
  }
  // Reopen sees the same segmentation and the same epochs.
  auto reopened = SegmentStore::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->num_segments(), (*store)->num_segments());
  EXPECT_EQ((*reopened)->next_epoch(), 40u);
  for (EpochId id = 0; id < 40; ++id) {
    EXPECT_TRUE((*reopened)->Read(id).has_value()) << id;
  }
}

TEST(SegmentStoreTest, AppendEnforcesTheEpochSequence) {
  std::string dir = FreshDir("segstore_sequence");
  auto store = SegmentStore::Open(DirOptions(dir));
  ASSERT_TRUE(store.ok());
  // First append sets the base: a store can start mid-sequence.
  ASSERT_TRUE((*store)->Append(MakeEpoch(5, 51)).ok());
  EXPECT_EQ((*store)->first_epoch(), 5u);
  Status s = (*store)->Append(MakeEpoch(9, 91));  // gap
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  ASSERT_TRUE((*store)->Append(MakeEpoch(6, 61)).ok());
  EXPECT_EQ((*store)->next_epoch(), 7u);
  EXPECT_FALSE((*store)->Read(4).has_value());
}

TEST(SegmentStoreTest, TornTailIsTruncatedOnReopen) {
  std::string dir = FreshDir("segstore_torn");
  {
    auto store = SegmentStore::Open(DirOptions(dir));
    ASSERT_TRUE(store.ok());
    for (EpochId id = 0; id < 6; ++id) {
      ASSERT_TRUE((*store)->Append(MakeEpoch(id, id + 1)).ok());
    }
  }
  // A torn write: garbage bytes past the last complete frame.
  {
    std::ofstream f(NewestSegment(dir), std::ios::binary | std::ios::app);
    f.write("\x13garbage-torn-tail\x37", 19);
  }
  auto reopened = SegmentStore::Open(DirOptions(dir));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->next_epoch(), 6u);
  EXPECT_EQ((*reopened)->torn_frames_truncated(), 1u);
  for (EpochId id = 0; id < 6; ++id) {
    EXPECT_TRUE((*reopened)->Read(id).has_value()) << id;
  }
  // The tail is clean again: appends continue where the damage was cut.
  ASSERT_TRUE((*reopened)->Append(MakeEpoch(6, 7)).ok());
  auto third = SegmentStore::Open(DirOptions(dir));
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  EXPECT_EQ((*third)->next_epoch(), 7u);
}

TEST(SegmentStoreTest, BadFrameInNewestSegmentDropsTheSuffix) {
  std::string dir = FreshDir("segstore_midflip");
  {
    auto store = SegmentStore::Open(DirOptions(dir));
    ASSERT_TRUE(store.ok());
    for (EpochId id = 0; id < 8; ++id) {
      ASSERT_TRUE((*store)->Append(MakeEpoch(id, id + 1)).ok());
    }
  }
  // Flip a byte mid-file: the scan keeps the clean prefix and discards the
  // rest — a shorter durable history, never a wrong one.
  std::string seg = NewestSegment(dir);
  FlipByte(seg, fs::file_size(seg) / 2);
  auto reopened = SegmentStore::Open(DirOptions(dir));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_LT((*reopened)->next_epoch(), 8u);
  EXPECT_GT((*reopened)->torn_frames_truncated(), 0u);
  for (EpochId id = 0; id < (*reopened)->next_epoch(); ++id) {
    EXPECT_TRUE((*reopened)->Read(id).has_value()) << id;
  }
}

TEST(SegmentStoreTest, SealedSegmentDamageIsCorruption) {
  std::string dir = FreshDir("segstore_sealed");
  SegmentStoreOptions options;
  options.dir = dir;
  options.segment_max_bytes = 512;
  {
    auto store = SegmentStore::Open(options);
    ASSERT_TRUE(store.ok());
    for (EpochId id = 0; id < 20; ++id) {
      ASSERT_TRUE((*store)->Append(MakeEpoch(id, id + 1, 1, 64)).ok());
    }
    ASSERT_GT((*store)->num_segments(), 1u);
  }
  // Damage the OLDEST segment: those bytes were sealed and fsynced;
  // truncating them away would silently rewrite durable history.
  std::string oldest;
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::string name = entry.path().filename().string();
    if (name.rfind("seg-", 0) != 0) continue;
    if (oldest.empty() || name < oldest) oldest = name;
  }
  FlipByte(dir + "/" + oldest, 20);
  auto reopened = SegmentStore::Open(options);
  ASSERT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsCorruption())
      << reopened.status().ToString();
}

TEST(SegmentStoreTest, ManifestDamageIsCorruption) {
  std::string dir = FreshDir("segstore_manifest");
  {
    auto store = SegmentStore::Open(DirOptions(dir));
    ASSERT_TRUE(store.ok());
    for (EpochId id = 0; id < 4; ++id) {
      ASSERT_TRUE((*store)->Append(MakeEpoch(id, id + 1)).ok());
    }
  }
  FlipByte(dir + "/MANIFEST", 12);  // inside the manifest checksum
  auto reopened = SegmentStore::Open(DirOptions(dir));
  ASSERT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsCorruption())
      << reopened.status().ToString();
}

TEST(SegmentStoreTest, SegmentsWithoutManifestAreCorruption) {
  std::string dir = FreshDir("segstore_nomanifest");
  {
    auto store = SegmentStore::Open(DirOptions(dir));
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Append(MakeEpoch(0, 1)).ok());
  }
  fs::remove(dir + "/MANIFEST");
  auto reopened = SegmentStore::Open(DirOptions(dir));
  ASSERT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsCorruption())
      << reopened.status().ToString();
}

TEST(SegmentStoreTest, DiskFullFailsTheAppendNotTheStore) {
  std::string dir = FreshDir("segstore_diskfull");
  SegmentStoreOptions options;
  options.dir = dir;
  bool full = false;
  options.write_fault_hook = [&full](size_t) {
    return full ? Status::Internal("injected: disk full") : Status::OK();
  };
  auto store = SegmentStore::Open(options);
  ASSERT_TRUE(store.ok());
  for (EpochId id = 0; id < 4; ++id) {
    ASSERT_TRUE((*store)->Append(MakeEpoch(id, id + 1)).ok());
  }
  full = true;
  ShippedEpoch blocked = MakeEpoch(4, 5);
  EXPECT_FALSE((*store)->Append(blocked).ok());
  // The store is consistent at its previous prefix, and the failed append
  // is retryable once space frees up.
  EXPECT_EQ((*store)->next_epoch(), 4u);
  EXPECT_TRUE((*store)->Read(3).has_value());
  full = false;
  ASSERT_TRUE((*store)->Append(blocked).ok());
  EXPECT_EQ((*store)->next_epoch(), 5u);
  auto reopened = SegmentStore::Open(DirOptions(dir));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->next_epoch(), 5u);
}

TEST(SegmentStoreTest, TruncateBelowDropsSealedPrefixAndSurvivesReopen) {
  std::string dir = FreshDir("segstore_truncate");
  SegmentStoreOptions options;
  options.dir = dir;
  options.segment_max_bytes = 1024;
  auto store = SegmentStore::Open(options);
  ASSERT_TRUE(store.ok());
  for (EpochId id = 0; id < 40; ++id) {
    ASSERT_TRUE((*store)->Append(MakeEpoch(id, id + 1, 2, 64)).ok());
  }
  size_t segments_before = (*store)->num_segments();
  ASSERT_GT(segments_before, 3u);
  uint64_t disk_before = (*store)->disk_bytes();

  ASSERT_TRUE((*store)->TruncateBelow(20).ok());
  EpochId first = (*store)->first_epoch();
  EXPECT_GT(first, 0u);
  EXPECT_LE(first, 20u);
  EXPECT_EQ((*store)->next_epoch(), 40u);
  EXPECT_EQ((*store)->truncations(), 1u);
  EXPECT_GT((*store)->segments_deleted(), 0u);
  EXPECT_GT((*store)->bytes_reclaimed(), 0u);
  EXPECT_LT((*store)->disk_bytes(), disk_before);
  for (EpochId id = 0; id < first; ++id) {
    EXPECT_FALSE((*store)->Read(id).has_value()) << id;
  }
  for (EpochId id = first; id < 40; ++id) {
    auto got = (*store)->Read(id);
    ASSERT_TRUE(got.has_value()) << id;
    EXPECT_TRUE(got->PayloadIntact());
  }

  // Reopen sees the truncated store, not the dropped prefix, and appends
  // continue the sequence.
  auto reopened = SegmentStore::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->first_epoch(), first);
  EXPECT_EQ((*reopened)->next_epoch(), 40u);
  EXPECT_FALSE((*reopened)->Read(first - 1).has_value());
  ASSERT_TRUE((*reopened)->Append(MakeEpoch(40, 41)).ok());
  for (EpochId id = first; id < 41; ++id) {
    EXPECT_TRUE((*reopened)->Read(id).has_value()) << id;
  }
}

TEST(SegmentStoreTest, TruncateBelowKeepsTheNewestSegment) {
  std::string dir = FreshDir("segstore_truncate_all");
  SegmentStoreOptions options;
  options.dir = dir;
  options.segment_max_bytes = 1024;
  auto store = SegmentStore::Open(options);
  ASSERT_TRUE(store.ok());
  for (EpochId id = 0; id < 30; ++id) {
    ASSERT_TRUE((*store)->Append(MakeEpoch(id, id + 1, 2, 64)).ok());
  }
  // Floor past the end: everything sealed goes, the append head stays.
  ASSERT_TRUE((*store)->TruncateBelow((*store)->next_epoch()).ok());
  EXPECT_EQ((*store)->num_segments(), 1u);
  EXPECT_EQ((*store)->next_epoch(), 30u);
  EpochId first = (*store)->first_epoch();
  for (EpochId id = first; id < 30; ++id) {
    EXPECT_TRUE((*store)->Read(id).has_value()) << id;
  }
  ASSERT_TRUE((*store)->Append(MakeEpoch(30, 31)).ok());
  auto reopened = SegmentStore::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->first_epoch(), first);
  EXPECT_EQ((*reopened)->next_epoch(), 31u);
}

TEST(SegmentStoreTest, TruncateBelowInsideFirstSegmentIsANoOp) {
  std::string dir = FreshDir("segstore_truncate_noop");
  auto store = SegmentStore::Open(DirOptions(dir));
  ASSERT_TRUE(store.ok());
  for (EpochId id = 0; id < 6; ++id) {
    ASSERT_TRUE((*store)->Append(MakeEpoch(id, id + 1)).ok());
  }
  // Everything lives in one segment: nothing is wholly below the floor.
  ASSERT_TRUE((*store)->TruncateBelow(4).ok());
  EXPECT_EQ((*store)->first_epoch(), 0u);
  EXPECT_EQ((*store)->truncations(), 0u);
  EXPECT_EQ((*store)->segments_deleted(), 0u);
  for (EpochId id = 0; id < 6; ++id) {
    EXPECT_TRUE((*store)->Read(id).has_value()) << id;
  }
}

// Kill-at-any-point over the truncation sequence: the fault hook aborts at
// step 0 (before the manifest rewrite) and at every unlink boundary after
// it. Whatever the crash window, reopen must land on a consistent store —
// never Corruption, never a resurrected pre-floor epoch — and a re-issued
// TruncateBelow must finish the job.
TEST(SegmentStoreChaosTest, KillAnywhereInTruncationReopensConsistently) {
  for (int iter = 0; iter < g_chaos_iters; ++iter) {
    uint64_t seed = test::DeriveSeed(1700u + static_cast<uint64_t>(iter));
    const int total = 24 + static_cast<int>(seed % 16);
    const EpochId floor = static_cast<EpochId>(total / 2);
    bool exhausted = false;
    for (int step = 0; !exhausted; ++step) {
      std::string dir = FreshDir("segstore_truncchaos");
      SegmentStoreOptions options;
      options.dir = dir;
      options.segment_max_bytes = 1024 + (seed % 2048);
      options.truncate_fault_hook = [step](int at) {
        return at == step ? Status::Internal("injected crash") : Status::OK();
      };
      auto store = SegmentStore::Open(options);
      ASSERT_TRUE(store.ok());
      for (EpochId id = 0; id < static_cast<EpochId>(total); ++id) {
        int txns = 1 + static_cast<int>((seed >> (id % 32)) % 3);
        ASSERT_TRUE((*store)->Append(MakeEpoch(id, id + 1, txns, 48)).ok());
      }
      EpochId first_before = (*store)->first_epoch();
      Status ts = (*store)->TruncateBelow(floor);
      // Once the step index runs past the last unlink the hook never fires
      // and the truncation completes — that bounds the sweep.
      exhausted = ts.ok();
      (*store).reset();  // the "crash": drop the process state, keep the dir

      options.truncate_fault_hook = nullptr;
      auto reopened = SegmentStore::Open(options);
      ASSERT_TRUE(reopened.ok()) << "iter " << iter << " step " << step << ": "
                                 << reopened.status().ToString();
      EpochId first = (*reopened)->first_epoch();
      // Either crash window: the floor segment's start when the manifest
      // rewrite landed, the old base when the crash beat it.
      if (step == 0 && !exhausted) {
        EXPECT_EQ(first, first_before) << "iter " << iter;
      } else {
        EXPECT_GT(first, first_before) << "iter " << iter << " step " << step;
        EXPECT_LE(first, floor) << "iter " << iter << " step " << step;
      }
      EXPECT_EQ((*reopened)->next_epoch(), static_cast<EpochId>(total));
      for (EpochId id = first; id < static_cast<EpochId>(total); ++id) {
        auto got = (*reopened)->Read(id);
        ASSERT_TRUE(got.has_value())
            << "iter " << iter << " step " << step << " epoch " << id;
        EXPECT_TRUE(got->PayloadIntact());
      }
      for (EpochId id = 0; id < first; ++id) {
        EXPECT_FALSE((*reopened)->Read(id).has_value())
            << "iter " << iter << " step " << step << " resurrected " << id;
      }
      // Reopen swept the orphans the interrupted unlink pass left behind:
      // no segment file on disk may start below the manifest's first entry
      // (the file names encode their first epoch as 16 hex digits).
      for (const auto& entry : fs::directory_iterator(dir)) {
        std::string name = entry.path().filename().string();
        if (name.rfind("seg-", 0) != 0) continue;
        EpochId file_first =
            static_cast<EpochId>(std::strtoull(name.substr(4, 16).c_str(),
                                               nullptr, 16));
        EXPECT_GE(file_first, first)
            << "iter " << iter << " step " << step << " orphan " << name;
      }
      // Re-issued truncation completes and leaves the same floor invariant.
      ASSERT_TRUE((*reopened)->TruncateBelow(floor).ok());
      EXPECT_LE((*reopened)->first_epoch(), floor);
      ASSERT_TRUE((*reopened)
                      ->Append(MakeEpoch(static_cast<EpochId>(total),
                                         static_cast<Timestamp>(total) + 1))
                      .ok());
    }
  }
}

// Kill-at-any-byte: truncate the newest segment at a random offset (what a
// crash mid-write leaves behind) and demand reopen always lands on a clean
// prefix that can keep appending.
TEST(SegmentStoreChaosTest, RandomTruncationAlwaysLeavesACleanPrefix) {
  for (int iter = 0; iter < g_chaos_iters * 8; ++iter) {
    uint64_t seed = test::DeriveSeed(900u + static_cast<uint64_t>(iter));
    std::string dir = FreshDir("segstore_chaos");
    SegmentStoreOptions options;
    options.dir = dir;
    options.segment_max_bytes = 1024 + (seed % 4096);
    int total = 12 + static_cast<int>(seed % 24);
    {
      auto store = SegmentStore::Open(options);
      ASSERT_TRUE(store.ok());
      for (EpochId id = 0; id < static_cast<EpochId>(total); ++id) {
        int txns = 1 + static_cast<int>((seed >> (id % 32)) % 3);
        ASSERT_TRUE((*store)->Append(MakeEpoch(id, id + 1, txns)).ok());
      }
    }
    std::string seg = NewestSegment(dir);
    size_t size = fs::file_size(seg);
    fs::resize_file(seg, (seed >> 17) % (size + 1));

    auto reopened = SegmentStore::Open(options);
    ASSERT_TRUE(reopened.ok())
        << "iter " << iter << ": " << reopened.status().ToString();
    EpochId next = (*reopened)->next_epoch();
    EXPECT_LE(next, static_cast<EpochId>(total));
    for (EpochId id = 0; id < next; ++id) {
      auto got = (*reopened)->Read(id);
      ASSERT_TRUE(got.has_value()) << "iter " << iter << " epoch " << id;
      EXPECT_EQ(got->epoch_id, id);
      EXPECT_TRUE(got->PayloadIntact());
    }
    // The truncated store must accept the regenerated sequence from `next`.
    for (EpochId id = next; id < static_cast<EpochId>(total); ++id) {
      ASSERT_TRUE((*reopened)->Append(MakeEpoch(id, id + 1)).ok());
    }
    EXPECT_EQ((*reopened)->next_epoch(), static_cast<EpochId>(total));
  }
}

}  // namespace
}  // namespace aets

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  aets::test::InitSeedFromArgs(&argc, argv);
  aets::test::InstallSeedBanner();
  if (const char* env = std::getenv("AETS_CHAOS_ITERS")) {
    g_chaos_iters = std::max(1, std::atoi(env));
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--chaos_iters=";
    if (arg.rfind(prefix, 0) == 0) {
      g_chaos_iters = std::max(1, std::atoi(arg.c_str() + prefix.size()));
    }
  }
  return RUN_ALL_TESTS();
}
