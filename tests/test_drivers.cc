// End-to-end HTAP driver tests: OLTP driver feeding a live replayer while
// the OLAP driver issues queries per Algorithm 3, plus the access tracker.

#include <gtest/gtest.h>

#include "aets/baselines/atr_replayer.h"
#include "aets/replay/access_tracker.h"
#include "aets/replay/aets_replayer.h"
#include "aets/replication/log_shipper.h"
#include "aets/workload/bustracker.h"
#include "aets/workload/driver.h"
#include "aets/workload/tpcc.h"

namespace aets {
namespace {

TEST(AccessTrackerTest, SlotsAndRates) {
  AccessTracker tracker(3);
  tracker.RecordAccess(0);
  tracker.RecordAccess(0);
  tracker.RecordQuery({1, 2});
  EXPECT_EQ(tracker.CurrentSlot(), (std::vector<double>{2, 1, 1}));
  tracker.AdvanceSlot();
  EXPECT_EQ(tracker.num_slots(), 1u);
  EXPECT_EQ(tracker.CurrentSlot(), (std::vector<double>{0, 0, 0}));
  tracker.RecordAccess(0);
  tracker.AdvanceSlot();
  EXPECT_EQ(tracker.LastSlot(), (std::vector<double>{1, 0, 0}));
  EXPECT_EQ(tracker.MeanRate(2), (std::vector<double>{1.5, 0.5, 0.5}));
  auto history = tracker.History();
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[0], (std::vector<double>{2, 1, 1}));
}

TEST(AccessTrackerTest, MeanRateWindowClamping) {
  AccessTracker tracker(1);
  tracker.RecordAccess(0);
  tracker.AdvanceSlot();
  EXPECT_EQ(tracker.MeanRate(100)[0], 1.0);  // window larger than history
  EXPECT_EQ(tracker.MeanRate(0)[0], 0.0);
}

TEST(DriverTest, EndToEndTpccHtap) {
  TpccConfig config;
  config.warehouses = 1;
  config.items = 60;
  config.customers_per_district = 8;
  config.init_orders_per_district = 2;
  TpccWorkload tpcc(config);

  LogicalClock clock;
  PrimaryDb db(&tpcc.catalog(), &clock);

  LogShipper shipper(/*epoch_size=*/32);
  EpochChannel channel(1024);
  shipper.AttachChannel(&channel);
  db.SetCommitSink([&](TxnLog txn) { shipper.OnCommit(std::move(txn)); });
  // The sink is attached before the load phase so the backup receives the
  // initial population too.
  Rng rng(1);
  tpcc.Load(&db, &rng);
  // Heartbeats flush partial epochs when the primary goes idle; without
  // them a query whose data sits in an unsealed epoch would wait forever.
  shipper.StartHeartbeats([&db] { return db.AcquireHeartbeatTs(); },
                          /*interval_us=*/2'000);

  AetsOptions options;
  options.replay_threads = 2;
  options.grouping = GroupingMode::kStatic;
  options.static_hot_groups = tpcc.DefaultHotGroups();
  options.initial_rates = std::vector<double>(tpcc.catalog().num_tables(), 0.0);
  options.initial_rates[tpcc.orderline()] = 200;
  options.initial_rates[tpcc.district()] = 100;
  options.initial_rates[tpcc.stock()] = 100;
  options.initial_rates[tpcc.customer()] = 100;
  options.initial_rates[tpcc.orders()] = 100;
  AetsReplayer replayer(&tpcc.catalog(), &channel, options);
  ASSERT_TRUE(replayer.Start().ok());

  // OLTP concurrent with OLAP on the backup.
  OltpDriver oltp(&tpcc, &db, 3);
  oltp.Start(/*num_txns=*/300);

  AccessTracker tracker(tpcc.catalog().num_tables());
  OlapDriver::Options olap_options;
  olap_options.num_queries = 100;
  olap_options.tracker = &tracker;
  olap_options.read_rows = true;
  OlapDriver olap(&tpcc, &replayer, &clock, olap_options);
  olap.Run();

  oltp.Join();
  shipper.Finish();
  replayer.Stop();
  ASSERT_TRUE(replayer.error().ok()) << replayer.error().ToString();

  EXPECT_EQ(oltp.txns_committed(), 300u);
  EXPECT_EQ(olap.delays().count(), 100);
  EXPECT_GE(olap.delays().Mean(), 0.0);
  // Per-query histograms cover both templates.
  ASSERT_EQ(olap.per_query_delays().size(), 2u);
  EXPECT_EQ(olap.per_query_delays()[0].count() +
                olap.per_query_delays()[1].count(),
            100);
  // The tracker saw accesses on hot tables only.
  auto counts = tracker.CurrentSlot();
  EXPECT_GT(counts[tpcc.orderline()], 0.0);
  EXPECT_EQ(counts[tpcc.warehouse()], 0.0);

  // Final state matches primary.
  Timestamp final_ts = db.last_commit_ts();
  EXPECT_EQ(replayer.store()->DigestAt(final_ts),
            db.store().DigestAt(final_ts));
}

TEST(DriverTest, BusTrackerWithDynamicRegrouping) {
  BusTrackerConfig config;
  config.rows_per_table = 10;
  BusTrackerWorkload bus(config);

  LogicalClock clock;
  PrimaryDb db(&bus.catalog(), &clock);

  LogShipper shipper(/*epoch_size=*/16);
  EpochChannel channel(1024);
  shipper.AttachChannel(&channel);
  db.SetCommitSink([&](TxnLog txn) { shipper.OnCommit(std::move(txn)); });
  Rng rng(2);
  bus.Load(&db, &rng);

  std::atomic<int> slot{0};
  AetsOptions options;
  options.replay_threads = 2;
  options.grouping = GroupingMode::kByAccessRate;
  options.initial_rates = bus.TrueRates(0);
  options.rate_provider = [&bus, &slot] {
    return bus.TrueRates(slot.load());
  };
  AetsReplayer replayer(&bus.catalog(), &channel, options);
  ASSERT_TRUE(replayer.Start().ok());

  OltpDriver oltp(&bus, &db, 7);
  for (int s = 0; s < 4; ++s) {
    slot.store(s * 12);  // shift the workload phase
    oltp.Run(150);
  }
  shipper.Finish();
  replayer.Stop();
  ASSERT_TRUE(replayer.error().ok()) << replayer.error().ToString();

  Timestamp final_ts = db.last_commit_ts();
  EXPECT_EQ(replayer.store()->DigestAt(final_ts),
            db.store().DigestAt(final_ts));
  // Grouping reflects hot/cold structure: some hot groups, singleton colds.
  auto groups = replayer.groups();
  size_t hot = 0;
  for (const auto& g : groups) hot += g.hot ? 1 : 0;
  EXPECT_GT(hot, 0u);
  EXPECT_GT(groups.size(), hot);
}

TEST(DriverTest, OlapDriverAgainstAtr) {
  TpccConfig config;
  config.warehouses = 1;
  config.items = 40;
  config.customers_per_district = 5;
  config.init_orders_per_district = 1;
  TpccWorkload tpcc(config);
  LogicalClock clock;
  PrimaryDb db(&tpcc.catalog(), &clock);

  LogShipper shipper(/*epoch_size=*/16);
  EpochChannel channel(1024);
  shipper.AttachChannel(&channel);
  db.SetCommitSink([&](TxnLog txn) { shipper.OnCommit(std::move(txn)); });
  Rng rng(3);
  tpcc.Load(&db, &rng);
  shipper.StartHeartbeats([&db] { return db.AcquireHeartbeatTs(); },
                          /*interval_us=*/2'000);

  AtrReplayer replayer(&tpcc.catalog(), &channel, AtrOptions{2});
  ASSERT_TRUE(replayer.Start().ok());

  OltpDriver oltp(&tpcc, &db, 9);
  oltp.Start(150);
  OlapDriver::Options olap_options;
  olap_options.num_queries = 50;
  OlapDriver olap(&tpcc, &replayer, &clock, olap_options);
  olap.Run();
  oltp.Join();
  shipper.Finish();
  replayer.Stop();
  ASSERT_TRUE(replayer.error().ok());
  EXPECT_EQ(olap.delays().count(), 50);
}

}  // namespace
}  // namespace aets
