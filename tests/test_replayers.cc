// Replayer correctness: every parallel replayer (AETS in several grouping
// configurations, TPLR-ungrouped, ATR, C5) must produce a backup state
// identical to the primary and the serial oracle, publish monotonic
// visibility timestamps, and satisfy Algorithm 3. Includes a parameterized
// random-workload equivalence sweep and failure injection.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "aets/baselines/atr_replayer.h"
#include "aets/log/codec.h"
#include "aets/baselines/c5_replayer.h"
#include "aets/baselines/serial_replayer.h"
#include "aets/baselines/tplr_replayer.h"
#include "aets/obs/metrics.h"
#include "aets/replay/aets_replayer.h"
#include "aets/replication/log_shipper.h"
#include "aets/storage/gc_daemon.h"
#include "aets/workload/driver.h"
#include "aets/workload/tpcc.h"
#include "test_seed.h"

namespace aets {
namespace {

// Runs `num_txns` of a random multi-table workload on the primary and ships
// it to every provided replayer; returns the primary digest at the final
// commit timestamp.
struct Pipeline {
  explicit Pipeline(const Catalog* catalog, size_t epoch_size = 16)
      : catalog(catalog), clock(), db(catalog, &clock), shipper(epoch_size) {
    db.SetCommitSink([this](TxnLog txn) { shipper.OnCommit(std::move(txn)); });
  }

  EpochChannel* AddChannel() {
    channels.push_back(std::make_unique<EpochChannel>(1024));
    shipper.AttachChannel(channels.back().get());
    return channels.back().get();
  }

  const Catalog* catalog;
  LogicalClock clock;
  PrimaryDb db;
  LogShipper shipper;
  std::vector<std::unique_ptr<EpochChannel>> channels;
};

// A small random workload over `num_tables` tables with inserts, updates,
// deletes, and multi-table transactions.
void RunRandomWorkload(PrimaryDb* db, int num_tables, int num_txns,
                       uint64_t seed) {
  Rng rng(seed);
  for (int i = 0; i < num_txns; ++i) {
    PrimaryTxn txn = db->Begin();
    int writes = static_cast<int>(rng.UniformInt(1, 6));
    for (int w = 0; w < writes; ++w) {
      TableId table = static_cast<TableId>(rng.UniformInt(0, num_tables - 1));
      int64_t key = rng.UniformInt(0, 199);
      int kind = static_cast<int>(rng.UniformInt(0, 9));
      if (kind < 5) {
        txn.Insert(table, key,
                   {{0, Value(static_cast<int64_t>(i))},
                    {1, Value(rng.AlphaString(4, 12))}});
      } else if (kind < 9) {
        txn.Update(table, key, {{0, Value(static_cast<int64_t>(i * 10))}});
      } else {
        txn.Delete(table, key);
      }
    }
    ASSERT_TRUE(db->Commit(std::move(txn)).ok());
  }
}

Catalog* MakeCatalog(int num_tables) {
  auto* catalog = new Catalog();
  for (int t = 0; t < num_tables; ++t) {
    AETS_CHECK(catalog
                   ->RegisterTable("t" + std::to_string(t),
                                   Schema::Of({{"a", ColumnType::kInt64},
                                               {"b", ColumnType::kString}}))
                   .ok());
  }
  return catalog;
}

std::vector<double> RatesForTables(int num_tables) {
  std::vector<double> rates(static_cast<size_t>(num_tables), 0.0);
  // Half the tables are hot with varying rates.
  for (int t = 0; t < num_tables / 2; ++t) {
    rates[static_cast<size_t>(t)] = 10.0 * (t + 1) * (t + 1);
  }
  return rates;
}

// Builds one of each replayer configuration under test.
std::vector<std::unique_ptr<Replayer>> MakeAllReplayers(
    const Catalog* catalog, Pipeline* pipeline, int num_tables) {
  std::vector<std::unique_ptr<Replayer>> replayers;
  std::vector<double> rates = RatesForTables(num_tables);

  {
    AetsOptions options;
    options.replay_threads = 4;
    options.commit_threads = 2;
    options.grouping = GroupingMode::kPerTable;
    options.initial_rates = rates;
    options.pipeline_depth = 1;  // unpipelined reference configuration
    replayers.push_back(std::make_unique<AetsReplayer>(
        catalog, pipeline->AddChannel(), options));
  }
  {
    AetsOptions options;
    options.replay_threads = 3;
    options.commit_threads = 2;
    options.grouping = GroupingMode::kByAccessRate;
    options.initial_rates = rates;
    options.pipeline_depth = 3;  // deep cross-epoch pipeline (DESIGN.md §9)
    replayers.push_back(std::make_unique<AetsReplayer>(
        catalog, pipeline->AddChannel(), options));
  }
  {
    AetsOptions options;
    options.replay_threads = 4;
    options.commit_threads = 2;
    options.grouping = GroupingMode::kStatic;
    options.static_hot_groups = {{0, 1}, {2}};
    options.initial_rates = rates;
    replayers.push_back(std::make_unique<AetsReplayer>(
        catalog, pipeline->AddChannel(), options));
  }
  replayers.push_back(
      MakeTplrReplayer(catalog, pipeline->AddChannel(), /*threads=*/4));
  replayers.push_back(std::make_unique<AtrReplayer>(
      catalog, pipeline->AddChannel(), AtrOptions{/*workers=*/4}));
  replayers.push_back(std::make_unique<C5Replayer>(
      catalog, pipeline->AddChannel(),
      C5Options{/*workers=*/4, /*watermark_period_us=*/500}));
  replayers.push_back(
      std::make_unique<SerialReplayer>(catalog, pipeline->AddChannel()));
  return replayers;
}

TEST(ReplayerEquivalenceTest, AllReplayersMatchPrimaryOnRandomWorkload) {
  constexpr int kTables = 6;
  std::unique_ptr<Catalog> catalog(MakeCatalog(kTables));
  Pipeline pipeline(catalog.get());
  auto replayers = MakeAllReplayers(catalog.get(), &pipeline, kTables);
  for (auto& r : replayers) ASSERT_TRUE(r->Start().ok());

  RunRandomWorkload(&pipeline.db, kTables, /*num_txns=*/800,
                    test::DeriveSeed(42));
  pipeline.shipper.Finish();
  for (auto& r : replayers) r->Stop();

  Timestamp final_ts = pipeline.db.last_commit_ts();
  uint64_t expected = pipeline.db.store().DigestAt(final_ts);
  size_t expected_rows = pipeline.db.store().VisibleRowCount(final_ts);
  for (auto& r : replayers) {
    EXPECT_EQ(r->store()->DigestAt(final_ts), expected) << r->name();
    EXPECT_EQ(r->store()->VisibleRowCount(final_ts), expected_rows)
        << r->name();
    EXPECT_EQ(r->GlobalVisibleTs(), final_ts) << r->name();
    EXPECT_EQ(r->stats().txns.load(), 800u) << r->name();
  }
}

// Parameterized sweep over seeds and epoch sizes.
class ReplayerEquivalenceSweep
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(ReplayerEquivalenceSweep, DigestsMatch) {
  auto [seed, epoch_size] = GetParam();
  constexpr int kTables = 5;
  std::unique_ptr<Catalog> catalog(MakeCatalog(kTables));
  Pipeline pipeline(catalog.get(), static_cast<size_t>(epoch_size));
  auto replayers = MakeAllReplayers(catalog.get(), &pipeline, kTables);
  for (auto& r : replayers) ASSERT_TRUE(r->Start().ok());

  RunRandomWorkload(&pipeline.db, kTables, /*num_txns=*/300, seed);
  pipeline.shipper.Finish();
  for (auto& r : replayers) r->Stop();

  Timestamp final_ts = pipeline.db.last_commit_ts();
  uint64_t expected = pipeline.db.store().DigestAt(final_ts);
  for (auto& r : replayers) {
    EXPECT_EQ(r->store()->DigestAt(final_ts), expected)
        << r->name() << " seed=" << seed << " epoch=" << epoch_size;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReplayerEquivalenceSweep,
    ::testing::Combine(::testing::Values(1u, 7u, 99u),
                       ::testing::Values(1, 8, 64, 1024)));

TEST(ReplayerEquivalenceTest, TpccWorkloadMatches) {
  TpccConfig config;
  config.warehouses = 1;
  config.items = 100;
  config.customers_per_district = 10;
  config.init_orders_per_district = 3;
  TpccWorkload tpcc(config);
  Pipeline pipeline(&tpcc.catalog(), /*epoch_size=*/32);
  auto replayers =
      MakeAllReplayers(&tpcc.catalog(),
                       &pipeline, static_cast<int>(tpcc.catalog().num_tables()));
  for (auto& r : replayers) ASSERT_TRUE(r->Start().ok());

  Rng rng(5);
  tpcc.Load(&pipeline.db, &rng);
  OltpDriver driver(&tpcc, &pipeline.db, 5);
  driver.Run(400);
  pipeline.shipper.Finish();
  for (auto& r : replayers) r->Stop();

  Timestamp final_ts = pipeline.db.last_commit_ts();
  uint64_t expected = pipeline.db.store().DigestAt(final_ts);
  for (auto& r : replayers) {
    EXPECT_EQ(r->store()->DigestAt(final_ts), expected) << r->name();
  }
}

TEST(VisibilityTest, PerGroupPublishBeforeEpochEnd) {
  // With per-table groups, a table's data becomes visible when its group
  // commits, which Algorithm 3 observes through tg_cmt_ts.
  std::unique_ptr<Catalog> catalog(MakeCatalog(2));
  Pipeline pipeline(catalog.get(), /*epoch_size=*/4);
  AetsOptions options;
  options.replay_threads = 2;
  options.grouping = GroupingMode::kPerTable;
  options.initial_rates = {100.0, 0.0};  // table 0 hot, table 1 cold
  AetsReplayer replayer(catalog.get(), pipeline.AddChannel(), options);
  ASSERT_TRUE(replayer.Start().ok());

  RunRandomWorkload(&pipeline.db, 2, 64, 3);
  Timestamp qts = pipeline.db.last_commit_ts();
  pipeline.shipper.Finish();

  // Algorithm 3 for a query on both tables must eventually unblock with all
  // data visible.
  int64_t waited = WaitVisible(replayer, {0, 1}, qts);
  EXPECT_GE(waited, 0);
  EXPECT_TRUE(IsVisible(replayer, {0, 1}, qts));
  replayer.Stop();
  EXPECT_GE(replayer.TableVisibleTs(0), qts);
  EXPECT_EQ(replayer.GlobalVisibleTs(), qts);
}

TEST(VisibilityTest, WatermarkIsMonotonic) {
  std::unique_ptr<Catalog> catalog(MakeCatalog(3));
  Pipeline pipeline(catalog.get(), /*epoch_size=*/8);
  AetsOptions options;
  options.replay_threads = 2;
  options.grouping = GroupingMode::kPerTable;
  options.initial_rates = RatesForTables(3);
  AetsReplayer replayer(catalog.get(), pipeline.AddChannel(), options);
  ASSERT_TRUE(replayer.Start().ok());

  std::atomic<bool> stop{false};
  std::atomic<bool> violated{false};
  std::thread monitor([&] {
    Timestamp last_global = 0;
    std::vector<Timestamp> last_table(3, 0);
    while (!stop.load()) {
      Timestamp g = replayer.GlobalVisibleTs();
      if (g < last_global) violated.store(true);
      last_global = g;
      for (TableId t = 0; t < 3; ++t) {
        Timestamp ts = replayer.TableVisibleTs(t);
        if (ts < last_table[t]) violated.store(true);
        last_table[t] = ts;
      }
    }
  });
  RunRandomWorkload(&pipeline.db, 3, 500, 9);
  pipeline.shipper.Finish();
  replayer.Stop();
  stop.store(true);
  monitor.join();
  EXPECT_FALSE(violated.load());
}

TEST(FailureInjectionTest, CorruptedPayloadSetsError) {
  std::unique_ptr<Catalog> catalog(MakeCatalog(2));
  EpochChannel channel;
  AetsOptions options;
  options.replay_threads = 2;
  options.grouping = GroupingMode::kPerTable;
  AetsReplayer replayer(catalog.get(), &channel, options);
  ASSERT_TRUE(replayer.Start().ok());

  // Hand-craft an epoch and corrupt one byte mid-payload.
  Epoch epoch;
  TxnLog txn;
  txn.txn_id = 1;
  txn.commit_ts = 1;
  txn.records = {LogRecord::Begin(1, 1, 1),
                 LogRecord::Dml(LogRecordType::kInsert, 2, 1, 1, 0, 1,
                                {{0, Value(int64_t{1})}}),
                 LogRecord::Commit(3, 1, 1)};
  epoch.txns.push_back(txn);
  ShippedEpoch shipped = EncodeEpoch(epoch);
  auto corrupted = std::make_shared<std::string>(*shipped.payload);
  (*corrupted)[corrupted->size() / 2] ^= 0x10;
  shipped.payload = corrupted;
  channel.Send(shipped);
  channel.Close();
  replayer.Stop();
  EXPECT_TRUE(replayer.error().IsCorruption()) << replayer.error().ToString();
}

TEST(FailureInjectionTest, OutOfOrderEpochRejected) {
  std::unique_ptr<Catalog> catalog(MakeCatalog(2));
  EpochChannel channel;
  AetsOptions options;
  options.replay_threads = 1;
  options.grouping = GroupingMode::kSingle;
  AetsReplayer replayer(catalog.get(), &channel, options);
  ASSERT_TRUE(replayer.Start().ok());

  // Epoch id 3 when 0 is expected.
  channel.Send(MakeHeartbeatEpoch(3, 100));
  channel.Close();
  replayer.Stop();
  EXPECT_TRUE(replayer.error().IsCorruption());
}

TEST(FailureInjectionTest, SerialReplayerDetectsCorruption) {
  std::unique_ptr<Catalog> catalog(MakeCatalog(1));
  EpochChannel channel;
  SerialReplayer replayer(catalog.get(), &channel);
  ASSERT_TRUE(replayer.Start().ok());
  channel.Send(MakeHeartbeatEpoch(5, 1));  // wrong first epoch id
  channel.Close();
  replayer.Stop();
  EXPECT_TRUE(replayer.error().IsCorruption());
}

// Models a socket-backed EpochSource whose first NACK for each id hits a
// read timeout: the fetch returns nullopt even though the shipper still
// retains the epoch. In-process, a retention miss is definitive loss; over
// TCP the very same nullopt can be a transient I/O timeout, so the replayer
// must retry before latching.
class TimeoutOnceSource : public EpochSource {
 public:
  explicit TimeoutOnceSource(EpochSource* inner) : inner_(inner) {}

  std::optional<ShippedEpoch> FetchEpoch(EpochId id) override {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (timed_out_.insert(id).second) {
        ++misses_;
        return std::nullopt;  // simulated read timeout on the NACK RPC
      }
    }
    return inner_->FetchEpoch(id);
  }
  EpochId NextEpochId() const override { return inner_->NextEpochId(); }
  EpochId FloorEpochId() const override { return inner_->FloorEpochId(); }

  int misses() const {
    std::lock_guard<std::mutex> lk(mu_);
    return misses_;
  }

 private:
  EpochSource* inner_;
  mutable std::mutex mu_;
  std::set<EpochId> timed_out_;
  int misses_ = 0;
};

// Ships a workload with one heartbeat in the middle, then replays it with
// `drop_index` removed from the stream so the replayer must NACK it back.
// Returns the primary's final digest for comparison.
struct NackScenario {
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<Pipeline> pipeline;
  std::vector<ShippedEpoch> epochs;
  size_t heartbeat_index = 0;

  explicit NackScenario(uint64_t seed) {
    catalog.reset(MakeCatalog(2));
    pipeline = std::make_unique<Pipeline>(catalog.get(), /*epoch_size=*/8);
    EpochChannel* tap = pipeline->AddChannel();
    RunRandomWorkload(&pipeline->db, 2, 60, seed);
    pipeline->shipper.ShipHeartbeat(pipeline->db.AcquireHeartbeatTs());
    RunRandomWorkload(&pipeline->db, 2, 60, seed + 1);
    pipeline->shipper.Finish();
    while (auto epoch = tap->TryReceive()) epochs.push_back(std::move(*epoch));
    for (size_t i = 0; i < epochs.size(); ++i) {
      if (epochs[i].is_heartbeat()) {
        heartbeat_index = i;
        break;
      }
    }
  }

};

TEST(RecoveryTest, TransientNackTimeoutOnHeartbeatDoesNotPoisonReplayer) {
  // A heartbeat epoch dropped by the link plus ONE timed-out NACK fetch: the
  // epoch is still in retention, so the replayer must retry (with backoff)
  // and recover instead of latching a terminal Corruption.
  NackScenario scenario(test::DeriveSeed(77));
  ASSERT_GT(scenario.epochs.size(), scenario.heartbeat_index + 1);
  ASSERT_TRUE(scenario.epochs[scenario.heartbeat_index].is_heartbeat());

  EpochChannel channel(1024);
  for (size_t i = 0; i < scenario.epochs.size(); ++i) {
    if (i != scenario.heartbeat_index) {
      ASSERT_TRUE(channel.Send(scenario.epochs[i]));
    }
  }
  channel.Close();

  SerialReplayer replayer(scenario.catalog.get(), &channel);
  TimeoutOnceSource source(&scenario.pipeline->shipper);
  replayer.SetEpochSource(&source);
  ReplayRecoveryOptions options;
  options.reorder_window_pauses = 32;
  options.max_retries = 4;
  replayer.SetRecoveryOptions(options);
  ASSERT_TRUE(replayer.Start().ok());
  replayer.Stop();

  EXPECT_TRUE(replayer.error().ok()) << replayer.error().ToString();
  EXPECT_GE(source.misses(), 1);
  Timestamp final_ts = scenario.pipeline->db.last_commit_ts();
  EXPECT_EQ(replayer.store()->DigestAt(final_ts),
            scenario.pipeline->db.store().DigestAt(final_ts));
}

TEST(RecoveryTest, TransientNackTimeoutInFinalDrainDoesNotPoisonReplayer) {
  // The link swallows the LAST epoch, so recovery happens in the post-close
  // final drain; the one timed-out fetch must be retried there too.
  NackScenario scenario(test::DeriveSeed(79));
  ASSERT_GT(scenario.epochs.size(), 2u);

  EpochChannel channel(1024);
  for (size_t i = 0; i + 1 < scenario.epochs.size(); ++i) {
    ASSERT_TRUE(channel.Send(scenario.epochs[i]));
  }
  channel.Close();

  SerialReplayer replayer(scenario.catalog.get(), &channel);
  TimeoutOnceSource source(&scenario.pipeline->shipper);
  replayer.SetEpochSource(&source);
  ReplayRecoveryOptions options;
  options.reorder_window_pauses = 32;
  options.max_retries = 4;
  replayer.SetRecoveryOptions(options);
  ASSERT_TRUE(replayer.Start().ok());
  replayer.Stop();

  EXPECT_TRUE(replayer.error().ok()) << replayer.error().ToString();
  EXPECT_GE(source.misses(), 1);
  Timestamp final_ts = scenario.pipeline->db.last_commit_ts();
  EXPECT_EQ(replayer.store()->DigestAt(final_ts),
            scenario.pipeline->db.store().DigestAt(final_ts));
}

TEST(ReplayerLifecycleTest, StartValidatesOptions) {
  std::unique_ptr<Catalog> catalog(MakeCatalog(1));
  EpochChannel channel;
  AetsOptions options;
  options.replay_threads = 0;
  AetsReplayer replayer(catalog.get(), &channel, options);
  EXPECT_TRUE(replayer.Start().IsInvalidArgument());
  channel.Close();
}

TEST(ReplayerLifecycleTest, HeartbeatAdvancesAllTables) {
  std::unique_ptr<Catalog> catalog(MakeCatalog(3));
  EpochChannel channel;
  AetsOptions options;
  options.replay_threads = 1;
  options.grouping = GroupingMode::kPerTable;
  AetsReplayer replayer(catalog.get(), &channel, options);
  ASSERT_TRUE(replayer.Start().ok());
  channel.Send(MakeHeartbeatEpoch(0, 500));
  channel.Close();
  replayer.Stop();
  EXPECT_EQ(replayer.GlobalVisibleTs(), 500u);
  for (TableId t = 0; t < 3; ++t) EXPECT_EQ(replayer.TableVisibleTs(t), 500u);
  EXPECT_TRUE(replayer.error().ok());
}

// Property sweep: the full live pipeline — heartbeats flushing partial
// epochs, concurrent GC on the backup, dynamic regrouping — still converges
// to the primary state for every seed.
class LivePipelineSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LivePipelineSweep, HeartbeatsAndGcPreserveEquivalence) {
  constexpr int kTables = 4;
  std::unique_ptr<Catalog> catalog(MakeCatalog(kTables));
  LogicalClock clock;
  PrimaryDb db(catalog.get(), &clock);
  LogShipper shipper(/*epoch_size=*/32);
  EpochChannel channel(1024);
  shipper.AttachChannel(&channel);
  db.SetCommitSink([&](TxnLog txn) { shipper.OnCommit(std::move(txn)); });
  shipper.StartHeartbeats([&db] { return db.AcquireHeartbeatTs(); },
                          /*interval_us=*/1'000);

  AetsOptions options;
  options.replay_threads = 2;
  options.grouping = GroupingMode::kByAccessRate;
  options.initial_rates = RatesForTables(kTables);
  AetsReplayer replayer(catalog.get(), &channel, options);
  ASSERT_TRUE(replayer.Start().ok());
  GcDaemon gc(replayer.store(), [&] { return replayer.GlobalVisibleTs(); },
              /*retention=*/20, /*interval_us=*/300);
  gc.Start();

  for (int burst = 0; burst < 5; ++burst) {
    RunRandomWorkload(&db, kTables, 120, GetParam() * 100 + burst);
    // Idle gap: heartbeats flush the partial epoch; queries at "now" must
    // unblock without the shipper finishing.
    Timestamp qts = clock.Now();
    int64_t waited = WaitVisible(replayer, {0, 1, 2, 3}, qts);
    EXPECT_GE(waited, 0);
  }
  shipper.Finish();
  replayer.Stop();
  gc.Stop();

  Timestamp final_ts = db.last_commit_ts();
  EXPECT_EQ(replayer.store()->DigestAt(final_ts),
            db.store().DigestAt(final_ts));
  EXPECT_TRUE(replayer.error().ok()) << replayer.error().ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, LivePipelineSweep,
                         ::testing::Values(1u, 2u, 3u, 4u));

// ---------------------------------------------------------------------------
// Cross-epoch pipeline (DESIGN.md §9)
// ---------------------------------------------------------------------------

// A commit hook that blocks the commit context on the first data epoch until
// the test releases it, freezing the commit stage while the prepare stage
// runs ahead.
struct BlockingCommitHook {
  std::function<void(const ShippedEpoch&)> AsHook() {
    return [this](const ShippedEpoch& epoch) {
      if (epoch.is_heartbeat() || epoch.epoch_id != 0) return;
      std::unique_lock<std::mutex> lk(mu);
      blocked.store(true, std::memory_order_release);
      cv.wait(lk, [this] { return released; });
    };
  }
  void Release() {
    std::lock_guard<std::mutex> lk(mu);
    released = true;
    cv.notify_all();
  }

  std::mutex mu;
  std::condition_variable cv;
  bool released = false;
  std::atomic<bool> blocked{false};
};

// One hand-crafted data epoch: a single transaction inserting `marker` into
// table 0's string column at `commit_ts`. The marker makes the string's
// value bytes findable in the encoded payload, so tests can corrupt exactly
// the region the metadata dispatch skips.
ShippedEpoch MakeStringInsertEpoch(EpochId id, Timestamp commit_ts,
                                   const std::string& marker) {
  Epoch epoch;
  epoch.epoch_id = id;
  TxnLog txn;
  txn.txn_id = commit_ts;
  txn.commit_ts = commit_ts;
  uint64_t lsn = commit_ts * 10;
  txn.records = {
      LogRecord::Begin(lsn, txn.txn_id, commit_ts),
      LogRecord::Dml(LogRecordType::kInsert, lsn + 1, txn.txn_id, commit_ts,
                     /*table=*/0, /*key=*/static_cast<int64_t>(commit_ts),
                     {{0, Value(static_cast<int64_t>(commit_ts))},
                      {1, Value(marker)}}),
      LogRecord::Commit(lsn + 2, txn.txn_id, commit_ts)};
  epoch.txns.push_back(std::move(txn));
  return EncodeEpoch(epoch);
}

// Flips one byte inside the epoch's copy of `marker` — i.e. inside a DML
// record's value bytes — and recomputes the epoch-level payload CRC. The
// epoch then passes the receive-side integrity check and the metadata
// dispatch (which skips value bytes and per-record checksums), and fails
// only in phase-1 translation, where DecodeView verifies the record frame.
void CorruptValueBytes(ShippedEpoch* shipped, const std::string& marker) {
  auto tampered = std::make_shared<std::string>(*shipped->payload);
  size_t pos = tampered->find(marker);
  ASSERT_NE(pos, std::string::npos);
  (*tampered)[pos] ^= 0x01;
  shipped->payload = tampered;
  shipped->payload_crc = Crc32c(tampered->data(), tampered->size());
  ASSERT_TRUE(shipped->PayloadIntact());
}

TEST(PipelineTest, PublicationStaysInOrderUnderBackpressure) {
  // Freeze the committer on epoch 0 with depth 3: the prepare stage may run
  // ahead by exactly `depth` epochs (plus the one blocked in ApplyNext), and
  // nothing may become visible until the committer resumes — publication is
  // epoch-ordered even though translation of later epochs already finished.
  constexpr int kTables = 2;
  constexpr int kDepth = 3;
  std::unique_ptr<Catalog> catalog(MakeCatalog(kTables));
  Pipeline pipeline(catalog.get(), /*epoch_size=*/4);
  AetsOptions options;
  options.replay_threads = 2;
  options.grouping = GroupingMode::kPerTable;
  options.pipeline_depth = kDepth;
  AetsReplayer replayer(catalog.get(), pipeline.AddChannel(), options);
  BlockingCommitHook hook;
  replayer.SetCommitHookForTest(hook.AsHook());
  ASSERT_TRUE(replayer.Start().ok());

  RunRandomWorkload(&pipeline.db, kTables, /*num_txns=*/100,
                    test::DeriveSeed(71));
  pipeline.shipper.Finish();  // ~25 epochs, far more than the pipeline holds

  // The admission sequence must advance to depth + 1 (epochs 1..depth-1
  // queued behind the blocked epoch 0, one more blocked inside ApplyNext)
  // and then stall there.
  while (replayer.next_expected_epoch() < kDepth + 1) {
    std::this_thread::yield();
  }
  while (replayer.stats().pipeline_stalls.load() == 0) {
    std::this_thread::yield();
  }
  EXPECT_EQ(replayer.next_expected_epoch(), static_cast<EpochId>(kDepth + 1));
  // Nothing committed: no watermark moved, however far translation ran.
  EXPECT_EQ(replayer.GlobalVisibleTs(), kInvalidTimestamp);
  for (TableId t = 0; t < kTables; ++t) {
    EXPECT_EQ(replayer.TableVisibleTs(t), kInvalidTimestamp);
  }
  EXPECT_EQ(replayer.stats().epochs.load(), 0u);

  hook.Release();
  replayer.Stop();

  Timestamp final_ts = pipeline.db.last_commit_ts();
  EXPECT_TRUE(replayer.error().ok()) << replayer.error().ToString();
  EXPECT_EQ(replayer.GlobalVisibleTs(), final_ts);
  EXPECT_EQ(replayer.store()->DigestAt(final_ts),
            pipeline.db.store().DigestAt(final_ts));
  EXPECT_EQ(replayer.stats().txns.load(), 100u);
  EXPECT_GE(replayer.stats().pipeline_stalls.load(), 1u);
}

TEST(PipelineTest, ErrorLatchMidPipelineDrainsWithoutPublishing) {
  // Epoch 0 is frozen in the committer while epochs 1..4 flow into the
  // pipeline; epoch 2 carries value-byte corruption that only phase-1
  // translation detects. The latch must trip while earlier epochs are still
  // uncommitted, and once it does, NO watermark may advance — not even for
  // the healthy epochs admitted before the corrupt one — and the pipeline
  // must drain cleanly on Stop().
  constexpr int kTables = 2;
  std::unique_ptr<Catalog> catalog(MakeCatalog(kTables));
  EpochChannel channel(64);
  AetsOptions options;
  options.replay_threads = 2;
  options.grouping = GroupingMode::kPerTable;
  options.pipeline_depth = 3;
  AetsReplayer replayer(catalog.get(), &channel, options);
  BlockingCommitHook hook;
  replayer.SetCommitHookForTest(hook.AsHook());
  ASSERT_TRUE(replayer.Start().ok());

  const std::string marker = "pipelatchmarker";
  for (EpochId id = 0; id < 5; ++id) {
    ShippedEpoch shipped = MakeStringInsertEpoch(id, /*commit_ts=*/id + 1,
                                                 marker);
    if (id == 2) CorruptValueBytes(&shipped, marker);
    channel.Send(shipped);
  }

  // The corrupt epoch's translation latches the error while epoch 0 is
  // still blocked in the commit hook.
  while (replayer.error().ok()) {
    std::this_thread::yield();
  }
  EXPECT_EQ(replayer.GlobalVisibleTs(), kInvalidTimestamp);
  for (TableId t = 0; t < kTables; ++t) {
    EXPECT_EQ(replayer.TableVisibleTs(t), kInvalidTimestamp);
  }

  hook.Release();
  channel.Close();
  replayer.Stop();  // in-flight items drain without committing

  EXPECT_TRUE(replayer.error().IsCorruption()) << replayer.error().ToString();
  EXPECT_EQ(replayer.GlobalVisibleTs(), kInvalidTimestamp);
  for (TableId t = 0; t < kTables; ++t) {
    EXPECT_EQ(replayer.TableVisibleTs(t), kInvalidTimestamp);
  }
  EXPECT_EQ(replayer.stats().epochs.load(), 0u);
}

TEST(PipelineTest, QuietTableWatermarkFrozenByStageFailure) {
  // Regression for the quiet-table watermark leak: with per-table groups,
  // a dimension table untouched by the epoch ("quiet") used to get its
  // tg_cmt_ts published unconditionally at epoch end, BEFORE the error
  // latch was consulted — so a stage failure in the same epoch left the
  // quiet table's watermark past the failure point, and Algorithm 3 would
  // serve a query a snapshot the epoch never earned. The publish now sits
  // after the HasError() check; this test fails against the old order.
  std::unique_ptr<Catalog> catalog(MakeCatalog(2));
  EpochChannel channel(8);
  AetsOptions options;
  options.replay_threads = 2;
  options.grouping = GroupingMode::kPerTable;  // table 1 gets a quiet group
  AetsReplayer replayer(catalog.get(), &channel, options);
  ASSERT_TRUE(replayer.Start().ok());

  // The only transaction touches table 0; table 1 stays quiet this epoch.
  const std::string marker = "quietleakmarker";
  ShippedEpoch shipped = MakeStringInsertEpoch(/*id=*/0, /*commit_ts=*/7,
                                               marker);
  CorruptValueBytes(&shipped, marker);
  channel.Send(shipped);
  channel.Close();
  replayer.Stop();

  EXPECT_TRUE(replayer.error().IsCorruption()) << replayer.error().ToString();
  // The failed group's table froze...
  EXPECT_EQ(replayer.TableVisibleTs(0), kInvalidTimestamp);
  // ...and the quiet table must NOT have been announced visible at the
  // epoch's max commit timestamp (the leak this PR fixes).
  EXPECT_EQ(replayer.TableVisibleTs(1), kInvalidTimestamp);
  EXPECT_EQ(replayer.GlobalVisibleTs(), kInvalidTimestamp);
}

TEST(ReplayerStatsTest, PhaseBreakdownAccumulates) {
  std::unique_ptr<Catalog> catalog(MakeCatalog(4));
  Pipeline pipeline(catalog.get(), /*epoch_size=*/16);
  AetsOptions options;
  options.replay_threads = 2;
  options.grouping = GroupingMode::kPerTable;
  options.initial_rates = RatesForTables(4);
  AetsReplayer replayer(catalog.get(), pipeline.AddChannel(), options);
  ASSERT_TRUE(replayer.Start().ok());
  RunRandomWorkload(&pipeline.db, 4, 200, 17);
  pipeline.shipper.Finish();
  replayer.Stop();

  const ReplayStats& stats = replayer.stats();
  EXPECT_EQ(stats.txns.load(), 200u);
  EXPECT_GT(stats.records.load(), 0u);
  EXPECT_GT(stats.bytes.load(), 0u);
  EXPECT_GT(stats.dispatch_ns.load(), 0);
  EXPECT_GT(stats.replay_ns.load(), 0);
  EXPECT_GT(stats.commit_ns.load(), 0);
  // The replay phase dominates (paper Table II: > 98%). Allow slack on a
  // loaded CI machine but the ordering must hold.
  EXPECT_GT(stats.ReplayFraction(), stats.DispatchFraction());
  EXPECT_GT(stats.ReplayFraction(), stats.CommitFraction());
  double total = stats.DispatchFraction() + stats.ReplayFraction() +
                 stats.CommitFraction();
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ReplayerStatsTest, ObservabilityMetricsPopulatedAfterReplay) {
  // The aets::obs registry is process-wide; scope this test's readings.
  obs::MetricsRegistry::Instance().ResetAll();

  std::unique_ptr<Catalog> catalog(MakeCatalog(4));
  Pipeline pipeline(catalog.get(), /*epoch_size=*/16);
  AetsOptions options;
  options.replay_threads = 2;
  options.grouping = GroupingMode::kPerTable;
  options.initial_rates = RatesForTables(4);
  AetsReplayer replayer(catalog.get(), pipeline.AddChannel(), options);
  ASSERT_TRUE(replayer.Start().ok());
  RunRandomWorkload(&pipeline.db, 4, 200, 23);
  pipeline.shipper.Finish();

  // An OLAP query waiting for visibility populates the replay-lag series.
  Timestamp query_ts = pipeline.clock.Now();
  WaitVisible(replayer, {0, 1, 2, 3}, query_ts);
  replayer.Stop();

  obs::MetricsSnapshot snap = obs::MetricsRegistry::Instance().Snapshot();

  // Volume counters: every shipped txn was applied exactly once.
  EXPECT_GT(snap.counters.at("replay.epochs_applied"), 0u);
  EXPECT_EQ(snap.counters.at("replay.txns_applied"), 200u);
  EXPECT_GT(snap.counters.at("replay.records_applied"), 0u);
  EXPECT_GT(snap.counters.at("replay.bytes_applied"), 0u);
  EXPECT_EQ(snap.counters.at("shipper.txns_shipped"), 200u);

  // Replay lag: the published watermark reached the query timestamp, and
  // the visibility series recorded the wait.
  EXPECT_GE(snap.gauges.at("replay.global_visible_ts"),
            static_cast<int64_t>(query_ts));
  EXPECT_GT(snap.counters.at("visibility.queries"), 0u);
  EXPECT_GT(snap.histograms.at("visibility.wait_us").count, 0);

  // Per-stage latency series: the epoch span plus both replay stages ran
  // (RatesForTables(4) makes tables 0-1 hot and 2-3 cold).
  EXPECT_GT(snap.histograms.at("replay.epoch_apply_us").count, 0);
  EXPECT_GT(snap.histograms.at("span.replay.epoch").count, 0);
  EXPECT_GT(snap.histograms.at("span.replay.dispatch").count, 0);
  EXPECT_GT(snap.histograms.at("span.replay.stage1_hot").count, 0);
  EXPECT_GT(snap.histograms.at("span.replay.stage2_cold").count, 0);

  // Thread-allocator series: groups exist and per-group thread gauges were
  // published during the run.
  EXPECT_GT(snap.gauges.at("allocator.groups"), 0);
  ASSERT_TRUE(snap.gauges.count("allocator.group_threads.g0"));
  EXPECT_GE(snap.gauges.at("allocator.group_threads.g0"), 0);

  // Channel accounting balances: everything sent was received.
  EXPECT_GT(snap.counters.at("channel.epochs_sent"), 0u);
  EXPECT_EQ(snap.gauges.at("channel.depth"), 0);
}

}  // namespace
}  // namespace aets
