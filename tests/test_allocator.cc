// Adaptive thread allocation (paper Section IV-B) and DBSCAN/grouping tests.

#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <utility>

#include "aets/common/rng.h"
#include "aets/predictor/dbscan.h"
#include "aets/replay/table_group.h"
#include "aets/replay/thread_allocator.h"
#include "test_seed.h"

namespace aets {
namespace {

TEST(UrgencyFactorTest, LogDamped) {
  EXPECT_DOUBLE_EQ(UrgencyFactor(0), 1.0);      // no accesses -> lambda 1
  EXPECT_DOUBLE_EQ(UrgencyFactor(1), 1.0);
  EXPECT_DOUBLE_EQ(UrgencyFactor(10), 2.0);
  EXPECT_DOUBLE_EQ(UrgencyFactor(1000), 4.0);   // paper: log(10^3)=3 (+1 here)
}

TEST(AllocateThreadsTest, ConservesTotal) {
  std::vector<GroupDemand> demands = {{100, 0}, {300, 10}, {50, 1000}};
  auto alloc = AllocateThreads(demands, 8, true);
  EXPECT_EQ(std::accumulate(alloc.begin(), alloc.end(), 0), 8);
}

TEST(AllocateThreadsTest, ZeroDemandGetsNothing) {
  std::vector<GroupDemand> demands = {{0, 500}, {100, 1}};
  auto alloc = AllocateThreads(demands, 4, true);
  EXPECT_EQ(alloc[0], 0);
  EXPECT_EQ(alloc[1], 4);
}

TEST(AllocateThreadsTest, EmptyOrNoWork) {
  EXPECT_TRUE(AllocateThreads({}, 4, true).empty());
  auto alloc = AllocateThreads({{0, 0}, {0, 0}}, 4, true);
  EXPECT_EQ(alloc, (std::vector<int>{0, 0}));
  EXPECT_EQ(AllocateThreads({{10, 0}}, 0, true), (std::vector<int>{0}));
}

TEST(AllocateThreadsTest, ProportionalToBytesWithoutRates) {
  std::vector<GroupDemand> demands = {{100, 0}, {300, 0}};
  auto alloc = AllocateThreads(demands, 8, false);
  EXPECT_EQ(alloc[0], 2);
  EXPECT_EQ(alloc[1], 6);
}

TEST(AllocateThreadsTest, AccessRateShiftsThreads) {
  // Equal bytes; one group with a 1000x access rate gets lambda 4 vs 1.
  std::vector<GroupDemand> demands = {{100, 1}, {100, 1000}};
  auto with_rate = AllocateThreads(demands, 10, true);
  EXPECT_GT(with_rate[1], with_rate[0]);
  EXPECT_EQ(with_rate[0] + with_rate[1], 10);
  // NOAC splits evenly.
  auto without = AllocateThreads(demands, 10, false);
  EXPECT_EQ(without[0], 5);
  EXPECT_EQ(without[1], 5);
}

TEST(AllocateThreadsTest, EveryNonEmptyGroupProgresses) {
  // 3 groups, one huge: smaller groups still get their 1 thread.
  std::vector<GroupDemand> demands = {{1'000'000, 100}, {10, 0}, {10, 0}};
  auto alloc = AllocateThreads(demands, 6, true);
  EXPECT_GE(alloc[1], 1);
  EXPECT_GE(alloc[2], 1);
  EXPECT_EQ(std::accumulate(alloc.begin(), alloc.end(), 0), 6);
}

TEST(AllocateThreadsTest, MoreGroupsThanThreads) {
  std::vector<GroupDemand> demands(10, GroupDemand{100, 1});
  auto alloc = AllocateThreads(demands, 4, true);
  EXPECT_EQ(std::accumulate(alloc.begin(), alloc.end(), 0), 4);
  for (int a : alloc) EXPECT_GE(a, 0);
}

// Property sweep: allocation conserves the total and never gives threads to
// empty groups, across random demand vectors.
class AllocatorPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(AllocatorPropertyTest, Invariants) {
  auto [seed, total] = GetParam();
  Rng rng(seed);
  for (int round = 0; round < 200; ++round) {
    int n = static_cast<int>(rng.UniformInt(1, 12));
    std::vector<GroupDemand> demands;
    bool any = false;
    for (int i = 0; i < n; ++i) {
      double bytes = rng.Bernoulli(0.25)
                         ? 0
                         : static_cast<double>(rng.UniformInt(1, 1'000'000));
      double rate = rng.Bernoulli(0.5)
                        ? 0
                        : static_cast<double>(rng.UniformInt(1, 100'000));
      any = any || bytes > 0;
      demands.push_back({bytes, rate});
    }
    auto alloc = AllocateThreads(demands, total, rng.Bernoulli(0.5));
    int sum = std::accumulate(alloc.begin(), alloc.end(), 0);
    if (any) {
      EXPECT_EQ(sum, total);
    } else {
      EXPECT_EQ(sum, 0);
    }
    for (int i = 0; i < n; ++i) {
      if (demands[static_cast<size_t>(i)].bytes == 0) {
        EXPECT_EQ(alloc[static_cast<size_t>(i)], 0);
      }
      EXPECT_GE(alloc[static_cast<size_t>(i)], 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AllocatorPropertyTest,
                         ::testing::Combine(::testing::Values(1u, 2u, 3u),
                                            ::testing::Values(1, 4, 16, 32)));

// Heavy property sweep: 1000 random demand vectors. Checks that
// largest-remainder apportionment conserves the total exactly, that every
// non-empty group gets at least one thread whenever the pool is big enough,
// and that the allocation is permutation-equivariant (relabeling the groups
// relabels the allocation identically — no hidden index-order tie-breaks).
TEST(AllocatorPropertyTest, ThousandRandomVectors) {
  Rng rng(test::DeriveSeed(0xA110C));
  for (int iter = 0; iter < 1000; ++iter) {
    const int n = static_cast<int>(rng.UniformInt(1, 16));
    const int total = static_cast<int>(rng.UniformInt(0, 48));
    const bool use_rate = rng.Bernoulli(0.5);
    // Distinct (bytes, rate) pairs: groups with identical content are
    // interchangeable, which would make strict equivariance ill-posed.
    std::vector<GroupDemand> demands;
    std::set<std::pair<double, double>> used;
    for (int i = 0; i < n; ++i) {
      GroupDemand d;
      do {
        d.bytes = rng.Bernoulli(0.2)
                      ? 0
                      : static_cast<double>(rng.UniformInt(1, 1'000'000));
        d.access_rate =
            rng.Bernoulli(0.3)
                ? 0
                : static_cast<double>(rng.UniformInt(1, 100'000));
      } while (!used.insert({d.bytes, d.access_rate}).second);
      demands.push_back(d);
    }

    const auto alloc = AllocateThreads(demands, total, use_rate);
    ASSERT_EQ(alloc.size(), demands.size());

    int non_empty = 0;
    for (const auto& d : demands) non_empty += d.bytes > 0 ? 1 : 0;

    // Conservation: all of `total` is handed out iff any group has work.
    const int sum = std::accumulate(alloc.begin(), alloc.end(), 0);
    EXPECT_EQ(sum, non_empty > 0 ? total : 0)
        << "iter " << iter << " n=" << n << " total=" << total;

    for (int i = 0; i < n; ++i) {
      const auto ui = static_cast<size_t>(i);
      EXPECT_GE(alloc[ui], 0);
      if (demands[ui].bytes == 0) {
        EXPECT_EQ(alloc[ui], 0) << "empty group got threads, iter " << iter;
      } else if (total >= non_empty) {
        EXPECT_GE(alloc[ui], 1)
            << "non-empty group starved with total=" << total
            << " non_empty=" << non_empty << ", iter " << iter;
      }
    }

    // Permutation equivariance: permuted[j] = demands[perm[j]] must yield
    // permuted_alloc[j] == alloc[perm[j]].
    std::vector<size_t> perm(static_cast<size_t>(n));
    std::iota(perm.begin(), perm.end(), size_t{0});
    for (size_t j = perm.size(); j > 1; --j) {
      std::swap(perm[j - 1],
                perm[static_cast<size_t>(rng.UniformInt(
                    0, static_cast<int64_t>(j) - 1))]);
    }
    std::vector<GroupDemand> permuted;
    for (size_t j = 0; j < perm.size(); ++j) {
      permuted.push_back(demands[perm[j]]);
    }
    const auto permuted_alloc = AllocateThreads(permuted, total, use_rate);
    for (size_t j = 0; j < perm.size(); ++j) {
      ASSERT_EQ(permuted_alloc[j], alloc[perm[j]])
          << "allocation depends on group order, iter " << iter << " j=" << j;
    }
  }
}

TEST(DbscanTest, SeparatedClusters) {
  std::vector<double> values = {1.0, 1.1, 1.2, 10.0, 10.1, 10.2};
  auto labels = Dbscan1d(values, 0.5, 1);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_EQ(labels[4], labels[5]);
  EXPECT_NE(labels[0], labels[3]);
}

TEST(DbscanTest, NoiseWithMinPts) {
  std::vector<double> values = {0, 0.1, 0.2, 100};
  auto labels = Dbscan1d(values, 0.5, 2);
  EXPECT_EQ(labels[3], -1);  // isolated point is noise
  EXPECT_GE(labels[0], 0);
}

TEST(DbscanTest, ChainedDensityConnectivity) {
  // Points spaced below eps must merge transitively into one cluster.
  std::vector<double> values;
  for (int i = 0; i < 20; ++i) values.push_back(i * 0.4);
  auto labels = Dbscan1d(values, 0.5, 1);
  for (int l : labels) EXPECT_EQ(l, labels[0]);
}

TEST(DbscanTest, MultiDimensional) {
  std::vector<std::vector<double>> points = {
      {0, 0}, {0.1, 0.1}, {5, 5}, {5.1, 4.9}};
  auto labels = Dbscan(points, 0.5, 1);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[2], labels[3]);
  EXPECT_NE(labels[0], labels[2]);
}

TEST(TableGroupingTest, PerTable) {
  auto groups = TableGrouping::PerTable({5.0, 0.0, 2.0});
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_TRUE(groups[0].hot);
  EXPECT_FALSE(groups[1].hot);
  EXPECT_TRUE(groups[2].hot);
  auto map = TableGrouping::TableToGroup(groups, 3);
  EXPECT_EQ(map, (std::vector<int>{0, 1, 2}));
}

TEST(TableGroupingTest, ByAccessRateClustersSimilarRates) {
  // Rates 100 and 120 cluster together in log space; 10000 is separate;
  // zero-rate tables become singleton cold groups.
  auto groups = TableGrouping::ByAccessRate({100, 120, 10000, 0, 0}, 0.3);
  size_t hot_groups = 0, cold_groups = 0;
  for (const auto& g : groups) {
    if (g.hot) {
      ++hot_groups;
    } else {
      ++cold_groups;
      EXPECT_EQ(g.tables.size(), 1u);
    }
  }
  EXPECT_EQ(hot_groups, 2u);
  EXPECT_EQ(cold_groups, 2u);
  auto map = TableGrouping::TableToGroup(groups, 5);
  EXPECT_EQ(map[0], map[1]);  // 100 and 120 together
  EXPECT_NE(map[0], map[2]);
}

TEST(TableGroupingTest, StaticGroupsCoverRemainder) {
  auto groups = TableGrouping::Static({{0, 1}, {3}}, {10, 20, 0, 40, 0}, 5);
  // 2 hot groups + singleton cold groups for tables 2 and 4.
  ASSERT_EQ(groups.size(), 4u);
  EXPECT_TRUE(groups[0].hot);
  EXPECT_DOUBLE_EQ(groups[0].access_rate, 30);
  EXPECT_TRUE(groups[1].hot);
  EXPECT_FALSE(groups[2].hot);
  EXPECT_FALSE(groups[3].hot);
  TableGrouping::TableToGroup(groups, 5);  // must not abort
}

TEST(TableGroupingTest, SingleGroup) {
  auto groups = TableGrouping::Single(4, {1, 2, 3, 4});
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].tables.size(), 4u);
  EXPECT_DOUBLE_EQ(groups[0].access_rate, 10);
  EXPECT_TRUE(groups[0].hot);
}

TEST(TableGroupingDeathTest, RejectsIncompleteGrouping) {
  std::vector<TableGroup> groups = {{{0}, 1.0, true}};
  EXPECT_DEATH(TableGrouping::TableToGroup(groups, 2), "missing");
}

// ---------------------------------------------------------------------------
// SplitThreadBudget: the cross-shard, top-level split (DESIGN.md §11) that
// feeds each shard's own ThreadAllocator.

TEST(SplitThreadBudgetTest, ConservesTotalAndFloorsAtOne) {
  // Property sweep: for any load vector and any feasible budget, the split
  // sums exactly to the budget and gives every shard at least one thread.
  Rng rng(test::DeriveSeed(31));
  for (int iter = 0; iter < 500; ++iter) {
    int shards = static_cast<int>(rng.UniformInt(1, 8));
    int total = static_cast<int>(rng.UniformInt(shards, 64));
    std::vector<double> loads(static_cast<size_t>(shards));
    for (double& l : loads) {
      l = rng.UniformInt(0, 4) == 0 ? 0.0
                                    : static_cast<double>(rng.UniformInt(1, 1000));
    }
    std::vector<int> split = SplitThreadBudget(loads, total);
    ASSERT_EQ(split.size(), loads.size());
    int sum = 0;
    for (int v : split) {
      EXPECT_GE(v, 1);
      sum += v;
    }
    EXPECT_EQ(sum, total) << "shards=" << shards << " total=" << total;
  }
}

TEST(SplitThreadBudgetTest, ProportionalToLoad) {
  // 3:1 load ratio over a big budget lands close to a 3:1 thread ratio.
  std::vector<int> split = SplitThreadBudget({300.0, 100.0}, 16);
  EXPECT_EQ(split[0] + split[1], 16);
  EXPECT_EQ(split[0], 12);
  EXPECT_EQ(split[1], 4);
  // The heavier shard never gets fewer threads than a lighter one.
  split = SplitThreadBudget({5.0, 80.0, 15.0}, 10);
  EXPECT_EQ(split[0] + split[1] + split[2], 10);
  EXPECT_GE(split[1], split[2]);
  EXPECT_GE(split[2], split[0]);
}

TEST(SplitThreadBudgetTest, EvenFallbackWithoutLoads) {
  // All-zero loads (no prediction yet) fall back to an even split.
  std::vector<int> split = SplitThreadBudget({0.0, 0.0, 0.0}, 9);
  EXPECT_EQ(split, (std::vector<int>{3, 3, 3}));
  // Non-divisible budgets stay within one thread of even.
  split = SplitThreadBudget({0.0, 0.0, 0.0}, 11);
  int sum = 0;
  for (int v : split) {
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 4);
    sum += v;
  }
  EXPECT_EQ(sum, 11);
}

TEST(SplitThreadBudgetTest, TightBudgetGivesOneEach) {
  std::vector<int> split = SplitThreadBudget({1000.0, 1.0, 1.0}, 3);
  EXPECT_EQ(split, (std::vector<int>{1, 1, 1}));
}

}  // namespace
}  // namespace aets
