// MVCC storage tests: version-chain visibility semantics, tombstones,
// commit-order invariants, Memtable reads/scans, and state digests.

#include <gtest/gtest.h>

#include "aets/catalog/catalog.h"
#include "aets/storage/memtable.h"
#include "aets/storage/table_store.h"
#include "aets/storage/version_chain.h"

namespace aets {
namespace {

VersionCell Cell(Timestamp ts, TxnId txn, std::vector<ColumnValue> delta,
                 bool is_delete = false) {
  VersionCell cell;
  cell.commit_ts = ts;
  cell.txn_id = txn;
  cell.is_delete = is_delete;
  cell.delta = PackedDelta::FromColumnValues(delta);
  return cell;
}

TEST(VersionChainTest, InvisibleBeforeFirstVersion) {
  MemNode node(1);
  EXPECT_FALSE(node.ReadVisible(100).has_value());
  EXPECT_EQ(node.LastWriterTxn(), kInvalidTxnId);
  EXPECT_EQ(node.LastCommitTs(), kInvalidTimestamp);
}

TEST(VersionChainTest, SnapshotSelectsLatestNotAfter) {
  MemNode node(1);
  node.AppendVersion(Cell(10, 1, {{0, Value(int64_t{100})}}));
  node.AppendVersion(Cell(20, 2, {{0, Value(int64_t{200})}}));
  node.AppendVersion(Cell(30, 3, {{0, Value(int64_t{300})}}));

  EXPECT_FALSE(node.ReadVisible(9).has_value());
  EXPECT_EQ(node.ReadVisible(10)->at(0).as_int64(), 100);
  EXPECT_EQ(node.ReadVisible(25)->at(0).as_int64(), 200);
  EXPECT_EQ(node.ReadVisible(1000)->at(0).as_int64(), 300);
}

TEST(VersionChainTest, DeltasAccumulateAcrossColumns) {
  MemNode node(1);
  node.AppendVersion(Cell(10, 1, {{0, Value(int64_t{1})}, {1, Value("a")}}));
  node.AppendVersion(Cell(20, 2, {{1, Value("b")}}));  // update col 1 only
  Row row = *node.ReadVisible(25);
  EXPECT_EQ(row.at(0).as_int64(), 1);      // col 0 from the insert
  EXPECT_EQ(row.at(1).as_string(), "b");   // col 1 from the update
}

TEST(VersionChainTest, TombstoneHidesRowThenReinsertRevives) {
  MemNode node(1);
  node.AppendVersion(Cell(10, 1, {{0, Value(int64_t{1})}}));
  node.AppendVersion(Cell(20, 2, {}, /*is_delete=*/true));
  node.AppendVersion(Cell(30, 3, {{0, Value(int64_t{9})}}));

  EXPECT_TRUE(node.ReadVisible(15).has_value());
  EXPECT_FALSE(node.ReadVisible(25).has_value());
  Row revived = *node.ReadVisible(35);
  EXPECT_EQ(revived.at(0).as_int64(), 9);
  EXPECT_EQ(revived.size(), 1u);  // pre-delete columns do not leak through
}

TEST(VersionChainTest, LastWriterAndTs) {
  MemNode node(1);
  node.AppendVersion(Cell(10, 7, {{0, Value(int64_t{1})}}));
  EXPECT_EQ(node.LastWriterTxn(), 7u);
  EXPECT_EQ(node.LastCommitTs(), 10u);
  EXPECT_EQ(node.NumVersions(), 1u);
}

TEST(VersionChainDeathTest, RejectsOutOfOrderCommitTs) {
  MemNode node(1);
  node.AppendVersion(Cell(20, 1, {{0, Value(int64_t{1})}}));
  EXPECT_DEATH(node.AppendVersion(Cell(10, 2, {{0, Value(int64_t{2})}})),
               "commit-ts order");
}

TEST(ValueTest, TypesAndEquality) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(int64_t{5}).is_int64());
  EXPECT_TRUE(Value(2.5).is_double());
  EXPECT_TRUE(Value("x").is_string());
  EXPECT_EQ(Value(int64_t{5}), Value(int64_t{5}));
  EXPECT_NE(Value(int64_t{5}), Value(5.0));
  EXPECT_NE(Value("a"), Value("b"));
  EXPECT_EQ(Value().ToString(), "NULL");
  EXPECT_EQ(Value(int64_t{5}).ToString(), "5");
  EXPECT_EQ(Value("hi").ToString(), "\"hi\"");
}

TEST(MemtableTest, ApplyCommittedAndRead) {
  Memtable table(0);
  LogRecord insert = LogRecord::Dml(LogRecordType::kInsert, 1, 1, 10, 0, 5,
                                    {{0, Value(int64_t{42})}});
  table.ApplyCommitted(insert, 10);
  EXPECT_EQ(table.ReadRow(5, 10)->at(0).as_int64(), 42);
  EXPECT_FALSE(table.ReadRow(5, 9).has_value());
  EXPECT_FALSE(table.ReadRow(6, 100).has_value());
  EXPECT_EQ(table.NumKeys(), 1u);
}

TEST(MemtableTest, DeleteTombstones) {
  Memtable table(0);
  table.ApplyCommitted(LogRecord::Dml(LogRecordType::kInsert, 1, 1, 10, 0, 5,
                                      {{0, Value(int64_t{1})}}),
                       10);
  table.ApplyCommitted(
      LogRecord::Dml(LogRecordType::kDelete, 2, 2, 20, 0, 5, {}), 20);
  EXPECT_TRUE(table.ReadRow(5, 15).has_value());
  EXPECT_FALSE(table.ReadRow(5, 25).has_value());
  EXPECT_EQ(table.VisibleRowCount(15), 1u);
  EXPECT_EQ(table.VisibleRowCount(25), 0u);
}

TEST(MemtableTest, ScanVisibleIsOrderedAndSnapshotted) {
  Memtable table(0);
  for (int64_t k = 10; k >= 1; --k) {
    table.ApplyCommitted(
        LogRecord::Dml(LogRecordType::kInsert, static_cast<Lsn>(k), 1,
                       static_cast<Timestamp>(k), 0, k,
                       {{0, Value(k * 100)}}),
        static_cast<Timestamp>(k));
  }
  std::vector<int64_t> keys;
  table.ScanVisible(5, [&](int64_t k, const Row& row) {
    keys.push_back(k);
    EXPECT_EQ(row.at(0).as_int64(), k * 100);
    return true;
  });
  EXPECT_EQ(keys, (std::vector<int64_t>{1, 2, 3, 4, 5}));
}

TEST(MemtableTest, DigestDetectsDifferences) {
  Memtable a(0), b(0);
  auto ins = [](int64_t key, int64_t v, Timestamp ts) {
    return LogRecord::Dml(LogRecordType::kInsert, 1, 1, ts, 0, key,
                          {{0, Value(v)}});
  };
  a.ApplyCommitted(ins(1, 10, 5), 5);
  b.ApplyCommitted(ins(1, 10, 5), 5);
  EXPECT_EQ(a.DigestAt(10), b.DigestAt(10));
  b.ApplyCommitted(ins(2, 20, 6), 6);
  EXPECT_NE(a.DigestAt(10), b.DigestAt(10));
  // Digest is snapshot-sensitive: at ts 5 they still agree.
  EXPECT_EQ(a.DigestAt(5), b.DigestAt(5));
}

TEST(MemtableTest, DigestIsOrderIndependentOfApplySchedule) {
  // Same logical content built in different physical orders.
  Memtable a(0), b(0);
  auto rec = [](int64_t key, Timestamp ts, int64_t v) {
    return LogRecord::Dml(LogRecordType::kInsert, 1, 1, ts, 0, key,
                          {{0, Value(v)}});
  };
  a.ApplyCommitted(rec(1, 5, 10), 5);
  a.ApplyCommitted(rec(2, 6, 20), 6);
  b.ApplyCommitted(rec(2, 6, 20), 6);
  b.ApplyCommitted(rec(1, 5, 10), 5);
  EXPECT_EQ(a.DigestAt(10), b.DigestAt(10));
}

TEST(TableStoreTest, PerTableIsolationAndDigest) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable("t0", Schema::Of({{"c", ColumnType::kInt64}})).ok());
  ASSERT_TRUE(catalog.RegisterTable("t1", Schema::Of({{"c", ColumnType::kInt64}})).ok());
  TableStore store(catalog);
  EXPECT_EQ(store.num_tables(), 2u);
  auto rec = [](TableId t, int64_t key) {
    return LogRecord::Dml(LogRecordType::kInsert, 1, 1, 5, t, key,
                          {{0, Value(int64_t{1})}});
  };
  store.GetTable(0)->ApplyCommitted(rec(0, 1), 5);
  EXPECT_EQ(store.GetTable(0)->VisibleRowCount(10), 1u);
  EXPECT_EQ(store.GetTable(1)->VisibleRowCount(10), 0u);

  // Identical row in a different table must change the combined digest.
  TableStore other(catalog);
  other.GetTable(1)->ApplyCommitted(rec(1, 1), 5);
  EXPECT_NE(store.DigestAt(10), other.DigestAt(10));
  EXPECT_EQ(store.VisibleRowCount(10), 1u);
}

TEST(CatalogTest, RegisterAndLookup) {
  Catalog catalog;
  auto id = catalog.RegisterTable("orders", Schema::Of({{"o_id", ColumnType::kInt64}}));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*catalog.GetTableId("orders"), *id);
  EXPECT_EQ((*catalog.GetTable(*id))->name, "orders");
  EXPECT_TRUE(catalog.GetTableId("nope").status().IsNotFound());
  EXPECT_TRUE(catalog.RegisterTable("orders", Schema()).status().IsAlreadyExists());
  EXPECT_EQ(catalog.num_tables(), 1u);
}

TEST(SchemaTest, ColumnsAndLookup) {
  Schema s = Schema::Of({{"a", ColumnType::kInt64}, {"b", ColumnType::kString}});
  EXPECT_EQ(s.num_columns(), 2u);
  EXPECT_EQ(s.column(1).name, "b");
  EXPECT_EQ(s.FindColumn("b"), 1);
  EXPECT_EQ(s.FindColumn("z"), -1);
}

}  // namespace
}  // namespace aets
