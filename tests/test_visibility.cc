// Visibility-rule (paper Algorithm 3) unit tests against a controllable
// fake replayer: the min-over-groups rule, the global-watermark fallback,
// and blocking/unblocking behavior — deterministic, no timing assumptions.

#include <gtest/gtest.h>

#include <thread>

#include "aets/replay/replayer.h"

namespace aets {
namespace {

// A replayer whose visibility timestamps the test sets directly.
class FakeReplayer : public Replayer {
 public:
  explicit FakeReplayer(size_t num_tables) : table_ts_(num_tables) {
    for (auto& ts : table_ts_) ts.store(0);
  }

  Status Start() override { return Status::OK(); }
  void Stop() override {}
  Timestamp TableVisibleTs(TableId table) const override {
    return table_ts_[table].load();
  }
  Timestamp GlobalVisibleTs() const override { return global_.load(); }
  TableStore* store() override { return nullptr; }
  const ReplayStats& stats() const override { return stats_; }
  std::string name() const override { return "Fake"; }

  void SetTable(TableId t, Timestamp ts) { table_ts_[t].store(ts); }
  void SetGlobal(Timestamp ts) { global_.store(ts); }

 private:
  mutable std::vector<std::atomic<Timestamp>> table_ts_;
  std::atomic<Timestamp> global_{0};
  ReplayStats stats_;
};

TEST(VisibilityRuleTest, MinOverAccessedGroups) {
  FakeReplayer r(3);
  r.SetTable(0, 100);
  r.SetTable(1, 50);
  r.SetTable(2, 200);
  // Visible iff min(tg_cmt_ts over accessed tables) >= qts.
  EXPECT_TRUE(IsVisible(r, {0}, 100));
  EXPECT_FALSE(IsVisible(r, {0}, 101));
  EXPECT_TRUE(IsVisible(r, {0, 2}, 100));
  EXPECT_FALSE(IsVisible(r, {0, 1}, 100));  // table 1 lags
  EXPECT_TRUE(IsVisible(r, {0, 1, 2}, 50));
}

TEST(VisibilityRuleTest, GlobalWatermarkFallback) {
  // A group that received no logs keeps a low tg_cmt_ts; the global
  // watermark unblocks queries on it (paper Section V-B).
  FakeReplayer r(2);
  r.SetTable(0, 10);
  r.SetTable(1, 0);  // never updated
  EXPECT_FALSE(IsVisible(r, {1}, 5));
  r.SetGlobal(5);
  EXPECT_TRUE(IsVisible(r, {1}, 5));
  EXPECT_TRUE(IsVisible(r, {0, 1}, 5));
  EXPECT_FALSE(IsVisible(r, {1}, 6));
}

TEST(VisibilityRuleTest, EmptyTableListIsVacuouslyVisible) {
  // A query touching no replicated tables has nothing to wait for: the min
  // over an empty set of groups imposes no constraint.
  FakeReplayer r(1);
  EXPECT_TRUE(IsVisible(r, {}, 1));
  EXPECT_EQ(WaitVisible(r, {}, 1000), 0);
}

TEST(VisibilityRuleTest, WaitVisibleReturnsZeroWhenAlreadyVisible) {
  FakeReplayer r(1);
  r.SetTable(0, 10);
  EXPECT_EQ(WaitVisible(r, {0}, 10), 0);
}

TEST(VisibilityRuleTest, WaitVisibleBlocksUntilPublished) {
  FakeReplayer r(2);
  r.SetTable(0, 1);
  // Scheduling-independent blocking check: WaitVisible may only return after
  // the publisher flipped `published` (asserting a wall-clock lower bound on
  // `waited` would flake whenever this thread gets descheduled first).
  std::atomic<bool> published{false};
  std::thread publisher([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    published.store(true, std::memory_order_release);
    r.SetTable(0, 100);
  });
  int64_t waited = WaitVisible(r, {0}, 100);
  EXPECT_TRUE(published.load(std::memory_order_acquire));
  publisher.join();
  EXPECT_GE(waited, 0);
  EXPECT_TRUE(IsVisible(r, {0}, 100));
}

TEST(VisibilityRuleTest, WaitVisibleUnblocksViaGlobal) {
  FakeReplayer r(1);
  std::atomic<bool> published{false};
  std::thread publisher([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    published.store(true, std::memory_order_release);
    r.SetGlobal(77);  // heartbeat-style bump, table ts never moves
  });
  int64_t waited = WaitVisible(r, {0}, 77);
  EXPECT_TRUE(published.load(std::memory_order_acquire));
  publisher.join();
  EXPECT_GE(waited, 0);
}

TEST(VisibilityRuleTest, ConcurrentWaiters) {
  FakeReplayer r(3);
  std::atomic<int> done{0};
  std::vector<std::thread> waiters;
  for (TableId t = 0; t < 3; ++t) {
    waiters.emplace_back([&, t] {
      WaitVisible(r, {t}, 50);
      done.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(done.load(), 0);
  r.SetTable(0, 50);
  r.SetTable(1, 50);
  r.SetTable(2, 50);
  for (auto& w : waiters) w.join();
  EXPECT_EQ(done.load(), 3);
}

}  // namespace
}  // namespace aets
