// Deterministic wire-protocol suite for the network tier (DESIGN.md §12):
// FrameCodec round-trip fuzz under chunked delivery, hostile-input rejection
// (truncation, oversize, bit flips, magic/version mismatch) that must yield
// Corruption and never a crash or a silently resynchronized frame, a
// loopback socket-pair harness with partial writes and mid-frame
// disconnects, and end-to-end TCP shipping through EpochStreamServer /
// EpochStreamClient / TcpEpochSource with injected link faults recovered by
// NACK — the socket twin of the in-process chaos suite.
//
// This binary has its own main(): `--chaos_iters=N` (or AETS_CHAOS_ITERS)
// scales the fuzz and chaos sweeps for the nightly high-iteration run; the
// default keeps the suite CI-fast.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "aets/baselines/serial_replayer.h"
#include "aets/common/rng.h"
#include "aets/log/codec.h"
#include "aets/net/epoch_stream.h"
#include "aets/net/frame.h"
#include "aets/net/frame_io.h"
#include "aets/net/socket.h"
#include "aets/net/tcp_source.h"
#include "aets/primary/primary_db.h"
#include "aets/replication/fault_injection.h"
#include "aets/replication/log_shipper.h"
#include "test_seed.h"

static int g_chaos_iters = 2;

namespace aets {
namespace net {
namespace {

constexpr FrameType kAllTypes[] = {
    FrameType::kHello,   FrameType::kEpoch,     FrameType::kStreamEnd,
    FrameType::kFetch,   FrameType::kFetchOk,   FrameType::kFetchMiss,
    FrameType::kMeta,    FrameType::kMetaOk,    FrameType::kQuery,
    FrameType::kQueryOk, FrameType::kBusy,      FrameType::kError,
};

std::string RandomBody(Rng* rng, size_t max_len) {
  size_t len = static_cast<size_t>(
      rng->UniformInt(0, static_cast<int64_t>(max_len)));
  std::string body(len, '\0');
  for (char& c : body) {
    c = static_cast<char>(rng->UniformInt(0, 255));
  }
  return body;
}

Catalog* MakeCatalog(int num_tables) {
  auto* catalog = new Catalog();
  for (int t = 0; t < num_tables; ++t) {
    AETS_CHECK(catalog
                   ->RegisterTable("t" + std::to_string(t),
                                   Schema::Of({{"a", ColumnType::kInt64},
                                               {"b", ColumnType::kString}}))
                   .ok());
  }
  return catalog;
}

void RunRandomWorkload(PrimaryDb* db, int num_tables, int num_txns,
                       uint64_t seed) {
  Rng rng(seed);
  for (int i = 0; i < num_txns; ++i) {
    PrimaryTxn txn = db->Begin();
    int writes = static_cast<int>(rng.UniformInt(1, 5));
    for (int w = 0; w < writes; ++w) {
      TableId table = static_cast<TableId>(rng.UniformInt(0, num_tables - 1));
      int64_t key = rng.UniformInt(0, 149);
      int kind = static_cast<int>(rng.UniformInt(0, 9));
      if (kind < 5) {
        txn.Insert(table, key,
                   {{0, Value(static_cast<int64_t>(i))},
                    {1, Value(rng.AlphaString(4, 12))}});
      } else if (kind < 9) {
        txn.Update(table, key, {{0, Value(static_cast<int64_t>(i * 10))}});
      } else {
        txn.Delete(table, key);
      }
    }
    ASSERT_TRUE(db->Commit(std::move(txn)).ok());
  }
}

ReplayRecoveryOptions FastRecovery() {
  ReplayRecoveryOptions options;
  options.reorder_window_pauses = 256;
  options.max_retries = 32;
  options.max_pending = 4096;
  return options;
}

// ---------------------------------------------------------------------------
// FrameCodec: round trips.

TEST(FrameCodecTest, RoundTripFuzzSurvivesArbitraryChunking) {
  for (int iter = 0; iter < g_chaos_iters * 4; ++iter) {
    Rng rng(test::DeriveSeed(100 + static_cast<uint64_t>(iter)));
    std::vector<Frame> expected;
    std::string stream;
    int num_frames = static_cast<int>(rng.UniformInt(1, 48));
    for (int i = 0; i < num_frames; ++i) {
      Frame frame;
      frame.type = kAllTypes[rng.UniformInt(0, 11)];
      // Mostly small bodies, occasionally a big one to cross buffer
      // compaction boundaries.
      size_t max_len = rng.UniformInt(0, 9) == 0 ? (128u << 10) : 512u;
      frame.body = RandomBody(&rng, max_len);
      EncodeFrame(frame.type, frame.body, &stream);
      expected.push_back(std::move(frame));
    }

    FrameDecoder decoder;
    std::vector<Frame> decoded;
    size_t off = 0;
    while (off < stream.size()) {
      size_t chunk = static_cast<size_t>(rng.UniformInt(1, 97));
      chunk = std::min(chunk, stream.size() - off);
      decoder.Feed(stream.data() + off, chunk);
      off += chunk;
      for (;;) {
        Result<std::optional<Frame>> next = decoder.Next();
        ASSERT_TRUE(next.ok()) << next.status().ToString();
        if (!next->has_value()) break;
        decoded.push_back(std::move(**next));
      }
    }
    ASSERT_EQ(decoded.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(decoded[i].type, expected[i].type) << "frame " << i;
      EXPECT_EQ(decoded[i].body, expected[i].body) << "frame " << i;
    }
    EXPECT_FALSE(decoder.mid_frame());
  }
}

TEST(FrameCodecTest, EpochBodyRoundTripsRealWorkloadEpochs) {
  std::unique_ptr<Catalog> catalog(MakeCatalog(2));
  LogicalClock clock;
  PrimaryDb db(catalog.get(), &clock);
  LogShipper shipper(/*epoch_size=*/8);
  EpochChannel recorder(0);
  shipper.AttachChannel(&recorder);
  db.SetCommitSink([&](TxnLog txn) { shipper.OnCommit(std::move(txn)); });
  RunRandomWorkload(&db, 2, 80, test::DeriveSeed(200));
  shipper.ShipHeartbeat(db.AcquireHeartbeatTs());
  shipper.Finish();

  int data_epochs = 0, heartbeats = 0;
  while (auto epoch = recorder.TryReceive()) {
    std::string body;
    EncodeEpochBody(*epoch, &body);
    Result<ShippedEpoch> decoded = DecodeEpochBody(body);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->epoch_id, epoch->epoch_id);
    EXPECT_EQ(decoded->heartbeat_ts, epoch->heartbeat_ts);
    EXPECT_EQ(decoded->max_commit_ts, epoch->max_commit_ts);
    EXPECT_EQ(decoded->num_txns, epoch->num_txns);
    EXPECT_EQ(decoded->num_records, epoch->num_records);
    EXPECT_EQ(decoded->first_txn, epoch->first_txn);
    EXPECT_EQ(decoded->last_txn, epoch->last_txn);
    EXPECT_EQ(decoded->payload_crc, epoch->payload_crc);
    EXPECT_EQ(decoded->ByteSize(), epoch->ByteSize());
    if (epoch->ByteSize() > 0) {
      EXPECT_EQ(*decoded->payload, *epoch->payload);
    }
    EXPECT_EQ(decoded->is_heartbeat(), epoch->is_heartbeat());
    EXPECT_TRUE(decoded->PayloadIntact());
    (epoch->is_heartbeat() ? heartbeats : data_epochs)++;

    // Truncating the body anywhere must be Corruption, never a partial
    // epoch.
    for (size_t cut : {size_t{0}, body.size() / 2, body.size() - 1}) {
      Result<ShippedEpoch> torn =
          DecodeEpochBody(std::string_view(body).substr(0, cut));
      EXPECT_FALSE(torn.ok());
      EXPECT_TRUE(torn.status().IsCorruption()) << torn.status().ToString();
    }
  }
  EXPECT_GT(data_epochs, 0);
  EXPECT_GT(heartbeats, 0);
}

TEST(FrameCodecTest, ControlAndQueryBodiesRoundTrip) {
  for (HelloRole role : {HelloRole::kSubscribe, HelloRole::kControl}) {
    std::string body;
    EncodeHelloBody(HelloBody{role, 7}, &body);
    Result<HelloBody> hello = DecodeHelloBody(body);
    ASSERT_TRUE(hello.ok());
    EXPECT_EQ(hello->role, role);
    EXPECT_EQ(hello->shard, 7u);
  }
  {
    std::string body;
    EncodeFetchBody(FetchBody{0xDEADBEEFCAFEull}, &body);
    Result<FetchBody> fetch = DecodeFetchBody(body);
    ASSERT_TRUE(fetch.ok());
    EXPECT_EQ(fetch->epoch_id, 0xDEADBEEFCAFEull);
  }
  {
    std::string body;
    EncodeEpochIdsBody(EpochIdsBody{42, 17}, &body);
    Result<EpochIdsBody> ids = DecodeEpochIdsBody(body);
    ASSERT_TRUE(ids.ok());
    EXPECT_EQ(ids->next_epoch, 42u);
    EXPECT_EQ(ids->floor_epoch, 17u);
  }
  {
    std::string body;
    EncodeQueryBody(QueryBody{991, 3, true}, &body);
    Result<QueryBody> query = DecodeQueryBody(body);
    ASSERT_TRUE(query.ok());
    EXPECT_EQ(query->snapshot_ts, 991u);
    EXPECT_EQ(query->table_id, 3u);
    EXPECT_TRUE(query->want_rows);
  }
  {
    // A reply carrying every Value variant, including the empty string.
    QueryReplyBody reply;
    reply.pinned_ts = 55;
    reply.digest = 0x1234;
    Row row;
    row.Set(0, Value(int64_t{-9}));
    row.Set(1, Value(3.25));
    row.Set(2, Value(std::string("hello")));
    row.Set(3, Value(std::string()));
    row.Set(4, Value());
    reply.rows.emplace(-100, row);
    reply.rows.emplace(7, Row());
    reply.row_count = reply.rows.size();
    std::string body;
    EncodeQueryReplyBody(reply, &body);
    Result<QueryReplyBody> decoded = DecodeQueryReplyBody(body);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->pinned_ts, 55u);
    EXPECT_EQ(decoded->digest, 0x1234u);
    EXPECT_EQ(decoded->row_count, 2u);
    ASSERT_EQ(decoded->rows.size(), 2u);
    const Row& got = decoded->rows.at(-100);
    ASSERT_EQ(got.size(), 5u);
    EXPECT_EQ(got.at(0).as_int64(), -9);
    EXPECT_EQ(got.at(1).as_double(), 3.25);
    EXPECT_EQ(got.at(2).as_string(), "hello");
    EXPECT_EQ(got.at(3).as_string(), "");
    EXPECT_TRUE(got.at(4).is_null());
    EXPECT_EQ(decoded->rows.at(7).size(), 0u);

    // Exhaustion-checked: trailing garbage is Corruption, not ignored.
    body.push_back('\x01');
    Result<QueryReplyBody> extra = DecodeQueryReplyBody(body);
    EXPECT_FALSE(extra.ok());
    EXPECT_TRUE(extra.status().IsCorruption());
  }
}

// ---------------------------------------------------------------------------
// FrameCodec: hostile input. Every malformed stream must end in Corruption
// (or "need more bytes") — never a crash, never a silently decoded frame.

TEST(FrameCodecTest, TruncatedPrefixNeverYieldsAFrame) {
  std::string stream;
  EncodeFrame(FrameType::kQuery, "truncation probe", &stream);
  for (size_t len = 0; len < stream.size(); ++len) {
    FrameDecoder decoder;
    decoder.Feed(stream.data(), len);
    Result<std::optional<Frame>> next = decoder.Next();
    ASSERT_TRUE(next.ok()) << "prefix " << len << ": "
                           << next.status().ToString();
    EXPECT_FALSE(next->has_value()) << "prefix " << len;
    EXPECT_EQ(decoder.mid_frame(), len > 0) << "prefix " << len;
  }
}

TEST(FrameCodecTest, EveryBitFlipIsDetectedOrStallsNeverSilent) {
  Rng rng(test::DeriveSeed(300));
  std::string stream;
  EncodeFrame(FrameType::kEpoch, RandomBody(&rng, 64), &stream);
  int corruptions = 0, stalls = 0;
  for (size_t byte = 0; byte < stream.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = stream;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1u << bit));
      FrameDecoder decoder;
      decoder.Feed(flipped.data(), flipped.size());
      Result<std::optional<Frame>> next = decoder.Next();
      if (!next.ok()) {
        EXPECT_TRUE(next.status().IsCorruption())
            << next.status().ToString();
        ++corruptions;
        // Corruption is sticky: the stream cannot be resynchronized.
        Result<std::optional<Frame>> again = decoder.Next();
        EXPECT_FALSE(again.ok());
      } else {
        // A flip that grew the length field makes the decoder wait for
        // bytes that will never come — the io layer's timeout handles
        // that. What it must NOT do is hand back a frame.
        ASSERT_FALSE(next->has_value())
            << "byte " << byte << " bit " << bit
            << ": single bit flip produced a silently decoded frame";
        ++stalls;
      }
    }
  }
  EXPECT_GT(corruptions, 0);
  // Length-field flips that grow the frame are the only legitimate stalls.
  EXPECT_LT(stalls, 8 * 4);
}

TEST(FrameCodecTest, DecoderRecoversAfterReset) {
  std::string good;
  EncodeFrame(FrameType::kMeta, "", &good);
  std::string bad = good;
  bad[0] = '\x00';  // break the magic

  FrameDecoder decoder;
  decoder.Feed(bad.data(), bad.size());
  Result<std::optional<Frame>> next = decoder.Next();
  ASSERT_FALSE(next.ok());
  // Sticky even across fresh valid bytes...
  decoder.Feed(good.data(), good.size());
  EXPECT_FALSE(decoder.Next().ok());
  // ...until Reset, the reconnect path.
  decoder.Reset();
  decoder.Feed(good.data(), good.size());
  next = decoder.Next();
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(next->has_value());
  EXPECT_EQ((*next)->type, FrameType::kMeta);
}

// Rewrites the trailer CRC so it matches the (tampered) header + body —
// isolating the header validation from the CRC check.
void FixTrailerCrc(std::string* frame) {
  size_t body_and_header = frame->size() - kFrameTrailerBytes;
  uint32_t crc = Crc32c(frame->data(), body_and_header);
  std::memcpy(frame->data() + body_and_header, &crc, sizeof(crc));
}

TEST(FrameCodecTest, MagicMismatchRejectedEvenWithValidCrc) {
  std::string stream;
  EncodeFrame(FrameType::kHello, "x", &stream);
  stream[0] = '\x12';
  stream[1] = '\x34';
  FixTrailerCrc(&stream);
  FrameDecoder decoder;
  decoder.Feed(stream.data(), stream.size());
  Result<std::optional<Frame>> next = decoder.Next();
  ASSERT_FALSE(next.ok());
  EXPECT_TRUE(next.status().IsCorruption());
  EXPECT_NE(next.status().message().find("magic"), std::string::npos)
      << next.status().ToString();
}

TEST(FrameCodecTest, VersionMismatchRejectedEvenWithValidCrc) {
  std::string stream;
  EncodeFrame(FrameType::kHello, "x", &stream);
  stream[2] = static_cast<char>(kFrameVersion + 1);
  FixTrailerCrc(&stream);
  FrameDecoder decoder;
  decoder.Feed(stream.data(), stream.size());
  Result<std::optional<Frame>> next = decoder.Next();
  ASSERT_FALSE(next.ok());
  EXPECT_TRUE(next.status().IsCorruption());
  EXPECT_NE(next.status().message().find("version"), std::string::npos)
      << next.status().ToString();
}

TEST(FrameCodecTest, OversizedLengthRejectedBeforeAllocation) {
  std::string stream;
  EncodeFrame(FrameType::kEpoch, "", &stream);
  uint32_t huge = static_cast<uint32_t>(kMaxFrameBody) + 1;
  std::memcpy(stream.data() + 4, &huge, sizeof(huge));
  FrameDecoder decoder;
  // Header only: the length bound must trip before any body arrives (a
  // garbled length must not make the receiver wait on — or allocate —
  // gigabytes).
  decoder.Feed(stream.data(), kFrameHeaderBytes);
  Result<std::optional<Frame>> next = decoder.Next();
  ASSERT_FALSE(next.ok());
  EXPECT_TRUE(next.status().IsCorruption());
}

// ---------------------------------------------------------------------------
// Loopback socket-pair harness: the io layer on a real fd.

TEST(SocketPairTest, PartialWritesReassembleIntoWholeFrames) {
  Result<std::pair<TcpSocket, TcpSocket>> pair = TcpSocket::Pair();
  ASSERT_TRUE(pair.ok()) << pair.status().ToString();
  TcpSocket writer = std::move(pair->first);
  TcpSocket reader = std::move(pair->second);

  Rng rng(test::DeriveSeed(400));
  std::vector<Frame> expected;
  std::string stream;
  for (int i = 0; i < 16; ++i) {
    Frame frame;
    frame.type = kAllTypes[rng.UniformInt(0, 11)];
    frame.body = RandomBody(&rng, 300);
    EncodeFrame(frame.type, frame.body, &stream);
    expected.push_back(std::move(frame));
  }

  // Dribble the stream through the kernel in 1..7 byte slices, with
  // occasional stalls shorter than the io timeout.
  std::thread feeder([&] {
    size_t off = 0;
    Rng chunk_rng(test::DeriveSeed(401));
    while (off < stream.size()) {
      size_t n = std::min<size_t>(
          static_cast<size_t>(chunk_rng.UniformInt(1, 7)),
          stream.size() - off);
      ASSERT_TRUE(writer.WriteAll(stream.data() + off, n, 1000).ok());
      off += n;
      if (chunk_rng.UniformInt(0, 9) == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    writer.ShutdownSend();
  });

  std::atomic<bool> stop{false};
  FrameDecoder decoder;
  std::vector<Frame> decoded;
  while (decoded.size() < expected.size()) {
    Frame frame;
    Status s = ReadFrame(&reader, &decoder, /*io_timeout_ms=*/5000,
                         /*idle_timeout_ms=*/5000, stop, &frame);
    ASSERT_TRUE(s.ok()) << s.ToString();
    decoded.push_back(std::move(frame));
  }
  feeder.join();
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(decoded[i].type, expected[i].type) << "frame " << i;
    EXPECT_EQ(decoded[i].body, expected[i].body) << "frame " << i;
  }
  // After the sender's shutdown the next read is a clean end of stream.
  Frame frame;
  Status s = ReadFrame(&reader, &decoder, 1000, 1000, stop, &frame);
  EXPECT_TRUE(s.IsAborted()) << s.ToString();
  EXPECT_FALSE(s.IsCorruption());
}

TEST(SocketPairTest, MidFrameDisconnectIsCorruptionNeverACleanEnd) {
  Result<std::pair<TcpSocket, TcpSocket>> pair = TcpSocket::Pair();
  ASSERT_TRUE(pair.ok()) << pair.status().ToString();
  TcpSocket writer = std::move(pair->first);
  TcpSocket reader = std::move(pair->second);

  std::string stream;
  EncodeFrame(FrameType::kEpoch, std::string(128, 'x'), &stream);
  // Everything but the last 3 bytes, then vanish.
  ASSERT_TRUE(writer.WriteAll(stream.data(), stream.size() - 3, 1000).ok());
  writer.ShutdownSend();

  std::atomic<bool> stop{false};
  FrameDecoder decoder;
  Frame frame;
  Status s = ReadFrame(&reader, &decoder, /*io_timeout_ms=*/2000,
                       /*idle_timeout_ms=*/2000, stop, &frame);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  EXPECT_NE(s.message().find("mid-frame"), std::string::npos) << s.ToString();
}

// ---------------------------------------------------------------------------
// End-to-end over real TCP: EpochStreamServer + EpochStreamClient +
// TcpEpochSource + a replayer, digest-checked against the primary.

struct NetRig {
  explicit NetRig(int num_tables, size_t epoch_size = 8,
                  size_t retention = 4096)
      : catalog(MakeCatalog(num_tables)),
        db(catalog.get(), &clock),
        shipper(epoch_size, retention) {
    db.SetCommitSink([this](TxnLog txn) { shipper.OnCommit(std::move(txn)); });
  }

  std::unique_ptr<Catalog> catalog;
  LogicalClock clock;
  PrimaryDb db;
  LogShipper shipper;
};

TEST(NetStreamTest, CleanTcpStreamIsDigestIdenticalToInProcess) {
  NetRig rig(/*num_tables=*/3);
  EpochStreamServer server(&rig.shipper);
  ASSERT_TRUE(server.Start(0).ok());

  EpochChannel sink(1024);
  EpochStreamClient client("127.0.0.1", server.port(), /*shard=*/0, &sink);
  TcpEpochSourceOptions source_options;
  source_options.io_timeout_ms = 2000;
  TcpEpochSource source("127.0.0.1", server.port(), /*shard=*/0,
                        source_options);
  ASSERT_TRUE(client.Start().ok());
  ASSERT_TRUE(source.Connect().ok());

  SerialReplayer replayer(rig.catalog.get(), &sink);
  replayer.SetEpochSource(&source);
  replayer.SetRecoveryOptions(FastRecovery());
  ASSERT_TRUE(replayer.Start().ok());

  RunRandomWorkload(&rig.db, 3, 150, test::DeriveSeed(500));
  rig.shipper.ShipHeartbeat(rig.db.AcquireHeartbeatTs());
  RunRandomWorkload(&rig.db, 3, 150, test::DeriveSeed(501));
  rig.shipper.Finish();

  replayer.Stop();
  EXPECT_TRUE(replayer.error().ok()) << replayer.error().ToString();
  Timestamp final_ts = rig.db.last_commit_ts();
  EXPECT_EQ(replayer.store()->DigestAt(final_ts),
            rig.db.store().DigestAt(final_ts));
  EXPECT_GT(client.epochs_received(), 0u);
  EXPECT_TRUE(client.clean_end());

  client.Stop();
  server.Stop();
}

TEST(NetStreamTest, ChaosLinkFaultsAreRecoveredByNackOverTcp) {
  for (int iter = 0; iter < g_chaos_iters; ++iter) {
    SCOPED_TRACE("chaos iter " + std::to_string(iter));
    NetRig rig(/*num_tables=*/3);

    FaultProfile profile;
    profile.drop = 0.15;
    profile.duplicate = 0.1;
    profile.reorder = 0.1;
    profile.corrupt = 0.1;
    profile.seed = test::DeriveSeed(600 + static_cast<uint64_t>(iter));

    // The factory wraps each subscriber's staging channel: faults strike
    // between the shipper and the wire, exactly where a lossy link would.
    // The server owns the channel and destroys it when the stream ends, so
    // the count is banked at destruction rather than read through a
    // possibly-dangling pointer afterwards.
    std::atomic<uint64_t> total_faults{0};
    struct CountingFaultChannel : FaultInjectingChannel {
      CountingFaultChannel(const FaultProfile& profile, size_t capacity,
                           std::atomic<uint64_t>* total)
          : FaultInjectingChannel(profile, capacity), total(total) {}
      ~CountingFaultChannel() override { total->fetch_add(faults_injected()); }
      std::atomic<uint64_t>* total;
    };
    EpochStreamServer server(&rig.shipper);
    server.SetChannelFactoryForTest(
        [&](size_t capacity) -> std::unique_ptr<EpochChannel> {
          return std::make_unique<CountingFaultChannel>(profile, capacity,
                                                        &total_faults);
        });
    ASSERT_TRUE(server.Start(0).ok());

    EpochChannel sink(1024);
    EpochStreamClient client("127.0.0.1", server.port(), 0, &sink);
    TcpEpochSourceOptions source_options;
    source_options.io_timeout_ms = 2000;
    TcpEpochSource source("127.0.0.1", server.port(), 0, source_options);
    ASSERT_TRUE(client.Start().ok());
    Status connect_status = source.Connect();
    ASSERT_TRUE(connect_status.ok()) << connect_status.ToString();

    SerialReplayer replayer(rig.catalog.get(), &sink);
    replayer.SetEpochSource(&source);
    replayer.SetRecoveryOptions(FastRecovery());
    ASSERT_TRUE(replayer.Start().ok());

    uint64_t seed = test::DeriveSeed(700 + static_cast<uint64_t>(iter));
    RunRandomWorkload(&rig.db, 3, 200, seed);
    rig.shipper.ShipHeartbeat(rig.db.AcquireHeartbeatTs());
    RunRandomWorkload(&rig.db, 3, 200, seed + 1);
    rig.shipper.Finish();

    replayer.Stop();
    EXPECT_TRUE(replayer.error().ok()) << replayer.error().ToString();
    Timestamp final_ts = rig.db.last_commit_ts();
    EXPECT_EQ(replayer.store()->DigestAt(final_ts),
              rig.db.store().DigestAt(final_ts));

    client.Stop();
    server.Stop();  // joins sessions: all channel destructors have run
    EXPECT_GT(total_faults.load(), 0u) << "fault profile injected nothing";
  }
}

TEST(NetStreamTest, ServerRestartMidStreamReconnectsAndRecovers) {
  NetRig rig(/*num_tables=*/3, /*epoch_size=*/8, /*retention=*/65536);
  const uint16_t port = [] {
    // Grab an ephemeral port number the restarted server can re-bind.
    Result<TcpListener> probe = TcpListener::Bind(0);
    AETS_CHECK(probe.ok());
    return probe->port();
  }();

  auto server = std::make_unique<EpochStreamServer>(&rig.shipper);
  ASSERT_TRUE(server->Start(port).ok());

  EpochChannel sink(1024);
  EpochStreamClientOptions client_options;
  client_options.max_reconnects = 100;
  client_options.reconnect_backoff_ms = 10;
  EpochStreamClient client("127.0.0.1", port, 0, &sink, client_options);
  TcpEpochSourceOptions source_options;
  source_options.io_timeout_ms = 2000;
  TcpEpochSource source("127.0.0.1", port, 0, source_options);
  ASSERT_TRUE(client.Start().ok());
  ASSERT_TRUE(source.Connect().ok());

  SerialReplayer replayer(rig.catalog.get(), &sink);
  replayer.SetEpochSource(&source);
  ReplayRecoveryOptions recovery = FastRecovery();
  recovery.max_retries = 64;  // reconnect window is priced in NACK retries
  replayer.SetRecoveryOptions(recovery);
  ASSERT_TRUE(replayer.Start().ok());

  RunRandomWorkload(&rig.db, 3, 150, test::DeriveSeed(800));
  rig.shipper.ShipHeartbeat(rig.db.AcquireHeartbeatTs());
  // Let the clean prefix drain so the teardown below cannot race a
  // half-delivered epoch into a premature NACK.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  // Kill the endpoint mid-stream. Epochs shipped while it is down are
  // counted dropped at the shipper and must come back through NACK.
  server->Stop();
  server.reset();
  RunRandomWorkload(&rig.db, 3, 100, test::DeriveSeed(801));

  EpochStreamServer revived(&rig.shipper);
  ASSERT_TRUE(revived.Start(port).ok());

  RunRandomWorkload(&rig.db, 3, 100, test::DeriveSeed(802));
  rig.shipper.ShipHeartbeat(rig.db.AcquireHeartbeatTs());
  rig.shipper.Finish();

  replayer.Stop();
  EXPECT_TRUE(replayer.error().ok()) << replayer.error().ToString();
  Timestamp final_ts = rig.db.last_commit_ts();
  EXPECT_EQ(replayer.store()->DigestAt(final_ts),
            rig.db.store().DigestAt(final_ts));
  EXPECT_GE(client.reconnects(), 1u);

  client.Stop();
  revived.Stop();
}

TEST(NetStreamTest, UnknownShardGetsErrorFrame) {
  NetRig rig(/*num_tables=*/1);
  EpochStreamServer server(&rig.shipper);
  ASSERT_TRUE(server.Start(0).ok());

  Result<TcpSocket> conn = TcpSocket::Connect("127.0.0.1", server.port(), 1000);
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  std::string body;
  EncodeHelloBody(HelloBody{HelloRole::kSubscribe, /*shard=*/99}, &body);
  ASSERT_TRUE(WriteFrame(&*conn, FrameType::kHello, body, 1000).ok());

  std::atomic<bool> stop{false};
  FrameDecoder decoder;
  Frame reply;
  Status s = ReadFrame(&*conn, &decoder, 2000, 2000, stop, &reply);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(reply.type, FrameType::kError);

  rig.shipper.Finish();
  server.Stop();
}

}  // namespace
}  // namespace net
}  // namespace aets

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  aets::test::InitSeedFromArgs(&argc, argv);
  aets::test::InstallSeedBanner();
  if (const char* env = std::getenv("AETS_CHAOS_ITERS")) {
    g_chaos_iters = std::max(1, std::atoi(env));
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--chaos_iters=";
    if (arg.rfind(prefix, 0) == 0) {
      g_chaos_iters = std::max(1, std::atoi(arg.c_str() + prefix.size()));
    }
  }
  return RUN_ALL_TESTS();
}
