// Log record model and wire-codec tests: round-trips, metadata-only
// decoding, and corruption/truncation detection (checksums), plus a
// parameterized round-trip fuzz over random records.

#include <gtest/gtest.h>

#include "aets/common/rng.h"
#include "aets/log/codec.h"
#include "aets/log/record.h"

namespace aets {
namespace {

LogRecord SampleUpdate() {
  return LogRecord::Dml(LogRecordType::kUpdate, /*lsn=*/42, /*txn=*/7,
                        /*ts=*/99, /*table=*/3, /*row_key=*/-12345,
                        {{0, Value(int64_t{17})},
                         {2, Value(3.5)},
                         {5, Value("hello world")},
                         {6, Value::Null()}},
                        /*prev_txn=*/6, /*row_seq=*/4);
}

TEST(LogRecordTest, TypePredicates) {
  EXPECT_TRUE(SampleUpdate().is_dml());
  EXPECT_FALSE(LogRecord::Begin(1, 2, 3).is_dml());
  EXPECT_FALSE(LogRecord::Commit(1, 2, 3).is_dml());
  EXPECT_FALSE(LogRecord::Heartbeat(1, 2, 3).is_dml());
}

TEST(LogRecordTest, TypeNames) {
  EXPECT_EQ(LogRecordTypeToString(LogRecordType::kBegin), "BEGIN");
  EXPECT_EQ(LogRecordTypeToString(LogRecordType::kCommit), "COMMIT");
  EXPECT_EQ(LogRecordTypeToString(LogRecordType::kInsert), "INSERT");
  EXPECT_EQ(LogRecordTypeToString(LogRecordType::kUpdate), "UPDATE");
  EXPECT_EQ(LogRecordTypeToString(LogRecordType::kDelete), "DELETE");
  EXPECT_EQ(LogRecordTypeToString(LogRecordType::kHeartbeat), "HEARTBEAT");
}

TEST(LogRecordTest, ByteSizeTracksPayload) {
  LogRecord small = LogRecord::Dml(LogRecordType::kInsert, 1, 1, 1, 0, 1,
                                   {{0, Value(int64_t{1})}});
  LogRecord large = LogRecord::Dml(LogRecordType::kInsert, 1, 1, 1, 0, 1,
                                   {{0, Value(std::string(100, 'x'))}});
  EXPECT_GT(large.ByteSize(), small.ByteSize());
  EXPECT_GT(small.ByteSize(), LogRecord::Begin(1, 1, 1).ByteSize());
}

TEST(CodecTest, RoundTripUpdate) {
  std::string buf;
  LogCodec::Encode(SampleUpdate(), &buf);
  size_t offset = 0;
  auto decoded = LogCodec::Decode(buf, &offset);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, SampleUpdate());
  EXPECT_EQ(offset, buf.size());
}

TEST(CodecTest, RoundTripControlRecords) {
  for (const LogRecord& rec :
       {LogRecord::Begin(1, 2, 3), LogRecord::Commit(9, 8, 7),
        LogRecord::Heartbeat(4, 5, 6)}) {
    std::string buf;
    LogCodec::Encode(rec, &buf);
    size_t offset = 0;
    auto decoded = LogCodec::Decode(buf, &offset);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, rec);
  }
}

TEST(CodecTest, MetadataDecodeSkipsValuesButAdvances) {
  std::string buf;
  LogCodec::Encode(SampleUpdate(), &buf);
  LogCodec::Encode(LogRecord::Commit(43, 7, 99), &buf);
  size_t offset = 0;
  auto meta = LogCodec::DecodeMetadata(buf, &offset);
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->type, LogRecordType::kUpdate);
  EXPECT_EQ(meta->table_id, 3u);
  EXPECT_EQ(meta->row_key, -12345);
  EXPECT_EQ(meta->txn_id, 7u);
  EXPECT_TRUE(meta->value_bytes.empty());  // values not parsed
  EXPECT_EQ(meta->num_values, 4u);         // but the declared count is read
  auto next = LogCodec::DecodeMetadata(buf, &offset);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->type, LogRecordType::kCommit);
  EXPECT_EQ(offset, buf.size());
}

TEST(CodecTest, DetectsBitFlips) {
  std::string buf;
  LogCodec::Encode(SampleUpdate(), &buf);
  // Flip one byte anywhere in the frame body; the checksum must catch it.
  for (size_t i = 8; i < buf.size(); i += 7) {
    std::string corrupted = buf;
    corrupted[i] = static_cast<char>(corrupted[i] ^ 0x40);
    size_t offset = 0;
    auto decoded = LogCodec::Decode(corrupted, &offset);
    EXPECT_FALSE(decoded.ok()) << "flip at " << i << " not detected";
    EXPECT_TRUE(decoded.status().IsCorruption());
  }
}

TEST(CodecTest, DetectsTruncation) {
  std::string buf;
  LogCodec::Encode(SampleUpdate(), &buf);
  for (size_t len : {size_t{0}, size_t{3}, size_t{8}, buf.size() - 1}) {
    std::string truncated = buf.substr(0, len);
    size_t offset = 0;
    auto decoded = LogCodec::Decode(truncated, &offset);
    EXPECT_FALSE(decoded.ok());
  }
}

TEST(CodecTest, EncodeAllDecodeAll) {
  std::vector<LogRecord> records = {LogRecord::Begin(1, 1, 5), SampleUpdate(),
                                    LogRecord::Commit(2, 1, 5)};
  std::string buf = LogCodec::EncodeAll(records);
  auto decoded = LogCodec::DecodeAll(buf);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, records);
}

TEST(Crc32cTest, KnownProperties) {
  // Different inputs give different checksums; same input is stable.
  uint32_t a = Crc32c("hello", 5);
  uint32_t b = Crc32c("hellp", 5);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, Crc32c("hello", 5));
  EXPECT_NE(Crc32c("", 0), Crc32c("x", 1));
}

// Property: random records of every type round-trip bit-exactly.
class CodecFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CodecFuzzTest, RandomRecordsRoundTrip) {
  Rng rng(GetParam());
  std::vector<LogRecord> records;
  for (int i = 0; i < 200; ++i) {
    int kind = static_cast<int>(rng.UniformInt(0, 5));
    if (kind <= 1) {
      records.push_back(LogRecord::Begin(rng.Next(), rng.Next(), rng.Next()));
    } else if (kind == 2) {
      records.push_back(LogRecord::Commit(rng.Next(), rng.Next(), rng.Next()));
    } else {
      std::vector<ColumnValue> values;
      int n = static_cast<int>(rng.UniformInt(0, 8));
      for (int v = 0; v < n; ++v) {
        ColumnId col = static_cast<ColumnId>(rng.UniformInt(0, 500));
        switch (rng.UniformInt(0, 3)) {
          case 0:
            values.push_back({col, Value(static_cast<int64_t>(rng.Next()))});
            break;
          case 1:
            values.push_back({col, Value(rng.Gaussian(0, 1e6))});
            break;
          case 2:
            values.push_back({col, Value(rng.AlphaString(0, 64))});
            break;
          default:
            values.push_back({col, Value::Null()});
        }
      }
      auto type = static_cast<LogRecordType>(
          rng.UniformInt(static_cast<int>(LogRecordType::kInsert),
                         static_cast<int>(LogRecordType::kDelete)));
      records.push_back(LogRecord::Dml(
          type, rng.Next(), rng.Next(), rng.Next(),
          static_cast<TableId>(rng.UniformInt(0, 1000)),
          static_cast<int64_t>(rng.Next()), std::move(values), rng.Next(),
          rng.Next()));
    }
  }
  std::string buf = LogCodec::EncodeAll(records);
  auto decoded = LogCodec::DecodeAll(buf);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ((*decoded)[i], records[i]) << "record " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzzTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace aets
